module github.com/v3storage/v3

go 1.22
