// Microbench: reproduce a slice of the paper's Figure 3 through the
// simulation API — the latency of a cached read through each DSA
// implementation versus raw VI, at a few request sizes.
package main

import (
	"fmt"

	"github.com/v3storage/v3/internal/bench"
	"github.com/v3storage/v3/internal/core"
)

func main() {
	fmt.Println("Latency of raw VI and the three DSA implementations (cached reads)")
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "size", "VI", "kDSA", "wDSA", "cDSA")
	for _, size := range []int{512, 2048, 8192} {
		vi := bench.RawVILatency(size, 50)
		k := bench.DSALatency(core.KDSA, size, 50)
		w := bench.DSALatency(core.WDSA, size, 50)
		c := bench.DSALatency(core.CDSA, size, 50)
		fmt.Printf("%-8d %10v %10v %10v %10v\n", size, vi, k, w, c)
	}
	fmt.Println()
	fmt.Println("The paper's Section 5.1 shapes: cDSA closest to raw VI (no kernel")
	fmt.Println("on the I/O path), kDSA above it (syscall + I/O manager), wDSA")
	fmt.Println("highest (kernel32.dll completion semantics).")
}
