// Cluster volume vault: a mirrored logical volume over two real v3d
// servers, surviving the loss of one — the paper's "V3 volumes can span
// multiple V3 nodes using combinations of RAID" carried onto the TCP
// path. The walkthrough writes through the mirror, kills one backend
// mid-flight, keeps serving degraded, restarts the backend with its old
// (stale) data, waits for the background resync to replay the dirty
// extents, and proves both replicas byte-identical. A short striped run
// closes with the RAID-0 throughput side of the same spanning layer.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/vvault"
)

const member = 8 << 20 // 8 MB per backend

// startBackend serves one volume (backed by store) on addr; ":0" picks a
// port. Returning the server lets the walkthrough kill and restart it.
func startBackend(store netv3.BlockStore, addr string) (*netv3.Server, string) {
	srv := netv3.NewServer(netv3.DefaultServerConfig())
	srv.AddVolume(1, store)
	a, err := srv.Listen(addr)
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	return srv, a.String()
}

func main() {
	// Two backends, each holding one full replica. The stores outlive the
	// servers, like a v3d restarting over the same disk image.
	storeA, storeB := netv3.NewMemStore(member), netv3.NewMemStore(member)
	srvA, addrA := startBackend(storeA, "127.0.0.1:0")
	defer srvA.Close()
	srvB, addrB := startBackend(storeB, "127.0.0.1:0")

	cfg := vvault.DefaultConfig(vvault.ModeMirror)
	cfg.MemberSize = member
	cfg.ProbeInterval = 50 * time.Millisecond
	cfg.ProbeTimeout = time.Second
	cfg.Client.ReconnectBackoff = 20 * time.Millisecond
	cfg.Client.MaxReconnects = 1
	cfg.Logger = log.New(os.Stderr, "", log.Ltime)
	v, err := vvault.Open([]string{addrA, addrB}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer v.Close()

	// Healthy writes fan out to both replicas.
	block := func(i int, gen byte) []byte {
		return bytes.Repeat([]byte{byte(i) ^ gen}, 8192)
	}
	for i := 0; i < 64; i++ {
		if err := v.Write(int64(i)*8192, block(i, 1)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("mirror healthy: 64 blocks written to both replicas")

	// Kill backend B while a writer keeps going; the vault routes around
	// it and logs what B misses.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 64; i++ {
			if err := v.Write(int64(i)*8192, block(i, 2)); err != nil {
				log.Fatalf("write during outage: %v", err)
			}
		}
	}()
	srvB.Close()
	wg.Wait()
	for v.Status()[1].State != "down" {
		time.Sleep(10 * time.Millisecond)
	}
	got := make([]byte, 8192)
	if err := v.Read(0, got); err != nil {
		log.Fatalf("degraded read: %v", err)
	}
	st := v.Status()[1]
	fmt.Printf("backend B killed: vault degraded, reads served by A, %d dirty bytes logged for B\n",
		st.DirtyBytes)

	// Restart B on the same address over the same (now stale) store. The
	// probe loop notices, the resync worker replays the dirty extents,
	// and B rejoins the rotation.
	srvB2, _ := startBackend(storeB, addrB)
	defer srvB2.Close()
	for v.Status()[1].State != "up" {
		time.Sleep(10 * time.Millisecond)
	}
	if err := v.Flush(); err != nil {
		log.Fatal(err)
	}
	stats := v.Stats()
	fmt.Printf("backend B restarted: resync replayed %d bytes, replica back in rotation\n",
		stats.ResyncedBytes)

	// Proof: both replicas byte-identical, holding the generation-2 data.
	bufA, bufB := make([]byte, member), make([]byte, member)
	if err := storeA.ReadAt(bufA, 0); err != nil {
		log.Fatal(err)
	}
	if err := storeB.ReadAt(bufB, 0); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(bufA, bufB) {
		log.Fatal("replicas diverged")
	}
	if !bytes.Equal(bufA[:8192], block(0, 2)) {
		log.Fatal("replica holds stale generation")
	}
	fmt.Println("verified: both replicas byte-identical after resync")

	// --- Striping: the throughput side of the spanning layer. ---
	srvC, addrC := startBackend(netv3.NewMemStore(member), "127.0.0.1:0")
	defer srvC.Close()
	srvD, addrD := startBackend(netv3.NewMemStore(member), "127.0.0.1:0")
	defer srvD.Close()
	scfg := vvault.DefaultConfig(vvault.ModeStripe)
	scfg.MemberSize = member
	scfg.StripeSize = 8192
	sv, err := vvault.Open([]string{addrC, addrD}, scfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sv.Close()
	const n, size = 4096, 8192
	var sw sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < 8; g++ {
		sw.Add(1)
		go func(g int) {
			defer sw.Done()
			buf := make([]byte, size)
			for i := g; i < n; i += 8 {
				if err := sv.Read(int64(i%1024)*size, buf); err != nil {
					log.Fatal(err)
				}
			}
		}(g)
	}
	sw.Wait()
	el := time.Since(t0)
	fmt.Printf("stripe over 2 backends: %d reads of %d bytes in %v (%.0f MB/s)\n",
		n, size, el.Round(time.Millisecond), float64(n)*size/el.Seconds()/1e6)
}
