// Fault tolerance: run DSA over a lossy VI link and over a breaking TCP
// connection, demonstrating the paper's point that "retransmission and
// reconnection ... are critical for industrial-strength systems" — VI
// itself provides neither.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"github.com/v3storage/v3/internal/bench"
	"github.com/v3storage/v3/internal/core"
	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/sim"
)

func main() {
	// --- Part 1: simulated VI link dropping 5% of all messages. ---
	cfg := bench.MicroConfig(core.KDSA)
	cfg.NIC.DropProb = 0.05
	cfg.DSA.RetxTimeout = 30 * time.Millisecond
	cfg.DSA.RetxInterval = 5 * time.Millisecond
	sys := bench.Build(cfg)
	completed := 0
	sys.E.Go("app", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			if sys.Client.Read(p, int64(i%50)*8192, 8192).Done() {
				completed++
			}
		}
		sys.Client.Stop()
	})
	sys.E.RunFor(2 * time.Minute)
	fmt.Printf("lossy VI link (5%% drop): %d/300 reads completed, %d retransmissions\n",
		completed, sys.Client.Retransmits())

	// --- Part 2: real TCP session killed mid-stream; the client
	// reconnects and replays. ---
	srv := netv3.NewServer(netv3.DefaultServerConfig())
	srv.AddVolume(1, netv3.NewMemStore(16<<20))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	ccfg := netv3.DefaultClientConfig()
	ccfg.ReconnectBackoff = 25 * time.Millisecond
	client, err := netv3.Dial(addr.String(), ccfg)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	payload := bytes.Repeat([]byte{0xAB}, 8192)
	if err := client.Write(1, 0, payload); err != nil {
		log.Fatal(err)
	}
	// Sever the TCP connection under the client's feet.
	client.KillConnForTest()
	// The next I/O trips the reconnection state machine and succeeds on
	// the replayed session.
	got := make([]byte, 8192)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := client.Read(1, 0, got); err == nil {
			break
		}
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("data lost across reconnection")
	}
	fmt.Printf("TCP session killed and recovered: %d reconnection(s), %d server sessions, data intact\n",
		client.Reconnects(), srv.Sessions())
}
