// OLTP example: run a small TPC-C-shaped workload against a simulated V3
// back-end with each DSA implementation and against local disks, printing
// relative transaction rates and CPU breakdowns — a miniature of the
// paper's Section 6.
package main

import (
	"fmt"

	"github.com/v3storage/v3/internal/bench"
	"github.com/v3storage/v3/internal/core"
	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/localio"
	"github.com/v3storage/v3/internal/oltp"
	"github.com/v3storage/v3/internal/oskrnl"
	"github.com/v3storage/v3/internal/sim"
)

func main() {
	setup := bench.MidSizeSetup()
	dur := bench.QuickDurations()

	fmt.Printf("TPC-C on the %s configuration (scaled; %v warmup + %v measured)\n\n",
		setup.Name, dur.Warmup, dur.Measure)

	local := bench.RunTPCCLocal(setup, 0, dur)
	fmt.Printf("%-6s tpmC=%8.0f (=100)  buffer-pool hit %.0f%%\n",
		"Local", local.TpmC, local.BufferHit*100)

	for _, impl := range []core.Impl{core.KDSA, core.WDSA, core.CDSA} {
		r := bench.RunTPCCDSA(setup, impl, core.AllOpts(), dur)
		fmt.Printf("%-6s tpmC=%8.0f (=%3.0f)  server cache hit %.0f%%  SQL share %.0f%%\n",
			impl, r.TpmC, r.TpmC/local.TpmC*100, r.ServerHit*100, r.Breakdown["SQL"]*100)
	}

	fmt.Println("\nThe paper's shape: all three DSA implementations competitive with")
	fmt.Println("176 local disks while using only 60 disks plus the V3 server cache.")

	// Per-transaction-type report (full-disclosure style) for a short
	// local run.
	fmt.Println("\nPer-transaction report (local, short run):")
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, setup.HostCPUs)
	kern := oskrnl.New(e, cpus, oskrnl.DefaultParams())
	lcfg := localio.DefaultConfig()
	lcfg.DiskParams = setup.DiskParams
	lc := localio.New(e, cpus, kern, lcfg)
	ecfg := oltp.DefaultConfig()
	ecfg.Workers = setup.Workers
	en := oltp.New(e, cpus, oltp.LocalStorage{C: lc}, ecfg)
	en.Start()
	e.RunFor(dur.Warmup)
	en.BeginMeasurement()
	e.RunFor(dur.Measure)
	en.Stop()
	fmt.Print(en.Report())
}
