// OLTP example: the same TPC-C-shaped workload run two ways, side by
// side — first against the simulated V3 back-end with each DSA
// implementation and local disks (a miniature of the paper's Section 6),
// then for real: the wall-clock engine from internal/workload driving
// an in-process v3d server over the live netv3 stack, with the sampled
// per-stage latency breakdown checked against an independently measured
// end-to-end mean.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/v3storage/v3/internal/bench"
	"github.com/v3storage/v3/internal/core"
	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/localio"
	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/obs"
	"github.com/v3storage/v3/internal/oltp"
	"github.com/v3storage/v3/internal/oskrnl"
	"github.com/v3storage/v3/internal/sim"
	"github.com/v3storage/v3/internal/workload"
)

func main() {
	simulated()
	real()
}

// simulated is the discrete-event tier: the paper's modeled hardware,
// where a "disk" costs what the calibration constants say it costs.
func simulated() {
	setup := bench.MidSizeSetup()
	dur := bench.QuickDurations()

	fmt.Printf("== Simulated: TPC-C on the %s configuration (scaled; %v warmup + %v measured)\n\n",
		setup.Name, dur.Warmup, dur.Measure)

	local := bench.RunTPCCLocal(setup, 0, dur)
	fmt.Printf("%-6s tpmC=%8.0f (=100)  buffer-pool hit %.0f%%\n",
		"Local", local.TpmC, local.BufferHit*100)

	for _, impl := range []core.Impl{core.KDSA, core.WDSA, core.CDSA} {
		r := bench.RunTPCCDSA(setup, impl, core.AllOpts(), dur)
		fmt.Printf("%-6s tpmC=%8.0f (=%3.0f)  server cache hit %.0f%%  SQL share %.0f%%\n",
			impl, r.TpmC, r.TpmC/local.TpmC*100, r.ServerHit*100, r.Breakdown["SQL"]*100)
	}

	fmt.Println("\nThe paper's shape: all three DSA implementations competitive with")
	fmt.Println("176 local disks while using only 60 disks plus the V3 server cache.")

	// Per-transaction-type report (full-disclosure style) for a short
	// local run.
	fmt.Println("\nPer-transaction report (local, short run):")
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, setup.HostCPUs)
	kern := oskrnl.New(e, cpus, oskrnl.DefaultParams())
	lcfg := localio.DefaultConfig()
	lcfg.DiskParams = setup.DiskParams
	lc := localio.New(e, cpus, kern, lcfg)
	ecfg := oltp.DefaultConfig()
	ecfg.Workers = setup.Workers
	en := oltp.New(e, cpus, oltp.LocalStorage{C: lc}, ecfg)
	en.Start()
	e.RunFor(dur.Warmup)
	en.BeginMeasurement()
	e.RunFor(dur.Measure)
	en.Stop()
	fmt.Print(en.Report())
}

// real is the wall-clock tier: the identical transaction mix (shared
// weights and profiles via internal/oltp), but every page read is a
// live netv3 round trip to an in-process v3d server and every commit
// waits on a real group-commit flush barrier.
func real() {
	const volSize = 64 << 20
	fmt.Println("\n== Real stack: the same mix over a live v3d server (in-process, RAM volume)")

	cluster, err := workload.StartCluster(1, volSize, netv3.DefaultServerConfig())
	if err != nil {
		log.Fatalf("oltp example: %v", err)
	}
	defer cluster.Close()

	reg := obs.New()
	e2e := &obs.Hist{}
	store, closeStore, err := workload.OpenStack(workload.StackConfig{
		Addrs: cluster.Addrs(), VolSize: volSize, Reg: reg, E2E: e2e,
	})
	if err != nil {
		log.Fatalf("oltp example: %v", err)
	}
	defer closeStore()

	eng, err := workload.New(workload.Config{
		Store:      store,
		Kinds:      workload.TPCCKinds(),
		Terminals:  8,
		Warehouses: 2,
		Seed:       1,
		E2E:        e2e,
	})
	if err != nil {
		log.Fatalf("oltp example: %v", err)
	}
	r, err := eng.Run(200*time.Millisecond, time.Second)
	if err != nil {
		log.Fatalf("oltp example: %v", err)
	}
	fmt.Print(r.Format())

	fmt.Println("\nPer-stage client latency (1-in-4 sampled trace) vs measured e2e:")
	rows := obs.Breakdown(reg, netv3.ClientStageDefs())
	fmt.Print(obs.FormatBreakdown(rows, r.E2E.Mean()))
	fmt.Println("\nSame mix, same weights — but here the latencies are real wire round")
	fmt.Println("trips, and the stage means column-sum to the measured e2e mean (the")
	fmt.Println("paper's cost-accounting discipline). Scale it up: go run ./cmd/v3tpcc -net")
}
