// Live volume clone over the replication log: a consumer subscribes to
// a mirrored vault's change feed, catches up on everything the volume
// already holds (the first batches arrive as extent coverage), then
// follows the live tail record by record while a writer keeps mutating
// the volume. Because batches describe ranges to copy — not deltas —
// re-applying a batch is idempotent, so the consumer commits its cursor
// only after applying and can crash-resume from the committed cursor
// with SubscribeAt. The walkthrough finishes by proving the clone
// byte-identical to the volume, then demonstrates the resume path.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/repl"
	"github.com/v3storage/v3/internal/vvault"
)

const member = 4 << 20 // 4 MB per replica
const blk = int64(8192)

func startBackend(store netv3.BlockStore, addr string) (*netv3.Server, string) {
	srv := netv3.NewServer(netv3.DefaultServerConfig())
	srv.AddVolume(1, store)
	a, err := srv.Listen(addr)
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	return srv, a.String()
}

// apply copies one batch's coverage from the vault into the clone
// buffer. Fallback extents stand in for records the log truncated
// before this subscriber saw them; records are precise writes.
func apply(v *vvault.Vault, clone []byte, b repl.Batch) error {
	for _, e := range b.Fallback {
		if err := v.Read(e.Off, clone[e.Off:e.End]); err != nil {
			return err
		}
	}
	for _, r := range b.Records {
		if err := v.Read(r.Off, clone[r.Off:r.Off+r.Len]); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	srvA, addrA := startBackend(netv3.NewMemStore(member), "127.0.0.1:0")
	defer srvA.Close()
	srvB, addrB := startBackend(netv3.NewMemStore(member), "127.0.0.1:0")
	defer srvB.Close()

	cfg := vvault.DefaultConfig(vvault.ModeMirror)
	cfg.MemberSize = member
	v, err := vvault.Open([]string{addrA, addrB}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer v.Close()

	// Pre-existing content the clone has never seen: the feed's catch-up
	// phase must cover it before any live records.
	for i := int64(0); i < 16; i++ {
		if err := v.Write(i*blk, bytes.Repeat([]byte{byte(i) + 1}, int(blk))); err != nil {
			log.Fatal(err)
		}
	}

	feed, err := v.Subscribe("clone")
	if err != nil {
		log.Fatal(err)
	}
	clone := make([]byte, member)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for feed.Wait(stop) {
			b := feed.Poll(32)
			if err := apply(v, clone, b); err != nil {
				log.Fatalf("clone apply: %v", err)
			}
			// Only after the batch has landed in the clone does the
			// cursor move — a crash before this line re-applies the
			// batch on resume, which is safe because batches copy
			// ranges rather than deltas.
			feed.Commit(b.Next)
		}
	}()

	// A writer keeps mutating the volume while the clone follows.
	for i := 0; i < 128; i++ {
		off := (int64(i*13) % (member/blk - 1)) * blk
		if err := v.Write(off, bytes.Repeat([]byte{byte(i)}, int(blk))); err != nil {
			log.Fatal(err)
		}
	}

	// Writer done: wait for the feed to drain to the log head.
	for feed.Cursor() < v.LogStatus().Head {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	fmt.Printf("clone drained: cursor=%d head=%d (feeds: %v)\n",
		feed.Cursor(), v.LogStatus().Head, v.FeedCursors())

	want := make([]byte, member)
	for off := int64(0); off < member; off += 1 << 20 {
		if err := v.Read(off, want[off:off+1<<20]); err != nil {
			log.Fatal(err)
		}
	}
	if !bytes.Equal(clone, want) {
		log.Fatal("clone diverged from the volume")
	}
	fmt.Println("verified: clone byte-identical to the live volume")

	// Crash-resume: remember the committed cursor, drop the feed, write
	// more, and resume from the cursor — the new feed owes only the
	// records past it, not another full catch-up.
	resumeAt := feed.Cursor()
	feed.Close()
	for i := int64(0); i < 8; i++ {
		off := (32 + i) * blk
		if err := v.Write(off, bytes.Repeat([]byte{0xAB}, int(blk))); err != nil {
			log.Fatal(err)
		}
	}
	feed2, err := v.SubscribeAt("clone", resumeAt)
	if err != nil {
		log.Fatal(err)
	}
	defer feed2.Close()
	applied := 0
	for feed2.Cursor() < v.LogStatus().Head {
		b := feed2.Poll(32)
		if err := apply(v, clone, b); err != nil {
			log.Fatal(err)
		}
		applied += len(b.Records)
		feed2.Commit(b.Next)
	}
	if !bytes.Equal(clone[32*blk:40*blk], bytes.Repeat([]byte{0xAB}, int(8*blk))) {
		log.Fatal("resumed clone missed the post-crash writes")
	}
	fmt.Printf("resumed from cursor %d: %d records applied, clone current again\n",
		resumeAt, applied)
}
