// Quickstart: run a real V3 storage server over TCP loopback and use the
// block client against it — write, read back, verify, and survive a
// connection break.
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/v3storage/v3/internal/netv3"
)

func main() {
	// 1. A storage node exporting a 64 MB in-memory volume with an MQ
	//    block cache (the V3 server's cache manager).
	cfg := netv3.DefaultServerConfig()
	cfg.CacheBlocks = 1024
	srv := netv3.NewServer(cfg)
	srv.AddVolume(1, netv3.NewMemStore(64<<20))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	fmt.Println("V3 server on", addr)

	// 2. A DSA-style client: credit flow control, overlapped requests,
	//    transparent reconnection.
	client, err := netv3.Dial(addr.String(), netv3.DefaultClientConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// 3. Write a block, read it back.
	block := bytes.Repeat([]byte("v3!"), 2731)[:8192]
	if err := client.Write(1, 32*8192, block); err != nil {
		log.Fatal(err)
	}
	got := make([]byte, 8192)
	if err := client.Read(1, 32*8192, got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, block) {
		log.Fatal("verification failed")
	}
	fmt.Println("wrote and verified one 8 KB block")

	// 4. Overlap a burst of I/O through the credit window.
	errc := make(chan error, 32)
	for i := 0; i < 32; i++ {
		go func(i int) {
			data := bytes.Repeat([]byte{byte(i)}, 8192)
			if err := client.Write(1, int64(i)*8192, data); err != nil {
				errc <- err
				return
			}
			buf := make([]byte, 8192)
			if err := client.Read(1, int64(i)*8192, buf); err != nil {
				errc <- err
				return
			}
			if buf[0] != byte(i) {
				errc <- fmt.Errorf("block %d corrupted", i)
				return
			}
			errc <- nil
		}(i)
	}
	for i := 0; i < 32; i++ {
		if err := <-errc; err != nil {
			log.Fatal(err)
		}
	}
	hits, misses := srv.CacheStats()
	fmt.Printf("32 blocks verified concurrently (server cache: %d hits, %d misses)\n", hits, misses)
	fmt.Printf("server handled %d requests over %d session(s)\n", srv.Served(), srv.Sessions())
}
