package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecordAndSnapshot(t *testing.T) {
	f := NewFlight(64, 1)
	f.SetKindNames([]string{"", "alpha", "beta"})
	f.Record(1, 7, 10, 20)
	f.Record(2, 0, 30, 40)
	if got := f.Recorded(); got != 2 {
		t.Fatalf("Recorded = %d, want 2", got)
	}
	evs := f.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("Snapshot holds %d events, want 2", len(evs))
	}
	if evs[0].TS > evs[1].TS {
		t.Fatalf("snapshot not time-ordered: %d then %d", evs[0].TS, evs[1].TS)
	}
	if evs[0].Name != "alpha" || evs[0].Trace != 7 || evs[0].A != 10 || evs[0].B != 20 {
		t.Fatalf("first event %+v", evs[0])
	}
	if evs[1].Name != "beta" || evs[1].Trace != 0 {
		t.Fatalf("second event %+v", evs[1])
	}
}

// The ring holds the most recent events: overfill a small ring and check
// the retained set is the tail, not the head.
func TestFlightRingRetainsTail(t *testing.T) {
	f := NewFlight(16, 1)
	for i := 0; i < 100; i++ {
		f.Record(1, 0, uint64(i), 0)
	}
	if got := f.Recorded(); got != 100 {
		t.Fatalf("Recorded = %d, want 100", got)
	}
	evs := f.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want ring size 16", len(evs))
	}
	for _, e := range evs {
		if e.A < 84 {
			t.Fatalf("retained stale event a=%d; ring should hold the last 16", e.A)
		}
	}
}

func TestFlightNilNoops(t *testing.T) {
	var f *Flight
	f.Record(1, 2, 3, 4) // must not panic
	f.SetKindNames([]string{"x"})
	f.Incident("nil")
	if f.Snapshot() != nil || f.Dump("x") != nil || f.LastIncident() != nil {
		t.Fatal("nil recorder returned non-nil data")
	}
	if f.Recorded() != 0 {
		t.Fatal("nil recorder recorded something")
	}
}

func TestFlightIncidentRateLimit(t *testing.T) {
	f := NewFlight(16, 1)
	f.Record(1, 0, 1, 1)
	f.Incident("first")
	f.Record(1, 0, 2, 2)
	f.Incident("second") // within the 1s gap: counted, not captured
	if got := f.Incidents(); got != 2 {
		t.Fatalf("Incidents = %d, want 2", got)
	}
	d := f.LastIncident()
	if d == nil || d.Reason != "first" {
		t.Fatalf("LastIncident = %+v, want the first capture", d)
	}
}

func TestFlightConcurrentRecord(t *testing.T) {
	f := NewFlight(1024, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f.Record(uint8(1+g%3), uint64(g), uint64(i), 0)
			}
		}(g)
	}
	wg.Wait()
	if got := f.Recorded(); got != 8000 {
		t.Fatalf("Recorded = %d, want 8000", got)
	}
	if evs := f.Snapshot(); len(evs) == 0 {
		t.Fatal("empty snapshot after concurrent records")
	}
}

func TestFlightHandler(t *testing.T) {
	f := NewFlight(16, 1)
	f.SetKindNames([]string{"", "ping"})
	f.Record(1, 42, 1, 2)

	req := httptest.NewRequest("GET", "/debug/flightrec", nil)
	rec := httptest.NewRecorder()
	FlightHandler(f).ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"ping"`) {
		t.Fatalf("JSON dump: code=%d body=%s", rec.Code, rec.Body.String())
	}

	req = httptest.NewRequest("GET", "/debug/flightrec?format=text", nil)
	rec = httptest.NewRecorder()
	FlightHandler(f).ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ping") {
		t.Fatalf("text dump: code=%d body=%s", rec.Code, rec.Body.String())
	}

	// No incident captured yet: 404. After one: served.
	req = httptest.NewRequest("GET", "/debug/flightrec?incident=1", nil)
	rec = httptest.NewRecorder()
	FlightHandler(f).ServeHTTP(rec, req)
	if rec.Code != 404 {
		t.Fatalf("incident before capture: code=%d, want 404", rec.Code)
	}
	f.Incident("trouble")
	rec = httptest.NewRecorder()
	FlightHandler(f).ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"trouble"`) {
		t.Fatalf("incident dump: code=%d body=%s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	FlightHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flightrec", nil))
	if rec.Code != 404 {
		t.Fatalf("nil recorder: code=%d, want 404", rec.Code)
	}
}

func TestFlightDumpWriteText(t *testing.T) {
	f := NewFlight(16, 1)
	f.Record(3, 5, 6, 7)
	var b strings.Builder
	f.Dump("test").WriteText(&b)
	out := b.String()
	if !strings.Contains(out, `reason="test"`) || !strings.Contains(out, "kind3") {
		t.Fatalf("text dump:\n%s", out)
	}
	b.Reset()
	(*FlightDump)(nil).WriteText(&b)
	if !strings.Contains(b.String(), "no events") {
		t.Fatalf("nil dump text: %q", b.String())
	}
}
