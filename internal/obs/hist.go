package obs

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the fixed bucket count of every histogram: bucket b
// holds observations v (nanoseconds) with 2^(b-1) <= v < 2^b, bucket 0
// holds v <= 0, and the last bucket absorbs everything from ~9 minutes
// up. Fixed log2 bucketing keeps Observe branch-free and allocation-free
// and makes histograms from different processes mergeable by index.
const HistBuckets = 40

// Hist is a fixed-bucket log2 latency histogram. Observe is lock-free:
// one atomic add for the bucket, one for the running sum, and a
// usually-skipped CAS for the max. Count is derived from the buckets at
// snapshot time, so the hot path pays for exactly two adds.
type Hist struct {
	buckets [HistBuckets]atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketOf maps a nanosecond value to its log2 bucket.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one duration in nanoseconds. No-op on a nil receiver.
func (h *Hist) Observe(ns int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot captures a consistent-enough copy for reporting (individual
// loads are atomic; the histogram may move between loads, which skews a
// live snapshot by at most the in-flight observations).
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Hist, mergeable with others
// (same fixed buckets) — the primitive behind cluster-wide aggregation.
type HistSnapshot struct {
	Buckets [HistBuckets]int64 `json:"buckets"`
	Sum     int64              `json:"sum_ns"`
	Max     int64              `json:"max_ns"`
}

// Merge folds o into s bucket-by-bucket.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Count is the number of observations.
func (s HistSnapshot) Count() int64 {
	var n int64
	for _, b := range s.Buckets {
		n += b
	}
	return n
}

// Mean returns the exact mean in nanoseconds (sum-based, not
// bucket-estimated), or 0 for an empty snapshot.
func (s HistSnapshot) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}

// bucketMid returns the representative value of bucket b: the geometric
// middle of [2^(b-1), 2^b), clamped so estimates never exceed the
// tracked exact max.
func bucketMid(b int, max int64) float64 {
	var mid float64
	switch {
	case b == 0:
		mid = 0
	case b == 1:
		mid = 1
	default:
		mid = 1.5 * float64(int64(1)<<(b-1))
	}
	if max > 0 && mid > float64(max) {
		mid = float64(max)
	}
	return mid
}

// Quantile estimates the q-quantile (0 < q <= 1) in nanoseconds with
// log2 bucket resolution: the answer is the representative value of the
// bucket containing the q-rank, so it is within a factor of ~1.5 of the
// true quantile. Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var cum int64
	for b, c := range s.Buckets {
		cum += c
		if cum > rank {
			return bucketMid(b, s.Max)
		}
	}
	return bucketMid(HistBuckets-1, s.Max)
}
