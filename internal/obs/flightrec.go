package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync/atomic"
)

// Flight is an always-on flight recorder: sharded lock-free ring buffers
// of fixed-size trace events, sized to hold the last ~64k events so the
// moments before an incident (an admission-control shed, a tripped
// backend, a latency spike) are always capturable without a profiler
// attached. Recording is the hot path and is built accordingly: a shard
// is picked from the caller's stack address (same trick as Counter), a
// slot is claimed with one atomic add, and the event's four words are
// stored individually — no locks, no allocation, no fences beyond the
// stores themselves. A reader that races a lap of the ring can observe a
// torn event; that is acceptable for a diagnostic ring and is why slots
// carry their own timestamps rather than relying on position.
//
// A nil *Flight no-ops every method, so instrumentation stays compiled
// into hot paths at the cost of one predictable branch when recording is
// off.
type Flight struct {
	shards []flightShard
	mask   uint64 // per-shard slot mask (len-1, power of two)

	names atomic.Pointer[[]string] // kind → name, for dumps

	incidents    Counter
	lastIncident atomic.Pointer[FlightDump]
	incidentNS   atomic.Int64 // Now() of last captured incident, for rate limiting
}

// flightSlot packs one event into four consecutive uint64 words:
// kind+timestamp, trace id, and two free arguments. The kind rides the
// top byte of the timestamp word — Now() is nanoseconds since process
// start, so the low 56 bits hold ~2.3 years of uptime.
type flightSlot struct {
	kts   atomic.Uint64 // kind<<56 | ts (0 = never written)
	trace atomic.Uint64
	a     atomic.Uint64
	b     atomic.Uint64
}

type flightShard struct {
	n     atomic.Uint64 // slots ever claimed; next slot is n & mask
	_     [7]uint64     // keep claim counters on distinct cache lines
	slots []flightSlot
}

const flightTSMask = 1<<56 - 1

// incidentMinGapNS rate-limits automatic incident capture: overload sheds
// arrive in storms, and each capture is a full-ring copy.
const incidentMinGapNS = int64(1e9)

// FlightEvent is one decoded ring entry.
type FlightEvent struct {
	TS    int64  `json:"ts_ns"` // Now()-relative nanoseconds
	Kind  uint8  `json:"kind"`
	Name  string `json:"name,omitempty"`
	Trace uint64 `json:"trace,omitempty"`
	A     uint64 `json:"a"`
	B     uint64 `json:"b"`
}

// FlightDump is a captured snapshot: the decoded ring plus the capture's
// reason and time, served by FlightHandler and written on SIGQUIT.
type FlightDump struct {
	Reason   string        `json:"reason"`
	TS       int64         `json:"ts_ns"`
	Recorded uint64        `json:"recorded"` // events ever recorded
	Events   []FlightEvent `json:"events"`
}

// NewFlight returns a recorder holding about capacity events (rounded so
// each of shards rings is a power of two; both are clamped to sane
// minimums). NewFlight(0, 0) gives the default ~64k events over 8 shards
// — roughly 2 MiB.
func NewFlight(capacity, shards int) *Flight {
	if capacity <= 0 {
		capacity = 64 * 1024
	}
	if shards <= 0 {
		shards = 8
	}
	per := 1
	for per < capacity/shards {
		per <<= 1
	}
	f := &Flight{shards: make([]flightShard, shards), mask: uint64(per - 1)}
	for i := range f.shards {
		f.shards[i].slots = make([]flightSlot, per)
	}
	return f
}

// SetKindNames installs the kind → name table used when rendering dumps.
// The caller that defines the kind space (netv3) owns the table.
func (f *Flight) SetKindNames(names []string) {
	if f == nil {
		return
	}
	f.names.Store(&names)
}

// Record appends one event. No-op on a nil receiver. Safe for any number
// of concurrent callers.
func (f *Flight) Record(kind uint8, trace, a, b uint64) {
	if f == nil {
		return
	}
	sh := &f.shards[shardIdx()%len(f.shards)]
	s := &sh.slots[(sh.n.Add(1)-1)&f.mask]
	s.trace.Store(trace)
	s.a.Store(a)
	s.b.Store(b)
	s.kts.Store(uint64(kind)<<56 | uint64(Now())&flightTSMask)
}

// Recorded returns the number of events ever recorded (not just retained).
func (f *Flight) Recorded() uint64 {
	if f == nil {
		return 0
	}
	var t uint64
	for i := range f.shards {
		t += f.shards[i].n.Load()
	}
	return t
}

// Snapshot decodes the ring: every written slot across all shards, sorted
// by timestamp. The copy races ongoing recording by design; events being
// overwritten during the copy may come out torn.
func (f *Flight) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	var names []string
	if p := f.names.Load(); p != nil {
		names = *p
	}
	var evs []FlightEvent
	for i := range f.shards {
		sh := &f.shards[i]
		for j := uint64(0); j < uint64(len(sh.slots)); j++ {
			kts := sh.slots[j].kts.Load()
			if kts == 0 {
				continue
			}
			e := FlightEvent{
				TS:    int64(kts & flightTSMask),
				Kind:  uint8(kts >> 56),
				Trace: sh.slots[j].trace.Load(),
				A:     sh.slots[j].a.Load(),
				B:     sh.slots[j].b.Load(),
			}
			if int(e.Kind) < len(names) {
				e.Name = names[e.Kind]
			}
			evs = append(evs, e)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	return evs
}

// Incident captures the current ring into the recorder's last-incident
// slot — the automatic dump taken when the system detects trouble
// (ErrOverloaded shed, backend trip). Captures are rate-limited to one
// per second so shed storms cost one ring copy, not thousands. No-op on
// a nil receiver.
func (f *Flight) Incident(reason string) {
	if f == nil {
		return
	}
	now := Now()
	last := f.incidentNS.Load()
	// last == 0 means no capture yet: the first incident always captures,
	// even within a second of process start (Now is process-relative).
	if (last != 0 && now-last < incidentMinGapNS) || !f.incidentNS.CompareAndSwap(last, now) {
		f.incidents.Add(1)
		return
	}
	f.incidents.Add(1)
	f.lastIncident.Store(&FlightDump{
		Reason:   reason,
		TS:       now,
		Recorded: f.Recorded(),
		Events:   f.Snapshot(),
	})
}

// Incidents returns the number of Incident calls (captured or
// rate-limited).
func (f *Flight) Incidents() int64 { return f.incidents.Load() }

// LastIncident returns the most recent captured incident dump, or nil.
func (f *Flight) LastIncident() *FlightDump {
	if f == nil {
		return nil
	}
	return f.lastIncident.Load()
}

// Dump captures the ring right now under the given reason, without
// touching the incident slot — the on-demand path (HTTP, SIGQUIT).
func (f *Flight) Dump(reason string) *FlightDump {
	if f == nil {
		return nil
	}
	return &FlightDump{Reason: reason, TS: Now(), Recorded: f.Recorded(), Events: f.Snapshot()}
}

// WriteText renders a dump as a human-oriented table (the SIGQUIT form).
func (d *FlightDump) WriteText(w io.Writer) {
	if d == nil {
		fmt.Fprintln(w, "flightrec: no events")
		return
	}
	fmt.Fprintf(w, "flightrec dump reason=%q ts=%dns recorded=%d retained=%d\n",
		d.Reason, d.TS, d.Recorded, len(d.Events))
	for _, e := range d.Events {
		name := e.Name
		if name == "" {
			name = fmt.Sprintf("kind%d", e.Kind)
		}
		fmt.Fprintf(w, "%14d %-16s trace=%016x a=%d b=%d\n", e.TS, name, e.Trace, e.A, e.B)
	}
}

// FlightHandler serves the recorder on the metrics mux: a JSON dump of
// the live ring (plus the last auto-captured incident) by default, the
// text table with ?format=text, and only the last incident with
// ?incident=1. Safe on a nil recorder (404s).
func FlightHandler(f *Flight) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if f == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		if req.URL.Query().Get("incident") == "1" {
			d := f.LastIncident()
			if d == nil {
				http.Error(w, "no incident captured", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(d)
			return
		}
		d := f.Dump("http")
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain")
			d.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			*FlightDump
			Incidents    int64       `json:"incidents"`
			LastIncident *FlightDump `json:"last_incident,omitempty"`
		}{d, f.Incidents(), f.LastIncident()})
	})
}
