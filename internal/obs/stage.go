package obs

import (
	"fmt"
	"strings"
	"time"
)

// StageDef names one stage of a request's life: Display is the
// human-facing row label, Metric the registry histogram that accumulates
// the stage's durations. An ordered []StageDef is the schema of a
// paper-style latency breakdown table — each instrumented layer exports
// its own (netv3 exports the client stages; servers export theirs).
type StageDef struct {
	Display string
	Metric  string
}

// BreakdownRow is one stage's aggregate in a breakdown table.
type BreakdownRow struct {
	Stage  string
	Count  int64
	MeanNS float64
	P50NS  float64
	P99NS  float64
	MaxNS  int64
}

// Breakdown renders the named stage histograms of r into table rows, in
// stage order. Missing histograms yield zero rows, so a table can be
// asked for before traffic has flowed.
func Breakdown(r *Registry, defs []StageDef) []BreakdownRow {
	rows := make([]BreakdownRow, 0, len(defs))
	for _, d := range defs {
		s := r.Hist(d.Metric).Snapshot()
		rows = append(rows, BreakdownRow{
			Stage:  d.Display,
			Count:  s.Count(),
			MeanNS: s.Mean(),
			P50NS:  s.Quantile(0.50),
			P99NS:  s.Quantile(0.99),
			MaxNS:  s.Max,
		})
	}
	return rows
}

// SumMeanNS sums the per-stage means — the table's column total, which
// for stages that tile a request's lifetime equals the end-to-end mean.
func SumMeanNS(rows []BreakdownRow) float64 {
	var t float64
	for _, r := range rows {
		t += r.MeanNS
	}
	return t
}

func fmtNS(ns float64) string {
	return time.Duration(int64(ns)).Round(10 * time.Nanosecond).String()
}

// FormatBreakdown renders rows as the paper-style per-stage latency
// table. If e2eMeanNS > 0 it appends the independently measured
// end-to-end mean and the deviation of the stage-sum from it — the
// consistency check that the stages actually tile the request.
func FormatBreakdown(rows []BreakdownRow, e2eMeanNS float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %12s %12s %12s %12s\n", "stage", "count", "mean", "p50", "p99", "max")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %8d %12s %12s %12s %12s\n",
			r.Stage, r.Count, fmtNS(r.MeanNS), fmtNS(r.P50NS), fmtNS(r.P99NS), fmtNS(float64(r.MaxNS)))
	}
	sum := SumMeanNS(rows)
	fmt.Fprintf(&b, "%-16s %8s %12s\n", "stage sum", "", fmtNS(sum))
	if e2eMeanNS > 0 {
		dev := 100 * (sum - e2eMeanNS) / e2eMeanNS
		fmt.Fprintf(&b, "%-16s %8s %12s %+11.1f%%\n", "measured e2e", "", fmtNS(e2eMeanNS), dev)
	}
	return b.String()
}
