package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// promBase strips a label set from a metric name for # TYPE lines:
// `vvault_backend_state{backend="0"}` → `vvault_backend_state`.
func promBase(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabel splices a label pair into a (possibly already labeled)
// metric name: `h{a="b"}` + `quantile="0.5"` → `h{a="b",quantile="0.5"}`.
func withLabel(name, label string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format: counters and gauges as single samples, histograms as summaries
// (quantiles + _sum/_count, all in nanoseconds). Safe on a nil registry
// (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c.Load()
	}
	gauges := make(map[string]int64, len(r.gauges)+len(r.gaugeFns))
	for k, g := range r.gauges {
		gauges[k] = g.Load()
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for k, fn := range r.gaugeFns {
		fns[k] = fn
	}
	sets := make(map[string]func() map[string]int64, len(r.gaugeSets))
	for k, fn := range r.gaugeSets {
		sets[k] = fn
	}
	hists := make(map[string]HistSnapshot, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h.Snapshot()
	}
	r.mu.Unlock()
	// Callback gauges run outside the registry lock: they may take other
	// locks (server stats, cache shards) that must not nest under ours.
	for k, fn := range fns {
		gauges[k] = fn()
	}
	for name, fn := range sets {
		for lbl, v := range fn() {
			gauges[name+lbl] = v
		}
	}

	for _, k := range sortedKeys(counters) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", promBase(k), k, counters[k])
	}
	for _, k := range sortedKeys(gauges) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", promBase(k), k, gauges[k])
	}
	for _, k := range sortedKeys(hists) {
		s := hists[k]
		fmt.Fprintf(w, "# TYPE %s summary\n", promBase(k))
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(w, "%s %g\n", withLabel(k, fmt.Sprintf("quantile=%q", fmt.Sprintf("%g", q))), s.Quantile(q))
		}
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", k, s.Sum, k, s.Count())
	}
}

// HistJSON is a histogram's JSON snapshot form.
type HistJSON struct {
	Count  int64   `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  float64 `json:"p50_ns"`
	P95NS  float64 `json:"p95_ns"`
	P99NS  float64 `json:"p99_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// SnapshotJSON is the whole registry as one JSON-marshalable value.
type SnapshotJSON struct {
	Counters map[string]int64    `json:"counters"`
	Gauges   map[string]int64    `json:"gauges"`
	Hists    map[string]HistJSON `json:"hists"`
}

// Snapshot captures every metric for the JSON endpoint (and for tests).
// Safe on a nil registry (returns empty maps).
func (r *Registry) Snapshot() SnapshotJSON {
	out := SnapshotJSON{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistJSON{},
	}
	if r == nil {
		return out
	}
	r.mu.Lock()
	for k, c := range r.counters {
		out.Counters[k] = c.Load()
	}
	for k, g := range r.gauges {
		out.Gauges[k] = g.Load()
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for k, fn := range r.gaugeFns {
		fns[k] = fn
	}
	sets := make(map[string]func() map[string]int64, len(r.gaugeSets))
	for k, fn := range r.gaugeSets {
		sets[k] = fn
	}
	for k, h := range r.hists {
		s := h.Snapshot()
		out.Hists[k] = HistJSON{
			Count:  s.Count(),
			MeanNS: s.Mean(),
			P50NS:  s.Quantile(0.50),
			P95NS:  s.Quantile(0.95),
			P99NS:  s.Quantile(0.99),
			MaxNS:  s.Max,
		}
	}
	r.mu.Unlock()
	for k, fn := range fns {
		out.Gauges[k] = fn()
	}
	for name, fn := range sets {
		for lbl, v := range fn() {
			out.Gauges[name+lbl] = v
		}
	}
	return out
}

// Handler serves the live metrics endpoint over one or more registries
// (e.g. a server registry plus a vault registry): Prometheus text by
// default, a JSON snapshot with ?format=json. Registries are rendered in
// argument order; for JSON, later registries win on (unlikely) name
// collisions.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			merged := SnapshotJSON{
				Counters: map[string]int64{},
				Gauges:   map[string]int64{},
				Hists:    map[string]HistJSON{},
			}
			for _, r := range regs {
				s := r.Snapshot()
				for k, v := range s.Counters {
					merged.Counters[k] = v
				}
				for k, v := range s.Gauges {
					merged.Gauges[k] = v
				}
				for k, v := range s.Hists {
					merged.Hists[k] = v
				}
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(merged)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		for _, r := range regs {
			r.WritePrometheus(w)
		}
	})
}
