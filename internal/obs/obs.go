// Package obs is the repo's dependency-free observability core: sharded
// lock-free counters, gauges, and mergeable log2 latency histograms,
// collected in a Registry that can render itself as a Prometheus text
// exposition or a JSON snapshot.
//
// The paper's whole evaluation method is the per-stage latency breakdown
// (Tables 2-4 decompose each DSA variant's I/O into submission, data
// transfer, server processing and completion costs); this package is the
// machinery that lets the real TCP path produce the same tables live
// instead of from ad-hoc counters. Instrumented code captures per-request
// stage timestamps and folds them into per-stage histograms here —
// aggregation, never per-event logging.
//
// Every metric type is nil-receiver safe: a nil *Registry hands out nil
// *Counter/*Gauge/*Hist whose methods are single-branch no-ops. That is
// the disabled fast path — instrumentation stays compiled into the hot
// paths, and costs one predictable branch when no registry is configured.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// base anchors Now(): all obs timestamps are monotonic nanoseconds since
// process start, so stage arithmetic is immune to wall-clock steps.
var base = time.Now()

// Now returns a monotonic nanosecond timestamp for stage tracing.
func Now() int64 { return int64(time.Since(base)) }

// counterShards spreads a Counter over independent cache lines so
// concurrent submitters (sessions, disk workers) do not serialize on one
// contended word. Power of two.
const counterShards = 8

// padCell is one atomic counter on its own cache line.
type padCell struct {
	v atomic.Int64
	_ [7]int64
}

// shardIdx picks a shard from the caller's stack address — goroutines
// have distinct stacks, so distinct hot goroutines land on distinct
// shards without any per-goroutine registration or runtime hooks.
func shardIdx() int {
	var probe byte
	p := uintptr(unsafe.Pointer(&probe))
	return int((p>>10)^(p>>17)) & (counterShards - 1)
}

// Counter is a monotonically increasing sharded counter.
type Counter struct {
	shards [counterShards]padCell
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.shards[shardIdx()].v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load sums the shards.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry names and owns a set of metrics. The zero value is not
// usable; call New. A nil *Registry is the disabled registry: every
// lookup returns a nil metric whose methods no-op.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Hist
	gaugeFns  map[string]func() int64
	gaugeSets map[string]func() map[string]int64
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Hist),
		gaugeFns:  make(map[string]func() int64),
		gaugeSets: make(map[string]func() map[string]int64),
	}
}

// Counter returns (creating on first use) the named counter, or nil on a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge, or nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns (creating on first use) the named histogram, or nil on a
// nil registry.
func (r *Registry) Hist(name string) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Hist{}
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a callback gauge: the value is computed at
// snapshot time, so existing atomic counters (server stats, cache
// counters, vault health) export without double bookkeeping. Metric
// names may carry a Prometheus label set (`name{k="v"}`). No-op on a nil
// registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// GaugeSet registers a callback producing a whole labeled gauge family
// at once: fn returns label-set → value (label sets in the `{k="v"}`
// form), and each entry is exported as name{k="v"}. Unlike GaugeFunc,
// the member set is recomputed at every snapshot, so families whose
// population changes at runtime — scheduler tenants appearing as logical
// streams open — export without pre-registering every member. No-op on
// a nil registry.
func (r *Registry) GaugeSet(name string, fn func() map[string]int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gaugeSets[name] = fn
	r.mu.Unlock()
}

// sortedKeys returns map keys in stable order for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
