package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	s := h.Snapshot()
	if s.Count() != 0 || s.Mean() != 0 || s.Quantile(0.5) != 0 || s.Quantile(0.99) != 0 {
		t.Fatalf("empty hist not all-zero: count=%d mean=%v p50=%v", s.Count(), s.Mean(), s.Quantile(0.5))
	}
}

func TestHistSingleBucket(t *testing.T) {
	var h Hist
	const v = 1000 // all observations land in one bucket
	for i := 0; i < 100; i++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count() != 100 {
		t.Fatalf("count = %d, want 100", s.Count())
	}
	if got := s.Mean(); got != v {
		t.Fatalf("mean = %v, want %v (sum-based mean is exact)", got, v)
	}
	if s.Max != v {
		t.Fatalf("max = %d, want %d", s.Max, v)
	}
	// Quantiles have log2 resolution: the estimate must be within the
	// observation's bucket [512, 1024), clamped by the exact max.
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		if got < 512 || got > v {
			t.Fatalf("quantile(%v) = %v, want within [512,%d]", q, got, v)
		}
	}
}

func TestHistQuantileOrdering(t *testing.T) {
	var h Hist
	// Two well-separated populations: 90% fast (~1µs), 10% slow (~1ms).
	for i := 0; i < 900; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1_000_000)
	}
	s := h.Snapshot()
	p50, p99 := s.Quantile(0.5), s.Quantile(0.99)
	if p50 >= 2048 {
		t.Fatalf("p50 = %v, want in the fast population's bucket", p50)
	}
	if p99 < 512*1024 {
		t.Fatalf("p99 = %v, want in the slow population's bucket", p99)
	}
	if p50 > p99 {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v", p50, p99)
	}
	wantMean := (900*1000 + 100*1_000_000) / 1000.0
	if got := s.Mean(); math.Abs(got-wantMean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, wantMean)
	}
}

func TestHistNonPositive(t *testing.T) {
	var h Hist
	h.Observe(0)
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count() != 2 || s.Buckets[0] != 2 {
		t.Fatalf("non-positive observations must land in bucket 0: %+v", s.Buckets[:2])
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	for i := 0; i < 10; i++ {
		a.Observe(100)
	}
	for i := 0; i < 30; i++ {
		b.Observe(100_000)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count() != 40 {
		t.Fatalf("merged count = %d, want 40", s.Count())
	}
	if s.Sum != 10*100+30*100_000 {
		t.Fatalf("merged sum = %d", s.Sum)
	}
	if s.Max != 100_000 {
		t.Fatalf("merged max = %d, want 100000", s.Max)
	}
	// Merging an empty snapshot changes nothing.
	before := s
	s.Merge(HistSnapshot{})
	if s != before {
		t.Fatal("merge with empty snapshot changed the histogram")
	}
	// Merging into an empty snapshot yields the source.
	var e HistSnapshot
	e.Merge(before)
	if e != before {
		t.Fatal("merge into empty snapshot lost data")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	const workers, perWorker = 16, 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("sharded counter lost updates: %d != %d", got, workers*perWorker)
	}
	if r.Counter("hits") != c {
		t.Fatal("registry handed out a different counter for the same name")
	}
}

func TestHistConcurrent(t *testing.T) {
	r := New()
	h := r.Hist("lat")
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(1 + w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count() != workers*perWorker {
		t.Fatalf("concurrent hist lost observations: %d != %d", s.Count(), workers*perWorker)
	}
}

func TestNilRegistryFastPath(t *testing.T) {
	var r *Registry
	// None of these may panic, and all reads come back zero.
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Hist("z")
	r.GaugeFunc("f", func() int64 { return 1 })
	c.Add(5)
	c.Inc()
	g.Set(7)
	g.Add(1)
	h.Observe(123)
	if c.Load() != 0 || g.Load() != 0 || h.Snapshot().Count() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil registry wrote prometheus output")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Hists) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestPrometheusAndJSON(t *testing.T) {
	r := New()
	r.Counter("req_total").Add(3)
	r.Gauge("inflight").Set(2)
	r.GaugeFunc(`backend_state{backend="0"}`, func() int64 { return 1 })
	h := r.Hist("lat_ns")
	h.Observe(1000)
	h.Observe(2000)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE req_total counter", "req_total 3",
		"inflight 2",
		"# TYPE backend_state gauge", `backend_state{backend="0"} 1`,
		"# TYPE lat_ns summary", `lat_ns{quantile="0.5"}`,
		"lat_ns_sum 3000", "lat_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}

	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap SnapshotJSON
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["req_total"] != 3 || snap.Gauges["inflight"] != 2 {
		t.Fatalf("JSON snapshot wrong: %+v", snap)
	}
	if hj := snap.Hists["lat_ns"]; hj.Count != 2 || hj.MeanNS != 1500 || hj.MaxNS != 2000 {
		t.Fatalf("JSON hist wrong: %+v", snap.Hists["lat_ns"])
	}
}

func TestBreakdownTable(t *testing.T) {
	r := New()
	r.Hist("stage_a").Observe(1000)
	r.Hist("stage_a").Observe(3000)
	r.Hist("stage_b").Observe(500)
	defs := []StageDef{
		{Display: "alpha", Metric: "stage_a"},
		{Display: "beta", Metric: "stage_b"},
		{Display: "gamma", Metric: "stage_missing"},
	}
	rows := Breakdown(r, defs)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Count != 2 || rows[0].MeanNS != 2000 {
		t.Fatalf("alpha row wrong: %+v", rows[0])
	}
	if rows[2].Count != 0 || rows[2].MeanNS != 0 {
		t.Fatalf("missing stage must yield a zero row: %+v", rows[2])
	}
	if got := SumMeanNS(rows); got != 2500 {
		t.Fatalf("stage-sum = %v, want 2500", got)
	}
	table := FormatBreakdown(rows, 2600)
	for _, want := range []string{"alpha", "beta", "stage sum", "measured e2e"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}
