package diskq

import (
	"sync"

	"github.com/v3storage/v3/internal/obs"
)

// portableRing services the SQ/CQ contract on any platform and over any
// File with a router goroutine feeding a bounded worker pool. The
// router is the ordering authority: regular operations fan out to the
// workers and complete in any order, while an fsync is a drain
// barrier — the router stops dispatching, waits for every in-service
// operation's completion to be posted, runs Sync inline, posts the
// fsync completion, and only then resumes. That reproduces io_uring's
// IOSQE_IO_DRAIN semantics including CQ ordering: the fsync CQE is
// visible only after every CQE it waited for.
type portableRing struct {
	f File

	sq chan pOp // capacity == depth, so a Queue-bounded submit never blocks
	wq chan pOp

	cqMu     sync.Mutex
	cqCond   *sync.Cond
	cq       []Completion
	cqClosed bool

	// svcMu guards the in-service count for the fsync drain barrier.
	// Workers post the CQE before decrementing, so outstanding==0 implies
	// every prior completion is already in the CQ.
	svcMu       sync.Mutex
	svcCond     *sync.Cond
	outstanding int

	workerWG sync.WaitGroup
	routerWG sync.WaitGroup

	// queueWait/deviceTime split an op's latency at worker pickup — the
	// decomposition only this backend can observe directly (io_uring
	// services inside the kernel, so there the Queue's op-total histogram
	// is the finest grain).
	queueWait  *obs.Hist
	deviceTime *obs.Hist
}

// pOp is one submission in flight through the router.
type pOp struct {
	op  Op
	tok uint64
	enq int64
}

func newPortableRing(f File, depth, workers int, queueWait, deviceTime *obs.Hist) *portableRing {
	if workers <= 0 {
		workers = depth
	}
	if workers > depth {
		workers = depth
	}
	r := &portableRing{
		f:          f,
		sq:         make(chan pOp, depth),
		wq:         make(chan pOp, depth),
		queueWait:  queueWait,
		deviceTime: deviceTime,
	}
	r.cqCond = sync.NewCond(&r.cqMu)
	r.svcCond = sync.NewCond(&r.svcMu)
	for i := 0; i < workers; i++ {
		r.workerWG.Add(1)
		go r.worker()
	}
	r.routerWG.Add(1)
	go r.router()
	return r
}

func (r *portableRing) name() string { return "portable" }

func (r *portableRing) submit(ops []Op, token uint64) error {
	// Always stamped: the queue-wait/device-time split rides every
	// Completion for per-request tracing, not just the metric histograms.
	now := obs.Now()
	for i, op := range ops {
		r.sq <- pOp{op: op, tok: token + uint64(i), enq: now}
	}
	return nil
}

// router pulls the submission stream in order, fanning regular ops to
// the workers and executing fsync barriers inline.
func (r *portableRing) router() {
	defer r.routerWG.Done()
	for p := range r.sq {
		if p.op.Kind == OpFsync {
			r.drain()
			err := r.f.Sync()
			r.post(Completion{Token: p.tok, Err: err})
			continue
		}
		r.svcMu.Lock()
		r.outstanding++
		r.svcMu.Unlock()
		r.wq <- p
	}
	// Submission stream closed: drain the workers, then mark the CQ so a
	// blocked reaper sees every completion before ErrClosed.
	r.drain()
	close(r.wq)
	r.workerWG.Wait()
	r.cqMu.Lock()
	r.cqClosed = true
	r.cqCond.Broadcast()
	r.cqMu.Unlock()
}

// drain blocks until every dispatched operation has posted its CQE.
func (r *portableRing) drain() {
	r.svcMu.Lock()
	for r.outstanding > 0 {
		r.svcCond.Wait()
	}
	r.svcMu.Unlock()
}

func (r *portableRing) worker() {
	defer r.workerWG.Done()
	for p := range r.wq {
		svc0 := obs.Now()
		if r.queueWait != nil && p.enq != 0 {
			r.queueWait.Observe(svc0 - p.enq)
		}
		var c Completion
		c.Token = p.tok
		switch p.op.Kind {
		case OpRead:
			n, err := r.f.ReadAt(p.op.Buf, p.op.Off)
			c.N, c.Err = normalizeRead(p.op.Buf, n, err)
		case OpWrite:
			c.N, c.Err = r.f.WriteAt(p.op.Buf, p.op.Off)
		default:
			c.Err = ErrClosed // unreachable: fsync never enters the worker queue
		}
		done := obs.Now()
		if r.deviceTime != nil {
			r.deviceTime.Observe(done - svc0)
		}
		if p.enq != 0 {
			c.QueueNS = svc0 - p.enq
		}
		c.DeviceNS = done - svc0
		r.post(c)
		r.svcMu.Lock()
		r.outstanding--
		if r.outstanding == 0 {
			r.svcCond.Broadcast()
		}
		r.svcMu.Unlock()
	}
}

func (r *portableRing) post(c Completion) {
	r.cqMu.Lock()
	r.cq = append(r.cq, c)
	r.cqCond.Signal()
	r.cqMu.Unlock()
}

func (r *portableRing) reap(out []Completion, min int) (int, error) {
	if min > len(out) {
		min = len(out)
	}
	r.cqMu.Lock()
	defer r.cqMu.Unlock()
	for len(r.cq) < min && !(min <= 0) && !r.cqClosed {
		r.cqCond.Wait()
	}
	if len(r.cq) == 0 && r.cqClosed {
		return 0, ErrClosed
	}
	n := copy(out, r.cq)
	rem := copy(r.cq, r.cq[n:])
	r.cq = r.cq[:rem]
	return n, nil
}

// close stops intake; the router drains in-flight work, the workers
// exit, and the CQ transitions to closed once every completion is
// posted.
func (r *portableRing) close() error {
	close(r.sq)
	r.routerWG.Wait()
	return nil
}
