//go:build !linux

package diskq

import "os"

// newURing is the non-Linux stub: Backend IOUring fails with
// ErrUnsupported and Auto falls through to the portable pool.
func newURing(f *os.File, depth int, a *arena) (ring, error) {
	_ = f
	_ = depth
	_ = a
	return nil, ErrUnsupported
}
