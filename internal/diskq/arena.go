package diskq

import (
	"io"
	"sync"
	"unsafe"

	"github.com/v3storage/v3/internal/bufpool"
)

// arena is the queue's registered-buffer pool: a fixed set of
// O_DIRECT-aligned slabs allocated once at Open. On the io_uring
// backend the slabs are registered with the kernel
// (IORING_REGISTER_BUFFERS) so they stay pinned for the queue's
// lifetime and I/O on them uses the FIXED opcodes, skipping the per-op
// page-pin — the paper's registration-caching discipline applied to
// disk buffers. On the portable backend they are simply a zero-steady-
// state-allocation staging pool.
type arena struct {
	slabSize int
	slabs    [][]byte // each cap == slabSize, DirectAlign-aligned

	mu   sync.Mutex
	free []int           // free slot indices (LIFO for cache warmth)
	base map[uintptr]int // &slab[0] → slot index
}

func newArena(count, size int) *arena {
	a := &arena{
		slabSize: size,
		slabs:    make([][]byte, count),
		free:     make([]int, count),
		base:     make(map[uintptr]int, count),
	}
	for i := range a.slabs {
		s := bufpool.AlignedSlab(size)
		a.slabs[i] = s
		a.free[i] = count - 1 - i
		a.base[uintptr(unsafe.Pointer(&s[0]))] = i
	}
	return a
}

// get returns a free slab sliced to n, or nil when n exceeds the slab
// size or all slabs are out (the caller falls back to the aligned pool).
func (a *arena) get(n int) []byte {
	if n > a.slabSize || n == 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.free) == 0 {
		return nil
	}
	i := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	return a.slabs[i][:n]
}

// put returns b to the arena if it is one of its slabs; false means the
// buffer belongs to the fallback pool.
func (a *arena) put(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	i, ok := a.base[uintptr(unsafe.Pointer(&b[0]))]
	if !ok {
		return false
	}
	a.free = append(a.free, i)
	return true
}

// slot returns b's registered-buffer index for FIXED submission, or
// false when b is not an arena slab (or is an interior slice of one —
// FIXED I/O must start at the registered base).
func (a *arena) slot(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	i, ok := a.base[uintptr(unsafe.Pointer(&b[0]))]
	return i, ok
}

// normalizeRead maps a backend read result onto the queue's sparse-store
// read contract: a read that ran past end-of-file zero-fills the
// remainder and reports success, exactly like reading a sparse hole.
// Both backends route read completions through here so a file shorter
// than the I/O range cannot make them diverge — the portable path sees
// io.EOF from ReaderAt, the io_uring path a short positive result, and
// both come out identical.
func normalizeRead(buf []byte, n int, err error) (int, error) {
	if n < 0 {
		n = 0
	}
	if n < len(buf) && (err == nil || err == io.EOF || err == io.ErrUnexpectedEOF) {
		zero(buf[n:])
		return len(buf), nil
	}
	if err != nil {
		return n, err
	}
	return n, nil
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
