package diskq

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/obs"
)

// newTestFile creates a temp file of size bytes, removed with the test.
func newTestFile(t *testing.T, size int64) *os.File {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "vol.img"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(size); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// uringAvailable probes once whether this kernel services io_uring.
var uringAvailable = func() bool {
	f, err := os.CreateTemp("", "diskq-probe")
	if err != nil {
		return false
	}
	defer os.Remove(f.Name())
	defer f.Close()
	q, err := Open(f, Config{Depth: 4, Backend: IOUring})
	if err != nil {
		return false
	}
	defer drainClose(q)
	return true
}()

// drainClose closes q and reaps until the backend reports drained, as
// the single-consumer contract requires.
func drainClose(q *Queue) {
	q.Close()
	var out [64]Completion
	for {
		if _, err := q.Reap(out[:], 1); err != nil {
			return
		}
	}
}

// eachBackend runs fn once per available backend. The portable pool
// always runs; io_uring runs whenever the kernel cooperates, so on the
// Linux CI runner every test exercises both engines.
func eachBackend(t *testing.T, fn func(t *testing.T, b Backend)) {
	t.Run("portable", func(t *testing.T) { fn(t, Portable) })
	t.Run("io_uring", func(t *testing.T) {
		if !uringAvailable {
			t.Skip("io_uring not available on this kernel")
		}
		fn(t, IOUring)
	})
}

// reapN harvests exactly n completions.
func reapN(t *testing.T, q *Queue, n int) []Completion {
	t.Helper()
	out := make([]Completion, 0, n)
	buf := make([]Completion, n)
	for len(out) < n {
		got, err := q.Reap(buf, 1)
		if err != nil {
			t.Fatalf("reap: %v (have %d/%d)", err, len(out), n)
		}
		out = append(out, buf[:got]...)
	}
	return out
}

func TestReadWriteFsync(t *testing.T) {
	eachBackend(t, func(t *testing.T, b Backend) {
		f := newTestFile(t, 1<<20)
		q, err := Open(f, Config{Depth: 8, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		defer drainClose(q)

		payload := bytes.Repeat([]byte{0xab}, 8192)
		wt, err := q.SubmitWrite(payload, 16384)
		if err != nil {
			t.Fatal(err)
		}
		c := reapN(t, q, 1)[0]
		if c.Token != wt || c.Err != nil || c.N != len(payload) {
			t.Fatalf("write completion = %+v, want token %d n %d", c, wt, len(payload))
		}

		st, err := q.SubmitFsync()
		if err != nil {
			t.Fatal(err)
		}
		c = reapN(t, q, 1)[0]
		if c.Token != st || c.Err != nil {
			t.Fatalf("fsync completion = %+v", c)
		}

		got := make([]byte, len(payload))
		rt, err := q.SubmitRead(got, 16384)
		if err != nil {
			t.Fatal(err)
		}
		c = reapN(t, q, 1)[0]
		if c.Token != rt || c.Err != nil || c.N != len(got) {
			t.Fatalf("read completion = %+v", c)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("read back different bytes")
		}
	})
}

func TestVectoredBatchTokens(t *testing.T) {
	eachBackend(t, func(t *testing.T, b Backend) {
		f := newTestFile(t, 1<<20)
		q, err := Open(f, Config{Depth: 16, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		defer drainClose(q)

		// One vectored submit: 8 extents of distinct bytes.
		ops := make([]Op, 8)
		for i := range ops {
			buf := bytes.Repeat([]byte{byte(i + 1)}, 4096)
			ops[i] = Op{Kind: OpWrite, Buf: buf, Off: int64(i) * 4096}
		}
		first, _, err := q.Submit(ops)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]bool{}
		for _, c := range reapN(t, q, len(ops)) {
			if c.Err != nil {
				t.Fatalf("completion error: %v", c.Err)
			}
			seen[c.Token] = true
		}
		for i := range ops {
			if !seen[first+uint64(i)] {
				t.Fatalf("token %d missing (batch base %d)", first+uint64(i), first)
			}
		}
		if st := q.Stats(); st.Batches != 1 || st.Submitted != 8 {
			t.Fatalf("stats = %+v, want 1 batch of 8", st)
		}

		// Read the extents back as one batch and verify the bytes.
		reads := make([]Op, 8)
		bufs := make([][]byte, 8)
		for i := range reads {
			bufs[i] = make([]byte, 4096)
			reads[i] = Op{Kind: OpRead, Buf: bufs[i], Off: int64(i) * 4096}
		}
		if _, _, err := q.Submit(reads); err != nil {
			t.Fatal(err)
		}
		reapN(t, q, len(reads))
		for i, buf := range bufs {
			if buf[0] != byte(i+1) || buf[4095] != byte(i+1) {
				t.Fatalf("extent %d corrupt: %x..%x", i, buf[0], buf[4095])
			}
		}
	})
}

// TestBatchLargerThanDepth submits one batch bigger than the queue
// depth: Submit must chunk it internally, blocking on its own
// completions, provided someone reaps.
func TestBatchLargerThanDepth(t *testing.T) {
	eachBackend(t, func(t *testing.T, b Backend) {
		f := newTestFile(t, 1<<20)
		q, err := Open(f, Config{Depth: 4, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		defer drainClose(q)

		const n = 13
		ops := make([]Op, n)
		for i := range ops {
			ops[i] = Op{Kind: OpWrite, Buf: []byte{byte(i)}, Off: int64(i)}
		}
		// Submit from a goroutine (it blocks between chunks), reap here so
		// test failures land on the test goroutine.
		firstc := make(chan uint64, 1)
		go func() {
			first, _, err := q.Submit(ops)
			if err != nil {
				t.Errorf("submit: %v", err)
			}
			firstc <- first
		}()
		comps := reapN(t, q, n)
		first := <-firstc
		if len(comps) != n {
			t.Fatalf("got %d completions, want %d", len(comps), n)
		}
		last := first + uint64(n) - 1
		seen := map[uint64]bool{}
		for _, c := range comps {
			seen[c.Token] = true
		}
		if !seen[first] || !seen[last] {
			t.Fatalf("token range [%d,%d] incomplete", first, last)
		}
	})
}

// slowFile's reads take real time, keeping a tiny queue full so a
// blocking batch Submit parks between chunks while TrySubmit races it.
type slowFile struct{}

func (slowFile) ReadAt(p []byte, off int64) (int, error) {
	time.Sleep(100 * time.Microsecond)
	clear(p)
	return len(p), nil
}
func (slowFile) WriteAt(p []byte, off int64) (int, error) { return len(p), nil }
func (slowFile) Sync() error                              { return nil }

// TestSubmitTokensUniqueUnderInterleaving is the regression test for a
// token-collision bug: Submit waits for queue space between chunks with
// the queue mutex released, so a concurrent TrySubmit can draw tokens
// mid-batch. The batch must reserve its whole contiguous token range up
// front — if it instead re-derives tokens from a stale local counter,
// two in-flight ops share one token and a completion is lost. Every
// completion's token must be unique.
func TestSubmitTokensUniqueUnderInterleaving(t *testing.T) {
	q, err := Open(slowFile{}, Config{Depth: 2, Backend: Portable})
	if err != nil {
		t.Fatal(err)
	}

	const batchOps = 100
	var (
		mu       sync.Mutex
		expected = make(map[uint64]bool)
		total    int
	)
	note := func(first uint64, n int) {
		mu.Lock()
		for i := 0; i < n; i++ {
			expected[first+uint64(i)] = true
		}
		total += n
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ops := make([]Op, batchOps)
		for i := range ops {
			ops[i] = Op{Kind: OpRead, Buf: make([]byte, 64), Off: int64(i) * 64}
		}
		first, n, err := q.Submit(ops)
		if err != nil {
			t.Errorf("batch submit: %v", err)
		}
		note(first, n)
	}()
	go func() {
		defer wg.Done()
		accepted := 0
		for spins := 0; accepted < batchOps && spins < 1_000_000; spins++ {
			if tok, ok := q.TrySubmit(Op{Kind: OpRead, Buf: make([]byte, 64), Off: 0}); ok {
				note(tok, 1)
				accepted++
			}
		}
	}()

	seen := make(map[uint64]int)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	out := make([]Completion, 8)
	for {
		n, err := q.Reap(out, 0) // poll; submitters still racing
		if err != nil {
			t.Fatalf("reap: %v", err)
		}
		for _, c := range out[:n] {
			seen[c.Token]++
			if seen[c.Token] > 1 {
				t.Fatalf("token %d completed %d times", c.Token, seen[c.Token])
			}
		}
		select {
		case <-done:
			mu.Lock()
			want := total
			mu.Unlock()
			if len(seen) >= want {
				for tok := range seen {
					if !expected[tok] {
						t.Fatalf("completion for never-issued token %d", tok)
					}
				}
				drainClose(q)
				return
			}
		default:
		}
	}
}

// TestFsyncBarrierOrdering checks the drain-barrier CQ contract: the
// fsync completion must be reaped after the completion of every write
// submitted before it.
func TestFsyncBarrierOrdering(t *testing.T) {
	eachBackend(t, func(t *testing.T, b Backend) {
		f := newTestFile(t, 1<<20)
		q, err := Open(f, Config{Depth: 32, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		defer drainClose(q)

		for round := 0; round < 8; round++ {
			const writes = 16
			toks := make(map[uint64]bool, writes)
			ops := make([]Op, writes)
			for i := range ops {
				ops[i] = Op{Kind: OpWrite, Buf: bytes.Repeat([]byte{byte(round)}, 512), Off: int64(i) * 512}
			}
			first, _, err := q.Submit(ops)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < writes; i++ {
				toks[first+uint64(i)] = true
			}
			ft, err := q.SubmitFsync()
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range reapN(t, q, writes+1) {
				if c.Token == ft {
					if len(toks) != 0 {
						t.Fatalf("round %d: fsync reaped with %d writes outstanding", round, len(toks))
					}
				} else {
					delete(toks, c.Token)
				}
			}
		}
	})
}

// TestReadPastEOFZeroFills pins the sparse-store read contract both
// backends share: a read overlapping end-of-file reports full length
// with the tail zeroed, exactly like a hole.
func TestReadPastEOFZeroFills(t *testing.T) {
	eachBackend(t, func(t *testing.T, b Backend) {
		f := newTestFile(t, 100)
		if _, err := f.WriteAt(bytes.Repeat([]byte{0xee}, 100), 0); err != nil {
			t.Fatal(err)
		}
		q, err := Open(f, Config{Depth: 4, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		defer drainClose(q)

		buf := bytes.Repeat([]byte{0x55}, 64)
		if _, err := q.SubmitRead(buf, 80); err != nil {
			t.Fatal(err)
		}
		c := reapN(t, q, 1)[0]
		if c.Err != nil || c.N != 64 {
			t.Fatalf("completion = %+v, want full 64-byte read", c)
		}
		for i := 0; i < 20; i++ {
			if buf[i] != 0xee {
				t.Fatalf("byte %d = %x, want data", i, buf[i])
			}
		}
		for i := 20; i < 64; i++ {
			if buf[i] != 0 {
				t.Fatalf("byte %d = %x, want zero fill", i, buf[i])
			}
		}
	})
}

// TestTrySubmitBackpressure fills the queue to depth and checks that
// TrySubmit refuses instead of blocking, then succeeds after a reap
// frees a slot.
func TestTrySubmitBackpressure(t *testing.T) {
	// Portable only: backpressure needs I/O held open, which wants a
	// controllable File.
	gate := make(chan struct{})
	bf := &blockingFile{gate: gate, size: 1 << 20}
	q, err := Open(bf, Config{Depth: 2, Backend: Portable})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(gate); drainClose(q) }()

	b := make([]byte, 64)
	if _, ok := q.TrySubmit(Op{Kind: OpRead, Buf: b, Off: 0}); !ok {
		t.Fatal("first TrySubmit refused")
	}
	if _, ok := q.TrySubmit(Op{Kind: OpRead, Buf: make([]byte, 64), Off: 64}); !ok {
		t.Fatal("second TrySubmit refused")
	}
	if _, ok := q.TrySubmit(Op{Kind: OpRead, Buf: make([]byte, 64), Off: 128}); ok {
		t.Fatal("TrySubmit beyond depth accepted")
	}
	if got := q.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	gate <- struct{}{} // release one read
	reapN(t, q, 1)
	if _, ok := q.TrySubmit(Op{Kind: OpRead, Buf: make([]byte, 64), Off: 128}); !ok {
		t.Fatal("TrySubmit after reap refused")
	}
	gate <- struct{}{}
	gate <- struct{}{}
	reapN(t, q, 2)
}

// blockingFile's reads block until released via gate; writes and sync
// are immediate. It stands in for a device with controllable latency.
type blockingFile struct {
	gate chan struct{}
	size int64
	mu   sync.Mutex
	data map[int64][]byte
}

func (b *blockingFile) ReadAt(p []byte, off int64) (int, error) {
	<-b.gate
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

func (b *blockingFile) WriteAt(p []byte, off int64) (int, error) { return len(p), nil }
func (b *blockingFile) Sync() error                              { return nil }

// TestReapMinZeroPolls checks min<=0 never blocks.
func TestReapMinZeroPolls(t *testing.T) {
	eachBackend(t, func(t *testing.T, b Backend) {
		f := newTestFile(t, 4096)
		q, err := Open(f, Config{Depth: 4, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		defer drainClose(q)
		var out [4]Completion
		done := make(chan int)
		go func() {
			n, _ := q.Reap(out[:], 0)
			done <- n
		}()
		select {
		case n := <-done:
			if n != 0 {
				t.Fatalf("poll returned %d completions on an idle queue", n)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Reap(min=0) blocked")
		}
	})
}

// TestCloseWakesReaper blocks a reaper on an idle queue and closes it:
// the reaper must wake with ErrClosed, not hang.
func TestCloseWakesReaper(t *testing.T) {
	eachBackend(t, func(t *testing.T, b Backend) {
		f := newTestFile(t, 4096)
		q, err := Open(f, Config{Depth: 4, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		errc := make(chan error)
		go func() {
			var out [4]Completion
			_, err := q.Reap(out[:], 1)
			errc <- err
		}()
		time.Sleep(50 * time.Millisecond) // let the reaper block
		if err := q.Close(); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errc:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("reaper returned %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("reaper still blocked after Close")
		}
	})
}

// TestCloseDrainsInFlight submits work, closes immediately, and checks
// every accepted op still completes before ErrClosed.
func TestCloseDrainsInFlight(t *testing.T) {
	eachBackend(t, func(t *testing.T, b Backend) {
		f := newTestFile(t, 1<<20)
		q, err := Open(f, Config{Depth: 32, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		const n = 24
		ops := make([]Op, n)
		for i := range ops {
			ops[i] = Op{Kind: OpWrite, Buf: bytes.Repeat([]byte{7}, 1024), Off: int64(i) * 1024}
		}
		if _, _, err := q.Submit(ops); err != nil {
			t.Fatal(err)
		}
		if err := q.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := q.SubmitWrite([]byte{1}, 0); !errors.Is(err, ErrClosed) {
			t.Fatalf("submit after close = %v, want ErrClosed", err)
		}
		got := 0
		var out [8]Completion
		for {
			k, err := q.Reap(out[:], 1)
			got += k
			if err != nil {
				if !errors.Is(err, ErrClosed) {
					t.Fatal(err)
				}
				break
			}
		}
		if got != n {
			t.Fatalf("drained %d completions, want %d", got, n)
		}
	})
}

// TestConcurrentSubmitters races many submitters against one reaper —
// the package's -race workout.
func TestConcurrentSubmitters(t *testing.T) {
	eachBackend(t, func(t *testing.T, b Backend) {
		f := newTestFile(t, 1<<20)
		q, err := Open(f, Config{Depth: 16, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		const (
			goroutines = 8
			perG       = 50
		)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				base := int64(g) * 128 * 1024
				for i := 0; i < perG; i++ {
					if i%10 == 9 {
						if _, err := q.SubmitFsync(); err != nil {
							t.Errorf("fsync: %v", err)
							return
						}
						continue
					}
					buf := bytes.Repeat([]byte{byte(g)}, 512)
					var err error
					if i%2 == 0 {
						_, err = q.SubmitWrite(buf, base+int64(i)*512)
					} else {
						_, err = q.SubmitRead(buf, base+int64(i)*512)
					}
					if err != nil {
						t.Errorf("submit: %v", err)
						return
					}
				}
			}(g)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			var out [32]Completion
			total := 0
			for total < goroutines*perG {
				n, err := q.Reap(out[:], 1)
				if err != nil {
					t.Errorf("reap: %v", err)
					return
				}
				for _, c := range out[:n] {
					if c.Err != nil {
						t.Errorf("completion: %v", c.Err)
					}
				}
				total += n
			}
		}()
		wg.Wait()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("reaper did not collect all completions")
		}
		drainClose(q)
	})
}

// TestDifferential replays one pseudo-random workload trace through the
// io_uring backend and the portable fallback and requires byte-identical
// outcomes: every read completion's buffer and the final file image.
// This is the acceptance gate that lets every consumer test run on
// either backend interchangeably.
func TestDifferential(t *testing.T) {
	if !uringAvailable {
		t.Skip("io_uring not available; differential needs both backends")
	}
	const (
		fileSize = 1 << 20
		rounds   = 40
		opsPer   = 12
		depth    = 16
	)

	type traceOp struct {
		write bool
		off   int64
		n     int
		seed  int64
	}
	rng := rand.New(rand.NewSource(0x5eed))
	var trace [][]traceOp
	for r := 0; r < rounds; r++ {
		// Within a round offsets are disjoint, so intra-round completion
		// order cannot affect the bytes; rounds are separated by a
		// reap-all barrier.
		write := r%2 == 0
		used := map[int64]bool{}
		var round []traceOp
		for len(round) < opsPer {
			blk := rng.Int63n(fileSize / 4096)
			if used[blk] {
				continue
			}
			used[blk] = true
			round = append(round, traceOp{write: write, off: blk * 4096, n: 4096, seed: rng.Int63()})
		}
		trace = append(trace, round)
	}

	run := func(b Backend) ([]byte, [][]byte) {
		f := newTestFile(t, fileSize)
		q, err := Open(f, Config{Depth: depth, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		var readBufs [][]byte
		for r, round := range trace {
			ops := make([]Op, 0, len(round))
			for _, to := range round {
				buf := make([]byte, to.n)
				if to.write {
					rand.New(rand.NewSource(to.seed)).Read(buf)
				} else {
					readBufs = append(readBufs, buf)
				}
				kind := OpRead
				if to.write {
					kind = OpWrite
				}
				ops = append(ops, Op{Kind: kind, Buf: buf, Off: to.off})
			}
			if _, _, err := q.Submit(ops); err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
			for _, c := range reapN(t, q, len(ops)) {
				if c.Err != nil {
					t.Fatalf("round %d completion: %v", r, c.Err)
				}
			}
			if r%7 == 6 {
				if _, err := q.SubmitFsync(); err != nil {
					t.Fatal(err)
				}
				reapN(t, q, 1)
			}
		}
		drainClose(q)
		img := make([]byte, fileSize)
		if _, err := f.ReadAt(img, 0); err != nil {
			t.Fatal(err)
		}
		return img, readBufs
	}

	imgU, readsU := run(IOUring)
	imgP, readsP := run(Portable)
	if !bytes.Equal(imgU, imgP) {
		t.Fatal("final file images differ between io_uring and portable backends")
	}
	if len(readsU) != len(readsP) {
		t.Fatalf("read counts differ: %d vs %d", len(readsU), len(readsP))
	}
	for i := range readsU {
		if !bytes.Equal(readsU[i], readsP[i]) {
			t.Fatalf("read %d differs between backends", i)
		}
	}
}

// TestRegisteredBuffers exercises the arena: in-arena gets, fallback to
// the aligned pool on exhaustion and oversize, alignment of everything,
// and I/O through arena slabs (FIXED opcodes on io_uring).
func TestRegisteredBuffers(t *testing.T) {
	eachBackend(t, func(t *testing.T, b Backend) {
		f := newTestFile(t, 1<<20)
		q, err := Open(f, Config{Depth: 8, Backend: b, RegBufs: 2, RegBufSize: 64 << 10})
		if err != nil {
			t.Fatal(err)
		}
		defer drainClose(q)

		b1 := q.GetBuf(64 << 10)
		b2 := q.GetBuf(4096)
		b3 := q.GetBuf(4096)    // arena exhausted → pool
		b4 := q.GetBuf(128 << 10) // oversize → pool
		for i, buf := range [][]byte{b1, b2, b3, b4} {
			if len(buf) == 0 {
				t.Fatalf("buf %d empty", i)
			}
		}
		st := q.Stats()
		if st.ArenaGets != 2 || st.PoolGets != 2 {
			t.Fatalf("gets = arena %d pool %d, want 2/2", st.ArenaGets, st.PoolGets)
		}

		// I/O through an arena slab (the registered path on io_uring).
		copy(b1, bytes.Repeat([]byte{0xcd}, len(b1)))
		if _, err := q.SubmitWrite(b1[:8192], 0); err != nil {
			t.Fatal(err)
		}
		if c := reapN(t, q, 1)[0]; c.Err != nil || c.N != 8192 {
			t.Fatalf("arena write completion = %+v", c)
		}
		got := q.GetBuf(8192) // reuses pooled space; content overwritten by read
		if _, err := q.SubmitRead(got, 0); err != nil {
			t.Fatal(err)
		}
		if c := reapN(t, q, 1)[0]; c.Err != nil {
			t.Fatalf("read completion = %+v", c)
		}
		if got[0] != 0xcd || got[8191] != 0xcd {
			t.Fatal("arena-written bytes not read back")
		}
		q.PutBuf(b1)
		q.PutBuf(b2)
		q.PutBuf(b3)
		q.PutBuf(b4)
		q.PutBuf(got)
		if b5 := q.GetBuf(32 << 10); len(b5) != 32<<10 {
			t.Fatal("arena reuse after PutBuf failed")
		} else if st := q.Stats(); st.ArenaGets != 3 {
			t.Fatalf("ArenaGets = %d after Put/Get cycle, want 3", st.ArenaGets)
		}
	})
}

func TestMetricsRecorded(t *testing.T) {
	eachBackend(t, func(t *testing.T, b Backend) {
		reg := obs.New()
		f := newTestFile(t, 1<<20)
		q, err := Open(f, Config{Depth: 8, Backend: b, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer drainClose(q)
		ops := make([]Op, 4)
		for i := range ops {
			ops[i] = Op{Kind: OpWrite, Buf: make([]byte, 512), Off: int64(i) * 512}
		}
		if _, _, err := q.Submit(ops); err != nil {
			t.Fatal(err)
		}
		reapN(t, q, 4)
		if n := reg.Hist("diskq_submit_batch").Snapshot().Count(); n == 0 {
			t.Fatal("submit-batch histogram empty")
		}
		if n := reg.Hist("diskq_reap_batch").Snapshot().Count(); n == 0 {
			t.Fatal("reap-batch histogram empty")
		}
		if n := reg.Hist("diskq_op_total_ns").Snapshot().Count(); n != 4 {
			t.Fatalf("op-total histogram count = %d, want 4", n)
		}
		if b == Portable {
			if n := reg.Hist("diskq_queue_wait_ns").Snapshot().Count(); n != 4 {
				t.Fatalf("queue-wait count = %d, want 4", n)
			}
			if n := reg.Hist("diskq_device_ns").Snapshot().Count(); n != 4 {
				t.Fatalf("device-time count = %d, want 4", n)
			}
		}
	})
}

// TestBackendSelection pins Auto's choices: *os.File lands on io_uring
// where available; a non-file File always lands on the portable pool,
// and forcing IOUring on one fails loudly.
func TestBackendSelection(t *testing.T) {
	bf := &blockingFile{gate: make(chan struct{}), size: 4096}
	q, err := Open(bf, Config{Depth: 2, Backend: Auto})
	if err != nil {
		t.Fatal(err)
	}
	if q.BackendName() != "portable" {
		t.Fatalf("Auto over non-file chose %q", q.BackendName())
	}
	close(bf.gate)
	drainClose(q)

	if _, err := Open(bf, Config{Depth: 2, Backend: IOUring}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("IOUring over non-file = %v, want ErrUnsupported", err)
	}

	if uringAvailable {
		f := newTestFile(t, 4096)
		q, err := Open(f, Config{Depth: 2, Backend: Auto})
		if err != nil {
			t.Fatal(err)
		}
		if q.BackendName() != "io_uring" {
			t.Fatalf("Auto over *os.File chose %q", q.BackendName())
		}
		drainClose(q)
	}
}

// TestErrorCompletion checks an I/O error surfaces on the completion,
// not the submit, and carries the op range's actual failure.
func TestErrorCompletion(t *testing.T) {
	ef := &errFile{err: fmt.Errorf("injected device error")}
	q, err := Open(ef, Config{Depth: 2, Backend: Portable})
	if err != nil {
		t.Fatal(err)
	}
	defer drainClose(q)
	if _, err := q.SubmitWrite(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	c := reapN(t, q, 1)[0]
	if c.Err == nil {
		t.Fatal("write to failing device completed cleanly")
	}
}

type errFile struct{ err error }

func (e *errFile) ReadAt(p []byte, off int64) (int, error)  { return 0, e.err }
func (e *errFile) WriteAt(p []byte, off int64) (int, error) { return 0, e.err }
func (e *errFile) Sync() error                              { return e.err }
