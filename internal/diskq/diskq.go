// Package diskq is a batched submission/completion-queue disk backend —
// the disk-side twin of the paper's batched deregistration discipline
// (Section 3.1). Just as DSA amortizes NIC translation-table updates by
// batching deregistrations instead of paying the VIA doorbell per
// buffer, diskq amortizes per-I/O submission cost by moving operations
// through a submission queue (many SQEs, one kernel transition) and
// harvesting completions in batches from a completion queue.
//
// Two backends service the same SQ/CQ semantics and must produce
// byte-identical results:
//
//   - io_uring (Linux): raw io_uring_setup/io_uring_enter syscalls, no
//     cgo. A batch of N operations is one io_uring_enter; completions
//     are harvested straight from the mmap'd CQ ring. Buffers drawn
//     from the queue's registered arena are pinned in the kernel
//     (IORING_REGISTER_BUFFERS) and submitted as READ_FIXED/WRITE_FIXED,
//     skipping the per-I/O get_user_pages cost — the literal analogue of
//     the paper's memory-registration caching.
//   - portable: a bounded worker pool draining the same submission
//     stream on any platform (and any File implementation, including
//     fault injectors and latency models), preserving every ordering
//     guarantee. The differential test in this package drives both
//     backends over one workload trace and requires identical bytes.
//
// Ordering: operations may complete in any order, except OpFsync, which
// is a full drain barrier — it begins only after every earlier
// submission has completed, and later submissions begin only after it
// completes (IOSQE_IO_DRAIN on io_uring, an explicit drain point in the
// portable router). Its completion is also reaped after the completions
// of everything it waited for, so a consumer that sees the fsync CQE
// has already seen every write the barrier covers.
//
// Concurrency contract: any number of goroutines may submit; exactly
// one goroutine drives Reap (the completion dispatcher). Submission
// blocks while the queue is at depth — backpressure, not an error.
package diskq

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"github.com/v3storage/v3/internal/bufpool"
	"github.com/v3storage/v3/internal/obs"
)

// File is the storage a Queue operates on. *os.File qualifies for the
// io_uring backend; anything else (wrapped stores, fault injectors,
// in-memory volumes) is serviced by the portable backend.
type File interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
}

// Backend selects the servicing engine.
type Backend int

const (
	// Auto picks io_uring when the File is an *os.File on a kernel that
	// supports it, else the portable pool.
	Auto Backend = iota
	// Portable forces the goroutine-pool backend.
	Portable
	// IOUring forces the io_uring backend; Open fails with
	// ErrUnsupported when it cannot be used.
	IOUring
)

// OpKind is a submission's operation type.
type OpKind uint8

const (
	OpRead OpKind = iota
	OpWrite
	OpFsync
)

// Op is one submission-queue entry: a read into Buf at Off, a write of
// Buf at Off, or an fsync barrier (Buf/Off ignored).
type Op struct {
	Kind OpKind
	Buf  []byte
	Off  int64
}

// Completion is one harvested CQE. QueueNS/DeviceNS split the op's life
// at worker pickup, the decomposition the request tracer attributes to
// individual requests: QueueNS is submit → service start (SQ wait),
// DeviceNS is service start → done. The portable backend observes the
// split directly; io_uring services inside the kernel, so there Reap
// reports the whole submit → reap life as DeviceNS and QueueNS stays 0.
type Completion struct {
	Token    uint64 // the token Submit returned for this op
	N        int    // bytes transferred (0 for fsync)
	Err      error  // nil on success
	QueueNS  int64  // SQ wait (0 when the backend cannot observe it)
	DeviceNS int64  // service/device time
}

// Config sizes a Queue.
type Config struct {
	// Depth bounds in-flight operations (default 64). The io_uring SQ/CQ
	// rings are sized to match, so a full queue is backpressure at
	// Submit, never a dropped completion.
	Depth int
	// Backend selects the servicing engine (default Auto).
	Backend Backend
	// Workers bounds the portable backend's service goroutines
	// (default: Depth). Ignored by io_uring.
	Workers int
	// RegBufs is the number of registered (pinned) staging slabs in the
	// queue's buffer arena; 0 selects the default (8). Negative disables
	// the arena. Arena slabs are RegBufSize bytes, O_DIRECT-aligned, and
	// on io_uring submitted as READ_FIXED/WRITE_FIXED.
	RegBufs int
	// RegBufSize is the arena slab size (default 512 KiB — one maximal
	// destage run).
	RegBufSize int
	// Metrics, when non-nil, receives the queue's instrumentation:
	// submit/reap batch-size histograms, queue-wait vs device-time
	// split, and in-flight depth. Multiple queues on one registry share
	// (merge into) the same metrics.
	Metrics *obs.Registry
}

// Errors.
var (
	ErrClosed      = errors.New("diskq: queue closed")
	ErrUnsupported = errors.New("diskq: io_uring unsupported here")
)

const (
	defaultDepth      = 64
	defaultRegBufs    = 8
	defaultRegBufSize = 512 << 10
)

// ring is the backend contract. submit enqueues ops (token, token+1,
// ...) with one kernel transition / one router pass; reap harvests at
// least min completions (blocking) unless closing. close stops intake
// and, after in-flight operations drain, wakes any blocked reaper.
type ring interface {
	submit(ops []Op, token uint64) error
	reap(out []Completion, min int) (int, error)
	close() error
	name() string
}

// Stats is a point-in-time snapshot of queue activity.
type Stats struct {
	Submitted int64 // operations submitted
	Completed int64 // operations reaped
	Batches   int64 // submit calls that carried more than one op
	ArenaGets int64 // GetBuf served from the registered arena
	PoolGets  int64 // GetBuf served from the aligned fallback pool
}

// Queue is one SQ/CQ pair over a File.
type Queue struct {
	r     ring
	f     File
	depth int

	mu       sync.Mutex
	space    *sync.Cond // waits for in-flight < depth
	inFlight int
	nextTok  uint64
	closed   bool

	arena   *arena
	aligned *bufpool.Aligned

	submitted atomic.Int64
	completed atomic.Int64
	batches   atomic.Int64
	arenaGets atomic.Int64
	poolGets  atomic.Int64

	// Metrics (nil when Config.Metrics is unset).
	submitBatch *obs.Hist // diskq_submit_batch (ops per submit call)
	reapBatch   *obs.Hist // diskq_reap_batch (ops per reap return)
	queueWait   *obs.Hist // diskq_queue_wait_ns (submit → service start; portable only)
	deviceTime  *obs.Hist // diskq_device_ns (service start → done; portable only)
	opTotal     *obs.Hist // diskq_op_total_ns (submit → completion; both backends)

	tsMu sync.Mutex
	ts   map[uint64]int64 // token → submit timestamp, only when metrics on
}

// Open builds a Queue over f. With Backend Auto an *os.File is probed
// for io_uring support; everything else (and probe failure) selects the
// portable backend.
func Open(f File, cfg Config) (*Queue, error) {
	if cfg.Depth <= 0 {
		cfg.Depth = defaultDepth
	}
	q := &Queue{f: f, depth: cfg.Depth, aligned: bufpool.NewAligned()}
	q.space = sync.NewCond(&q.mu)

	nbufs, bufsz := cfg.RegBufs, cfg.RegBufSize
	if nbufs == 0 {
		nbufs = defaultRegBufs
	}
	if bufsz <= 0 {
		bufsz = defaultRegBufSize
	}
	if nbufs > 0 {
		q.arena = newArena(nbufs, bufsz)
	}

	if r := cfg.Metrics; r != nil {
		q.submitBatch = r.Hist("diskq_submit_batch")
		q.reapBatch = r.Hist("diskq_reap_batch")
		q.queueWait = r.Hist("diskq_queue_wait_ns")
		q.deviceTime = r.Hist("diskq_device_ns")
		q.opTotal = r.Hist("diskq_op_total_ns")
		q.ts = make(map[uint64]int64, cfg.Depth)
	}

	portable := func() *portableRing {
		pr := newPortableRing(f, cfg.Depth, cfg.Workers, q.queueWait, q.deviceTime)
		return pr
	}
	switch cfg.Backend {
	case Portable:
		q.r = portable()
	case IOUring, Auto:
		osf, ok := f.(*os.File)
		if ok {
			r, err := newURing(osf, cfg.Depth, q.arena)
			if err == nil {
				q.r = r
				break
			}
			if cfg.Backend == IOUring {
				return nil, err
			}
		} else if cfg.Backend == IOUring {
			return nil, fmt.Errorf("%w: not an *os.File", ErrUnsupported)
		}
		q.r = portable()
	default:
		return nil, fmt.Errorf("diskq: unknown backend %d", cfg.Backend)
	}
	return q, nil
}

// BackendName reports which engine services this queue ("io_uring" or
// "portable").
func (q *Queue) BackendName() string { return q.r.name() }

// Depth returns the configured in-flight bound.
func (q *Queue) Depth() int { return q.depth }

// InFlight returns the number of submitted, not-yet-reaped operations.
func (q *Queue) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inFlight
}

// Stats returns cumulative counters.
func (q *Queue) Stats() Stats {
	return Stats{
		Submitted: q.submitted.Load(),
		Completed: q.completed.Load(),
		Batches:   q.batches.Load(),
		ArenaGets: q.arenaGets.Load(),
		PoolGets:  q.poolGets.Load(),
	}
}

// SubmitRead enqueues a read of len(buf) bytes at off into buf and
// returns its completion token.
func (q *Queue) SubmitRead(buf []byte, off int64) (uint64, error) {
	return q.submitOne(Op{Kind: OpRead, Buf: buf, Off: off})
}

// SubmitWrite enqueues a write of buf at off.
func (q *Queue) SubmitWrite(buf []byte, off int64) (uint64, error) {
	return q.submitOne(Op{Kind: OpWrite, Buf: buf, Off: off})
}

// SubmitFsync enqueues the durability barrier: it starts only after
// every earlier submission completed, completes before anything
// submitted after it starts, and its completion is reaped after theirs.
func (q *Queue) SubmitFsync() (uint64, error) {
	return q.submitOne(Op{Kind: OpFsync})
}

func (q *Queue) submitOne(op Op) (uint64, error) {
	tok, _, err := q.Submit([]Op{op})
	if err != nil {
		return 0, err
	}
	return tok, nil
}

// Submit enqueues a batch of operations in one pass (one io_uring_enter
// for batches up to Depth; larger batches are chunked, blocking between
// chunks). It returns the first token and the number of ops actually
// handed to the backend; op i carries token first+i. Submit blocks
// while the queue is at depth — the backpressure that bounds in-flight
// I/O. On error, completions will arrive for exactly the first n ops
// and never for the rest — a caller with a synchronous fallback runs it
// on ops[n:] only, so nothing is issued twice.
func (q *Queue) Submit(ops []Op) (first uint64, n int, err error) {
	if len(ops) == 0 {
		return 0, 0, errors.New("diskq: empty batch")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, 0, ErrClosed
	}
	// Reserve the whole batch's token range up front. Waiting for queue
	// space below releases mu (space.Wait), letting other submitters in;
	// if they drew from nextTok while this batch still had chunks to
	// place, the batch would reuse their tokens and two in-flight ops
	// would collide on one completion token. Reserving first..first+len-1
	// here keeps every batch's tokens contiguous and unique no matter how
	// submissions interleave; tokens reserved for ops that are never
	// handed to the backend (close mid-batch) simply go unused.
	first = q.nextTok
	q.nextTok += uint64(len(ops))
	rest := ops
	tok := first
	for len(rest) > 0 {
		for q.inFlight >= q.depth && !q.closed {
			q.space.Wait()
		}
		if q.closed {
			return first, n, ErrClosed
		}
		k := q.depth - q.inFlight
		if k > len(rest) {
			k = len(rest)
		}
		chunk := rest[:k]
		if q.ts != nil {
			now := obs.Now()
			q.tsMu.Lock()
			for i := range chunk {
				q.ts[tok+uint64(i)] = now
			}
			q.tsMu.Unlock()
		}
		if err := q.r.submit(chunk, tok); err != nil {
			return first, n, err
		}
		q.inFlight += k
		tok += uint64(k)
		n += k
		q.submitted.Add(int64(k))
		if q.submitBatch != nil {
			q.submitBatch.Observe(int64(k))
		}
		rest = rest[k:]
	}
	if len(ops) > 1 {
		q.batches.Add(1)
	}
	return first, n, nil
}

// TrySubmit enqueues one operation without blocking: a false return
// means the queue is at depth (or closed) and the caller should take
// its fallback path.
func (q *Queue) TrySubmit(op Op) (uint64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.inFlight >= q.depth {
		return 0, false
	}
	tok := q.nextTok
	if q.ts != nil {
		q.tsMu.Lock()
		q.ts[tok] = obs.Now()
		q.tsMu.Unlock()
	}
	if err := q.r.submit([]Op{op}, tok); err != nil {
		return 0, false
	}
	q.inFlight++
	q.nextTok++
	q.submitted.Add(1)
	if q.submitBatch != nil {
		q.submitBatch.Observe(1)
	}
	return tok, true
}

// Reap harvests completions into out, blocking until at least min are
// available (min <= 0 polls). It returns the number harvested; once the
// queue is closed and drained it returns ErrClosed. Exactly one
// goroutine may drive Reap.
func (q *Queue) Reap(out []Completion, min int) (int, error) {
	n, err := q.r.reap(out, min)
	if n > 0 {
		q.mu.Lock()
		q.inFlight -= n
		q.space.Broadcast()
		q.mu.Unlock()
		q.completed.Add(int64(n))
		if q.reapBatch != nil {
			q.reapBatch.Observe(int64(n))
		}
		if q.ts != nil {
			now := obs.Now()
			q.tsMu.Lock()
			for i := 0; i < n; i++ {
				if t0, ok := q.ts[out[i].Token]; ok {
					delete(q.ts, out[i].Token)
					q.opTotal.Observe(now - t0)
					// io_uring services inside the kernel and posts no
					// split; report the whole submit→reap life as device
					// time so traced requests still account the stage.
					if out[i].QueueNS == 0 && out[i].DeviceNS == 0 {
						out[i].DeviceNS = now - t0
					}
				}
			}
			q.tsMu.Unlock()
		}
	}
	return n, err
}

// GetBuf returns an I/O staging buffer of length n: a pinned arena slab
// when one fits and is free (registered with the kernel on io_uring),
// else an O_DIRECT-aligned pooled slab. Pair with PutBuf.
func (q *Queue) GetBuf(n int) []byte {
	if q.arena != nil {
		if b := q.arena.get(n); b != nil {
			q.arenaGets.Add(1)
			return b
		}
	}
	q.poolGets.Add(1)
	return q.aligned.Get(n)
}

// PutBuf returns a GetBuf buffer for reuse.
func (q *Queue) PutBuf(b []byte) {
	if q.arena != nil && q.arena.put(b) {
		return
	}
	q.aligned.Put(b)
}

// Close stops intake and waits for in-flight operations to drain
// through the backend; their completions remain reapable until the
// dispatcher has harvested everything, after which Reap returns
// ErrClosed.
func (q *Queue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	q.space.Broadcast()
	q.mu.Unlock()
	return q.r.close()
}
