//go:build linux

// io_uring backend: the real kernel SQ/CQ pair, driven with raw
// syscalls (io_uring_setup/enter/register) and mmap'd rings — no cgo,
// no external packages. A Submit batch of N operations is exactly one
// io_uring_enter; completions are harvested straight off the shared CQ
// ring with acquire/release atomics. Arena buffers are registered once
// (IORING_REGISTER_BUFFERS) and submitted via the FIXED opcodes, so the
// kernel's per-I/O page-pin is paid once per queue, not once per
// operation — the paper's registration cache, verbatim, one layer down
// the stack.
package diskq

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

const (
	sysIOURingSetup    = 425
	sysIOURingEnter    = 426
	sysIOURingRegister = 427

	uringOffSQRing = 0
	uringOffCQRing = 0x8000000
	uringOffSQEs   = 0x10000000

	uringEnterGetevents = 1 << 0
	uringRegisterBufs   = 0

	sqeIODrain = 1 << 1 // IOSQE_IO_DRAIN: full barrier against earlier SQEs

	opcodeNop        = 0
	opcodeFsync      = 3
	opcodeReadFixed  = 4
	opcodeWriteFixed = 5
	opcodeRead       = 22
	opcodeWrite      = 23

	// nopToken marks the close-time wakeup NOP; the Queue's tokens count
	// up from zero and cannot collide with it.
	nopToken = ^uint64(0)

	// maxURingDepth is the io_uring_setup entry ceiling; deeper queues
	// fall back to the portable backend rather than silently clamping.
	maxURingDepth = 4096
)

// Kernel ABI structs (layouts fixed by the io_uring UAPI).

type sqringOffsets struct {
	head, tail, ringMask, ringEntries, flags, dropped, array, resv1 uint32
	userAddr                                                        uint64
}

type cqringOffsets struct {
	head, tail, ringMask, ringEntries, overflow, cqes, flags, resv1 uint32
	userAddr                                                        uint64
}

type uringParams struct {
	sqEntries    uint32
	cqEntries    uint32
	flags        uint32
	sqThreadCPU  uint32
	sqThreadIdle uint32
	features     uint32
	wqFD         uint32
	resv         [3]uint32
	sqOff        sqringOffsets
	cqOff        cqringOffsets
}

type uringSQE struct {
	opcode      uint8
	flags       uint8
	ioprio      uint16
	fd          int32
	off         uint64
	addr        uint64
	len         uint32
	opFlags     uint32 // rw_flags / fsync_flags
	userData    uint64
	bufIndex    uint16
	personality uint16
	spliceFdIn  int32
	pad         [2]uint64
}

type uringCQE struct {
	userData uint64
	res      int32
	flags    uint32
}

type iovec struct {
	base unsafe.Pointer
	len  uint64
}

// uringPend pins an in-flight op's buffer against the GC (the kernel
// holds only the raw address) and remembers what reap needs to finish
// the completion: the kind for read normalization, the buffer for
// zero-filling a short read.
type uringPend struct {
	kind OpKind
	buf  []byte
}

type uring struct {
	fd   int
	file *os.File
	rfd  int32 // cached file descriptor for SQE fill

	sqMem, cqMem, sqeMem []byte

	sqHead, sqTail *uint32
	sqMask         uint32
	sqArray        []uint32
	sqes           []uringSQE

	cqHead, cqTail *uint32
	cqMask         uint32
	cqes           []uringCQE

	fixed bool // arena buffers registered; FIXED opcodes available
	arena *arena

	// smu serializes the submission side (SQ tail, io_uring_enter with
	// to_submit > 0); the reaper's wait-only enter runs concurrently.
	smu    sync.Mutex
	closed bool

	pmu     sync.Mutex
	pending map[uint64]uringPend

	teardown sync.Once
}

// newURing sets up a ring of at least depth entries over f, registering
// the arena's slabs as fixed buffers when the kernel permits.
func newURing(f *os.File, depth int, a *arena) (*uring, error) {
	if depth > maxURingDepth {
		return nil, fmt.Errorf("%w: depth %d > %d", ErrUnsupported, depth, maxURingDepth)
	}
	var p uringParams
	fd, _, errno := syscall.Syscall(sysIOURingSetup, uintptr(depth), uintptr(unsafe.Pointer(&p)), 0)
	if errno != 0 {
		return nil, fmt.Errorf("%w: io_uring_setup: %v", ErrUnsupported, errno)
	}
	r := &uring{
		fd:      int(fd),
		file:    f,
		rfd:     int32(f.Fd()),
		arena:   a,
		pending: make(map[uint64]uringPend, depth),
	}
	ok := false
	defer func() {
		if !ok {
			r.release()
		}
	}()

	sqLen := int(p.sqOff.array + p.sqEntries*4)
	cqLen := int(p.cqOff.cqes + p.cqEntries*16)
	var err error
	r.sqMem, err = syscall.Mmap(r.fd, uringOffSQRing, sqLen,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return nil, fmt.Errorf("%w: mmap sq ring: %v", ErrUnsupported, err)
	}
	r.cqMem, err = syscall.Mmap(r.fd, uringOffCQRing, cqLen,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return nil, fmt.Errorf("%w: mmap cq ring: %v", ErrUnsupported, err)
	}
	r.sqeMem, err = syscall.Mmap(r.fd, uringOffSQEs, int(p.sqEntries)*64,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return nil, fmt.Errorf("%w: mmap sqes: %v", ErrUnsupported, err)
	}

	sqBase := unsafe.Pointer(&r.sqMem[0])
	r.sqHead = (*uint32)(unsafe.Add(sqBase, p.sqOff.head))
	r.sqTail = (*uint32)(unsafe.Add(sqBase, p.sqOff.tail))
	r.sqMask = *(*uint32)(unsafe.Add(sqBase, p.sqOff.ringMask))
	r.sqArray = unsafe.Slice((*uint32)(unsafe.Add(sqBase, p.sqOff.array)), p.sqEntries)
	r.sqes = unsafe.Slice((*uringSQE)(unsafe.Pointer(&r.sqeMem[0])), p.sqEntries)

	cqBase := unsafe.Pointer(&r.cqMem[0])
	r.cqHead = (*uint32)(unsafe.Add(cqBase, p.cqOff.head))
	r.cqTail = (*uint32)(unsafe.Add(cqBase, p.cqOff.tail))
	r.cqMask = *(*uint32)(unsafe.Add(cqBase, p.cqOff.ringMask))
	r.cqes = unsafe.Slice((*uringCQE)(unsafe.Add(cqBase, p.cqOff.cqes)), p.cqEntries)

	if a != nil {
		iovs := make([]iovec, len(a.slabs))
		for i, s := range a.slabs {
			iovs[i] = iovec{base: unsafe.Pointer(&s[0]), len: uint64(cap(s))}
		}
		_, _, errno := syscall.Syscall6(sysIOURingRegister, uintptr(r.fd), uringRegisterBufs,
			uintptr(unsafe.Pointer(&iovs[0])), uintptr(len(iovs)), 0, 0)
		// Registration failing (RLIMIT_MEMLOCK, old kernel) only costs the
		// pin amortization — plain READ/WRITE opcodes still work.
		r.fixed = errno == 0
	}
	ok = true
	return r, nil
}

func (r *uring) name() string { return "io_uring" }

// submit queues ops at tokens token..token+len-1 and pushes the whole
// batch to the kernel with one io_uring_enter. The Queue's depth bound
// guarantees SQ space: without SQPOLL the kernel consumes every SQE
// before enter returns, so the ring is empty at entry and holds at
// least depth slots.
func (r *uring) submit(ops []Op, token uint64) error {
	r.smu.Lock()
	defer r.smu.Unlock()
	if r.closed {
		return ErrClosed
	}
	r.pmu.Lock()
	for i, op := range ops {
		r.pending[token+uint64(i)] = uringPend{kind: op.Kind, buf: op.Buf}
	}
	r.pmu.Unlock()
	tail := atomic.LoadUint32(r.sqTail)
	for i, op := range ops {
		idx := tail & r.sqMask
		e := &r.sqes[idx]
		*e = uringSQE{fd: r.rfd, userData: token + uint64(i)}
		switch op.Kind {
		case OpRead, OpWrite:
			e.off = uint64(op.Off)
			e.addr = uint64(uintptr(unsafe.Pointer(&op.Buf[0])))
			e.len = uint32(len(op.Buf))
			slot, isFixed := -1, false
			if r.fixed && r.arena != nil {
				slot, isFixed = r.arena.slot(op.Buf)
			}
			switch {
			case op.Kind == OpRead && isFixed:
				e.opcode, e.bufIndex = opcodeReadFixed, uint16(slot)
			case op.Kind == OpWrite && isFixed:
				e.opcode, e.bufIndex = opcodeWriteFixed, uint16(slot)
			case op.Kind == OpRead:
				e.opcode = opcodeRead
			default:
				e.opcode = opcodeWrite
			}
		case OpFsync:
			e.opcode = opcodeFsync
			e.flags = sqeIODrain
		}
		r.sqArray[idx] = idx
		tail++
	}
	atomic.StoreUint32(r.sqTail, tail)
	if err := r.enterSubmit(len(ops)); err != nil {
		r.pmu.Lock()
		for i := range ops {
			delete(r.pending, token+uint64(i))
		}
		r.pmu.Unlock()
		return err
	}
	return nil
}

// enterSubmit pushes n queued SQEs, retrying interrupted syscalls until
// the kernel has consumed all of them.
func (r *uring) enterSubmit(n int) error {
	for n > 0 {
		done, _, errno := syscall.Syscall6(sysIOURingEnter, uintptr(r.fd), uintptr(n), 0, 0, 0, 0)
		if errno != 0 {
			if errno == syscall.EINTR || errno == syscall.EAGAIN {
				continue
			}
			return fmt.Errorf("diskq: io_uring_enter: %v", errno)
		}
		n -= int(done)
	}
	return nil
}

// reap harvests CQEs into out, blocking in io_uring_enter(GETEVENTS)
// until min are available. After close, it keeps delivering in-flight
// completions and returns ErrClosed only once the ring is drained —
// releasing the kernel resources on the way out, since the single
// reaper is by contract the last ring toucher.
func (r *uring) reap(out []Completion, min int) (int, error) {
	if min > len(out) {
		min = len(out)
	}
	got := 0
	for {
		got += r.harvest(out[got:])
		if got >= min && (got > 0 || min > 0) {
			return got, nil
		}
		if min <= 0 {
			return got, nil
		}
		r.smu.Lock()
		closed := r.closed
		r.smu.Unlock()
		if closed {
			r.pmu.Lock()
			empty := len(r.pending) == 0
			r.pmu.Unlock()
			if empty {
				if got > 0 {
					return got, nil
				}
				r.teardown.Do(r.release)
				return 0, ErrClosed
			}
		}
		if err := r.enterWait(1); err != nil {
			return got, err
		}
	}
}

// harvest drains whatever the CQ ring holds right now (bounded by out),
// finishing read normalization and dropping wakeup NOPs.
func (r *uring) harvest(out []Completion) int {
	if len(out) == 0 {
		return 0
	}
	n := 0
	head := atomic.LoadUint32(r.cqHead)
	tail := atomic.LoadUint32(r.cqTail)
	for head != tail && n < len(out) {
		e := r.cqes[head&r.cqMask]
		head++
		if e.userData == nopToken {
			continue
		}
		c := Completion{Token: e.userData}
		r.pmu.Lock()
		p := r.pending[e.userData]
		delete(r.pending, e.userData)
		r.pmu.Unlock()
		if e.res < 0 {
			c.Err = fmt.Errorf("diskq: %s: %w", opName(p.kind), syscall.Errno(-e.res))
		} else {
			c.N = int(e.res)
		}
		if p.kind == OpRead && c.Err == nil {
			c.N, c.Err = normalizeRead(p.buf, c.N, nil)
		}
		out[n] = c
		n++
	}
	atomic.StoreUint32(r.cqHead, head)
	return n
}

// enterWait blocks until want completions are visible in the CQ ring.
func (r *uring) enterWait(want int) error {
	for {
		_, _, errno := syscall.Syscall6(sysIOURingEnter, uintptr(r.fd), 0, uintptr(want), uringEnterGetevents, 0, 0)
		switch errno {
		case 0:
			return nil
		case syscall.EINTR, syscall.EAGAIN, syscall.EBUSY:
			continue
		default:
			return fmt.Errorf("diskq: io_uring_enter(wait): %v", errno)
		}
	}
}

// close stops intake and pushes a NOP through the ring so a reaper
// blocked in enterWait wakes up, observes the closed+drained state, and
// performs the final teardown.
func (r *uring) close() error {
	r.smu.Lock()
	defer r.smu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	tail := atomic.LoadUint32(r.sqTail)
	idx := tail & r.sqMask
	r.sqes[idx] = uringSQE{opcode: opcodeNop, userData: nopToken}
	r.sqArray[idx] = idx
	atomic.StoreUint32(r.sqTail, tail+1)
	return r.enterSubmit(1)
}

// release unmaps the rings and closes the ring fd (not the file — the
// Queue does not own it).
func (r *uring) release() {
	if r.sqeMem != nil {
		_ = syscall.Munmap(r.sqeMem)
		r.sqeMem = nil
	}
	if r.cqMem != nil {
		_ = syscall.Munmap(r.cqMem)
		r.cqMem = nil
	}
	if r.sqMem != nil {
		_ = syscall.Munmap(r.sqMem)
		r.sqMem = nil
	}
	if r.fd >= 0 {
		_ = syscall.Close(r.fd)
		r.fd = -1
	}
}

func opName(k OpKind) string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFsync:
		return "fsync"
	}
	return "op"
}
