package vinic

import (
	"testing"
	"time"

	"github.com/v3storage/v3/internal/sim"
)

func pair(e *sim.Engine) (*NIC, *NIC) {
	return NewPair(e, DefaultParams(), "a", "b")
}

func TestOneWaySmallMessageAbout7us(t *testing.T) {
	// The paper: one-way latency for a 64-byte message is about 7 µs.
	p := DefaultParams()
	lat := p.OneWay(64)
	if lat < 6*time.Microsecond || lat > 8*time.Microsecond {
		t.Fatalf("64B one-way = %v, want ~7µs", lat)
	}
}

func TestXferTimeMatchesBandwidth(t *testing.T) {
	p := DefaultParams()
	// 110 MB/s: 8 KB should take ~74.5µs.
	got := p.XferTime(8192)
	bytes := 8192.0
	want := time.Duration(bytes / 110e6 * 1e9)
	if got < want-time.Microsecond || got > want+time.Microsecond {
		t.Fatalf("xfer(8K) = %v, want ~%v", got, want)
	}
	if p.XferTime(0) != 0 || p.XferTime(-5) != 0 {
		t.Fatal("degenerate sizes should cost nothing")
	}
}

func TestPacketsSegmentation(t *testing.T) {
	p := DefaultParams()
	// Paper: transferring 128 KB requires three VI RDMAs (MTU 64K-64).
	if got := p.Packets(128 * 1024); got != 3 {
		t.Fatalf("packets(128K) = %d, want 3", got)
	}
	if got := p.Packets(64); got != 1 {
		t.Fatalf("packets(64) = %d", got)
	}
	if got := p.Packets(p.MTU); got != 1 {
		t.Fatalf("packets(MTU) = %d", got)
	}
	if got := p.Packets(p.MTU + 1); got != 2 {
		t.Fatalf("packets(MTU+1) = %d", got)
	}
	if got := p.Packets(0); got != 1 {
		t.Fatalf("packets(0) = %d (control messages still use one packet)", got)
	}
}

func TestDeliveryLatencyAndPayload(t *testing.T) {
	e := sim.NewEngine()
	a, b := pair(e)
	a.SetHandler(func(m *Message) {})
	var deliveredAt sim.Time
	var got *Message
	b.SetHandler(func(m *Message) { got = m; deliveredAt = e.Now() })
	a.Send(&Message{Size: 64, ConnID: 3, Payload: "hello"})
	e.Run()
	if got == nil || got.Payload.(string) != "hello" || got.ConnID != 3 {
		t.Fatalf("payload lost: %+v", got)
	}
	want := DefaultParams().OneWay(64)
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestInOrderDelivery(t *testing.T) {
	e := sim.NewEngine()
	a, b := pair(e)
	a.SetHandler(func(m *Message) {})
	var order []int
	b.SetHandler(func(m *Message) { order = append(order, m.Payload.(int)) })
	for i := 0; i < 10; i++ {
		a.Send(&Message{Size: 1000 * (i%3 + 1), Payload: i})
	}
	e.Run()
	if len(order) != 10 {
		t.Fatalf("delivered %d", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("out of order: %v", order)
		}
	}
}

func TestLinkSerializationLimitsThroughput(t *testing.T) {
	e := sim.NewEngine()
	a, b := pair(e)
	a.SetHandler(func(m *Message) {})
	var lastAt sim.Time
	b.SetHandler(func(m *Message) { lastAt = e.Now() })
	const n = 100
	const size = 8192
	for i := 0; i < n; i++ {
		a.Send(&Message{Size: size})
	}
	e.Run()
	tput := float64(n*size) / lastAt.Seconds() / 1e6
	// Saturated one-way stream should approach but not exceed 110 MB/s.
	if tput > 110 {
		t.Fatalf("throughput %.1f MB/s exceeds link bandwidth", tput)
	}
	if tput < 100 {
		t.Fatalf("throughput %.1f MB/s, want near saturation (>100)", tput)
	}
}

func TestLargeMessagePaysPerPacketCost(t *testing.T) {
	e := sim.NewEngine()
	a, b := pair(e)
	a.SetHandler(func(m *Message) {})
	var at sim.Time
	b.SetHandler(func(m *Message) { at = e.Now() })
	a.Send(&Message{Size: 128 * 1024})
	e.Run()
	p := DefaultParams()
	want := 3*p.SendPktCost + p.XferTime(128*1024) + p.PropDelay + p.RecvPktCost
	if at != want {
		t.Fatalf("128K delivery = %v, want %v", at, want)
	}
}

func TestBidirectionalIndependence(t *testing.T) {
	// Traffic a->b must not consume b->a bandwidth (full duplex).
	e := sim.NewEngine()
	a, b := pair(e)
	var aGot, bGot int
	a.SetHandler(func(m *Message) { aGot++ })
	b.SetHandler(func(m *Message) { bGot++ })
	for i := 0; i < 50; i++ {
		a.Send(&Message{Size: 32 * 1024})
		b.Send(&Message{Size: 32 * 1024})
	}
	e.Run()
	if aGot != 50 || bGot != 50 {
		t.Fatalf("aGot=%d bGot=%d", aGot, bGot)
	}
	// Full duplex: both directions finish in the time one direction needs.
	oneDir := 50 * (DefaultParams().SendPktCost + DefaultParams().XferTime(32*1024))
	if e.Now() > oneDir+10*time.Microsecond {
		t.Fatalf("duplex took %v, one direction alone needs %v", e.Now(), oneDir)
	}
}

func TestCounters(t *testing.T) {
	e := sim.NewEngine()
	a, b := pair(e)
	a.SetHandler(func(m *Message) {})
	b.SetHandler(func(m *Message) {})
	a.Send(&Message{Size: 100})
	a.Send(&Message{Size: 200})
	e.Run()
	if a.TxBytes() != 300 || a.TxMessages() != 2 {
		t.Fatalf("tx stats: %d bytes %d msgs", a.TxBytes(), a.TxMessages())
	}
	if b.RxBytes() != 300 || b.RxMessages() != 2 {
		t.Fatalf("rx stats: %d bytes %d msgs", b.RxBytes(), b.RxMessages())
	}
	if a.TxBusy() <= 0 {
		t.Fatal("tx busy not accumulated")
	}
	if a.Name() != "a" || b.Name() != "b" {
		t.Fatal("names wrong")
	}
}

func TestMissingHandlerPanics(t *testing.T) {
	e := sim.NewEngine()
	a, _ := pair(e)
	a.Send(&Message{Size: 64})
	defer func() {
		if recover() == nil {
			t.Fatal("delivery without handler should panic")
		}
	}()
	e.Run()
}

func TestFaultInjectionDropsMessages(t *testing.T) {
	e := sim.NewEngine()
	params := DefaultParams()
	params.DropProb = 0.5
	params.DropSeed = 42
	a, b := NewPair(e, params, "a", "b")
	a.SetHandler(func(m *Message) {})
	delivered := 0
	b.SetHandler(func(m *Message) { delivered++ })
	const n = 400
	for i := 0; i < n; i++ {
		a.Send(&Message{Size: 64})
	}
	e.Run()
	if a.Dropped() == 0 {
		t.Fatal("no drops at 50% loss")
	}
	if delivered+int(a.Dropped()) != n {
		t.Fatalf("delivered %d + dropped %d != %d", delivered, a.Dropped(), n)
	}
	// Statistical sanity: between 30% and 70% delivered.
	if delivered < n*30/100 || delivered > n*70/100 {
		t.Fatalf("delivered %d of %d at 50%% loss", delivered, n)
	}
}

func TestNoDropsByDefault(t *testing.T) {
	e := sim.NewEngine()
	a, b := pair(e)
	a.SetHandler(func(m *Message) {})
	got := 0
	b.SetHandler(func(m *Message) { got++ })
	for i := 0; i < 100; i++ {
		a.Send(&Message{Size: 64})
	}
	e.Run()
	if got != 100 || a.Dropped() != 0 {
		t.Fatalf("got=%d dropped=%d", got, a.Dropped())
	}
}
