// Package vinic models a VI-enabled network interface pair connected by
// a point-to-point system-area-network link, with the Giganet cLan's
// characteristics (Section 4 of the paper): ~110 MB/s end-to-end
// user-level bandwidth, ~7 µs one-way latency for a 64-byte message, and
// a maximum packet size of 64K−64 bytes, so a 128 KB transfer takes three
// RDMA packets.
//
// The NIC transmit engine serializes packets (that is the link
// bandwidth); delivery happens at the peer after propagation plus the
// receive engine's per-packet cost. Messages between a NIC pair are
// delivered in order. Host-side costs (doorbells, registration,
// interrupts) belong to the vi and oskrnl layers.
package vinic

import (
	"time"

	"github.com/v3storage/v3/internal/sim"
)

// Params characterizes the NIC and link.
type Params struct {
	BandwidthMBps float64       // link bandwidth per direction
	PropDelay     time.Duration // wire + switch propagation
	MTU           int           // maximum packet payload
	SendPktCost   time.Duration // tx engine processing per packet
	RecvPktCost   time.Duration // rx engine processing per packet
	// DropProb injects message loss (per message, after transmission):
	// most VI implementations do not guarantee delivery under all fault
	// conditions, which is why DSA carries its own retransmission layer.
	DropProb float64
	DropSeed uint64
}

// DefaultParams returns the Giganet cLan model: 110 MB/s, 64K−64 MTU,
// and per-packet costs that put the 64-byte one-way latency at ~7 µs.
func DefaultParams() Params {
	return Params{
		BandwidthMBps: 110,
		PropDelay:     2500 * time.Nanosecond,
		MTU:           64*1024 - 64,
		SendPktCost:   2 * time.Microsecond,
		RecvPktCost:   2 * time.Microsecond,
	}
}

// XferTime returns the pure serialization time of n bytes on the link.
func (p Params) XferTime(n int) time.Duration {
	if n <= 0 || p.BandwidthMBps <= 0 {
		return 0
	}
	return time.Duration(float64(n) / (p.BandwidthMBps * 1e6) * float64(time.Second))
}

// Packets returns how many link packets a message of n bytes needs.
func (p Params) Packets(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + p.MTU - 1) / p.MTU
}

// OneWay returns the unloaded one-way latency for an n-byte message.
func (p Params) OneWay(n int) time.Duration {
	pkts := p.Packets(n)
	return time.Duration(pkts)*p.SendPktCost + p.XferTime(n) + p.PropDelay + p.RecvPktCost
}

// Message is one VI descriptor's worth of traffic. The NIC does not
// interpret Payload; the VI layer above demultiplexes on ConnID and
// decides completion semantics from RDMA/Notify.
type Message struct {
	Size    int
	ConnID  uint32
	RDMA    bool // RDMA write: consumes no receive descriptor at the target
	Notify  bool // raise a completion at the receiver (CQ entry / interrupt)
	Payload any

	sent sim.Time
}

// Handler receives delivered messages. It runs in event context at the
// receiving side: it must not block; it typically records state and
// wakes a process.
type Handler func(*Message)

// NIC is one endpoint of a point-to-point VI link.
type NIC struct {
	e       *sim.Engine
	params  Params
	name    string
	peer    *NIC
	tx      *sim.Queue[*Message]
	handler Handler

	faults *sim.Rand // non-nil when loss injection is enabled

	txBytes, rxBytes sim.Counter
	txMsgs, rxMsgs   sim.Counter
	txBusy           time.Duration
	dropped          sim.Counter
}

// NewPair creates two cross-connected NICs and starts their transmit
// engines.
func NewPair(e *sim.Engine, params Params, nameA, nameB string) (*NIC, *NIC) {
	a := &NIC{e: e, params: params, name: nameA, tx: sim.NewQueue[*Message]()}
	b := &NIC{e: e, params: params, name: nameB, tx: sim.NewQueue[*Message]()}
	if params.DropProb > 0 {
		seed := params.DropSeed
		if seed == 0 {
			seed = 0xFA17
		}
		a.faults = sim.NewRand(seed)
		b.faults = sim.NewRand(seed + 1)
	}
	a.peer, b.peer = b, a
	e.Go("nic-tx:"+nameA, a.txEngine)
	e.Go("nic-tx:"+nameB, b.txEngine)
	return a, b
}

// Name returns the NIC's label.
func (n *NIC) Name() string { return n.name }

// Params returns the link parameters.
func (n *NIC) Params() Params { return n.params }

// SetHandler installs the delivery callback for messages arriving at
// this NIC. Must be set before the peer sends.
func (n *NIC) SetHandler(h Handler) { n.handler = h }

// Send queues m for transmission to the peer. Callable from both event
// and process context; it never blocks (VI send queues are long and DSA's
// flow control bounds outstanding traffic well below them).
func (n *NIC) Send(m *Message) {
	m.sent = n.e.Now()
	n.tx.Put(n.e, m)
}

// txEngine serializes packets onto the link. A message of k packets
// occupies the transmitter for k*SendPktCost + size/bandwidth; the last
// packet reaches the peer PropDelay+RecvPktCost later, where the message
// is delivered whole (receive processing of earlier packets overlaps
// transmission).
func (n *NIC) txEngine(p *sim.Proc) {
	for {
		m := n.tx.Get(p)
		pkts := n.params.Packets(m.Size)
		busy := time.Duration(pkts)*n.params.SendPktCost + n.params.XferTime(m.Size)
		p.Sleep(busy)
		n.txBusy += busy
		n.txBytes.Addn(int64(m.Size))
		n.txMsgs.Inc()
		if n.faults != nil && n.faults.Float64() < n.params.DropProb {
			n.dropped.Inc()
			continue // the message vanishes on the wire
		}
		peer := n.peer
		n.e.After(n.params.PropDelay+n.params.RecvPktCost, func() {
			peer.rxBytes.Addn(int64(m.Size))
			peer.rxMsgs.Inc()
			if peer.handler == nil {
				panic("vinic: message delivered to NIC " + peer.name + " with no handler")
			}
			peer.handler(m)
		})
	}
}

// TxBytes returns total bytes transmitted.
func (n *NIC) TxBytes() int64 { return n.txBytes.Value() }

// RxBytes returns total bytes received.
func (n *NIC) RxBytes() int64 { return n.rxBytes.Value() }

// TxMessages returns the count of messages transmitted.
func (n *NIC) TxMessages() int64 { return n.txMsgs.Value() }

// RxMessages returns the count of messages received.
func (n *NIC) RxMessages() int64 { return n.rxMsgs.Value() }

// TxBusy returns cumulative transmitter-busy time (for utilization).
func (n *NIC) TxBusy() time.Duration { return n.txBusy }

// Dropped returns the number of messages lost to fault injection.
func (n *NIC) Dropped() int64 { return n.dropped.Value() }
