// Package flow implements the credit-based flow control DSA layers on
// top of VI (Section 2.2 of the paper). VI provides no flow control;
// posting a send with no receive descriptor waiting at the peer is a
// fatal connection error, and the V3 server has a bounded set of staging
// buffers. DSA therefore grants the client one credit per server buffer
// slot; a request may only be issued while holding a credit, and credits
// return on responses (piggybacked) or explicit credit-grant messages.
//
// The package is pure bookkeeping — blocking/wakeup policy belongs to the
// caller — so the same code drives the simulated and TCP transports.
package flow

import (
	"errors"
	"fmt"
)

// ErrNoCredit is returned by TakeNow when no credit is available.
var ErrNoCredit = errors.New("flow: no credit available")

// Client tracks the client side of a credit scheme. Each credit carries a
// server buffer slot ID; holding credit slot S entitles the client to one
// outstanding request whose payload (for writes) occupies server slot S.
type Client struct {
	free    []uint32 // available slot IDs (LIFO for cache warmth)
	held    map[uint32]bool
	granted int // total slots ever granted
}

// NewClient returns a client with no credits; call Grant with the
// ConnectResp allocation.
func NewClient() *Client {
	return &Client{held: make(map[uint32]bool)}
}

// Grant adds n new slots to the pool, numbered consecutively after the
// existing ones. Used at connect time and when the server enlarges the
// window.
func (c *Client) Grant(n int) {
	for i := 0; i < n; i++ {
		c.free = append(c.free, uint32(c.granted))
		c.granted++
	}
}

// Available returns the number of credits on hand.
func (c *Client) Available() int { return len(c.free) }

// InFlight returns the number of credits currently held by requests.
func (c *Client) InFlight() int { return len(c.held) }

// Total returns the total credits granted over the connection lifetime.
func (c *Client) Total() int { return c.granted }

// TakeNow removes one credit, returning its slot ID, or ErrNoCredit.
func (c *Client) TakeNow() (uint32, error) {
	if len(c.free) == 0 {
		return 0, ErrNoCredit
	}
	slot := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.held[slot] = true
	return slot, nil
}

// ReturnSlot gives back the credit for slot (response received). It is an
// error to return a slot that is not in flight.
func (c *Client) ReturnSlot(slot uint32) error {
	if !c.held[slot] {
		return fmt.Errorf("flow: return of slot %d not in flight", slot)
	}
	delete(c.held, slot)
	c.free = append(c.free, slot)
	return nil
}

// Server tracks the server side: which staging buffer slots are busy.
// The server's slot states must mirror the client's credits; Reserve is
// called when a request arrives, Release when its response is sent.
type Server struct {
	nslots int
	busy   map[uint32]bool
}

// NewServer returns a server-side tracker for n slots.
func NewServer(n int) *Server {
	return &Server{nslots: n, busy: make(map[uint32]bool)}
}

// Slots returns the total slot count.
func (s *Server) Slots() int { return s.nslots }

// Busy returns the number of slots currently reserved.
func (s *Server) Busy() int { return len(s.busy) }

// Reserve marks slot busy for an arriving request. A reservation of an
// out-of-range or already-busy slot indicates a protocol violation
// (client overran its credits) and returns an error; the paper notes
// that without DSA's flow control such overruns are fatal VI errors.
func (s *Server) Reserve(slot uint32) error {
	if int(slot) >= s.nslots {
		return fmt.Errorf("flow: slot %d out of range (%d slots)", slot, s.nslots)
	}
	if s.busy[slot] {
		return fmt.Errorf("flow: slot %d already busy — client credit overrun", slot)
	}
	s.busy[slot] = true
	return nil
}

// Release frees slot when the response (which carries the credit back) is
// sent.
func (s *Server) Release(slot uint32) error {
	if !s.busy[slot] {
		return fmt.Errorf("flow: release of idle slot %d", slot)
	}
	delete(s.busy, slot)
	return nil
}
