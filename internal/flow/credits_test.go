package flow

import (
	"testing"
	"testing/quick"
)

func TestClientGrantTake(t *testing.T) {
	c := NewClient()
	if _, err := c.TakeNow(); err != ErrNoCredit {
		t.Fatalf("expected ErrNoCredit, got %v", err)
	}
	c.Grant(3)
	if c.Available() != 3 || c.Total() != 3 {
		t.Fatalf("avail=%d total=%d", c.Available(), c.Total())
	}
	seen := map[uint32]bool{}
	for i := 0; i < 3; i++ {
		slot, err := c.TakeNow()
		if err != nil {
			t.Fatal(err)
		}
		if seen[slot] {
			t.Fatalf("slot %d issued twice", slot)
		}
		seen[slot] = true
	}
	if c.Available() != 0 || c.InFlight() != 3 {
		t.Fatalf("avail=%d inflight=%d", c.Available(), c.InFlight())
	}
	if _, err := c.TakeNow(); err != ErrNoCredit {
		t.Fatalf("over-take: %v", err)
	}
}

func TestClientReturnCycle(t *testing.T) {
	c := NewClient()
	c.Grant(2)
	a, _ := c.TakeNow()
	if err := c.ReturnSlot(a); err != nil {
		t.Fatal(err)
	}
	if c.Available() != 2 || c.InFlight() != 0 {
		t.Fatalf("avail=%d inflight=%d", c.Available(), c.InFlight())
	}
	// Returning again is an error.
	if err := c.ReturnSlot(a); err == nil {
		t.Fatal("double return accepted")
	}
	// Returning a never-taken slot is an error.
	if err := c.ReturnSlot(99); err == nil {
		t.Fatal("bogus return accepted")
	}
}

func TestClientGrantExtendsNumbering(t *testing.T) {
	c := NewClient()
	c.Grant(2)
	c.Grant(2)
	slots := map[uint32]bool{}
	for i := 0; i < 4; i++ {
		s, err := c.TakeNow()
		if err != nil {
			t.Fatal(err)
		}
		slots[s] = true
	}
	for i := uint32(0); i < 4; i++ {
		if !slots[i] {
			t.Fatalf("slot %d never issued: %v", i, slots)
		}
	}
}

func TestServerReserveRelease(t *testing.T) {
	s := NewServer(2)
	if err := s.Reserve(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Reserve(0); err == nil {
		t.Fatal("double reserve accepted — credit overrun undetected")
	}
	if err := s.Reserve(5); err == nil {
		t.Fatal("out-of-range reserve accepted")
	}
	if s.Busy() != 1 {
		t.Fatalf("busy=%d", s.Busy())
	}
	if err := s.Release(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(0); err == nil {
		t.Fatal("double release accepted")
	}
}

// Property: under any interleaving of takes and returns the invariant
// available + inflight == total holds, and the server never sees a slot
// double-reserved when driven by a correct client.
func TestCreditConservationProperty(t *testing.T) {
	f := func(ops []bool, grant uint8) bool {
		n := int(grant%32) + 1
		c := NewClient()
		s := NewServer(n)
		c.Grant(n)
		var inflight []uint32
		for _, take := range ops {
			if take {
				slot, err := c.TakeNow()
				if err != nil {
					continue
				}
				if err := s.Reserve(slot); err != nil {
					return false // server saw overrun from a correct client
				}
				inflight = append(inflight, slot)
			} else if len(inflight) > 0 {
				slot := inflight[0]
				inflight = inflight[1:]
				if err := s.Release(slot); err != nil {
					return false
				}
				if err := c.ReturnSlot(slot); err != nil {
					return false
				}
			}
			if c.Available()+c.InFlight() != c.Total() {
				return false
			}
			if s.Busy() != c.InFlight() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
