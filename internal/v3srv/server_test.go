package v3srv

import (
	"testing"
	"time"

	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/sim"
	"github.com/v3storage/v3/internal/vi"
	"github.com/v3storage/v3/internal/vinic"
)

// testRig wires a bare client-side VI connection to a server so tests can
// speak the wire protocol directly, without DSA.
type testRig struct {
	e    *sim.Engine
	srv  *Server
	conn *vi.Conn // client end
	got  []*WireResp
	data []*WireData
}

func newTestRig(cfg Config) *testRig {
	e := sim.NewEngine()
	clientCPUs := hw.NewCPUPool(e, 2)
	nicC, nicS := vinic.NewPair(e, vinic.DefaultParams(), "c", "s")
	provC := vi.NewProvider(e, clientCPUs, nicC, vi.DefaultParams())
	srv := New(e, cfg, nicS, vi.DefaultParams())
	connC, connS := vi.Connect(provC, srv.Provider())
	srv.AttachClient(connS)
	r := &testRig{e: e, srv: srv, conn: connC}
	connC.SetHandler(func(m *vinic.Message) {
		switch v := m.Payload.(type) {
		case *WireResp:
			r.got = append(r.got, v)
		case *WireData:
			r.data = append(r.data, v)
		}
	})
	return r
}

func (r *testRig) send(req *WireReq) {
	r.e.Go("client", func(p *sim.Proc) {
		r.conn.Send(p, 64, req)
	})
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.NumDisks = 4
	cfg.Workers = 8
	cfg.CacheBlocks = 64
	return cfg
}

func TestReadReturnsDataThenResponse(t *testing.T) {
	r := newTestRig(smallCfg())
	r.send(&WireReq{Op: OpRead, Offset: 8192, Length: 8192, Tag: "t1"})
	r.e.RunFor(time.Second)
	if len(r.data) != 1 || len(r.got) != 1 {
		t.Fatalf("data=%d resp=%d", len(r.data), len(r.got))
	}
	if r.got[0].Tag != "t1" || r.data[0].Tag != "t1" {
		t.Fatal("tags lost")
	}
	if r.got[0].ServerTime <= 0 {
		t.Fatal("no server time")
	}
	if r.srv.Served() != 1 {
		t.Fatalf("served=%d", r.srv.Served())
	}
}

func TestPollModeRespondsWithSilentRDMA(t *testing.T) {
	r := newTestRig(smallCfg())
	var silent bool
	r.conn.SetHandler(func(m *vinic.Message) {
		if _, ok := m.Payload.(*WireResp); ok {
			silent = m.RDMA && !m.Notify
		}
	})
	r.send(&WireReq{Op: OpRead, Offset: 0, Length: 8192, PollMode: true, Tag: "t"})
	r.e.RunFor(time.Second)
	if !silent {
		t.Fatal("poll-mode response should be a silent RDMA flag write")
	}
}

func TestCachedReadSkipsDisk(t *testing.T) {
	r := newTestRig(smallCfg())
	r.send(&WireReq{Op: OpRead, Offset: 0, Length: 8192, Tag: 1})
	r.e.RunFor(time.Second)
	served1 := r.srv.Disks().Served()
	r.send(&WireReq{Op: OpRead, Offset: 0, Length: 8192, Tag: 2})
	r.e.RunFor(time.Second)
	if r.srv.Disks().Served() != served1 {
		t.Fatal("second read should hit the cache")
	}
	if r.srv.CacheHitRatio() <= 0 {
		t.Fatal("no hits recorded")
	}
	if r.got[1].ServerTime >= r.got[0].ServerTime/5 {
		t.Fatalf("cached (%v) should be much faster than cold (%v)",
			r.got[1].ServerTime, r.got[0].ServerTime)
	}
}

func TestWriteCommitsToDisk(t *testing.T) {
	r := newTestRig(smallCfg())
	r.send(&WireReq{Op: OpWrite, Offset: 0, Length: 8192, Tag: "w"})
	r.e.RunFor(time.Second)
	if len(r.got) != 1 {
		t.Fatalf("resp=%d", len(r.got))
	}
	if r.srv.Disks().Served() == 0 {
		t.Fatal("write-through must reach the disk")
	}
	// Write must take disk time (write-through), not just cache time.
	if r.got[0].ServerTime < time.Millisecond {
		t.Fatalf("write server time %v too fast for write-through", r.got[0].ServerTime)
	}
	// And the written block is now cached for reads.
	r.send(&WireReq{Op: OpRead, Offset: 0, Length: 8192, Tag: "r"})
	served := r.srv.Disks().Served()
	r.e.RunFor(time.Second)
	if r.srv.Disks().Served() != served {
		t.Fatal("read after write should hit the cache")
	}
}

func TestZeroCacheServesFromDisk(t *testing.T) {
	cfg := smallCfg()
	cfg.CacheBlocks = 0
	r := newTestRig(cfg)
	r.send(&WireReq{Op: OpRead, Offset: 0, Length: 8192, Tag: 1})
	r.e.RunFor(time.Second)
	r.send(&WireReq{Op: OpRead, Offset: 0, Length: 8192, Tag: 2})
	r.e.RunFor(time.Second)
	if r.srv.Disks().Served() != 2 {
		t.Fatalf("disk IOs = %d, want 2 (no cache)", r.srv.Disks().Served())
	}
	if r.srv.CacheHitRatio() != 0 {
		t.Fatal("hit ratio should be zero without a cache")
	}
}

func TestMultiBlockReadFetchesRuns(t *testing.T) {
	r := newTestRig(smallCfg())
	// 64 KB read = 8 cache blocks, all cold.
	r.send(&WireReq{Op: OpRead, Offset: 0, Length: 64 * 1024, Tag: "big"})
	r.e.RunFor(time.Second)
	if len(r.got) != 1 {
		t.Fatalf("resp=%d", len(r.got))
	}
	// Second read fully cached.
	before := r.srv.Disks().Served()
	r.send(&WireReq{Op: OpRead, Offset: 0, Length: 64 * 1024, Tag: "big2"})
	r.e.RunFor(time.Second)
	if r.srv.Disks().Served() != before {
		t.Fatal("second 64K read should be fully cached")
	}
}

func TestPipelineServicesConcurrently(t *testing.T) {
	cfg := smallCfg()
	cfg.CacheBlocks = 0
	r := newTestRig(cfg)
	var last sim.Time
	n := 0
	r.conn.SetHandler(func(m *vinic.Message) {
		if _, ok := m.Payload.(*WireResp); ok {
			n++
			last = r.e.Now()
		}
	})
	r.e.Go("client", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			// Different stripes -> different disks.
			r.conn.Send(p, 64, &WireReq{Op: OpRead, Offset: int64(i) * 64 * 1024, Length: 8192, Tag: i})
		}
	})
	r.e.RunFor(time.Second)
	if n != 8 {
		t.Fatalf("completed %d", n)
	}
	// 8 requests over 4 disks should take ~2 disk times, not 8.
	if last > 60*time.Millisecond {
		t.Fatalf("pipeline too slow: %v", last)
	}
}

func TestServerStatsAndConfig(t *testing.T) {
	r := newTestRig(smallCfg())
	if r.srv.VolumeSize() <= 0 {
		t.Fatal("volume size")
	}
	if r.srv.CPUs().N() != 2 {
		t.Fatal("server CPUs")
	}
	r.send(&WireReq{Op: OpRead, Offset: 0, Length: 512, Tag: "x"})
	r.e.RunFor(time.Second)
	if r.srv.MeanServiceTime() <= 0 {
		t.Fatal("no mean service time")
	}
}

func TestAutoWorkerScaling(t *testing.T) {
	cfg := smallCfg()
	cfg.Workers = 0
	cfg.NumDisks = 6
	r := newTestRig(cfg)
	if r.srv.cfg.Workers != 24 {
		t.Fatalf("auto workers = %d, want 4x disks", r.srv.cfg.Workers)
	}
}

func TestLRUCacheOption(t *testing.T) {
	cfg := smallCfg()
	cfg.UseMQ = false
	r := newTestRig(cfg)
	r.send(&WireReq{Op: OpRead, Offset: 0, Length: 8192, Tag: 1})
	r.e.RunFor(time.Second)
	r.send(&WireReq{Op: OpRead, Offset: 0, Length: 8192, Tag: 2})
	r.e.RunFor(time.Second)
	if r.srv.CacheHitRatio() <= 0 {
		t.Fatal("LRU cache should record hits")
	}
}
