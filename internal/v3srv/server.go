// Package v3srv implements the V3 storage server of Section 2.1: a
// user-level storage node with a request manager, a cache manager, a
// volume manager, and a disk manager, organized as a lightweight pipeline
// that services many I/O requests concurrently and communicates with
// clients through user-level VI primitives.
//
// A server presents one virtualized volume built over its locally
// attached disks. Reads are served from a large main-memory block cache
// (Multi-Queue replacement, the paper's [31]); writes are committed to
// disk before the response ("since in database systems writes have to
// commit to disk").
package v3srv

import (
	"time"

	"github.com/v3storage/v3/internal/diskmodel"
	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/mqcache"
	"github.com/v3storage/v3/internal/sim"
	"github.com/v3storage/v3/internal/vi"
	"github.com/v3storage/v3/internal/vinic"
	"github.com/v3storage/v3/internal/volume"
)

// OpKind distinguishes reads from writes.
type OpKind int

// I/O operations.
const (
	OpRead OpKind = iota
	OpWrite
)

// WireReq is the simulated 64-byte request control message a DSA client
// sends to a V3 server (the simulation analogue of wire.Read/wire.Write).
type WireReq struct {
	Op       OpKind
	Offset   int64
	Length   int
	PollMode bool // respond with a silent RDMA completion flag (cDSA polling)
	Tag      any  // client request state, echoed back opaquely
}

// WireResp is the response control message (or the payload of the
// RDMA-written completion flag in poll mode).
type WireResp struct {
	Tag        any
	ServerTime time.Duration // measured request-manager residence time
}

// WireData tags a bulk RDMA payload (read data to the client, write data
// staged to the server). Data transfers are silent; the response carries
// the completion.
type WireData struct {
	Tag any
}

// WireHint is a fire-and-forget caching/prefetching hint (the cDSA API's
// advanced feature, Section 2.2): the server stages the range into its
// cache; no response is sent.
type WireHint struct {
	Offset int64
	Length int
}

// Config sizes a V3 server node.
type Config struct {
	Name         string
	CPUs         int // server processors (Table 2: two 700 MHz PIIs)
	Workers      int // pipeline concurrency (outstanding requests in service)
	BlockSize    int // cache block size (the experiments fix 8 KB)
	CacheBlocks  int // block cache capacity; 0 disables caching
	UseMQ        bool
	NumDisks     int
	DiskParams   diskmodel.Params
	DiskBytes    int64         // usable bytes per disk
	StripeSize   int64         // volume manager stripe unit
	ReqCost      time.Duration // request-manager work per request
	PerBlockCost time.Duration // cache-manager work per block touched
	RespCost     time.Duration // response construction
}

// DefaultConfig returns a single mid-size V3 node (Table 2).
func DefaultConfig() Config {
	return Config{
		Name:         "v3-0",
		CPUs:         2,
		Workers:      64,
		BlockSize:    8192,
		CacheBlocks:  200000, // 1.6 GB at 8 KB
		UseMQ:        true,
		NumDisks:     15,
		DiskParams:   diskmodel.SCSI10K(),
		DiskBytes:    17 << 30,
		StripeSize:   64 * 1024,
		ReqCost:      8 * time.Microsecond,
		PerBlockCost: 5 * time.Microsecond,
		RespCost:     4 * time.Microsecond,
	}
}

// Server is one V3 storage node.
type Server struct {
	e      *sim.Engine
	cfg    Config
	cpus   *hw.CPUPool
	prov   *vi.Provider
	conn   *vi.Conn
	layout volume.Layout
	disks  *diskmodel.Array
	cache  mqcache.Cache
	queue  *sim.Queue[*serverReq]
	hints  *sim.Queue[*WireHint]

	served     sim.Counter
	cacheHits  sim.Counter
	cacheMiss  sim.Counter
	svcTime    sim.Tally
	queueDepth int
}

type serverReq struct {
	req     *WireReq
	arrived sim.Time
}

// New creates a server node, its CPU pool, VI provider, disks, and
// pipeline workers. nic is the server side of the link to its client.
func New(e *sim.Engine, cfg Config, nic *vinic.NIC, viParams vi.Params) *Server {
	if cfg.BlockSize <= 0 {
		panic("v3srv: block size must be positive")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4 * cfg.NumDisks
	}
	cpus := hw.NewCPUPool(e, cfg.CPUs)
	s := &Server{
		e:     e,
		cfg:   cfg,
		cpus:  cpus,
		disks: diskmodel.NewArray(e, cfg.NumDisks, cfg.DiskParams, sim.NewRand(0x5eed+uint64(len(cfg.Name)))),
		queue: sim.NewQueue[*serverReq](),
		hints: sim.NewQueue[*WireHint](),
	}
	s.prov = vi.NewProvider(e, cpus, nic, viParams)
	// The server's staging buffers are allocated and registered at startup
	// (it controls its own memory), so per-I/O registration happens only
	// on the client.
	s.prov.SetPinnedBuffers(true)
	lay, err := volume.NewStripe(cfg.NumDisks, cfg.StripeSize, cfg.DiskBytes-(cfg.DiskBytes%cfg.StripeSize))
	if err != nil {
		panic("v3srv: " + err.Error())
	}
	s.layout = lay
	if cfg.CacheBlocks > 0 {
		if cfg.UseMQ {
			s.cache = mqcache.NewMQ(cfg.CacheBlocks, 0, 0)
		} else {
			s.cache = mqcache.NewLRU(cfg.CacheBlocks)
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		e.Go(cfg.Name+"-worker", s.worker)
	}
	for i := 0; i < 2; i++ {
		e.Go(cfg.Name+"-prefetch", s.prefetcher)
	}
	return s
}

// AttachClient wires the server end of a VI connection: call with the
// server-side Conn created by vi.Connect.
func (s *Server) AttachClient(conn *vi.Conn) {
	s.conn = conn
	conn.SetHandler(s.onMessage)
}

// Provider returns the server's VI provider.
func (s *Server) Provider() *vi.Provider { return s.prov }

// VolumeSize returns the usable volume size in bytes.
func (s *Server) VolumeSize() int64 { return s.layout.Size() }

// onMessage runs in event context: requests enter the pipeline queue;
// silent write-data RDMAs need no server action (the NIC placed them in
// the staging buffer).
func (s *Server) onMessage(m *vinic.Message) {
	switch payload := m.Payload.(type) {
	case *WireReq:
		s.queueDepth++
		s.queue.Put(s.e, &serverReq{req: payload, arrived: s.e.Now()})
	case *WireData:
		// staged payload; nothing to do
	case *WireHint:
		s.hints.Put(s.e, payload)
	default:
		panic("v3srv: unexpected message payload")
	}
}

// worker is one stage-pipeline context: it pulls requests, runs the
// request manager / cache manager / disk manager work, and responds.
func (s *Server) worker(p *sim.Proc) {
	for {
		sr := s.queue.Get(p)
		s.queueDepth--
		req := sr.req
		s.cpus.Use(p, hw.CatOther, s.cfg.ReqCost)
		switch req.Op {
		case OpRead:
			s.serveRead(p, req)
		case OpWrite:
			s.serveWrite(p, req)
		}
		s.cpus.Use(p, hw.CatOther, s.cfg.RespCost)
		elapsed := p.Now() - sr.arrived
		s.svcTime.AddDuration(elapsed)
		s.served.Inc()
		resp := &WireResp{Tag: req.Tag, ServerTime: elapsed}
		if req.Op == OpRead {
			// RDMA the data into the client's buffer, then complete.
			s.conn.RDMAWrite(p, req.Length, &WireData{Tag: req.Tag}, false)
		}
		if req.PollMode {
			// Set the client's completion flag with a silent 64-byte RDMA.
			s.conn.RDMAWrite(p, 64, resp, false)
		} else {
			s.conn.Send(p, 64, resp)
		}
	}
}

// prefetcher services caching/prefetch hints in the background: it pulls
// the hinted range through the cache-fill path without responding, at
// lower priority than demand requests (hints are advisory).
func (s *Server) prefetcher(p *sim.Proc) {
	for {
		h := s.hints.Get(p)
		if s.cache == nil || h.Length <= 0 {
			continue
		}
		s.serveRead(p, &WireReq{Op: OpRead, Offset: h.Offset, Length: h.Length})
	}
}

// serveRead brings every block of the request into the cache (cache
// manager) or reads it from disk (volume + disk managers).
func (s *Server) serveRead(p *sim.Proc, req *WireReq) {
	if s.cache == nil {
		s.diskIO(p, req.Offset, req.Length, false)
		return
	}
	bs := int64(s.cfg.BlockSize)
	first := req.Offset / bs
	last := (req.Offset + int64(req.Length) - 1) / bs
	// Collect the missing block runs, then fetch them.
	runStart := int64(-1)
	var runLen int64
	for b := first; b <= last; b++ {
		s.cpus.Use(p, hw.CatOther, s.cfg.PerBlockCost)
		if s.cache.Ref(uint64(b)) {
			s.cacheHits.Inc()
			if runStart >= 0 {
				s.diskIO(p, runStart*bs, int(runLen*bs), false)
				s.insertRun(runStart, runLen)
				runStart = -1
			}
			continue
		}
		s.cacheMiss.Inc()
		if runStart < 0 {
			runStart, runLen = b, 1
		} else {
			runLen++
		}
	}
	if runStart >= 0 {
		s.diskIO(p, runStart*bs, int(runLen*bs), false)
		s.insertRun(runStart, runLen)
	}
}

func (s *Server) insertRun(start, n int64) {
	for b := start; b < start+n; b++ {
		s.cache.Insert(uint64(b))
	}
}

// serveWrite commits the staged payload to disk (write-through) and
// updates the cache so subsequent reads hit.
func (s *Server) serveWrite(p *sim.Proc, req *WireReq) {
	if s.cache != nil {
		bs := int64(s.cfg.BlockSize)
		first := req.Offset / bs
		last := (req.Offset + int64(req.Length) - 1) / bs
		for b := first; b <= last; b++ {
			s.cpus.Use(p, hw.CatOther, s.cfg.PerBlockCost)
			if !s.cache.Ref(uint64(b)) {
				s.cache.Insert(uint64(b))
			}
		}
	}
	s.diskIO(p, req.Offset, req.Length, true)
}

// diskIO maps [off, off+length) through the volume manager and performs
// the member-disk I/Os in parallel, blocking until all complete.
func (s *Server) diskIO(p *sim.Proc, off int64, length int, write bool) {
	if length <= 0 {
		return
	}
	var ext []volume.Extent
	var err error
	if write {
		ext, err = s.layout.MapWrite(off, length)
	} else {
		ext, err = s.layout.MapRead(off, length)
	}
	if err != nil {
		panic("v3srv: " + err.Error())
	}
	events := make([]*sim.Event, len(ext))
	for i, x := range ext {
		done := sim.NewEvent()
		events[i] = done
		s.disks.Disks[x.Disk].Submit(&diskmodel.Request{
			Offset: x.Offset, Length: x.Length, Write: write, Done: done,
		})
	}
	for _, ev := range events {
		ev.Wait(p)
	}
}

// Served returns the number of completed requests.
func (s *Server) Served() int64 { return s.served.Value() }

// MeanServiceTime returns the average request residence time.
func (s *Server) MeanServiceTime() time.Duration { return s.svcTime.MeanDuration() }

// CacheHitRatio returns block-level hits/(hits+misses), or 0 without a
// cache.
func (s *Server) CacheHitRatio() float64 {
	h, m := s.cacheHits.Value(), s.cacheMiss.Value()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Disks exposes the disk array (for stats).
func (s *Server) Disks() *diskmodel.Array { return s.disks }

// CPUs exposes the server CPU pool (for stats).
func (s *Server) CPUs() *hw.CPUPool { return s.cpus }
