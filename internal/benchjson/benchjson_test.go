package benchjson

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func readBack(t *testing.T, path string) []Record {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []Record
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestWriteMergesByName checks the ledger contract: same-name rows are
// replaced in place keeping the newest values, unmatched rows survive,
// new names append — across any sequence of partial runs.
func TestWriteMergesByName(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	if err := Write(path, []Record{
		{Name: "a", OpsPerSec: 1},
		{Name: "b", OpsPerSec: 2},
	}); err != nil {
		t.Fatal(err)
	}
	// A later targeted run refreshes "b" and adds "c".
	if err := Write(path, []Record{
		{Name: "b", OpsPerSec: 20, P99Micros: 5},
		{Name: "c", OpsPerSec: 3},
	}); err != nil {
		t.Fatal(err)
	}
	got := readBack(t, path)
	if len(got) != 3 {
		t.Fatalf("rows = %d, want 3: %+v", len(got), got)
	}
	if got[0].Name != "a" || got[0].OpsPerSec != 1 {
		t.Fatalf("row 0 = %+v, want untouched a", got[0])
	}
	if got[1].Name != "b" || got[1].OpsPerSec != 20 || got[1].P99Micros != 5 {
		t.Fatalf("row 1 = %+v, want refreshed b in place", got[1])
	}
	if got[2].Name != "c" || got[2].OpsPerSec != 3 {
		t.Fatalf("row 2 = %+v, want appended c", got[2])
	}
}

// TestWriteCorruptFileDegrades checks an unparsable ledger is replaced
// by the fresh rows instead of failing the run or duplicating.
func TestWriteCorruptFileDegrades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Write(path, []Record{{Name: "a", OpsPerSec: 1}}); err != nil {
		t.Fatal(err)
	}
	got := readBack(t, path)
	if len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("got %+v, want just a", got)
	}
}

// TestWriteDuplicateNewNames keeps the newest duplicate when the name
// is NOT already in the file — the sub-benchmark discovery pass records
// a b.N=1 row before the counted run's row of the same name, and the
// counted one must win whether the name is fresh or a replacement.
func TestWriteDuplicateNewNames(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := Write(path, []Record{{Name: "other", OpsPerSec: 9}}); err != nil {
		t.Fatal(err)
	}
	if err := Write(path, []Record{
		{Name: "new", OpsPerSec: 1}, // discovery pass
		{Name: "new", OpsPerSec: 2}, // counted run
	}); err != nil {
		t.Fatal(err)
	}
	got := readBack(t, path)
	if len(got) != 2 {
		t.Fatalf("rows = %d, want 2: %+v", len(got), got)
	}
	if got[1].Name != "new" || got[1].OpsPerSec != 2 {
		t.Fatalf("row 1 = %+v, want the counted run's row", got[1])
	}
}

// TestWriteDuplicatesToFreshFile collapses in-batch duplicates even when
// there is no file to merge into.
func TestWriteDuplicatesToFreshFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := Write(path, []Record{
		{Name: "a", OpsPerSec: 1},
		{Name: "b", OpsPerSec: 5},
		{Name: "a", OpsPerSec: 2},
	}); err != nil {
		t.Fatal(err)
	}
	got := readBack(t, path)
	if len(got) != 2 {
		t.Fatalf("rows = %d, want 2: %+v", len(got), got)
	}
	if got[0].Name != "a" || got[0].OpsPerSec != 2 || got[1].Name != "b" {
		t.Fatalf("got %+v, want deduped a=2 then b", got)
	}
}

// TestWriteDuplicateNamesInOneRun keeps the last of duplicate names in
// a single batch — one row per name is the file invariant.
func TestWriteDuplicateNamesInOneRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := Write(path, []Record{{Name: "a", OpsPerSec: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := Write(path, []Record{
		{Name: "a", OpsPerSec: 2},
		{Name: "a", OpsPerSec: 3},
	}); err != nil {
		t.Fatal(err)
	}
	got := readBack(t, path)
	if len(got) != 1 {
		t.Fatalf("rows = %d, want 1: %+v", len(got), got)
	}
	if got[0].OpsPerSec != 3 {
		t.Fatalf("row = %+v, want the newest duplicate", got[0])
	}
}
