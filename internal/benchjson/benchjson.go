// Package benchjson is the repo's benchmark-ledger writer: benchmark
// TestMains collect rows and hand them here, and the file on disk
// (BENCH_netv3.json) keeps exactly one row per benchmark name across
// runs — same-name rows are replaced in place (newest wins), new names
// append. That makes every entry point — the full sweep, a targeted
// `make bench-disk`, a single `make bench-mux` — safe to run in any
// order without discarding the others' history.
package benchjson

import (
	"encoding/json"
	"os"
)

// Record is one benchmark row. The zero fields are omitted so rows only
// carry the dimensions their benchmark measures.
type Record struct {
	Name        string  `json:"name"`
	OpsPerSec   float64 `json:"ops_per_sec,omitempty"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	MeanMicros  float64 `json:"mean_us,omitempty"`
	P99Micros   float64 `json:"p99_us,omitempty"`
	BytesPerOp  float64 `json:"alloc_bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Write merges records into the JSON array at path and rewrites it:
// existing rows whose name matches a new record are replaced in their
// original position, unmatched existing rows are kept, and genuinely new
// names append in record order. A missing or unparsable file degrades to
// writing just the new records.
func Write(path string, records []Record) error {
	if len(records) == 0 {
		return nil
	}
	// Collapse duplicate names within the batch first (last wins, in
	// first-occurrence order): `go test` invokes a parent benchmark once
	// with b.N=1 to discover its sub-benchmarks, so the counted run's row
	// arrives after a throwaway single-op row under the same name.
	fresh := make(map[string]Record, len(records))
	order := make([]string, 0, len(records))
	for _, r := range records {
		if _, ok := fresh[r.Name]; !ok {
			order = append(order, r.Name)
		}
		fresh[r.Name] = r
	}
	out := make([]Record, 0, len(order))
	if prev, err := os.ReadFile(path); err == nil {
		var old []Record
		if json.Unmarshal(prev, &old) == nil {
			for _, r := range old {
				if nr, ok := fresh[r.Name]; ok {
					out = append(out, nr)
					delete(fresh, r.Name)
				} else {
					out = append(out, r)
				}
			}
		}
	}
	for _, name := range order {
		if nr, ok := fresh[name]; ok {
			out = append(out, nr)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
