package vi

import (
	"testing"
	"time"

	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/sim"
	"github.com/v3storage/v3/internal/vinic"
)

type rig struct {
	e     *sim.Engine
	cpusA *hw.CPUPool
	cpusB *hw.CPUPool
	provA *Provider
	provB *Provider
	connA *Conn
	connB *Conn
}

func newRig(params Params) *rig {
	e := sim.NewEngine()
	cpusA := hw.NewCPUPool(e, 4)
	cpusB := hw.NewCPUPool(e, 2)
	nicA, nicB := vinic.NewPair(e, vinic.DefaultParams(), "client", "server")
	provA := NewProvider(e, cpusA, nicA, params)
	provB := NewProvider(e, cpusB, nicB, params)
	connA, connB := Connect(provA, provB)
	return &rig{e: e, cpusA: cpusA, cpusB: cpusB, provA: provA, provB: provB, connA: connA, connB: connB}
}

func TestRegisterCostsMatchPaper(t *testing.T) {
	// Registering an 8 KB buffer with pinning should cost 5-10 µs.
	r := newRig(DefaultParams())
	r.connB.SetHandler(func(m *vinic.Message) {})
	r.e.Go("w", func(p *sim.Proc) {
		r.provA.Register(p, 8192)
	})
	r.e.Run()
	got := r.cpusA.Busy(hw.CatVI) + r.cpusA.Busy(hw.CatLock)
	if got < 5*time.Microsecond || got > 10*time.Microsecond {
		t.Fatalf("8K registration cost = %v, want 5-10µs", got)
	}
}

func TestPinnedBuffersCheaper(t *testing.T) {
	cost := func(pinned bool) time.Duration {
		r := newRig(DefaultParams())
		r.provA.SetPinnedBuffers(pinned)
		r.e.Go("w", func(p *sim.Proc) { r.provA.Register(p, 64*1024) })
		r.e.Run()
		return r.cpusA.Busy(hw.CatVI)
	}
	if cost(true) >= cost(false) {
		t.Fatal("pre-pinned registration should be cheaper")
	}
}

func TestBatchedDeregAmortizesCost(t *testing.T) {
	run := func(batched bool) (int64, time.Duration) {
		params := DefaultParams()
		params.BatchedDereg = batched
		r := newRig(params)
		r.e.Go("w", func(p *sim.Proc) {
			for i := 0; i < 2000; i++ {
				h := r.provA.Register(p, 8192)
				r.provA.Deregister(p, h)
			}
		})
		r.e.Run()
		return r.provA.DeregOps(), r.cpusA.Busy(hw.CatVI)
	}
	opsB, cpuB := run(true)
	opsI, cpuI := run(false)
	if opsI != 2000 {
		t.Fatalf("immediate dereg ops = %d, want 2000", opsI)
	}
	// 2000 buffers * 2 pages = 4000 entries = 4 regions of 1000.
	if opsB > 5 {
		t.Fatalf("batched dereg ops = %d, want <= 5", opsB)
	}
	if cpuB >= cpuI {
		t.Fatalf("batched CPU %v should be below immediate %v", cpuB, cpuI)
	}
}

func TestRegisterBlocksWhenTableFull(t *testing.T) {
	params := DefaultParams()
	params.TableEntries = 4
	params.RegionEntries = 2
	r := newRig(params)
	var registered []MemHandle
	var secondDone sim.Time
	r.e.Go("w", func(p *sim.Proc) {
		registered = append(registered, r.provA.Register(p, 2*4096))
		registered = append(registered, r.provA.Register(p, 2*4096))
		// Table now full (4 entries). Next register must block until we free.
		r.e.After(500*time.Microsecond, func() {
			r.e.Go("freer", func(p2 *sim.Proc) {
				r.provA.Deregister(p2, registered[0])
			})
		})
		r.provA.Register(p, 2*4096)
		secondDone = p.Now()
	})
	r.e.Run()
	if secondDone < 500*time.Microsecond {
		t.Fatalf("register returned at %v despite full table", secondDone)
	}
}

func TestSendDeliversToPeerHandler(t *testing.T) {
	r := newRig(DefaultParams())
	var got *vinic.Message
	r.connB.SetHandler(func(m *vinic.Message) { got = m })
	r.connA.SetHandler(func(m *vinic.Message) {})
	r.e.Go("w", func(p *sim.Proc) {
		r.connA.Send(p, 64, "req")
	})
	r.e.Run()
	if got == nil || got.Payload.(string) != "req" || !got.Notify || got.RDMA {
		t.Fatalf("got %+v", got)
	}
}

func TestRDMAWriteSilentAtTarget(t *testing.T) {
	r := newRig(DefaultParams())
	var got *vinic.Message
	r.connB.SetHandler(func(m *vinic.Message) { got = m })
	r.e.Go("w", func(p *sim.Proc) {
		r.connA.RDMAWrite(p, 8192, "data", false)
	})
	r.e.Run()
	if got == nil || !got.RDMA || got.Notify {
		t.Fatalf("got %+v", got)
	}
	// Silent delivery burns no host CPU at the receiver.
	if r.cpusB.TotalUtilization() != 0 {
		t.Fatal("silent RDMA should not consume receiver CPU")
	}
}

func TestBidirectionalConnections(t *testing.T) {
	r := newRig(DefaultParams())
	var aGot, bGot int
	r.connA.SetHandler(func(m *vinic.Message) { aGot++ })
	r.connB.SetHandler(func(m *vinic.Message) { bGot++ })
	r.e.Go("a", func(p *sim.Proc) {
		r.connA.Send(p, 64, nil)
		r.connA.Send(p, 64, nil)
	})
	r.e.Go("b", func(p *sim.Proc) {
		r.connB.Send(p, 64, nil)
	})
	r.e.Run()
	if aGot != 1 || bGot != 2 {
		t.Fatalf("aGot=%d bGot=%d", aGot, bGot)
	}
}

func TestMultipleConnsRouteIndependently(t *testing.T) {
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, 2)
	nicA, nicB := vinic.NewPair(e, vinic.DefaultParams(), "a", "b")
	pa := NewProvider(e, cpus, nicA, DefaultParams())
	pb := NewProvider(e, cpus, nicB, DefaultParams())
	a1, b1 := Connect(pa, pb)
	a2, b2 := Connect(pa, pb)
	var got1, got2 int
	b1.SetHandler(func(m *vinic.Message) { got1++ })
	b2.SetHandler(func(m *vinic.Message) { got2++ })
	a1.SetHandler(func(m *vinic.Message) {})
	a2.SetHandler(func(m *vinic.Message) {})
	e.Go("w", func(p *sim.Proc) {
		a1.Send(p, 64, nil)
		a2.Send(p, 64, nil)
		a2.Send(p, 64, nil)
	})
	e.Run()
	if got1 != 1 || got2 != 2 {
		t.Fatalf("got1=%d got2=%d", got1, got2)
	}
}

func TestPostAndCompletionChargeVICPU(t *testing.T) {
	r := newRig(DefaultParams())
	r.connB.SetHandler(func(m *vinic.Message) {})
	r.e.Go("w", func(p *sim.Proc) {
		r.connA.Send(p, 64, nil)
		r.connA.PopCompletion(p)
	})
	r.e.Run()
	if r.cpusA.Busy(hw.CatVI) <= 0 {
		t.Fatal("VI CPU not charged")
	}
	if r.cpusA.Busy(hw.CatLock) <= 0 {
		t.Fatal("VI lock pairs not charged")
	}
}

func TestFlushDeregReleasesIdleRegion(t *testing.T) {
	r := newRig(DefaultParams())
	r.e.Go("w", func(p *sim.Proc) {
		h := r.provA.Register(p, 8192)
		r.provA.Deregister(p, h) // region partial: entries linger
		if r.provA.TableUsed() == 0 {
			t.Error("entries should linger in unsealed region")
		}
		r.provA.FlushDereg(p)
		if r.provA.TableUsed() != 0 {
			t.Error("flush should release completed region")
		}
	})
	r.e.Run()
	if r.provA.DeregOps() != 1 {
		t.Fatalf("deregOps=%d", r.provA.DeregOps())
	}
}
