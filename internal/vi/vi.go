// Package vi models a Virtual Interface Architecture provider (the
// Giganet VIPL implementation of the VI Specification 1.0) on top of the
// NIC model in internal/vinic. It exposes what DSA consumes:
//
//   - memory registration and deregistration against the NIC's bounded
//     translation table, with per-page pin cost that disappears when
//     buffers arrive pre-pinned (AWE memory or I/O-manager-pinned MDLs),
//     and DSA's batched region deregistration (internal/regtable);
//   - connections (VIs) with descriptor posting and RDMA write;
//   - the VI layer's own lock pairs — one for registration/deregistration
//     and one per connection for queuing/dequeuing (Section 3.3) — which
//     are private to a VI, so multiple connections spread contention.
//
// Host CPU costs are charged to hw.CatVI; the NIC/link time is modeled by
// vinic.
package vi

import (
	"time"

	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/regtable"
	"github.com/v3storage/v3/internal/sim"
	"github.com/v3storage/v3/internal/vinic"
)

// Params are the VI provider cost constants. Defaults put registering an
// 8 KB buffer (2 pages, with pinning) at ~7 µs and a deregistration
// operation at ~5 µs, matching the paper's "5-10 microseconds each".
type Params struct {
	PageSize      int
	TableEntries  int  // NIC translation table capacity in pages (1 GB on the cLan)
	RegionEntries int  // batched-dereg region size (paper: 1000)
	BatchedDereg  bool // DSA's batched deregistration optimization
	RegBaseCost   time.Duration
	RegPerPage    time.Duration
	PinPerPage    time.Duration // zeroed when buffers arrive pinned
	DeregOpCost   time.Duration // per deregistration operation (base)
	// DeregShootdownPerCPU models the TLB-shootdown IPIs a page unmapping
	// broadcasts to every processor: the reason "deregistration requires
	// locking pages, which becomes more expensive at larger processor
	// counts" (Section 6.1). Batched deregistration pays it once per
	// thousand-entry region instead of once per I/O.
	DeregShootdownPerCPU time.Duration
	PostCost             time.Duration // descriptor build + doorbell
	CompletionCost       time.Duration // completion-queue pop
	LockHold             time.Duration // critical section under VI locks
}

// DefaultParams returns the Giganet cLan model with batched
// deregistration enabled.
func DefaultParams() Params {
	return Params{
		PageSize:             4096,
		TableEntries:         1 << 18, // 1 GB / 4 KB
		RegionEntries:        regtable.DefaultRegionEntries,
		BatchedDereg:         true,
		RegBaseCost:          2 * time.Microsecond,
		RegPerPage:           time.Microsecond,
		PinPerPage:           1500 * time.Nanosecond,
		DeregOpCost:          5 * time.Microsecond,
		DeregShootdownPerCPU: time.Microsecond,
		PostCost:             800 * time.Nanosecond,
		CompletionCost:       600 * time.Nanosecond,
		LockHold:             300 * time.Nanosecond,
	}
}

// MemHandle names one registered buffer.
type MemHandle struct {
	rt    regtable.Handle
	bytes int
}

// Bytes returns the registered length.
func (h MemHandle) Bytes() int { return h.bytes }

// Provider is one VI NIC's software interface on a host.
type Provider struct {
	E      *sim.Engine
	cpus   *hw.CPUPool
	nic    *vinic.NIC
	params Params

	table    *regtable.Manager
	regLock  *hw.SyncLock
	pageLock *hw.SyncLock // host-global page-table lock (shared across providers)
	conns    map[uint32]*Conn
	nextConn uint32
	pinned   bool

	regOps, deregOps sim.Counter
	regCPU           time.Duration
}

// NewProvider wraps nic with a VI software layer charging CPU time to
// cpus.
func NewProvider(e *sim.Engine, cpus *hw.CPUPool, nic *vinic.NIC, params Params) *Provider {
	pr := &Provider{
		E: e, cpus: cpus, nic: nic, params: params,
		table:   regtable.New(params.TableEntries, params.RegionEntries, params.BatchedDereg),
		regLock: hw.NewSyncLock(e, cpus),
		conns:   make(map[uint32]*Conn),
	}
	nic.SetHandler(pr.dispatch)
	return pr
}

// Params returns the provider's cost constants.
func (pr *Provider) Params() Params { return pr.params }

// NIC returns the underlying NIC model.
func (pr *Provider) NIC() *vinic.NIC { return pr.nic }

// SetPageLock installs the host-global page-table lock shared by every
// provider on the host. Unbatched deregistration must lock pages under
// it — "deregistration requires locking pages, which becomes more
// expensive at larger processor counts" (Section 6.1). Batched mode
// takes it once per region instead of once per I/O.
func (pr *Provider) SetPageLock(l *hw.SyncLock) { pr.pageLock = l }

// SetPinnedBuffers declares that buffers handed to Register are already
// pinned (AWE memory, or MDLs pinned by the I/O manager in kernel mode),
// eliminating the per-page pin cost (Section 3.1).
func (pr *Provider) SetPinnedBuffers(pinned bool) { pr.pinned = pinned }

func (pr *Provider) pages(bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + pr.params.PageSize - 1) / pr.params.PageSize
}

// Register pins and registers a buffer of the given size, blocking while
// the NIC table is full. Cost: the VI registration lock pair plus base +
// per-page work (+ per-page pinning unless buffers are pre-pinned).
func (pr *Provider) Register(p *sim.Proc, bytes int) MemHandle {
	pages := pr.pages(bytes)
	perPage := pr.params.RegPerPage
	if !pr.pinned {
		perPage += pr.params.PinPerPage
	}
	pr.regLock.Acquire(p)
	cost := pr.params.RegBaseCost + time.Duration(pages)*perPage
	pr.cpus.Use(p, hw.CatVI, cost)
	pr.regCPU += cost
	h, ok := pr.table.Register(pages)
	pr.regLock.Release(p)
	for !ok {
		// Table full: wait for completions to free regions, then retry.
		p.Sleep(20 * time.Microsecond)
		pr.regLock.Acquire(p)
		h, ok = pr.table.Register(pages)
		pr.regLock.Release(p)
	}
	pr.regOps.Inc()
	return MemHandle{rt: h, bytes: bytes}
}

// Deregister releases a buffer's entries. In batched mode the actual NIC
// deregistration (and its ~5 µs cost) happens once per region; in
// immediate mode every call pays it.
func (pr *Provider) Deregister(p *sim.Proc, h MemHandle) {
	pr.regLock.Acquire(p)
	ops, _ := pr.table.Complete(h.rt)
	pr.regLock.Release(p)
	if ops > 0 {
		pr.deregWork(p, ops)
	}
}

// deregWork performs the actual NIC deregistration operations: unpinning
// pages under the host-global page lock (when one is installed), which
// is what makes per-I/O deregistration so expensive on large SMPs.
func (pr *Provider) deregWork(p *sim.Proc, ops int) {
	base := time.Duration(ops) * pr.params.DeregOpCost
	// The page-table update itself serializes under the host page lock;
	// the TLB-shootdown IPIs burn cycles on the issuing CPU (and, in
	// reality, on every other CPU) without holding it.
	if pr.pageLock != nil {
		pr.pageLock.Acquire(p)
		pr.cpus.Use(p, hw.CatVI, base)
		pr.pageLock.Release(p)
	} else {
		pr.cpus.Use(p, hw.CatVI, base)
	}
	shoot := time.Duration(ops) * time.Duration(pr.cpus.N()) * pr.params.DeregShootdownPerCPU
	pr.cpus.Use(p, hw.CatVI, shoot)
	pr.deregOps.Addn(int64(ops))
}

// FlushDereg seals the current dereg region (called by DSA on a short
// timer so idle periods do not pin a region).
func (pr *Provider) FlushDereg(p *sim.Proc) {
	pr.regLock.Acquire(p)
	ops, _ := pr.table.Flush()
	pr.regLock.Release(p)
	if ops > 0 {
		pr.deregWork(p, ops)
	}
}

// TableUsed returns the pinned entry count (for tests and monitoring).
func (pr *Provider) TableUsed() int { return pr.table.Used() }

// DeregOps returns total NIC deregistration operations performed.
func (pr *Provider) DeregOps() int64 { return pr.deregOps.Value() }

// RegOps returns total registrations performed.
func (pr *Provider) RegOps() int64 { return pr.regOps.Value() }

// dispatch routes an arriving message to its connection's handler.
func (pr *Provider) dispatch(m *vinic.Message) {
	c, ok := pr.conns[m.ConnID]
	if !ok {
		panic("vi: message for unknown connection")
	}
	if c.onRecv == nil {
		panic("vi: connection has no receive handler")
	}
	c.onRecv(m)
}

// Conn is one VI: a connected endpoint pair. Each side has its own
// queuing lock, private to the VI.
type Conn struct {
	prov      *Provider
	id        uint32 // our id (peer addresses messages to it)
	peerID    uint32
	queueLock *hw.SyncLock
	onRecv    func(*vinic.Message)
}

// Connect creates a VI between two providers and returns both endpoints.
func Connect(a, b *Provider) (*Conn, *Conn) {
	ca := &Conn{prov: a, id: a.nextConn, queueLock: hw.NewSyncLock(a.E, a.cpus)}
	a.nextConn++
	a.conns[ca.id] = ca
	cb := &Conn{prov: b, id: b.nextConn, queueLock: hw.NewSyncLock(b.E, b.cpus)}
	b.nextConn++
	b.conns[cb.id] = cb
	ca.peerID = cb.id
	cb.peerID = ca.id
	return ca, cb
}

// SetHandler installs the receive callback (event context, must not
// block).
func (c *Conn) SetHandler(h func(*vinic.Message)) { c.onRecv = h }

// post charges the send-path VI work: the queuing lock pair and the
// descriptor/doorbell cost.
func (c *Conn) post(p *sim.Proc) {
	c.queueLock.Acquire(p)
	c.prov.cpus.Use(p, hw.CatVI, c.prov.params.LockHold)
	c.queueLock.Release(p)
	c.prov.cpus.Use(p, hw.CatVI, c.prov.params.PostCost)
}

// Send posts a send descriptor of size bytes (a control message). The
// peer's handler sees Notify=true.
func (c *Conn) Send(p *sim.Proc, size int, payload any) {
	c.post(p)
	c.prov.nic.Send(&vinic.Message{Size: size, ConnID: c.peerID, Notify: true, Payload: payload})
}

// RDMAWrite posts an RDMA write of size bytes into the peer's memory.
// With notify=false the write is silent at the target (no completion
// entry, no interrupt) — how cDSA's completion flags and all data
// payloads are delivered.
func (c *Conn) RDMAWrite(p *sim.Proc, size int, payload any, notify bool) {
	c.post(p)
	c.prov.nic.Send(&vinic.Message{Size: size, ConnID: c.peerID, RDMA: true, Notify: notify, Payload: payload})
}

// PopCompletion charges the receive-path VI work for consuming one
// completion: the dequeue lock pair plus the CQ pop.
func (c *Conn) PopCompletion(p *sim.Proc) {
	c.queueLock.Acquire(p)
	c.prov.cpus.Use(p, hw.CatVI, c.prov.params.LockHold)
	c.queueLock.Release(p)
	c.prov.cpus.Use(p, hw.CatVI, c.prov.params.CompletionCost)
}
