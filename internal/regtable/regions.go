// Package regtable implements DSA's batched deregistration of NIC
// translation-table entries (Section 3.1 of the paper).
//
// VI-enabled NICs register consecutive I/O buffers into successive
// entries of an on-NIC translation table with bounded capacity (1 GB of
// host memory on the Giganet cLan). Deregistering each buffer when its
// I/O completes costs ~5-10 µs per operation. DSA instead divides the
// table into regions of one thousand consecutive entries (4 MB of host
// memory) and deregisters a whole region with a single operation once
// every buffer in it has completed — one deregistration per thousand
// I/Os. The cost is that one straggling buffer pins its entire region.
//
// The package is pure bookkeeping: callers charge themselves the modeled
// (or real) cost of each returned deregistration operation.
package regtable

import "fmt"

// DefaultRegionEntries is the paper's region size: 1000 consecutive NIC
// table entries (4 MB of host memory at one 4 KB page per entry).
const DefaultRegionEntries = 1000

type region struct {
	id        uint64
	allocated int
	completed int
	sealed    bool // no further allocations; eligible for batch dereg
}

// Handle identifies one registered buffer's entries.
type Handle struct {
	region  uint64
	entries int
}

// Entries returns the number of NIC table entries the handle covers.
func (h Handle) Entries() int { return h.entries }

// Manager tracks NIC translation-table occupancy and decides when
// deregistration operations happen.
type Manager struct {
	capacity      int // total NIC table entries
	regionEntries int
	batched       bool // false = deregister every buffer individually (ablation / unoptimized)

	regions  map[uint64]*region
	cur      *region
	nextID   uint64
	used     int // entries in live (not yet deregistered) regions
	regOps   int64
	deregOps int64
}

// New returns a manager for a table of capacity entries using batched
// regions of regionEntries. batched=false models the unoptimized system:
// one deregistration per buffer.
func New(capacity, regionEntries int, batched bool) *Manager {
	if capacity <= 0 || regionEntries <= 0 {
		panic("regtable: capacity and regionEntries must be positive")
	}
	return &Manager{
		capacity:      capacity,
		regionEntries: regionEntries,
		batched:       batched,
		regions:       make(map[uint64]*region),
	}
}

// Batched reports whether batched deregistration is enabled.
func (m *Manager) Batched() bool { return m.batched }

// Used returns the number of table entries currently pinned.
func (m *Manager) Used() int { return m.used }

// Capacity returns the table size in entries.
func (m *Manager) Capacity() int { return m.capacity }

// RegOps returns the number of registration operations performed.
func (m *Manager) RegOps() int64 { return m.regOps }

// DeregOps returns the number of deregistration operations performed.
func (m *Manager) DeregOps() int64 { return m.deregOps }

func (m *Manager) newRegion() *region {
	r := &region{id: m.nextID}
	m.nextID++
	m.regions[r.id] = r
	return r
}

// Register pins entries consecutive table entries for one buffer. It
// reports ok=false when the table cannot hold them (callers block and
// retry after completions free regions, mirroring the real system's
// behaviour when the 1 GB limit is hit).
func (m *Manager) Register(entries int) (Handle, bool) {
	if entries <= 0 {
		panic(fmt.Sprintf("regtable: Register(%d)", entries))
	}
	if m.used+entries > m.capacity {
		return Handle{}, false
	}
	m.regOps++
	m.used += entries
	if !m.batched {
		r := m.newRegion()
		r.sealed = true
		r.allocated = entries
		return Handle{region: r.id, entries: entries}, true
	}
	if m.cur == nil {
		m.cur = m.newRegion()
	}
	// A buffer's entries must be consecutive: if it does not fit in the
	// current region, seal the region and open a new one.
	if m.cur.allocated+entries > m.regionEntries {
		m.sealCurrent()
		m.cur = m.newRegion()
	}
	m.cur.allocated += entries
	h := Handle{region: m.cur.id, entries: entries}
	if m.cur.allocated == m.regionEntries {
		m.sealCurrent()
	}
	return h, true
}

// sealCurrent closes the fill region. If its buffers have all already
// completed, it is deregistered on the spot (observable via DeregOps);
// without this check a region whose completions all arrive before it is
// sealed would pin its entries forever.
func (m *Manager) sealCurrent() {
	r := m.cur
	if r == nil {
		return
	}
	r.sealed = true
	m.cur = nil
	if r.allocated == 0 {
		// Never used; drop without spending a deregistration operation.
		delete(m.regions, r.id)
		return
	}
	if r.completed == r.allocated {
		m.deregOps++
		m.used -= r.allocated
		delete(m.regions, r.id)
	}
}

// Complete records that the I/O using h finished. It returns the number
// of deregistration operations triggered (0 or 1) and the number of table
// entries those operations freed.
func (m *Manager) Complete(h Handle) (ops int, freed int) {
	r, ok := m.regions[h.region]
	if !ok {
		panic(fmt.Sprintf("regtable: Complete on unknown region %d", h.region))
	}
	r.completed += h.entries
	if r.completed > r.allocated {
		panic("regtable: more completions than allocations in region")
	}
	if r.sealed && r.completed == r.allocated {
		m.deregOps++
		m.used -= r.allocated
		delete(m.regions, r.id)
		return 1, r.allocated
	}
	return 0, 0
}

// Flush seals the current fill region so it can deregister as soon as its
// buffers complete, and immediately deregisters it if they already have.
// DSA calls this on a short timer so idle periods do not pin a region
// forever. It returns the ops/entries deregistered now.
func (m *Manager) Flush() (ops int, freed int) {
	if m.cur == nil {
		return 0, 0
	}
	opsBefore, usedBefore := m.deregOps, m.used
	m.sealCurrent()
	return int(m.deregOps - opsBefore), usedBefore - m.used
}

// LiveRegions returns the number of regions still pinning entries.
func (m *Manager) LiveRegions() int { return len(m.regions) }
