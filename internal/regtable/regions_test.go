package regtable

import (
	"testing"
	"testing/quick"
)

func TestImmediateModeDeregistersEveryBuffer(t *testing.T) {
	m := New(10000, DefaultRegionEntries, false)
	for i := 0; i < 50; i++ {
		h, ok := m.Register(2)
		if !ok {
			t.Fatal("register failed")
		}
		ops, freed := m.Complete(h)
		if ops != 1 || freed != 2 {
			t.Fatalf("immediate mode: ops=%d freed=%d", ops, freed)
		}
	}
	if m.DeregOps() != 50 {
		t.Fatalf("deregOps = %d, want 50", m.DeregOps())
	}
	if m.Used() != 0 {
		t.Fatalf("used = %d, want 0", m.Used())
	}
}

func TestBatchedModeOneDeregPerRegion(t *testing.T) {
	m := New(100000, 1000, true)
	// 1000 single-entry buffers exactly fill one region.
	var handles []Handle
	for i := 0; i < 1000; i++ {
		h, ok := m.Register(1)
		if !ok {
			t.Fatal("register failed")
		}
		handles = append(handles, h)
	}
	var ops int
	for _, h := range handles {
		o, _ := m.Complete(h)
		ops += o
	}
	if ops != 1 {
		t.Fatalf("dereg ops = %d, want 1 per thousand I/Os", ops)
	}
	if m.Used() != 0 {
		t.Fatalf("used = %d", m.Used())
	}
}

func TestBatchedDeregWaitsForLastBuffer(t *testing.T) {
	m := New(100000, 4, true)
	h1, _ := m.Register(2)
	h2, _ := m.Register(2) // seals the region (full)
	if ops, _ := m.Complete(h1); ops != 0 {
		t.Fatal("region deregistered before all buffers completed")
	}
	ops, freed := m.Complete(h2)
	if ops != 1 || freed != 4 {
		t.Fatalf("ops=%d freed=%d, want 1,4", ops, freed)
	}
}

func TestStragglerPinsRegion(t *testing.T) {
	m := New(100000, 4, true)
	straggler, _ := m.Register(1)
	h2, _ := m.Register(3) // fills and seals the region
	m.Complete(h2)
	if m.Used() != 4 {
		t.Fatalf("straggler should pin whole region: used=%d", m.Used())
	}
	ops, freed := m.Complete(straggler)
	if ops != 1 || freed != 4 {
		t.Fatalf("ops=%d freed=%d", ops, freed)
	}
}

func TestBufferTooBigForRemainderOpensNewRegion(t *testing.T) {
	m := New(100000, 10, true)
	h1, _ := m.Register(6)
	h2, _ := m.Register(6) // doesn't fit in remaining 4: region 0 sealed at 6
	if h1.region == h2.region {
		t.Fatal("buffers should be in different regions")
	}
	// Completing h1 alone should now free region 0 (sealed with 6 allocated).
	ops, freed := m.Complete(h1)
	if ops != 1 || freed != 6 {
		t.Fatalf("ops=%d freed=%d", ops, freed)
	}
	ops, freed = m.Complete(h2)
	if ops != 0 || freed != 0 {
		t.Fatal("unsealed region should not deregister")
	}
	ops, freed = m.Flush()
	if ops != 1 || freed != 6 {
		t.Fatalf("flush: ops=%d freed=%d", ops, freed)
	}
}

func TestCapacityLimit(t *testing.T) {
	m := New(10, 4, true)
	if _, ok := m.Register(8); !ok {
		t.Fatal("first register should fit")
	}
	if _, ok := m.Register(8); ok {
		t.Fatal("register beyond capacity should fail")
	}
	if m.Used() != 8 {
		t.Fatalf("used=%d", m.Used())
	}
}

func TestFlushEmptyAndIdle(t *testing.T) {
	m := New(100, 10, true)
	if ops, freed := m.Flush(); ops != 0 || freed != 0 {
		t.Fatal("flush with no region should be a no-op")
	}
	h, _ := m.Register(2)
	m.Complete(h)
	// Region is current (unsealed) but fully complete: flush deregisters it.
	ops, freed := m.Flush()
	if ops != 1 || freed != 2 {
		t.Fatalf("flush: ops=%d freed=%d", ops, freed)
	}
	if m.LiveRegions() != 0 {
		t.Fatalf("live regions = %d", m.LiveRegions())
	}
}

func TestFlushPendingRegionDeregistersOnLastComplete(t *testing.T) {
	m := New(100, 10, true)
	h, _ := m.Register(3)
	if ops, _ := m.Flush(); ops != 0 {
		t.Fatal("flush should not free region with pending buffer")
	}
	ops, freed := m.Complete(h)
	if ops != 1 || freed != 3 {
		t.Fatalf("sealed region should free at last completion: ops=%d freed=%d", ops, freed)
	}
}

func TestRegOpsCounted(t *testing.T) {
	m := New(1000, 10, true)
	for i := 0; i < 7; i++ {
		if _, ok := m.Register(1); !ok {
			t.Fatal("register failed")
		}
	}
	if m.RegOps() != 7 {
		t.Fatalf("regOps=%d", m.RegOps())
	}
}

// Property: entries are conserved — used always equals registered minus
// deregistered, never negative, and never exceeds capacity.
func TestConservationProperty(t *testing.T) {
	f := func(sizes []uint8, regionSize uint8, batched bool) bool {
		rs := int(regionSize%32) + 1
		m := New(4096, rs, batched)
		var live []Handle
		registered, deregistered := 0, 0
		for i, s := range sizes {
			n := int(s%8) + 1
			usedBefore := m.Used()
			if h, ok := m.Register(n); ok {
				registered += n
				live = append(live, h)
				// Register may seal a fully-completed region and
				// deregister it as a side effect.
				deregistered += usedBefore + n - m.Used()
			}
			// Complete roughly half as we go, oldest first.
			if i%2 == 0 && len(live) > 0 {
				h := live[0]
				live = live[1:]
				_, freed := m.Complete(h)
				deregistered += freed
			}
			if m.Used() != registered-deregistered {
				return false
			}
			if m.Used() < 0 || m.Used() > m.Capacity() {
				return false
			}
		}
		// Drain.
		for _, h := range live {
			_, freed := m.Complete(h)
			deregistered += freed
		}
		_, freed := m.Flush()
		deregistered += freed
		return m.Used() == registered-deregistered && m.Used() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: in batched mode dereg ops are at most ceil(buffers*maxsize/regionSize)+1
// and strictly fewer than buffer count for region sizes > max buffer size.
func TestBatchingReducesOpsProperty(t *testing.T) {
	f := func(n uint16) bool {
		count := int(n%2000) + 100
		m := New(1<<20, 1000, true)
		var hs []Handle
		for i := 0; i < count; i++ {
			h, ok := m.Register(1)
			if !ok {
				return false
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			m.Complete(h)
		}
		m.Flush()
		// ~1 op per 1000 buffers.
		return m.DeregOps() <= int64(count/1000)+1 && m.Used() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
