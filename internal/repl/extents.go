package repl

import "sort"

// Extent is a half-open byte range [Off, End) in the volume's logical
// address space.
type Extent struct {
	Off, End int64
}

// Len returns the extent's byte length.
func (e Extent) Len() int64 { return e.End - e.Off }

// addSpan merges [off, end) into a sorted, non-overlapping, touching-
// runs-merged span list. It returns the updated list and the number of
// bytes the insert newly covered — bytes already spanned count zero,
// which is what lets callers keep net (not gross) progress totals.
func addSpan(spans []Extent, off, end int64) ([]Extent, int64) {
	if end <= off {
		return spans, 0
	}
	// First span that could touch the new one (its end reaches off).
	i := sort.Search(len(spans), func(i int) bool { return spans[i].End >= off })
	j := i
	noff, nend := off, end
	var overlap int64
	for j < len(spans) && spans[j].Off <= end {
		if o := min(end, spans[j].End) - max(off, spans[j].Off); o > 0 {
			overlap += o
		}
		if spans[j].Off < noff {
			noff = spans[j].Off
		}
		if spans[j].End > nend {
			nend = spans[j].End
		}
		j++
	}
	spans = append(spans[:i], append([]Extent{{noff, nend}}, spans[j:]...)...)
	return spans, (end - off) - overlap
}

// capSpans bounds the list to limit spans by repeatedly merging the
// pair with the smallest gap between them. The merge covers the gap
// too, so the list loses precision — a consumer replays bytes it did
// not strictly need — but never loses coverage.
func capSpans(spans []Extent, limit int) []Extent {
	for limit > 0 && len(spans) > limit {
		best, gap := 0, int64(1)<<62
		for k := 0; k+1 < len(spans); k++ {
			if g := spans[k+1].Off - spans[k].End; g < gap {
				best, gap = k, g
			}
		}
		spans[best].End = spans[best+1].End
		spans = append(spans[:best+1], spans[best+2:]...)
	}
	return spans
}

// spanBytes returns the total bytes covered by the list.
func spanBytes(spans []Extent) int64 {
	var n int64
	for _, s := range spans {
		n += s.End - s.Off
	}
	return n
}
