// Package repl is the per-volume sequenced replication log: the single
// encoding of "this write is acknowledged but not yet durable
// everywhere" that the cluster layer builds its redundancy on.
//
// The paper's V3 backend acknowledges writes before destaging them
// (write-behind), so a cluster client holds three distinct debts per
// replica: writes a down replica never saw, writes a live replica acked
// but has not flushed, and writes a failed replica may have applied
// partially. Encoding those as separately mutated extent logs puts the
// lost-write bugs in the seams between them. Here they are one ordered
// log instead:
//
//   - every acknowledged volume write appends one Record with a
//     monotonically increasing Seq;
//   - each replica is a Consumer with two positions into that order: a
//     cursor (pos — every record ≤ pos is applied to the replica) and a
//     watermark (durable — every record ≤ durable is covered by a
//     successful flush barrier);
//   - a replica trip is a cursor reset: pos rolls back to the
//     watermark, because the write-behind cache between them may not
//     have survived. The records in (durable, head] ARE the replay
//     debt — no extent shuffling;
//   - catch-up is log replay from the cursor: restartable (the cursor
//     only advances when a replay pass commits) and incremental. Only
//     when the log has been truncated past the cursor does catch-up
//     fall back to the extent-merge path, replaying the folded coverage
//     summary of the truncated records;
//   - ranges owed regardless of sequence order — a failed mid-write
//     whose partial content is suspect, or a replica whose content is
//     unknown at open — are tracked per consumer as debt extents on the
//     side.
//
// Feeds are the same cursor mechanism exposed to outside subscribers:
// a Feed resumes from any committed cursor, catches up (records, or
// folded extents when truncated past) and then follows the live tail.
package repl

import (
	"sync"
	"sync/atomic"
)

// Record is one acknowledged volume write in sequence order.
type Record struct {
	Seq uint64
	Off int64
	Len int64
}

// Config bounds a Log.
type Config struct {
	// MaxRecords is how many records the log keeps before folding the
	// oldest into the extent coverage summary (default 4096).
	MaxRecords int
	// MaxFolded bounds the folded summary's span count, and the span
	// count of each consumer's debt list (default 512).
	MaxFolded int
}

// Log is one volume's replication log. All methods are safe for
// concurrent use; the log takes no locks other than its own, so callers
// may invoke it while holding their own ordering locks.
type Log struct {
	mu   sync.Mutex
	size int64
	cfg  Config

	head uint64   // seq of the newest record; 0 before the first append
	base uint64   // seq of the newest truncated record; kept records are (base, head]
	recs []Record // recs[i].Seq == base+1+uint64(i)

	// folded summarises the truncated records in (foldedSince, base] as
	// merged extents — the extent-merge fallback a cursor behind base
	// replays in place of precise records. It is dropped (and foldedSince
	// advanced to base) once every watermark and feed cursor has passed
	// base, so its precision loss never outlives the consumers that
	// needed it. A cursor behind foldedSince predates the summary and
	// can only be served the full volume range.
	folded      []Extent
	foldedSince uint64

	consumers []*Consumer
	feeds     []*Feed

	// fallbacks counts catch-up passes (consumer or feed) that could not
	// be served as precise record replay from the cursor.
	fallbacks atomic.Int64

	// notify is closed and replaced on every append; Feed.Wait blocks
	// on it for catch-up-then-live semantics.
	notify chan struct{}
}

// New creates the log for a volume of the given byte size.
func New(size int64, cfg Config) *Log {
	if cfg.MaxRecords <= 0 {
		cfg.MaxRecords = 4096
	}
	if cfg.MaxFolded <= 0 {
		cfg.MaxFolded = 512
	}
	return &Log{size: size, cfg: cfg, notify: make(chan struct{})}
}

// Size returns the volume size the log describes.
func (l *Log) Size() int64 { return l.size }

// Append records one acknowledged write [off, off+n) and returns its
// sequence number. Call it after the write completed on at least one
// replica — a consumer cursor may only pass a record once its replica
// really applied it, so sequence numbers are assigned at completion,
// not at issue.
func (l *Log) Append(off, n int64) uint64 {
	l.mu.Lock()
	l.head++
	seq := l.head
	l.recs = append(l.recs, Record{Seq: seq, Off: off, Len: n})
	for len(l.recs) > l.cfg.MaxRecords {
		r := l.recs[0]
		l.recs = l.recs[1:]
		l.base = r.Seq
		l.folded, _ = addSpan(l.folded, r.Off, r.Off+r.Len)
		l.folded = capSpans(l.folded, l.cfg.MaxFolded)
	}
	ch := l.notify
	l.notify = make(chan struct{})
	l.mu.Unlock()
	close(ch)
	return seq
}

// coverageRangeLocked returns merged extents covering every record with
// from < seq ≤ to, and whether precision was lost — the folded summary
// (a superset of the truncated records asked for) or the full volume
// range stood in for records no longer kept. Caller holds l.mu.
func (l *Log) coverageRangeLocked(from, to uint64) ([]Extent, bool) {
	if to > l.head {
		to = l.head
	}
	if from >= to {
		return nil, false
	}
	if from >= l.base {
		var spans []Extent
		for _, r := range l.recs[from-l.base : to-l.base] {
			spans, _ = addSpan(spans, r.Off, r.Off+r.Len)
		}
		return spans, false
	}
	if from < l.foldedSince {
		// The summary itself no longer reaches back that far: every byte
		// is suspect.
		return []Extent{{0, l.size}}, true
	}
	spans := append([]Extent(nil), l.folded...)
	for _, r := range l.recs {
		if r.Seq > to {
			break
		}
		spans, _ = addSpan(spans, r.Off, r.Off+r.Len)
	}
	return spans, true
}

// maybeDropFoldedLocked discards the folded summary once nothing can
// ever ask for it: every consumer watermark (the floor a trip can roll
// a cursor back to) and every feed cursor has passed base.
func (l *Log) maybeDropFoldedLocked() {
	if len(l.folded) == 0 && l.foldedSince == l.base {
		return
	}
	for _, c := range l.consumers {
		if c.durable < l.base {
			return
		}
	}
	for _, f := range l.feeds {
		if f.cursor < l.base {
			return
		}
	}
	l.folded = nil
	l.foldedSince = l.base
}

// LogStats is a point-in-time snapshot of the log itself.
type LogStats struct {
	// Head is the newest record's sequence number, Base the newest
	// truncated (folded-out) one; Records = Head - Base are kept.
	Head, Base uint64
	// Records and Folded are the kept-record and folded-span counts.
	Records, Folded int
	// Fallbacks counts catch-up passes served by the extent-merge or
	// full-range path instead of precise record replay.
	Fallbacks int64
}

// Stats snapshots the log.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LogStats{
		Head:      l.head,
		Base:      l.base,
		Records:   len(l.recs),
		Folded:    len(l.folded),
		Fallbacks: l.fallbacks.Load(),
	}
}

// Consumer is one replica's pair of positions into the log, plus its
// out-of-band debt. All state is guarded by the log's lock.
type Consumer struct {
	l    *Log
	name string

	// gen counts Resets. Acks, replay commits, and barrier commits carry
	// the gen they were begun under and are discarded on mismatch: an
	// in-flight success that raced a trip must land in the replay debt,
	// not resurrect a rolled-back cursor.
	gen uint64

	// pos: every record ≤ pos is applied to the replica (debt aside).
	// durable: every record ≤ durable is covered by a flush barrier.
	// Invariant: durable ≤ pos. A Reset rolls pos back to durable.
	pos, durable uint64

	// live is true while the replica takes writes inline (Ack advances
	// pos); false from Reset until SetLive(true) after catch-up.
	live bool

	// debt is owed regardless of cursor position: failed mid-writes
	// whose partial content is suspect, or an unknown-content baseline
	// seeded at open. debtGen guards CommitReplay's clear against debt
	// added while the replay ran.
	debt    []Extent
	debtGen uint64

	// pending is debt that a committed replay has applied to the
	// replica's write-behind cache but no flush barrier has covered yet.
	// Unlike replayed records — which the cursor rollback re-covers on a
	// trip — debt has no sequence position below the watermark, so it
	// must be held here until durable and moved back to debt by a Reset
	// in between. pendEpoch guards against a barrier that was begun
	// before the replay landed claiming to have covered it.
	pending   []Extent
	pendEpoch uint64

	// counted tracks the bytes already reported as net replay progress
	// for the current outage; cleared when the replica returns to
	// service, so an outage's stalls and requeues don't recount ranges.
	counted []Extent
}

// Consumer registers a new consumer, caught up and live as of the
// current head.
func (l *Log) Consumer(name string) *Consumer {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := &Consumer{l: l, name: name, pos: l.head, durable: l.head, live: true}
	l.consumers = append(l.consumers, c)
	return c
}

// Gen returns the consumer's current generation; capture it before
// issuing a write whose Ack will be reported later.
func (c *Consumer) Gen() uint64 {
	c.l.mu.Lock()
	defer c.l.mu.Unlock()
	return c.gen
}

// Ack reports that the replica applied the write recorded at seq. gen
// must be the generation captured when the write was issued; a stale
// gen means the replica tripped in between, and the record stays above
// the cursor as replay debt instead.
func (c *Consumer) Ack(seq, gen uint64) {
	c.l.mu.Lock()
	if c.live && gen == c.gen && seq > c.pos {
		c.pos = seq
	}
	c.l.mu.Unlock()
}

// Fail reports a write the replica failed mid-flight: its content over
// [off, off+n) is suspect (possibly partial), so the range is owed as
// debt no matter where the cursor sits.
func (c *Consumer) Fail(off, n int64) {
	c.l.mu.Lock()
	c.addDebtLocked(off, n)
	c.l.mu.Unlock()
}

// SeedDebt marks [off, off+n) owed — the unknown-content baseline for a
// replica that joins with no trusted state (e.g. unreachable at open,
// so the whole volume is seeded).
func (c *Consumer) SeedDebt(off, n int64) {
	c.l.mu.Lock()
	c.addDebtLocked(off, n)
	c.l.mu.Unlock()
}

func (c *Consumer) addDebtLocked(off, n int64) {
	c.debt, _ = addSpan(c.debt, off, off+n)
	c.debt = capSpans(c.debt, c.l.cfg.MaxFolded)
	c.debtGen++
}

// Reset is the trip: the replica leaves service and its cursor rolls
// back to the watermark, because the write-behind cache holding the
// records in (durable, pos] may not survive whatever tripped it. Those
// records — plus anything appended while it is away — become the replay
// debt catch-up serves from the log, and replayed-but-unflushed debt
// rolls back to owed.
func (c *Consumer) Reset() {
	c.l.mu.Lock()
	c.gen++
	c.live = false
	c.pos = c.durable
	for _, p := range c.pending {
		c.debt, _ = addSpan(c.debt, p.Off, p.End)
	}
	if len(c.pending) > 0 {
		c.debt = capSpans(c.debt, c.l.cfg.MaxFolded)
		c.pending = nil
		c.debtGen++
	}
	c.pendEpoch++
	c.l.mu.Unlock()
}

// SetLive flips the consumer's in-service flag. Turning live also
// clears the outage's net-progress accounting.
func (c *Consumer) SetLive(live bool) {
	c.l.mu.Lock()
	if live && !c.live {
		c.counted = nil
	}
	c.live = live
	c.l.mu.Unlock()
}

// Live reports whether the consumer is in service.
func (c *Consumer) Live() bool {
	c.l.mu.Lock()
	defer c.l.mu.Unlock()
	return c.live
}

// Barrier is a flush barrier's snapshot, captured before the flush is
// issued: seq is the cursor as of the snapshot, so writes acked while
// the flush is in flight — which it may not cover — can never be marked
// durable by it. That is the snapshot-first discipline, by construction.
type Barrier struct {
	seq, gen, pend uint64
}

// BarrierBegin snapshots the barrier. Call before issuing the flush.
func (c *Consumer) BarrierBegin() Barrier {
	c.l.mu.Lock()
	defer c.l.mu.Unlock()
	return Barrier{seq: c.pos, gen: c.gen, pend: c.pendEpoch}
}

// BarrierCommit advances the watermark to the barrier's snapshot after
// the flush succeeded. A barrier begun before a Reset is discarded: the
// flush outcome says nothing about a replica that tripped under it.
// Pending replayed debt is settled only by a barrier begun after the
// replay committed (snapshot-first, in both directions).
func (c *Consumer) BarrierCommit(b Barrier) {
	c.l.mu.Lock()
	if b.gen == c.gen {
		if b.seq > c.durable {
			c.durable = b.seq
		}
		if b.pend == c.pendEpoch {
			c.pending = nil
		}
	}
	c.l.maybeDropFoldedLocked()
	c.l.mu.Unlock()
}

// Plan is one catch-up pass: replay Extents onto the replica (sourcing
// from live copies), then CommitReplay. Fallback marks a pass that
// could not be served as precise record replay from the cursor — the
// log was truncated past it — and used the extent-merge summary (or the
// full volume range) instead.
type Plan struct {
	Gen, Target, DebtGen uint64
	Extents              []Extent
	Fallback             bool
}

// CatchUp computes the replica's current replay plan: coverage of the
// records above its cursor, merged with its debt. An empty Extents
// means there was nothing to replay as of the call.
func (c *Consumer) CatchUp() Plan {
	c.l.mu.Lock()
	defer c.l.mu.Unlock()
	spans, fell := c.l.coverageRangeLocked(c.pos, c.l.head)
	if fell {
		c.l.fallbacks.Add(1)
	}
	for _, d := range c.debt {
		spans, _ = addSpan(spans, d.Off, d.End)
	}
	return Plan{Gen: c.gen, Target: c.l.head, DebtGen: c.debtGen, Extents: spans, Fallback: fell}
}

// CommitReplay advances the cursor to the plan's target after every
// extent in it was replayed, and moves the debt the plan absorbed to
// pending — it is applied, but not durable until a barrier covers it.
// A plan begun before a Reset is discarded, and debt added while the
// replay ran (DebtGen mismatch) survives for the next pass.
func (c *Consumer) CommitReplay(p Plan) {
	c.l.mu.Lock()
	if p.Gen == c.gen {
		if p.Target > c.pos {
			c.pos = p.Target
		}
		if p.DebtGen == c.debtGen && len(c.debt) > 0 {
			for _, d := range c.debt {
				c.pending, _ = addSpan(c.pending, d.Off, d.End)
			}
			c.pending = capSpans(c.pending, c.l.cfg.MaxFolded)
			c.debt = nil
			c.pendEpoch++
		}
	}
	c.l.mu.Unlock()
}

// CaughtUp reports whether the replica owes nothing: cursor at head and
// no debt. For the no-lost-write contract, call it under whatever lock
// orders writes against recovery (the cluster layer's per-replica I/O
// lock), so no write that will append a record is still in flight.
func (c *Consumer) CaughtUp() bool {
	c.l.mu.Lock()
	defer c.l.mu.Unlock()
	return c.pos == c.l.head && len(c.debt) == 0
}

// CountReplay records that [off, off+n) was replayed onto the replica
// and returns how many of those bytes were NOT already replayed during
// this outage — the net progress. Replays re-run after a stall or a
// failed pass count zero the second time. (The accounting spans are
// capped like any span list, so a pathologically fragmented outage may
// undercount, never overcount.)
func (c *Consumer) CountReplay(off, n int64) int64 {
	c.l.mu.Lock()
	defer c.l.mu.Unlock()
	var fresh int64
	c.counted, fresh = addSpan(c.counted, off, off+n)
	c.counted = capSpans(c.counted, c.l.cfg.MaxFolded)
	return fresh
}

// ConsumerStats is a replica's derived view of the log: the dirty and
// unflushed extent logs the cluster layer used to maintain by hand are
// projections of (pos, durable, head, debt).
type ConsumerStats struct {
	Name string
	// Pos is the cursor, Durable the flush watermark.
	Pos, Durable uint64
	Live         bool
	// Dirty is what a catch-up pass would replay right now: debt plus
	// coverage of the records above the cursor. A live replica reports
	// only debt (its cursor lag is in-flight writes, not dirt).
	DirtyRanges int
	DirtyBytes  int64
	// Unflushed is the coverage of records acked since the watermark —
	// what a crash now would cost the replica.
	UnflushedRanges int
	UnflushedBytes  int64
}

// Stats snapshots the consumer.
func (c *Consumer) Stats() ConsumerStats {
	c.l.mu.Lock()
	defer c.l.mu.Unlock()
	st := ConsumerStats{Name: c.name, Pos: c.pos, Durable: c.durable, Live: c.live}
	dirty := append([]Extent(nil), c.debt...)
	if !c.live {
		spans, _ := c.l.coverageRangeLocked(c.pos, c.l.head)
		for _, s := range spans {
			dirty, _ = addSpan(dirty, s.Off, s.End)
		}
	}
	st.DirtyRanges, st.DirtyBytes = len(dirty), spanBytes(dirty)
	unf, _ := c.l.coverageRangeLocked(c.durable, c.pos)
	st.UnflushedRanges, st.UnflushedBytes = len(unf), spanBytes(unf)
	return st
}
