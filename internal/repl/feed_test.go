package repl

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestFeedCatchUpThenLiveTail(t *testing.T) {
	l := New(1<<20, Config{})
	l.Append(0, 4096)
	l.Append(8192, 4096)
	f := l.Subscribe("clone")
	b := f.Poll(0)
	if b.FellBack || len(b.Records) != 2 || b.Next != 2 {
		t.Fatalf("catch-up batch=%+v", b)
	}
	f.Commit(b.Next)
	// Caught up: empty batch, Wait blocks until the next append.
	if b := f.Poll(0); len(b.Records) != 0 || b.FellBack {
		t.Fatalf("caught-up poll=%+v", b)
	}
	done := make(chan bool, 1)
	go func() { done <- f.Wait(nil) }()
	select {
	case <-done:
		t.Fatal("Wait returned with no new records")
	case <-time.After(20 * time.Millisecond):
	}
	l.Append(16384, 4096)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Wait returned false on data")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait never woke on append")
	}
	b = f.Poll(0)
	if len(b.Records) != 1 || b.Records[0].Off != 16384 {
		t.Fatalf("live tail batch=%+v", b)
	}
}

func TestFeedPollLimitAndResume(t *testing.T) {
	l := New(1<<20, Config{})
	for i := 0; i < 5; i++ {
		l.Append(int64(i)*4096, 4096)
	}
	f := l.Subscribe("clone")
	b := f.Poll(2)
	if len(b.Records) != 2 || b.Next != 2 {
		t.Fatalf("limited batch=%+v", b)
	}
	// Uncommitted progress is lost on resume — Poll repeats the batch.
	if again := f.Poll(2); again.Next != 2 || again.Records[0].Seq != 1 {
		t.Fatalf("uncommitted re-poll=%+v", again)
	}
	f.Commit(b.Next)
	if rest := f.Poll(0); len(rest.Records) != 3 || rest.Next != 5 {
		t.Fatalf("resumed batch=%+v", rest)
	}
}

func TestFeedStopInterruptsWait(t *testing.T) {
	l := New(1<<20, Config{})
	f := l.Subscribe("clone")
	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() { done <- f.Wait(stop) }()
	close(stop)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Wait returned true on stop")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait ignored stop")
	}
}

func TestFeedTruncatedCursorFallsBackThenStreams(t *testing.T) {
	l := New(1<<20, Config{MaxRecords: 4, MaxFolded: 8})
	f := l.Subscribe("slow")
	for i := 0; i < 8; i++ {
		l.Append(int64(i)*4096, 4096)
	}
	// Cursor 0 is behind base: the batch is extent coverage of what was
	// truncated away, then precise records resume.
	b := f.Poll(0)
	if !b.FellBack || len(b.Records) != 0 {
		t.Fatalf("truncated poll=%+v, want fallback extents", b)
	}
	if spanBytes(b.Fallback) < 4*4096 {
		t.Fatalf("fallback covers %d bytes, want at least the 4 truncated records", spanBytes(b.Fallback))
	}
	f.Commit(b.Next)
	rest := f.Poll(0)
	if rest.FellBack || len(rest.Records) != 4 {
		t.Fatalf("post-fallback poll=%+v, want the 4 kept records", rest)
	}
	f.Commit(rest.Next)
	if l.Stats().Fallbacks <= 0 {
		t.Fatal("feed fallback not counted")
	}
}

// TestFeedLiveCloneConverges is the subscriber-side proof at the log
// level: a clone applying feed batches while a writer keeps mutating
// the source converges byte-identically once the writer stops —
// including across a truncation-forced fallback.
func TestFeedLiveCloneConverges(t *testing.T) {
	const size = 256 << 10
	l := New(size, Config{MaxRecords: 32, MaxFolded: 8})
	var mu sync.Mutex // guards src
	src := make([]byte, size)
	clone := make([]byte, size)

	f := l.Subscribe("clone")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the clone consumer: catch up, then follow
		defer wg.Done()
		for {
			if !f.Wait(stop) {
				return
			}
			b := f.Poll(16)
			mu.Lock()
			for _, e := range b.Fallback {
				copy(clone[e.Off:e.End], src[e.Off:e.End])
			}
			for _, r := range b.Records {
				copy(clone[r.Off:r.Off+r.Len], src[r.Off:r.Off+r.Len])
			}
			mu.Unlock()
			f.Commit(b.Next)
		}
	}()

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		off := rng.Int63n(size - 4096)
		off -= off % 512
		n := int64(512 + rng.Intn(8)*512)
		mu.Lock()
		for j := off; j < off+n; j++ {
			src[j] = byte(i) ^ byte(j)
		}
		mu.Unlock()
		l.Append(off, n)
	}

	// Writer done: drain the feed to the head, then stop the consumer.
	deadline := time.Now().Add(5 * time.Second)
	for f.Cursor() < l.Stats().Head {
		if time.Now().After(deadline) {
			t.Fatalf("clone cursor stuck at %d of %d", f.Cursor(), l.Stats().Head)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if !bytes.Equal(src, clone) {
		t.Fatal("clone diverged from source after the feed drained")
	}
}
