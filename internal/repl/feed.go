package repl

// Feed is a cursor-resumable change subscription over the log, with
// catch-up-then-live semantics: a subscriber behind the kept window
// first receives the coverage it missed as extents (copy those ranges
// from the source), then precise records, then follows the live tail
// via Wait. The cursor only moves on Commit, so a consumer that applies
// a batch durably before committing can crash and resume with no lost
// updates — re-application of a batch is idempotent (extents and
// records describe ranges to copy, not deltas).
//
// A Feed is owned by one consuming goroutine: Poll, Commit, and Close
// are not meant to race each other (Wait may be interrupted via its
// stop channel).
type Feed struct {
	l      *Log
	name   string
	cursor uint64
	closed bool
}

// SubscribeAt opens a feed resuming from a committed cursor; 0 means
// from the beginning (the first batch copies the whole coverage the
// subscriber has never seen — for a fresh clone, the full volume).
func (l *Log) SubscribeAt(name string, from uint64) *Feed {
	l.mu.Lock()
	defer l.mu.Unlock()
	f := &Feed{l: l, name: name, cursor: from}
	if f.cursor > l.head {
		f.cursor = l.head
	}
	l.feeds = append(l.feeds, f)
	return f
}

// Subscribe opens a feed from the beginning.
func (l *Log) Subscribe(name string) *Feed { return l.SubscribeAt(name, 0) }

// Batch is one Poll's worth of catch-up work. Exactly one of Records /
// Fallback is populated (both empty when the feed is caught up). Apply
// it, make it durable, then Commit(Next).
type Batch struct {
	// Records are precise writes to re-apply, in sequence order.
	Records []Record
	// Fallback is extent coverage standing in for records the log
	// truncated before this subscriber saw them: copy these ranges in
	// full from the source. FellBack marks the batch.
	Fallback []Extent
	FellBack bool
	// Next is the cursor this batch advances to; pass it to Commit.
	Next uint64
}

// Poll returns the next batch, non-blocking; limit bounds the record
// count per batch (≤ 0 means no bound). An empty batch (Next equal to
// the committed cursor) means the feed is caught up as of the call.
func (f *Feed) Poll(limit int) Batch {
	f.l.mu.Lock()
	defer f.l.mu.Unlock()
	if f.cursor >= f.l.head {
		return Batch{Next: f.cursor}
	}
	if f.cursor < f.l.base {
		spans, _ := f.l.coverageRangeLocked(f.cursor, f.l.base)
		f.l.fallbacks.Add(1)
		return Batch{Fallback: spans, FellBack: true, Next: f.l.base}
	}
	lo := f.cursor - f.l.base
	hi := uint64(len(f.l.recs))
	if limit > 0 && hi-lo > uint64(limit) {
		hi = lo + uint64(limit)
	}
	return Batch{
		Records: append([]Record(nil), f.l.recs[lo:hi]...),
		Next:    f.l.base + hi,
	}
}

// Commit durably acknowledges progress through Next: the feed resumes
// from here, and the log may truncate (and drop fallback summaries)
// behind it.
func (f *Feed) Commit(next uint64) {
	f.l.mu.Lock()
	if next > f.cursor {
		f.cursor = next
	}
	if f.cursor > f.l.head {
		f.cursor = f.l.head
	}
	f.l.maybeDropFoldedLocked()
	f.l.mu.Unlock()
}

// Cursor returns the committed cursor.
func (f *Feed) Cursor() uint64 {
	f.l.mu.Lock()
	defer f.l.mu.Unlock()
	return f.cursor
}

// Wait blocks until the log holds records past the committed cursor
// (returns true) or stop is closed (returns false). A nil stop waits
// indefinitely for data.
func (f *Feed) Wait(stop <-chan struct{}) bool {
	for {
		f.l.mu.Lock()
		if f.closed {
			f.l.mu.Unlock()
			return false
		}
		if f.cursor < f.l.head {
			f.l.mu.Unlock()
			return true
		}
		ch := f.l.notify
		f.l.mu.Unlock()
		select {
		case <-ch:
		case <-stop:
			return false
		}
	}
}

// Close unregisters the feed so its cursor no longer pins the log's
// fallback summaries.
func (f *Feed) Close() {
	f.l.mu.Lock()
	f.closed = true
	feeds := f.l.feeds[:0]
	for _, o := range f.l.feeds {
		if o != f {
			feeds = append(feeds, o)
		}
	}
	f.l.feeds = feeds
	f.l.maybeDropFoldedLocked()
	f.l.mu.Unlock()
}

// FeedCursors snapshots every open feed's committed cursor by name.
func (l *Log) FeedCursors() map[string]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]uint64, len(l.feeds))
	for _, f := range l.feeds {
		out[f.name] = f.cursor
	}
	return out
}
