package repl

import (
	"math/rand"
	"testing"
)

// TestPropCapMergeAlwaysCoversInserts is the cap-merge safety property:
// however the bounded span list merges under pressure, every range ever
// inserted stays fully covered — precision loss only, never data loss —
// and the list invariants (sorted, positive-length, gap-separated,
// within cap) hold after every operation.
func TestPropCapMergeAlwaysCoversInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		var spans, exact []Extent
		var inserted []Extent
		var netTotal int64
		for i := 0; i < 200; i++ {
			off := rng.Int63n(1 << 20)
			ln := 1 + rng.Int63n(8<<10)
			var fresh int64
			spans, fresh = addSpan(spans, off, off+ln)
			netTotal += fresh
			spans = capSpans(spans, 16)
			exact, _ = addSpan(exact, off, off+ln) // uncapped reference
			inserted = append(inserted, Extent{off, off + ln})

			if len(spans) > 16 {
				t.Fatalf("iter %d: cap violated: %d spans", iter, len(spans))
			}
			for k, s := range spans {
				if s.End <= s.Off {
					t.Fatalf("iter %d: degenerate span %v", iter, s)
				}
				if k > 0 && spans[k-1].End >= s.Off {
					t.Fatalf("iter %d: spans overlap or touch unmerged: %v", iter, spans)
				}
			}
		}
		// Every inserted range is contained in exactly one span (merges
		// only coalesce, so containment can never fragment).
		for _, e := range inserted {
			covered := false
			for _, s := range spans {
				if s.Off <= e.Off && e.End <= s.End {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("iter %d: inserted %v lost from %v", iter, e, spans)
			}
		}
		// Cap merges overcover; they must never undercover. And the net
		// byte accounting is conservative against the capped list: at
		// most the exact union, never more.
		if spanBytes(spans) < spanBytes(exact) {
			t.Fatalf("iter %d: capped list covers %d < exact %d", iter, spanBytes(spans), spanBytes(exact))
		}
		if netTotal > spanBytes(exact) {
			t.Fatalf("iter %d: net total %d overcounts exact union %d", iter, netTotal, spanBytes(exact))
		}
	}
}

// TestPropConsumerProtocolNeverLosesWrites drives the full cursor
// protocol against a reference model of one replica behind a
// write-behind cache: acked writes sit in the cache, a flush moves
// cache to store, and a trip discards the cache (the pessimistic crash:
// everything unflushed is lost) — plus failed writes that leave garbage
// and trips that strike between replay and flush. After every recovery
// the replica's durable store must equal the volume: if the log's plan
// ever fails to cover a lost or suspect range, the garbage survives and
// the test fails.
func TestPropConsumerProtocolNeverLosesWrites(t *testing.T) {
	const (
		blocks = 64
		bs     = int64(512)
		size   = int64(blocks) * bs
	)
	for iter := 0; iter < 40; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		l := New(size, Config{MaxRecords: 16, MaxFolded: 8})
		c := l.Consumer("replica")
		var volume, cache, store [blocks]int64
		gen := int64(0)
		live := true

		trip := func() {
			cache = store // write-behind lost
			c.Reset()
			live = false
		}
		flush := func() { // a successful barrier destages the whole cache
			store = cache
		}
		applyExtent := func(e Extent) {
			if e.Off < 0 || e.End > size || e.Off%bs != 0 || e.End%bs != 0 {
				t.Fatalf("iter %d: plan extent %v outside/unaligned", iter, e)
			}
			for b := e.Off / bs; b*bs < e.End; b++ {
				cache[b] = volume[b] // replay sources the live copy
			}
		}
		recoverReplica := func() {
			trips := 0
			for {
				plan := c.CatchUp()
				if len(plan.Extents) > 0 {
					for _, e := range plan.Extents {
						applyExtent(e)
					}
					c.CommitReplay(plan)
					// The crash window: replayed but not yet flushed.
					if trips < 2 && rng.Intn(5) == 0 {
						trips++
						trip()
					}
					continue
				}
				bar := c.BarrierBegin()
				flush()
				c.BarrierCommit(bar)
				if c.CaughtUp() {
					c.SetLive(true)
					live = true
					return
				}
			}
		}

		for op := 0; op < 300; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // write one block
				blk := rng.Intn(blocks)
				gen++
				volume[blk] = gen
				off := int64(blk) * bs
				switch {
				case !live: // skipped: the record alone is the debt
					l.Append(off, bs)
				case rng.Intn(10) == 0: // failed mid-write: partial garbage, suspect range
					cache[blk] = -gen
					c.Fail(off, bs)
					l.Append(off, bs)
					// Before the trip lands, another write can ack and a
					// barrier can commit the watermark PAST the failed
					// record — the debt must survive that, or the garbage
					// below the watermark is never replayed.
					if rng.Intn(2) == 0 {
						blk2 := rng.Intn(blocks)
						gen++
						volume[blk2] = gen
						g := c.Gen()
						seq := l.Append(int64(blk2)*bs, bs)
						cache[blk2] = gen
						c.Ack(seq, g)
						bar := c.BarrierBegin()
						flush()
						c.BarrierCommit(bar)
					}
					trip()
				default:
					g := c.Gen()
					seq := l.Append(off, bs)
					cache[blk] = gen
					c.Ack(seq, g)
				}
			case 5, 6: // flush barrier, snapshot-first with racy acks
				if !live {
					continue
				}
				bar := c.BarrierBegin()
				for k := 0; k < rng.Intn(3); k++ {
					blk := rng.Intn(blocks)
					gen++
					volume[blk] = gen
					g := c.Gen()
					seq := l.Append(int64(blk)*bs, bs)
					cache[blk] = gen
					c.Ack(seq, g)
				}
				flush() // the real flush covers everything in cache — a superset of the snapshot
				c.BarrierCommit(bar)
			case 7: // spontaneous trip
				if live {
					trip()
				}
			case 8, 9: // recovery
				if !live {
					recoverReplica()
					if store != volume {
						t.Fatalf("iter %d op %d: store diverged after recovery\nstore=%v\nvolume=%v", iter, op, store, volume)
					}
				}
			}
		}
		if !live {
			recoverReplica()
		}
		bar := c.BarrierBegin()
		flush()
		c.BarrierCommit(bar)
		if store != volume {
			t.Fatalf("iter %d: final store diverged\nstore=%v\nvolume=%v", iter, store, volume)
		}
	}
}
