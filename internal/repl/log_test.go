package repl

import (
	"testing"
)

func TestAddSpanMergeAndNetBytes(t *testing.T) {
	var spans []Extent
	var n int64
	spans, n = addSpan(spans, 0, 100)
	if n != 100 {
		t.Fatalf("first insert netted %d, want 100", n)
	}
	spans, n = addSpan(spans, 200, 300)
	if n != 100 || len(spans) != 2 {
		t.Fatalf("disjoint insert: net=%d spans=%v", n, spans)
	}
	// Bridges [0,100) and overlaps into [50,150): only [100,150) is new.
	spans, n = addSpan(spans, 50, 150)
	if n != 50 || len(spans) != 2 || spans[0] != (Extent{0, 150}) {
		t.Fatalf("overlap insert: net=%d spans=%v", n, spans)
	}
	// [0,150)+[150,200)+[200,300) → one run; 50 new bytes.
	spans, n = addSpan(spans, 150, 200)
	if n != 50 || len(spans) != 1 || spans[0] != (Extent{0, 300}) {
		t.Fatalf("bridge insert: net=%d spans=%v", n, spans)
	}
	// Fully covered insert nets zero.
	spans, n = addSpan(spans, 10, 20)
	if n != 0 || len(spans) != 1 {
		t.Fatalf("covered insert: net=%d spans=%v", n, spans)
	}
	// Degenerate ranges are ignored.
	if spans, n = addSpan(spans, 10, 10); n != 0 || len(spans) != 1 {
		t.Fatal("zero-length insert changed the list")
	}
	if spans, n = addSpan(spans, 10, 5); n != 0 || len(spans) != 1 {
		t.Fatal("negative-length insert changed the list")
	}
	if spanBytes(spans) != 300 {
		t.Fatalf("spanBytes=%d, want 300", spanBytes(spans))
	}
}

func TestCapSpansMergesSmallestGap(t *testing.T) {
	// Eight far-apart spans plus one close pair.
	var spans []Extent
	for i := 0; i < 8; i++ {
		spans, _ = addSpan(spans, int64(i)*1000, int64(i)*1000+10)
	}
	spans, _ = addSpan(spans, 7100, 7110) // gap of 90 to span [7000,7010)
	spans = capSpans(spans, 8)
	if len(spans) != 8 {
		t.Fatalf("cap not enforced: %v", spans)
	}
	// The close pair merged, covering its 90-byte gap.
	found := false
	for _, s := range spans {
		if s == (Extent{7000, 7110}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("smallest-gap pair not merged: %v", spans)
	}
}

func TestAppendTruncatesIntoFoldedSummary(t *testing.T) {
	l := New(1<<20, Config{MaxRecords: 4, MaxFolded: 2})
	for i := 0; i < 6; i++ {
		if seq := l.Append(int64(i)*4096, 4096); seq != uint64(i+1) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	st := l.Stats()
	if st.Head != 6 || st.Base != 2 || st.Records != 4 {
		t.Fatalf("stats after truncation: %+v", st)
	}
	// Records 1 and 2 folded: [0,4096) and [4096,8192) merge to one span.
	if st.Folded != 1 {
		t.Fatalf("folded spans=%d, want 1", st.Folded)
	}
}

func TestConsumerAckAdvancesCursorOutOfOrder(t *testing.T) {
	l := New(1<<20, Config{})
	c := l.Consumer("r0")
	g := c.Gen()
	s1 := l.Append(0, 4096)
	s2 := l.Append(8192, 4096)
	c.Ack(s2, g)
	c.Ack(s1, g) // late completion of the earlier write must not regress
	if st := c.Stats(); st.Pos != 2 {
		t.Fatalf("pos=%d after out-of-order acks, want 2", st.Pos)
	}
	if !c.CaughtUp() {
		t.Fatal("acked consumer not caught up")
	}
	_ = s2
}

func TestStaleGenAckDiscarded(t *testing.T) {
	l := New(1<<20, Config{})
	c := l.Consumer("r0")
	g := c.Gen()
	seq := l.Append(0, 4096)
	c.Reset() // trip raced the in-flight write
	c.Ack(seq, g)
	if st := c.Stats(); st.Pos != 0 {
		t.Fatalf("stale-gen ack advanced the cursor to %d", st.Pos)
	}
	// The record stays above the cursor: it is the replay debt.
	plan := c.CatchUp()
	if len(plan.Extents) != 1 || plan.Extents[0] != (Extent{0, 4096}) {
		t.Fatalf("catch-up plan=%+v, want the raced write", plan)
	}
}

// TestBarrierSnapshotFirst pins the flush discipline the old unflushed
// log violated in the resync path: a write acknowledged after the
// barrier snapshot was taken may not be covered by that flush, so the
// commit must not mark it durable — it stays above the watermark for
// the next barrier, and a trip replays it.
func TestBarrierSnapshotFirst(t *testing.T) {
	l := New(1<<20, Config{})
	c := l.Consumer("r0")
	g := c.Gen()
	s1 := l.Append(0, 4096)
	c.Ack(s1, g)
	bar := c.BarrierBegin() // flush issued here...
	s2 := l.Append(8192, 4096)
	c.Ack(s2, g) // ...write acked while the flush is in flight...
	c.BarrierCommit(bar)
	st := c.Stats()
	if st.Durable != 1 {
		t.Fatalf("watermark=%d after snapshot-first barrier, want 1 (the concurrent ack must not ride it)", st.Durable)
	}
	if st.UnflushedBytes != 4096 {
		t.Fatalf("unflushed=%d bytes, want the concurrent write's 4096", st.UnflushedBytes)
	}
	// A trip now must replay exactly the uncovered write.
	c.Reset()
	plan := c.CatchUp()
	if len(plan.Extents) != 1 || plan.Extents[0] != (Extent{8192, 8192 + 4096}) {
		t.Fatalf("post-trip plan=%+v, want only the unflushed write", plan)
	}
}

func TestStaleBarrierDiscardedAfterReset(t *testing.T) {
	l := New(1<<20, Config{})
	c := l.Consumer("r0")
	g := c.Gen()
	s1 := l.Append(0, 4096)
	c.Ack(s1, g)
	bar := c.BarrierBegin()
	c.Reset() // replica tripped under the in-flight flush
	c.BarrierCommit(bar)
	if st := c.Stats(); st.Durable != 0 {
		t.Fatalf("stale barrier advanced the watermark to %d", st.Durable)
	}
}

func TestResetRollsCursorToWatermark(t *testing.T) {
	l := New(1<<20, Config{})
	c := l.Consumer("r0")
	g := c.Gen()
	s1 := l.Append(0, 4096)
	c.Ack(s1, g)
	bar := c.BarrierBegin()
	c.BarrierCommit(bar) // record 1 durable
	s2 := l.Append(8192, 4096)
	c.Ack(s2, g)
	c.Reset()
	st := c.Stats()
	if st.Pos != 1 || st.Durable != 1 {
		t.Fatalf("after reset pos=%d durable=%d, want 1/1", st.Pos, st.Durable)
	}
	if st.DirtyBytes != 4096 || st.DirtyRanges != 1 {
		t.Fatalf("dirty view=%d bytes/%d ranges, want exactly the unflushed write", st.DirtyBytes, st.DirtyRanges)
	}
}

func TestCatchUpCommitAndDebtGenGuard(t *testing.T) {
	l := New(1<<20, Config{})
	c := l.Consumer("r0")
	c.Reset()
	l.Append(0, 4096)
	l.Append(8192, 4096)
	plan := c.CatchUp()
	if plan.Fallback {
		t.Fatal("in-window catch-up took the fallback path")
	}
	if spanBytes(plan.Extents) != 8192 {
		t.Fatalf("plan covers %d bytes, want 8192", spanBytes(plan.Extents))
	}
	// Debt lands while the replay runs: the commit must keep it.
	c.Fail(65536, 4096)
	c.CommitReplay(plan)
	if c.CaughtUp() {
		t.Fatal("debt added during replay was silently dropped")
	}
	next := c.CatchUp()
	if spanBytes(next.Extents) != 4096 || next.Extents[0] != (Extent{65536, 65536 + 4096}) {
		t.Fatalf("second pass=%+v, want just the raced debt", next)
	}
	c.CommitReplay(next)
	if !c.CaughtUp() {
		t.Fatal("consumer not caught up after replaying all debt")
	}
}

func TestStalePlanDiscardedAfterReset(t *testing.T) {
	l := New(1<<20, Config{})
	c := l.Consumer("r0")
	c.Reset()
	l.Append(0, 4096)
	plan := c.CatchUp()
	c.Reset() // tripped again mid-replay
	c.CommitReplay(plan)
	if c.CaughtUp() {
		t.Fatal("stale plan committed across a reset")
	}
}

func TestCatchUpFallsBackWhenTruncatedPastCursor(t *testing.T) {
	l := New(1<<20, Config{MaxRecords: 4, MaxFolded: 8})
	c := l.Consumer("r0")
	c.Reset() // cursor pinned at 0
	for i := 0; i < 8; i++ {
		l.Append(int64(i)*4096, 4096)
	}
	plan := c.CatchUp()
	if !plan.Fallback {
		t.Fatal("catch-up from a truncated cursor did not fall back")
	}
	// Coverage must still be complete: all 8 writes.
	if spanBytes(plan.Extents) != 8*4096 {
		t.Fatalf("fallback plan covers %d bytes, want %d", spanBytes(plan.Extents), 8*4096)
	}
	if l.Stats().Fallbacks == 0 {
		t.Fatal("fallback not counted")
	}
	c.CommitReplay(plan)
	bar := c.BarrierBegin()
	c.BarrierCommit(bar)
	if !c.CaughtUp() {
		t.Fatal("not caught up after fallback replay")
	}
}

func TestFoldedSummaryDroppedOncePassedThenFullRange(t *testing.T) {
	l := New(1<<20, Config{MaxRecords: 4, MaxFolded: 8})
	c := l.Consumer("r0")
	for i := 0; i < 8; i++ {
		seq := l.Append(int64(i)*4096, 4096)
		c.Ack(seq, 0)
	}
	bar := c.BarrierBegin()
	c.BarrierCommit(bar) // watermark past base: summary droppable
	st := l.Stats()
	if st.Folded != 0 {
		t.Fatalf("folded summary kept after every cursor passed it: %+v", st)
	}
	// A subscriber resuming from before the dropped summary can only be
	// served the full volume range.
	f := l.SubscribeAt("late", 1)
	b := f.Poll(0)
	if !b.FellBack || len(b.Fallback) != 1 || b.Fallback[0] != (Extent{0, 1 << 20}) {
		t.Fatalf("pre-summary cursor got %+v, want full-range fallback", b)
	}
}

func TestCountReplayNetOfReruns(t *testing.T) {
	l := New(1<<20, Config{})
	c := l.Consumer("r0")
	if n := c.CountReplay(0, 8192); n != 8192 {
		t.Fatalf("first count=%d", n)
	}
	if n := c.CountReplay(0, 8192); n != 0 {
		t.Fatalf("re-run counted %d, want 0", n)
	}
	if n := c.CountReplay(4096, 8192); n != 4096 {
		t.Fatalf("overlap counted %d, want 4096", n)
	}
	// Back in service: the next outage starts fresh accounting.
	c.Reset() // (an outage...)
	c.SetLive(true)
	c.Reset()
	if n := c.CountReplay(0, 4096); n != 4096 {
		t.Fatalf("new outage counted %d, want 4096", n)
	}
}

func TestSeedDebtBaseline(t *testing.T) {
	l := New(1<<20, Config{})
	c := l.Consumer("r0")
	c.Reset()
	c.SeedDebt(0, l.Size())
	st := c.Stats()
	if st.DirtyBytes != 1<<20 || st.DirtyRanges != 1 {
		t.Fatalf("seeded baseline view=%+v", st)
	}
	plan := c.CatchUp()
	if spanBytes(plan.Extents) != 1<<20 {
		t.Fatalf("baseline plan covers %d bytes", spanBytes(plan.Extents))
	}
}
