// Package hw models host hardware shared by every client implementation:
// an SMP CPU pool with per-category busy-time accounting and a
// spinlock-style lock whose cost shows up in the "Lock" category.
//
// These two models produce the CPU-utilization breakdowns of Figures 11
// and 14 in the paper and the lock-synchronization effects of Section 3.3.
package hw

import (
	"time"

	"github.com/v3storage/v3/internal/sim"
)

// Category labels a consumer of CPU time. The set matches the paper's
// CPU-utilization breakdown (Figures 11/14): SQL Server, OS kernel
// processing, locking, the DSA layer, the VI library/drivers, and other.
type Category int

// CPU time categories, in the paper's breakdown order.
const (
	CatSQL      Category = iota // database transaction processing
	CatOSKernel                 // syscalls, I/O manager, interrupts, context switches
	CatLock                     // lock synchronization pairs and spinning
	CatDSA                      // DSA layer processing
	CatVI                       // VI library and driver processing
	CatOther                    // socket library and other system libraries
	numCategories
)

// String returns the paper's label for the category.
func (c Category) String() string {
	switch c {
	case CatSQL:
		return "SQL"
	case CatOSKernel:
		return "OSKernel"
	case CatLock:
		return "Lock"
	case CatDSA:
		return "DSA"
	case CatVI:
		return "VI"
	case CatOther:
		return "Other"
	}
	return "?"
}

// Categories lists all accounting categories in breakdown order.
func Categories() []Category {
	return []Category{CatSQL, CatOSKernel, CatLock, CatDSA, CatVI, CatOther}
}

// CPUPool models an SMP with a fixed number of identical processors.
// Simulated threads consume processor time via Use; at most N usages are
// in service at once and excess demand queues FIFO, which is how CPU
// saturation translates into throughput loss in the OLTP experiments.
type CPUPool struct {
	e     *sim.Engine
	sem   *sim.Semaphore
	n     int
	busy  [numCategories]time.Duration
	since sim.Time // accounting epoch
}

// NewCPUPool returns a pool of n processors on engine e.
func NewCPUPool(e *sim.Engine, n int) *CPUPool {
	if n <= 0 {
		panic("hw: CPU pool needs at least one processor")
	}
	return &CPUPool{e: e, sem: sim.NewSemaphore(n), n: n, since: e.Now()}
}

// N returns the number of processors.
func (c *CPUPool) N() int { return c.n }

// Use consumes d of processor time in category cat, queueing for a free
// processor first. It blocks the calling process for the queueing delay
// plus d.
func (c *CPUPool) Use(p *sim.Proc, cat Category, d time.Duration) {
	if d <= 0 {
		return
	}
	c.sem.Acquire(p)
	p.Sleep(d)
	c.busy[cat] += d
	c.sem.Release(c.e)
}

// TryUse consumes d of processor time only if a processor is free right
// now, reporting whether it ran. Used for opportunistic work such as
// polling that should never queue.
func (c *CPUPool) TryUse(p *sim.Proc, cat Category, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	if !c.sem.TryAcquire() {
		return false
	}
	p.Sleep(d)
	c.busy[cat] += d
	c.sem.Release(c.e)
	return true
}

// ResetAccounting zeroes the per-category busy counters and restarts the
// accounting window at the current time. Use after warmup.
func (c *CPUPool) ResetAccounting() {
	c.busy = [numCategories]time.Duration{}
	c.since = c.e.Now()
}

// Busy returns accumulated busy time in cat since the accounting epoch.
func (c *CPUPool) Busy(cat Category) time.Duration { return c.busy[cat] }

// Utilization returns the fraction of total processor capacity spent in
// cat since the accounting epoch, in [0,1].
func (c *CPUPool) Utilization(cat Category) float64 {
	elapsed := c.e.Now() - c.since
	if elapsed <= 0 {
		return 0
	}
	return float64(c.busy[cat]) / (float64(elapsed) * float64(c.n))
}

// TotalUtilization returns the fraction of capacity busy in any category.
func (c *CPUPool) TotalUtilization() float64 {
	var u float64
	for _, cat := range Categories() {
		u += c.Utilization(cat)
	}
	return u
}

// Breakdown returns the per-category utilization fractions plus idle,
// summing to ~1.0.
func (c *CPUPool) Breakdown() map[string]float64 {
	m := make(map[string]float64, int(numCategories)+1)
	var tot float64
	for _, cat := range Categories() {
		u := c.Utilization(cat)
		m[cat.String()] = u
		tot += u
	}
	idle := 1 - tot
	if idle < 0 {
		idle = 0
	}
	m["Idle"] = idle
	return m
}
