package hw

import (
	"time"

	"github.com/v3storage/v3/internal/sim"
)

// Default lock-model constants. A lock/unlock pair on the paper's Xeon
// SMPs costs a fraction of a microsecond uncontended; contended acquires
// spin, burning processor time that the paper's profiles attribute to
// lock synchronization (Section 3.3).
const (
	DefaultPairCost    = 400 * time.Nanosecond // uncontended lock+unlock pair
	DefaultSpinQuantum = 800 * time.Nanosecond // busy-wait slice while contended
)

// SyncLock models one kernel- or library-level lock in the I/O path.
// Acquire/Release consume processor time in the Lock category; contended
// acquires spin (consuming capacity) until the holder releases, which is
// how lock pressure grows with processor count in the large configuration.
type SyncLock struct {
	e        *sim.Engine
	cpus     *CPUPool
	mu       *sim.Mutex
	pairCost time.Duration
	spin     time.Duration
	acquires sim.Counter
	spins    sim.Counter
}

// NewSyncLock returns a lock accounted against cpus with default costs.
func NewSyncLock(e *sim.Engine, cpus *CPUPool) *SyncLock {
	return &SyncLock{
		e: e, cpus: cpus, mu: sim.NewMutex(),
		pairCost: DefaultPairCost, spin: DefaultSpinQuantum,
	}
}

// SetCosts overrides the uncontended pair cost and the spin quantum.
func (l *SyncLock) SetCosts(pair, spin time.Duration) {
	l.pairCost = pair
	l.spin = spin
}

// maxSpins bounds busy-waiting per acquire: a contended acquirer burns a
// few spin quanta (visible as Lock CPU) and then blocks, like an
// adaptive spin-then-block lock. The bound keeps heavy contention
// expensive without letting spin feedback collapse the whole system.
const maxSpins = 3

// Acquire takes the lock. The acquire half of the pair cost is charged
// immediately; while contended the caller burns bounded spin quanta in
// the Lock category, then blocks.
func (l *SyncLock) Acquire(p *sim.Proc) {
	l.acquires.Inc()
	l.cpus.Use(p, CatLock, l.pairCost/2)
	for i := 0; i < maxSpins && l.mu.Locked(); i++ {
		l.spins.Inc()
		l.cpus.Use(p, CatLock, l.spin)
	}
	l.mu.Lock(p)
}

// Release drops the lock and charges the release half of the pair cost.
func (l *SyncLock) Release(p *sim.Proc) {
	l.mu.Unlock(l.e)
	l.cpus.Use(p, CatLock, l.pairCost/2)
}

// Do runs fn with the lock held.
func (l *SyncLock) Do(p *sim.Proc, fn func()) {
	l.Acquire(p)
	fn()
	l.Release(p)
}

// Acquires returns the number of Acquire calls.
func (l *SyncLock) Acquires() int64 { return l.acquires.Value() }

// Spins returns the number of contended spin quanta burned.
func (l *SyncLock) Spins() int64 { return l.spins.Value() }

// PairSet is a bundle of locks representing the synchronization pairs a
// single I/O crosses (Section 3.3: ~8-10 pairs for kDSA, 5 for cDSA).
// CrossPairs charges n lock pairs against a representative subset of the
// set, rotating so that multiple connections spread contention the way
// per-VI locks do in the real system.
type PairSet struct {
	cpus  *CPUPool
	locks []*SyncLock
	next  int
}

// NewPairSet creates n independent locks.
func NewPairSet(e *sim.Engine, cpus *CPUPool, n int) *PairSet {
	ps := &PairSet{cpus: cpus, locks: make([]*SyncLock, n)}
	for i := range ps.locks {
		ps.locks[i] = NewSyncLock(e, cpus)
	}
	return ps
}

// CrossPairs acquires and releases pairs lock pairs, starting from a
// rotating index so different I/Os hit different locks first.
func (ps *PairSet) CrossPairs(p *sim.Proc, pairs int) {
	if len(ps.locks) == 0 || pairs <= 0 {
		return
	}
	start := ps.next
	ps.next = (ps.next + 1) % len(ps.locks)
	for i := 0; i < pairs; i++ {
		l := ps.locks[(start+i)%len(ps.locks)]
		l.Acquire(p)
		l.Release(p)
	}
}

// CrossPairsHold is CrossPairs with a critical section: each pair holds
// its lock for hold of processor time charged to cat (the work done under
// the lock — queue manipulation, table updates — is real work in that
// layer, while the pair overhead and any spinning land in CatLock). Hold
// time is what makes these locks contend as processor counts grow.
func (ps *PairSet) CrossPairsHold(p *sim.Proc, pairs int, hold time.Duration, cat Category) {
	if len(ps.locks) == 0 || pairs <= 0 {
		return
	}
	start := ps.next
	ps.next = (ps.next + 1) % len(ps.locks)
	for i := 0; i < pairs; i++ {
		l := ps.locks[(start+i)%len(ps.locks)]
		l.Acquire(p)
		ps.cpus.Use(p, cat, hold)
		l.Release(p)
	}
}

// Locks exposes the underlying locks for targeted use.
func (ps *PairSet) Locks() []*SyncLock { return ps.locks }
