package hw

import (
	"math"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/sim"
)

func TestCPUPoolSerializesBeyondCapacity(t *testing.T) {
	e := sim.NewEngine()
	cpus := NewCPUPool(e, 2)
	done := 0
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *sim.Proc) {
			cpus.Use(p, CatSQL, 10*time.Microsecond)
			done++
		})
	}
	e.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	// 4 jobs of 10µs on 2 CPUs => 20µs makespan.
	if e.Now() != 20*time.Microsecond {
		t.Fatalf("makespan = %v, want 20µs", e.Now())
	}
}

func TestCPUPoolAccounting(t *testing.T) {
	e := sim.NewEngine()
	cpus := NewCPUPool(e, 1)
	e.Go("w", func(p *sim.Proc) {
		cpus.Use(p, CatSQL, 30*time.Microsecond)
		cpus.Use(p, CatDSA, 10*time.Microsecond)
		p.Sleep(60 * time.Microsecond) // idle
	})
	e.Run()
	if got := cpus.Busy(CatSQL); got != 30*time.Microsecond {
		t.Fatalf("SQL busy = %v", got)
	}
	if got := cpus.Busy(CatDSA); got != 10*time.Microsecond {
		t.Fatalf("DSA busy = %v", got)
	}
	if u := cpus.Utilization(CatSQL); math.Abs(u-0.3) > 1e-9 {
		t.Fatalf("SQL util = %v, want 0.3", u)
	}
	bd := cpus.Breakdown()
	if math.Abs(bd["Idle"]-0.6) > 1e-9 {
		t.Fatalf("idle = %v, want 0.6", bd["Idle"])
	}
}

func TestCPUPoolBreakdownSumsToOne(t *testing.T) {
	e := sim.NewEngine()
	cpus := NewCPUPool(e, 4)
	for i := 0; i < 8; i++ {
		cat := Categories()[i%len(Categories())]
		e.Go("w", func(p *sim.Proc) {
			cpus.Use(p, cat, time.Duration(1+i)*time.Microsecond)
		})
	}
	e.Run()
	var sum float64
	for _, v := range cpus.Breakdown() {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("breakdown sums to %v", sum)
	}
}

func TestCPUPoolResetAccounting(t *testing.T) {
	e := sim.NewEngine()
	cpus := NewCPUPool(e, 1)
	e.Go("w", func(p *sim.Proc) {
		cpus.Use(p, CatSQL, 10*time.Microsecond)
	})
	e.Run()
	cpus.ResetAccounting()
	if cpus.Busy(CatSQL) != 0 {
		t.Fatal("busy not reset")
	}
	e.Go("w", func(p *sim.Proc) {
		cpus.Use(p, CatVI, 5*time.Microsecond)
	})
	e.Run()
	if u := cpus.Utilization(CatVI); math.Abs(u-1.0) > 1e-9 {
		t.Fatalf("post-reset util = %v, want 1.0", u)
	}
}

func TestCPUPoolTryUse(t *testing.T) {
	e := sim.NewEngine()
	cpus := NewCPUPool(e, 1)
	var tried, ok bool
	e.Go("hog", func(p *sim.Proc) {
		cpus.Use(p, CatSQL, 100*time.Microsecond)
	})
	e.Go("opportunist", func(p *sim.Proc) {
		p.Sleep(10 * time.Microsecond)
		tried = true
		ok = cpus.TryUse(p, CatOther, time.Microsecond)
	})
	e.Run()
	if !tried || ok {
		t.Fatalf("TryUse should have failed while CPU busy (ok=%v)", ok)
	}
}

func TestCategoryStrings(t *testing.T) {
	want := []string{"SQL", "OSKernel", "Lock", "DSA", "VI", "Other"}
	for i, cat := range Categories() {
		if cat.String() != want[i] {
			t.Fatalf("category %d = %q, want %q", i, cat.String(), want[i])
		}
	}
	if Category(99).String() != "?" {
		t.Fatal("unknown category should stringify to ?")
	}
}

func TestSyncLockChargesLockCategory(t *testing.T) {
	e := sim.NewEngine()
	cpus := NewCPUPool(e, 2)
	l := NewSyncLock(e, cpus)
	e.Go("w", func(p *sim.Proc) {
		l.Acquire(p)
		l.Release(p)
	})
	e.Run()
	if got := cpus.Busy(CatLock); got != DefaultPairCost {
		t.Fatalf("lock busy = %v, want %v", got, DefaultPairCost)
	}
	if l.Acquires() != 1 {
		t.Fatalf("acquires = %d", l.Acquires())
	}
}

func TestSyncLockContentionBurnsCPU(t *testing.T) {
	e := sim.NewEngine()
	cpus := NewCPUPool(e, 4)
	l := NewSyncLock(e, cpus)
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *sim.Proc) {
			l.Acquire(p)
			cpus.Use(p, CatSQL, 20*time.Microsecond) // long critical section
			l.Release(p)
		})
	}
	e.Run()
	if l.Spins() == 0 {
		t.Fatal("expected contended spins")
	}
	if cpus.Busy(CatLock) <= 4*DefaultPairCost {
		t.Fatalf("contention should burn extra Lock CPU, got %v", cpus.Busy(CatLock))
	}
}

func TestSyncLockMutualExclusion(t *testing.T) {
	e := sim.NewEngine()
	cpus := NewCPUPool(e, 8)
	l := NewSyncLock(e, cpus)
	inside := 0
	for i := 0; i < 6; i++ {
		e.Go("w", func(p *sim.Proc) {
			l.Acquire(p)
			inside++
			if inside != 1 {
				t.Errorf("exclusion violated: %d inside", inside)
			}
			p.Sleep(time.Microsecond)
			inside--
			l.Release(p)
		})
	}
	e.Run()
}

func TestSyncLockDo(t *testing.T) {
	e := sim.NewEngine()
	cpus := NewCPUPool(e, 1)
	l := NewSyncLock(e, cpus)
	ran := false
	e.Go("w", func(p *sim.Proc) {
		l.Do(p, func() { ran = true })
	})
	e.Run()
	if !ran {
		t.Fatal("Do did not run fn")
	}
}

func TestPairSetCrossesRequestedPairs(t *testing.T) {
	e := sim.NewEngine()
	cpus := NewCPUPool(e, 2)
	ps := NewPairSet(e, cpus, 4)
	e.Go("w", func(p *sim.Proc) {
		ps.CrossPairs(p, 10)
	})
	e.Run()
	var total int64
	for _, l := range ps.Locks() {
		total += l.Acquires()
	}
	if total != 10 {
		t.Fatalf("crossed %d pairs, want 10", total)
	}
	if got := cpus.Busy(CatLock); got != 10*DefaultPairCost {
		t.Fatalf("lock busy = %v, want %v", got, 10*DefaultPairCost)
	}
}

func TestPairSetRotatesStartLock(t *testing.T) {
	e := sim.NewEngine()
	cpus := NewCPUPool(e, 2)
	ps := NewPairSet(e, cpus, 4)
	e.Go("w", func(p *sim.Proc) {
		ps.CrossPairs(p, 1)
		ps.CrossPairs(p, 1)
		ps.CrossPairs(p, 1)
	})
	e.Run()
	// Each call should have hit a different lock.
	hit := 0
	for _, l := range ps.Locks() {
		if l.Acquires() == 1 {
			hit++
		}
	}
	if hit != 3 {
		t.Fatalf("rotation hit %d distinct locks, want 3", hit)
	}
}

func TestPairSetZeroPairsNoop(t *testing.T) {
	e := sim.NewEngine()
	cpus := NewCPUPool(e, 1)
	ps := NewPairSet(e, cpus, 2)
	e.Go("w", func(p *sim.Proc) { ps.CrossPairs(p, 0) })
	e.Run()
	if cpus.Busy(CatLock) != 0 {
		t.Fatal("zero pairs should cost nothing")
	}
}
