package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTallyBasics(t *testing.T) {
	var ta Tally
	for _, v := range []float64{2, 4, 6} {
		ta.Add(v)
	}
	if ta.N() != 3 {
		t.Fatalf("N = %d", ta.N())
	}
	if ta.Mean() != 4 {
		t.Fatalf("Mean = %v", ta.Mean())
	}
	if ta.Min() != 2 || ta.Max() != 6 {
		t.Fatalf("Min/Max = %v/%v", ta.Min(), ta.Max())
	}
	want := math.Sqrt(8.0 / 3.0)
	if math.Abs(ta.Stddev()-want) > 1e-9 {
		t.Fatalf("Stddev = %v, want %v", ta.Stddev(), want)
	}
}

func TestTallyEmpty(t *testing.T) {
	var ta Tally
	if ta.Mean() != 0 || ta.Stddev() != 0 || ta.Min() != 0 || ta.Max() != 0 {
		t.Fatal("empty tally should report zeros")
	}
}

func TestTallyDuration(t *testing.T) {
	var ta Tally
	ta.AddDuration(10 * time.Millisecond)
	ta.AddDuration(30 * time.Millisecond)
	if ta.MeanDuration() != 20*time.Millisecond {
		t.Fatalf("MeanDuration = %v", ta.MeanDuration())
	}
}

func TestTallyMinMaxProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var ta Tally
		for _, v := range vals {
			if math.IsNaN(v) || math.Abs(v) > 1e15 {
				return true // avoid float summation overflow; not the property under test
			}
			ta.Add(v)
		}
		if len(vals) == 0 {
			return true
		}
		return ta.Min() <= ta.Mean() && ta.Mean() <= ta.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesPercentiles(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Fatalf("p99 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestSeriesPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		var s Series
		for _, v := range vals {
			if math.IsNaN(v) {
				return true
			}
			s.Add(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesAddAfterPercentile(t *testing.T) {
	var s Series
	s.Add(10)
	_ = s.Percentile(50)
	s.Add(1) // must re-sort on next query
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 after late add = %v, want 1", got)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical stream")
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRandRangeInclusive(t *testing.T) {
	r := NewRand(9)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Range(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("Range out of bounds: %d", v)
		}
		seen[v] = true
	}
	if !seen[3] || !seen[4] || !seen[5] {
		t.Fatalf("Range did not cover all values: %v", seen)
	}
}

func TestRandFloat64Bounds(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(13)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean = %v, want ~1", mean)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandSplitIndependent(t *testing.T) {
	r := NewRand(21)
	s := r.Split()
	// Parent continues deterministically after split.
	r2 := NewRand(21)
	_ = r2.Uint64() // the split consumed one value
	if r.Uint64() != r2.Uint64() {
		t.Fatal("split disturbed parent stream beyond one draw")
	}
	_ = s.Uint64()
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Addn(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
	if c.String() != "5" {
		t.Fatalf("String = %q", c.String())
	}
}
