package sim

// Proc is the handle a simulated process uses to interact with virtual
// time. A process is a goroutine started with Engine.Go; it runs only
// while the engine has transferred control to it, and it returns control
// by blocking on Sleep or on one of the synchronization primitives.
//
// Proc methods must only be called from the process's own goroutine.
type Proc struct {
	E      *Engine
	Name   string
	resume chan struct{}
}

// Go starts fn as a simulated process at the current virtual time.
// The process begins running when the engine reaches the scheduling
// event; Go itself returns immediately.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{E: e, Name: name, resume: make(chan struct{})}
	e.nprocs++
	go func() {
		<-p.resume // wait for the engine to transfer control the first time
		fn(p)
		e.nprocs--
		e.park <- struct{}{} // hand control back for good
	}()
	e.After(0, p.transfer)
	return p
}

// transfer hands control from the engine to the process and blocks the
// engine until the process parks again. It is used as an event callback.
func (p *Proc) transfer() {
	p.resume <- struct{}{}
	<-p.E.park
}

// yield returns control to the engine and blocks until the engine
// transfers control back via p.transfer.
func (p *Proc) yield() {
	p.E.park <- struct{}{}
	<-p.resume
}

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.E.After(d, p.transfer)
	p.yield()
}

// Yield reschedules the process after all events already queued at the
// current timestamp. It is equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.E.Now() }
