package sim

// Event is a one-shot completion flag. Processes block on Wait until some
// other activity calls Fire; Wait returns immediately once fired. Event is
// the simulated analogue of a completion notification.
type Event struct {
	fired   bool
	waiters []*Proc
}

// NewEvent returns an unfired event bound to no particular engine; the
// engine is taken from the waiting/firing context.
func NewEvent() *Event { return &Event{} }

// Fired reports whether Fire has been called.
func (ev *Event) Fired() bool { return ev.fired }

// Fire marks the event complete and wakes all waiters (in wait order) at
// the current virtual time. Firing twice is a no-op.
func (ev *Event) Fire(e *Engine) {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, w := range ev.waiters {
		e.After(0, w.transfer)
	}
	ev.waiters = nil
}

// Reset returns a fired event to the unfired state so it can be reused.
// Resetting with waiters pending is a programming error and panics.
func (ev *Event) Reset() {
	if len(ev.waiters) != 0 {
		panic("sim: Reset with pending waiters")
	}
	ev.fired = false
}

// Wait blocks the process until the event fires.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p)
	p.yield()
}

// WaitTimeout blocks the process until the event fires or d elapses,
// whichever comes first, and reports whether the event had fired by the
// time the process resumed.
func (ev *Event) WaitTimeout(p *Proc, d Time) bool {
	if ev.fired {
		return true
	}
	ev.waiters = append(ev.waiters, p)
	resumed := false
	p.E.After(d, func() {
		if resumed || ev.fired {
			return
		}
		// Remove ourselves from the waiter list and resume.
		for i, w := range ev.waiters {
			if w == p {
				ev.waiters = append(ev.waiters[:i], ev.waiters[i+1:]...)
				break
			}
		}
		p.transfer()
	})
	p.yield()
	resumed = true
	return ev.fired
}

// Semaphore is a counting semaphore with FIFO wakeup. It models any
// bounded resource: CPU slots, NIC descriptor queue entries, credits.
type Semaphore struct {
	avail   int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(n int) *Semaphore {
	if n < 0 {
		panic("sim: negative semaphore capacity")
	}
	return &Semaphore{avail: n}
}

// Available returns the number of free permits.
func (s *Semaphore) Available() int { return s.avail }

// Waiting returns the number of blocked acquirers.
func (s *Semaphore) Waiting() int { return len(s.waiters) }

// TryAcquire takes a permit without blocking and reports success.
func (s *Semaphore) TryAcquire() bool {
	// Queued waiters have priority; a late TryAcquire must not jump them.
	if s.avail > 0 && len(s.waiters) == 0 {
		s.avail--
		return true
	}
	return false
}

// Acquire takes one permit, blocking the process until one is available.
// Wakeup order is FIFO.
func (s *Semaphore) Acquire(p *Proc) {
	if s.TryAcquire() {
		return
	}
	s.waiters = append(s.waiters, p)
	p.yield()
	// The releaser passed its permit directly to us; nothing to decrement.
}

// Release returns one permit. If acquirers are blocked, the permit is
// handed directly to the oldest one.
func (s *Semaphore) Release(e *Engine) {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		copy(s.waiters, s.waiters[1:])
		s.waiters = s.waiters[:len(s.waiters)-1]
		e.After(0, w.transfer)
		return
	}
	s.avail++
}

// Mutex is a binary semaphore with Lock/Unlock naming for readability in
// model code that mirrors real locking.
type Mutex struct{ s Semaphore }

// NewMutex returns an unlocked mutex.
func NewMutex() *Mutex { return &Mutex{s: Semaphore{avail: 1}} }

// Lock acquires the mutex, blocking the process while it is held.
func (m *Mutex) Lock(p *Proc) { m.s.Acquire(p) }

// Unlock releases the mutex.
func (m *Mutex) Unlock(e *Engine) { m.s.Release(e) }

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.s.avail == 0 }

// Waiting returns the number of processes blocked in Lock.
func (m *Mutex) Waiting() int { return m.s.Waiting() }
