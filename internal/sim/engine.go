// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and an event queue ordered by
// (time, insertion sequence). Simulated activities are expressed either as
// plain callbacks (Engine.After / Engine.At) or as processes: goroutines
// that block on simulated time and on the synchronization primitives in
// this package (Event, Semaphore, Queue). The engine guarantees that at
// most one goroutine — the engine itself or exactly one process — runs at
// any instant, so simulations are data-race free and fully deterministic
// without any locking in model code.
//
// All timestamps are time.Duration offsets from the simulation epoch.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual timestamp: the offset from the simulation epoch.
type Time = time.Duration

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier at the same timestamp run first (FIFO within a timestamp).
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation kernel.
//
// An Engine must be driven from a single goroutine (typically the test or
// main goroutine) via Run, RunFor, or RunUntil. Model code running inside
// events and processes may freely call Engine methods; it must not retain
// the Engine across real OS threads.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	park   chan struct{} // processes signal the engine here when they yield
	nprocs int           // live (started, unfinished) processes
	label  string
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{park: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) is a programming error and panics.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at %v, now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. Negative d
// panics; zero d runs fn after all callbacks already queued for Now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// step executes the earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until none remain. If processes are still blocked
// when the queue drains, they are abandoned (their goroutines stay parked
// and are reclaimed only at process exit); simulations that need a clean
// shutdown should arrange for their processes to terminate.
func (e *Engine) Run() {
	for e.step() {
	}
}

// RunUntil executes events with timestamps <= t and then sets the clock
// to t. Events scheduled after t remain queued.
func (e *Engine) RunUntil(t Time) {
	for len(e.queue) > 0 && e.queue[0].at <= t {
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor advances the clock by d, executing all events in the window.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// LiveProcs returns the number of started processes that have not yet
// returned. A nonzero value after Run means processes are blocked forever.
func (e *Engine) LiveProcs() int { return e.nprocs }
