package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Tally accumulates scalar observations (durations, sizes, counts) and
// reports summary statistics. The zero value is ready to use.
type Tally struct {
	n        int64
	sum, sq  float64
	min, max float64
}

// Add records one observation.
func (t *Tally) Add(v float64) {
	if t.n == 0 || v < t.min {
		t.min = v
	}
	if t.n == 0 || v > t.max {
		t.max = v
	}
	t.n++
	t.sum += v
	t.sq += v * v
}

// AddDuration records a duration observation in seconds.
func (t *Tally) AddDuration(d time.Duration) { t.Add(d.Seconds()) }

// N returns the number of observations.
func (t *Tally) N() int64 { return t.n }

// Sum returns the sum of observations.
func (t *Tally) Sum() float64 { return t.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (t *Tally) Mean() float64 {
	if t.n == 0 {
		return 0
	}
	return t.sum / float64(t.n)
}

// Min returns the smallest observation, or 0 with none.
func (t *Tally) Min() float64 { return t.min }

// Max returns the largest observation, or 0 with none.
func (t *Tally) Max() float64 { return t.max }

// Stddev returns the population standard deviation.
func (t *Tally) Stddev() float64 {
	if t.n == 0 {
		return 0
	}
	m := t.Mean()
	v := t.sq/float64(t.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// MeanDuration returns the mean as a time.Duration (observations recorded
// via AddDuration).
func (t *Tally) MeanDuration() time.Duration {
	return time.Duration(t.Mean() * float64(time.Second))
}

// Series is an ordered collection of observations that supports
// percentiles. Use for latency distributions.
type Series struct {
	vals   []float64
	sorted bool
}

// Add records one observation.
func (s *Series) Add(v float64) { s.vals = append(s.vals, v); s.sorted = false }

// AddDuration records a duration in seconds.
func (s *Series) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Series) N() int { return len(s.vals) }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Percentile returns the p-th percentile (p in [0,100]) by
// nearest-rank, or 0 with no observations.
func (s *Series) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.vals))))
	if rank < 1 {
		rank = 1
	}
	return s.vals[rank-1]
}

// Counter is a labeled monotonically increasing count.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Addn adds n.
func (c *Counter) Addn(n int64) { c.n += n }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// String implements fmt.Stringer.
func (c *Counter) String() string { return fmt.Sprintf("%d", c.n) }
