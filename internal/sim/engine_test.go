package sim

import (
	"testing"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(30*time.Microsecond, func() { order = append(order, 3) })
	e.After(10*time.Microsecond, func() { order = append(order, 1) })
	e.After(20*time.Microsecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 30*time.Microsecond {
		t.Fatalf("clock = %v, want 30µs", e.Now())
	}
}

func TestEngineFIFOWithinTimestamp(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5*time.Microsecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("event %d ran out of order: %v", i, order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits int
	e.After(time.Microsecond, func() {
		e.After(time.Microsecond, func() { hits++ })
	})
	e.Run()
	if hits != 1 {
		t.Fatalf("nested event did not run")
	}
	if e.Now() != 2*time.Microsecond {
		t.Fatalf("clock = %v, want 2µs", e.Now())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.After(10*time.Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Errorf("scheduling into the past did not panic")
			}
		}()
		e.At(5*time.Microsecond, func() {})
	})
	e.Run()
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	var a, b bool
	e.After(10*time.Microsecond, func() { a = true })
	e.After(20*time.Microsecond, func() { b = true })
	e.RunUntil(15 * time.Microsecond)
	if !a || b {
		t.Fatalf("a=%v b=%v, want a fired and b pending", a, b)
	}
	if e.Now() != 15*time.Microsecond {
		t.Fatalf("clock = %v, want 15µs", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	e := NewEngine()
	e.RunFor(time.Millisecond)
	e.RunFor(time.Millisecond)
	if e.Now() != 2*time.Millisecond {
		t.Fatalf("clock = %v, want 2ms", e.Now())
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var woke Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Microsecond)
		woke = p.Now()
	})
	e.Run()
	if woke != 42*time.Microsecond {
		t.Fatalf("woke at %v, want 42µs", woke)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(10 * time.Microsecond)
					log = append(log, name)
				}
			})
		}
		e.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); len(got) != len(first) {
			t.Fatalf("nondeterministic length")
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("nondeterministic at %d: %v vs %v", i, got, first)
				}
			}
		}
	}
	if len(first) != 9 {
		t.Fatalf("len = %d, want 9", len(first))
	}
}

func TestEventWaitBeforeFire(t *testing.T) {
	e := NewEngine()
	ev := NewEvent()
	var woke Time
	e.Go("waiter", func(p *Proc) {
		ev.Wait(p)
		woke = p.Now()
	})
	e.After(100*time.Microsecond, func() { ev.Fire(e) })
	e.Run()
	if woke != 100*time.Microsecond {
		t.Fatalf("woke at %v, want 100µs", woke)
	}
}

func TestEventWaitAfterFireReturnsImmediately(t *testing.T) {
	e := NewEngine()
	ev := NewEvent()
	ev.Fire(e)
	var woke Time = -1
	e.Go("waiter", func(p *Proc) {
		p.Sleep(5 * time.Microsecond)
		ev.Wait(p)
		woke = p.Now()
	})
	e.Run()
	if woke != 5*time.Microsecond {
		t.Fatalf("woke at %v, want 5µs", woke)
	}
}

func TestEventWakesAllWaiters(t *testing.T) {
	e := NewEngine()
	ev := NewEvent()
	var n int
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *Proc) { ev.Wait(p); n++ })
	}
	e.After(time.Microsecond, func() { ev.Fire(e) })
	e.Run()
	if n != 4 {
		t.Fatalf("woke %d waiters, want 4", n)
	}
}

func TestEventResetReuse(t *testing.T) {
	e := NewEngine()
	ev := NewEvent()
	ev.Fire(e)
	if !ev.Fired() {
		t.Fatal("not fired")
	}
	ev.Reset()
	if ev.Fired() {
		t.Fatal("still fired after Reset")
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(2)
	var active, peak int
	for i := 0; i < 6; i++ {
		e.Go("worker", func(p *Proc) {
			sem.Acquire(p)
			active++
			if active > peak {
				peak = active
			}
			p.Sleep(10 * time.Microsecond)
			active--
			sem.Release(e)
		})
	}
	e.Run()
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
	if e.Now() != 30*time.Microsecond {
		t.Fatalf("makespan = %v, want 30µs (3 waves)", e.Now())
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(1)
	var order []int
	e.Go("holder", func(p *Proc) {
		sem.Acquire(p)
		p.Sleep(100 * time.Microsecond)
		sem.Release(e)
	})
	for i := 1; i <= 3; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(Time(i) * time.Microsecond) // stagger arrival order
			sem.Acquire(p)
			order = append(order, i)
			sem.Release(e)
		})
	}
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wakeup order %v, want [1 2 3]", order)
	}
}

func TestSemaphoreTryAcquireRespectsQueue(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(1)
	e.Go("a", func(p *Proc) {
		sem.Acquire(p)
		p.Sleep(10 * time.Microsecond)
		sem.Release(e)
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(time.Microsecond)
		sem.Acquire(p) // blocks behind a
		sem.Release(e)
	})
	e.Go("c", func(p *Proc) {
		p.Sleep(10 * time.Microsecond) // arrives exactly at release time
		if sem.TryAcquire() && sem.Waiting() > 0 {
			t.Errorf("TryAcquire jumped the wait queue")
		}
	})
	e.Run()
}

func TestMutexExcludes(t *testing.T) {
	e := NewEngine()
	mu := NewMutex()
	inside := 0
	for i := 0; i < 5; i++ {
		e.Go("locker", func(p *Proc) {
			mu.Lock(p)
			inside++
			if inside != 1 {
				t.Errorf("mutual exclusion violated: %d inside", inside)
			}
			p.Sleep(3 * time.Microsecond)
			inside--
			mu.Unlock(e)
		})
	}
	e.Run()
	if mu.Locked() {
		t.Fatal("mutex still locked at end")
	}
}

func TestQueuePutThenGet(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	q.Put(e, 7)
	q.Put(e, 8)
	var got []int
	e.Go("consumer", func(p *Proc) {
		got = append(got, q.Get(p), q.Get(p))
	})
	e.Run()
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("got %v, want [7 8]", got)
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string]()
	var got string
	var at Time
	e.Go("consumer", func(p *Proc) {
		got = q.Get(p)
		at = p.Now()
	})
	e.After(25*time.Microsecond, func() { q.Put(e, "x") })
	e.Run()
	if got != "x" || at != 25*time.Microsecond {
		t.Fatalf("got %q at %v, want \"x\" at 25µs", got, at)
	}
}

func TestQueueMultipleBlockedGetters(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	var got []int
	for i := 0; i < 3; i++ {
		e.Go("c", func(p *Proc) { got = append(got, q.Get(p)) })
	}
	e.After(time.Microsecond, func() {
		q.Put(e, 1)
		q.Put(e, 2)
		q.Put(e, 3)
	})
	e.Run()
	if len(got) != 3 {
		t.Fatalf("delivered %d items, want 3", len(got))
	}
	// FIFO getters receive items in put order.
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got %v, want [1 2 3]", got)
		}
	}
}

func TestQueueTryGet(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int]()
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	q.Put(e, 9)
	if v, ok := q.TryGet(); !ok || v != 9 {
		t.Fatalf("TryGet = %v,%v; want 9,true", v, ok)
	}
}

func TestWaitTimeoutFires(t *testing.T) {
	e := NewEngine()
	ev := NewEvent()
	var ok bool
	var at Time
	e.Go("w", func(p *Proc) {
		ok = ev.WaitTimeout(p, 100*time.Microsecond)
		at = p.Now()
	})
	e.After(40*time.Microsecond, func() { ev.Fire(e) })
	e.Run()
	if !ok || at != 40*time.Microsecond {
		t.Fatalf("ok=%v at=%v, want fired at 40µs", ok, at)
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	e := NewEngine()
	ev := NewEvent()
	var ok bool
	var at Time
	e.Go("w", func(p *Proc) {
		ok = ev.WaitTimeout(p, 100*time.Microsecond)
		at = p.Now()
	})
	e.After(500*time.Microsecond, func() { ev.Fire(e) })
	e.Run()
	if ok || at != 100*time.Microsecond {
		t.Fatalf("ok=%v at=%v, want timeout at 100µs", ok, at)
	}
}

func TestWaitTimeoutAlreadyFired(t *testing.T) {
	e := NewEngine()
	ev := NewEvent()
	ev.Fire(e)
	var ok bool
	e.Go("w", func(p *Proc) { ok = ev.WaitTimeout(p, time.Microsecond) })
	e.Run()
	if !ok {
		t.Fatal("should report fired immediately")
	}
}

func TestWaitTimeoutDoesNotDoubleResume(t *testing.T) {
	e := NewEngine()
	ev := NewEvent()
	var wakes int
	e.Go("w", func(p *Proc) {
		ev.WaitTimeout(p, 50*time.Microsecond)
		wakes++
		p.Sleep(200 * time.Microsecond) // survive past the stale timer
		wakes++
	})
	e.After(50*time.Microsecond, func() { ev.Fire(e) }) // fires exactly at the deadline
	e.Run()
	if wakes != 2 {
		t.Fatalf("wakes=%d, want 2", wakes)
	}
}
