package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator
// (splitmix64 core) used throughout the simulation. Unlike math/rand it
// is trivially seedable per component, so experiments are reproducible
// regardless of package initialization order.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform int in [lo, hi] inclusive.
func (r *Rand) Range(lo, hi int) int {
	if hi < lo {
		panic("sim: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Split returns a new generator whose stream is independent of, but
// deterministically derived from, this one.
func (r *Rand) Split() *Rand { return NewRand(r.Uint64()) }
