package sim

// Queue is an unbounded FIFO channel between simulated activities.
// Put never blocks; Get blocks the calling process until an item arrives.
// It is the simulated analogue of a work queue fed by events or other
// processes.
type Queue[T any] struct {
	items   []T
	waiters []*getWaiter[T]
}

type getWaiter[T any] struct {
	p    *Proc
	item T
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

// Len returns the number of buffered items (not counting items already
// handed to blocked getters).
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v. If a getter is blocked, v is handed to the oldest one
// and that process is scheduled at the current virtual time.
func (q *Queue[T]) Put(e *Engine, v T) {
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		copy(q.waiters, q.waiters[1:])
		q.waiters[len(q.waiters)-1] = nil
		q.waiters = q.waiters[:len(q.waiters)-1]
		w.item = v
		e.After(0, w.p.transfer)
		return
	}
	q.items = append(q.items, v)
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Get removes and returns the oldest item, blocking the process until one
// is available.
func (q *Queue[T]) Get(p *Proc) T {
	if v, ok := q.TryGet(); ok {
		return v
	}
	w := &getWaiter[T]{p: p}
	q.waiters = append(q.waiters, w)
	p.yield()
	return w.item
}
