// Package localio models the paper's baseline: locally attached disks
// behind a highly optimized Fibre Channel / SCSI driver (Section 6: "The
// FC device driver used in the local case is a highly optimized version
// provided by the disk controller vendor"). Every I/O crosses the kernel
// (syscall + I/O manager) and an efficient driver; completions arrive as
// hardware interrupts with controller-side coalescing ("SCSI controllers
// and drivers are optimized to reduce the number of interrupts on the
// receive path, and to impose very little overhead on the send path").
package localio

import (
	"fmt"
	"time"

	"github.com/v3storage/v3/internal/diskmodel"
	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/oskrnl"
	"github.com/v3storage/v3/internal/sim"
	"github.com/v3storage/v3/internal/volume"
)

// Config sizes the local storage subsystem.
type Config struct {
	NumDisks     int
	DiskParams   diskmodel.Params
	DiskBytes    int64
	StripeSize   int64
	SubmitCost   time.Duration // driver send-path work
	CompleteCost time.Duration // driver completion work
	Coalesce     int           // completions reaped per controller interrupt
	DisksPerHBA  int           // disks behind one host bus adapter (one interrupt line each)
}

// DefaultConfig returns the mid-size local configuration's per-element
// costs (the disk count varies by experiment).
func DefaultConfig() Config {
	return Config{
		NumDisks:     176,
		DiskParams:   diskmodel.SCSI10K(),
		DiskBytes:    17 << 30,
		StripeSize:   64 * 1024,
		SubmitCost:   17 * time.Microsecond,
		CompleteCost: 17 * time.Microsecond,
		Coalesce:     6,
		DisksPerHBA:  40,
	}
}

// Request is one local I/O in flight.
type Request struct {
	Offset int64
	Length int
	Write  bool

	appDone     *sim.Event
	issued      sim.Time
	completedAt sim.Time
}

// Done reports completion.
func (r *Request) Done() bool { return r.appDone.Fired() }

// Latency returns issue-to-completion time (zero until complete).
func (r *Request) Latency() time.Duration {
	if r.completedAt == 0 {
		return 0
	}
	return time.Duration(r.completedAt - r.issued)
}

// hba is one host bus adapter: its own interrupt line and completion
// engine, serving a contiguous group of disks. Large configurations have
// many (640 disks cannot funnel through one interrupt line).
type hba struct {
	isr   *oskrnl.ISRQueue
	doneQ *sim.Queue[*Request]
}

// Client is the local-disk I/O path on the database host.
type Client struct {
	e      *sim.Engine
	cpus   *hw.CPUPool
	kern   *oskrnl.Kernel
	cfg    Config
	disks  *diskmodel.Array
	layout volume.Layout
	hbas   []*hba

	lat    sim.Series
	reads  sim.Counter
	writes sim.Counter
}

// New builds the local storage stack: the disk array, a striped volume
// over it, and the interrupt-coalescing completion engine.
func New(e *sim.Engine, cpus *hw.CPUPool, kern *oskrnl.Kernel, cfg Config) *Client {
	lay, err := volume.NewStripe(cfg.NumDisks, cfg.StripeSize, cfg.DiskBytes-(cfg.DiskBytes%cfg.StripeSize))
	if err != nil {
		panic("localio: " + err.Error())
	}
	c := &Client{
		e: e, cpus: cpus, kern: kern, cfg: cfg,
		disks:  diskmodel.NewArray(e, cfg.NumDisks, cfg.DiskParams, sim.NewRand(0x10ca1)),
		layout: lay,
	}
	per := cfg.DisksPerHBA
	if per <= 0 {
		per = 40
	}
	nhba := (cfg.NumDisks + per - 1) / per
	for i := 0; i < nhba; i++ {
		h := &hba{
			isr:   kern.NewISRQueue(fmt.Sprintf("fc-hba%d", i)),
			doneQ: sim.NewQueue[*Request](),
		}
		c.hbas = append(c.hbas, h)
		e.Go(fmt.Sprintf("fc-completer%d", i), func(p *sim.Proc) { c.completer(p, h) })
	}
	return c
}

// VolumeSize returns the usable volume size.
func (c *Client) VolumeSize() int64 { return c.layout.Size() }

// Config returns the configuration the client was built with.
func (c *Client) Config() Config { return c.cfg }

// ReadAsync issues an asynchronous read.
func (c *Client) ReadAsync(p *sim.Proc, off int64, length int) *Request {
	return c.submit(p, off, length, false)
}

// WriteAsync issues an asynchronous write.
func (c *Client) WriteAsync(p *sim.Proc, off int64, length int) *Request {
	return c.submit(p, off, length, true)
}

// Read performs a synchronous read.
func (c *Client) Read(p *sim.Proc, off int64, length int) *Request {
	r := c.ReadAsync(p, off, length)
	c.Wait(p, r)
	return r
}

// Write performs a synchronous write.
func (c *Client) Write(p *sim.Proc, off int64, length int) *Request {
	r := c.WriteAsync(p, off, length)
	c.Wait(p, r)
	return r
}

// Wait blocks until r completes.
func (c *Client) Wait(p *sim.Proc, r *Request) { r.appDone.Wait(p) }

func (c *Client) submit(p *sim.Proc, off int64, length int, write bool) *Request {
	r := &Request{Offset: off, Length: length, Write: write, appDone: sim.NewEvent(), issued: p.Now()}
	c.kern.Syscall(p, 0)
	c.kern.IOManagerSubmit(p)
	c.cpus.Use(p, hw.CatOther, c.cfg.SubmitCost) // tuned vendor driver, send path
	var ext []volume.Extent
	var err error
	if write {
		ext, err = c.layout.MapWrite(off, length)
		c.writes.Inc()
	} else {
		ext, err = c.layout.MapRead(off, length)
		c.reads.Inc()
	}
	if err != nil {
		panic("localio: " + err.Error())
	}
	// Fire the disk I/Os; a shepherd watches for the last completion and
	// hands the request to the interrupt engine.
	events := make([]*sim.Event, len(ext))
	for i, x := range ext {
		done := sim.NewEvent()
		events[i] = done
		c.disks.Disks[x.Disk].Submit(&diskmodel.Request{
			Offset: x.Offset, Length: x.Length, Write: write, Done: done,
		})
	}
	h := c.hbas[ext[0].Disk/max(1, c.cfg.DisksPerHBA)%len(c.hbas)]
	c.e.Go("io-shepherd", func(sp *sim.Proc) {
		for _, ev := range events {
			ev.Wait(sp)
		}
		h.doneQ.Put(c.e, r)
	})
	return r
}

// completer models the controller's coalesced completion interrupts: one
// interrupt reaps every completion that has accumulated, up to the
// coalescing window.
func (c *Client) completer(p *sim.Proc, h *hba) {
	coalesce := c.cfg.Coalesce
	if coalesce < 1 {
		coalesce = 1
	}
	for {
		first := h.doneQ.Get(p)
		batch := []*Request{first}
		for len(batch) < coalesce {
			r, ok := h.doneQ.TryGet()
			if !ok {
				break
			}
			batch = append(batch, r)
		}
		done := sim.NewEvent()
		h.isr.Raise(func(ip *sim.Proc) {
			for _, r := range batch {
				c.kern.IOManagerComplete(ip)
				c.cpus.Use(ip, hw.CatOther, c.cfg.CompleteCost)
				c.kern.WakeThread(ip)
				r.completedAt = ip.Now()
				c.lat.AddDuration(time.Duration(r.completedAt - r.issued))
				r.appDone.Fire(c.e)
			}
			done.Fire(c.e)
		})
		done.Wait(p) // don't take the next interrupt until this one retires
	}
}

// IOs returns completed (read, write) counts.
func (c *Client) IOs() (reads, writes int64) { return c.reads.Value(), c.writes.Value() }

// MeanLatency returns the mean completion latency.
func (c *Client) MeanLatency() time.Duration {
	return time.Duration(c.lat.Mean() * float64(time.Second))
}

// CompletedIOs returns the number of completed I/Os.
func (c *Client) CompletedIOs() int { return c.lat.N() }

// Disks exposes the array for stats.
func (c *Client) Disks() *diskmodel.Array { return c.disks }
