package localio

import (
	"testing"
	"time"

	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/oskrnl"
	"github.com/v3storage/v3/internal/sim"
)

func rig(ndisks int) (*sim.Engine, *hw.CPUPool, *oskrnl.Kernel, *Client) {
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, 4)
	kern := oskrnl.New(e, cpus, oskrnl.DefaultParams())
	cfg := DefaultConfig()
	cfg.NumDisks = ndisks
	return e, cpus, kern, New(e, cpus, kern, cfg)
}

func TestSyncReadCompletes(t *testing.T) {
	e, _, _, c := rig(4)
	var r *Request
	e.Go("app", func(p *sim.Proc) {
		r = c.Read(p, 8192, 8192)
	})
	e.RunFor(time.Second)
	if r == nil || !r.Done() {
		t.Fatal("read did not complete")
	}
	// Random disk read on 10K RPM: several ms.
	if r.Latency() < 2*time.Millisecond || r.Latency() > 25*time.Millisecond {
		t.Fatalf("latency %v outside disk envelope", r.Latency())
	}
	rd, wr := c.IOs()
	if rd != 1 || wr != 0 {
		t.Fatalf("rd=%d wr=%d", rd, wr)
	}
}

func TestWriteSlowerThanRead(t *testing.T) {
	e, _, _, c := rig(4)
	var sumR, sumW time.Duration
	e.Go("app", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			r := c.Read(p, int64(i)*1<<20, 8192)
			sumR += r.Latency()
			w := c.Write(p, int64(i)*1<<20+512<<10, 8192)
			sumW += w.Latency()
		}
	})
	e.RunFor(10 * time.Second)
	if sumW <= sumR {
		t.Fatalf("writes (%v) should be slower than reads (%v) on average", sumW, sumR)
	}
}

func TestParallelismAcrossDisks(t *testing.T) {
	// 16 concurrent random I/Os over 16 disks should take ~1 disk time,
	// not 16x.
	e, _, _, c := rig(16)
	var finished sim.Time
	e.Go("app", func(p *sim.Proc) {
		var reqs []*Request
		for i := 0; i < 16; i++ {
			// One request per 64K stripe -> distinct disks.
			reqs = append(reqs, c.ReadAsync(p, int64(i)*64*1024, 8192))
		}
		for _, r := range reqs {
			c.Wait(p, r)
		}
		finished = p.Now()
	})
	e.RunFor(time.Second)
	if c.CompletedIOs() != 16 {
		t.Fatalf("completed %d", c.CompletedIOs())
	}
	if finished > 40*time.Millisecond {
		t.Fatalf("16 parallel IOs took %v — not parallel", finished)
	}
}

func TestInterruptCoalescingUnderLoad(t *testing.T) {
	// Coalescing engages when completions arrive faster than the
	// completion path retires them. Force that with a slow completion
	// path and bursts of simultaneous completions.
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, 4)
	kern := oskrnl.New(e, cpus, oskrnl.DefaultParams())
	cfg := DefaultConfig()
	cfg.NumDisks = 32
	cfg.CompleteCost = 2 * time.Millisecond // backlog builds behind each interrupt
	c := New(e, cpus, kern, cfg)
	e.Go("app", func(p *sim.Proc) {
		for round := 0; round < 10; round++ {
			var reqs []*Request
			for i := 0; i < 32; i++ {
				reqs = append(reqs, c.ReadAsync(p, int64(i)*64*1024+int64(round)*1<<26, 8192))
			}
			for _, r := range reqs {
				c.Wait(p, r)
			}
		}
	})
	e.RunFor(120 * time.Second)
	ios := int64(c.CompletedIOs())
	if ios != 320 {
		t.Fatalf("completed %d", ios)
	}
	if kern.Interrupts() >= ios*3/4 {
		t.Fatalf("interrupts (%d) not coalesced below IO count (%d)", kern.Interrupts(), ios)
	}
}

func TestKernelCostsCharged(t *testing.T) {
	e, cpus, _, c := rig(2)
	e.Go("app", func(p *sim.Proc) {
		c.Read(p, 0, 8192)
	})
	e.RunFor(time.Second)
	if cpus.Busy(hw.CatOSKernel) <= 0 {
		t.Fatal("kernel time not charged")
	}
	if cpus.Busy(hw.CatLock) <= 0 {
		t.Fatal("I/O manager lock pairs not charged")
	}
	if cpus.Busy(hw.CatOther) <= 0 {
		t.Fatal("driver time not charged")
	}
}

func TestLargeRequestSpansStripes(t *testing.T) {
	e, _, _, c := rig(4)
	var r *Request
	e.Go("app", func(p *sim.Proc) {
		r = c.Read(p, 0, 256*1024) // 4 stripes of 64K
	})
	e.RunFor(time.Second)
	if !r.Done() {
		t.Fatal("multi-extent read did not complete")
	}
	if c.Disks().Served() != 4 {
		t.Fatalf("disk IOs = %d, want 4", c.Disks().Served())
	}
}

func TestMeanLatencyTracked(t *testing.T) {
	e, _, _, c := rig(2)
	e.Go("app", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			c.Read(p, int64(i)*1<<20, 8192)
		}
	})
	e.RunFor(time.Second)
	if c.MeanLatency() <= 0 {
		t.Fatal("no mean latency")
	}
	if c.VolumeSize() <= 0 {
		t.Fatal("volume size wrong")
	}
}
