package bufpool

import (
	"testing"
	"unsafe"
)

func isAligned(t *testing.T, b []byte) {
	t.Helper()
	if len(b) == 0 {
		t.Fatal("empty buffer")
	}
	if uintptr(unsafe.Pointer(&b[0]))&(DirectAlign-1) != 0 {
		t.Fatalf("buffer base %p not %d-aligned", &b[0], DirectAlign)
	}
}

func TestAlignedSlab(t *testing.T) {
	for _, size := range []int{1, 512, 4096, 8192, 512 << 10, 1 << 20} {
		s := AlignedSlab(size)
		isAligned(t, s)
		if len(s) != size || cap(s) != size {
			t.Fatalf("slab(%d): len %d cap %d", size, len(s), cap(s))
		}
	}
}

func TestAlignedGetPut(t *testing.T) {
	a := NewAligned()
	sizes := []int{512, 600, 4096, 8192, 64 << 10, 1 << 20}
	for _, n := range sizes {
		b := a.Get(n)
		isAligned(t, b)
		if len(b) != n {
			t.Fatalf("Get(%d) len = %d", n, len(b))
		}
		a.Put(b)
	}
	st := a.Stats()
	if st.Gets != int64(len(sizes)) || st.Puts != int64(len(sizes)) {
		t.Fatalf("stats = %+v", st)
	}
	// A second pass normally reuses every slab; under the race detector
	// sync.Pool deliberately drops a fraction of puts, so only bound the
	// allocation count rather than requiring pure reuse.
	for _, n := range sizes {
		b := a.Get(n)
		isAligned(t, b)
		a.Put(b)
	}
	if st := a.Stats(); st.Allocs > st.Gets {
		t.Fatalf("more allocations than gets: %+v", st)
	}
}

func TestAlignedOversizeAndNil(t *testing.T) {
	a := NewAligned()
	huge := a.Get((1 << 20) + 1) // beyond MaxClass: fresh exact-size alloc
	isAligned(t, huge)
	if a.Stats().Oversz != 1 {
		t.Fatalf("oversize not counted: %+v", a.Stats())
	}
	a.Put(huge) // dropped: cap not a class size

	var nilPool *Aligned
	b := nilPool.Get(4096)
	isAligned(t, b)
	nilPool.Put(b)
	if s := nilPool.Stats(); s != (Stats{}) {
		t.Fatalf("nil pool stats = %+v", s)
	}
}

func TestAlignedPutRejectsImpostors(t *testing.T) {
	a := NewAligned()
	// Misaligned interior slice of a class-sized allocation must be
	// dropped, not poison the class.
	raw := AlignedSlab(8192 + DirectAlign)
	crooked := raw[1 : 1+8192]
	a.Put(crooked)
	b := a.Get(8192)
	isAligned(t, b)
	if a.Stats().Allocs != 1 {
		t.Fatalf("crooked slab entered the pool: %+v", a.Stats())
	}
}
