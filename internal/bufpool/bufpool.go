// Package bufpool provides size-classed byte-slice pools for the netv3
// hot path. It is the TCP-path analogue of the paper's batched
// deregistration (Section 3.1): just as DSA amortizes the cost of
// pinning/unpinning NIC translation-table entries by recycling
// registered regions instead of releasing them per I/O, bufpool recycles
// payload slabs instead of returning them to the garbage collector per
// request, so the steady-state data path performs no per-I/O allocation.
//
// Slabs are grouped into power-of-two size classes between MinClass and
// MaxClass bytes; each class is backed by one sync.Pool. Get returns a
// slice of exactly the requested length whose capacity is the class
// size; Put files the slab back under its capacity class. Requests
// outside the class range fall through to the allocator (and Put drops
// them), so correctness never depends on pooling.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Size-class bounds. 512 B covers small control-adjacent payloads; 1 MB
// matches the netv3 server's default MaxXfer.
const (
	MinClass = 512
	MaxClass = 1 << 20
)

// Stats is a point-in-time snapshot of pool activity.
type Stats struct {
	Gets   int64 // successful Get calls (pooled classes only)
	Puts   int64 // slabs returned to a class
	Allocs int64 // Gets that had to allocate a fresh slab
	Oversz int64 // Gets outside the class range (plain make)
}

// Pool is a set of size-classed slab pools. The zero value is not ready
// to use; call New. A nil *Pool is valid and degrades to plain
// allocation, which keeps ablation call sites branch-free.
type Pool struct {
	classes [classCount]sync.Pool
	gets    atomic.Int64
	puts    atomic.Int64
	allocs  atomic.Int64
	oversz  atomic.Int64
}

// classCount = log2(MaxClass) - log2(MinClass) + 1; asserted in tests.
const classCount = 12

// New returns an empty pool.
func New() *Pool {
	return &Pool{}
}

// classFor maps a byte count to its class index, or -1 when n is outside
// the pooled range.
func classFor(n int) int {
	if n <= 0 || n > MaxClass {
		return -1
	}
	if n <= MinClass {
		return 0
	}
	// Index of the smallest power of two >= n, relative to MinClass.
	return bits.Len(uint(n-1)) - bits.Len(uint(MinClass)) + 1
}

// classSize returns the slab capacity of class idx.
func classSize(idx int) int { return MinClass << idx }

// Get returns a slice of length n. When p is nil, pooling is disabled
// (ablation mode) and a fresh slice is allocated.
func (p *Pool) Get(n int) []byte {
	if p == nil {
		return make([]byte, n)
	}
	idx := classFor(n)
	if idx < 0 {
		p.oversz.Add(1)
		return make([]byte, n)
	}
	p.gets.Add(1)
	if v := p.classes[idx].Get(); v != nil {
		b := *(v.(*[]byte))
		return b[:n]
	}
	p.allocs.Add(1)
	return make([]byte, classSize(idx))[:n]
}

// Put returns b's backing slab to the pool. Slices whose capacity is not
// an exact class size (e.g. oversize allocations, or sub-slices that
// lost their capacity) are dropped. Put(nil) and Put on a nil pool are
// no-ops.
func (p *Pool) Put(b []byte) {
	if p == nil || cap(b) == 0 {
		return
	}
	c := cap(b)
	idx := classFor(c)
	if idx < 0 || classSize(idx) != c {
		return
	}
	p.puts.Add(1)
	b = b[:c]
	p.classes[idx].Put(&b)
}

// Stats returns cumulative counters since the pool was created.
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{
		Gets:   p.gets.Load(),
		Puts:   p.puts.Load(),
		Allocs: p.allocs.Load(),
		Oversz: p.oversz.Load(),
	}
}
