package bufpool

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// DirectAlign is the alignment every Aligned slab guarantees: 4096
// bytes covers O_DIRECT on every mainstream filesystem (page-sized
// alignment satisfies both the 512-byte logical-sector floor and the
// 4K-native devices that reject anything smaller).
const DirectAlign = 4096

// Aligned is a size-classed pool of alignment-guaranteed slabs — the
// buffer source for the batched disk backend (internal/diskq), where
// payloads may be handed to the kernel as registered/pinned I/O buffers
// and must be O_DIRECT-compatible. It reuses the Pool's power-of-two
// class ladder but over-allocates each slab by the alignment and slices
// to the first aligned byte, so &b[0] of every Get is DirectAlign-
// aligned and the capacity is exactly the class size (making Put's
// class lookup identical to the unaligned pool's).
type Aligned struct {
	classes [classCount]sync.Pool
	gets    atomic.Int64
	puts    atomic.Int64
	allocs  atomic.Int64
	oversz  atomic.Int64
}

// NewAligned returns an empty aligned pool.
func NewAligned() *Aligned {
	return &Aligned{}
}

// AlignedSlab allocates a DirectAlign-aligned slice of exactly size
// bytes (cap == size), discarding the unaligned head of the raw
// allocation. It is the primitive under Aligned.Get, exported for
// callers that need one-off pinned-registration slabs outside a pool
// (the diskq registered-buffer arena).
func AlignedSlab(size int) []byte {
	raw := make([]byte, size+DirectAlign)
	off := 0
	if rem := int(uintptr(unsafe.Pointer(&raw[0])) & (DirectAlign - 1)); rem != 0 {
		off = DirectAlign - rem
	}
	return raw[off : off+size : off+size]
}

// aligned reports whether b's first byte sits on a DirectAlign boundary.
func aligned(b []byte) bool {
	return uintptr(unsafe.Pointer(&b[0]))&(DirectAlign-1) == 0
}

// Get returns an aligned slice of length n. Requests outside the class
// range fall through to a fresh aligned allocation sized exactly n. A
// nil *Aligned degrades to plain aligned allocation.
func (a *Aligned) Get(n int) []byte {
	if a == nil {
		return AlignedSlab(n)
	}
	idx := classFor(n)
	if idx < 0 {
		a.oversz.Add(1)
		return AlignedSlab(n)
	}
	a.gets.Add(1)
	if v := a.classes[idx].Get(); v != nil {
		b := *(v.(*[]byte))
		return b[:n]
	}
	a.allocs.Add(1)
	return AlignedSlab(classSize(idx))[:n]
}

// Put returns b's slab to its class. Slabs that lost their alignment or
// whose capacity is not an exact class size are dropped, so correctness
// never depends on callers returning only pristine slabs.
func (a *Aligned) Put(b []byte) {
	if a == nil || cap(b) == 0 {
		return
	}
	c := cap(b)
	idx := classFor(c)
	if idx < 0 || classSize(idx) != c || !aligned(b[:1]) {
		return
	}
	a.puts.Add(1)
	b = b[:c]
	a.classes[idx].Put(&b)
}

// Stats returns cumulative counters since the pool was created.
func (a *Aligned) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	return Stats{
		Gets:   a.gets.Load(),
		Puts:   a.puts.Load(),
		Allocs: a.allocs.Load(),
		Oversz: a.oversz.Load(),
	}
}
