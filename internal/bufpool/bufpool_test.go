package bufpool

import (
	"math/bits"
	"sync"
	"testing"
)

func TestClassCountMatchesBounds(t *testing.T) {
	want := bits.Len(uint(MaxClass)) - bits.Len(uint(MinClass)) + 1
	if classCount != want {
		t.Fatalf("classCount = %d, want %d", classCount, want)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, idx int
	}{
		{1, 0}, {512, 0}, {513, 1}, {1024, 1}, {1025, 2},
		{8192, 4}, {8193, 5}, {1 << 20, 11},
		{0, -1}, {-1, -1}, {1<<20 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.idx {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.idx)
		}
	}
	for idx := 0; idx < classCount; idx++ {
		sz := classSize(idx)
		if got := classFor(sz); got != idx {
			t.Errorf("classFor(classSize(%d)=%d) = %d", idx, sz, got)
		}
	}
}

func TestGetPutRecycles(t *testing.T) {
	p := New()
	b := p.Get(8192)
	if len(b) != 8192 || cap(b) != 8192 {
		t.Fatalf("len=%d cap=%d", len(b), cap(b))
	}
	b[0], b[8191] = 1, 2
	p.Put(b)
	// A short request from the same class reuses the slab (same pool,
	// single goroutine, so sync.Pool returns what we just put).
	c := p.Get(5000)
	if len(c) != 5000 || cap(c) != 8192 {
		t.Fatalf("len=%d cap=%d", len(c), cap(c))
	}
	st := p.Stats()
	if st.Gets != 2 || st.Puts != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Allocs == 0 {
		t.Fatal("first Get must allocate")
	}
}

func TestOversizeFallsThrough(t *testing.T) {
	p := New()
	b := p.Get(MaxClass + 1)
	if len(b) != MaxClass+1 {
		t.Fatal("oversize length wrong")
	}
	p.Put(b) // dropped, not pooled
	if st := p.Stats(); st.Oversz != 1 || st.Puts != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestNilPoolDegradesToMake(t *testing.T) {
	var p *Pool
	b := p.Get(4096)
	if len(b) != 4096 {
		t.Fatal("nil pool Get wrong length")
	}
	p.Put(b)
	if st := p.Stats(); st != (Stats{}) {
		t.Fatalf("stats %+v", st)
	}
}

func TestPutOddCapDropped(t *testing.T) {
	p := New()
	odd := make([]byte, 1000) // cap 1000 is not a class size
	p.Put(odd)
	if st := p.Stats(); st.Puts != 0 {
		t.Fatalf("odd-cap slab pooled: %+v", st)
	}
}

func TestConcurrent(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b := p.Get(1 + i%MaxClass)
				b[0] = byte(i)
				p.Put(b)
			}
		}()
	}
	wg.Wait()
}

func BenchmarkGetPut8K(b *testing.B) {
	p := New()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			buf := p.Get(8192)
			p.Put(buf)
		}
	})
}
