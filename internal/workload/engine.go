package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/v3storage/v3/internal/mqcache"
	"github.com/v3storage/v3/internal/obs"
)

// Config sizes one wall-clock workload engine over a PageStore.
type Config struct {
	// Store is the real storage path (required).
	Store PageStore
	// Kinds is the transaction mix (required): TPCCKinds() or a
	// SyntheticKind.
	Kinds []TxKind
	// Dist is the page distribution within a warehouse partition.
	Dist DistSpec
	// Arrival is the arrival process: closed-loop terminals by default,
	// open-loop Poisson or bursty.
	Arrival ArrivalSpec
	// Terminals is the number of concurrent transaction goroutines —
	// closed-loop terminals, or the executor pool draining open-loop
	// arrivals. Default 8.
	Terminals int
	// Warehouses partitions the data region; terminal t's home warehouse
	// is t mod Warehouses. Default 1.
	Warehouses int
	// WarehouseBase is the first warehouse index this engine drives.
	// Multi-client runs give each client engine a disjoint
	// [WarehouseBase, WarehouseBase+Warehouses) slice of one shared
	// volume layout; remote-warehouse touches stay within the client's
	// own slice. Default 0.
	WarehouseBase int
	// PagesPerWarehouse is each warehouse's data footprint in pages.
	// Default PagesPerWarehouse (scaled-down; see tpcc.go).
	PagesPerWarehouse int64
	// PageSize is the database page size. Default 8192.
	PageSize int
	// BufferPoolPages caps the engine's buffer pool. Default
	// Warehouses*PagesPerWarehouse/8 (a ~12% pool, the scaled shape of
	// the paper's Table 1 memory-to-data ratios).
	BufferPoolPages int
	// ReadBatch is the read-ahead batch: buffer-pool misses accumulate
	// and overlap through PageStore.ReadPages. Clamped to the store's
	// BatchLimit (the credit-window fan-out rule). Default 6.
	ReadBatch int
	// Cleaners is the write-behind pool draining dirty evictions.
	// Default 4.
	Cleaners int
	// GroupCommit is the log writer's flush cadence; commits also kick
	// the writer early when a full 64 KB log slot has accumulated.
	// Default 2ms.
	GroupCommit time.Duration
	// LogSlots sizes the sequential log region reserved at the start of
	// the volume (64 KB slots, written round-robin). Default 64.
	LogSlots int64
	// Seed makes the generators deterministic. Default 1.
	Seed int64
	// E2E, when non-nil, is snapshotted into the Result — the adapter's
	// caller-measured end-to-end histogram the stage breakdown is
	// checked against (pass the same Hist to NewNetStore/NewVaultStore).
	E2E *obs.Hist
	// Metrics, when non-nil, exports the engine's live instrumentation
	// on this registry: per-kind commit-latency histograms
	// (workload_tx_ns{kind=...}, measurement window only) and the
	// running counters (page refs, pool hits, physical reads/writes,
	// log flushes, aborted transactions, open-loop overflows). The same
	// numbers land in the Result at the end; the registry view exists
	// so a scrape or /debug/flightrec correlation can watch them move
	// while the run is still in flight. Nil is the disabled fast path.
	Metrics *obs.Registry
}

const logSlotBytes = 64 << 10

// errStopped ends a transaction that was cut off by shutdown.
var errStopped = errors.New("workload: engine stopped")

// Engine drives one workload over one PageStore. Create with New, run
// with Run; an Engine is single-shot.
type Engine struct {
	cfg   Config
	store PageStore
	kinds []TxKind
	wsum  int

	readBatch int
	dataPages int64 // (WarehouseBase+Warehouses) * PagesPerWarehouse

	// Buffer pool: page id -> residency, plus the dirty set, under one
	// mutex. Misses claim the frame before the physical read (concurrent
	// terminals do not double-read a page they both miss... they may,
	// rarely, in the window before the read lands; the claim makes the
	// second toucher a hit, which is the same forgiveness the sim engine
	// extends).
	mu    sync.Mutex
	pool  *mqcache.LRU
	dirty map[int64]bool

	cleanQ chan int64

	logMu      sync.Mutex
	logBytes   int
	logWaiters []chan struct{}
	logSlot    int64
	logKick    chan struct{}

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	arrivalC chan time.Time

	measuring atomic.Bool
	lat       []*obs.Hist // per-kind commit latency, measurement window only

	// srvAcc banks per-kind server-side stage time: each terminal
	// accumulates spans locally across one transaction's demand reads
	// (via a SpanView of the store) and folds them in at commit. Atomic
	// because terminals running the same kind commit concurrently.
	srvAcc []srvKindAcc

	physReads  atomic.Int64
	physWrites atomic.Int64
	logFlushes atomic.Int64
	refs       atomic.Int64
	hits       atomic.Int64
	errTx      atomic.Int64
	overflows  atomic.Int64 // open-loop arrivals dropped on a full queue

	snapAt [2]counterSnap // begin/end of the measurement window
}

// srvKindAcc is one tx kind's banked server-stage totals.
type srvKindAcc struct {
	n, sched, cpu, diskq, device atomic.Int64
}

func (a *srvKindAcc) fold(src *SrvSpanAcc) {
	if src.N == 0 {
		return
	}
	a.n.Add(src.N)
	a.sched.Add(src.SchedNS)
	a.cpu.Add(src.CPUNS)
	a.diskq.Add(src.DiskQNS)
	a.device.Add(src.DeviceNS)
}

type counterSnap struct {
	physReads, physWrites, logFlushes, refs, hits, errTx, overflows int64
}

func (e *Engine) snap() counterSnap {
	return counterSnap{
		physReads:  e.physReads.Load(),
		physWrites: e.physWrites.Load(),
		logFlushes: e.logFlushes.Load(),
		refs:       e.refs.Load(),
		hits:       e.hits.Load(),
		errTx:      e.errTx.Load(),
		overflows:  e.overflows.Load(),
	}
}

// New validates cfg, applies defaults, and builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Store == nil {
		return nil, errors.New("workload: Config.Store is required")
	}
	if len(cfg.Kinds) == 0 {
		return nil, errors.New("workload: Config.Kinds is required")
	}
	if cfg.Terminals <= 0 {
		cfg.Terminals = 8
	}
	if cfg.Warehouses <= 0 {
		cfg.Warehouses = 1
	}
	if cfg.PagesPerWarehouse <= 0 {
		cfg.PagesPerWarehouse = PagesPerWarehouse
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 8192
	}
	if cfg.BufferPoolPages <= 0 {
		cfg.BufferPoolPages = int(int64(cfg.Warehouses) * cfg.PagesPerWarehouse / 8)
		if cfg.BufferPoolPages < 64 {
			cfg.BufferPoolPages = 64
		}
	}
	if cfg.ReadBatch <= 0 {
		cfg.ReadBatch = 6
	}
	if cfg.Cleaners <= 0 {
		cfg.Cleaners = 4
	}
	if cfg.GroupCommit <= 0 {
		cfg.GroupCommit = 2 * time.Millisecond
	}
	if cfg.LogSlots <= 0 {
		cfg.LogSlots = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	wsum := 0
	for _, k := range cfg.Kinds {
		if k.Weight <= 0 {
			return nil, fmt.Errorf("workload: kind %q needs Weight > 0", k.Name)
		}
		wsum += k.Weight
	}
	if cfg.WarehouseBase < 0 {
		return nil, errors.New("workload: WarehouseBase must be >= 0")
	}
	dataPages := int64(cfg.WarehouseBase+cfg.Warehouses) * cfg.PagesPerWarehouse
	need := cfg.LogSlots*logSlotBytes + dataPages*int64(cfg.PageSize)
	if got := cfg.Store.Size(); got < need {
		return nil, fmt.Errorf("workload: volume too small: need %d bytes (%d log slots + %d pages), have %d",
			need, cfg.LogSlots, dataPages, got)
	}
	rb := cfg.ReadBatch
	if lim := cfg.Store.BatchLimit(); rb > lim {
		rb = lim // the fan-out clamp rule; see PageStore
	}
	e := &Engine{
		cfg:       cfg,
		store:     cfg.Store,
		kinds:     cfg.Kinds,
		wsum:      wsum,
		readBatch: rb,
		dataPages: dataPages,
		pool:      mqcache.NewLRU(cfg.BufferPoolPages),
		dirty:     make(map[int64]bool),
		cleanQ:    make(chan int64, 8192),
		logKick:   make(chan struct{}, 1),
		stop:      make(chan struct{}),
		lat:       make([]*obs.Hist, len(cfg.Kinds)),
		srvAcc:    make([]srvKindAcc, len(cfg.Kinds)),
	}
	for i := range e.lat {
		e.lat[i] = &obs.Hist{}
	}
	if r := cfg.Metrics; r != nil {
		// The per-kind hists double as the registry's: Observe feeds both
		// the live scrape and the end-of-run Result snapshot.
		for i, k := range cfg.Kinds {
			e.lat[i] = r.Hist(fmt.Sprintf(`workload_tx_ns{kind=%q}`, k.Name))
		}
		r.GaugeFunc("workload_page_refs_total", e.refs.Load)
		r.GaugeFunc("workload_pool_hits_total", e.hits.Load)
		r.GaugeFunc("workload_phys_reads_total", e.physReads.Load)
		r.GaugeFunc("workload_phys_writes_total", e.physWrites.Load)
		r.GaugeFunc("workload_log_flushes_total", e.logFlushes.Load)
		r.GaugeFunc("workload_tx_errors_total", e.errTx.Load)
		r.GaugeFunc("workload_arrival_overflows_total", e.overflows.Load)
	}
	return e, nil
}

// Run executes the workload: warmup (cold caches fill, counters and
// latency histograms discarded) then a measured window, and returns the
// Result. Single-shot; the engine cannot be reused after Run returns.
func (e *Engine) Run(warmup, measure time.Duration) (*Result, error) {
	arr, err := NewArrival(e.cfg.Arrival, rand.New(rand.NewSource(e.cfg.Seed)))
	if err != nil {
		return nil, err
	}
	if arr != nil {
		// Created before any terminal starts: terminals dispatch on the
		// channel's nil-ness to pick closed- vs open-loop behaviour.
		e.arrivalC = make(chan time.Time, 16384)
	}

	// One shared sequential cursor per warehouse keeps a scan-heavy
	// workload's reads actually sequential when several terminals share
	// a partition — the stream shape the server's prefetcher detects.
	var whSeq []Dist
	if e.cfg.Dist.Kind == DistSeq {
		whSeq = make([]Dist, e.cfg.Warehouses)
		for w := range whSeq {
			whSeq[w] = NewDist(e.cfg.Dist, nil, e.cfg.PagesPerWarehouse)
		}
	}

	for t := 0; t < e.cfg.Terminals; t++ {
		rng := rand.New(rand.NewSource(e.cfg.Seed + int64(t)*0x9E3779B9 + 1))
		wh := t % e.cfg.Warehouses
		var dist Dist
		if whSeq != nil {
			dist = SharedSeq(whSeq[wh])
		} else {
			dist = NewDist(e.cfg.Dist, rng, e.cfg.PagesPerWarehouse)
		}
		e.wg.Add(1)
		go e.terminal(t, wh, rng, dist)
	}
	for i := 0; i < e.cfg.Cleaners; i++ {
		e.wg.Add(1)
		go e.cleaner()
	}
	e.wg.Add(1)
	go e.logWriter()
	if arr != nil {
		e.wg.Add(1)
		go e.arrivals(arr)
	}

	time.Sleep(warmup)
	e.snapAt[0] = e.snap()
	e.measuring.Store(true)
	t0 := time.Now()
	time.Sleep(measure)
	e.measuring.Store(false)
	elapsed := time.Since(t0)
	e.snapAt[1] = e.snap()

	e.stopOnce.Do(func() { close(e.stop) })
	e.wg.Wait()
	return e.result(elapsed), nil
}

// arrivals is the open-loop generator: it walks wall-clock arrival
// times from the arrival process and queues each as a token. A full
// queue drops the token (counted) instead of blocking — an open loop
// that blocks on its own consumers has silently become a closed one.
func (e *Engine) arrivals(arr Arrival) {
	defer e.wg.Done()
	defer close(e.arrivalC)
	next := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for {
		next = next.Add(arr.Gap())
		d := time.Until(next)
		if d > 0 {
			timer.Reset(d)
			select {
			case <-e.stop:
				return
			case <-timer.C:
			}
		} else {
			select {
			case <-e.stop:
				return
			default:
			}
		}
		select {
		case e.arrivalC <- next:
		default:
			e.overflows.Add(1)
		}
	}
}

// terminal is one transaction goroutine: a closed-loop terminal, or an
// open-loop executor draining the arrival queue.
func (e *Engine) terminal(id, wh int, rng *rand.Rand, dist Dist) {
	defer e.wg.Done()
	tx := newTxState(e, rng, dist, wh)
	for {
		var issued time.Time
		if e.arrivalC != nil {
			select {
			case <-e.stop:
				return
			case at, ok := <-e.arrivalC:
				if !ok {
					return
				}
				issued = at // open loop: latency includes queueing delay
			}
		} else {
			select {
			case <-e.stop:
				return
			default:
			}
			issued = time.Now()
		}
		ki := e.pickKind(rng)
		err := e.runTx(tx, &e.kinds[ki])
		switch {
		case err == errStopped:
			return
		case err != nil:
			e.errTx.Add(1)
		default:
			if e.measuring.Load() {
				e.lat[ki].Observe(time.Since(issued).Nanoseconds())
				e.srvAcc[ki].fold(&tx.acc)
			}
		}
		tx.acc = SrvSpanAcc{} // never leak one tx's spans into the next
		if think := e.cfg.Arrival.ThinkTime; think > 0 && e.arrivalC == nil {
			timer := time.NewTimer(think)
			select {
			case <-e.stop:
				timer.Stop()
				return
			case <-timer.C:
			}
		}
	}
}

func (e *Engine) pickKind(rng *rand.Rand) int {
	v := rng.Intn(e.wsum)
	for i, k := range e.kinds {
		if v < k.Weight {
			return i
		}
		v -= k.Weight
	}
	return len(e.kinds) - 1
}

// txState is a terminal's reusable per-transaction scratch: the pending
// miss batch and its page buffers, allocated once.
type txState struct {
	e    *Engine
	rng  *rand.Rand
	dist Dist
	wh   int

	pending []int64
	bufs    [][]byte

	// store is the terminal's view of the engine store: a SpanView
	// attributing demand-read server spans into acc when the adapter
	// supports it, else the shared store itself.
	store PageStore
	acc   SrvSpanAcc
}

func newTxState(e *Engine, rng *rand.Rand, dist Dist, wh int) *txState {
	bufs := make([][]byte, e.readBatch)
	for i := range bufs {
		bufs[i] = make([]byte, e.cfg.PageSize)
	}
	t := &txState{e: e, rng: rng, dist: dist, wh: wh, bufs: bufs, store: e.store}
	if sa, ok := e.store.(SpanAttributor); ok {
		t.store = sa.SpanView(&t.acc)
	}
	return t
}

// flush overlaps the pending miss batch through the store.
func (t *txState) flush() error {
	if len(t.pending) == 0 {
		return nil
	}
	offs := t.pending
	t.pending = t.pending[:0]
	t.e.physReads.Add(int64(len(offs)))
	return t.store.ReadPages(offs, t.bufs[:len(offs)])
}

// runTx executes one transaction: page touches through the buffer pool
// with read-ahead batching of misses, dirty marks for writes, and a
// group-commit log append.
func (e *Engine) runTx(t *txState, k *TxKind) error {
	touches := func(n int, write bool) error {
		for i := 0; i < n; i++ {
			select {
			case <-e.stop:
				return errStopped
			default:
			}
			if off, miss := e.touch(t, k, write); miss {
				t.pending = append(t.pending, off)
				if len(t.pending) >= e.readBatch {
					if err := t.flush(); err != nil {
						return err
					}
				}
			}
		}
		return t.flush()
	}
	if err := touches(k.Reads, false); err != nil {
		return err
	}
	if err := touches(k.Writes, true); err != nil {
		return err
	}
	if k.LogBytes > 0 {
		return e.commitLog(k.LogBytes)
	}
	return nil
}

// touch references one page through the buffer pool and returns its
// volume offset plus whether it missed (needs a physical read). A miss
// claims the frame immediately; a dirty eviction rides the cleaner
// queue, degrading to an inline write-through when the queue is full
// (backpressure instead of unbounded dirty backlog).
func (e *Engine) touch(t *txState, k *TxKind, write bool) (int64, bool) {
	wh := t.wh
	if k.Remote > 0 && e.cfg.Warehouses > 1 && t.rng.Float64() < k.Remote {
		wh = t.rng.Intn(e.cfg.Warehouses)
	}
	page := int64(e.cfg.WarehouseBase+wh)*e.cfg.PagesPerWarehouse + t.dist.Pick()%e.cfg.PagesPerWarehouse

	var cleanInline int64 = -1
	e.mu.Lock()
	e.refs.Add(1)
	hit, victim, evicted := e.pool.RefOrInsert(uint64(page))
	if hit {
		e.hits.Add(1)
	} else if evicted {
		vp := int64(victim)
		if e.dirty[vp] {
			delete(e.dirty, vp)
			select {
			case e.cleanQ <- vp:
			default:
				cleanInline = vp
			}
		}
	}
	if write {
		e.dirty[page] = true
	}
	e.mu.Unlock()

	if cleanInline >= 0 {
		e.writeBack(cleanInline, t.bufs[0][:0])
	}
	return e.pageOffset(page), !hit
}

// pageOffset maps a data page past the reserved log region.
func (e *Engine) pageOffset(page int64) int64 {
	return e.cfg.LogSlots*logSlotBytes + page*int64(e.cfg.PageSize)
}

// writeBack commits one dirty page to the store. buf is scratch; the
// engine is I/O-shape-faithful, not content-faithful, so the payload is
// whatever the scratch holds.
func (e *Engine) writeBack(page int64, scratch []byte) {
	buf := scratch
	if cap(buf) < e.cfg.PageSize {
		buf = make([]byte, e.cfg.PageSize)
	}
	buf = buf[:e.cfg.PageSize]
	e.physWrites.Add(1)
	if err := e.store.WritePage(e.pageOffset(page), buf); err != nil {
		e.errTx.Add(1)
	}
}

// cleaner drains dirty evictions until shutdown, then drains whatever
// is left in the queue so acked dirty state is not simply dropped.
func (e *Engine) cleaner() {
	defer e.wg.Done()
	buf := make([]byte, e.cfg.PageSize)
	for {
		select {
		case page := <-e.cleanQ:
			e.writeBack(page, buf)
		case <-e.stop:
			for {
				select {
				case page := <-e.cleanQ:
					e.writeBack(page, buf)
				default:
					return
				}
			}
		}
	}
}

// commitLog appends to the group-commit buffer and waits for the flush
// barrier that covers this commit. A full slot kicks the writer early.
func (e *Engine) commitLog(n int) error {
	ch := make(chan struct{})
	e.logMu.Lock()
	e.logBytes += n
	e.logWaiters = append(e.logWaiters, ch)
	kick := e.logBytes >= logSlotBytes
	e.logMu.Unlock()
	if kick {
		select {
		case e.logKick <- struct{}{}:
		default:
		}
	}
	select {
	case <-ch:
		return nil
	case <-e.stop:
		return errStopped
	}
}

// logWriter is the group-commit log stream: every GroupCommit interval
// (or sooner, when a slot's worth of bytes accumulated) it writes one
// 64 KB slot into the sequential log region and then issues the store's
// Flush barrier — commits are durable, not merely acknowledged, before
// their waiters wake. This is the real-path version of the sim engine's
// logWriter with the durability barrier the real stack actually has.
func (e *Engine) logWriter() {
	defer e.wg.Done()
	buf := make([]byte, logSlotBytes)
	tick := time.NewTicker(e.cfg.GroupCommit)
	defer tick.Stop()
	flush := func() {
		e.logMu.Lock()
		bytes, waiters := e.logBytes, e.logWaiters
		e.logBytes, e.logWaiters = 0, nil
		slot := e.logSlot % e.cfg.LogSlots
		if len(waiters) > 0 {
			e.logSlot++
		}
		e.logMu.Unlock()
		if bytes == 0 && len(waiters) == 0 {
			return
		}
		if err := e.store.WritePage(slot*logSlotBytes, buf); err == nil {
			if err := e.store.Flush(); err != nil {
				e.errTx.Add(1)
			}
		} else {
			e.errTx.Add(1)
		}
		e.logFlushes.Add(1)
		for _, ch := range waiters {
			close(ch)
		}
	}
	for {
		select {
		case <-tick.C:
			flush()
		case <-e.logKick:
			flush()
		case <-e.stop:
			flush()
			return
		}
	}
}

// result assembles the measurement window's Result.
func (e *Engine) result(elapsed time.Duration) *Result {
	r := &Result{Measure: elapsed}
	d0, d1 := e.snapAt[0], e.snapAt[1]
	r.PhysReads = d1.physReads - d0.physReads
	r.PhysWrites = d1.physWrites - d0.physWrites
	r.LogFlushes = d1.logFlushes - d0.logFlushes
	r.Refs = d1.refs - d0.refs
	r.Hits = d1.hits - d0.hits
	r.Errors = d1.errTx - d0.errTx
	r.Overflows = d1.overflows - d0.overflows
	for i, k := range e.kinds {
		a := &e.srvAcc[i]
		r.Kinds = append(r.Kinds, KindStat{
			Name: k.Name,
			Lat:  e.lat[i].Snapshot(),
			Srv: SrvStageStat{
				N:        a.n.Load(),
				SchedNS:  a.sched.Load(),
				CPUNS:    a.cpu.Load(),
				DiskQNS:  a.diskq.Load(),
				DeviceNS: a.device.Load(),
			},
		})
	}
	if e.cfg.E2E != nil {
		r.E2E = e.cfg.E2E.Snapshot()
	}
	r.finish()
	return r
}
