package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"
)

// DistKind selects a key (page) distribution.
type DistKind int

const (
	// DistUniform draws every page with equal probability.
	DistUniform DistKind = iota
	// DistZipf draws pages Zipfian (hot-key skew): page rank k is drawn
	// with probability proportional to 1/(v+k)^theta. The engine
	// shuffles ranks onto pages with a multiplicative hash so the hot
	// set is scattered across the partition instead of clustered at
	// offset zero — hot keys, not hot cylinders.
	DistZipf
	// DistSeq walks the partition sequentially (scan-heavy): each draw
	// returns the next page after the previous one, shared across the
	// terminals drawing from the same generator, wrapping at the end.
	// This is the shape the server's read-ahead prefetcher detects.
	DistSeq
)

func (k DistKind) String() string {
	switch k {
	case DistZipf:
		return "zipf"
	case DistSeq:
		return "seq"
	}
	return "uniform"
}

// DistSpec configures a key distribution.
type DistSpec struct {
	Kind DistKind
	// Theta is the Zipf exponent (DistZipf only); must be > 1. 0 selects
	// 1.2, which puts roughly 70% of the mass on the top 1% of a 100k
	// key space — the hot-key shape TPC-C's NURand produces.
	Theta float64
	// ZipfV is the Zipf value offset (>= 1); 0 selects 1.
	ZipfV float64
}

// Dist draws pages in [0, n) for a fixed n chosen at construction.
// Implementations are NOT safe for concurrent use unless documented;
// each terminal owns its own Dist (DistSeq shares a cursor by design).
type Dist interface {
	// Pick returns the next page index in [0, n).
	Pick() int64
	// N returns the key-space size the distribution was bound to.
	N() int64
}

// NewDist builds a distribution over [0, n) driven by r. For DistSeq
// the returned generator owns a fresh cursor; use SharedSeq to make
// several terminals walk one scan together.
func NewDist(spec DistSpec, r *rand.Rand, n int64) Dist {
	if n <= 0 {
		panic("workload: empty key space")
	}
	switch spec.Kind {
	case DistZipf:
		theta := spec.Theta
		if theta == 0 {
			theta = 1.2
		}
		v := spec.ZipfV
		if v < 1 {
			v = 1
		}
		return &zipfDist{z: rand.NewZipf(r, theta, v, uint64(n-1)), n: n}
	case DistSeq:
		return &seqDist{cur: new(atomic.Int64), n: n}
	default:
		return &uniformDist{r: r, n: n}
	}
}

type uniformDist struct {
	r *rand.Rand
	n int64
}

func (d *uniformDist) Pick() int64 { return d.r.Int63n(d.n) }
func (d *uniformDist) N() int64    { return d.n }

// zipfDist scatters Zipf ranks over the key space with a Fibonacci
// multiplicative hash: rank 0 (the hottest key) always lands on the
// same page for a given n, but neighboring ranks do not land on
// neighboring pages.
type zipfDist struct {
	z *rand.Zipf
	n int64
}

func (d *zipfDist) Pick() int64 {
	rank := d.z.Uint64()
	return int64((rank * 0x9E3779B97F4A7C15) % uint64(d.n))
}
func (d *zipfDist) N() int64 { return d.n }

// ZipfRank exposes the raw rank draw for tests that check the skew
// against the analytic mass distribution.
func (d *zipfDist) ZipfRank() uint64 { return d.z.Uint64() }

type seqDist struct {
	cur *atomic.Int64
	n   int64
}

func (d *seqDist) Pick() int64 { return (d.cur.Add(1) - 1) % d.n }
func (d *seqDist) N() int64    { return d.n }

// SharedSeq returns a sequential distribution over [0, n) whose cursor
// is shared with prev (which must come from DistSeq); terminals using
// the shares interleave on one global scan.
func SharedSeq(prev Dist) Dist {
	s, ok := prev.(*seqDist)
	if !ok {
		panic("workload: SharedSeq needs a DistSeq generator")
	}
	return &seqDist{cur: s.cur, n: s.n}
}

// ArrivalKind selects the transaction arrival process.
type ArrivalKind int

const (
	// ArrivalClosed is the closed loop: each terminal issues its next
	// transaction as soon as the previous one commits (plus ThinkTime).
	// Throughput is set by latency; this is the TPC-C terminal shape.
	ArrivalClosed ArrivalKind = iota
	// ArrivalPoisson is the open loop: transactions arrive Poisson at
	// Rate per second regardless of completions, and latency includes
	// the queueing delay behind slow service — the load shape that
	// exposes latency cliffs a closed loop hides.
	ArrivalPoisson
	// ArrivalBursty is an on/off modulated Poisson: Poisson at Rate
	// during On phases, silent during Off phases. Mean rate is
	// Rate*On/(On+Off); the bursts probe how the stack absorbs arrival
	// clumps (credit windows, admission queues, destage backlog).
	ArrivalBursty
)

func (k ArrivalKind) String() string {
	switch k {
	case ArrivalPoisson:
		return "poisson"
	case ArrivalBursty:
		return "bursty"
	}
	return "closed"
}

// ArrivalSpec configures the arrival process.
type ArrivalSpec struct {
	Kind ArrivalKind
	// ThinkTime is the closed loop's per-terminal pause between commit
	// and next issue (TPC-C keying/think time, scaled); 0 is
	// back-to-back.
	ThinkTime time.Duration
	// Rate is the open-loop arrival rate in transactions per second
	// (Poisson and the bursty On phase). Required for open loops.
	Rate float64
	// BurstOn and BurstOff are the bursty phase lengths; 0 selects
	// 200ms/200ms.
	BurstOn, BurstOff time.Duration
}

// Arrival generates inter-arrival gaps. Not safe for concurrent use;
// the engine drives one Arrival from one generator goroutine.
type Arrival interface {
	// Gap returns the time to the next arrival after the current one.
	Gap() time.Duration
}

// NewArrival builds the arrival process for spec driven by r. Returns
// nil for ArrivalClosed: the closed loop has no arrival generator —
// completions are the clock.
func NewArrival(spec ArrivalSpec, r *rand.Rand) (Arrival, error) {
	switch spec.Kind {
	case ArrivalClosed:
		return nil, nil
	case ArrivalPoisson:
		if spec.Rate <= 0 {
			return nil, fmt.Errorf("workload: poisson arrivals need Rate > 0")
		}
		return &poissonArrival{r: r, rate: spec.Rate}, nil
	case ArrivalBursty:
		if spec.Rate <= 0 {
			return nil, fmt.Errorf("workload: bursty arrivals need Rate > 0")
		}
		on, off := spec.BurstOn, spec.BurstOff
		if on <= 0 {
			on = 200 * time.Millisecond
		}
		if off <= 0 {
			off = 200 * time.Millisecond
		}
		return &burstyArrival{r: r, rate: spec.Rate, on: on, off: off, left: on}, nil
	}
	return nil, fmt.Errorf("workload: unknown arrival kind %d", spec.Kind)
}

type poissonArrival struct {
	r    *rand.Rand
	rate float64
}

// Gap draws Exp(rate): -ln(U)/rate.
func (a *poissonArrival) Gap() time.Duration {
	return expGap(a.r, a.rate)
}

func expGap(r *rand.Rand, rate float64) time.Duration {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return time.Duration(-math.Log(u) / rate * float64(time.Second))
}

// burstyArrival alternates On phases (Poisson at rate) and Off phases
// (silence). A gap that crosses one or more phase boundaries accumulates
// the Off time it passes over.
type burstyArrival struct {
	r       *rand.Rand
	rate    float64
	on, off time.Duration
	left    time.Duration // remaining On time in the current phase
}

func (a *burstyArrival) Gap() time.Duration {
	gap := expGap(a.r, a.rate)
	// Consume On-phase budget; every exhausted On phase inserts one Off
	// phase of silence before the arrival lands.
	extra := time.Duration(0)
	for gap > a.left {
		gap -= a.left
		a.left = a.on
		extra += a.off
	}
	a.left -= gap
	return gap + extra
}
