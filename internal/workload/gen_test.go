package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestDistDeterministic: same spec + same seed must reproduce the same
// draw sequence — benchmark runs are comparable only if the offered
// page stream is.
func TestDistDeterministic(t *testing.T) {
	for _, spec := range []DistSpec{
		{Kind: DistUniform},
		{Kind: DistZipf},
		{Kind: DistZipf, Theta: 1.5, ZipfV: 2},
		{Kind: DistSeq},
	} {
		a := NewDist(spec, rand.New(rand.NewSource(42)), 10000)
		b := NewDist(spec, rand.New(rand.NewSource(42)), 10000)
		for i := 0; i < 4096; i++ {
			x, y := a.Pick(), b.Pick()
			if x != y {
				t.Fatalf("%v draw %d diverged: %d vs %d", spec.Kind, i, x, y)
			}
			if x < 0 || x >= 10000 {
				t.Fatalf("%v draw %d out of range: %d", spec.Kind, i, x)
			}
		}
	}
}

// TestDistSeqShared: SharedSeq shares are one global scan with no gaps
// or repeats across shares.
func TestDistSeqShared(t *testing.T) {
	base := NewDist(DistSpec{Kind: DistSeq}, nil, 1000)
	other := SharedSeq(base)
	seen := make(map[int64]bool)
	for i := 0; i < 500; i++ {
		seen[base.Pick()] = true
		seen[other.Pick()] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("two shares drew %d distinct pages, want 1000", len(seen))
	}
}

// TestZipfSkew: the rank distribution's top-1% mass must match the
// analytic Zipf pmf within tolerance — the knob the hot-key workloads
// hang off of actually has to be skewed the amount it claims.
func TestZipfSkew(t *testing.T) {
	const n = 10000
	const draws = 400000
	const theta, v = 1.2, 1.0
	d := NewDist(DistSpec{Kind: DistZipf}, rand.New(rand.NewSource(7)), n)
	zd, ok := d.(*zipfDist)
	if !ok {
		t.Fatalf("DistZipf built %T", d)
	}
	hot := int64(0)
	for i := 0; i < draws; i++ {
		if zd.ZipfRank() < n/100 {
			hot++
		}
	}
	got := float64(hot) / draws

	// Analytic mass of ranks [0, n/100): pmf(k) ∝ 1/(v+k)^theta.
	var top, total float64
	for k := 0; k < n; k++ {
		p := math.Pow(v+float64(k), -theta)
		total += p
		if k < n/100 {
			top += p
		}
	}
	want := top / total
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("top-1%% mass = %.3f, analytic %.3f (tolerance 0.03)", got, want)
	}
	if want < 0.5 {
		t.Fatalf("analytic top-1%% mass %.3f is not hot-key shaped; check defaults", want)
	}
}

// TestZipfScatter: the hash scatter must spread the hot ranks across
// the partition instead of clustering them at offset zero.
func TestZipfScatter(t *testing.T) {
	const n = 10000
	d := NewDist(DistSpec{Kind: DistZipf}, rand.New(rand.NewSource(7)), n)
	low := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if d.Pick() < n/10 {
			low++
		}
	}
	// Unscattered Zipf would put ~90+% of draws in the first tenth of the
	// key space; scattered, the hot set lands all over. Just require that
	// the bottom tenth is not a hot cylinder.
	if frac := float64(low) / draws; frac > 0.5 {
		t.Fatalf("%.1f%% of draws in the bottom 10%% of pages; scatter is not working", 100*frac)
	}
}

// TestPoissonMean: inter-arrival mean must track 1/Rate.
func TestPoissonMean(t *testing.T) {
	const rate = 1000.0
	a, err := NewArrival(ArrivalSpec{Kind: ArrivalPoisson, Rate: rate}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	const draws = 200000
	var sum time.Duration
	for i := 0; i < draws; i++ {
		g := a.Gap()
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		sum += g
	}
	mean := sum.Seconds() / draws
	want := 1 / rate
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("poisson mean gap %.6fs, want %.6fs ±5%%", mean, want)
	}
}

// TestBurstyMeanRate: the on/off modulated process must deliver the
// advertised mean rate Rate·On/(On+Off), and the arrivals must actually
// clump (on-phase local rate ≈ Rate, not the mean).
func TestBurstyMeanRate(t *testing.T) {
	const rate = 2000.0
	on, off := 100*time.Millisecond, 300*time.Millisecond
	a, err := NewArrival(ArrivalSpec{Kind: ArrivalBursty, Rate: rate, BurstOn: on, BurstOff: off},
		rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	const draws = 200000
	var sum time.Duration
	short := 0 // gaps that look like on-phase Poisson (no off insertion)
	var shortSum time.Duration
	for i := 0; i < draws; i++ {
		g := a.Gap()
		sum += g
		if g < off {
			short++
			shortSum += g
		}
	}
	got := draws / sum.Seconds()
	want := rate * on.Seconds() / (on + off).Seconds() // 500/s
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("bursty mean rate %.1f/s, want %.1f/s ±5%%", got, want)
	}
	onRate := float64(short) / shortSum.Seconds()
	if math.Abs(onRate-rate)/rate > 0.10 {
		t.Fatalf("on-phase local rate %.1f/s, want %.1f/s ±10%% — arrivals are not clumping", onRate, rate)
	}
}

// TestArrivalDeterministic: fixed seed reproduces the gap sequence.
func TestArrivalDeterministic(t *testing.T) {
	for _, spec := range []ArrivalSpec{
		{Kind: ArrivalPoisson, Rate: 500},
		{Kind: ArrivalBursty, Rate: 500},
	} {
		a, err := NewArrival(spec, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewArrival(spec, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10000; i++ {
			if x, y := a.Gap(), b.Gap(); x != y {
				t.Fatalf("%v gap %d diverged: %v vs %v", spec.Kind, i, x, y)
			}
		}
	}
}

// TestArrivalValidation: open loops require a rate; closed loops have
// no generator at all.
func TestArrivalValidation(t *testing.T) {
	if a, err := NewArrival(ArrivalSpec{Kind: ArrivalClosed}, nil); err != nil || a != nil {
		t.Fatalf("closed loop: got (%v, %v), want (nil, nil)", a, err)
	}
	if _, err := NewArrival(ArrivalSpec{Kind: ArrivalPoisson}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("poisson without Rate must error")
	}
	if _, err := NewArrival(ArrivalSpec{Kind: ArrivalBursty}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("bursty without Rate must error")
	}
}

// TestTPCCKindsMix: the real-path mix must stay weight-identical to the
// simulated engine's.
func TestTPCCKindsMix(t *testing.T) {
	kinds := TPCCKinds()
	if len(kinds) != 5 {
		t.Fatalf("got %d kinds, want 5", len(kinds))
	}
	total := 0
	for _, k := range kinds {
		total += k.Weight
	}
	if total != 100 {
		t.Fatalf("mix weights sum to %d, want 100", total)
	}
	if kinds[0].Name != "NewOrder" || kinds[0].Weight != 45 {
		t.Fatalf("kind 0 = %+v, want NewOrder weight 45", kinds[0])
	}
}
