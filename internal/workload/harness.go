package workload

import (
	"fmt"

	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/obs"
	"github.com/v3storage/v3/internal/vvault"
)

// Cluster is a set of in-process v3d servers backed by RAM volumes —
// the default substrate for v3tpcc -net runs and the workload tests, so
// the whole TPC-C stack (client, wire protocol, server scheduler,
// cache, store) exercises for real without external processes.
type Cluster struct {
	servers []*netv3.Server
	addrs   []string
}

// StartCluster boots n servers, each exporting volume 1 as a volSize
// RAM store, listening on loopback ephemeral ports.
func StartCluster(n int, volSize int64, cfg netv3.ServerConfig) (*Cluster, error) {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		srv := netv3.NewServer(cfg)
		srv.AddVolume(1, netv3.NewMemStore(volSize))
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("workload: cluster listen: %w", err)
		}
		go srv.Serve()
		c.servers = append(c.servers, srv)
		c.addrs = append(c.addrs, addr.String())
	}
	return c, nil
}

// Addrs returns the servers' dial addresses.
func (c *Cluster) Addrs() []string { return c.addrs }

// Close shuts every server down.
func (c *Cluster) Close() {
	for _, s := range c.servers {
		s.Close()
	}
}

// StackConfig selects and instruments the real storage path under the
// engine.
type StackConfig struct {
	// Addrs are the v3d servers. One address opens a plain netv3
	// session; several open a vvault cluster volume.
	Addrs []string
	// Mirror selects RAID-1 over the backends (default RAID-0 striping).
	// Multi-address only.
	Mirror bool
	// VolSize is the usable bytes per backend volume. The engine sees
	// VolSize for one server or a mirror, len(Addrs)*VolSize striped.
	// Must be a multiple of 64 KB for striping.
	VolSize int64
	// Reg receives the netv3 client stage trace (ClientStageDefs); nil
	// disables tracing and the per-stage breakdown.
	Reg *obs.Registry
	// E2E receives the adapter's caller-measured request round trips
	// (see NetStore/VaultStore); may be nil.
	E2E *obs.Hist
}

// OpenStack dials sc and returns the engine's PageStore plus a close
// function for the underlying session(s).
func OpenStack(sc StackConfig) (PageStore, func() error, error) {
	ccfg := netv3.ClientConfig{Metrics: sc.Reg}
	if len(sc.Addrs) == 0 {
		return nil, nil, fmt.Errorf("workload: OpenStack needs at least one address")
	}
	if len(sc.Addrs) == 1 {
		cl, err := netv3.Dial(sc.Addrs[0], ccfg)
		if err != nil {
			return nil, nil, err
		}
		return NewNetStore(cl, 1, sc.VolSize, sc.E2E), cl.Close, nil
	}
	mode := vvault.ModeStripe
	if sc.Mirror {
		mode = vvault.ModeMirror
	}
	v, err := vvault.Open(sc.Addrs, vvault.Config{
		Mode:       mode,
		MemberSize: sc.VolSize,
		Client:     ccfg,
		Metrics:    sc.Reg,
	})
	if err != nil {
		return nil, nil, err
	}
	return NewVaultStore(v, sc.E2E), v.Close, nil
}
