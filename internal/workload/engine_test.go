package workload

import (
	"testing"
	"time"

	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/obs"
)

// testVolSize comfortably holds the scaled test layout: 64 log slots
// (4 MB) + warehouses*pages*8 KB, and is a 64 KB multiple for striping.
const testVolSize = 16 << 20

func testEngineConfig(store PageStore, e2e *obs.Hist) Config {
	return Config{
		Store:             store,
		Kinds:             TPCCKinds(),
		Terminals:         4,
		Warehouses:        2,
		PagesPerWarehouse: 512,
		BufferPoolPages:   256,
		Seed:              7,
		GroupCommit:       time.Millisecond,
		E2E:               e2e,
	}
}

func checkResult(t *testing.T, r *Result) {
	t.Helper()
	t.Logf("\n%s", r.Format())
	total := int64(0)
	for _, k := range r.Kinds {
		total += k.Count
	}
	if total == 0 {
		t.Fatal("no transactions committed in the measurement window")
	}
	if r.Errors != 0 {
		t.Fatalf("%d transaction errors", r.Errors)
	}
	if r.PhysReads == 0 || r.LogFlushes == 0 {
		t.Fatalf("engine did no physical I/O: %d reads, %d log flushes", r.PhysReads, r.LogFlushes)
	}
	if r.TpmC <= 0 || r.TxPerSec <= 0 {
		t.Fatalf("bad rates: tpmC=%.1f tx/s=%.1f", r.TpmC, r.TxPerSec)
	}
}

// TestEngineNetSmoke drives the multi-terminal TPC-C engine against one
// in-process v3d server (run under -race in CI) and checks the PR-4
// accounting discipline end to end: the client stage means must
// column-sum to the adapter's independently measured end-to-end mean.
func TestEngineNetSmoke(t *testing.T) {
	cl, err := StartCluster(1, testVolSize, netv3.DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	reg := obs.New()
	e2e := &obs.Hist{}
	store, closeStore, err := OpenStack(StackConfig{Addrs: cl.Addrs(), VolSize: testVolSize, Reg: reg, E2E: e2e})
	if err != nil {
		t.Fatal(err)
	}
	defer closeStore()

	if store.BatchLimit() < 1 {
		t.Fatalf("BatchLimit %d < 1", store.BatchLimit())
	}
	eng, err := New(testEngineConfig(store, e2e))
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.Run(100*time.Millisecond, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r)

	rows := obs.Breakdown(reg, netv3.ClientStageDefs())
	t.Logf("\n%s", obs.FormatBreakdown(rows, r.E2E.Mean()))
	if r.E2E.Count() == 0 {
		t.Fatal("no traced requests in the e2e histogram")
	}
	if dev := BreakdownDeviation(rows, r.E2E); dev > 0.15 {
		t.Fatalf("stage sum deviates %.1f%% from measured e2e mean (want <= 15%%)", 100*dev)
	}
}

// TestEngineVaultSmoke runs the same engine over a striped 2-backend
// vvault cluster volume.
func TestEngineVaultSmoke(t *testing.T) {
	cl, err := StartCluster(2, testVolSize, netv3.DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	e2e := &obs.Hist{}
	store, closeStore, err := OpenStack(StackConfig{Addrs: cl.Addrs(), VolSize: testVolSize, E2E: e2e})
	if err != nil {
		t.Fatal(err)
	}
	defer closeStore()

	if got := store.Size(); got != 2*testVolSize {
		t.Fatalf("striped x2 size = %d, want %d", got, 2*testVolSize)
	}
	eng, err := New(testEngineConfig(store, e2e))
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.Run(100*time.Millisecond, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r)
	if r.E2E.Count() == 0 {
		t.Fatal("vault adapter recorded no e2e samples")
	}
}

// TestEngineOpenLoop smokes the Poisson arrival path: open-loop
// executors drain the arrival queue and the commit count tracks the
// offered rate, not the terminal count.
func TestEngineOpenLoop(t *testing.T) {
	cl, err := StartCluster(1, testVolSize, netv3.DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	store, closeStore, err := OpenStack(StackConfig{Addrs: cl.Addrs(), VolSize: testVolSize})
	if err != nil {
		t.Fatal(err)
	}
	defer closeStore()

	cfg := testEngineConfig(store, nil)
	cfg.Kinds = SyntheticKind("poisson", 4, 1, 256)
	cfg.Dist = DistSpec{Kind: DistUniform}
	cfg.Arrival = ArrivalSpec{Kind: ArrivalPoisson, Rate: 500}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.Run(100*time.Millisecond, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r)
	if r.Overflows != 0 {
		t.Fatalf("arrival queue overflowed %d times at a trivial rate", r.Overflows)
	}
}

// TestEngineScanSeq smokes the scan-heavy shape: sequential distribution
// shared across terminals over the vault-free single-server path.
func TestEngineScanSeq(t *testing.T) {
	cl, err := StartCluster(1, testVolSize, netv3.DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	store, closeStore, err := OpenStack(StackConfig{Addrs: cl.Addrs(), VolSize: testVolSize})
	if err != nil {
		t.Fatal(err)
	}
	defer closeStore()

	cfg := testEngineConfig(store, nil)
	cfg.Kinds = SyntheticKind("scan", 16, 0, 0)
	cfg.Dist = DistSpec{Kind: DistSeq}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.Run(50*time.Millisecond, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r.Format())
	total := int64(0)
	for _, k := range r.Kinds {
		total += k.Count
	}
	if total == 0 || r.Errors != 0 {
		t.Fatalf("scan run: %d commits, %d errors", total, r.Errors)
	}
}

// TestEngineValidation exercises Config rejection paths.
func TestEngineValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil store must be rejected")
	}
	cl, err := StartCluster(1, 1<<20, netv3.DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	store, closeStore, err := OpenStack(StackConfig{Addrs: cl.Addrs(), VolSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer closeStore()
	if _, err := New(Config{Store: store, Kinds: TPCCKinds()}); err == nil {
		t.Fatal("volume smaller than layout must be rejected")
	}
	if _, err := New(Config{Store: store, Kinds: []TxKind{{Name: "w0"}}}); err == nil {
		t.Fatal("zero-weight kind must be rejected")
	}
}
