package workload

import (
	"github.com/v3storage/v3/internal/oltp"
)

// TxKind is one transaction type's demand on the engine: logical page
// reads and writes through the buffer pool, log bytes at commit, its
// weight in the mix, and the probability any one page touch crosses to
// a remote warehouse. The engine turns logical touches into physical
// I/O through the buffer pool, exactly like the simulated engine in
// internal/oltp — the difference is that here the I/O is real.
type TxKind struct {
	Name     string
	Reads    int
	Writes   int
	LogBytes int
	Weight   int
	// Remote is the probability one page touch targets a uniformly
	// chosen other warehouse instead of the terminal's home warehouse.
	Remote float64
}

// TPCCKinds returns the five TPC-C transactions with the paper's mix
// weights and per-type demand profiles, shared with the simulated
// engine via internal/oltp (Profiles, MixWeights) so the two tiers can
// never drift. Remote-warehouse probabilities approximate the spec's
// cross-warehouse traffic: ~1% of New-Order items (≈10% of
// transactions touch a remote stock page) and 15% of Payments.
func TPCCKinds() []TxKind {
	profiles := oltp.Profiles()
	weights := oltp.MixWeights()
	remote := map[oltp.TxType]float64{oltp.NewOrder: 0.01, oltp.Payment: 0.15}
	kinds := make([]TxKind, 0, len(profiles))
	for t, p := range profiles {
		kinds = append(kinds, TxKind{
			Name:     oltp.TxType(t).String(),
			Reads:    p.PageReads,
			Writes:   p.PageWrite,
			LogBytes: p.LogBytes,
			Weight:   weights[t],
			Remote:   remote[oltp.TxType(t)],
		})
	}
	return kinds
}

// SyntheticKind returns a single-type mix: a transaction of reads+writes
// page touches and logBytes of commit log. The synthetic workloads
// (uniform, Zipfian hot-key, scan-heavy, bursty) are this kind under
// different distributions and arrival processes.
func SyntheticKind(name string, reads, writes, logBytes int) []TxKind {
	return []TxKind{{Name: name, Reads: reads, Writes: writes, LogBytes: logBytes, Weight: 1}}
}

// PagesPerWarehouse is the scaled default data footprint of one
// warehouse in pages; the full-size figure is oltp.PagesPerWarehouse
// (~100 MB), this default keeps an in-process multi-warehouse run in
// RAM. Override with Config.PagesPerWarehouse.
const PagesPerWarehouse = 2048
