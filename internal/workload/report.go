package workload

import (
	"fmt"
	"strings"
	"time"

	"github.com/v3storage/v3/internal/obs"
)

// SrvStageStat is one transaction type's server-side stage attribution:
// span totals harvested from the traced demand reads committed inside
// that type's transactions. N is the traced-request count the totals
// cover; zero when the path is untraced (old peer, NoTrace) or the
// adapter cannot attribute (VaultStore).
type SrvStageStat struct {
	N        int64 `json:"n"`
	SchedNS  int64 `json:"sched_ns"`
	CPUNS    int64 `json:"cpu_ns"`
	DiskQNS  int64 `json:"diskq_ns"`
	DeviceNS int64 `json:"device_ns"`
}

// meanOf returns a per-request mean in float ns.
func (s SrvStageStat) meanOf(total int64) float64 {
	if s.N == 0 {
		return 0
	}
	return float64(total) / float64(s.N)
}

func (s *SrvStageStat) merge(o SrvStageStat) {
	s.N += o.N
	s.SchedNS += o.SchedNS
	s.CPUNS += o.CPUNS
	s.DiskQNS += o.DiskQNS
	s.DeviceNS += o.DeviceNS
}

// KindStat is one transaction type's measured outcome: a commit count,
// a latency histogram, and the server-side stage attribution of its
// demand reads, all over the measurement window.
type KindStat struct {
	Name  string           `json:"name"`
	Count int64            `json:"count"`
	Lat   obs.HistSnapshot `json:"lat"`
	Srv   SrvStageStat     `json:"srv"`
}

// Result is one measurement window's report: throughput, per-type
// latency, physical I/O, buffer-pool behaviour, and the adapter's
// caller-measured end-to-end histogram that the per-stage breakdown is
// checked against.
type Result struct {
	// Measure is the measured window's wall-clock length.
	Measure time.Duration `json:"measure"`
	// Kinds is the per-transaction-type breakdown, mix order.
	Kinds []KindStat `json:"kinds"`
	// TpmC is New-Order commits per minute — the TPC-C headline — or, for
	// a single-kind synthetic mix, that kind's commits per minute.
	TpmC float64 `json:"tpmC"`
	// TxPerSec is total commits per second across all kinds.
	TxPerSec float64 `json:"tx_per_sec"`
	// PhysReads/PhysWrites/LogFlushes count physical store operations:
	// buffer-pool miss reads, dirty write-backs, and group-commit
	// slot+barrier cycles.
	PhysReads  int64 `json:"phys_reads"`
	PhysWrites int64 `json:"phys_writes"`
	LogFlushes int64 `json:"log_flushes"`
	// Refs/Hits are buffer-pool references and hits.
	Refs int64 `json:"refs"`
	Hits int64 `json:"hits"`
	// Errors counts failed transactions and background write-back errors.
	Errors int64 `json:"errors"`
	// Overflows counts open-loop arrivals dropped because the arrival
	// queue was full — nonzero means the offered rate outran the stack
	// and the latency numbers undercount the true queueing.
	Overflows int64 `json:"overflows"`
	// E2E is the adapter-level caller-measured request histogram (the
	// traced population for a NetStore, every op for a VaultStore).
	E2E obs.HistSnapshot `json:"e2e"`
}

// finish derives the aggregate fields from the per-kind histograms.
func (r *Result) finish() {
	var total int64
	for i := range r.Kinds {
		r.Kinds[i].Count = r.Kinds[i].Lat.Count()
		total += r.Kinds[i].Count
	}
	secs := r.Measure.Seconds()
	if secs <= 0 {
		return
	}
	r.TxPerSec = float64(total) / secs
	headline := total
	for _, k := range r.Kinds {
		if k.Name == "NewOrder" {
			headline = k.Count
			break
		}
	}
	r.TpmC = float64(headline) / secs * 60
}

// HitRatio is the buffer pool's hit fraction over the window.
func (r *Result) HitRatio() float64 {
	if r.Refs == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Refs)
}

// Merge folds o into r: counts add, histograms merge, rates re-derive
// over r's window. Use it to aggregate per-client results from a
// multi-client run driving the same wall-clock window.
func (r *Result) Merge(o *Result) {
	for i := range r.Kinds {
		if i < len(o.Kinds) {
			r.Kinds[i].Lat.Merge(o.Kinds[i].Lat)
			r.Kinds[i].Srv.merge(o.Kinds[i].Srv)
		}
	}
	r.PhysReads += o.PhysReads
	r.PhysWrites += o.PhysWrites
	r.LogFlushes += o.LogFlushes
	r.Refs += o.Refs
	r.Hits += o.Hits
	r.Errors += o.Errors
	r.Overflows += o.Overflows
	r.E2E.Merge(o.E2E)
	r.finish()
}

func fmtMs(ns float64) string {
	return time.Duration(int64(ns)).Round(time.Microsecond).String()
}

// Format renders the window report: throughput headline, the per-type
// latency table, and the physical-I/O line.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "window %v: %.0f tpmC, %.1f tx/s, pool hit %.1f%%\n",
		r.Measure.Round(time.Millisecond), r.TpmC, r.TxPerSec, 100*r.HitRatio())
	srv := false
	for _, k := range r.Kinds {
		if k.Srv.N > 0 {
			srv = true
			break
		}
	}
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %10s", "tx", "count", "mean", "p50", "p95", "p99")
	if srv {
		// Per-request means of the server span block, attributed to the
		// type's own traced demand reads — the paper's breakdown columns
		// carried through to the transaction mix.
		fmt.Fprintf(&b, " %10s %10s %10s %10s %10s",
			"srv.n", "srv.sched", "srv.cpu", "srv.dq", "srv.dev")
	}
	b.WriteByte('\n')
	for _, k := range r.Kinds {
		if k.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %10d %10s %10s %10s %10s", k.Name, k.Count,
			fmtMs(k.Lat.Mean()), fmtMs(k.Lat.Quantile(0.50)),
			fmtMs(k.Lat.Quantile(0.95)), fmtMs(k.Lat.Quantile(0.99)))
		if srv {
			s := k.Srv
			fmt.Fprintf(&b, " %10d %10s %10s %10s %10s", s.N,
				fmtMs(s.meanOf(s.SchedNS)), fmtMs(s.meanOf(s.CPUNS)),
				fmtMs(s.meanOf(s.DiskQNS)), fmtMs(s.meanOf(s.DeviceNS)))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "phys: %d reads, %d writes, %d log flushes; %d errors",
		r.PhysReads, r.PhysWrites, r.LogFlushes, r.Errors)
	if r.Overflows > 0 {
		fmt.Fprintf(&b, "; %d arrival overflows", r.Overflows)
	}
	b.WriteByte('\n')
	return b.String()
}

// BreakdownDeviation returns the fractional deviation of the per-stage
// mean sum from the independently measured end-to-end mean —
// |sum-e2e|/e2e — the PR-4 accounting check the acceptance criteria put
// at 10%. Returns 0 when either side is empty (nothing to compare).
func BreakdownDeviation(rows []obs.BreakdownRow, e2e obs.HistSnapshot) float64 {
	sum := obs.SumMeanNS(rows)
	mean := e2e.Mean()
	if sum <= 0 || mean <= 0 {
		return 0
	}
	dev := (sum - mean) / mean
	if dev < 0 {
		dev = -dev
	}
	return dev
}
