// Package workload is the repo's real-application tier: OLTP and
// synthetic workloads that run wall-clock (goroutine-based, not
// discrete-event) against the real storage stack — a netv3 session to
// one v3d server, or a vvault cluster volume. It is the layer the
// paper's Section 6 measures: a transaction engine with a buffer pool
// and a group-commit log driving 8 KB page I/O, reported as tpmC plus
// per-transaction-type latency histograms plus the per-stage breakdown
// from the netv3 client's sampled stage trace, so the end-to-end number
// decomposes the way the paper's tables do.
//
// The package splits into the PageStore contract and its adapters (this
// file), composable generators (gen.go), the transaction engine
// (engine.go), the TPC-C shape (tpcc.go), and the reporting layer
// (report.go).
package workload

import (
	"fmt"
	"time"

	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/obs"
	"github.com/v3storage/v3/internal/vvault"
	"github.com/v3storage/v3/internal/wire"
)

// PageStore is the storage contract the wall-clock engine programs
// against: synchronous page semantics over the real stack. The calling
// goroutine blocks; other terminals run meanwhile — how a database
// scheduler overlaps I/O with transaction processing.
//
// Batch fan-out rule (shared with the simulated adapters in
// internal/oltp/adapters.go): ReadPages never puts more reads in flight
// than BatchLimit, the path's negotiated credit-window equivalent — the
// netv3 session window or stream carve-out for a single server, the
// aggregate data-stream credits for a vault. Past that window extra
// submissions cannot add concurrency; they only queue on the client's
// credit channel and inflate the submission stage, so the batch slides
// instead: one new read is issued as each of the oldest completes.
type PageStore interface {
	// ReadPage fills buf from the volume at off.
	ReadPage(off int64, buf []byte) error
	// ReadPages overlaps a batch of page reads (database read-ahead),
	// fanning out at most BatchLimit requests at once.
	ReadPages(offs []int64, bufs [][]byte) error
	// WritePage sends data to the volume at off. Completion means the
	// store accepted the bytes; Flush is the durability barrier.
	WritePage(off int64, data []byte) error
	// Flush is the durability barrier behind the engine's group-commit
	// log stream: when it returns nil, every write whose completion was
	// observed before Flush was submitted is durable.
	Flush() error
	// Size is the usable volume size in bytes.
	Size() int64
	// BatchLimit is the negotiated credit-window equivalent (see the
	// fan-out rule above). Always >= 1.
	BatchLimit() int
}

// SrvSpanAcc sums the server-reported span blocks of traced requests:
// scheduler queue wait, worker CPU (service minus the disk split),
// disk-queue wait, and device time. The caller owns attribution — the
// engine keeps one per transaction and banks it per tx type — so the
// stage columns that were only a global table in PR 4 become
// per-transaction-type columns here.
type SrvSpanAcc struct {
	N        int64
	SchedNS  int64
	CPUNS    int64
	DiskQNS  int64
	DeviceNS int64
}

// add folds one traced response's span block in, splitting service time
// into CPU vs the disk pipeline the same way the client registry does.
func (a *SrvSpanAcc) add(sp wire.SrvSpan) {
	cpu := int64(sp.SrvServiceNS) - int64(sp.SrvDiskQNS) - int64(sp.SrvDeviceNS)
	if cpu < 0 {
		cpu = 0
	}
	a.N++
	a.SchedNS += int64(sp.SrvQueueNS)
	a.CPUNS += cpu
	a.DiskQNS += int64(sp.SrvDiskQNS)
	a.DeviceNS += int64(sp.SrvDeviceNS)
}

// SpanAttributor is the optional PageStore extension for adapters whose
// path hands back per-request server spans. SpanView returns a store
// sharing the adapter's connection but folding every completed traced
// request's span into acc; the view (and acc) must stay on one
// goroutine. NetStore implements it; VaultStore cannot — the vault's
// fan-out hides per-request handles, and its per-replica spans land on
// the vault's own registry instead.
type SpanAttributor interface {
	SpanView(acc *SrvSpanAcc) PageStore
}

// NetStore adapts a netv3 session — the bare client or one logical
// stream of it — to PageStore. The end-to-end histogram, when set,
// receives the caller-measured submit→Wait-return time of every
// stage-traced request (Pending.Traced), the independent measurement the
// PR-4 accounting discipline checks the per-stage breakdown against:
// both sides then describe exactly the same sampled population.
type NetStore struct {
	io        netv3.IO
	vol       uint32
	sizeBytes int64
	limit     int
	e2e       *obs.Hist
	acc       *SrvSpanAcc // span sink for a SpanView; nil on the root store
}

// SpanView implements SpanAttributor: a shallow copy sharing the
// session, e2e histogram, and clamp, with acc as its span sink.
func (s *NetStore) SpanView(acc *SrvSpanAcc) PageStore {
	v := *s
	v.acc = acc
	return &v
}

// NewNetStore wraps a netv3 client or stream. volSize is the usable
// volume size (netv3.IO carries no size query). The fan-out clamp is
// derived from the surface's own negotiated window: the session credit
// window for a *netv3.Client, the stream's carve-out for a
// *netv3.Stream, 1 for anything else. e2e may be nil.
func NewNetStore(io netv3.IO, vol uint32, volSize int64, e2e *obs.Hist) *NetStore {
	limit := 1
	switch c := io.(type) {
	case *netv3.Client:
		limit = c.Credits()
	case *netv3.Stream:
		limit = c.Credits()
	}
	if limit < 1 {
		limit = 1
	}
	return &NetStore{io: io, vol: vol, sizeBytes: volSize, limit: limit, e2e: e2e}
}

// ReadPage implements PageStore.
func (s *NetStore) ReadPage(off int64, buf []byte) error {
	t := time.Now()
	h, err := s.io.ReadAsync(s.vol, off, buf)
	if err != nil {
		return err
	}
	err = h.Wait()
	s.observe(h, t)
	return err
}

// ReadPages implements PageStore with the sliding-window fan-out clamp.
// Waits are in submission order while the window is full; a request
// whose completion the harvester observes late accounts the delay to
// the trace's wakeup stage, so the caller-measured end-to-end time and
// the stage sum keep tiling the same interval.
func (s *NetStore) ReadPages(offs []int64, bufs [][]byte) error {
	if len(offs) != len(bufs) {
		return fmt.Errorf("workload: ReadPages got %d offsets, %d buffers", len(offs), len(bufs))
	}
	window := s.limit
	if window > len(offs) {
		window = len(offs)
	}
	handles := make([]*netv3.Pending, len(offs))
	starts := make([]time.Time, len(offs))
	var firstErr error
	issue := func(i int) {
		starts[i] = time.Now()
		h, err := s.io.ReadAsync(s.vol, offs[i], bufs[i])
		if err != nil && firstErr == nil {
			firstErr = err
		}
		handles[i] = h
	}
	harvest := func(i int) {
		if handles[i] == nil {
			return
		}
		if err := handles[i].Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.observe(handles[i], starts[i])
	}
	for i := 0; i < window; i++ {
		issue(i)
	}
	for i := window; i < len(offs); i++ {
		harvest(i - window)
		issue(i)
	}
	for i := len(offs) - window; i < len(offs); i++ {
		harvest(i)
	}
	return firstErr
}

// WritePage implements PageStore.
func (s *NetStore) WritePage(off int64, data []byte) error {
	t := time.Now()
	h, err := s.io.WriteAsync(s.vol, off, data)
	if err != nil {
		return err
	}
	err = h.Wait()
	s.observe(h, t)
	return err
}

// Flush implements PageStore.
func (s *NetStore) Flush() error {
	t := time.Now()
	h, err := s.io.FlushAsync(s.vol)
	if err != nil {
		return err
	}
	err = h.Wait()
	s.observe(h, t)
	return err
}

// observe folds a completed request's caller-measured round trip into
// the e2e histogram — traced requests only, so the population matches
// the stage histograms exactly.
func (s *NetStore) observe(h *netv3.Pending, start time.Time) {
	if !h.Traced() {
		return
	}
	if s.e2e != nil {
		s.e2e.Observe(time.Since(start).Nanoseconds())
	}
	if s.acc != nil {
		if sp := h.ServerSpan(); sp != (wire.SrvSpan{}) {
			s.acc.add(sp)
		}
	}
}

// Size implements PageStore.
func (s *NetStore) Size() int64 { return s.sizeBytes }

// BatchLimit implements PageStore.
func (s *NetStore) BatchLimit() int { return s.limit }

// VaultStore adapts a vvault cluster volume to PageStore. The vault
// pipelines extent fan-out internally; the adapter's clamp is the
// cluster's aggregate data-stream credit window (Vault.Credits). The
// e2e histogram, when set, receives every operation's vault-level round
// trip: the vault exposes no per-request trace handle, but the netv3
// stage trace underneath samples 1-in-4 of a homogeneous stream
// systematically, so the all-requests mean and the traced-population
// mean describe the same distribution (to within the vault's extent-map
// overhead, microseconds against a wire round trip).
type VaultStore struct {
	v     *vvault.Vault
	limit int
	e2e   *obs.Hist
}

// NewVaultStore wraps an open vault. e2e may be nil.
func NewVaultStore(v *vvault.Vault, e2e *obs.Hist) *VaultStore {
	limit := v.Credits()
	if limit < 1 {
		limit = 1
	}
	return &VaultStore{v: v, limit: limit, e2e: e2e}
}

// ReadPage implements PageStore.
func (s *VaultStore) ReadPage(off int64, buf []byte) error {
	t := time.Now()
	err := s.v.Read(off, buf)
	s.observeAll(t)
	return err
}

// ReadPages implements PageStore. The vault's Read is synchronous, so
// the window fans out over goroutines, clamped to the cluster credit
// window like every other batch.
func (s *VaultStore) ReadPages(offs []int64, bufs [][]byte) error {
	if len(offs) != len(bufs) {
		return fmt.Errorf("workload: ReadPages got %d offsets, %d buffers", len(offs), len(bufs))
	}
	window := s.limit
	if window > len(offs) {
		window = len(offs)
	}
	errs := make([]error, len(offs))
	sem := make(chan struct{}, window)
	done := make(chan int, len(offs))
	for i := range offs {
		sem <- struct{}{}
		go func(i int) {
			errs[i] = s.ReadPage(offs[i], bufs[i])
			<-sem
			done <- i
		}(i)
	}
	var firstErr error
	for range offs {
		i := <-done
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
	}
	return firstErr
}

// WritePage implements PageStore.
func (s *VaultStore) WritePage(off int64, data []byte) error {
	t := time.Now()
	err := s.v.Write(off, data)
	s.observeAll(t)
	return err
}

// Flush implements PageStore.
func (s *VaultStore) Flush() error {
	t := time.Now()
	err := s.v.Flush()
	s.observeAll(t)
	return err
}

func (s *VaultStore) observeAll(start time.Time) {
	if s.e2e != nil {
		s.e2e.Observe(time.Since(start).Nanoseconds())
	}
}

// Size implements PageStore.
func (s *VaultStore) Size() int64 { return s.v.Size() }

// BatchLimit implements PageStore.
func (s *VaultStore) BatchLimit() int { return s.limit }

var (
	_ PageStore = (*NetStore)(nil)
	_ PageStore = (*VaultStore)(nil)
)
