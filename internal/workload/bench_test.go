package workload

import (
	"os"
	"sync"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/benchjson"
	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/obs"
)

// Benchmark rows land in BENCH_netv3.json via `make bench-tpcc` (the
// BENCH_JSON env var), merged by name with the rest of the repo's
// ledger. Without BENCH_JSON — the CI smoke — nothing is written.
var (
	benchMu      sync.Mutex
	benchRecords []benchjson.Record
)

func record(r benchjson.Record) {
	benchMu.Lock()
	benchRecords = append(benchRecords, r)
	benchMu.Unlock()
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_JSON"); path != "" {
		_ = benchjson.Write(path, benchRecords)
	}
	os.Exit(code)
}

// tpccBenchCase is one BenchmarkNetv3TPCC row: a workload shape over
// the live single-server netv3 path.
type tpccBenchCase struct {
	name    string
	kinds   []TxKind
	dist    DistSpec
	arrival ArrivalSpec
}

func tpccBenchCases() []tpccBenchCase {
	return []tpccBenchCase{
		{name: "uniform", kinds: SyntheticKind("uniform", 8, 2, 512), dist: DistSpec{Kind: DistUniform}},
		{name: "zipf", kinds: SyntheticKind("zipf", 8, 2, 512), dist: DistSpec{Kind: DistZipf}},
		{name: "scan", kinds: SyntheticKind("scan", 16, 0, 0), dist: DistSpec{Kind: DistSeq}},
		{name: "bursty", kinds: SyntheticKind("bursty", 8, 2, 512), dist: DistSpec{Kind: DistUniform},
			arrival: ArrivalSpec{Kind: ArrivalBursty, Rate: 2000}},
		{name: "tpcc", kinds: TPCCKinds(), dist: DistSpec{Kind: DistUniform}},
	}
}

// BenchmarkNetv3TPCC runs each workload shape for one fixed wall-clock
// window over an in-process v3d server (run with -benchtime=1x: the
// engine is the load generator; b.N repetition adds nothing but time).
func BenchmarkNetv3TPCC(b *testing.B) {
	for _, tc := range tpccBenchCases() {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchOneTPCC(b, tc)
			}
		})
	}
}

func benchOneTPCC(b *testing.B, tc tpccBenchCase) {
	cl, err := StartCluster(1, testVolSize, netv3.DefaultServerConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	e2e := &obs.Hist{}
	store, closeStore, err := OpenStack(StackConfig{Addrs: cl.Addrs(), VolSize: testVolSize, E2E: e2e})
	if err != nil {
		b.Fatal(err)
	}
	defer closeStore()
	eng, err := New(Config{
		Store:             store,
		Kinds:             tc.kinds,
		Dist:              tc.dist,
		Arrival:           tc.arrival,
		Terminals:         8,
		Warehouses:        2,
		PagesPerWarehouse: 512,
		Seed:              1,
		E2E:               e2e,
	})
	if err != nil {
		b.Fatal(err)
	}
	r, err := eng.Run(200*time.Millisecond, time.Second)
	if err != nil {
		b.Fatal(err)
	}
	if r.Errors != 0 {
		b.Fatalf("%d transaction errors", r.Errors)
	}
	var lat obs.HistSnapshot
	for _, k := range r.Kinds {
		lat.Merge(k.Lat)
	}
	if lat.Count() == 0 {
		b.Fatal("no transactions committed")
	}
	b.ReportMetric(r.TpmC, "tpmC")
	b.ReportMetric(r.TxPerSec, "tx/s")
	b.ReportMetric(lat.Mean()/1e3, "mean_us")
	record(benchjson.Record{
		Name:       "Netv3TPCC/" + tc.name,
		OpsPerSec:  r.TxPerSec,
		MeanMicros: lat.Mean() / 1e3,
		P99Micros:  lat.Quantile(0.99) / 1e3,
	})
}
