package workload

import (
	"strings"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/netv3"
	"github.com/v3storage/v3/internal/obs"
)

// These tests pin the cross-tier accounting discipline end to end, under
// -race in CI: the merged stage table (client stages + server spans) must
// column-sum to the independently measured end-to-end mean on both real
// storage paths — a single netv3 session and a striped vvault cluster
// volume. PR 4 proved the client-only table tiles; with server spans the
// same invariant must hold with the net+kernel residual now carrying only
// what the server did NOT account for.

// runTraced drives the TPC-C engine over the store and returns the result.
func runTraced(t *testing.T, store PageStore, e2e *obs.Hist) *Result {
	t.Helper()
	eng, err := New(testEngineConfig(store, e2e))
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.Run(100*time.Millisecond, 600*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, r)
	if r.E2E.Count() == 0 {
		t.Fatal("no traced requests in the e2e histogram")
	}
	return r
}

// TestTraceMergedTilesNetSingle: single in-process v3d server, merged
// cross-tier stage table, 10% tiling bound.
func TestTraceMergedTilesNetSingle(t *testing.T) {
	cl, err := StartCluster(1, testVolSize, netv3.DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	reg := obs.New()
	e2e := &obs.Hist{}
	store, closeStore, err := OpenStack(StackConfig{Addrs: cl.Addrs(), VolSize: testVolSize, Reg: reg, E2E: e2e})
	if err != nil {
		t.Fatal(err)
	}
	defer closeStore()

	r := runTraced(t, store, e2e)
	rows := obs.Breakdown(reg, netv3.MergedStageDefs())
	t.Logf("\n%s", obs.FormatBreakdown(rows, r.E2E.Mean()))
	if dev := BreakdownDeviation(rows, r.E2E); dev > 0.10 {
		t.Fatalf("merged stage sum deviates %.1f%% from measured e2e mean (want <= 10%%)", 100*dev)
	}
	// Server spans actually arrived: at least one server-side stage is
	// nonzero (the scheduler wait can be ~0 on an idle box, but service
	// time cannot).
	var srv float64
	for _, row := range rows {
		if strings.HasPrefix(row.Stage, "srv ") {
			srv += row.MeanNS
		}
	}
	if srv == 0 {
		t.Fatal("merged table has zero server-side time: spans not flowing")
	}
}

// TestTraceMergedTilesStripedVault: the same bound over a striped
// 2-backend vvault cluster volume, where every engine page op maps to
// sub-I/Os on the member sessions and the vault additionally harvests
// per-replica server spans into its own histogram.
func TestTraceMergedTilesStripedVault(t *testing.T) {
	cl, err := StartCluster(2, testVolSize, netv3.DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	reg := obs.New()
	e2e := &obs.Hist{}
	store, closeStore, err := OpenStack(StackConfig{Addrs: cl.Addrs(), VolSize: testVolSize, Reg: reg, E2E: e2e})
	if err != nil {
		t.Fatal(err)
	}
	defer closeStore()

	r := runTraced(t, store, e2e)
	rows := obs.Breakdown(reg, netv3.MergedStageDefs())
	t.Logf("\n%s", obs.FormatBreakdown(rows, r.E2E.Mean()))
	if dev := BreakdownDeviation(rows, r.E2E); dev > 0.10 {
		t.Fatalf("merged stage sum deviates %.1f%% from measured e2e mean (want <= 10%%)", 100*dev)
	}
	// The vault harvested per-replica server spans for both backends.
	snap := reg.Snapshot()
	replicas := 0
	for name, h := range snap.Hists {
		if strings.HasPrefix(name, "vvault_replica_srv_ns{") && h.Count > 0 {
			replicas++
		}
	}
	if replicas != 2 {
		t.Fatalf("per-replica server-span histograms with samples = %d, want 2", replicas)
	}
}
