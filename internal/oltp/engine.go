package oltp

import (
	"time"

	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/mqcache"
	"github.com/v3storage/v3/internal/sim"
)

// Storage abstracts the block back-end: a DSA client, the local-disk
// baseline, or anything else that moves 8 KB pages.
type Storage interface {
	ReadPage(p *sim.Proc, off int64, length int)
	// ReadPages overlaps a batch of page reads (database read-ahead).
	ReadPages(p *sim.Proc, offs []int64, length int)
	WritePage(p *sim.Proc, off int64, length int)
	VolumeSize() int64
}

// Config sizes the database engine. Page counts are scaled-down versions
// of the paper's configurations (a constant factor on both the working
// set and the caches preserves hit ratios; see DESIGN.md).
type Config struct {
	Workers         int   // concurrent transaction workers (DB threads)
	BufferPoolPages int   // database buffer pool capacity
	DBPages         int64 // data working-set size in pages
	PageSize        int
	Skew            AccessSkew

	PerAccessCPU time.Duration // B-tree navigation etc. per page touch
	LatchLocks   int           // DB-internal latches (contend on the host CPUs)
	LatchHold    time.Duration

	// Per-transaction CPU the database burns outside pure transaction
	// processing, independent of the storage client: kernel work (context
	// switches, scheduling), lock synchronization inside the DBMS, and
	// other system libraries. The paper's Figure 11 discussion: "the
	// largest part of the 30% [kernel+lock] is due to non-I/O related
	// activity caused by SQL Server 2000."
	PerTxKernelCPU time.Duration
	PerTxLockCPU   time.Duration
	PerTxOtherCPU  time.Duration

	LogSlots        int64 // 64 KB log slots reserved at the start of the volume
	GroupCommit     time.Duration
	GroupCommitSize int

	Cleaners      int           // write-behind threads
	Checkpoint    time.Duration // dirty-page flush cadence (generates the steady write stream)
	CheckpointMax int           // dirty pages flushed per checkpoint interval
	ReadBatch     int           // misses overlapped per read-ahead batch
	Seed          uint64
}

// DefaultConfig returns a scaled mid-size engine (Table 1's mid-size
// column divided by the memory scale factor).
func DefaultConfig() Config {
	return Config{
		Workers:         32,
		BufferPoolPages: 6000,
		DBPages:         200000,
		PageSize:        8192,
		Skew:            DefaultSkew(),
		PerAccessCPU:    25 * time.Microsecond,
		LatchLocks:      16,
		LatchHold:       300 * time.Nanosecond,
		PerTxKernelCPU:  1000 * time.Microsecond,
		PerTxLockCPU:    300 * time.Microsecond,
		PerTxOtherCPU:   150 * time.Microsecond,
		LogSlots:        64,
		GroupCommit:     time.Millisecond,
		GroupCommitSize: 64 * 1024,
		Cleaners:        8,
		Checkpoint:      100 * time.Millisecond,
		CheckpointMax:   400,
		ReadBatch:       6,
		Seed:            0xDB,
	}
}

const logSlotBytes = 64 * 1024

// Engine is the simulated database server.
type Engine struct {
	e       *sim.Engine
	cpus    *hw.CPUPool
	storage Storage
	cfg     Config

	bufpool *mqcache.LRU
	dirty   map[int64]bool
	latches *hw.PairSet

	cleanQ *sim.Queue[int64]
	logMu  struct {
		bytes   int
		waiters []*sim.Event
		slot    int64
	}

	running   bool
	txLat     [numTxTypes]sim.Series
	committed [numTxTypes]sim.Counter
	physReads sim.Counter
	physWrite sim.Counter
	logWrites sim.Counter
	pageRefs  sim.Counter
	poolHits  sim.Counter
	measuring bool
	measured  [numTxTypes]int64
	measureT0 sim.Time
	refs0     int64
	hits0     int64
}

// New creates an engine over storage. Call Start to launch workers.
func New(e *sim.Engine, cpus *hw.CPUPool, storage Storage, cfg Config) *Engine {
	if cfg.Workers <= 0 || cfg.BufferPoolPages <= 0 || cfg.DBPages <= 0 {
		panic("oltp: bad config")
	}
	return &Engine{
		e: e, cpus: cpus, storage: storage, cfg: cfg,
		bufpool: mqcache.NewLRU(cfg.BufferPoolPages),
		dirty:   make(map[int64]bool),
		latches: hw.NewPairSet(e, cpus, cfg.LatchLocks),
		cleanQ:  sim.NewQueue[int64](),
	}
}

// Start launches the worker threads, the log writer, and the cleaners.
func (en *Engine) Start() {
	en.running = true
	rng := sim.NewRand(en.cfg.Seed)
	for i := 0; i < en.cfg.Workers; i++ {
		wr := rng.Split()
		en.e.Go("db-worker", func(p *sim.Proc) { en.worker(p, wr) })
	}
	for i := 0; i < en.cfg.Cleaners; i++ {
		en.e.Go("db-cleaner", en.cleaner)
	}
	en.e.Go("db-logwriter", en.logWriter)
	en.e.Go("db-checkpointer", en.checkpointer)
}

// checkpointer periodically flushes the dirty set through the cleaners.
// Together with evictions this produces the steady ~70/30 read/write I/O
// mix the paper reports for TPC-C.
func (en *Engine) checkpointer(p *sim.Proc) {
	limit := en.cfg.CheckpointMax
	if limit <= 0 {
		limit = 1 << 30
	}
	for en.running {
		p.Sleep(en.cfg.Checkpoint)
		n := 0
		for page := range en.dirty {
			if n >= limit {
				break
			}
			delete(en.dirty, page)
			en.cleanQ.Put(en.e, page)
			n++
		}
	}
}

// Stop halts workers at their next transaction boundary.
func (en *Engine) Stop() { en.running = false }

// BeginMeasurement zeroes the committed-transaction window (call after
// warmup).
func (en *Engine) BeginMeasurement() {
	en.measuring = true
	for i := range en.measured {
		en.measured[i] = en.committed[i].Value()
	}
	en.measureT0 = en.e.Now()
	en.refs0 = en.pageRefs.Value()
	en.hits0 = en.poolHits.Value()
}

// TpmC returns New-Order commits per minute over the measurement window.
func (en *Engine) TpmC() float64 {
	elapsed := (en.e.Now() - en.measureT0).Minutes()
	if !en.measuring || elapsed <= 0 {
		return 0
	}
	n := en.committed[NewOrder].Value() - en.measured[NewOrder]
	return float64(n) / elapsed
}

// Committed returns total commits of one type.
func (en *Engine) Committed(t TxType) int64 { return en.committed[t].Value() }

// PhysicalIOs returns (reads, writes) issued to storage, log included.
func (en *Engine) PhysicalIOs() (int64, int64) {
	return en.physReads.Value(), en.physWrite.Value() + en.logWrites.Value()
}

// BufferHitRatio returns the buffer pool hit ratio over the measurement
// window (or lifetime before BeginMeasurement).
func (en *Engine) BufferHitRatio() float64 {
	refs := en.pageRefs.Value() - en.refs0
	hits := en.poolHits.Value() - en.hits0
	if refs == 0 {
		return 0
	}
	return float64(hits) / float64(refs)
}

func (en *Engine) worker(p *sim.Proc, rng *sim.Rand) {
	profiles := Profiles()
	for en.running {
		prof := profiles[PickTx(rng)]
		t0 := p.Now()
		en.runTx(p, rng, prof)
		en.recordTxLatency(prof.Type, p.Now()-t0)
		en.committed[prof.Type].Inc()
	}
}

// runTx executes one transaction: page references with buffer-pool
// misses going to storage, transaction CPU interleaved, dirty pages
// queued for write-behind, and a group-commit log write.
func (en *Engine) runTx(p *sim.Proc, rng *sim.Rand, prof TxProfile) {
	cpuSlice := prof.CPU / time.Duration(prof.PageReads+prof.PageWrite+1)
	var pending []int64
	flush := func() {
		if len(pending) > 0 {
			en.storage.ReadPages(p, pending, en.cfg.PageSize)
			pending = pending[:0]
		}
	}
	batch := en.cfg.ReadBatch
	if batch <= 0 {
		batch = 1
	}
	for i := 0; i < prof.PageReads; i++ {
		pending = en.touchPage(p, rng, false, pending)
		if len(pending) >= batch {
			flush()
		}
		en.cpus.Use(p, hw.CatSQL, cpuSlice+en.cfg.PerAccessCPU)
	}
	flush()
	for i := 0; i < prof.PageWrite; i++ {
		pending = en.touchPage(p, rng, true, pending)
		if len(pending) >= batch {
			flush()
		}
		en.cpus.Use(p, hw.CatSQL, cpuSlice+en.cfg.PerAccessCPU)
	}
	flush()
	en.cpus.Use(p, hw.CatSQL, cpuSlice)
	// SQL-Server-induced kernel, lock, and library time, spread over the
	// transaction (two slices each so it interleaves with I/O waits).
	en.cpus.Use(p, hw.CatOSKernel, en.cfg.PerTxKernelCPU/2)
	en.cpus.Use(p, hw.CatLock, en.cfg.PerTxLockCPU/2)
	en.cpus.Use(p, hw.CatOther, en.cfg.PerTxOtherCPU)
	if prof.LogBytes > 0 {
		en.commitLog(p, prof.LogBytes)
	}
	en.cpus.Use(p, hw.CatOSKernel, en.cfg.PerTxKernelCPU/2)
	en.cpus.Use(p, hw.CatLock, en.cfg.PerTxLockCPU/2)
}

// touchPage references one page through the buffer pool: a DB latch
// crossing, a hit, or a miss appended to the read-ahead batch. The frame
// is claimed (inserted) immediately so concurrent workers do not
// double-read it; the physical read completes when the batch flushes.
func (en *Engine) touchPage(p *sim.Proc, rng *sim.Rand, write bool, pending []int64) []int64 {
	page := en.cfg.Skew.PickPage(rng, en.cfg.DBPages)
	en.latches.CrossPairsHold(p, 1, en.cfg.LatchHold, hw.CatSQL)
	en.pageRefs.Inc()
	if !en.bufpool.Ref(uint64(page)) {
		en.physReads.Inc()
		pending = append(pending, en.pageOffset(page))
		if victim, ev := en.bufpool.Insert(uint64(page)); ev {
			vp := int64(victim)
			if en.dirty[vp] {
				delete(en.dirty, vp)
				en.cleanQ.Put(en.e, vp)
			}
		}
	} else {
		en.poolHits.Inc()
	}
	if write {
		en.dirty[page] = true
	}
	return pending
}

// pageOffset maps a data page past the reserved log region.
func (en *Engine) pageOffset(page int64) int64 {
	return en.cfg.LogSlots*logSlotBytes + page*int64(en.cfg.PageSize)
}

// cleaner is a write-behind thread committing dirty victims to storage.
func (en *Engine) cleaner(p *sim.Proc) {
	for {
		page := en.cleanQ.Get(p)
		en.physWrite.Inc()
		en.storage.WritePage(p, en.pageOffset(page), en.cfg.PageSize)
	}
}

// commitLog appends to the group-commit buffer and waits for the flush
// that covers this commit.
func (en *Engine) commitLog(p *sim.Proc, bytes int) {
	en.logMu.bytes += bytes
	ev := sim.NewEvent()
	en.logMu.waiters = append(en.logMu.waiters, ev)
	ev.Wait(p)
}

// logWriter flushes the group-commit buffer every GroupCommit interval
// or when it exceeds GroupCommitSize, writing one 64 KB log slot
// (sequential region at the start of the volume) per flush.
func (en *Engine) logWriter(p *sim.Proc) {
	for en.running || len(en.logMu.waiters) > 0 {
		p.Sleep(en.cfg.GroupCommit)
		if en.logMu.bytes == 0 && len(en.logMu.waiters) == 0 {
			continue
		}
		en.logMu.bytes = 0
		waiters := en.logMu.waiters
		en.logMu.waiters = nil
		slot := en.logMu.slot % en.cfg.LogSlots
		en.logMu.slot++
		en.logWrites.Inc()
		en.storage.WritePage(p, slot*logSlotBytes, logSlotBytes)
		for _, ev := range waiters {
			ev.Fire(en.e)
		}
	}
}
