package oltp

import (
	"github.com/v3storage/v3/internal/core"
	"github.com/v3storage/v3/internal/localio"
	"github.com/v3storage/v3/internal/sim"
)

// DSAStorage adapts a DSA client (any of kDSA/wDSA/cDSA) to the engine's
// Storage interface with synchronous page semantics: the calling worker
// blocks, and other workers run meanwhile — exactly how a database
// scheduler overlaps I/O with transaction processing.
type DSAStorage struct{ C *core.Client }

// ReadPage implements Storage.
func (s DSAStorage) ReadPage(p *sim.Proc, off int64, length int) { s.C.Read(p, off, length) }

// ReadPages implements Storage: all reads go out asynchronously and the
// worker blocks for the batch, the way a database scheduler overlaps
// read-ahead within a transaction.
func (s DSAStorage) ReadPages(p *sim.Proc, offs []int64, length int) {
	reqs := make([]*core.Request, len(offs))
	for i, off := range offs {
		reqs[i] = s.C.ReadAsync(p, off, length)
	}
	for _, r := range reqs {
		s.C.Wait(p, r)
	}
}

// WritePage implements Storage.
func (s DSAStorage) WritePage(p *sim.Proc, off int64, length int) { s.C.Write(p, off, length) }

// VolumeSize implements Storage.
func (s DSAStorage) VolumeSize() int64 { return s.C.VolumeSize() }

// LocalStorage adapts the local-disk baseline.
type LocalStorage struct{ C *localio.Client }

// ReadPage implements Storage.
func (s LocalStorage) ReadPage(p *sim.Proc, off int64, length int) { s.C.Read(p, off, length) }

// ReadPages implements Storage.
func (s LocalStorage) ReadPages(p *sim.Proc, offs []int64, length int) {
	reqs := make([]*localio.Request, len(offs))
	for i, off := range offs {
		reqs[i] = s.C.ReadAsync(p, off, length)
	}
	for _, r := range reqs {
		s.C.Wait(p, r)
	}
}

// WritePage implements Storage.
func (s LocalStorage) WritePage(p *sim.Proc, off int64, length int) { s.C.Write(p, off, length) }

// VolumeSize implements Storage.
func (s LocalStorage) VolumeSize() int64 { return s.C.VolumeSize() }

var (
	_ Storage = DSAStorage{}
	_ Storage = LocalStorage{}
)
