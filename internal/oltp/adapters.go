package oltp

import (
	"github.com/v3storage/v3/internal/core"
	"github.com/v3storage/v3/internal/localio"
	"github.com/v3storage/v3/internal/sim"
)

// Batch fan-out rule (shared with the real-path adapters in
// internal/workload): a ReadPages batch never puts more reads in flight
// than the storage path's negotiated credit-window equivalent — the DSA
// client's flow-control window here, the netv3 session window or stream
// carve-out on the real stack, the aggregate data-stream credits on a
// vault. Past that window extra submissions cannot add concurrency;
// they only queue at the client and inflate the submission stage, so
// the batch slides instead: one new read is issued as each of the
// oldest completes.

// DSAStorage adapts a DSA client (any of kDSA/wDSA/cDSA) to the engine's
// Storage interface with synchronous page semantics: the calling worker
// blocks, and other workers run meanwhile — exactly how a database
// scheduler overlaps I/O with transaction processing.
type DSAStorage struct{ C *core.Client }

// ReadPage implements Storage.
func (s DSAStorage) ReadPage(p *sim.Proc, off int64, length int) { s.C.Read(p, off, length) }

// ReadPages implements Storage: reads go out asynchronously and the
// worker blocks for the batch, the way a database scheduler overlaps
// read-ahead within a transaction. Fan-out follows the batch rule above,
// clamped to the client's negotiated credit window.
func (s DSAStorage) ReadPages(p *sim.Proc, offs []int64, length int) {
	window := s.C.Config().Credits
	readPagesWindow(window, offs, func(off int64) *core.Request {
		return s.C.ReadAsync(p, off, length)
	}, func(r *core.Request) {
		s.C.Wait(p, r)
	})
}

// WritePage implements Storage.
func (s DSAStorage) WritePage(p *sim.Proc, off int64, length int) { s.C.Write(p, off, length) }

// VolumeSize implements Storage.
func (s DSAStorage) VolumeSize() int64 { return s.C.VolumeSize() }

// LocalStorage adapts the local-disk baseline.
type LocalStorage struct{ C *localio.Client }

// ReadPage implements Storage.
func (s LocalStorage) ReadPage(p *sim.Proc, off int64, length int) { s.C.Read(p, off, length) }

// ReadPages implements Storage. The local path has no wire credit
// window; its equivalent is the disk array's aggregate queue — one
// outstanding read per spindle — so the batch clamps to the disk count.
func (s LocalStorage) ReadPages(p *sim.Proc, offs []int64, length int) {
	window := s.C.Config().NumDisks
	readPagesWindow(window, offs, func(off int64) *localio.Request {
		return s.C.ReadAsync(p, off, length)
	}, func(r *localio.Request) {
		s.C.Wait(p, r)
	})
}

// WritePage implements Storage.
func (s LocalStorage) WritePage(p *sim.Proc, off int64, length int) { s.C.Write(p, off, length) }

// VolumeSize implements Storage.
func (s LocalStorage) VolumeSize() int64 { return s.C.VolumeSize() }

// readPagesWindow overlaps the batch with at most window requests in
// flight, sliding as completions return: the shared implementation of
// the clamp rule for both sim adapters.
func readPagesWindow[R any](window int, offs []int64, issue func(int64) R, wait func(R)) {
	if window <= 0 {
		window = 1
	}
	if window > len(offs) {
		window = len(offs)
	}
	reqs := make([]R, len(offs))
	for i := 0; i < window; i++ {
		reqs[i] = issue(offs[i])
	}
	for i := window; i < len(offs); i++ {
		wait(reqs[i-window])
		reqs[i] = issue(offs[i])
	}
	for i := len(offs) - window; i < len(offs); i++ {
		wait(reqs[i])
	}
}

var (
	_ Storage = DSAStorage{}
	_ Storage = LocalStorage{}
)
