// Package oltp implements the database side of the paper's Section 6
// experiments: a TPC-C-shaped OLTP engine standing in for Microsoft SQL
// Server 2000. It models what determines tpmC in the paper — CPU cycles
// split between transaction processing and the I/O path, a buffer pool
// over 8 KB pages issuing random reads and write-behind, and a group-
// commit log — while the storage back-end is either a DSA client
// (internal/core) or the local-disk baseline (internal/localio).
//
// The TPC-C machinery in this file (transaction mix, NURand, per-
// transaction profiles, warehouse-scaled page counts) is pure and
// independently testable.
package oltp

import (
	"time"

	"github.com/v3storage/v3/internal/sim"
)

// TxType is a TPC-C transaction type.
type TxType int

// The five TPC-C transactions.
const (
	NewOrder TxType = iota
	Payment
	OrderStatus
	Delivery
	StockLevel
	numTxTypes
)

// String returns the TPC-C name.
func (t TxType) String() string {
	switch t {
	case NewOrder:
		return "NewOrder"
	case Payment:
		return "Payment"
	case OrderStatus:
		return "OrderStatus"
	case Delivery:
		return "Delivery"
	case StockLevel:
		return "StockLevel"
	}
	return "Tx(?)"
}

// TxProfile characterizes one transaction type's resource demands: pure
// transaction-processing CPU, buffer-pool page reads and page writes
// (logical; the buffer pool turns some into physical I/O), and log bytes
// at commit. Values approximate published TPC-C characterizations on
// SQL Server-class engines.
type TxProfile struct {
	Type      TxType
	CPU       time.Duration
	PageReads int
	PageWrite int
	LogBytes  int
}

// Profiles returns the per-type demand table.
func Profiles() [numTxTypes]TxProfile {
	return [numTxTypes]TxProfile{
		NewOrder:    {Type: NewOrder, CPU: 1100 * time.Microsecond, PageReads: 24, PageWrite: 12, LogBytes: 4096},
		Payment:     {Type: Payment, CPU: 550 * time.Microsecond, PageReads: 7, PageWrite: 5, LogBytes: 1024},
		OrderStatus: {Type: OrderStatus, CPU: 500 * time.Microsecond, PageReads: 12, PageWrite: 0, LogBytes: 0},
		Delivery:    {Type: Delivery, CPU: 1900 * time.Microsecond, PageReads: 30, PageWrite: 20, LogBytes: 3072},
		StockLevel:  {Type: StockLevel, CPU: 1800 * time.Microsecond, PageReads: 60, PageWrite: 0, LogBytes: 0},
	}
}

// MixWeights returns the paper's TPC-C transaction mix in percent,
// indexed by TxType: 45% New-Order, 43% Payment, 4% each Order-Status,
// Delivery, Stock-Level. Both the simulated engine (PickTx) and the
// real-path workload tier (internal/workload) draw from this table, so
// the mix can never drift between the two.
func MixWeights() [numTxTypes]int {
	return [numTxTypes]int{NewOrder: 45, Payment: 43, OrderStatus: 4, Delivery: 4, StockLevel: 4}
}

// TxForDraw maps a uniform draw in [0,100) to a transaction type under
// MixWeights — the pure core of PickTx, usable with any RNG.
func TxForDraw(v int) TxType {
	w := MixWeights()
	for t, weight := range w {
		if v < weight {
			return TxType(t)
		}
		v -= weight
	}
	return StockLevel
}

// PickTx draws a transaction type with the TPC-C mix: 45% New-Order,
// 43% Payment, 4% each Order-Status, Delivery, Stock-Level.
func PickTx(r *sim.Rand) TxType {
	return TxForDraw(r.Intn(100))
}

// NURand is TPC-C's non-uniform random function (clause 2.1.6):
// NURand(A, x, y) = (((random(0,A) | random(x,y)) + C) % (y-x+1)) + x.
func NURand(r *sim.Rand, a, x, y, c int) int {
	return (((r.Range(0, a) | r.Range(x, y)) + c) % (y - x + 1)) + x
}

// CustomerID draws a TPC-C customer id in [1,3000] with NURand(1023).
func CustomerID(r *sim.Rand) int { return NURand(r, 1023, 1, 3000, 259) }

// ItemID draws a TPC-C item id in [1,100000] with NURand(8191).
func ItemID(r *sim.Rand) int { return NURand(r, 8191, 1, 100000, 7911) }

// PagesPerWarehouse is the approximate on-disk footprint of one TPC-C
// warehouse in 8 KB pages (~100 MB: stock 25 MB, customer 21 MB, order
// lines and history growing, items shared).
const PagesPerWarehouse = 12800

// AccessSkew describes the page reference locality the engine generates:
// a fraction of pages is "hot" (index roots, hot customers/items) and
// absorbs most references; the rest is cooler, with a warm middle tier.
// TPC-C's NURand produces exactly this shape at table scale.
type AccessSkew struct {
	HotFrac  float64 // fraction of pages in the hot set
	HotProb  float64 // probability a reference goes to the hot set
	WarmFrac float64
	WarmProb float64
}

// DefaultSkew matches B-tree/NURand locality: 2% of pages (index upper
// levels, hot customers/items) take 70% of references, the next 4% take
// 18%, the cold remainder the rest. The warm tier is what a V3 server
// cache (~6% of the mid-size working set) can absorb — the mechanism
// behind the paper's 40-45% server cache hit ratio.
func DefaultSkew() AccessSkew {
	return AccessSkew{HotFrac: 0.02, HotProb: 0.70, WarmFrac: 0.04, WarmProb: 0.18}
}

// PickPage draws a page in [0, total) under the skew.
func (s AccessSkew) PickPage(r *sim.Rand, total int64) int64 {
	if total <= 0 {
		panic("oltp: no pages")
	}
	hot := int64(float64(total) * s.HotFrac)
	if hot < 1 {
		hot = 1
	}
	warm := int64(float64(total) * s.WarmFrac)
	if warm < 1 {
		warm = 1
	}
	v := r.Float64()
	switch {
	case v < s.HotProb:
		return r.Int63() % hot
	case v < s.HotProb+s.WarmProb:
		return hot + r.Int63()%warm
	default:
		rest := total - hot - warm
		if rest < 1 {
			rest = 1
		}
		return (hot + warm + r.Int63()%rest) % total
	}
}
