package oltp

import (
	"strings"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/sim"
)

func TestPickTxMix(t *testing.T) {
	r := sim.NewRand(1)
	counts := map[TxType]int{}
	n := 200000
	for i := 0; i < n; i++ {
		counts[PickTx(r)]++
	}
	frac := func(tt TxType) float64 { return float64(counts[tt]) / float64(n) }
	if f := frac(NewOrder); f < 0.43 || f > 0.47 {
		t.Fatalf("NewOrder fraction %.3f, want ~0.45", f)
	}
	if f := frac(Payment); f < 0.41 || f > 0.45 {
		t.Fatalf("Payment fraction %.3f, want ~0.43", f)
	}
	for _, tt := range []TxType{OrderStatus, Delivery, StockLevel} {
		if f := frac(tt); f < 0.03 || f > 0.05 {
			t.Fatalf("%v fraction %.3f, want ~0.04", tt, f)
		}
	}
}

func TestNURandBounds(t *testing.T) {
	r := sim.NewRand(2)
	for i := 0; i < 100000; i++ {
		if c := CustomerID(r); c < 1 || c > 3000 {
			t.Fatalf("customer id %d out of range", c)
		}
		if it := ItemID(r); it < 1 || it > 100000 {
			t.Fatalf("item id %d out of range", it)
		}
	}
}

func TestNURandNonUniform(t *testing.T) {
	// NURand concentrates mass: the most popular percentile should get
	// well above 1% of draws.
	r := sim.NewRand(3)
	counts := make([]int, 3001)
	n := 300000
	for i := 0; i < n; i++ {
		counts[CustomerID(r)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := float64(n) / 3000
	if float64(max) < 2*uniform {
		t.Fatalf("NURand looks uniform: max bucket %d vs uniform %f", max, uniform)
	}
}

func TestSkewPickPageBoundsAndShape(t *testing.T) {
	r := sim.NewRand(4)
	s := DefaultSkew()
	const total = 100000
	hot := int64(float64(total) * s.HotFrac)
	hotCount := 0
	n := 200000
	for i := 0; i < n; i++ {
		p := s.PickPage(r, total)
		if p < 0 || p >= total {
			t.Fatalf("page %d out of range", p)
		}
		if p < hot {
			hotCount++
		}
	}
	f := float64(hotCount) / float64(n)
	if f < s.HotProb*0.9 || f > s.HotProb*1.2 {
		t.Fatalf("hot fraction %.3f, want ~%.2f", f, s.HotProb)
	}
}

func TestTxTypeStrings(t *testing.T) {
	names := map[TxType]string{
		NewOrder: "NewOrder", Payment: "Payment", OrderStatus: "OrderStatus",
		Delivery: "Delivery", StockLevel: "StockLevel",
	}
	for tt, want := range names {
		if tt.String() != want {
			t.Fatalf("%d name %q", tt, tt.String())
		}
	}
	if TxType(9).String() != "Tx(?)" {
		t.Fatal("unknown type name")
	}
}

// memStorage is an instant in-memory Storage for engine unit tests.
type memStorage struct {
	reads, writes int
	delay         time.Duration
}

func (m *memStorage) ReadPage(p *sim.Proc, off int64, length int) {
	m.reads++
	if m.delay > 0 {
		p.Sleep(m.delay)
	}
}
func (m *memStorage) ReadPages(p *sim.Proc, offs []int64, length int) {
	m.reads += len(offs)
	if m.delay > 0 {
		p.Sleep(m.delay) // overlapped batch: one latency for the batch
	}
}
func (m *memStorage) WritePage(p *sim.Proc, off int64, length int) {
	m.writes++
	if m.delay > 0 {
		p.Sleep(m.delay)
	}
}
func (m *memStorage) VolumeSize() int64 { return 1 << 40 }

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Workers = 8
	cfg.BufferPoolPages = 500
	cfg.DBPages = 10000
	cfg.Cleaners = 2
	return cfg
}

func TestEngineCommitsTransactions(t *testing.T) {
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, 4)
	st := &memStorage{delay: 200 * time.Microsecond}
	en := New(e, cpus, st, smallConfig())
	en.Start()
	e.RunFor(200 * time.Millisecond)
	en.BeginMeasurement()
	e.RunFor(time.Second)
	en.Stop()
	e.RunFor(100 * time.Millisecond)
	if en.Committed(NewOrder) == 0 || en.Committed(Payment) == 0 {
		t.Fatal("no transactions committed")
	}
	if en.TpmC() <= 0 {
		t.Fatalf("tpmC = %v", en.TpmC())
	}
	rd, wr := en.PhysicalIOs()
	if rd == 0 || wr == 0 {
		t.Fatalf("physical IOs rd=%d wr=%d", rd, wr)
	}
}

func TestEngineBufferPoolAbsorbsHotSet(t *testing.T) {
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, 4)
	st := &memStorage{}
	cfg := smallConfig()
	en := New(e, cpus, st, cfg)
	en.Start()
	e.RunFor(2 * time.Second)
	en.Stop()
	e.RunFor(100 * time.Millisecond)
	hr := en.BufferHitRatio()
	// Pool is 5% of pages but the skew sends 40% of refs to 1% of pages:
	// hit ratio must be far above 5% yet below 100%.
	if hr < 0.3 || hr > 0.95 {
		t.Fatalf("buffer hit ratio %.3f outside plausible band", hr)
	}
}

func TestEngineReadWriteMixRoughly70_30(t *testing.T) {
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, 4)
	st := &memStorage{delay: 100 * time.Microsecond}
	en := New(e, cpus, st, smallConfig())
	en.Start()
	e.RunFor(3 * time.Second)
	en.Stop()
	e.RunFor(100 * time.Millisecond)
	rd, wr := en.PhysicalIOs()
	f := float64(rd) / float64(rd+wr)
	// The paper: TPC-C generates random I/O with a 70% read / 30% write
	// distribution. Accept 55-85% — the exact split depends on cache state.
	if f < 0.55 || f > 0.85 {
		t.Fatalf("read fraction %.3f, want ~0.7", f)
	}
}

func TestEngineMoreCPUsMoreThroughput(t *testing.T) {
	run := func(ncpu int) int64 {
		e := sim.NewEngine()
		cpus := hw.NewCPUPool(e, ncpu)
		st := &memStorage{delay: 50 * time.Microsecond}
		cfg := smallConfig()
		cfg.Workers = ncpu * 4
		en := New(e, cpus, st, cfg)
		en.Start()
		e.RunFor(time.Second)
		en.Stop()
		e.RunFor(100 * time.Millisecond)
		return en.Committed(NewOrder)
	}
	one, four := run(1), run(4)
	if four < one*2 {
		t.Fatalf("4 CPUs (%d) should far outrun 1 CPU (%d)", four, one)
	}
}

func TestEngineStorageDelaySlowsThroughput(t *testing.T) {
	run := func(d time.Duration) int64 {
		e := sim.NewEngine()
		cpus := hw.NewCPUPool(e, 2)
		st := &memStorage{delay: d}
		en := New(e, cpus, st, smallConfig())
		en.Start()
		e.RunFor(time.Second)
		en.Stop()
		e.RunFor(100 * time.Millisecond)
		return en.Committed(NewOrder)
	}
	fast, slow := run(50*time.Microsecond), run(5*time.Millisecond)
	if slow >= fast {
		t.Fatalf("slow storage (%d) should cut throughput vs fast (%d)", slow, fast)
	}
}

func TestEngineLogGroupCommit(t *testing.T) {
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, 4)
	st := &memStorage{delay: 100 * time.Microsecond}
	en := New(e, cpus, st, smallConfig())
	en.Start()
	e.RunFor(time.Second)
	en.Stop()
	e.RunFor(100 * time.Millisecond)
	commits := en.Committed(NewOrder) + en.Committed(Payment) + en.Committed(Delivery)
	if en.logWrites.Value() == 0 {
		t.Fatal("no log writes")
	}
	if en.logWrites.Value() >= commits {
		t.Fatalf("group commit should batch: %d log writes for %d commits",
			en.logWrites.Value(), commits)
	}
}

func TestProfilesCoverAllTypes(t *testing.T) {
	for i, prof := range Profiles() {
		if prof.Type != TxType(i) {
			t.Fatalf("profile %d mislabeled %v", i, prof.Type)
		}
		if prof.CPU <= 0 || prof.PageReads <= 0 {
			t.Fatalf("profile %v has no demand", prof.Type)
		}
	}
}

func TestEngineReport(t *testing.T) {
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, 4)
	st := &memStorage{delay: 200 * time.Microsecond}
	en := New(e, cpus, st, smallConfig())
	en.Start()
	e.RunFor(200 * time.Millisecond)
	en.BeginMeasurement()
	e.RunFor(time.Second)
	en.Stop()
	e.RunFor(100 * time.Millisecond)
	rep := en.Report()
	if rep.TpmC <= 0 {
		t.Fatal("no tpmC in report")
	}
	if len(rep.Types) != 5 {
		t.Fatalf("types=%d", len(rep.Types))
	}
	for _, tr := range rep.Types[:2] { // NewOrder and Payment must have run
		if tr.Committed == 0 || tr.MeanLat <= 0 {
			t.Fatalf("%v: committed=%d mean=%v", tr.Type, tr.Committed, tr.MeanLat)
		}
		if tr.P99Lat < tr.P90Lat || tr.P90Lat < 0 {
			t.Fatalf("%v: percentiles out of order", tr.Type)
		}
	}
	out := rep.String()
	if !strings.Contains(out, "NewOrder") || !strings.Contains(out, "tpmC") {
		t.Fatalf("report rendering wrong:\n%s", out)
	}
	// Heavier transactions should take longer on average.
	var no, pay time.Duration
	for _, tr := range rep.Types {
		switch tr.Type {
		case NewOrder:
			no = tr.MeanLat
		case Payment:
			pay = tr.MeanLat
		}
	}
	if no <= pay {
		t.Fatalf("NewOrder (%v) should outweigh Payment (%v)", no, pay)
	}
}
