package oltp

import (
	"fmt"
	"strings"
	"time"

	"github.com/v3storage/v3/internal/sim"
)

// TxReport summarizes one transaction type's behaviour over a run.
type TxReport struct {
	Type      TxType
	Committed int64
	MeanLat   time.Duration
	P90Lat    time.Duration
	P99Lat    time.Duration
}

// Report is the per-type performance summary of an Engine run — the kind
// of table a TPC-C full disclosure report carries alongside tpmC.
type Report struct {
	TpmC      float64
	BufferHit float64
	Types     []TxReport
}

// String renders the report as aligned text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tpmC %.0f, buffer-pool hit %.1f%%\n", r.TpmC, r.BufferHit*100)
	fmt.Fprintf(&b, "%-12s %10s %12s %12s %12s\n", "transaction", "committed", "mean", "p90", "p99")
	for _, t := range r.Types {
		fmt.Fprintf(&b, "%-12s %10d %12v %12v %12v\n",
			t.Type, t.Committed, t.MeanLat.Round(time.Microsecond),
			t.P90Lat.Round(time.Microsecond), t.P99Lat.Round(time.Microsecond))
	}
	return b.String()
}

// Report builds the per-type summary from the engine's recorded
// transaction latencies.
func (en *Engine) Report() *Report {
	r := &Report{TpmC: en.TpmC(), BufferHit: en.BufferHitRatio()}
	for i := 0; i < int(numTxTypes); i++ {
		s := &en.txLat[i]
		r.Types = append(r.Types, TxReport{
			Type:      TxType(i),
			Committed: en.committed[i].Value(),
			MeanLat:   time.Duration(s.Mean() * float64(time.Second)),
			P90Lat:    time.Duration(s.Percentile(90) * float64(time.Second)),
			P99Lat:    time.Duration(s.Percentile(99) * float64(time.Second)),
		})
	}
	return r
}

// recordTxLatency is called by workers at commit.
func (en *Engine) recordTxLatency(t TxType, d sim.Time) {
	en.txLat[t].AddDuration(time.Duration(d))
}
