package volume

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestConcatMapping(t *testing.T) {
	c, err := NewConcat(100, 200, 50)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 350 || c.Members() != 3 {
		t.Fatalf("size=%d members=%d", c.Size(), c.Members())
	}
	ext, err := c.MapRead(90, 30)
	if err != nil {
		t.Fatal(err)
	}
	want := []Extent{{Disk: 0, Offset: 90, Length: 10}, {Disk: 1, Offset: 0, Length: 20}}
	if len(ext) != 2 || ext[0] != want[0] || ext[1] != want[1] {
		t.Fatalf("ext=%v, want %v", ext, want)
	}
}

func TestConcatSpansThreeMembers(t *testing.T) {
	c, _ := NewConcat(10, 10, 10)
	ext, err := c.MapRead(5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 3 || ext[0].Disk != 0 || ext[1].Disk != 1 || ext[2].Disk != 2 {
		t.Fatalf("ext=%v", ext)
	}
	if ext[0].Length+ext[1].Length+ext[2].Length != 20 {
		t.Fatalf("lengths don't sum: %v", ext)
	}
}

func TestConcatOutOfRange(t *testing.T) {
	c, _ := NewConcat(100)
	for _, tc := range []struct {
		off int64
		n   int
	}{{-1, 10}, {0, 101}, {100, 1}, {50, -1}} {
		if _, err := c.MapRead(tc.off, tc.n); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("off=%d n=%d: err=%v", tc.off, tc.n, err)
		}
	}
	// Zero-length at the boundary is legal.
	if _, err := c.MapRead(100, 0); err != nil {
		t.Fatalf("boundary zero-length read: %v", err)
	}
}

func TestConcatConstructorValidation(t *testing.T) {
	if _, err := NewConcat(); err == nil {
		t.Fatal("empty concat accepted")
	}
	if _, err := NewConcat(10, 0); err == nil {
		t.Fatal("zero-size member accepted")
	}
}

func TestStripeRoundRobin(t *testing.T) {
	s, err := NewStripe(4, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 400 {
		t.Fatalf("size=%d", s.Size())
	}
	// Offsets 0,10,20,30 land on disks 0,1,2,3; 40 wraps to disk 0 row 1.
	for i, wantDisk := range []int{0, 1, 2, 3, 0} {
		ext, err := s.MapRead(int64(i*10), 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(ext) != 1 || ext[0].Disk != wantDisk {
			t.Fatalf("offset %d: ext=%v, want disk %d", i*10, ext, wantDisk)
		}
	}
	ext, _ := s.MapRead(40, 10)
	if ext[0].Offset != 10 {
		t.Fatalf("row-1 member offset=%d, want 10", ext[0].Offset)
	}
}

func TestStripeSplitsAcrossBoundary(t *testing.T) {
	s, _ := NewStripe(2, 10, 100)
	ext, err := s.MapRead(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 2 || ext[0].Disk != 0 || ext[1].Disk != 1 {
		t.Fatalf("ext=%v", ext)
	}
	if ext[0].Length != 5 || ext[1].Length != 5 {
		t.Fatalf("lengths=%v", ext)
	}
}

func TestStripeGeometryValidation(t *testing.T) {
	if _, err := NewStripe(0, 10, 100); err == nil {
		t.Fatal("zero members accepted")
	}
	if _, err := NewStripe(2, 10, 105); err == nil {
		t.Fatal("non-multiple member size accepted")
	}
	if _, err := NewStripe(2, 0, 100); err == nil {
		t.Fatal("zero stripe accepted")
	}
}

func TestMirrorReadsRotateWritesFanOut(t *testing.T) {
	inner, _ := NewConcat(100)
	m, err := NewMirror(inner, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 100 || m.Members() != 2 {
		t.Fatalf("size=%d members=%d", m.Size(), m.Members())
	}
	r1, _ := m.MapRead(0, 10)
	r2, _ := m.MapRead(0, 10)
	if r1[0].Disk == r2[0].Disk {
		t.Fatalf("reads did not rotate: %v then %v", r1, r2)
	}
	w, _ := m.MapWrite(0, 10)
	if len(w) != 2 || w[0].Disk == w[1].Disk {
		t.Fatalf("write fan-out wrong: %v", w)
	}
}

func TestMirrorOverStripe(t *testing.T) {
	inner, _ := NewStripe(2, 10, 100)
	m, _ := NewMirror(inner, 2)
	if m.Members() != 4 {
		t.Fatalf("members=%d", m.Members())
	}
	w, err := m.MapWrite(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 2 extents per replica (stripe split), 2 replicas.
	if len(w) != 4 {
		t.Fatalf("extents=%v", w)
	}
	disks := map[int]bool{}
	for _, e := range w {
		disks[e.Disk] = true
	}
	if len(disks) != 4 {
		t.Fatalf("write should touch 4 distinct disks: %v", w)
	}
}

// TestMirrorMaskedMemberReads pins the degraded-mode read contract the
// cluster vault (internal/vvault) relies on: with replica 1 masked,
// every read maps to replica 0 — rotation never lands on the dead
// member — and unmasking restores the rotation.
func TestMirrorMaskedMemberReads(t *testing.T) {
	inner, _ := NewConcat(100)
	m, _ := NewMirror(inner, 2)
	m.SetMask(1, true)
	if !m.Masked(1) || m.Masked(0) || m.MaskedCount() != 1 {
		t.Fatalf("mask state wrong: %v %v %d", m.Masked(0), m.Masked(1), m.MaskedCount())
	}
	for i := 0; i < 4; i++ {
		ext, err := m.MapRead(10, 20)
		if err != nil {
			t.Fatal(err)
		}
		want := []Extent{{Disk: 0, Offset: 10, Length: 20}}
		if len(ext) != 1 || ext[0] != want[0] {
			t.Fatalf("read %d under mask: ext=%v, want %v", i, ext, want)
		}
	}
	m.SetMask(1, false)
	r1, _ := m.MapRead(0, 10)
	r2, _ := m.MapRead(0, 10)
	if r1[0].Disk == r2[0].Disk {
		t.Fatalf("rotation did not resume after unmask: %v then %v", r1, r2)
	}
}

// TestMirrorAllMaskedFails pins the fail-fast contract: a mirror with
// every replica masked cannot serve reads.
func TestMirrorAllMaskedFails(t *testing.T) {
	inner, _ := NewConcat(100)
	m, _ := NewMirror(inner, 2)
	m.SetMask(0, true)
	m.SetMask(1, true)
	if _, err := m.MapRead(0, 10); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err=%v, want ErrNoReplica", err)
	}
}

// TestMirrorMaskedMemberWrites pins the write fan-out under a mask:
// MapWrite still returns the masked replica's extents (here replica 1's
// copy of [30,+20)), which is exactly the extent set vvault records in
// the dead replica's dirty log and later replays during resync.
func TestMirrorMaskedMemberWrites(t *testing.T) {
	inner, _ := NewConcat(100)
	m, _ := NewMirror(inner, 2)
	m.SetMask(1, true)
	w, err := m.MapWrite(30, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := []Extent{{Disk: 0, Offset: 30, Length: 20}, {Disk: 1, Offset: 30, Length: 20}}
	if len(w) != 2 || w[0] != want[0] || w[1] != want[1] {
		t.Fatalf("masked write fan-out: ext=%v, want %v", w, want)
	}
}

// TestMirrorOverStripeMasked pins the member-index arithmetic with a
// nested layout: masking replica 1 of a mirror-over-stripe keeps reads
// on members 0..1 and writes still cover members 2..3.
func TestMirrorOverStripeMasked(t *testing.T) {
	inner, _ := NewStripe(2, 10, 100)
	m, _ := NewMirror(inner, 2)
	m.SetMask(1, true)
	for i := 0; i < 3; i++ {
		ext, err := m.MapRead(5, 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ext {
			if e.Disk >= 2 {
				t.Fatalf("read hit masked replica's member: %v", ext)
			}
		}
	}
	w, _ := m.MapWrite(5, 10)
	disks := map[int]bool{}
	for _, e := range w {
		disks[e.Disk] = true
	}
	for _, d := range []int{0, 1, 2, 3} {
		if !disks[d] {
			t.Fatalf("write fan-out missing member %d: %v", d, w)
		}
	}
}

func TestMirrorValidation(t *testing.T) {
	inner, _ := NewConcat(10)
	if _, err := NewMirror(inner, 1); err == nil {
		t.Fatal("single-replica mirror accepted")
	}
	if _, err := NewMirror(nil, 2); err == nil {
		t.Fatal("nil inner accepted")
	}
}

func TestCoalesceMergesFullRow(t *testing.T) {
	// Reading a whole multiple-of-row region still splits per disk but
	// merges contiguous per-disk runs.
	s, _ := NewStripe(2, 10, 100)
	ext, _ := s.MapRead(0, 40)
	// Row 0: d0[0:10], d1[0:10]; row 1: d0[10:20], d1[10:20] — no adjacent
	// same-disk merges here, so expect 4.
	if len(ext) != 4 {
		t.Fatalf("ext=%v", ext)
	}
	var total int
	for _, e := range ext {
		total += e.Length
	}
	if total != 40 {
		t.Fatalf("coverage=%d", total)
	}
}

// Property: for any layout, mapped extents exactly tile the request —
// lengths sum to the request length, extents stay within member bounds,
// and (for concat/stripe) no two extents overlap on the same disk.
func TestMappingCoverageProperty(t *testing.T) {
	layouts := func() []Layout {
		c, _ := NewConcat(1000, 500, 2000)
		s, _ := NewStripe(3, 128, 1024)
		inner, _ := NewStripe(2, 64, 512)
		m, _ := NewMirror(inner, 2)
		return []Layout{c, s, m}
	}
	f := func(offRaw uint32, lenRaw uint16) bool {
		for _, l := range layouts() {
			off := int64(offRaw) % l.Size()
			length := int(lenRaw)
			if off+int64(length) > l.Size() {
				length = int(l.Size() - off)
			}
			rd, err := l.MapRead(off, length)
			if err != nil {
				return false
			}
			var sum int
			for _, e := range rd {
				if e.Length < 0 || e.Offset < 0 {
					return false
				}
				sum += e.Length
			}
			if sum != length {
				return false
			}
			wr, err := l.MapWrite(off, length)
			if err != nil {
				return false
			}
			sum = 0
			for _, e := range wr {
				sum += e.Length
			}
			// Mirrors fan out; writes cover a multiple of the length.
			if length > 0 && (sum == 0 || sum%length != 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
