// Package volume implements the V3 volume manager's address mapping: a
// V3 volume is a virtual disk built from one or more physical disks via
// concatenation, striping (RAID-0), or mirroring (RAID-1), possibly
// nested ("V3 volumes can span multiple V3 nodes using combinations of
// RAID, such as concatenation and other disk organizations").
//
// The package is pure address arithmetic: a Layout maps a (offset,
// length) volume extent to the member extents that serve it. I/O
// execution belongs to the disk manager.
package volume

import (
	"errors"
	"fmt"
	"sync"
)

// Extent is a contiguous byte range on a member device.
type Extent struct {
	Disk   int   // member index
	Offset int64 // byte offset on that member
	Length int   // bytes
}

// Layout maps volume addresses to member extents.
type Layout interface {
	// Size returns the volume's usable size in bytes.
	Size() int64
	// MapRead returns the extents to read for [off, off+length).
	MapRead(off int64, length int) ([]Extent, error)
	// MapWrite returns the extents to write for [off, off+length)
	// (mirroring fans a write out to every replica).
	MapWrite(off int64, length int) ([]Extent, error)
	// Members returns the number of member devices.
	Members() int
}

// ErrOutOfRange reports an access beyond the end of the volume.
var ErrOutOfRange = errors.New("volume: access out of range")

func checkRange(size, off int64, length int) error {
	if off < 0 || length < 0 || off+int64(length) > size {
		return fmt.Errorf("%w: off=%d len=%d size=%d", ErrOutOfRange, off, length, size)
	}
	return nil
}

// Concat appends member disks end to end.
type Concat struct {
	sizes  []int64
	starts []int64 // prefix sums
	total  int64
}

// NewConcat builds a concatenation of members with the given sizes.
func NewConcat(sizes ...int64) (*Concat, error) {
	if len(sizes) == 0 {
		return nil, errors.New("volume: concat needs at least one member")
	}
	c := &Concat{sizes: sizes, starts: make([]int64, len(sizes))}
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("volume: member %d has size %d", i, s)
		}
		c.starts[i] = c.total
		c.total += s
	}
	return c, nil
}

// Size implements Layout.
func (c *Concat) Size() int64 { return c.total }

// Members implements Layout.
func (c *Concat) Members() int { return len(c.sizes) }

// MapRead implements Layout.
func (c *Concat) MapRead(off int64, length int) ([]Extent, error) {
	if err := checkRange(c.total, off, length); err != nil {
		return nil, err
	}
	var out []Extent
	for length > 0 {
		// Find the member containing off (linear scan over prefix sums is
		// fine: member counts are small).
		i := 0
		for i+1 < len(c.starts) && c.starts[i+1] <= off {
			i++
		}
		within := off - c.starts[i]
		chunk := c.sizes[i] - within
		if int64(length) < chunk {
			chunk = int64(length)
		}
		out = append(out, Extent{Disk: i, Offset: within, Length: int(chunk)})
		off += chunk
		length -= int(chunk)
	}
	return out, nil
}

// MapWrite implements Layout.
func (c *Concat) MapWrite(off int64, length int) ([]Extent, error) {
	return c.MapRead(off, length)
}

// Stripe interleaves data across members in stripeSize units (RAID-0).
type Stripe struct {
	members    int
	stripeSize int64
	memberSize int64
}

// NewStripe builds a RAID-0 layout over members disks of memberSize bytes
// each, striped in stripeSize units. memberSize must be a multiple of
// stripeSize.
func NewStripe(members int, stripeSize, memberSize int64) (*Stripe, error) {
	if members <= 0 {
		return nil, errors.New("volume: stripe needs at least one member")
	}
	if stripeSize <= 0 || memberSize <= 0 || memberSize%stripeSize != 0 {
		return nil, fmt.Errorf("volume: bad stripe geometry (stripe=%d member=%d)", stripeSize, memberSize)
	}
	return &Stripe{members: members, stripeSize: stripeSize, memberSize: memberSize}, nil
}

// Size implements Layout.
func (s *Stripe) Size() int64 { return s.memberSize * int64(s.members) }

// Members implements Layout.
func (s *Stripe) Members() int { return s.members }

// MapRead implements Layout.
func (s *Stripe) MapRead(off int64, length int) ([]Extent, error) {
	if err := checkRange(s.Size(), off, length); err != nil {
		return nil, err
	}
	var out []Extent
	for length > 0 {
		stripeNo := off / s.stripeSize
		within := off % s.stripeSize
		disk := int(stripeNo % int64(s.members))
		row := stripeNo / int64(s.members)
		chunk := s.stripeSize - within
		if int64(length) < chunk {
			chunk = int64(length)
		}
		out = append(out, Extent{
			Disk:   disk,
			Offset: row*s.stripeSize + within,
			Length: int(chunk),
		})
		off += chunk
		length -= int(chunk)
	}
	return coalesce(out), nil
}

// MapWrite implements Layout.
func (s *Stripe) MapWrite(off int64, length int) ([]Extent, error) {
	return s.MapRead(off, length)
}

// ErrNoReplica reports a mirror read with every replica masked out.
var ErrNoReplica = errors.New("volume: every mirror replica is masked")

// Mirror replicates an inner layout n times (RAID-1). Reads rotate over
// replicas; writes fan out to all of them. Member indices are
// replica*inner.Members() + innerDisk.
//
// A replica may be masked (SetMask) to take it out of the read rotation
// while it is failed or resynchronizing. Masking affects reads only:
// MapWrite keeps fanning out to every replica, masked or not, so a
// cluster layer can see exactly which extents it is *not* sending to the
// dead replica and record them in its dirty log for resync. Rotation and
// mask state are guarded by a mutex, so a Mirror is safe for concurrent
// mapping calls.
type Mirror struct {
	inner    Layout
	replicas int

	mu     sync.Mutex
	next   int // read rotation
	masked []bool
}

// NewMirror mirrors inner across replicas copies.
func NewMirror(inner Layout, replicas int) (*Mirror, error) {
	if inner == nil || replicas < 2 {
		return nil, errors.New("volume: mirror needs an inner layout and >= 2 replicas")
	}
	return &Mirror{inner: inner, replicas: replicas, masked: make([]bool, replicas)}, nil
}

// SetMask marks replica as masked (excluded from read rotation) or
// unmasked. Out-of-range replicas are ignored.
func (m *Mirror) SetMask(replica int, masked bool) {
	if replica < 0 || replica >= m.replicas {
		return
	}
	m.mu.Lock()
	m.masked[replica] = masked
	m.mu.Unlock()
}

// Masked reports whether replica is currently masked.
func (m *Mirror) Masked(replica int) bool {
	if replica < 0 || replica >= m.replicas {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.masked[replica]
}

// MaskedCount returns how many replicas are masked.
func (m *Mirror) MaskedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, v := range m.masked {
		if v {
			n++
		}
	}
	return n
}

// Replicas returns the replica count.
func (m *Mirror) Replicas() int { return m.replicas }

// Size implements Layout.
func (m *Mirror) Size() int64 { return m.inner.Size() }

// Members implements Layout.
func (m *Mirror) Members() int { return m.inner.Members() * m.replicas }

// MapRead implements Layout: one unmasked replica serves the read,
// chosen round-robin to spread load. With every replica masked it
// returns ErrNoReplica.
func (m *Mirror) MapRead(off int64, length int) ([]Extent, error) {
	ext, err := m.inner.MapRead(off, length)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	r := -1
	for i := 0; i < m.replicas; i++ {
		cand := (m.next + i) % m.replicas
		if !m.masked[cand] {
			r = cand
			break
		}
	}
	if r >= 0 {
		m.next = (r + 1) % m.replicas
	}
	m.mu.Unlock()
	if r < 0 {
		return nil, ErrNoReplica
	}
	out := make([]Extent, len(ext))
	for i, e := range ext {
		e.Disk += r * m.inner.Members()
		out[i] = e
	}
	return out, nil
}

// MapWrite implements Layout: every replica is written, including masked
// ones — the caller owns routing around a failed replica and must track
// the extents it skips (the dirty log a later resync replays).
func (m *Mirror) MapWrite(off int64, length int) ([]Extent, error) {
	ext, err := m.inner.MapWrite(off, length)
	if err != nil {
		return nil, err
	}
	var out []Extent
	for r := 0; r < m.replicas; r++ {
		for _, e := range ext {
			e2 := e
			e2.Disk += r * m.inner.Members()
			out = append(out, e2)
		}
	}
	return out, nil
}

// coalesce merges adjacent extents that landed contiguously on the same
// disk (happens when a request spans a full stripe row).
func coalesce(ext []Extent) []Extent {
	if len(ext) < 2 {
		return ext
	}
	out := ext[:1]
	for _, e := range ext[1:] {
		last := &out[len(out)-1]
		if e.Disk == last.Disk && e.Offset == last.Offset+int64(last.Length) {
			last.Length += e.Length
			continue
		}
		out = append(out, e)
	}
	return out
}
