package core_test

import (
	"testing"
	"time"

	"github.com/v3storage/v3/internal/bench"
	"github.com/v3storage/v3/internal/core"
	"github.com/v3storage/v3/internal/sim"
	"github.com/v3storage/v3/internal/v3srv"
)

func microSystem(impl core.Impl) *bench.System {
	return bench.Build(bench.MicroConfig(impl))
}

func TestSyncReadCompletesAllImpls(t *testing.T) {
	for _, impl := range []core.Impl{core.KDSA, core.WDSA, core.CDSA} {
		t.Run(impl.String(), func(t *testing.T) {
			sys := microSystem(impl)
			var r *core.Request
			sys.E.Go("app", func(p *sim.Proc) {
				r = sys.Client.Read(p, 8192, 8192)
				sys.Client.Stop()
			})
			sys.E.RunFor(time.Second)
			if r == nil || !r.Done() {
				t.Fatal("read did not complete")
			}
			if r.Latency() <= 0 {
				t.Fatal("no latency recorded")
			}
			if r.ServerTime() <= 0 {
				t.Fatal("server time not reported")
			}
			if got := sys.TotalServed(); got != 1 {
				t.Fatalf("server served %d", got)
			}
		})
	}
}

func TestSyncWriteCompletesAllImpls(t *testing.T) {
	for _, impl := range []core.Impl{core.KDSA, core.WDSA, core.CDSA} {
		t.Run(impl.String(), func(t *testing.T) {
			sys := microSystem(impl)
			var r *core.Request
			sys.E.Go("app", func(p *sim.Proc) {
				r = sys.Client.Write(p, 0, 8192)
				sys.Client.Stop()
			})
			sys.E.RunFor(time.Second)
			if r == nil || !r.Done() {
				t.Fatal("write did not complete")
			}
			rd, wr := sys.Client.IOs()
			if rd != 0 || wr != 1 {
				t.Fatalf("rd=%d wr=%d", rd, wr)
			}
		})
	}
}

func TestAsyncPipelining(t *testing.T) {
	// 8 outstanding 8K reads must take far less than 8x one read's latency.
	oneLat := func(outstanding int) time.Duration {
		sys := microSystem(core.KDSA)
		var elapsed time.Duration
		sys.E.Go("app", func(p *sim.Proc) {
			t0 := p.Now()
			for round := 0; round < 4; round++ {
				var reqs []*core.Request
				for i := 0; i < outstanding; i++ {
					reqs = append(reqs, sys.Client.ReadAsync(p, int64(i)*8192, 8192))
				}
				for _, r := range reqs {
					sys.Client.Wait(p, r)
				}
			}
			elapsed = time.Duration(p.Now() - t0)
			sys.Client.Stop()
		})
		sys.E.RunFor(time.Second)
		return elapsed / 4 / time.Duration(outstanding)
	}
	serial := oneLat(1)
	pipelined := oneLat(8)
	if pipelined >= serial*3/4 {
		t.Fatalf("per-IO time with 8 outstanding (%v) should beat serial (%v)", pipelined, serial)
	}
}

func TestCDSAPollModeAvoidsInterrupts(t *testing.T) {
	run := func(batched bool) int64 {
		cfg := bench.MicroConfig(core.CDSA)
		cfg.DSA.Opts.BatchedInterrupts = batched
		// A polling interval that covers even cold (disk) reads, so the
		// poll path is what gets exercised.
		cfg.DSA.PollInterval = 100 * time.Millisecond
		sys := bench.Build(cfg)
		sys.E.Go("app", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				sys.Client.Read(p, int64(i)*8192, 8192)
			}
			sys.Client.Stop()
		})
		sys.E.RunFor(time.Second)
		return sys.Client.Interrupts()
	}
	withPoll := run(true)
	withoutPoll := run(false)
	if withoutPoll < 50 {
		t.Fatalf("interrupt mode should take ~1 interrupt per IO, got %d", withoutPoll)
	}
	if withPoll != 0 {
		t.Fatalf("poll mode took %d interrupts, want 0 under sync load", withPoll)
	}
}

func TestKDSAInterruptBatchingUnderLoad(t *testing.T) {
	// Like a database under load: several worker threads keep issuing, so
	// completions are reaped synchronously during other workers' submits.
	run := func(batched bool) int64 {
		cfg := bench.MicroConfig(core.KDSA)
		cfg.DSA.Opts.BatchedInterrupts = batched
		sys := bench.Build(cfg)
		workers := 4
		done := 0
		for w := 0; w < workers; w++ {
			base := int64(w * 16)
			sys.E.Go("worker", func(p *sim.Proc) {
				for round := 0; round < 25; round++ {
					var reqs []*core.Request
					for i := 0; i < 4; i++ {
						// Shared 64-block set: after the first pass the
						// server cache serves everything at ~100µs, which is
						// the high-IO-rate regime interrupt batching targets.
						off := (base + int64(round*4+i)) % 64 * 8192
						reqs = append(reqs, sys.Client.ReadAsync(p, off, 8192))
					}
					for _, r := range reqs {
						sys.Client.Wait(p, r)
					}
				}
				done++
				if done == workers {
					sys.Client.Stop()
				}
			})
		}
		sys.E.RunFor(20 * time.Second)
		if sys.Client.CompletedIOs() != 400 {
			t.Fatalf("completed %d of 400", sys.Client.CompletedIOs())
		}
		return sys.Client.Interrupts()
	}
	batchedIntr := run(true)
	plainIntr := run(false)
	if plainIntr < 400 {
		t.Fatalf("unbatched: %d interrupts for 400 IOs", plainIntr)
	}
	// Workers here submit in synchronized batches — the least favorable
	// pattern — so require a 2x cut; continuous OLTP load does far better
	// (the submit-path reap handles most completions, see Fig 9/12 benches).
	if batchedIntr > plainIntr/2 {
		t.Fatalf("batching should slash interrupts: %d vs %d", batchedIntr, plainIntr)
	}
}

func TestBatchedDeregReducesOps(t *testing.T) {
	run := func(batched bool) int64 {
		cfg := bench.MicroConfig(core.KDSA)
		cfg.DSA.Opts.BatchedDereg = batched
		sys := bench.Build(cfg)
		sys.E.Go("app", func(p *sim.Proc) {
			for i := 0; i < 600; i++ {
				sys.Client.Read(p, int64(i%100)*8192, 8192)
			}
			sys.Client.Stop()
		})
		sys.E.RunFor(10 * time.Second)
		return sys.Client.DeregOps()
	}
	imm := run(false)
	if imm != 600 {
		t.Fatalf("immediate dereg ops = %d, want 600", imm)
	}
	// Batched mode deregisters per region; the idle-flush timer seals a
	// few extra partial regions during slow (disk-bound) stretches, so
	// allow a generous margin while still requiring order-of-magnitude
	// savings.
	if b := run(true); b > imm/20 {
		t.Fatalf("batched dereg ops = %d, want <= %d", b, imm/20)
	}
}

func TestWatchdogDrainsParkedCompletions(t *testing.T) {
	// Push outstanding above the high watermark, then stop submitting:
	// the watchdog must reap the parked completions.
	sys := microSystem(core.KDSA)
	var reqs []*core.Request
	sys.E.Go("app", func(p *sim.Proc) {
		for i := 0; i < 12; i++ {
			reqs = append(reqs, sys.Client.ReadAsync(p, int64(i)*8192, 8192))
		}
		for _, r := range reqs {
			sys.Client.Wait(p, r)
		}
		sys.Client.Stop()
	})
	sys.E.RunFor(time.Second)
	for i, r := range reqs {
		if !r.Done() {
			t.Fatalf("request %d never completed (watchdog failed)", i)
		}
	}
}

func TestMultiServerStriping(t *testing.T) {
	cfg := bench.MicroConfig(core.CDSA)
	cfg.NumServers = 4
	sys := bench.Build(cfg)
	sys.E.Go("app", func(p *sim.Proc) {
		// Touch offsets in different stripes so all servers see traffic.
		for i := 0; i < 16; i++ {
			sys.Client.Read(p, int64(i)*cfg.DSA.ServerStripe, 8192)
		}
		sys.Client.Stop()
	})
	sys.E.RunFor(time.Second)
	for i, srv := range sys.Servers {
		if srv.Served() != 4 {
			t.Fatalf("server %d served %d, want 4", i, srv.Served())
		}
	}
}

func TestStraddlingRequestPanics(t *testing.T) {
	sys := microSystem(core.KDSA)
	panicked := false
	sys.E.Go("app", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
			sys.Client.Stop()
		}()
		sys.Client.Read(p, sys.Client.Config().ServerStripe-4096, 8192)
	})
	sys.E.RunFor(time.Second)
	if !panicked {
		t.Fatal("straddling request should panic")
	}
}

func TestLatencyOrdering(t *testing.T) {
	// Paper Fig 3: cDSA has the lowest latency, wDSA the highest.
	lat := func(impl core.Impl) time.Duration {
		sys := microSystem(impl)
		sys.E.Go("app", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				sys.Client.Read(p, int64(i%50)*8192, 8192)
			}
			sys.Client.Stop()
		})
		sys.E.RunFor(5 * time.Second)
		return sys.Client.MeanLatency()
	}
	k, w, c := lat(core.KDSA), lat(core.WDSA), lat(core.CDSA)
	if !(c < k && k < w) {
		t.Fatalf("latency order wrong: cDSA=%v kDSA=%v wDSA=%v", c, k, w)
	}
}

func TestCreditsLimitOutstanding(t *testing.T) {
	cfg := bench.MicroConfig(core.CDSA)
	cfg.DSA.Credits = 4
	sys := bench.Build(cfg)
	issued := 0
	sys.E.Go("app", func(p *sim.Proc) {
		var reqs []*core.Request
		for i := 0; i < 12; i++ {
			reqs = append(reqs, sys.Client.ReadAsync(p, int64(i)*8192, 8192))
			issued++
		}
		for _, r := range reqs {
			sys.Client.Wait(p, r)
		}
		sys.Client.Stop()
	})
	sys.E.RunFor(time.Second)
	if issued != 12 {
		t.Fatalf("issued=%d (flow control deadlocked?)", issued)
	}
	if sys.Client.CompletedIOs() != 12 {
		t.Fatalf("completed=%d", sys.Client.CompletedIOs())
	}
}

func TestImplStrings(t *testing.T) {
	if core.KDSA.String() != "kDSA" || core.WDSA.String() != "wDSA" || core.CDSA.String() != "cDSA" {
		t.Fatal("impl names wrong")
	}
	if core.Impl(9).String() != "DSA(?)" {
		t.Fatal("unknown impl name wrong")
	}
}

func TestServerCacheHitsSpeedUpReads(t *testing.T) {
	sys := microSystem(core.KDSA)
	var cold, warm time.Duration
	sys.E.Go("app", func(p *sim.Proc) {
		t0 := p.Now()
		sys.Client.Read(p, 4*8192, 8192)
		cold = time.Duration(p.Now() - t0)
		t0 = p.Now()
		sys.Client.Read(p, 4*8192, 8192)
		warm = time.Duration(p.Now() - t0)
		sys.Client.Stop()
	})
	sys.E.RunFor(time.Second)
	if warm >= cold/5 {
		t.Fatalf("cached read %v should be far below cold read %v", warm, cold)
	}
	if sys.Servers[0].CacheHitRatio() <= 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestWriteCommitsToDiskBeforeResponse(t *testing.T) {
	// With and without cache, writes must include disk time.
	sys := microSystem(core.KDSA)
	var wlat time.Duration
	sys.E.Go("app", func(p *sim.Proc) {
		r := sys.Client.Write(p, 0, 8192)
		wlat = r.Latency()
		sys.Client.Stop()
	})
	sys.E.RunFor(time.Second)
	// A 10K RPM disk write is milliseconds; a pure network round trip is
	// ~100µs. The write latency must be disk-dominated.
	if wlat < time.Millisecond {
		t.Fatalf("write latency %v too fast to have hit the disk", wlat)
	}
	_ = v3srv.OpWrite
}
