package core

import (
	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/sim"
)

// wDSA: the user-level, Win32-compatible implementation (Section 2.2).
// It replaces kernel32.dll, filtering I/O calls to V3 volumes. Issue is
// user-level (no syscall), but faithfully implementing the kernel32
// semantics costs emulation work and extra lock pairs, registration must
// pin pages (wDSA cannot use AWE because it is unaware of application
// memory management), and completion still needs the kernel: an interrupt
// per response, a kernel event signal, and a context switch to the
// application thread. Section 3 notes that wDSA's strict semantics leave
// little room for the optimizations, so none of the Opts toggles change
// its path.

func (c *Client) submitWDSA(p *sim.Proc, cc *clientConn, r *Request, serverOff int64) {
	cc.locks.CrossPairsHold(p, c.cfg.SendPairsOpt+1, c.dsaHold(), hw.CatDSA)
	c.cpus.Use(p, hw.CatDSA, c.cfg.SubmitCost+c.cfg.EmulationCost)
	c.cpus.Use(p, hw.CatOther, c.cfg.EmulationCost/2) // forwarding through system libraries
	c.sendWire(p, cc, r, serverOff)
}

// completeWDSA runs in interrupt context: kernel32 completion semantics
// require triggering the application-specific event or callback.
func (c *Client) completeWDSA(p *sim.Proc, r *Request) {
	cc := r.cc
	cc.vic.PopCompletion(p)
	cc.locks.CrossPairsHold(p, c.cfg.RecvPairsOpt+1, c.dsaHold(), hw.CatDSA)
	c.cpus.Use(p, hw.CatDSA, c.cfg.CompleteCost)
	// kernel32 completion semantics drag the kernel in: the event signal
	// crosses the same kernel dispatcher locks the I/O manager uses.
	c.kern.IOManagerComplete(p)
	c.kern.Syscall(p, c.kern.Params().EventCost) // SetEvent / completion APC
	c.finish(p, r)
	c.kern.WakeThread(p)
	r.done.Fire(c.E)
	// Post-completion kernel32 bookkeeping runs after the application is
	// signalled: off the request's latency path, but it still burns CPU.
	c.cpus.Use(p, hw.CatDSA, c.cfg.EmulationCost)
}
