package core_test

import (
	"testing"
	"time"

	"github.com/v3storage/v3/internal/bench"
	"github.com/v3storage/v3/internal/core"
	"github.com/v3storage/v3/internal/sim"
)

func TestCAPISyncCalls(t *testing.T) {
	sys := microSystem(core.CDSA)
	sys.E.Go("app", func(p *sim.Proc) {
		api := core.Open(sys.Client)
		r := api.WriteSync(p, 0, 8192)
		if !r.Done() {
			t.Error("write not done")
		}
		r = api.ReadSync(p, 0, 8192)
		if !r.Done() {
			t.Error("read not done")
		}
		if api.Issued() != 2 {
			t.Errorf("issued=%d", api.Issued())
		}
		api.Close(p)
		sys.Client.Stop()
	})
	sys.E.RunFor(time.Second)
}

func TestCAPIGatherScatter(t *testing.T) {
	sys := microSystem(core.CDSA)
	sys.E.Go("app", func(p *sim.Proc) {
		api := core.Open(sys.Client)
		segs := []core.Segment{{Off: 0, Length: 4096}, {Off: 65536, Length: 8192}, {Off: 262144, Length: 2048}}
		wr := api.WriteScatter(p, segs)
		api.WaitAll(p, wr)
		for i, r := range wr {
			if !r.Done() {
				t.Errorf("scatter segment %d not done", i)
			}
		}
		rd := api.ReadGather(p, segs)
		api.WaitAll(p, rd)
		for i, r := range rd {
			if !r.Done() {
				t.Errorf("gather segment %d not done", i)
			}
		}
		sys.Client.Stop()
	})
	sys.E.RunFor(time.Second)
	if got := sys.TotalServed(); got != 6 {
		t.Fatalf("server served %d, want 6", got)
	}
}

func TestCAPIWaitAnyReturnsFirst(t *testing.T) {
	sys := microSystem(core.CDSA)
	sys.E.Go("app", func(p *sim.Proc) {
		api := core.Open(sys.Client)
		// Warm one block so its re-read completes far earlier than a cold
		// disk read.
		api.ReadSync(p, 0, 8192)
		cold := api.ReadAsync(p, 512*1024, 8192)
		warm := api.ReadAsync(p, 0, 8192)
		idx := api.WaitAny(p, []*core.Request{cold, warm})
		if idx != 1 {
			t.Errorf("WaitAny returned %d, want the cached read (1)", idx)
		}
		api.WaitAll(p, []*core.Request{cold, warm})
		sys.Client.Stop()
	})
	sys.E.RunFor(time.Second)
}

func TestCAPIPollNonBlocking(t *testing.T) {
	sys := microSystem(core.CDSA)
	sys.E.Go("app", func(p *sim.Proc) {
		api := core.Open(sys.Client)
		r := api.ReadAsync(p, 0, 8192)
		t0 := p.Now()
		done := api.Poll(p, r)
		if done {
			t.Error("cold read cannot be instantly complete")
		}
		if p.Now()-t0 > 100*time.Microsecond {
			t.Error("Poll blocked")
		}
		api.Wait(p, r)
		if !api.Poll(p, r) {
			t.Error("Poll false after completion")
		}
		sys.Client.Stop()
	})
	sys.E.RunFor(time.Second)
}

func TestCAPIHintWarmsServerCache(t *testing.T) {
	sys := microSystem(core.CDSA)
	var coldLat, hintedLat time.Duration
	sys.E.Go("app", func(p *sim.Proc) {
		api := core.Open(sys.Client)
		// Unhinted cold read for reference.
		coldLat = api.ReadSync(p, 0, 8192).Latency()
		// Hint a different range, give the prefetcher time, then read it.
		api.Hint(p, 128*1024, 8192)
		p.Sleep(50 * time.Millisecond)
		hintedLat = api.ReadSync(p, 128*1024, 8192).Latency()
		sys.Client.Stop()
	})
	sys.E.RunFor(time.Second)
	if hintedLat >= coldLat/5 {
		t.Fatalf("hinted read (%v) should be far faster than cold (%v)", hintedLat, coldLat)
	}
}

func TestCAPISetCompletionMode(t *testing.T) {
	cfg := bench.MicroConfig(core.CDSA)
	cfg.DSA.PollInterval = 100 * time.Millisecond
	sys := bench.Build(cfg)
	sys.E.Go("app", func(p *sim.Proc) {
		api := core.Open(sys.Client)
		api.SetCompletionMode(false) // interrupts
		for i := 0; i < 10; i++ {
			api.ReadSync(p, int64(i)*8192, 8192)
		}
		intrAfterIntrMode := sys.Client.Interrupts()
		if intrAfterIntrMode < 10 {
			t.Errorf("interrupt mode took %d interrupts for 10 IOs", intrAfterIntrMode)
		}
		api.SetCompletionMode(true) // polling
		for i := 0; i < 10; i++ {
			api.ReadSync(p, int64(i)*8192, 8192)
		}
		if sys.Client.Interrupts() != intrAfterIntrMode {
			t.Errorf("poll mode still took interrupts: %d -> %d",
				intrAfterIntrMode, sys.Client.Interrupts())
		}
		sys.Client.Stop()
	})
	sys.E.RunFor(2 * time.Second)
}

func TestCAPIFlushDrains(t *testing.T) {
	sys := microSystem(core.CDSA)
	sys.E.Go("app", func(p *sim.Proc) {
		api := core.Open(sys.Client)
		var reqs []*core.Request
		for i := 0; i < 8; i++ {
			reqs = append(reqs, api.ReadAsync(p, int64(i)*65536, 8192))
		}
		api.Flush(p)
		for i, r := range reqs {
			if !r.Done() {
				t.Errorf("request %d incomplete after Flush", i)
			}
		}
		sys.Client.Stop()
	})
	sys.E.RunFor(time.Second)
}
