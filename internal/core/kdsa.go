package core

import (
	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/sim"
)

// kDSA: the kernel-level implementation (Section 2.2). Issue enters the
// kernel through the standard storage API, crosses the Windows I/O
// manager (which pins the buffer and charges its global lock pairs), then
// kDSA's own thin monolithic driver path, then VI. Completion arrives as
// an interrupt unless interrupt batching has disabled them, in which case
// parked completions are reaped synchronously during subsequent submits
// (Section 3.2).

func (c *Client) submitKDSA(p *sim.Proc, cc *clientConn, r *Request, serverOff int64) {
	c.kern.Syscall(p, 0)      // enter the kernel storage API
	c.kern.IOManagerSubmit(p) // IRP setup + I/O manager lock pairs; buffer is pinned here
	cc.locks.CrossPairsHold(p, c.cfg.sendPairs(), c.dsaHold(), hw.CatDSA)
	c.cpus.Use(p, hw.CatDSA, c.cfg.SubmitCost)
	c.sendWire(p, cc, r, serverOff)
	// Interrupt batching: above the high watermark, stop taking an
	// interrupt per response and reap completions here instead.
	if c.cfg.Opts.BatchedInterrupts {
		if cc.outstanding >= c.cfg.IntrHigh {
			cc.intrEnabled = false
		}
		if len(cc.pending) > 0 {
			drain := cc.pending
			cc.pending = nil
			for _, pr := range drain {
				c.completeKDSA(p, pr) // no interrupt cost: synchronous reap
			}
		}
	}
}

// completeKDSA runs the kernel completion path for one response. When
// called from the ISR dispatcher the interrupt cost has already been
// charged; when called synchronously from a submit it has not — that is
// the entire saving of interrupt batching.
func (c *Client) completeKDSA(p *sim.Proc, r *Request) {
	cc := r.cc
	cc.vic.PopCompletion(p)
	cc.locks.CrossPairsHold(p, c.cfg.recvPairs(), c.dsaHold(), hw.CatDSA)
	c.cpus.Use(p, hw.CatDSA, c.cfg.CompleteCost)
	c.kern.IOManagerComplete(p) // IRP completion + I/O manager lock pairs
	c.finish(p, r)
	c.kern.WakeThread(p) // signal the application's event, switch it in
	r.done.Fire(c.E)
}
