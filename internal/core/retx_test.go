package core_test

import (
	"testing"
	"time"

	"github.com/v3storage/v3/internal/bench"
	"github.com/v3storage/v3/internal/core"
	"github.com/v3storage/v3/internal/sim"
)

// lossySystem builds a micro system whose link drops messages.
func lossySystem(impl core.Impl, dropProb float64) *bench.System {
	cfg := bench.MicroConfig(impl)
	cfg.NIC.DropProb = dropProb
	cfg.NIC.DropSeed = 0x1055
	// Short timeouts so lost messages retry quickly in test time.
	cfg.DSA.RetxTimeout = 30 * time.Millisecond
	cfg.DSA.RetxInterval = 5 * time.Millisecond
	return bench.Build(cfg)
}

func TestRetransmissionRecoversLostMessages(t *testing.T) {
	for _, impl := range []core.Impl{core.KDSA, core.CDSA} {
		t.Run(impl.String(), func(t *testing.T) {
			sys := lossySystem(impl, 0.05)
			completed := 0
			sys.E.Go("app", func(p *sim.Proc) {
				for i := 0; i < 200; i++ {
					r := sys.Client.Read(p, int64(i%50)*8192, 8192)
					if r.Done() {
						completed++
					}
				}
				sys.Client.Stop()
			})
			sys.E.RunFor(60 * time.Second)
			if completed != 200 {
				t.Fatalf("completed %d of 200 under 5%% loss", completed)
			}
			if sys.Client.Retransmits() == 0 {
				t.Fatal("no retransmissions despite injected loss")
			}
		})
	}
}

func TestRetransmissionWritesIdempotent(t *testing.T) {
	sys := lossySystem(core.KDSA, 0.08)
	completed := 0
	sys.E.Go("app", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			r := sys.Client.Write(p, int64(i%20)*8192, 8192)
			if r.Done() {
				completed++
			}
		}
		sys.Client.Stop()
	})
	sys.E.RunFor(120 * time.Second)
	if completed != 100 {
		t.Fatalf("completed %d of 100 writes under 8%% loss", completed)
	}
	// The server may have executed duplicates (idempotent), but every
	// credit must have come home: issue a burst that needs the full
	// window to prove no credit leaked.
	rd, wr := sys.Client.IOs()
	if rd != 0 || wr != 100 {
		t.Fatalf("rd=%d wr=%d", rd, wr)
	}
}

func TestNoRetransmitsOnCleanLink(t *testing.T) {
	sys := bench.Build(bench.MicroConfig(core.KDSA))
	sys.E.Go("app", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			sys.Client.Read(p, int64(i%50)*8192, 8192)
		}
		sys.Client.Stop()
	})
	sys.E.RunFor(10 * time.Second)
	if sys.Client.Retransmits() != 0 {
		t.Fatalf("%d spurious retransmits on a lossless link", sys.Client.Retransmits())
	}
}

func TestDroppedCounterTracksLoss(t *testing.T) {
	sys := lossySystem(core.CDSA, 0.10)
	sys.E.Go("app", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			sys.Client.Read(p, int64(i%25)*8192, 8192)
		}
		sys.Client.Stop()
	})
	sys.E.RunFor(60 * time.Second)
	var dropped int64
	for _, srv := range sys.Servers {
		dropped += srv.Provider().NIC().Dropped()
	}
	// Client-side NIC drops too; at 10% loss over ~200+ messages each way
	// there must be visible drops somewhere.
	if dropped == 0 && sys.Client.Retransmits() == 0 {
		t.Fatal("loss injection had no observable effect")
	}
}
