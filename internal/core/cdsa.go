package core

import (
	"time"

	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/sim"
)

// cDSA: the user-level implementation with a new I/O API (Section 2.2).
// Issue never enters the kernel: one DSA lock pair (private to the
// connection), a short submit path, and registration of AWE-pinned
// memory. Completion is application-controlled: in polling mode the
// server sets a completion flag in client memory via RDMA and the
// application polls it for a fixed interval, falling back to an
// interrupt only if the flag stays clear — under heavy load this
// "almost eliminates" completion interrupts (Section 3.2).

func (c *Client) submitCDSA(p *sim.Proc, cc *clientConn, r *Request, serverOff int64) {
	cc.locks.CrossPairsHold(p, c.cfg.sendPairs(), c.dsaHold(), hw.CatDSA)
	c.cpus.Use(p, hw.CatDSA, c.cfg.SubmitCost)
	c.sendWire(p, cc, r, serverOff)
}

// waitCDSA observes completion for a cDSA request. In interrupt mode it
// simply sleeps on the event. In polling mode it polls the RDMA-set flag
// for PollInterval, charging the flag checks, and only then arms an
// interrupt and goes to sleep ("an application can switch from polling to
// interrupt mode before going to sleep").
func (c *Client) waitCDSA(p *sim.Proc, r *Request) {
	if !r.pollMode {
		r.done.Wait(p)
		return
	}
	if r.done.Fired() {
		c.finishCDSAPoll(p, r, 1)
		return
	}
	// The database scheduler (SQL Server's UMS) revisits the completion
	// flags at every scheduling point, so a blocked worker is woken by a
	// flag poll, not an interrupt: tight checks for the first interval
	// (fast completions), then scheduler-granularity checks. Only a long
	// stall arms a real interrupt as a safety net.
	t0 := p.Now()
	fired := r.done.WaitTimeout(p, c.cfg.PollInterval)
	polled := time.Duration(p.Now() - t0)
	checks := int(polled/c.cfg.PollCheckGap) + 1
	if fired {
		c.finishCDSAPoll(p, r, checks)
		return
	}
	c.cpus.Use(p, hw.CatDSA, time.Duration(checks)*c.cfg.PollCheckCost)
	schedGap := 32 * c.cfg.PollCheckGap
	const maxGap = 2 * time.Millisecond
	for i := 0; i < 256; i++ {
		if r.done.WaitTimeout(p, schedGap) {
			c.finishCDSAPoll(p, r, 1)
			return
		}
		c.cpus.Use(p, hw.CatDSA, c.cfg.PollCheckCost)
		if schedGap < maxGap {
			schedGap *= 2 // scheduler visits thin out while the I/O is at disk
		}
	}
	if r.done.Fired() {
		c.finishCDSAPoll(p, r, 0)
		return
	}
	r.armed = true
	c.kern.Syscall(p, c.kern.Params().EventCost) // arm wait on a kernel event
	if r.done.Fired() {
		// Response arrived while arming but before the handler saw armed:
		// it was delivered as a flag set, so complete via the poll path.
		c.finishCDSAPoll(p, r, 0)
		return
	}
	r.done.Wait(p) // completion work happens in the interrupt path
}

// finishCDSAPoll completes a polled request: flag observed in user space,
// no kernel, no VI completion queue.
func (c *Client) finishCDSAPoll(p *sim.Proc, r *Request, checks int) {
	if r.finished {
		return
	}
	if checks > 0 {
		c.cpus.Use(p, hw.CatDSA, time.Duration(checks)*c.cfg.PollCheckCost)
	}
	r.cc.locks.CrossPairsHold(p, c.cfg.recvPairs(), c.dsaHold(), hw.CatDSA)
	c.cpus.Use(p, hw.CatDSA, c.cfg.CompleteCost)
	c.finish(p, r)
}

// completeCDSAIntr is the interrupt-mode completion (polling disabled, or
// the application armed an interrupt after its polling interval expired).
func (c *Client) completeCDSAIntr(p *sim.Proc, r *Request) {
	cc := r.cc
	cc.vic.PopCompletion(p)
	cc.locks.CrossPairsHold(p, c.cfg.recvPairs(), c.dsaHold(), hw.CatDSA)
	c.cpus.Use(p, hw.CatDSA, c.cfg.CompleteCost)
	// Interrupt-mode completion signals a kernel event: the wakeup goes
	// through the kernel dispatcher and its locks — the cost polling mode
	// exists to avoid.
	c.kern.Syscall(p, c.kern.Params().EventCost)
	c.kern.IOManagerComplete(p)
	c.finish(p, r)
	c.kern.WakeThread(p)
	r.done.Fire(c.E)
}
