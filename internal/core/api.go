package core

import (
	"time"

	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/sim"
	"github.com/v3storage/v3/internal/v3srv"
)

// CAPI is the new I/O API cDSA exports to applications (Section 2.2:
// "The new API consists primarily of 15 calls to handle synchronous or
// asynchronous read/write operations, I/O completions, and
// scatter/gather I/Os"). The fifteen calls:
//
//  1. Open            — bind the API to a DSA client
//  2. Close           — drain and detach
//  3. ReadSync        — synchronous read
//  4. WriteSync       — synchronous write
//  5. ReadAsync       — asynchronous read
//  6. WriteAsync      — asynchronous write
//  7. ReadGather      — one logical read across discontiguous extents
//  8. WriteScatter    — one logical write across discontiguous extents
//  9. Poll            — non-blocking completion-flag check
//  10. Wait            — block on one request
//  11. WaitAny         — block until any of a set completes
//  12. WaitAll         — block until all of a set complete
//  13. SetCompletionMode — choose polling or interrupt completions
//  14. Hint            — caching/prefetching hint for the storage server
//  15. Flush           — drain every outstanding request
//
// The paper notes cDSA "also supports more advanced features, such as
// caching and prefetching hints for the storage server" — Hint is that
// feature; the V3 server prefetches hinted ranges into its cache.
type CAPI struct {
	c      *Client
	open   bool
	issued sim.Counter
}

// Open (call 1) binds the API to a DSA client. The API is designed for
// cDSA but functions over any implementation (at kDSA/wDSA costs).
func Open(c *Client) *CAPI { return &CAPI{c: c, open: true} }

// Close (call 2) drains outstanding I/O and detaches.
func (a *CAPI) Close(p *sim.Proc) {
	a.Flush(p)
	a.open = false
}

// ReadSync (call 3).
func (a *CAPI) ReadSync(p *sim.Proc, off int64, length int) *Request {
	a.issued.Inc()
	return a.c.Read(p, off, length)
}

// WriteSync (call 4).
func (a *CAPI) WriteSync(p *sim.Proc, off int64, length int) *Request {
	a.issued.Inc()
	return a.c.Write(p, off, length)
}

// ReadAsync (call 5).
func (a *CAPI) ReadAsync(p *sim.Proc, off int64, length int) *Request {
	a.issued.Inc()
	return a.c.ReadAsync(p, off, length)
}

// WriteAsync (call 6).
func (a *CAPI) WriteAsync(p *sim.Proc, off int64, length int) *Request {
	a.issued.Inc()
	return a.c.WriteAsync(p, off, length)
}

// Segment is one extent of a scatter/gather list.
type Segment struct {
	Off    int64
	Length int
}

// ReadGather (call 7) issues one logical read whose data lands in
// discontiguous application buffers: every segment goes out
// asynchronously and the call returns the set for WaitAll.
func (a *CAPI) ReadGather(p *sim.Proc, segs []Segment) []*Request {
	reqs := make([]*Request, len(segs))
	for i, s := range segs {
		a.issued.Inc()
		reqs[i] = a.c.ReadAsync(p, s.Off, s.Length)
	}
	return reqs
}

// WriteScatter (call 8) is the write-side equivalent of ReadGather.
func (a *CAPI) WriteScatter(p *sim.Proc, segs []Segment) []*Request {
	reqs := make([]*Request, len(segs))
	for i, s := range segs {
		a.issued.Inc()
		reqs[i] = a.c.WriteAsync(p, s.Off, s.Length)
	}
	return reqs
}

// Poll (call 9) checks a completion flag without blocking, charging one
// flag-check's worth of CPU — the polling primitive of Section 3.2.
func (a *CAPI) Poll(p *sim.Proc, r *Request) bool {
	a.c.cpus.Use(p, hw.CatDSA, a.c.cfg.PollCheckCost)
	return r.Done()
}

// Wait (call 10) blocks until r completes.
func (a *CAPI) Wait(p *sim.Proc, r *Request) { a.c.Wait(p, r) }

// WaitAny (call 11) blocks until at least one request of the set has its
// completion flag set and returns its index.
func (a *CAPI) WaitAny(p *sim.Proc, reqs []*Request) int {
	if len(reqs) == 0 {
		return -1
	}
	for {
		for i, r := range reqs {
			if r.Done() {
				// Run the completion observation path for the winner.
				a.c.Wait(p, r)
				return i
			}
		}
		a.c.cpus.Use(p, hw.CatDSA, a.c.cfg.PollCheckCost)
		p.Sleep(a.c.cfg.PollCheckGap * 4)
	}
}

// WaitAll (call 12) blocks until every request completes.
func (a *CAPI) WaitAll(p *sim.Proc, reqs []*Request) {
	for _, r := range reqs {
		a.c.Wait(p, r)
	}
}

// SetCompletionMode (call 13) switches new requests between polling and
// interrupt completions ("applications choose either polling or
// interrupts as the completion mode for I/O requests").
func (a *CAPI) SetCompletionMode(poll bool) {
	a.c.cfg.Opts.BatchedInterrupts = poll
}

// Hint (call 14) advises the storage server to stage [off, off+length)
// in its cache. The hint is fire-and-forget: no credit, no response.
func (a *CAPI) Hint(p *sim.Proc, off int64, length int) {
	if length <= 0 {
		return
	}
	cc, serverOff := a.c.route(off, length)
	a.c.cpus.Use(p, hw.CatDSA, a.c.cfg.PollCheckCost)
	cc.vic.Send(p, 64, &v3srv.WireHint{Offset: serverOff, Length: length})
}

// Flush (call 15) drains every outstanding request on every connection.
func (a *CAPI) Flush(p *sim.Proc) {
	for {
		busy := 0
		for _, cc := range a.c.conns {
			busy += cc.outstanding
		}
		if busy == 0 {
			return
		}
		p.Sleep(20 * time.Microsecond)
	}
}

// Issued returns the number of I/O calls made through the API.
func (a *CAPI) Issued() int64 { return a.issued.Value() }
