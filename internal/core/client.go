package core

import (
	"fmt"
	"time"

	"github.com/v3storage/v3/internal/flow"
	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/oskrnl"
	"github.com/v3storage/v3/internal/reliable"
	"github.com/v3storage/v3/internal/sim"
	"github.com/v3storage/v3/internal/v3srv"
	"github.com/v3storage/v3/internal/vi"
	"github.com/v3storage/v3/internal/vinic"
)

// Request is one block I/O in flight. Obtain one from ReadAsync or
// WriteAsync; complete it with Client.Wait (or Read/Write, which combine
// the two). The completion flag (done) is set by RDMA from the server in
// cDSA's polling mode, by the interrupt path otherwise.
type Request struct {
	Op     v3srv.OpKind
	Offset int64
	Length int

	done        *sim.Event
	cc          *clientConn
	mem         vi.MemHandle
	slot        uint32
	issued      sim.Time
	completedAt sim.Time
	serverTime  time.Duration
	pollMode    bool
	armed       bool // cDSA: interrupt armed after the polling interval
	finished    bool // client-side completion bookkeeping done
	creditBack  bool // flow-control credit already returned
	acked       bool // response received (drops retransmission duplicates)
	seq         uint64
	serverOff   int64
}

// Done reports whether the request's completion flag is set.
func (r *Request) Done() bool { return r.done.Fired() }

// ServerTime returns the V3 server residence time the response reported.
func (r *Request) ServerTime() time.Duration { return r.serverTime }

// Latency returns issue-to-completion time (zero until complete).
func (r *Request) Latency() time.Duration {
	if r.completedAt == 0 {
		return 0
	}
	return time.Duration(r.completedAt - r.issued)
}

// clientConn is the client side of one VI connection to one V3 server
// node (one NIC per connection in the paper's setups).
type clientConn struct {
	cl      *Client
	index   int
	prov    *vi.Provider
	vic     *vi.Conn
	isr     *oskrnl.ISRQueue
	credits *sim.Semaphore
	fc      *flow.Client
	locks   *hw.PairSet
	volSize int64

	intrEnabled bool
	outstanding int
	pending     []*Request // completions parked while interrupts are off
	lastSubmit  sim.Time

	tracker  *reliable.Tracker
	inflight map[uint64]*Request
	seq      uint64
}

// Client is a DSA instance on a database host.
type Client struct {
	E    *sim.Engine
	cpus *hw.CPUPool
	kern *oskrnl.Kernel
	cfg  Config

	conns       []*clientConn
	globalLocks *hw.PairSet
	stopped     bool
	timers      bool

	lat          sim.Series
	retransmits  sim.Counter
	directCompl  sim.Counter // completions delivered by a per-response interrupt
	parkedCompl  sim.Counter // completions parked while interrupts were disabled
	reads        sim.Counter
	writes       sim.Counter
	bytesRead    sim.Counter
	bytesWritten sim.Counter
}

// NewClient creates a DSA client charging CPU to cpus and kernel costs to
// kern. Attach servers with AttachServer before issuing I/O.
func NewClient(e *sim.Engine, cpus *hw.CPUPool, kern *oskrnl.Kernel, cfg Config) *Client {
	if cfg.Credits <= 0 {
		cfg.Credits = 128
	}
	if cfg.ServerStripe <= 0 {
		cfg.ServerStripe = 1 << 20
	}
	n := cfg.GlobalLocks
	if n <= 0 {
		n = 1
	}
	return &Client{
		E: e, cpus: cpus, kern: kern, cfg: cfg,
		globalLocks: hw.NewPairSet(e, cpus, n),
	}
}

// Config returns the client's configuration.
func (c *Client) Config() Config { return c.cfg }

// dsaHold forwards the effective DSA critical-section length.
func (c *Client) dsaHold() time.Duration { return c.cfg.dsaHold() }

// AttachServer wires one V3 connection: prov is the client-side VI
// provider on the NIC to that server, conn the client endpoint from
// vi.Connect, and volBytes the server's volume size.
func (c *Client) AttachServer(prov *vi.Provider, conn *vi.Conn, volBytes int64) {
	// kDSA buffers arrive pinned from the I/O manager; cDSA uses AWE
	// memory. Only wDSA pays pin/unpin inside registration (Section 3.1).
	prov.SetPinnedBuffers(c.cfg.Impl != WDSA)
	cc := &clientConn{
		cl:          c,
		index:       len(c.conns),
		prov:        prov,
		vic:         conn,
		credits:     sim.NewSemaphore(c.cfg.Credits),
		fc:          flow.NewClient(),
		volSize:     volBytes,
		intrEnabled: true,
		tracker:     reliable.NewTracker(c.cfg.RetxTimeout, c.cfg.RetxRetries),
		inflight:    make(map[uint64]*Request),
	}
	cc.fc.Grant(c.cfg.Credits)
	cc.isr = c.kern.NewISRQueue(fmt.Sprintf("dsa%d", cc.index))
	// Per-connection DSA locks are part of the Section 3.3 optimization:
	// the unoptimized cDSA shares coarse client-wide locks like the
	// kernel paths do.
	if c.cfg.Impl == CDSA && c.cfg.Opts.ReducedLocks {
		n := c.cfg.PerConnLocks
		if n <= 0 {
			n = 1
		}
		cc.locks = hw.NewPairSet(c.E, c.cpus, n)
	} else {
		cc.locks = c.globalLocks
	}
	conn.SetHandler(func(m *vinic.Message) { c.onMessage(cc, m) })
	c.conns = append(c.conns, cc)
	if !c.timers {
		c.timers = true
		c.startTimers()
	}
}

// startTimers launches DSA's housekeeping: the deregistration region
// flush and the interrupt-batching watchdog that drains parked
// completions when submissions pause.
func (c *Client) startTimers() {
	c.E.Go("dsa-flush", func(p *sim.Proc) {
		for !c.stopped {
			p.Sleep(c.cfg.FlushInterval)
			if !c.cfg.Opts.BatchedDereg {
				continue
			}
			for _, cc := range c.conns {
				// Flush only idle connections: under load, regions fill and
				// deregister on their own; sealing early would cap batching
				// at the flush period.
				if p.Now()-cc.lastSubmit >= c.cfg.FlushInterval {
					cc.prov.FlushDereg(p)
				}
			}
		}
	})
	c.E.Go("dsa-retransmit", func(p *sim.Proc) {
		for !c.stopped {
			p.Sleep(c.cfg.RetxInterval)
			now := time.Duration(p.Now())
			for _, cc := range c.conns {
				retry, failed := cc.tracker.Expire(now)
				for _, seq := range retry {
					if r, ok := cc.inflight[seq]; ok {
						c.retransmits.Inc()
						c.resend(p, cc, r)
					}
				}
				for _, seq := range failed {
					if r, ok := cc.inflight[seq]; ok {
						panic(fmt.Sprintf("core: request seq %d (off %d) exhausted retries", seq, r.Offset))
					}
				}
			}
		}
	})
	c.E.Go("dsa-watchdog", func(p *sim.Proc) {
		for !c.stopped {
			p.Sleep(c.cfg.WatchdogInterval)
			for _, cc := range c.conns {
				if len(cc.pending) > 0 && p.Now()-cc.lastSubmit >= c.cfg.WatchdogInterval {
					// Submissions paused: reap all parked completions under a
					// single interrupt (many replies, one interrupt — the
					// implicit batching of Section 6.2). Whether interrupts
					// re-enable is decided by the low-watermark rule as the
					// drain lowers the outstanding count.
					drain := cc.pending
					cc.pending = nil
					cc.isr.Raise(func(ip *sim.Proc) {
						for _, req := range drain {
							c.completeKDSA(ip, req)
						}
					})
				}
			}
		}
	})
}

// Stop terminates the housekeeping timers so a driven simulation can
// drain. In-flight I/O still completes.
func (c *Client) Stop() { c.stopped = true }

// route maps a client-volume offset to its connection and the offset
// within that server's volume (the client volume is striped across
// servers in ServerStripe units).
func (c *Client) route(off int64, length int) (*clientConn, int64) {
	if len(c.conns) == 0 {
		panic("core: no servers attached")
	}
	stripe := c.cfg.ServerStripe
	if off%stripe+int64(length) > stripe {
		panic(fmt.Sprintf("core: request [%d,+%d) straddles the server stripe %d", off, length, stripe))
	}
	sno := off / stripe
	cc := c.conns[int(sno)%len(c.conns)]
	serverOff := (sno/int64(len(c.conns)))*stripe + off%stripe
	if serverOff+int64(length) > cc.volSize {
		serverOff %= cc.volSize - int64(length)
	}
	return cc, serverOff
}

// VolumeSize returns the total client-visible volume size.
func (c *Client) VolumeSize() int64 {
	var tot int64
	for _, cc := range c.conns {
		tot += cc.volSize
	}
	return tot
}

// ReadAsync issues an asynchronous read of length bytes at off and
// returns the in-flight request.
func (c *Client) ReadAsync(p *sim.Proc, off int64, length int) *Request {
	return c.submit(p, v3srv.OpRead, off, length)
}

// WriteAsync issues an asynchronous write.
func (c *Client) WriteAsync(p *sim.Proc, off int64, length int) *Request {
	return c.submit(p, v3srv.OpWrite, off, length)
}

// Read performs a synchronous read.
func (c *Client) Read(p *sim.Proc, off int64, length int) *Request {
	r := c.ReadAsync(p, off, length)
	c.Wait(p, r)
	return r
}

// Write performs a synchronous write.
func (c *Client) Write(p *sim.Proc, off int64, length int) *Request {
	r := c.WriteAsync(p, off, length)
	c.Wait(p, r)
	return r
}

// submit runs the implementation-specific issue path.
func (c *Client) submit(p *sim.Proc, op v3srv.OpKind, off int64, length int) *Request {
	if length <= 0 {
		panic("core: non-positive I/O length")
	}
	cc, serverOff := c.route(off, length)
	r := &Request{
		Op: op, Offset: off, Length: length,
		done: sim.NewEvent(), cc: cc,
		pollMode: c.cfg.Impl == CDSA && c.cfg.Opts.BatchedInterrupts,
	}
	r.issued = p.Now()
	switch c.cfg.Impl {
	case KDSA:
		c.submitKDSA(p, cc, r, serverOff)
	case WDSA:
		c.submitWDSA(p, cc, r, serverOff)
	case CDSA:
		c.submitCDSA(p, cc, r, serverOff)
	}
	return r
}

// sendWire acquires a flow-control credit, registers the buffer, stages
// write data, and posts the 64-byte request — the DSA-common tail of
// every submit path.
func (c *Client) sendWire(p *sim.Proc, cc *clientConn, r *Request, serverOff int64) {
	cc.credits.Acquire(p)
	slot, err := cc.fc.TakeNow()
	if err != nil {
		panic("core: credit semaphore and bookkeeping out of sync: " + err.Error())
	}
	r.slot = slot
	r.mem = cc.prov.Register(p, r.Length)
	if r.Op == v3srv.OpWrite {
		// RDMA the payload into the server buffer slot; in-order delivery
		// guarantees it lands before the request message.
		cc.vic.RDMAWrite(p, r.Length, &v3srv.WireData{Tag: r}, false)
		c.writes.Inc()
		c.bytesWritten.Addn(int64(r.Length))
	} else {
		c.reads.Inc()
		c.bytesRead.Addn(int64(r.Length))
	}
	cc.outstanding++
	cc.lastSubmit = p.Now()
	cc.seq++
	r.seq = cc.seq
	r.serverOff = serverOff
	cc.inflight[r.seq] = r
	cc.tracker.Track(r.seq, time.Duration(p.Now()))
	cc.vic.Send(p, 64, &v3srv.WireReq{
		Op: r.Op, Offset: serverOff, Length: r.Length, PollMode: r.pollMode, Tag: r,
	})
}

// resend retransmits a request whose response timed out: write payloads
// are re-staged, then the 64-byte request goes out again. Reads and
// writes of whole blocks are idempotent, so a duplicate server execution
// is harmless; duplicate responses are dropped by the acked flag.
func (c *Client) resend(p *sim.Proc, cc *clientConn, r *Request) {
	c.cpus.Use(p, hw.CatDSA, c.cfg.CompleteCost)
	if r.Op == v3srv.OpWrite {
		cc.vic.RDMAWrite(p, r.Length, &v3srv.WireData{Tag: r}, false)
	}
	cc.vic.Send(p, 64, &v3srv.WireReq{
		Op: r.Op, Offset: r.serverOff, Length: r.Length, PollMode: r.pollMode, Tag: r,
	})
}

// returnCredit gives the flow-control credit (server buffer slot) back as
// soon as the response arrives — DSA-layer bookkeeping that must not wait
// for the application to observe the completion, or the credit window
// would deadlock against a blocked submitter.
func (c *Client) returnCredit(r *Request) {
	if r.creditBack {
		return
	}
	r.creditBack = true
	cc := r.cc
	if err := cc.fc.ReturnSlot(r.slot); err != nil {
		panic("core: " + err.Error())
	}
	cc.credits.Release(c.E)
	cc.outstanding--
	if c.cfg.Impl == KDSA && c.cfg.Opts.BatchedInterrupts &&
		!cc.intrEnabled && cc.outstanding <= c.cfg.IntrLow {
		cc.intrEnabled = true
	}
}

// finish performs client-side completion bookkeeping shared by all
// implementations: deregistration, credit return, and stats.
func (c *Client) finish(p *sim.Proc, r *Request) {
	if r.finished {
		return
	}
	r.finished = true
	r.cc.prov.Deregister(p, r.mem)
	c.returnCredit(r)
	if r.completedAt == 0 {
		r.completedAt = p.Now()
	}
	c.lat.AddDuration(time.Duration(r.completedAt - r.issued))
}

// onMessage handles arrivals from the server (event context).
func (c *Client) onMessage(cc *clientConn, m *vinic.Message) {
	switch payload := m.Payload.(type) {
	case *v3srv.WireData:
		// Read payload RDMA-placed into the application buffer; the
		// completion arrives separately.
	case *v3srv.WireResp:
		r := payload.Tag.(*Request)
		if r.acked {
			return // duplicate response after a retransmission
		}
		r.acked = true
		cc.tracker.Ack(r.seq)
		delete(cc.inflight, r.seq)
		r.serverTime = payload.ServerTime
		switch c.cfg.Impl {
		case KDSA:
			if cc.intrEnabled {
				c.directCompl.Inc()
				cc.isr.Raise(func(p *sim.Proc) { c.completeKDSA(p, r) })
			} else {
				c.parkedCompl.Inc()
				cc.pending = append(cc.pending, r)
			}
		case WDSA:
			cc.isr.Raise(func(p *sim.Proc) { c.completeWDSA(p, r) })
		case CDSA:
			if r.pollMode && !r.armed {
				// The RDMA write just set the completion flag in client
				// memory — zero host CPU. The credit returns now; the
				// application's poll path does the rest.
				r.completedAt = c.E.Now()
				c.returnCredit(r)
				r.done.Fire(c.E)
			} else {
				cc.isr.Raise(func(p *sim.Proc) { c.completeCDSAIntr(p, r) })
			}
		}
	default:
		panic("core: unexpected message payload")
	}
}

// Wait blocks until r completes, running the implementation's completion
// observation path.
func (c *Client) Wait(p *sim.Proc, r *Request) {
	switch c.cfg.Impl {
	case KDSA, WDSA:
		r.done.Wait(p)
	case CDSA:
		c.waitCDSA(p, r)
	}
}

// Stats.

// IOs returns completed (read, write) counts.
func (c *Client) IOs() (reads, writes int64) { return c.reads.Value(), c.writes.Value() }

// MeanLatency returns the mean completion latency.
func (c *Client) MeanLatency() time.Duration {
	return time.Duration(c.lat.Mean() * float64(time.Second))
}

// PercentileLatency returns the p-th percentile latency.
func (c *Client) PercentileLatency(pct float64) time.Duration {
	return time.Duration(c.lat.Percentile(pct) * float64(time.Second))
}

// CompletedIOs returns the number of latency samples recorded.
func (c *Client) CompletedIOs() int { return c.lat.N() }

// Bytes returns total (read, written) bytes.
func (c *Client) Bytes() (rd, wr int64) { return c.bytesRead.Value(), c.bytesWritten.Value() }

// Interrupts returns the host interrupt count (from the kernel model).
func (c *Client) Interrupts() int64 { return c.kern.Interrupts() }

// CompletionPaths returns how many completions were delivered by a
// per-response interrupt versus parked for synchronous or batched reaping
// (kDSA interrupt batching).
func (c *Client) CompletionPaths() (direct, parked int64) {
	return c.directCompl.Value(), c.parkedCompl.Value()
}

// Retransmits returns how many requests were retransmitted after a
// timeout.
func (c *Client) Retransmits() int64 { return c.retransmits.Value() }

// DeregOps sums NIC deregistration operations across connections.
func (c *Client) DeregOps() int64 {
	var n int64
	for _, cc := range c.conns {
		n += cc.prov.DeregOps()
	}
	return n
}
