// Package core implements DSA (Direct Storage Access), the paper's
// client-side block-level I/O module layered between the application and
// VI, in its three flavors:
//
//   - kDSA: a kernel-level driver under the standard storage API — every
//     I/O enters the kernel, crosses the I/O manager and its global lock
//     pairs, and completes via interrupts with kDSA's novel interrupt
//     batching (disable interrupts above an outstanding-I/O threshold and
//     reap completions synchronously while issuing new I/Os);
//   - wDSA: user-level and Win32-compatible — user-level submission, but
//     completion requires kernel events, context switches, and faithful
//     kernel32.dll semantics, making it the most expensive path;
//   - cDSA: user-level with a new I/O API — minimal locking, AWE-pinned
//     buffers, and application-controlled completion: the server sets a
//     completion flag in client memory via RDMA, the application polls it
//     for an interval and only then falls back to interrupts.
//
// All three share DSA's common machinery: credit flow control
// (internal/flow), batched deregistration (internal/regtable via
// internal/vi), retransmission/reconnection (internal/reliable), and
// multiple VI connections to spread per-connection lock contention.
package core

import (
	"time"
)

// Impl selects a DSA implementation.
type Impl int

// The three client implementations plus the local-disk baseline marker.
const (
	KDSA Impl = iota
	WDSA
	CDSA
)

// String returns the paper's name for the implementation.
func (i Impl) String() string {
	switch i {
	case KDSA:
		return "kDSA"
	case WDSA:
		return "wDSA"
	case CDSA:
		return "cDSA"
	}
	return "DSA(?)"
}

// Opts toggles the Section 3 optimizations, in the order Figures 9 and 12
// stack them: batched deregistration, interrupt batching, reduced lock
// synchronization.
type Opts struct {
	BatchedDereg      bool
	BatchedInterrupts bool
	ReducedLocks      bool
}

// AllOpts enables every optimization (the configuration of Figures 10-14).
func AllOpts() Opts { return Opts{BatchedDereg: true, BatchedInterrupts: true, ReducedLocks: true} }

// NoOpts disables every optimization (the "Unoptimized" bars).
func NoOpts() Opts { return Opts{} }

// Config parameterizes a DSA client.
type Config struct {
	Impl Impl
	Opts Opts

	// Credits is the flow-control window per connection: the number of
	// server buffer slots granted at connect time.
	Credits int

	// ServerStripe is the unit in which the client volume is striped
	// across attached V3 servers. Requests must not straddle it.
	ServerStripe int64

	// kDSA interrupt batching thresholds: interrupts are disabled when a
	// connection's outstanding I/Os exceed IntrHigh and re-enabled when
	// they fall to IntrLow.
	IntrHigh, IntrLow int

	// cDSA polling: how long the application polls a completion flag
	// before arming an interrupt, the effective spacing of flag checks,
	// and the CPU cost of one check.
	PollInterval  time.Duration
	PollCheckGap  time.Duration
	PollCheckCost time.Duration

	// DSA-layer CPU costs per I/O.
	SubmitCost    time.Duration
	CompleteCost  time.Duration
	EmulationCost time.Duration // wDSA's kernel32.dll semantics tax, per side

	// DSA-layer lock pairs crossed per I/O in each direction, with and
	// without the Section 3.3 reduction.
	SendPairsOpt, SendPairsUnopt int
	RecvPairsOpt, RecvPairsUnopt int
	DSALockHold                  time.Duration // fine-grain (optimized) critical section
	DSALockHoldUnopt             time.Duration // coarse-grain (unoptimized) critical section

	// Lock topology: kDSA and wDSA cross locks shared across the whole
	// client (kernel-global); cDSA's locks are private to each connection.
	GlobalLocks  int
	PerConnLocks int

	// Housekeeping timers.
	FlushInterval    time.Duration // dereg region flush
	WatchdogInterval time.Duration // interrupt-batching completion backstop

	// Retransmission (Section 2.2: VI implementations do not provide
	// strong reliability guarantees; DSA retries lost requests).
	RetxTimeout  time.Duration
	RetxInterval time.Duration
	RetxRetries  int
}

// DefaultConfig returns the calibrated configuration for impl with all
// optimizations on.
func DefaultConfig(impl Impl) Config {
	cfg := Config{
		Impl:             impl,
		Opts:             AllOpts(),
		Credits:          512,
		ServerStripe:     1 << 20,
		IntrHigh:         8,
		IntrLow:          2,
		PollInterval:     100 * time.Microsecond,
		PollCheckGap:     2 * time.Microsecond,
		PollCheckCost:    50 * time.Nanosecond,
		DSALockHold:      400 * time.Nanosecond,
		DSALockHoldUnopt: 2500 * time.Nanosecond,
		GlobalLocks:      2,
		PerConnLocks:     2,
		FlushInterval:    2 * time.Millisecond,
		WatchdogInterval: 300 * time.Microsecond,
		RetxTimeout:      400 * time.Millisecond,
		RetxInterval:     25 * time.Millisecond,
		RetxRetries:      10,
	}
	switch impl {
	case KDSA:
		cfg.SubmitCost = 14 * time.Microsecond
		cfg.CompleteCost = 12 * time.Microsecond
		cfg.SendPairsOpt, cfg.SendPairsUnopt = 1, 4
		cfg.RecvPairsOpt, cfg.RecvPairsUnopt = 1, 4
	case WDSA:
		cfg.SubmitCost = 20 * time.Microsecond
		cfg.CompleteCost = 18 * time.Microsecond
		cfg.EmulationCost = 38 * time.Microsecond
		cfg.SendPairsOpt, cfg.SendPairsUnopt = 2, 2 // wDSA admits few optimizations
		cfg.RecvPairsOpt, cfg.RecvPairsUnopt = 2, 2
	case CDSA:
		cfg.SubmitCost = 5 * time.Microsecond
		cfg.CompleteCost = 3 * time.Microsecond
		cfg.SendPairsOpt, cfg.SendPairsUnopt = 1, 3
		cfg.RecvPairsOpt, cfg.RecvPairsUnopt = 1, 3
	}
	return cfg
}

// sendPairs returns the effective send-path DSA lock pairs.
func (c *Config) sendPairs() int {
	if c.Opts.ReducedLocks {
		return c.SendPairsOpt
	}
	return c.SendPairsUnopt
}

// recvPairs returns the effective receive-path DSA lock pairs.
func (c *Config) recvPairs() int {
	if c.Opts.ReducedLocks {
		return c.RecvPairsOpt
	}
	return c.RecvPairsUnopt
}

// dsaHold returns the critical-section length under DSA locks: short
// fine-grain sections when the Section 3.3 optimization is on, coarse
// sections otherwise.
func (c *Config) dsaHold() time.Duration {
	if c.Opts.ReducedLocks {
		return c.DSALockHold
	}
	return c.DSALockHoldUnopt
}
