package bench

import (
	"testing"
	"time"

	"github.com/v3storage/v3/internal/core"
)

// TestLargeAblationStages verifies the Figure 9 shape on the large
// configuration: the fully optimized stack substantially outperforms the
// unoptimized one for both kDSA and cDSA, and batched deregistration
// alone is a material win (the TLB-shootdown effect of Section 6.1).
func TestLargeAblationStages(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute OLTP simulation")
	}
	dur := OLTPDurations{Warmup: 1500 * time.Millisecond, Measure: 1500 * time.Millisecond}
	setup := LargeSetup()
	for _, impl := range []core.Impl{core.KDSA, core.CDSA} {
		unopt := RunTPCCDSA(setup, impl, core.NoOpts(), dur)
		dereg := RunTPCCDSA(setup, impl, core.Opts{BatchedDereg: true}, dur)
		full := RunTPCCDSA(setup, impl, core.AllOpts(), dur)
		if dereg.TpmC < unopt.TpmC*1.05 {
			t.Errorf("%v: batched dereg should gain >5%%: %0.f -> %0.f",
				impl, unopt.TpmC, dereg.TpmC)
		}
		if full.TpmC < unopt.TpmC*1.20 {
			t.Errorf("%v: full optimization should gain >20%%: %0.f -> %0.f",
				impl, unopt.TpmC, full.TpmC)
		}
	}
}
