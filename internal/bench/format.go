package bench

import (
	"fmt"
	"strings"
	"time"
)

// Table is a printable experiment result: the rows/series a paper figure
// or table reports.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "  (%s)\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func ms(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()*1e3) }

func us(d time.Duration) string { return fmt.Sprintf("%.1f", d.Seconds()*1e6) }

func mbs(v float64) string { return fmt.Sprintf("%.1f", v) }

func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

func norm(v, base float64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", v/base*100)
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1024:
		return fmt.Sprintf("%dK", n>>10)
	}
	return fmt.Sprintf("%d", n)
}
