// Package bench assembles complete simulated systems (database host, VI
// interconnect, V3 storage nodes) and runs the paper's experiments: the
// micro-benchmarks of Section 5 (Figures 3-8) and the TPC-C experiments
// of Section 6 (Figures 9-14), plus the configuration presets of
// Tables 1 and 2.
package bench

import (
	"fmt"

	"github.com/v3storage/v3/internal/core"
	"github.com/v3storage/v3/internal/diskmodel"
	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/oskrnl"
	"github.com/v3storage/v3/internal/sim"
	"github.com/v3storage/v3/internal/v3srv"
	"github.com/v3storage/v3/internal/vi"
	"github.com/v3storage/v3/internal/vinic"
)

// SystemConfig describes one complete client + V3 back-end assembly.
type SystemConfig struct {
	ClientCPUs int
	NumServers int // V3 nodes, one NIC/VI connection each
	Server     v3srv.Config
	DSA        core.Config
	VI         vi.Params
	NIC        vinic.Params
	Kernel     oskrnl.Params
}

// MicroConfig returns the Section 5 micro-benchmark setup: one client,
// one V3 node presenting a virtual disk, kDSA by default.
func MicroConfig(impl core.Impl) SystemConfig {
	return SystemConfig{
		ClientCPUs: 4,
		NumServers: 1,
		Server:     v3srv.DefaultConfig(),
		DSA:        core.DefaultConfig(impl),
		VI:         vi.DefaultParams(),
		NIC:        vinic.DefaultParams(),
		Kernel:     oskrnl.DefaultParams(),
	}
}

// System is an assembled simulation ready to drive.
type System struct {
	E       *sim.Engine
	CPUs    *hw.CPUPool
	Kern    *oskrnl.Kernel
	Client  *core.Client
	Servers []*v3srv.Server
}

// Build assembles the system: client CPU pool and kernel, then per
// server a NIC pair, VI providers on both ends, a VI connection, and the
// server node itself.
func Build(cfg SystemConfig) *System {
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, cfg.ClientCPUs)
	kern := oskrnl.New(e, cpus, cfg.Kernel)
	// DSA's batched-deregistration option is implemented as an extension
	// to the VI layer (Section 3.1), so it flows into the VI parameters.
	viParams := cfg.VI
	viParams.BatchedDereg = cfg.DSA.Opts.BatchedDereg
	cl := core.NewClient(e, cpus, kern, cfg.DSA)
	sys := &System{E: e, CPUs: cpus, Kern: kern, Client: cl}
	// One page-table lock per host, shared by every NIC's provider: the
	// cost center of unbatched deregistration at high processor counts.
	pageLock := hw.NewSyncLock(e, cpus)
	for i := 0; i < cfg.NumServers; i++ {
		nicC, nicS := vinic.NewPair(e, cfg.NIC, fmt.Sprintf("host-nic%d", i), fmt.Sprintf("v3-nic%d", i))
		prov := vi.NewProvider(e, cpus, nicC, viParams)
		prov.SetPageLock(pageLock)
		scfg := cfg.Server
		scfg.Name = fmt.Sprintf("v3-%d", i)
		srv := v3srv.New(e, scfg, nicS, viParams)
		connC, connS := vi.Connect(prov, srv.Provider())
		srv.AttachClient(connS)
		cl.AttachServer(prov, connC, srv.VolumeSize())
		sys.Servers = append(sys.Servers, srv)
	}
	return sys
}

// TotalServed sums completed requests across servers.
func (s *System) TotalServed() int64 {
	var n int64
	for _, srv := range s.Servers {
		n += srv.Served()
	}
	return n
}

// Table1Row is one column of Table 1 (database host configuration).
type Table1Row struct {
	Name       string
	CPUs       int
	CPUMHz     int
	MemoryGB   int
	NICs       int
	LocalDisks int
	DBSizeTB   float64
	Warehouses int
}

// Table1 returns the paper's database-host configurations.
func Table1() []Table1Row {
	return []Table1Row{
		{Name: "Mid-size", CPUs: 4, CPUMHz: 700, MemoryGB: 4, NICs: 4, LocalDisks: 176, DBSizeTB: 1, Warehouses: 1625},
		{Name: "Large", CPUs: 32, CPUMHz: 800, MemoryGB: 32, NICs: 8, LocalDisks: 640, DBSizeTB: 10, Warehouses: 10000},
	}
}

// Table2Row is one column of Table 2 (V3 server configuration).
type Table2Row struct {
	Name         string
	Nodes        int
	CPUsPerNode  int
	MemoryGBNode float64
	CacheGBNode  float64
	DiskType     string
	TotalDisks   int
	TotalSpaceTB float64
}

// Table2 returns the paper's V3 back-end configurations.
func Table2() []Table2Row {
	return []Table2Row{
		{Name: "Mid-size", Nodes: 4, CPUsPerNode: 2, MemoryGBNode: 2, CacheGBNode: 1.6,
			DiskType: diskmodel.SCSI10K().Name, TotalDisks: 60, TotalSpaceTB: 1},
		{Name: "Large", Nodes: 8, CPUsPerNode: 2, MemoryGBNode: 3, CacheGBNode: 2.4,
			DiskType: diskmodel.FC15K().Name, TotalDisks: 640, TotalSpaceTB: 11.5},
	}
}
