package bench

import (
	"time"

	"github.com/v3storage/v3/internal/core"
	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/localio"
	"github.com/v3storage/v3/internal/oskrnl"
	"github.com/v3storage/v3/internal/sim"
	"github.com/v3storage/v3/internal/v3srv"
	"github.com/v3storage/v3/internal/vi"
	"github.com/v3storage/v3/internal/vinic"
)

// RequestSizes are the micro-benchmark request sizes (Section 5: 512
// bytes to 128 KB "cover all realistic I/O request sizes in databases").
func RequestSizes() []int {
	return []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072}
}

// Fig3Sizes are the sizes plotted in Figure 3 (512 B - 16 KB).
func Fig3Sizes() []int { return []int{512, 1024, 2048, 4096, 8192, 16384} }

// warmRegion reads every block in [0, blocks) once so subsequent reads of
// the region hit the V3 server cache.
func warmRegion(sys *System, blocks int, blockSize int) {
	sys.E.Go("warmer", func(p *sim.Proc) {
		for b := 0; b < blocks; b++ {
			sys.Client.Read(p, int64(b)*int64(blockSize), blockSize)
		}
	})
	sys.E.RunFor(time.Duration(blocks) * 20 * time.Millisecond)
}

// RawVILatency measures the paper's raw VI latency test (Section 5.1):
// register a receive buffer, send a 64-byte request, the server RDMAs
// back `size` bytes from a preregistered buffer, the client takes a
// completion interrupt and deregisters. No DSA, no V3 server.
func RawVILatency(size int, iters int) time.Duration {
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, 4)
	kern := oskrnl.New(e, cpus, oskrnl.DefaultParams())
	srvCPUs := hw.NewCPUPool(e, 2)
	nicC, nicS := vinic.NewPair(e, vinic.DefaultParams(), "cli", "srv")
	viParams := vi.DefaultParams()
	viParams.BatchedDereg = false // raw VI: per-buffer deregistration
	provC := vi.NewProvider(e, cpus, nicC, viParams)
	provS := vi.NewProvider(e, srvCPUs, nicS, viParams)
	provS.SetPinnedBuffers(true) // server send buffer is preregistered
	connC, connS := vi.Connect(provC, provS)
	isr := kern.NewISRQueue("raw-vi")

	// Echo server: polls for requests (event handler feeds a queue) and
	// RDMAs the payload back.
	reqQ := sim.NewQueue[int]()
	connS.SetHandler(func(m *vinic.Message) { reqQ.Put(e, m.Payload.(int)) })
	e.Go("raw-server", func(p *sim.Proc) {
		for {
			n := reqQ.Get(p)
			srvCPUs.Use(p, hw.CatOther, time.Microsecond) // poll + dispatch
			connS.RDMAWrite(p, n, "data", true)
		}
	})

	var done *sim.Event
	connC.SetHandler(func(m *vinic.Message) {
		// Completion-queue interrupt on the client.
		isr.Raise(func(p *sim.Proc) {
			connC.PopCompletion(p)
			done.Fire(e)
		})
	})

	var total time.Duration
	e.Go("raw-client", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			t0 := p.Now()
			h := provC.Register(p, size)
			done = sim.NewEvent()
			connC.Send(p, 64, size)
			done.Wait(p)
			provC.Deregister(p, h)
			total += time.Duration(p.Now() - t0)
		}
	})
	e.RunFor(time.Duration(iters+1) * 10 * time.Millisecond)
	return total / time.Duration(iters)
}

// DSALatency measures the Figure 3 V3 latency: a cached read of size
// bytes through one DSA implementation, single outstanding request.
func DSALatency(impl core.Impl, size int, iters int) time.Duration {
	sys := Build(MicroConfig(impl))
	blocks := 32
	warmRegion(sys, blocks, 16384) // warm 512 KB: covers all offsets used
	var total time.Duration
	sys.E.Go("load", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			off := int64(i%blocks) * 16384
			t0 := p.Now()
			sys.Client.Read(p, off, size)
			total += time.Duration(p.Now() - t0)
		}
		sys.Client.Stop()
	})
	sys.E.RunFor(time.Duration(iters+1) * 5 * time.Millisecond)
	return total / time.Duration(iters)
}

// Breakdown is the Figure 4 decomposition of a read's response time.
type Breakdown struct {
	Impl        core.Impl
	Size        int
	Total       time.Duration
	CPUOverhead time.Duration // host CPU to initiate and complete the I/O
	NodeToNode  time.Duration // NIC + wire + NIC, both directions
	Server      time.Duration // V3 server residence
}

// ResponseBreakdown measures the three components for one implementation
// and size (uncontended single request, cached on the server).
func ResponseBreakdown(impl core.Impl, size int, iters int) Breakdown {
	sys := Build(MicroConfig(impl))
	blocks := 32
	warmRegion(sys, blocks, 16384)
	var total, server time.Duration
	var busy0 time.Duration
	busyAll := func() time.Duration {
		var b time.Duration
		for _, cat := range hw.Categories() {
			b += sys.CPUs.Busy(cat)
		}
		return b
	}
	sys.E.Go("load", func(p *sim.Proc) {
		busy0 = busyAll()
		for i := 0; i < iters; i++ {
			off := int64(i%blocks) * 16384
			t0 := p.Now()
			r := sys.Client.Read(p, off, size)
			total += time.Duration(p.Now() - t0)
			server += r.ServerTime()
		}
		sys.Client.Stop()
	})
	sys.E.RunFor(time.Duration(iters+1) * 5 * time.Millisecond)
	n := time.Duration(iters)
	bd := Breakdown{
		Impl: impl, Size: size,
		Total:  total / n,
		Server: server / n,
	}
	// Node-to-node latency is computed from the link model (request out,
	// data + completion back); the CPU-overhead component is the residual
	// of the measured round trip. Host CPU burned off the critical path
	// (e.g. wDSA's post-wakeup bookkeeping) is real utilization — the
	// OLTP experiments account for it — but does not belong in the
	// response-time bar.
	nic := MicroConfig(impl).NIC
	bd.NodeToNode = nic.OneWay(64) + nic.OneWay(size) + nic.OneWay(64) - nic.PropDelay - nic.RecvPktCost
	bd.CPUOverhead = bd.Total - bd.Server - bd.NodeToNode
	if bd.CPUOverhead < 0 {
		bd.CPUOverhead = 0
	}
	measured := (busyAll() - busy0) / n
	if measured < bd.CPUOverhead {
		bd.CPUOverhead = measured
	}
	return bd
}

// CachedLoadResult is one point of Figures 5/6.
type CachedLoadResult struct {
	Size          int
	Outstanding   int
	MeanResponse  time.Duration
	ThroughputMBs float64
}

// CachedLoad runs `outstanding` concurrent streams of synchronous cached
// reads of `size` for the given duration and reports mean response time
// and aggregate throughput (Figures 5 and 6).
func CachedLoad(impl core.Impl, size, outstanding int, dur time.Duration) CachedLoadResult {
	cfg := MicroConfig(impl)
	sys := Build(cfg)
	// Warm a region large enough that each stream cycles through distinct
	// blocks without re-missing.
	blockSpan := 256 * 1024
	blocks := 16
	warmRegion(sys, blocks, blockSpan)
	var count int64
	var totalLat time.Duration
	for s := 0; s < outstanding; s++ {
		stream := s
		sys.E.Go("stream", func(p *sim.Proc) {
			i := 0
			for {
				off := int64((stream*7+i)%blocks) * int64(blockSpan)
				t0 := p.Now()
				sys.Client.Read(p, off, size)
				totalLat += time.Duration(p.Now() - t0)
				count++
				i++
			}
		})
	}
	t0 := sys.E.Now()
	sys.E.RunFor(dur)
	elapsed := (sys.E.Now() - t0).Seconds()
	sys.Client.Stop()
	res := CachedLoadResult{Size: size, Outstanding: outstanding}
	if count > 0 {
		res.MeanResponse = totalLat / time.Duration(count)
		res.ThroughputMBs = float64(count) * float64(size) / elapsed / 1e6
	}
	return res
}

// VsLocalResult is one point of Figures 7/8: V3 (zero server cache)
// against a locally attached disk.
type VsLocalResult struct {
	Size          int
	Write         bool
	V3Response    time.Duration
	LocalResponse time.Duration
	V3MBs         float64
	LocalMBs      float64
}

// buildUncachedV3 returns a micro system whose server cache is disabled
// and which stripes over a single local-class disk, matching the paper's
// "same disks either local or in the V3 server" setup.
func buildUncachedV3(impl core.Impl) *System {
	cfg := MicroConfig(impl)
	cfg.Server.CacheBlocks = 0
	cfg.Server.NumDisks = 1
	return Build(cfg)
}

func buildLocal(ncpu int) (*sim.Engine, *localio.Client) {
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, ncpu)
	kern := oskrnl.New(e, cpus, oskrnl.DefaultParams())
	lcfg := localio.DefaultConfig()
	lcfg.NumDisks = 1
	return e, localio.New(e, cpus, kern, lcfg)
}

// VsLocal measures response time (outstanding=1) or throughput
// (outstanding>1) for random reads or writes of `size`, on V3 with a cold
// server and on a local disk (Figures 7 and 8).
func VsLocal(size int, write bool, outstanding, iters int) VsLocalResult {
	res := VsLocalResult{Size: size, Write: write}
	span := int64(1) << 20 // request-aligned slots within one stripe

	// V3 side.
	sys := buildUncachedV3(core.KDSA)
	var v3Total time.Duration
	var v3Count int64
	var v3Span sim.Time
	done := 0
	for s := 0; s < outstanding; s++ {
		stream := s
		sys.E.Go("v3-stream", func(p *sim.Proc) {
			rng := sim.NewRand(uint64(stream) + 7)
			slots := span / int64(size)
			for i := 0; i < iters; i++ {
				off := rng.Int63() % slots * int64(size)
				t0 := p.Now()
				if write {
					sys.Client.Write(p, off, size)
				} else {
					sys.Client.Read(p, off, size)
				}
				v3Total += time.Duration(p.Now() - t0)
				v3Count++
			}
			done++
			if done == outstanding {
				v3Span = p.Now()
				sys.Client.Stop()
			}
		})
	}
	sys.E.RunFor(time.Duration(outstanding*iters+10) * 50 * time.Millisecond)
	if v3Count > 0 {
		res.V3Response = v3Total / time.Duration(v3Count)
		res.V3MBs = float64(v3Count) * float64(size) / v3Span.Seconds() / 1e6
	}

	// Local side.
	e, lc := buildLocal(4)
	var loTotal time.Duration
	var loCount int64
	var loSpan sim.Time
	done = 0
	for s := 0; s < outstanding; s++ {
		stream := s
		e.Go("local-stream", func(p *sim.Proc) {
			rng := sim.NewRand(uint64(stream) + 7)
			slots := span / int64(size)
			for i := 0; i < iters; i++ {
				off := rng.Int63() % slots * int64(size)
				t0 := p.Now()
				if write {
					lc.Write(p, off, size)
				} else {
					lc.Read(p, off, size)
				}
				loTotal += time.Duration(p.Now() - t0)
				loCount++
			}
			done++
			if done == outstanding {
				loSpan = p.Now()
			}
		})
	}
	e.RunFor(time.Duration(outstanding*iters+10) * 50 * time.Millisecond)
	if loCount > 0 {
		res.LocalResponse = loTotal / time.Duration(loCount)
		res.LocalMBs = float64(loCount) * float64(size) / loSpan.Seconds() / 1e6
	}
	return res
}

// ensure referenced packages stay linked even if a runner is trimmed.
var _ = v3srv.OpRead
