package bench

import (
	"fmt"
	"time"

	"github.com/v3storage/v3/internal/core"
)

// Options controls run lengths: Quick trades precision for speed (used by
// tests); full runs are used to regenerate EXPERIMENTS.md.
type Options struct {
	Quick bool
}

func (o Options) iters() int {
	if o.Quick {
		return 40
	}
	return 200
}

func (o Options) loadDur() time.Duration {
	if o.Quick {
		return 30 * time.Millisecond
	}
	return 200 * time.Millisecond
}

func (o Options) oltpDur() OLTPDurations {
	if o.Quick {
		return OLTPDurations{Warmup: time.Second, Measure: time.Second}
	}
	return DefaultDurations()
}

var implOrder = []core.Impl{core.KDSA, core.WDSA, core.CDSA}

// Fig3 regenerates Figure 3: latency of raw VI and the three DSA
// implementations across request sizes.
func Fig3(o Options) *Table {
	t := &Table{
		Title:  "Figure 3: Latency of raw VI and DSA for various request sizes (ms)",
		Note:   "single outstanding request, server cache hit",
		Header: []string{"size", "VI", "kDSA", "wDSA", "cDSA"},
	}
	for _, size := range Fig3Sizes() {
		row := []string{sizeLabel(size), ms(RawVILatency(size, o.iters()))}
		for _, impl := range implOrder {
			row = append(row, ms(DSALatency(impl, size, o.iters())))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig4 regenerates Figure 4: response-time breakdown for 2 KB and 8 KB
// reads per implementation.
func Fig4(o Options) *Table {
	t := &Table{
		Title:  "Figure 4: Response time breakdown for a read I/O request (µs)",
		Header: []string{"size", "impl", "CPU-overhead", "node-to-node", "V3-server", "total"},
	}
	for _, size := range []int{2048, 8192} {
		for _, impl := range implOrder {
			bd := ResponseBreakdown(impl, size, o.iters())
			t.AddRow(sizeLabel(size), impl.String(),
				us(bd.CPUOverhead), us(bd.NodeToNode), us(bd.Server), us(bd.Total))
		}
	}
	return t
}

// Fig5 regenerates Figure 5: cached 8 KB read response time vs
// outstanding I/Os.
func Fig5(o Options) *Table {
	t := &Table{
		Title:  "Figure 5: V3 read response time for cached blocks (8 KB requests)",
		Header: []string{"outstanding", "mean response (ms)"},
	}
	for _, k := range []int{1, 2, 4, 8, 16} {
		r := CachedLoad(core.KDSA, 8192, k, o.loadDur())
		t.AddRow(fmt.Sprintf("%d", k), ms(r.MeanResponse))
	}
	return t
}

// Fig6 regenerates Figure 6: cached read throughput vs request size for
// several outstanding-request counts.
func Fig6(o Options) *Table {
	t := &Table{
		Title:  "Figure 6: V3 read throughput for cached blocks (MB/s)",
		Header: []string{"size", "1 I/O", "2 I/Os", "4 I/Os", "8 I/Os", "16 I/Os"},
	}
	for _, size := range RequestSizes() {
		row := []string{sizeLabel(size)}
		for _, k := range []int{1, 2, 4, 8, 16} {
			r := CachedLoad(core.KDSA, size, k, o.loadDur())
			row = append(row, mbs(r.ThroughputMBs))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig7 regenerates Figure 7: V3 vs local response time for random reads
// and writes, one outstanding request, zero server cache.
func Fig7(o Options) *Table {
	t := &Table{
		Title:  "Figure 7: V3 and local read/write response time (ms), 1 outstanding",
		Header: []string{"size", "V3 read", "local read", "V3 write", "local write"},
	}
	iters := o.iters() / 2
	if iters < 10 {
		iters = 10
	}
	for _, size := range RequestSizes() {
		rd := VsLocal(size, false, 1, iters)
		wr := VsLocal(size, true, 1, iters)
		t.AddRow(sizeLabel(size), ms(rd.V3Response), ms(rd.LocalResponse),
			ms(wr.V3Response), ms(wr.LocalResponse))
	}
	return t
}

// Fig8 regenerates Figure 8: V3 vs local throughput with two outstanding
// requests.
func Fig8(o Options) *Table {
	t := &Table{
		Title:  "Figure 8: V3 and local read/write throughput (MB/s), 2 outstanding",
		Header: []string{"size", "V3 read", "local read", "V3 write", "local write"},
	}
	iters := o.iters() / 2
	if iters < 10 {
		iters = 10
	}
	for _, size := range RequestSizes() {
		rd := VsLocal(size, false, 2, iters)
		wr := VsLocal(size, true, 2, iters)
		t.AddRow(sizeLabel(size), mbs(rd.V3MBs), mbs(rd.LocalMBs),
			mbs(wr.V3MBs), mbs(wr.LocalMBs))
	}
	return t
}

// FigAblation regenerates Figure 9 (large) or Figure 12 (mid-size): the
// effect of stacking the Section 3 optimizations on tpmC for kDSA and
// cDSA, normalized to the unoptimized case (=100).
func FigAblation(setup OLTPSetup, o Options) *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure %s: Effect of optimizations on tpmC (%s configuration)",
			map[string]string{"large": "9", "mid-size": "12"}[setup.Name], setup.Name),
		Note:   "normalized to the unoptimized case = 100",
		Header: []string{"stage", "kDSA", "cDSA"},
	}
	dur := o.oltpDur()
	base := map[core.Impl]float64{}
	rows := map[string][]string{}
	var order []string
	for _, stage := range OptStages() {
		order = append(order, stage.Name)
		rows[stage.Name] = []string{stage.Name}
	}
	for _, impl := range []core.Impl{core.KDSA, core.CDSA} {
		for i, stage := range OptStages() {
			r := RunTPCCDSA(setup, impl, stage.Opts, dur)
			if i == 0 {
				base[impl] = r.TpmC
			}
			rows[stage.Name] = append(rows[stage.Name], norm(r.TpmC, base[impl]))
		}
	}
	for _, name := range order {
		t.AddRow(rows[name]...)
	}
	return t
}

// FigTpmC regenerates Figure 10 (large) or the V3 points of Figure 13
// (mid-size): normalized TPC-C transaction rates for local and the three
// DSA implementations.
func FigTpmC(setup OLTPSetup, o Options) *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure %s: Normalized TPC-C transaction rates (%s configuration)",
			map[string]string{"large": "10", "mid-size": "13 (V3 points)"}[setup.Name], setup.Name),
		Note:   "local case = 100",
		Header: []string{"config", "normalized tpmC", "server cache hit"},
	}
	dur := o.oltpDur()
	local := RunTPCCLocal(setup, 0, dur)
	t.AddRow("Local", "100", "-")
	for _, impl := range implOrder {
		r := RunTPCCDSA(setup, impl, core.AllOpts(), dur)
		t.AddRow(impl.String(), norm(r.TpmC, local.TpmC), pct(r.ServerHit))
	}
	return t
}

// FigBreakdown regenerates Figure 11 (large) or Figure 14 (mid-size):
// the CPU-utilization breakdown under TPC-C for each implementation.
func FigBreakdown(setup OLTPSetup, o Options) *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure %s: CPU utilization breakdown for TPC-C (%s configuration)",
			map[string]string{"large": "11", "mid-size": "14"}[setup.Name], setup.Name),
		Header: []string{"impl", "SQL", "OSKernel", "Lock", "DSA", "VI", "Other", "Idle"},
	}
	dur := o.oltpDur()
	for _, impl := range implOrder {
		r := RunTPCCDSA(setup, impl, core.AllOpts(), dur)
		bd := r.Breakdown
		t.AddRow(impl.String(), pct(bd["SQL"]), pct(bd["OSKernel"]), pct(bd["Lock"]),
			pct(bd["DSA"]), pct(bd["VI"]), pct(bd["Other"]), pct(bd["Idle"]))
	}
	return t
}

// Fig13Sweep regenerates Figure 13's local curve: normalized tpmC as a
// function of the number of locally attached disks, plus the three V3
// points at 60 disks.
func Fig13Sweep(o Options) *Table {
	setup := MidSizeSetup()
	t := &Table{
		Title:  "Figure 13: Normalized TPC-C transaction rate vs number of disks (mid-size)",
		Note:   "local case at 176 disks = 100; V3 configurations use 60 disks",
		Header: []string{"config", "disks", "normalized tpmC"},
	}
	dur := o.oltpDur()
	ref := RunTPCCLocal(setup, 176, dur)
	counts := []int{30, 60, 90, 120, 150, 176, 210}
	if o.Quick {
		counts = []int{30, 90, 176}
	}
	for _, n := range counts {
		var r OLTPResult
		if n == 176 {
			r = ref
		} else {
			r = RunTPCCLocal(setup, n, dur)
		}
		t.AddRow("Local", fmt.Sprintf("%d", n), norm(r.TpmC, ref.TpmC))
	}
	for _, impl := range implOrder {
		r := RunTPCCDSA(setup, impl, core.AllOpts(), dur)
		t.AddRow(impl.String(), "60", norm(r.TpmC, ref.TpmC))
	}
	return t
}

// Table1Render prints the paper's Table 1 presets.
func Table1Render() *Table {
	t := &Table{
		Title:  "Table 1: Database host configuration summary",
		Header: []string{"component", "Mid-size", "Large"},
	}
	rows := Table1()
	m, l := rows[0], rows[1]
	t.AddRow("CPUs", fmt.Sprintf("%d x %d MHz", m.CPUs, m.CPUMHz), fmt.Sprintf("%d x %d MHz", l.CPUs, l.CPUMHz))
	t.AddRow("Memory (GB)", fmt.Sprintf("%d", m.MemoryGB), fmt.Sprintf("%d", l.MemoryGB))
	t.AddRow("NICs (cLan)", fmt.Sprintf("%d", m.NICs), fmt.Sprintf("%d", l.NICs))
	t.AddRow("Local disks", fmt.Sprintf("%d", m.LocalDisks), fmt.Sprintf("%d", l.LocalDisks))
	t.AddRow("Database size (TB)", fmt.Sprintf("%.0f", m.DBSizeTB), fmt.Sprintf("%.0f", l.DBSizeTB))
	t.AddRow("Warehouses", fmt.Sprintf("%d", m.Warehouses), fmt.Sprintf("%d", l.Warehouses))
	return t
}

// Table2Render prints the paper's Table 2 presets.
func Table2Render() *Table {
	t := &Table{
		Title:  "Table 2: V3 server configuration summary",
		Header: []string{"component", "Mid-size", "Large"},
	}
	rows := Table2()
	m, l := rows[0], rows[1]
	t.AddRow("V3 nodes", fmt.Sprintf("%d", m.Nodes), fmt.Sprintf("%d", l.Nodes))
	t.AddRow("CPUs/node", fmt.Sprintf("%d", m.CPUsPerNode), fmt.Sprintf("%d", l.CPUsPerNode))
	t.AddRow("Memory/node (GB)", fmt.Sprintf("%.0f", m.MemoryGBNode), fmt.Sprintf("%.0f", l.MemoryGBNode))
	t.AddRow("V3 cache/node (GB)", fmt.Sprintf("%.1f", m.CacheGBNode), fmt.Sprintf("%.1f", l.CacheGBNode))
	t.AddRow("Disk type", m.DiskType, l.DiskType)
	t.AddRow("Total disks", fmt.Sprintf("%d", m.TotalDisks), fmt.Sprintf("%d", l.TotalDisks))
	t.AddRow("Total space (TB)", fmt.Sprintf("%.1f", m.TotalSpaceTB), fmt.Sprintf("%.1f", l.TotalSpaceTB))
	return t
}
