package bench

import (
	"strings"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/core"
)

func TestRawVILatencyMatchesPaperEnvelope(t *testing.T) {
	// Paper Figure 3: raw VI at 512 B is ~0.04-0.05 ms; at 16 KB ~0.2 ms.
	small := RawVILatency(512, 50)
	big := RawVILatency(16384, 50)
	if small < 25*time.Microsecond || small > 70*time.Microsecond {
		t.Fatalf("VI 512B latency %v outside paper envelope", small)
	}
	if big < 150*time.Microsecond || big > 280*time.Microsecond {
		t.Fatalf("VI 16K latency %v outside paper envelope", big)
	}
}

func TestDSAOverheadOverVI(t *testing.T) {
	// Paper Section 5.1: "V3 adds about 15-50 µs overhead on top of VI",
	// cDSA least, wDSA most.
	for _, size := range []int{512, 8192} {
		vi := RawVILatency(size, 50)
		c := DSALatency(core.CDSA, size, 50)
		k := DSALatency(core.KDSA, size, 50)
		w := DSALatency(core.WDSA, size, 50)
		if c <= vi {
			t.Fatalf("size %d: cDSA (%v) cannot be faster than raw VI (%v)", size, c, vi)
		}
		if !(c < k && k < w) {
			t.Fatalf("size %d: latency order wrong: c=%v k=%v w=%v", size, c, k, w)
		}
		if over := c - vi; over > 60*time.Microsecond {
			t.Fatalf("size %d: cDSA adds %v over VI, want tens of µs", size, over)
		}
	}
}

func TestBreakdownComponentsAddUp(t *testing.T) {
	for _, impl := range []core.Impl{core.KDSA, core.WDSA, core.CDSA} {
		bd := ResponseBreakdown(impl, 8192, 40)
		sum := bd.CPUOverhead + bd.NodeToNode + bd.Server
		if sum < bd.Total*95/100 || sum > bd.Total*105/100 {
			t.Fatalf("%v: components %v don't add to total %v", impl, sum, bd.Total)
		}
		if bd.Server <= 0 || bd.CPUOverhead <= 0 {
			t.Fatalf("%v: degenerate breakdown %+v", impl, bd)
		}
	}
}

func TestBreakdownWDSAHeaviestCPU(t *testing.T) {
	// Paper Figure 4: wDSA incurs ~3x the CPU overhead of cDSA.
	c := ResponseBreakdown(core.CDSA, 8192, 40)
	w := ResponseBreakdown(core.WDSA, 8192, 40)
	if w.CPUOverhead < 2*c.CPUOverhead {
		t.Fatalf("wDSA CPU (%v) should be several times cDSA's (%v)",
			w.CPUOverhead, c.CPUOverhead)
	}
}

func TestCachedLoadSaturatesLink(t *testing.T) {
	// Paper Figure 6: with >= 4 outstanding, 8 KB requests saturate the
	// ~110 MB/s interconnect; 1 outstanding at 128 KB approaches ~90+.
	r := CachedLoad(core.KDSA, 8192, 4, 50*time.Millisecond)
	if r.ThroughputMBs < 90 || r.ThroughputMBs > 115 {
		t.Fatalf("4x8K throughput %.1f MB/s, want near saturation", r.ThroughputMBs)
	}
	one := CachedLoad(core.KDSA, 128*1024, 1, 50*time.Millisecond)
	if one.ThroughputMBs < 70 || one.ThroughputMBs > 112 {
		t.Fatalf("1x128K throughput %.1f MB/s, want high but below saturation", one.ThroughputMBs)
	}
}

func TestCachedLoadResponseGrowsWithQueue(t *testing.T) {
	// Paper Figure 5: response time grows roughly linearly once the link
	// saturates.
	r1 := CachedLoad(core.KDSA, 8192, 1, 50*time.Millisecond)
	r16 := CachedLoad(core.KDSA, 8192, 16, 50*time.Millisecond)
	if r16.MeanResponse < 4*r1.MeanResponse {
		t.Fatalf("16 outstanding (%v) should be several times 1 outstanding (%v)",
			r16.MeanResponse, r1.MeanResponse)
	}
}

func TestVsLocalSmallRequestsComparable(t *testing.T) {
	// Paper Figure 7: below 64 KB, V3 adds <3% to random read response
	// time (we accept <10% against simulation noise).
	r := VsLocal(8192, false, 1, 60)
	if r.V3Response > r.LocalResponse*110/100 {
		t.Fatalf("V3 8K read %v vs local %v: more than 10%% overhead",
			r.V3Response, r.LocalResponse)
	}
	if r.V3Response < r.LocalResponse*90/100 {
		t.Fatalf("V3 8K read %v suspiciously faster than local %v",
			r.V3Response, r.LocalResponse)
	}
}

func TestVsLocal128KOverhead(t *testing.T) {
	// Paper Figure 7: at 128 KB, V3 is ~10% slower (3 RDMA packets +
	// transfer time). Accept 3-25%.
	r := VsLocal(128*1024, false, 1, 40)
	ratio := float64(r.V3Response) / float64(r.LocalResponse)
	if ratio < 1.0 || ratio > 1.25 {
		t.Fatalf("V3/local at 128K = %.3f, want ~1.1", ratio)
	}
}

func TestVsLocalWriteParityWithPipelining(t *testing.T) {
	// Paper Figure 8: with outstanding requests the throughput gap
	// closes. At 2 outstanding reads, V3 ~= local.
	r := VsLocal(8192, false, 2, 60)
	if r.V3MBs < r.LocalMBs*85/100 {
		t.Fatalf("V3 read throughput %.2f MB/s far below local %.2f",
			r.V3MBs, r.LocalMBs)
	}
}

func TestBuildMultiServerSystem(t *testing.T) {
	cfg := MicroConfig(core.CDSA)
	cfg.NumServers = 3
	sys := Build(cfg)
	if len(sys.Servers) != 3 {
		t.Fatalf("servers = %d", len(sys.Servers))
	}
	if sys.Client.VolumeSize() != 3*sys.Servers[0].VolumeSize() {
		t.Fatal("client volume should span the servers")
	}
}

func TestTableRendering(t *testing.T) {
	for _, tbl := range []*Table{Table1Render(), Table2Render()} {
		out := tbl.String()
		if !strings.Contains(out, "Mid-size") || !strings.Contains(out, "Large") {
			t.Fatalf("table missing columns:\n%s", out)
		}
	}
	if len(Table1()) != 2 || len(Table2()) != 2 {
		t.Fatal("presets wrong")
	}
	if Table1()[1].CPUs != 32 || Table2()[1].TotalDisks != 640 {
		t.Fatal("large preset values wrong")
	}
}

func TestFormatHelpers(t *testing.T) {
	if sizeLabel(512) != "512" || sizeLabel(8192) != "8K" || sizeLabel(1<<20) != "1M" {
		t.Fatal("size labels wrong")
	}
	if norm(50, 100) != "50" || norm(1, 0) != "-" {
		t.Fatal("norm wrong")
	}
	if pct(0.5) != "50%" {
		t.Fatal("pct wrong")
	}
	tbl := &Table{Title: "T", Note: "n", Header: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	if !strings.Contains(tbl.String(), "(n)") {
		t.Fatal("note not rendered")
	}
}

// The OLTP shape tests are multi-second simulations; skip them in -short.

func TestMidSizeTPCCShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long OLTP simulation")
	}
	dur := OLTPDurations{Warmup: 1500 * time.Millisecond, Measure: 1500 * time.Millisecond}
	setup := MidSizeSetup()
	local := RunTPCCLocal(setup, 0, dur)
	kdsa := RunTPCCDSA(setup, core.KDSA, core.AllOpts(), dur)
	if local.TpmC <= 0 || kdsa.TpmC <= 0 {
		t.Fatal("no transactions")
	}
	// Paper Figure 13: kDSA with 60 disks is within a few percent of the
	// 176-disk local case. Accept +-15% against short-run noise.
	ratio := kdsa.TpmC / local.TpmC
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("kDSA/local = %.2f, want ~1.0", ratio)
	}
	// Paper Section 6.2: 40-45% V3 read cache hit ratio (accept 25-55%
	// for the shortened warmup).
	if kdsa.ServerHit < 0.25 || kdsa.ServerHit > 0.55 {
		t.Fatalf("server hit %.2f outside band", kdsa.ServerHit)
	}
	var sum float64
	for _, v := range kdsa.Breakdown {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("breakdown sums to %.3f", sum)
	}
}

func TestOptimizationsImproveMidSize(t *testing.T) {
	if testing.Short() {
		t.Skip("long OLTP simulation")
	}
	dur := OLTPDurations{Warmup: 1500 * time.Millisecond, Measure: 1500 * time.Millisecond}
	setup := MidSizeSetup()
	unopt := RunTPCCDSA(setup, core.KDSA, core.NoOpts(), dur)
	opt := RunTPCCDSA(setup, core.KDSA, core.AllOpts(), dur)
	// Paper Figure 12: the optimizations buy kDSA ~19% on the mid-size
	// configuration. Our mid-size sits at the disk/CPU crossover, so the
	// CPU savings translate weakly there (see EXPERIMENTS.md); the
	// material gain is asserted on the large configuration by
	// TestLargeAblationStages. Here: optimizations must never hurt beyond
	// run-to-run noise.
	if opt.TpmC < unopt.TpmC*0.93 {
		t.Fatalf("optimizations regressed: unopt=%.0f opt=%.0f", unopt.TpmC, opt.TpmC)
	}
}

func TestOptStagesOrdering(t *testing.T) {
	stages := OptStages()
	if len(stages) != 4 {
		t.Fatalf("stages = %d", len(stages))
	}
	if stages[0].Opts != core.NoOpts() || stages[3].Opts != core.AllOpts() {
		t.Fatal("stage endpoints wrong")
	}
	if stages[1].Opts.BatchedDereg != true || stages[1].Opts.BatchedInterrupts != false {
		t.Fatal("dereg stage wrong")
	}
}
