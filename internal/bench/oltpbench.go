package bench

import (
	"time"

	"github.com/v3storage/v3/internal/core"
	"github.com/v3storage/v3/internal/diskmodel"
	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/localio"
	"github.com/v3storage/v3/internal/oltp"
	"github.com/v3storage/v3/internal/oskrnl"
	"github.com/v3storage/v3/internal/sim"
	"github.com/v3storage/v3/internal/v3srv"
)

// MemScale is the factor by which the paper's memory sizes and working
// sets are divided in the simulation. Scaling cache capacity and working
// set together preserves hit ratios while keeping the simulated state in
// host memory (DESIGN.md, substitutions).
const MemScale = 64

// OLTPSetup names one of the paper's two platforms (Tables 1 and 2).
type OLTPSetup struct {
	Name         string
	HostCPUs     int
	Workers      int
	V3Nodes      int
	DisksPerNode int
	V3CacheBlks  int // per node, scaled
	DiskParams   diskmodel.Params
	LocalDisks   int
	BufferPool   int   // scaled pages
	DBPages      int64 // scaled pages
}

// MidSizeSetup returns the 4-way platform: 1 TB database, 100 GB working
// set, 4 V3 nodes x 15 SCSI disks (60 total) vs 176 local disks.
func MidSizeSetup() OLTPSetup {
	return OLTPSetup{
		Name:         "mid-size",
		HostCPUs:     4,
		Workers:      320,
		V3Nodes:      4,
		DisksPerNode: 15,
		V3CacheBlks:  200000 / MemScale * 64 / 64, // 1.6 GB per node
		DiskParams:   diskmodel.SCSI10K(),
		LocalDisks:   176,
		BufferPool:   375000 / MemScale, // ~3 GB of the 4 GB host
		DBPages:      12800000 / MemScale,
	}
}

// LargeSetup returns the 32-way platform: 10 TB database, ~1 TB working
// set, 8 V3 nodes x 80 FC disks (640 total) vs 640 local disks.
func LargeSetup() OLTPSetup {
	return OLTPSetup{
		Name:         "large",
		HostCPUs:     32,
		Workers:      3000,
		V3Nodes:      8,
		DisksPerNode: 80,
		V3CacheBlks:  300000 / MemScale, // 2.4 GB per node
		DiskParams:   diskmodel.FC15K(),
		LocalDisks:   640,
		BufferPool:   3840000 / MemScale, // ~30 GB of the 32 GB host
		DBPages:      128000000 / MemScale,
	}
}

// OLTPResult is one TPC-C run's outcome.
type OLTPResult struct {
	Label        string
	TpmC         float64
	Breakdown    map[string]float64 // CPU utilization fractions + Idle
	BufferHit    float64
	ServerHit    float64 // V3 cache hit ratio (0 for local)
	Interrupts   int64
	PhysReads    int64
	PhysWrites   int64
	SimulatedFor time.Duration
}

// OLTPDurations controls warmup and measurement windows.
type OLTPDurations struct {
	Warmup  time.Duration
	Measure time.Duration
}

// DefaultDurations returns windows long enough for stable ratios.
func DefaultDurations() OLTPDurations {
	return OLTPDurations{Warmup: 2500 * time.Millisecond, Measure: 3 * time.Second}
}

// QuickDurations returns short windows for tests.
func QuickDurations() OLTPDurations {
	return OLTPDurations{Warmup: 2 * time.Second, Measure: 2 * time.Second}
}

func engineConfig(setup OLTPSetup) oltp.Config {
	cfg := oltp.DefaultConfig()
	cfg.Workers = setup.Workers
	cfg.BufferPoolPages = setup.BufferPool
	cfg.DBPages = setup.DBPages
	cfg.Cleaners = setup.HostCPUs * 6
	// Pace the checkpoint write stream to the platform: ~25-30% of the
	// I/O mix, identical across storage clients for a fair comparison.
	cfg.CheckpointMax = 40 * setup.HostCPUs
	return cfg
}

func v3ServerConfig(setup OLTPSetup) v3srv.Config {
	scfg := v3srv.DefaultConfig()
	scfg.NumDisks = setup.DisksPerNode
	scfg.Workers = 4 * setup.DisksPerNode
	scfg.DiskParams = setup.DiskParams
	scfg.CacheBlocks = setup.V3CacheBlks
	return scfg
}

// RunTPCCDSA runs TPC-C against the V3 back-end with one DSA
// implementation and the given optimization set.
func RunTPCCDSA(setup OLTPSetup, impl core.Impl, opts core.Opts, dur OLTPDurations) OLTPResult {
	sysCfg := SystemConfig{
		ClientCPUs: setup.HostCPUs,
		NumServers: setup.V3Nodes,
		Server:     v3ServerConfig(setup),
		DSA:        core.DefaultConfig(impl),
		VI:         MicroConfig(impl).VI,
		NIC:        MicroConfig(impl).NIC,
		Kernel:     oskrnl.DefaultParams(),
	}
	sysCfg.DSA.Opts = opts
	sys := Build(sysCfg)
	en := oltp.New(sys.E, sys.CPUs, oltp.DSAStorage{C: sys.Client}, engineConfig(setup))
	en.Start()
	sys.E.RunFor(dur.Warmup)
	sys.CPUs.ResetAccounting()
	en.BeginMeasurement()
	intr0 := sys.Kern.Interrupts()
	sys.E.RunFor(dur.Measure)
	res := OLTPResult{
		Label:        impl.String(),
		TpmC:         en.TpmC(),
		Breakdown:    sys.CPUs.Breakdown(),
		BufferHit:    en.BufferHitRatio(),
		Interrupts:   sys.Kern.Interrupts() - intr0,
		SimulatedFor: dur.Measure,
	}
	res.PhysReads, res.PhysWrites = en.PhysicalIOs()
	var hits, total float64
	for _, srv := range sys.Servers {
		hits += srv.CacheHitRatio()
		total++
	}
	if total > 0 {
		res.ServerHit = hits / total
	}
	en.Stop()
	sys.Client.Stop()
	return res
}

// RunTPCCLocal runs TPC-C against the local-disk baseline with ndisks
// locally attached disks (ndisks <= 0 selects the setup's default).
func RunTPCCLocal(setup OLTPSetup, ndisks int, dur OLTPDurations) OLTPResult {
	if ndisks <= 0 {
		ndisks = setup.LocalDisks
	}
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, setup.HostCPUs)
	kern := oskrnl.New(e, cpus, oskrnl.DefaultParams())
	lcfg := localio.DefaultConfig()
	lcfg.NumDisks = ndisks
	lcfg.DiskParams = setup.DiskParams
	lc := localio.New(e, cpus, kern, lcfg)
	en := oltp.New(e, cpus, oltp.LocalStorage{C: lc}, engineConfig(setup))
	en.Start()
	e.RunFor(dur.Warmup)
	cpus.ResetAccounting()
	en.BeginMeasurement()
	intr0 := kern.Interrupts()
	e.RunFor(dur.Measure)
	res := OLTPResult{
		Label:        "Local",
		TpmC:         en.TpmC(),
		Breakdown:    cpus.Breakdown(),
		BufferHit:    en.BufferHitRatio(),
		Interrupts:   kern.Interrupts() - intr0,
		SimulatedFor: dur.Measure,
	}
	res.PhysReads, res.PhysWrites = en.PhysicalIOs()
	en.Stop()
	return res
}

// OptStages returns the Figure 9/12 optimization stacks in order:
// Unoptimized, +dereg, +dereg+intrpt, +dereg+intrpt+sync.
func OptStages() []struct {
	Name string
	Opts core.Opts
} {
	return []struct {
		Name string
		Opts core.Opts
	}{
		{"Unoptimized", core.Opts{}},
		{"dereg", core.Opts{BatchedDereg: true}},
		{"dereg+intrpt", core.Opts{BatchedDereg: true, BatchedInterrupts: true}},
		{"dereg+intrpt+sync", core.AllOpts()},
	}
}
