package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func roundtrip(t *testing.T, m Message) Message {
	t.Helper()
	b := Marshal(m)
	if len(b) != ControlSize {
		t.Fatalf("encoded size %d, want %d", len(b), ControlSize)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return got
}

func TestRoundtripConnect(t *testing.T) {
	m := &Connect{Header: Header{Seq: 7, Ack: 3}, ClientID: 0xdeadbeef, WantCreds: 256}
	got := roundtrip(t, m)
	m.Type = TConnect // parse fills Type
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v, want %+v", got, m)
	}
}

func TestRoundtripConnectResp(t *testing.T) {
	m := &ConnectResp{Header: Header{Seq: 1}, Status: StatusOK, Credits: 128, MaxXfer: 1 << 17, SessionID: 42}
	got := roundtrip(t, m).(*ConnectResp)
	if got.Credits != 128 || got.MaxXfer != 1<<17 || got.SessionID != 42 {
		t.Fatalf("got %+v", got)
	}
}

func TestRoundtripRead(t *testing.T) {
	m := &Read{
		Header: Header{Seq: 99, Ack: 98}, ReqID: 1234, Volume: 5,
		Offset: 1 << 40, Length: 131072, BufAddr: 0xabcdef0123456789,
		FlagBits: FlagPollCompletion | FlagSync,
	}
	got := roundtrip(t, m).(*Read)
	m.Type = TRead
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v, want %+v", got, m)
	}
}

func TestRoundtripWrite(t *testing.T) {
	m := &Write{
		Header: Header{Seq: 2}, ReqID: 77, Volume: 1,
		Offset: 8192, Length: 8192, Slot: 31, FlagBits: FlagSync,
	}
	got := roundtrip(t, m).(*Write)
	m.Type = TWrite
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v, want %+v", got, m)
	}
}

func TestRoundtripResponses(t *testing.T) {
	rr := roundtrip(t, &ReadResp{Header: Header{Seq: 3}, ReqID: 5, Status: StatusEIO, Credits: 2, Length: 8192}).(*ReadResp)
	if rr.ReqID != 5 || rr.Status != StatusEIO || rr.Credits != 2 || rr.Length != 8192 {
		t.Fatalf("ReadResp %+v", rr)
	}
	wr := roundtrip(t, &WriteResp{Header: Header{Seq: 4}, ReqID: 6, Status: StatusEAgain, Credits: 9}).(*WriteResp)
	if wr.ReqID != 6 || wr.Status != StatusEAgain || wr.Credits != 9 {
		t.Fatalf("WriteResp %+v", wr)
	}
}

func TestRoundtripSmallMessages(t *testing.T) {
	cg := roundtrip(t, &CreditGrant{Header: Header{Seq: 10}, Credits: 500}).(*CreditGrant)
	if cg.Credits != 500 {
		t.Fatalf("CreditGrant %+v", cg)
	}
	if _, ok := roundtrip(t, &Ping{Header: Header{Seq: 11}}).(*Ping); !ok {
		t.Fatal("Ping type lost")
	}
	if _, ok := roundtrip(t, &Pong{Header: Header{Seq: 12}}).(*Pong); !ok {
		t.Fatal("Pong type lost")
	}
	d := roundtrip(t, &Disconnect{Header: Header{Seq: 13}, Reason: 7}).(*Disconnect)
	if d.Reason != 7 {
		t.Fatalf("Disconnect %+v", d)
	}
}

func TestRoundtripFlush(t *testing.T) {
	m := &Flush{Header: Header{Seq: 21, Ack: 20}, ReqID: 0x1122334455667788, Volume: 9}
	got := roundtrip(t, m).(*Flush)
	m.Type = TFlush
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v, want %+v", got, m)
	}
	fr := roundtrip(t, &FlushResp{Header: Header{Seq: 22}, ReqID: 5, Status: StatusEIO, Credits: 3}).(*FlushResp)
	if fr.ReqID != 5 || fr.Status != StatusEIO || fr.Credits != 3 {
		t.Fatalf("FlushResp %+v", fr)
	}
	// UnmarshalInto must reject a type mismatch for the new frames too.
	var wrong Read
	if err := UnmarshalInto(Marshal(m), &wrong); err != ErrBadType {
		t.Fatalf("flush-into-read error = %v, want ErrBadType", err)
	}
}

func TestFlushRoundtripProperty(t *testing.T) {
	f := func(seq, reqID uint64, vol uint32, ack uint32) bool {
		m := &Flush{Header: Header{Seq: seq, Ack: ack}, ReqID: reqID, Volume: vol}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		fl := got.(*Flush)
		return fl.Seq == seq && fl.Ack == ack && fl.ReqID == reqID && fl.Volume == vol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalIntoScrubsScratch(t *testing.T) {
	// A reused scratch buffer full of garbage must produce the identical
	// frame as a fresh Marshal, padding included.
	scratch := bytes.Repeat([]byte{0xff}, ControlSize)
	m := &ReadResp{Header: Header{Seq: 9, Ack: 9}, ReqID: 1, Status: StatusOK, Credits: 1, Length: 512}
	MarshalInto(scratch, m)
	if !bytes.Equal(scratch, Marshal(m)) {
		t.Fatal("MarshalInto differs from Marshal")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); err != ErrShort {
		t.Fatalf("short: %v", err)
	}
	b := Marshal(&Ping{})
	b[0] = 0
	if _, err := Unmarshal(b); err != ErrBadMagic {
		t.Fatalf("magic: %v", err)
	}
	b = Marshal(&Ping{})
	b[2] = 99
	if _, err := Unmarshal(b); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	b = Marshal(&Ping{})
	b[3] = 200
	if _, err := Unmarshal(b); err != ErrBadType {
		t.Fatalf("type: %v", err)
	}
}

func TestReadWriteStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Connect{ClientID: 1, WantCreds: 64},
		&Read{ReqID: 2, Volume: 3, Offset: 4096, Length: 8192},
		&ReadResp{ReqID: 2, Status: StatusOK, Credits: 1},
		&Disconnect{Reason: 0},
	}
	for _, m := range msgs {
		if err := WriteTo(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if TypeOf(got) != TypeOf(want) {
			t.Fatalf("got %v, want %v", TypeOf(got), TypeOf(want))
		}
	}
	if _, err := ReadFrom(&buf); err == nil {
		t.Fatal("expected EOF on drained stream")
	}
}

func TestRoundtripStreamMessages(t *testing.T) {
	so := roundtrip(t, &StreamOpen{Header: Header{Seq: 30, Stream: 17},
		Class: ClassBackground, Weight: 4, WantCreds: 8}).(*StreamOpen)
	if so.Stream != 17 || so.Class != ClassBackground || so.Weight != 4 || so.WantCreds != 8 {
		t.Fatalf("StreamOpen %+v", so)
	}
	sr := roundtrip(t, &StreamOpenResp{Header: Header{Seq: 31, Stream: 17},
		Status: StatusEOverloaded, Credits: 0, RetryAfterMS: 25}).(*StreamOpenResp)
	if sr.Stream != 17 || sr.Status != StatusEOverloaded || sr.RetryAfterMS != 25 {
		t.Fatalf("StreamOpenResp %+v", sr)
	}
	sc := roundtrip(t, &StreamClose{Header: Header{Seq: 32, Stream: 17}}).(*StreamClose)
	if sc.Stream != 17 {
		t.Fatalf("StreamClose %+v", sc)
	}
}

// TestStreamIDCarriedByAllTypes checks the header's stream id survives a
// roundtrip on every message type: the demux depends on responses echoing
// the stream of the request that caused them.
func TestStreamIDCarriedByAllTypes(t *testing.T) {
	mk := []Message{
		&Connect{}, &ConnectResp{}, &Read{}, &ReadResp{}, &Write{}, &WriteResp{},
		&CreditGrant{}, &Ping{}, &Pong{}, &Disconnect{}, &Flush{}, &FlushResp{},
		&StreamOpen{}, &StreamOpenResp{}, &StreamClose{},
	}
	for _, m := range mk {
		m.Hdr().Stream = 0xabcd1234
		got := roundtrip(t, m)
		if got.Hdr().Stream != 0xabcd1234 {
			t.Fatalf("%v lost stream id: %+v", TypeOf(m), got.Hdr())
		}
	}
}

// TestLegacyFrameDecodesAsStreamZero pins backward compatibility: a frame
// from a pre-stream peer carries zeros in bytes 60..63 (it was padding),
// so it must decode as stream 0 — and a stream-0 frame we emit must be
// byte-identical to what an old encoder produced.
func TestLegacyFrameDecodesAsStreamZero(t *testing.T) {
	b := Marshal(&Read{Header: Header{Seq: 5}, ReqID: 9, Volume: 1, Length: 4096})
	for _, x := range b[streamOff:] {
		if x != 0 {
			t.Fatalf("stream-0 frame has nonzero trailing bytes % x", b[streamOff:])
		}
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hdr().Stream != 0 {
		t.Fatalf("legacy frame decoded with stream %d", got.Hdr().Stream)
	}
	// New fields ride in regions old peers zeroed: a legacy ConnectResp
	// (features bytes zero) must decode as features-off.
	cr := Marshal(&ConnectResp{Status: StatusOK, Credits: 64, MaxXfer: 1 << 17, SessionID: 3})
	got2, err := Unmarshal(cr)
	if err != nil {
		t.Fatal(err)
	}
	if r := got2.(*ConnectResp); r.Features != 0 || r.MaxStreams != 0 {
		t.Fatalf("legacy ConnectResp decoded features=%d maxstreams=%d", r.Features, r.MaxStreams)
	}
}

func TestSeqAckPreservedForAllTypes(t *testing.T) {
	mk := []func(h Header) Message{
		func(h Header) Message { return &Connect{Header: h} },
		func(h Header) Message { return &ConnectResp{Header: h} },
		func(h Header) Message { return &Read{Header: h} },
		func(h Header) Message { return &ReadResp{Header: h} },
		func(h Header) Message { return &Write{Header: h} },
		func(h Header) Message { return &WriteResp{Header: h} },
		func(h Header) Message { return &CreditGrant{Header: h} },
		func(h Header) Message { return &Ping{Header: h} },
		func(h Header) Message { return &Pong{Header: h} },
		func(h Header) Message { return &Disconnect{Header: h} },
		func(h Header) Message { return &Flush{Header: h} },
		func(h Header) Message { return &FlushResp{Header: h} },
	}
	for _, f := range mk {
		m := f(Header{Seq: 0xfeedface12345678, Ack: 0xcafe1234})
		got := roundtrip(t, m)
		if got.Hdr().Seq != 0xfeedface12345678 || got.Hdr().Ack != 0xcafe1234 {
			t.Fatalf("%v lost seq/ack: %+v", TypeOf(m), got.Hdr())
		}
	}
}

func TestReadRoundtripProperty(t *testing.T) {
	f := func(seq, reqID, bufAddr uint64, vol, length uint32, off uint64, flags uint8) bool {
		m := &Read{
			Header: Header{Seq: seq}, ReqID: reqID, Volume: vol,
			Offset: off, Length: length, BufAddr: bufAddr, FlagBits: flags,
		}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		r := got.(*Read)
		return r.Seq == seq && r.ReqID == reqID && r.Volume == vol &&
			r.Offset == off && r.Length == length && r.BufAddr == bufAddr && r.FlagBits == flags
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRoundtripProperty(t *testing.T) {
	f := func(seq, reqID uint64, vol, length, slot uint32, off uint64, flags uint8) bool {
		m := &Write{
			Header: Header{Seq: seq}, ReqID: reqID, Volume: vol,
			Offset: off, Length: length, Slot: slot, FlagBits: flags,
		}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		w := got.(*Write)
		return w.Seq == seq && w.ReqID == reqID && w.Volume == vol &&
			w.Offset == off && w.Length == length && w.Slot == slot && w.FlagBits == flags
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatusAndTypeStrings(t *testing.T) {
	if StatusOK.String() != "OK" || StatusEIO.String() != "EIO" ||
		StatusEInval.String() != "EINVAL" || StatusENoVolume.String() != "ENOVOLUME" ||
		StatusEAgain.String() != "EAGAIN" {
		t.Fatal("status strings wrong")
	}
	if Status(99).String() == "" {
		t.Fatal("unknown status should stringify")
	}
	if StatusOK.Err() != nil {
		t.Fatal("OK should map to nil error")
	}
	if StatusEIO.Err() == nil {
		t.Fatal("EIO should map to an error")
	}
	if StatusEOverloaded.String() != "EOVERLOADED" {
		t.Fatal("EOVERLOADED string wrong")
	}
	for _, typ := range []MsgType{TConnect, TConnectResp, TRead, TReadResp, TWrite, TWriteResp, TCreditGrant, TPing, TPong, TDisconnect, TFlush, TFlushResp, TStreamOpen, TStreamOpenResp, TStreamClose} {
		if typ.String() == "" {
			t.Fatalf("type %d has no name", typ)
		}
	}
	if MsgType(77).String() != "MsgType(77)" {
		t.Fatal("unknown type string wrong")
	}
}

// TestReadFrameUnmarshalInto covers the zero-allocation decode pair used
// by the netv3 hot loops: ReadFrame validates the header and returns the
// type, UnmarshalInto decodes into a caller-owned struct and rejects a
// frame whose type byte does not match the target.
func TestReadFrameUnmarshalInto(t *testing.T) {
	src := &Read{Header: Header{Seq: 7, Ack: 3}, ReqID: 9, Volume: 2,
		Offset: 4096, Length: 8192, BufAddr: 0xdead, FlagBits: 1}
	var frame [ControlSize]byte
	tp, err := ReadFrame(bytes.NewReader(Marshal(src)), &frame)
	if err != nil {
		t.Fatal(err)
	}
	if tp != TRead {
		t.Fatalf("type = %v, want TRead", tp)
	}
	var dst Read
	if err := UnmarshalInto(frame[:], &dst); err != nil {
		t.Fatal(err)
	}
	src.Type = TRead // decode fills the header's type byte
	if dst != *src {
		t.Fatalf("decode mismatch: %+v != %+v", dst, *src)
	}
	// A mismatched target type must be rejected, not silently garbled.
	var wrong Write
	if err := UnmarshalInto(frame[:], &wrong); err != ErrBadType {
		t.Fatalf("type mismatch error = %v, want ErrBadType", err)
	}
	// The reusable-struct contract: decoding a second frame into dst must
	// fully overwrite the first decode.
	src2 := &Read{Header: Header{Seq: 8}, ReqID: 10, Volume: 1, Length: 512}
	if err := UnmarshalInto(Marshal(src2), &dst); err != nil {
		t.Fatal(err)
	}
	src2.Type = TRead
	if dst != *src2 {
		t.Fatalf("reuse decode mismatch: %+v != %+v", dst, *src2)
	}
}
