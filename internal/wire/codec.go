package wire

import (
	"encoding/binary"
	"io"
)

// Control-message layout (all integers big-endian):
//
//	off  size  field
//	0    2     magic
//	2    1     version
//	3    1     type
//	4    8     seq
//	12   4     ack
//	16   ..    type-specific payload
//	36   16    server span block (responses; zeros from pre-trace peers)
//	..   52    zero padding
//	52   8     trace id (0 = untraced; zeros from pre-trace peers)
//	60   4     stream id (0 = root session; zeros from pre-stream peers)
//
// The fixed 64-byte size mirrors the paper's 64-byte request messages and
// keeps the simulated and TCP transports trivially framed. The stream id
// lives in the frame's last four bytes — a region every pre-stream peer
// both emits as zeros and never reads — so stream-aware and legacy
// binaries interoperate without a version bump. The trace id and the
// response span block reuse the same trick one notch earlier: the largest
// payload (Read) ends at frame byte 48, every response payload by byte 33,
// so bytes 52..59 are free in all frames and bytes 36..51 are free in
// every response.

// streamOff is the frame offset of the header's Stream field.
const streamOff = ControlSize - 4

// traceOff is the frame offset of the header's Trace field.
const traceOff = ControlSize - 12

// spanOff is the payload-relative offset of the SrvSpan block carried by
// ReadResp/WriteResp/FlushResp (frame byte 36).
const spanOff = 20

func putHeader(b []byte, t MsgType, h *Header) {
	binary.BigEndian.PutUint16(b[0:], Magic)
	b[2] = Version
	b[3] = byte(t)
	binary.BigEndian.PutUint64(b[4:], h.Seq)
	binary.BigEndian.PutUint32(b[12:], h.Ack)
	binary.BigEndian.PutUint64(b[traceOff:], h.Trace)
	binary.BigEndian.PutUint32(b[streamOff:], h.Stream)
}

func parseHeader(b []byte) (MsgType, Header, error) {
	if len(b) < HeaderSize {
		return 0, Header{}, ErrShort
	}
	if binary.BigEndian.Uint16(b[0:]) != Magic {
		return 0, Header{}, ErrBadMagic
	}
	if b[2] != Version {
		return 0, Header{}, ErrBadVersion
	}
	t := MsgType(b[3])
	h := Header{
		Type: t,
		Seq:  binary.BigEndian.Uint64(b[4:]),
		Ack:  binary.BigEndian.Uint32(b[12:]),
	}
	if len(b) >= ControlSize {
		h.Trace = binary.BigEndian.Uint64(b[traceOff:])
		h.Stream = binary.BigEndian.Uint32(b[streamOff:])
	}
	return t, h, nil
}

func putSpan(p []byte, s *SrvSpan) {
	binary.BigEndian.PutUint32(p[spanOff:], s.SrvQueueNS)
	binary.BigEndian.PutUint32(p[spanOff+4:], s.SrvServiceNS)
	binary.BigEndian.PutUint32(p[spanOff+8:], s.SrvDiskQNS)
	binary.BigEndian.PutUint32(p[spanOff+12:], s.SrvDeviceNS)
}

func parseSpan(p []byte, s *SrvSpan) {
	s.SrvQueueNS = binary.BigEndian.Uint32(p[spanOff:])
	s.SrvServiceNS = binary.BigEndian.Uint32(p[spanOff+4:])
	s.SrvDiskQNS = binary.BigEndian.Uint32(p[spanOff+8:])
	s.SrvDeviceNS = binary.BigEndian.Uint32(p[spanOff+12:])
}

// Marshal encodes m into a fresh ControlSize-byte buffer.
func Marshal(m Message) []byte {
	b := make([]byte, ControlSize)
	MarshalInto(b, m)
	return b
}

// MarshalInto encodes m into b, which must be at least ControlSize bytes
// (the frame region is fully overwritten, including padding). It lets
// hot paths reuse a scratch frame buffer instead of allocating per
// message.
func MarshalInto(b []byte, m Message) {
	_ = b[:ControlSize]
	clear(b[:ControlSize])
	t := TypeOf(m)
	putHeader(b, t, m.Hdr())
	p := b[HeaderSize:]
	switch v := m.(type) {
	case *Connect:
		binary.BigEndian.PutUint64(p[0:], v.ClientID)
		binary.BigEndian.PutUint16(p[8:], v.WantCreds)
		binary.BigEndian.PutUint32(p[10:], v.Features)
	case *ConnectResp:
		p[0] = byte(v.Status)
		binary.BigEndian.PutUint16(p[1:], v.Credits)
		binary.BigEndian.PutUint32(p[3:], v.MaxXfer)
		binary.BigEndian.PutUint64(p[7:], v.SessionID)
		binary.BigEndian.PutUint32(p[15:], v.Features)
		binary.BigEndian.PutUint16(p[19:], v.MaxStreams)
	case *Read:
		binary.BigEndian.PutUint64(p[0:], v.ReqID)
		binary.BigEndian.PutUint32(p[8:], v.Volume)
		binary.BigEndian.PutUint64(p[12:], v.Offset)
		binary.BigEndian.PutUint32(p[20:], v.Length)
		binary.BigEndian.PutUint64(p[24:], v.BufAddr)
		p[32] = v.FlagBits
	case *ReadResp:
		binary.BigEndian.PutUint64(p[0:], v.ReqID)
		p[8] = byte(v.Status)
		binary.BigEndian.PutUint16(p[9:], v.Credits)
		binary.BigEndian.PutUint32(p[11:], v.Length)
		binary.BigEndian.PutUint16(p[15:], v.RetryAfterMS)
		putSpan(p, &v.SrvSpan)
	case *Write:
		binary.BigEndian.PutUint64(p[0:], v.ReqID)
		binary.BigEndian.PutUint32(p[8:], v.Volume)
		binary.BigEndian.PutUint64(p[12:], v.Offset)
		binary.BigEndian.PutUint32(p[20:], v.Length)
		binary.BigEndian.PutUint32(p[24:], v.Slot)
		p[28] = v.FlagBits
	case *WriteResp:
		binary.BigEndian.PutUint64(p[0:], v.ReqID)
		p[8] = byte(v.Status)
		binary.BigEndian.PutUint16(p[9:], v.Credits)
		binary.BigEndian.PutUint16(p[11:], v.RetryAfterMS)
		putSpan(p, &v.SrvSpan)
	case *CreditGrant:
		binary.BigEndian.PutUint16(p[0:], v.Credits)
	case *Ping, *Pong:
		// header only
	case *Disconnect:
		p[0] = v.Reason
	case *Flush:
		binary.BigEndian.PutUint64(p[0:], v.ReqID)
		binary.BigEndian.PutUint32(p[8:], v.Volume)
	case *FlushResp:
		binary.BigEndian.PutUint64(p[0:], v.ReqID)
		p[8] = byte(v.Status)
		binary.BigEndian.PutUint16(p[9:], v.Credits)
		binary.BigEndian.PutUint16(p[11:], v.RetryAfterMS)
		putSpan(p, &v.SrvSpan)
	case *StreamOpen:
		p[0] = v.Class
		binary.BigEndian.PutUint16(p[1:], v.Weight)
		binary.BigEndian.PutUint16(p[3:], v.WantCreds)
	case *StreamOpenResp:
		p[0] = byte(v.Status)
		binary.BigEndian.PutUint16(p[1:], v.Credits)
		binary.BigEndian.PutUint16(p[3:], v.RetryAfterMS)
	case *StreamClose:
		// header only
	default:
		panic("wire: Marshal of unknown message type")
	}
}

// Unmarshal decodes one control message from b (at least ControlSize
// bytes; extra bytes are ignored) into a freshly allocated struct.
func Unmarshal(b []byte) (Message, error) {
	if len(b) < ControlSize {
		return nil, ErrShort
	}
	t, _, err := parseHeader(b)
	if err != nil {
		return nil, err
	}
	var m Message
	switch t {
	case TConnect:
		m = &Connect{}
	case TConnectResp:
		m = &ConnectResp{}
	case TRead:
		m = &Read{}
	case TReadResp:
		m = &ReadResp{}
	case TWrite:
		m = &Write{}
	case TWriteResp:
		m = &WriteResp{}
	case TCreditGrant:
		m = &CreditGrant{}
	case TPing:
		m = &Ping{}
	case TPong:
		m = &Pong{}
	case TDisconnect:
		m = &Disconnect{}
	case TFlush:
		m = &Flush{}
	case TFlushResp:
		m = &FlushResp{}
	case TStreamOpen:
		m = &StreamOpen{}
	case TStreamOpenResp:
		m = &StreamOpenResp{}
	case TStreamClose:
		m = &StreamClose{}
	default:
		return nil, ErrBadType
	}
	if err := UnmarshalInto(b, m); err != nil {
		return nil, err
	}
	return m, nil
}

// UnmarshalInto decodes the frame in b into the caller-owned m, whose
// concrete type must match the frame's type byte (ErrBadType otherwise).
// Together with ReadFrame it lets hot loops reuse one message struct per
// frame type instead of allocating per message.
func UnmarshalInto(b []byte, m Message) error {
	if len(b) < ControlSize {
		return ErrShort
	}
	t, h, err := parseHeader(b)
	if err != nil {
		return err
	}
	p := b[HeaderSize:]
	switch v := m.(type) {
	case *Connect:
		if t != TConnect {
			return ErrBadType
		}
		v.Header = h
		v.ClientID = binary.BigEndian.Uint64(p[0:])
		v.WantCreds = binary.BigEndian.Uint16(p[8:])
		v.Features = binary.BigEndian.Uint32(p[10:])
	case *ConnectResp:
		if t != TConnectResp {
			return ErrBadType
		}
		v.Header = h
		v.Status = Status(p[0])
		v.Credits = binary.BigEndian.Uint16(p[1:])
		v.MaxXfer = binary.BigEndian.Uint32(p[3:])
		v.SessionID = binary.BigEndian.Uint64(p[7:])
		v.Features = binary.BigEndian.Uint32(p[15:])
		v.MaxStreams = binary.BigEndian.Uint16(p[19:])
	case *Read:
		if t != TRead {
			return ErrBadType
		}
		v.Header = h
		v.ReqID = binary.BigEndian.Uint64(p[0:])
		v.Volume = binary.BigEndian.Uint32(p[8:])
		v.Offset = binary.BigEndian.Uint64(p[12:])
		v.Length = binary.BigEndian.Uint32(p[20:])
		v.BufAddr = binary.BigEndian.Uint64(p[24:])
		v.FlagBits = p[32]
	case *ReadResp:
		if t != TReadResp {
			return ErrBadType
		}
		v.Header = h
		v.ReqID = binary.BigEndian.Uint64(p[0:])
		v.Status = Status(p[8])
		v.Credits = binary.BigEndian.Uint16(p[9:])
		v.Length = binary.BigEndian.Uint32(p[11:])
		v.RetryAfterMS = binary.BigEndian.Uint16(p[15:])
		parseSpan(p, &v.SrvSpan)
	case *Write:
		if t != TWrite {
			return ErrBadType
		}
		v.Header = h
		v.ReqID = binary.BigEndian.Uint64(p[0:])
		v.Volume = binary.BigEndian.Uint32(p[8:])
		v.Offset = binary.BigEndian.Uint64(p[12:])
		v.Length = binary.BigEndian.Uint32(p[20:])
		v.Slot = binary.BigEndian.Uint32(p[24:])
		v.FlagBits = p[28]
	case *WriteResp:
		if t != TWriteResp {
			return ErrBadType
		}
		v.Header = h
		v.ReqID = binary.BigEndian.Uint64(p[0:])
		v.Status = Status(p[8])
		v.Credits = binary.BigEndian.Uint16(p[9:])
		v.RetryAfterMS = binary.BigEndian.Uint16(p[11:])
		parseSpan(p, &v.SrvSpan)
	case *CreditGrant:
		if t != TCreditGrant {
			return ErrBadType
		}
		v.Header = h
		v.Credits = binary.BigEndian.Uint16(p[0:])
	case *Ping:
		if t != TPing {
			return ErrBadType
		}
		v.Header = h
	case *Pong:
		if t != TPong {
			return ErrBadType
		}
		v.Header = h
	case *Disconnect:
		if t != TDisconnect {
			return ErrBadType
		}
		v.Header = h
		v.Reason = p[0]
	case *Flush:
		if t != TFlush {
			return ErrBadType
		}
		v.Header = h
		v.ReqID = binary.BigEndian.Uint64(p[0:])
		v.Volume = binary.BigEndian.Uint32(p[8:])
	case *FlushResp:
		if t != TFlushResp {
			return ErrBadType
		}
		v.Header = h
		v.ReqID = binary.BigEndian.Uint64(p[0:])
		v.Status = Status(p[8])
		v.Credits = binary.BigEndian.Uint16(p[9:])
		v.RetryAfterMS = binary.BigEndian.Uint16(p[11:])
		parseSpan(p, &v.SrvSpan)
	case *StreamOpen:
		if t != TStreamOpen {
			return ErrBadType
		}
		v.Header = h
		v.Class = p[0]
		v.Weight = binary.BigEndian.Uint16(p[1:])
		v.WantCreds = binary.BigEndian.Uint16(p[3:])
	case *StreamOpenResp:
		if t != TStreamOpenResp {
			return ErrBadType
		}
		v.Header = h
		v.Status = Status(p[0])
		v.Credits = binary.BigEndian.Uint16(p[1:])
		v.RetryAfterMS = binary.BigEndian.Uint16(p[3:])
	case *StreamClose:
		if t != TStreamClose {
			return ErrBadType
		}
		v.Header = h
	default:
		return ErrBadType
	}
	return nil
}

// WriteTo writes the encoded control message to w.
func WriteTo(w io.Writer, m Message) error {
	_, err := w.Write(Marshal(m))
	return err
}

// ReadFrom reads exactly one control message from r.
func ReadFrom(r io.Reader) (Message, error) {
	var b [ControlSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return nil, err
	}
	return Unmarshal(b[:])
}

// ReadFrame reads one control frame into b and returns its validated
// type, without decoding the payload. Hot loops pair it with
// UnmarshalInto to demultiplex frames with zero allocations.
func ReadFrame(r io.Reader, b *[ControlSize]byte) (MsgType, error) {
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	t, _, err := parseHeader(b[:])
	return t, err
}
