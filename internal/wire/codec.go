package wire

import (
	"encoding/binary"
	"io"
)

// Control-message layout (all integers big-endian):
//
//	off  size  field
//	0    2     magic
//	2    1     version
//	3    1     type
//	4    8     seq
//	12   4     ack
//	16   ..    type-specific payload
//	..   64    zero padding to ControlSize
//
// The fixed 64-byte size mirrors the paper's 64-byte request messages and
// keeps the simulated and TCP transports trivially framed.

func putHeader(b []byte, t MsgType, h *Header) {
	binary.BigEndian.PutUint16(b[0:], Magic)
	b[2] = Version
	b[3] = byte(t)
	binary.BigEndian.PutUint64(b[4:], h.Seq)
	binary.BigEndian.PutUint32(b[12:], h.Ack)
}

func parseHeader(b []byte) (MsgType, Header, error) {
	if len(b) < HeaderSize {
		return 0, Header{}, ErrShort
	}
	if binary.BigEndian.Uint16(b[0:]) != Magic {
		return 0, Header{}, ErrBadMagic
	}
	if b[2] != Version {
		return 0, Header{}, ErrBadVersion
	}
	t := MsgType(b[3])
	h := Header{
		Type: t,
		Seq:  binary.BigEndian.Uint64(b[4:]),
		Ack:  binary.BigEndian.Uint32(b[12:]),
	}
	return t, h, nil
}

// Marshal encodes m into a fresh ControlSize-byte buffer.
func Marshal(m Message) []byte {
	b := make([]byte, ControlSize)
	t := TypeOf(m)
	putHeader(b, t, m.Hdr())
	p := b[HeaderSize:]
	switch v := m.(type) {
	case *Connect:
		binary.BigEndian.PutUint64(p[0:], v.ClientID)
		binary.BigEndian.PutUint16(p[8:], v.WantCreds)
	case *ConnectResp:
		p[0] = byte(v.Status)
		binary.BigEndian.PutUint16(p[1:], v.Credits)
		binary.BigEndian.PutUint32(p[3:], v.MaxXfer)
		binary.BigEndian.PutUint64(p[7:], v.SessionID)
	case *Read:
		binary.BigEndian.PutUint64(p[0:], v.ReqID)
		binary.BigEndian.PutUint32(p[8:], v.Volume)
		binary.BigEndian.PutUint64(p[12:], v.Offset)
		binary.BigEndian.PutUint32(p[20:], v.Length)
		binary.BigEndian.PutUint64(p[24:], v.BufAddr)
		p[32] = v.FlagBits
	case *ReadResp:
		binary.BigEndian.PutUint64(p[0:], v.ReqID)
		p[8] = byte(v.Status)
		binary.BigEndian.PutUint16(p[9:], v.Credits)
	case *Write:
		binary.BigEndian.PutUint64(p[0:], v.ReqID)
		binary.BigEndian.PutUint32(p[8:], v.Volume)
		binary.BigEndian.PutUint64(p[12:], v.Offset)
		binary.BigEndian.PutUint32(p[20:], v.Length)
		binary.BigEndian.PutUint32(p[24:], v.Slot)
		p[28] = v.FlagBits
	case *WriteResp:
		binary.BigEndian.PutUint64(p[0:], v.ReqID)
		p[8] = byte(v.Status)
		binary.BigEndian.PutUint16(p[9:], v.Credits)
	case *CreditGrant:
		binary.BigEndian.PutUint16(p[0:], v.Credits)
	case *Ping, *Pong:
		// header only
	case *Disconnect:
		p[0] = v.Reason
	default:
		panic("wire: Marshal of unknown message type")
	}
	return b
}

// Unmarshal decodes one control message from b (at least ControlSize
// bytes; extra bytes are ignored).
func Unmarshal(b []byte) (Message, error) {
	if len(b) < ControlSize {
		return nil, ErrShort
	}
	t, h, err := parseHeader(b)
	if err != nil {
		return nil, err
	}
	p := b[HeaderSize:]
	switch t {
	case TConnect:
		return &Connect{
			Header:    h,
			ClientID:  binary.BigEndian.Uint64(p[0:]),
			WantCreds: binary.BigEndian.Uint16(p[8:]),
		}, nil
	case TConnectResp:
		return &ConnectResp{
			Header:    h,
			Status:    Status(p[0]),
			Credits:   binary.BigEndian.Uint16(p[1:]),
			MaxXfer:   binary.BigEndian.Uint32(p[3:]),
			SessionID: binary.BigEndian.Uint64(p[7:]),
		}, nil
	case TRead:
		return &Read{
			Header:   h,
			ReqID:    binary.BigEndian.Uint64(p[0:]),
			Volume:   binary.BigEndian.Uint32(p[8:]),
			Offset:   binary.BigEndian.Uint64(p[12:]),
			Length:   binary.BigEndian.Uint32(p[20:]),
			BufAddr:  binary.BigEndian.Uint64(p[24:]),
			FlagBits: p[32],
		}, nil
	case TReadResp:
		return &ReadResp{
			Header:  h,
			ReqID:   binary.BigEndian.Uint64(p[0:]),
			Status:  Status(p[8]),
			Credits: binary.BigEndian.Uint16(p[9:]),
		}, nil
	case TWrite:
		return &Write{
			Header:   h,
			ReqID:    binary.BigEndian.Uint64(p[0:]),
			Volume:   binary.BigEndian.Uint32(p[8:]),
			Offset:   binary.BigEndian.Uint64(p[12:]),
			Length:   binary.BigEndian.Uint32(p[20:]),
			Slot:     binary.BigEndian.Uint32(p[24:]),
			FlagBits: p[28],
		}, nil
	case TWriteResp:
		return &WriteResp{
			Header:  h,
			ReqID:   binary.BigEndian.Uint64(p[0:]),
			Status:  Status(p[8]),
			Credits: binary.BigEndian.Uint16(p[9:]),
		}, nil
	case TCreditGrant:
		return &CreditGrant{Header: h, Credits: binary.BigEndian.Uint16(p[0:])}, nil
	case TPing:
		return &Ping{Header: h}, nil
	case TPong:
		return &Pong{Header: h}, nil
	case TDisconnect:
		return &Disconnect{Header: h, Reason: p[0]}, nil
	}
	return nil, ErrBadType
}

// WriteTo writes the encoded control message to w.
func WriteTo(w io.Writer, m Message) error {
	_, err := w.Write(Marshal(m))
	return err
}

// ReadFrom reads exactly one control message from r.
func ReadFrom(r io.Reader) (Message, error) {
	var b [ControlSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return nil, err
	}
	return Unmarshal(b[:])
}
