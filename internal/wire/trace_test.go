package wire

import (
	"bytes"
	"testing"
)

// The trace id and server span ride in bytes that were frame padding
// before the trace feature existed; these tests pin the compatibility
// contract — zero values encode to all-zero bytes (what a pre-trace peer
// emits) and pre-trace frames decode to zero values.

func TestTraceIDRoundtripAllRequests(t *testing.T) {
	const trace = 0x0123456789abcdef
	reqs := []Message{
		&Read{Header: Header{Seq: 1, Trace: trace}, ReqID: 2, Volume: 1, Offset: 4096, Length: 8192},
		&Write{Header: Header{Seq: 2, Trace: trace}, ReqID: 3, Volume: 1, Offset: 8192, Length: 8192},
		&Flush{Header: Header{Seq: 3, Trace: trace}, ReqID: 4, Volume: 1},
	}
	for _, m := range reqs {
		got := roundtrip(t, m)
		if tr := got.Hdr().Trace; tr != trace {
			t.Fatalf("%T: Trace = %#x, want %#x", m, tr, trace)
		}
	}
}

func TestSrvSpanRoundtripAllResponses(t *testing.T) {
	sp := SrvSpan{SrvQueueNS: 11, SrvServiceNS: 2222, SrvDiskQNS: 333, SrvDeviceNS: 44444}
	rr := roundtrip(t, &ReadResp{Header: Header{Seq: 5, Trace: 9}, ReqID: 1, Status: StatusOK, SrvSpan: sp}).(*ReadResp)
	if rr.SrvSpan != sp || rr.Trace != 9 {
		t.Fatalf("ReadResp span %+v trace %d, want %+v trace 9", rr.SrvSpan, rr.Trace, sp)
	}
	wr := roundtrip(t, &WriteResp{Header: Header{Seq: 6, Trace: 9}, ReqID: 2, Status: StatusOK, SrvSpan: sp}).(*WriteResp)
	if wr.SrvSpan != sp {
		t.Fatalf("WriteResp span %+v, want %+v", wr.SrvSpan, sp)
	}
	fr := roundtrip(t, &FlushResp{Header: Header{Seq: 7, Trace: 9}, ReqID: 3, Status: StatusOK, SrvSpan: sp}).(*FlushResp)
	if fr.SrvSpan != sp {
		t.Fatalf("FlushResp span %+v, want %+v", fr.SrvSpan, sp)
	}
}

// An untraced frame must be byte-identical to what a pre-trace encoder
// produced: all-zero trace and span bytes. This is what makes the
// feature transparently interoperable — old peers read padding, new
// peers read zero (= untraced).
func TestUntracedFramesKeepReservedBytesZero(t *testing.T) {
	b := Marshal(&Read{Header: Header{Seq: 1}, ReqID: 2, Volume: 1, Offset: 4096, Length: 8192})
	if !bytes.Equal(b[traceOff:traceOff+8], make([]byte, 8)) {
		t.Fatalf("untraced Read has nonzero trace bytes: %x", b[traceOff:traceOff+8])
	}
	b = Marshal(&ReadResp{Header: Header{Seq: 2}, ReqID: 3, Status: StatusOK})
	if !bytes.Equal(b[HeaderSize+spanOff:HeaderSize+spanOff+16], make([]byte, 16)) {
		t.Fatalf("untraced ReadResp has nonzero span bytes: %x", b[HeaderSize+spanOff:HeaderSize+spanOff+16])
	}
}

// A frame whose reserved bytes are zero (anything a pre-trace peer
// sends) decodes as untraced with a zero span.
func TestPreTraceFrameDecodesUntraced(t *testing.T) {
	b := Marshal(&ReadResp{Header: Header{Seq: 8}, ReqID: 4, Status: StatusOK, Length: 8192})
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	rr := got.(*ReadResp)
	if rr.Trace != 0 || rr.SrvSpan != (SrvSpan{}) {
		t.Fatalf("pre-trace frame decoded traced: trace=%d span=%+v", rr.Trace, rr.SrvSpan)
	}
}

// Saturated span fields (the clamp ceiling) survive the round trip.
func TestSrvSpanSaturation(t *testing.T) {
	sp := SrvSpan{SrvQueueNS: ^uint32(0), SrvServiceNS: ^uint32(0), SrvDiskQNS: ^uint32(0), SrvDeviceNS: ^uint32(0)}
	rr := roundtrip(t, &ReadResp{Header: Header{Seq: 9, Trace: 1}, ReqID: 5, Status: StatusOK, SrvSpan: sp}).(*ReadResp)
	if rr.SrvSpan != sp {
		t.Fatalf("saturated span %+v, want %+v", rr.SrvSpan, sp)
	}
}
