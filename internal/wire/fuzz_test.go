package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal feeds arbitrary frames through the decoder and checks the
// codec invariant: anything Unmarshal accepts must re-encode to a frame
// that decodes to the same message (decode∘encode is a fixed point). The
// seed corpus covers every message type, including Flush/FlushResp, plus
// truncated and corrupted frames.
func FuzzUnmarshal(f *testing.F) {
	seeds := []Message{
		&Connect{Header: Header{Seq: 1}, ClientID: 7, WantCreds: 64},
		&ConnectResp{Header: Header{Seq: 2}, Status: StatusOK, Credits: 32, MaxXfer: 1 << 20, SessionID: 9},
		&Read{Header: Header{Seq: 3, Ack: 1}, ReqID: 11, Volume: 1, Offset: 8192, Length: 4096, BufAddr: 0xbeef, FlagBits: 3},
		&ReadResp{Header: Header{Seq: 4}, ReqID: 11, Status: StatusEIO, Credits: 1, Length: 512},
		&Write{Header: Header{Seq: 5}, ReqID: 12, Volume: 2, Offset: 16384, Length: 8192, Slot: 3, FlagBits: 1},
		&WriteResp{Header: Header{Seq: 6}, ReqID: 12, Status: StatusEAgain, Credits: 2},
		&CreditGrant{Header: Header{Seq: 7}, Credits: 8},
		&Ping{Header: Header{Seq: 8}},
		&Pong{Header: Header{Seq: 9}},
		&Disconnect{Header: Header{Seq: 10}, Reason: 1},
		&Flush{Header: Header{Seq: 11, Ack: 4}, ReqID: 13, Volume: 3},
		&FlushResp{Header: Header{Seq: 12}, ReqID: 13, Status: StatusOK, Credits: 1},
		// Zero-length read and its response: the cluster vault's health
		// probe is exactly this frame, so the codec must keep accepting it.
		&Read{Header: Header{Seq: 13}, ReqID: 14, Volume: 1, Offset: 0, Length: 0},
		&ReadResp{Header: Header{Seq: 14}, ReqID: 14, Status: StatusOK, Credits: 1, Length: 0},
	}
	for _, m := range seeds {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add(make([]byte, ControlSize-1))
	corrupt := Marshal(&Flush{ReqID: 1})
	corrupt[3] = 0xFF // unknown type byte
	f.Add(corrupt)
	// Truncated and duplicated keepalive frames: TPing is the op the
	// hung-peer detector rides on, so a mangled ping must be rejected
	// cleanly (truncation) and a doubled one must decode as exactly one
	// frame (the stream framer owns the second).
	ping := Marshal(&Ping{Header: Header{Seq: 21}})
	f.Add(ping[:HeaderSize])
	f.Add(ping[:ControlSize-8])
	f.Add(append(append([]byte{}, ping...), ping...))
	// Stream-layer seeds: stream-control frames, data frames addressed to
	// a (possibly unknown) stream, a truncated stream frame whose stream
	// bytes are cut off, and a duplicated stream frame. An unknown stream
	// id is a session-layer concern — the codec must still decode it.
	f.Add(Marshal(&StreamOpen{Header: Header{Seq: 22, Stream: 1}, Class: ClassForeground, Weight: 1, WantCreds: 16}))
	f.Add(Marshal(&StreamOpenResp{Header: Header{Seq: 23, Stream: 1}, Status: StatusOK, Credits: 16}))
	f.Add(Marshal(&StreamOpenResp{Header: Header{Seq: 24, Stream: 2}, Status: StatusEOverloaded, RetryAfterMS: 10}))
	f.Add(Marshal(&StreamClose{Header: Header{Seq: 25, Stream: 1}}))
	sread := Marshal(&Read{Header: Header{Seq: 26, Stream: 0xffffffff}, ReqID: 15, Volume: 1, Length: 4096})
	f.Add(sread)
	f.Add(sread[:streamOff]) // truncation that amputates exactly the stream id
	f.Add(append(append([]byte{}, sread...), sread...))
	f.Add(Marshal(&WriteResp{Header: Header{Seq: 27, Stream: 3}, ReqID: 16, Status: StatusEOverloaded, RetryAfterMS: 50}))
	// Trace-layer seeds: a traced request (trace id in the reserved
	// header bytes), a traced response carrying a full server span
	// block, a saturated span, and a truncation that amputates exactly
	// the trace id bytes.
	traced := Marshal(&Read{Header: Header{Seq: 28, Trace: 0x0123456789abcdef}, ReqID: 17, Volume: 1, Length: 8192})
	f.Add(traced)
	f.Add(traced[:traceOff])
	f.Add(Marshal(&ReadResp{Header: Header{Seq: 29, Trace: 0xfedcba9876543210}, ReqID: 17, Status: StatusOK,
		SrvSpan: SrvSpan{SrvQueueNS: 100, SrvServiceNS: 2000, SrvDiskQNS: 300, SrvDeviceNS: 40000}}))
	f.Add(Marshal(&WriteResp{Header: Header{Seq: 30, Trace: 1}, ReqID: 18, Status: StatusOK,
		SrvSpan: SrvSpan{SrvQueueNS: ^uint32(0), SrvServiceNS: ^uint32(0)}}))
	f.Add(Marshal(&FlushResp{Header: Header{Seq: 31, Trace: ^uint64(0)}, ReqID: 19, Status: StatusOK,
		SrvSpan: SrvSpan{SrvServiceNS: 77}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return // rejected input: nothing further to check
		}
		re := Marshal(m)
		m2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode of %v failed: %v", TypeOf(m), err)
		}
		if TypeOf(m2) != TypeOf(m) {
			t.Fatalf("type changed across roundtrip: %v -> %v", TypeOf(m), TypeOf(m2))
		}
		if !bytes.Equal(Marshal(m2), re) {
			t.Fatalf("%v not a fixed point of decode∘encode", TypeOf(m))
		}
		if h := m2.Hdr(); h.Seq != m.Hdr().Seq || h.Ack != m.Hdr().Ack {
			t.Fatalf("%v lost seq/ack across roundtrip", TypeOf(m))
		}
	})
}

// TestPingFrameTruncationAndDuplication pins the keepalive frame's edge
// cases deterministically (the fuzz corpus seeds the same shapes): any
// truncation below ControlSize is rejected, and a buffer holding two
// back-to-back pings decodes as the FIRST frame only — trailing bytes
// belong to the stream framer, never to this decode.
func TestPingFrameTruncationAndDuplication(t *testing.T) {
	ping := Marshal(&Ping{Header: Header{Seq: 77}})
	for _, n := range []int{0, 1, HeaderSize - 1, HeaderSize, ControlSize - 8, ControlSize - 1} {
		if _, err := Unmarshal(ping[:n]); err == nil {
			t.Fatalf("truncated ping (%d bytes) decoded without error", n)
		}
	}
	dup := append(append([]byte{}, ping...), ping...)
	m, err := Unmarshal(dup)
	if err != nil {
		t.Fatalf("duplicated ping rejected: %v", err)
	}
	if TypeOf(m) != TPing || m.Hdr().Seq != 77 {
		t.Fatalf("duplicated ping decoded as %v seq=%d", TypeOf(m), m.Hdr().Seq)
	}
}
