// Package wire defines the V3 block protocol: the messages exchanged
// between a DSA client and a V3 storage server. The encoding is
// transport-independent and is used both by the simulated VI transport
// and by the real TCP transport in internal/netv3.
//
// Control messages are fixed-size (64 bytes, the paper's request size);
// bulk data travels out-of-band (RDMA in the paper, a framed body on
// TCP). Every message carries a connection-scoped sequence number used by
// the retransmission layer.
package wire

import (
	"errors"
	"fmt"
)

// Protocol constants.
const (
	Magic       = 0x5633 // "V3"
	Version     = 1
	ControlSize = 64 // every control message is exactly this many bytes
	HeaderSize  = 16
)

// MsgType identifies a protocol message.
type MsgType uint8

// Message types.
const (
	TConnect MsgType = iota + 1
	TConnectResp
	TRead
	TReadResp
	TWrite
	TWriteResp
	TCreditGrant
	TPing
	TPong
	TDisconnect
	TFlush
	TFlushResp
	TStreamOpen
	TStreamOpenResp
	TStreamClose
)

// Feature bits negotiated at session setup: the client advertises what it
// speaks in Connect.Features, the server answers with the intersection in
// ConnectResp.Features. Pre-feature peers encode zeros in the (formerly
// padding) feature fields, so the intersection with an old peer is always
// empty and both sides fall back to the original protocol.
const (
	// FeatureStreams: the connection carries multiplexed logical streams.
	// Frames address a stream via the header's Stream field; stream 0 is
	// the legacy/root session and is always valid.
	FeatureStreams uint32 = 1 << 0

	// FeatureTrace: requests may carry a nonzero trace id in the header's
	// Trace field and responses answer with a server-side span block
	// (queue wait, service time, disk-queue wait, device time). Both ride
	// frame padding that pre-trace peers emit as zeros and never read, so
	// a zero intersection falls back to untraced frames transparently.
	FeatureTrace uint32 = 1 << 1
)

// Stream QoS classes carried on StreamOpen.
const (
	ClassForeground uint8 = 0 // latency-sensitive reads/writes/flushes
	ClassBackground uint8 = 1 // destage/resync/prefetch-style utility traffic
)

// String returns the wire name of the type.
func (t MsgType) String() string {
	switch t {
	case TConnect:
		return "Connect"
	case TConnectResp:
		return "ConnectResp"
	case TRead:
		return "Read"
	case TReadResp:
		return "ReadResp"
	case TWrite:
		return "Write"
	case TWriteResp:
		return "WriteResp"
	case TCreditGrant:
		return "CreditGrant"
	case TPing:
		return "Ping"
	case TPong:
		return "Pong"
	case TDisconnect:
		return "Disconnect"
	case TFlush:
		return "Flush"
	case TFlushResp:
		return "FlushResp"
	case TStreamOpen:
		return "StreamOpen"
	case TStreamOpenResp:
		return "StreamOpenResp"
	case TStreamClose:
		return "StreamClose"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Status codes carried by responses.
type Status uint8

// Response status codes.
const (
	StatusOK Status = iota
	StatusEIO
	StatusEInval
	StatusENoVolume
	StatusEAgain      // out of server resources; retry after credit grant
	StatusEOverloaded // admission control shed the request; honor RetryAfterMS
)

// String returns the symbolic name of the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusEIO:
		return "EIO"
	case StatusEInval:
		return "EINVAL"
	case StatusENoVolume:
		return "ENOVOLUME"
	case StatusEAgain:
		return "EAGAIN"
	case StatusEOverloaded:
		return "EOVERLOADED"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Err converts a non-OK status to an error (nil for StatusOK).
func (s Status) Err() error {
	if s == StatusOK {
		return nil
	}
	return fmt.Errorf("wire: server status %s", s)
}

// Completion flags on read/write requests.
const (
	FlagPollCompletion uint8 = 1 << iota // server sets an RDMA completion flag; no response interrupt wanted
	FlagSync                             // synchronous request (latency-critical)
)

// Header prefixes every control message.
//
// Stream addresses a logical stream multiplexed over the connection. It is
// encoded in the frame's trailing padding (bytes 60..63), which every
// pre-stream peer emits as zeros and ignores on receipt — so stream 0 is
// the legacy/root session and old binaries interoperate unchanged.
//
// Trace carries the request's trace id in frame bytes 52..59 by the same
// padding trick (every payload ends by byte 48): zero means "untraced",
// which is exactly what pre-trace peers emit, so traced and legacy
// binaries interoperate without a version bump. Responses echo the
// request's trace id. Only meaningful after FeatureTrace is negotiated.
type Header struct {
	Type   MsgType
	Seq    uint64 // connection-scoped sequence number
	Ack    uint32 // cumulative ack of the peer's sequence numbers (low 32 bits)
	Stream uint32 // logical stream id (0 = root session / pre-stream peer)
	Trace  uint64 // trace id (0 = untraced / pre-trace peer)
}

// Connect opens a session.
type Connect struct {
	Header
	ClientID  uint64
	WantCreds uint16 // requested flow-control credits
	Features  uint32 // feature bits the client speaks (0 from old clients)
}

// ConnectResp answers Connect.
type ConnectResp struct {
	Header
	Status     Status
	Credits    uint16 // granted credits == server buffer slots
	MaxXfer    uint32 // largest single transfer the server accepts
	SessionID  uint64
	Features   uint32 // intersection of client and server feature bits
	MaxStreams uint16 // stream cap per connection (0 when streams are off)
}

// Read asks the server to RDMA length bytes of volume vol at offset into
// the client buffer identified by BufAddr.
type Read struct {
	Header
	ReqID    uint64
	Volume   uint32
	Offset   uint64
	Length   uint32
	BufAddr  uint64 // client-side RDMA target (simulated address / opaque token)
	FlagBits uint8
}

// SrvSpan is the server-side span block a traced response carries back in
// frame bytes 36..51 — more padding every pre-trace peer emits as zeros.
// Returning the spans in the response itself (instead of a scrape-side
// join) lets the client fold server time into its own stage table even
// against a remote server, and makes the old-server fallback free: zeros
// decode as "no span". Values are nanoseconds clamped to uint32 (~4.3 s,
// far beyond any request the keepalive layer would let live).
type SrvSpan struct {
	SrvQueueNS   uint32 // sched admission + lane queue wait
	SrvServiceNS uint32 // worker service time (handler start to response build)
	SrvDiskQNS   uint32 // disk queue wait (submit to device pickup)
	SrvDeviceNS  uint32 // device time (pickup to completion reap)
}

// ReadResp completes a Read. On the VI transport the payload has already
// been RDMA-written to BufAddr; on TCP the body follows this message.
// Length is the byte count of that trailing body (0 on error statuses),
// so a receiver can keep the stream framed even when it cannot match the
// response to an outstanding request (e.g. a stale seq after
// reconnection) — it drains exactly Length bytes instead of desyncing.
type ReadResp struct {
	Header
	ReqID        uint64
	Status       Status
	Credits      uint16 // piggybacked credit grant
	Length       uint32 // bytes of payload following this frame on TCP
	RetryAfterMS uint16 // shed hint: ms to back off (StatusEOverloaded only)
	SrvSpan             // server-side spans (zeros from pre-trace servers)
}

// Write asks the server to commit length bytes to volume vol at offset.
// The payload occupies the server buffer slot named Slot (granted by flow
// control); on TCP the body follows this message.
type Write struct {
	Header
	ReqID    uint64
	Volume   uint32
	Offset   uint64
	Length   uint32
	Slot     uint32 // server buffer slot carrying the payload
	FlagBits uint8
}

// WriteResp completes a Write (payload is durable on disk when it is sent).
type WriteResp struct {
	Header
	ReqID        uint64
	Status       Status
	Credits      uint16
	RetryAfterMS uint16 // shed hint: ms to back off (StatusEOverloaded only)
	SrvSpan             // server-side spans (zeros from pre-trace servers)
}

// CreditGrant returns flow-control credits outside of a response.
type CreditGrant struct {
	Header
	Credits uint16
}

// Ping/Pong are liveness probes used by the reconnection layer.
type Ping struct{ Header }

// Pong answers Ping.
type Pong struct{ Header }

// Disconnect closes a session cleanly.
type Disconnect struct {
	Header
	Reason uint8
}

// Flush is the durability barrier for write-behind volumes: it asks the
// server to destage every dirty cache block of the volume and sync the
// backing store. When the FlushResp arrives, every write the client has
// already seen completed is durable.
type Flush struct {
	Header
	ReqID  uint64
	Volume uint32
}

// FlushResp completes a Flush.
type FlushResp struct {
	Header
	ReqID        uint64
	Status       Status
	Credits      uint16
	RetryAfterMS uint16 // shed hint: ms to back off (StatusEOverloaded only)
	SrvSpan             // server-side spans (zeros from pre-trace servers)
}

// StreamOpen asks the server to open the logical stream named by
// Header.Stream with the given QoS class, scheduling weight, and credit
// ask. Stream credits are carved from the connection's shared window, so
// the grant bounds how many of the connection's slots this stream may
// hold concurrently — it never adds new slots.
type StreamOpen struct {
	Header
	Class     uint8  // ClassForeground or ClassBackground
	Weight    uint16 // scheduler weight (0 = default)
	WantCreds uint16 // requested per-stream credit cap
}

// StreamOpenResp answers StreamOpen for the stream in Header.Stream.
type StreamOpenResp struct {
	Header
	Status       Status
	Credits      uint16 // granted per-stream credit cap
	RetryAfterMS uint16 // shed hint when Status is EOverloaded
}

// StreamClose retires the logical stream in Header.Stream. It needs no
// response: requests already in flight on the stream complete normally
// (their responses carry the stream id and the client-side demux routes
// them by sequence number regardless).
type StreamClose struct {
	Header
}

// Message is implemented by every protocol message.
type Message interface {
	// Hdr returns the embedded header.
	Hdr() *Header
	// kind returns the wire type tag.
	kind() MsgType
}

// Hdr implements Message.
func (h *Header) Hdr() *Header { return h }

func (*Connect) kind() MsgType        { return TConnect }
func (*ConnectResp) kind() MsgType    { return TConnectResp }
func (*Read) kind() MsgType           { return TRead }
func (*ReadResp) kind() MsgType       { return TReadResp }
func (*Write) kind() MsgType          { return TWrite }
func (*WriteResp) kind() MsgType      { return TWriteResp }
func (*CreditGrant) kind() MsgType    { return TCreditGrant }
func (*Ping) kind() MsgType           { return TPing }
func (*Pong) kind() MsgType           { return TPong }
func (*Disconnect) kind() MsgType     { return TDisconnect }
func (*Flush) kind() MsgType          { return TFlush }
func (*FlushResp) kind() MsgType      { return TFlushResp }
func (*StreamOpen) kind() MsgType     { return TStreamOpen }
func (*StreamOpenResp) kind() MsgType { return TStreamOpenResp }
func (*StreamClose) kind() MsgType    { return TStreamClose }

// TypeOf returns the wire type of m.
func TypeOf(m Message) MsgType { return m.kind() }

// Errors returned by the codec.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrShort      = errors.New("wire: short message")
	ErrBadType    = errors.New("wire: unknown message type")
)
