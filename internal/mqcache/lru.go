package mqcache

import "container/list"

// LRU is a plain least-recently-used cache, the ablation baseline for the
// V3 server cache (BenchmarkAblationCache).
type LRU struct {
	capacity int
	order    *list.List // front = MRU
	entries  map[uint64]*list.Element
	hits     int64
	accesses int64
}

// NewLRU returns an LRU cache holding capacity blocks.
func NewLRU(capacity int) *LRU {
	if capacity <= 0 {
		panic("mqcache: capacity must be positive")
	}
	return &LRU{capacity: capacity, order: list.New(), entries: make(map[uint64]*list.Element)}
}

// Ref implements Cache.
func (l *LRU) Ref(key uint64) bool {
	l.accesses++
	el, ok := l.entries[key]
	if !ok {
		return false
	}
	l.hits++
	l.order.MoveToFront(el)
	return true
}

// Insert implements Cache.
func (l *LRU) Insert(key uint64) (uint64, bool) {
	if _, ok := l.entries[key]; ok {
		return 0, false
	}
	var victim uint64
	evicted := false
	if len(l.entries) >= l.capacity {
		back := l.order.Back()
		victim = back.Value.(uint64)
		l.order.Remove(back)
		delete(l.entries, victim)
		evicted = true
	}
	l.entries[key] = l.order.PushFront(key)
	return victim, evicted
}

// RefOrInsert implements Cache.
func (l *LRU) RefOrInsert(key uint64) (bool, uint64, bool) {
	if l.Ref(key) {
		return true, 0, false
	}
	victim, evicted := l.Insert(key)
	return false, victim, evicted
}

// Contains implements Cache.
func (l *LRU) Contains(key uint64) bool { _, ok := l.entries[key]; return ok }

// Remove implements Cache.
func (l *LRU) Remove(key uint64) bool {
	el, ok := l.entries[key]
	if !ok {
		return false
	}
	l.order.Remove(el)
	delete(l.entries, key)
	return true
}

// Len implements Cache.
func (l *LRU) Len() int { return len(l.entries) }

// Cap implements Cache.
func (l *LRU) Cap() int { return l.capacity }

// HitRatio returns hits/accesses since creation.
func (l *LRU) HitRatio() float64 {
	if l.accesses == 0 {
		return 0
	}
	return float64(l.hits) / float64(l.accesses)
}

var (
	_ Cache = (*MQ)(nil)
	_ Cache = (*LRU)(nil)
)
