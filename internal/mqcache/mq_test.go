package mqcache

import (
	"testing"
	"testing/quick"

	"github.com/v3storage/v3/internal/sim"
)

func caches(capacity int) map[string]Cache {
	return map[string]Cache{
		"mq":  NewMQ(capacity, 0, 0),
		"lru": NewLRU(capacity),
	}
}

func TestBasicHitMiss(t *testing.T) {
	for name, c := range caches(4) {
		if c.Ref(1) {
			t.Fatalf("%s: hit on empty cache", name)
		}
		c.Insert(1)
		if !c.Ref(1) {
			t.Fatalf("%s: miss after insert", name)
		}
		if !c.Contains(1) || c.Contains(2) {
			t.Fatalf("%s: contains wrong", name)
		}
		if c.Len() != 1 || c.Cap() != 4 {
			t.Fatalf("%s: len/cap wrong", name)
		}
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	for name, c := range caches(8) {
		for k := uint64(0); k < 100; k++ {
			c.Ref(k)
			c.Insert(k)
			if c.Len() > c.Cap() {
				t.Fatalf("%s: len %d > cap %d", name, c.Len(), c.Cap())
			}
		}
		if c.Len() != 8 {
			t.Fatalf("%s: len=%d, want 8", name, c.Len())
		}
	}
}

func TestInsertEvictsExactlyOne(t *testing.T) {
	for name, c := range caches(2) {
		c.Insert(1)
		c.Insert(2)
		victim, evicted := c.Insert(3)
		if !evicted {
			t.Fatalf("%s: no eviction at capacity", name)
		}
		if c.Contains(victim) {
			t.Fatalf("%s: victim %d still resident", name, victim)
		}
	}
}

func TestDoubleInsertIsNoop(t *testing.T) {
	for name, c := range caches(2) {
		c.Insert(1)
		if _, ev := c.Insert(1); ev {
			t.Fatalf("%s: double insert evicted", name)
		}
		if c.Len() != 1 {
			t.Fatalf("%s: len=%d", name, c.Len())
		}
	}
}

func TestRemove(t *testing.T) {
	for name, c := range caches(4) {
		c.Insert(5)
		if !c.Remove(5) {
			t.Fatalf("%s: remove of resident failed", name)
		}
		if c.Remove(5) {
			t.Fatalf("%s: remove of absent succeeded", name)
		}
		if c.Contains(5) {
			t.Fatalf("%s: still resident", name)
		}
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	l := NewLRU(3)
	l.Insert(1)
	l.Insert(2)
	l.Insert(3)
	l.Ref(1) // 2 is now LRU
	victim, _ := l.Insert(4)
	if victim != 2 {
		t.Fatalf("victim=%d, want 2", victim)
	}
}

func TestMQProtectsFrequentBlocks(t *testing.T) {
	// A hot set referenced many times must survive a scan of cold blocks,
	// where plain LRU would evict it.
	const capacity = 64
	m := NewMQ(capacity, 8, 1<<20)
	hot := make([]uint64, 8)
	for i := range hot {
		hot[i] = uint64(i)
		m.Insert(hot[i])
	}
	for round := 0; round < 10; round++ {
		for _, k := range hot {
			m.Ref(k)
		}
	}
	// Scan: twice the capacity of cold, once-referenced blocks.
	for k := uint64(1000); k < 1000+2*capacity; k++ {
		if !m.Ref(k) {
			m.Insert(k)
		}
	}
	for _, k := range hot {
		if !m.Contains(k) {
			t.Fatalf("hot block %d evicted by cold scan", k)
		}
	}
}

func TestMQGhostQueueRestoresFrequency(t *testing.T) {
	m := NewMQ(2, 8, 1<<20)
	// Two hot blocks fill the cache in a high queue.
	m.Insert(1)
	for i := 0; i < 16; i++ {
		m.Ref(1) // refs -> 17, queue 4
	}
	m.Insert(2)
	for i := 0; i < 16; i++ {
		m.Ref(2)
	}
	// A third insert must evict the LRU of the lowest non-empty queue,
	// which is queue 4's LRU: block 1.
	victim, ev := m.Insert(3)
	if !ev || victim != 1 {
		t.Fatalf("victim=%d ev=%v, want block 1 evicted", victim, ev)
	}
	if m.GhostLen() == 0 {
		t.Fatal("ghost queue empty after eviction")
	}
	// Re-insert block 1: the ghost entry restores its frequency, placing
	// it in a high queue. A subsequent cold insert must therefore evict
	// the once-referenced block 3, not the restored block 1.
	if v, ev := m.Insert(1); !ev || v != 3 {
		t.Fatalf("re-insert evicted %d, want cold block 3", v)
	}
	if v, ev := m.Insert(4); !ev || v == 1 {
		t.Fatalf("ghost-restored block evicted like a cold block (victim=%d ev=%v)", v, ev)
	}
	if !m.Contains(1) {
		t.Fatal("restored hot block should be resident")
	}
}

func TestMQLifetimeDemotion(t *testing.T) {
	// With a tiny lifetime, a block promoted high but never re-referenced
	// must drift back down and become evictable before newer blocks.
	m := NewMQ(4, 4, 2)
	m.Insert(1)
	for i := 0; i < 8; i++ {
		m.Ref(1)
	}
	m.Insert(2)
	m.Insert(3)
	m.Insert(4)
	// Age block 1 with unrelated accesses.
	for i := 0; i < 64; i++ {
		m.Ref(2)
		m.Ref(3)
		m.Ref(4)
	}
	m.Insert(5) // someone must go; demoted block 1 should be a candidate
	if m.Contains(1) && !m.Contains(5) {
		t.Fatal("stale high-frequency block never demoted")
	}
}

func TestMQQueueIndex(t *testing.T) {
	m := NewMQ(4, 4, 0)
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1 << 20: 3}
	for refs, want := range cases {
		if got := m.queueIndex(refs); got != want {
			t.Fatalf("queueIndex(%d)=%d, want %d", refs, got, want)
		}
	}
}

func TestHitRatioTracking(t *testing.T) {
	m := NewMQ(2, 0, 0)
	if m.HitRatio() != 0 {
		t.Fatal("ratio on no accesses")
	}
	m.Insert(1)
	m.Ref(1)
	m.Ref(2)
	if m.HitRatio() != 0.5 {
		t.Fatalf("mq ratio=%v", m.HitRatio())
	}
	l := NewLRU(2)
	l.Insert(1)
	l.Ref(1)
	l.Ref(2)
	if l.HitRatio() != 0.5 {
		t.Fatalf("lru ratio=%v", l.HitRatio())
	}
}

func TestMQBeatsLRUOnSecondLevelPattern(t *testing.T) {
	// Second-level cache pattern: a modest hot set re-referenced at long
	// temporal distance, interleaved with a large cold stream. MQ should
	// achieve a meaningfully better hit ratio than LRU.
	const capacity = 256
	mq := NewMQ(capacity, 8, 2048)
	lru := NewLRU(capacity)
	rng := sim.NewRand(1234)
	hotN, coldN := uint64(128), uint64(8192)
	access := func(c Cache, k uint64) {
		if !c.Ref(k) {
			c.Insert(k)
		}
	}
	for i := 0; i < 200000; i++ {
		var k uint64
		if rng.Float64() < 0.4 {
			k = rng.Uint64() % hotN // hot set
		} else {
			k = hotN + rng.Uint64()%coldN // cold stream
		}
		access(mq, k)
		access(lru, k)
	}
	if mq.HitRatio() <= lru.HitRatio() {
		t.Fatalf("MQ (%.3f) should beat LRU (%.3f) on second-level pattern",
			mq.HitRatio(), lru.HitRatio())
	}
}

// Property: for any access trace, both caches respect capacity and
// Contains is consistent with Insert/Remove/eviction results.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(trace []uint16, capSeed uint8) bool {
		capacity := int(capSeed%64) + 1
		for _, c := range caches(capacity) {
			resident := map[uint64]bool{}
			for _, kRaw := range trace {
				k := uint64(kRaw % 256)
				hit := c.Ref(k)
				if hit != resident[k] {
					return false
				}
				if !hit {
					victim, ev := c.Insert(k)
					if ev {
						if !resident[victim] {
							return false // evicted something not resident
						}
						delete(resident, victim)
					}
					resident[k] = true
				}
				if c.Len() > capacity || c.Len() != len(resident) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: RefOrInsert behaves exactly like Ref followed (on miss) by
// Insert, for both cache implementations.
func TestRefOrInsertEquivalence(t *testing.T) {
	f := func(trace []uint16, capSeed uint8) bool {
		capacity := int(capSeed%64) + 1
		a, b := caches(capacity), caches(capacity)
		for name, combined := range a {
			split := b[name]
			for _, kRaw := range trace {
				k := uint64(kRaw % 256)
				hit1, victim1, ev1 := combined.RefOrInsert(k)
				hit2 := split.Ref(k)
				var victim2 uint64
				var ev2 bool
				if !hit2 {
					victim2, ev2 = split.Insert(k)
				}
				if hit1 != hit2 || victim1 != victim2 || ev1 != ev2 {
					return false
				}
				if combined.Len() != split.Len() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
