package mqcache

import "testing"

func TestPinExemptsFromEviction(t *testing.T) {
	m := NewMQ(4, 0, 0)
	for k := uint64(0); k < 4; k++ {
		m.Insert(k)
	}
	if !m.Pin(0) {
		t.Fatal("Pin(0) on resident key returned false")
	}
	// Fill far past capacity: key 0 must survive every eviction round.
	for k := uint64(10); k < 30; k++ {
		m.Insert(k)
		if !m.Contains(0) {
			t.Fatalf("pinned key 0 evicted after inserting %d", k)
		}
	}
	if m.Len() != m.Cap() {
		t.Fatalf("Len=%d want %d", m.Len(), m.Cap())
	}
}

func TestUnpinRestoresEvictability(t *testing.T) {
	m := NewMQ(2, 0, 0)
	m.Insert(1)
	m.Insert(2)
	m.Pin(1)
	m.Pin(2)
	if got := m.PinnedLen(); got != 2 {
		t.Fatalf("PinnedLen=%d want 2", got)
	}
	m.Unpin(1)
	if got := m.PinnedLen(); got != 1 {
		t.Fatalf("PinnedLen after Unpin=%d want 1", got)
	}
	victim, wasEvict, inserted := m.TryInsert(3)
	if !inserted || !wasEvict || victim != 1 {
		t.Fatalf("TryInsert(3)=(%d,%v,%v) want victim 1, evict, inserted", victim, wasEvict, inserted)
	}
	if !m.Contains(2) || m.Contains(1) {
		t.Fatal("unpinned key 1 should be the victim, pinned key 2 resident")
	}
}

func TestTryInsertRefusesWhenAllPinned(t *testing.T) {
	m := NewMQ(2, 0, 0)
	m.Insert(1)
	m.Insert(2)
	m.Pin(1)
	m.Pin(2)
	victim, wasEvict, inserted := m.TryInsert(3)
	if inserted || wasEvict || victim != 0 {
		t.Fatalf("TryInsert with all pinned = (%d,%v,%v), want refusal", victim, wasEvict, inserted)
	}
	if m.Contains(3) || m.Len() != 2 {
		t.Fatal("refused insert must leave the cache untouched")
	}
	// The refused key must not have been charged to the ghost queue path
	// in a way that corrupts a later, allowed insert.
	m.Unpin(2)
	if _, _, inserted := m.TryInsert(3); !inserted {
		t.Fatal("TryInsert(3) after Unpin should succeed")
	}
	if !m.Contains(3) || !m.Contains(1) || m.Contains(2) {
		t.Fatal("expected 2 evicted, 1 and 3 resident")
	}
}

func TestRefOrTryInsertMatchesRefOrInsertUnpinned(t *testing.T) {
	a := NewMQ(8, 0, 0)
	b := NewMQ(8, 0, 0)
	// A deterministic mixed stream: with no pins the Try variant must be
	// byte-for-byte the same policy as the classic one.
	seq := []uint64{1, 2, 3, 1, 4, 5, 6, 7, 8, 9, 2, 10, 11, 1, 12, 3, 13, 14, 9, 15}
	for _, k := range seq {
		h1, v1, e1 := a.RefOrInsert(k)
		h2, v2, e2, ins := b.RefOrTryInsert(k)
		if h1 != h2 || v1 != v2 || e1 != e2 {
			t.Fatalf("key %d: RefOrInsert=(%v,%d,%v) RefOrTryInsert=(%v,%d,%v)", k, h1, v1, e1, h2, v2, e2)
		}
		if !h2 && !ins {
			t.Fatalf("key %d: miss with no pins must insert", k)
		}
	}
	if a.Len() != b.Len() || a.GhostLen() != b.GhostLen() {
		t.Fatal("Try variant diverged from classic policy with no pins")
	}
}

func TestRemoveClearsPinCount(t *testing.T) {
	m := NewMQ(2, 0, 0)
	m.Insert(1)
	m.Pin(1)
	m.Remove(1)
	if got := m.PinnedLen(); got != 0 {
		t.Fatalf("PinnedLen after Remove=%d want 0", got)
	}
	// With the pinned count released, the slot must be usable again.
	m.Insert(2)
	m.Insert(3)
	if _, _, inserted := m.TryInsert(4); !inserted {
		t.Fatal("TryInsert must evict normally after pinned key removed")
	}
}

func TestPinUnpinNonResident(t *testing.T) {
	m := NewMQ(2, 0, 0)
	if m.Pin(7) {
		t.Fatal("Pin on absent key must report false")
	}
	if m.Unpin(7) {
		t.Fatal("Unpin on absent key must report false")
	}
	m.Insert(1)
	m.Pin(1)
	m.Pin(1) // idempotent
	if got := m.PinnedLen(); got != 1 {
		t.Fatalf("PinnedLen after double Pin=%d want 1", got)
	}
	m.Unpin(1)
	m.Unpin(1) // idempotent
	if got := m.PinnedLen(); got != 0 {
		t.Fatalf("PinnedLen after double Unpin=%d want 0", got)
	}
}
