// Package mqcache implements the Multi-Queue (MQ) replacement algorithm
// (Zhou, Philbin, Li — USENIX ATC 2001, the paper's reference [31]) that
// V3 storage nodes use for their large second-level buffer caches, plus a
// plain LRU used as an ablation baseline.
//
// MQ is designed for second-level caches, whose access stream has had
// its short-term locality stripped by the first-level (database buffer
// pool) cache: blocks are promoted through m LRU queues by access
// frequency (queue index = log2(references)), demoted when they outlive
// a per-queue lifetime, and remembered in a ghost queue (Qout) after
// eviction so a re-fetched block regains its old frequency.
//
// Keys are opaque uint64 block numbers. The caches store presence only;
// callers own the data and dirty-state bookkeeping.
package mqcache

import "container/list"

// Cache is a block-presence cache with a replacement policy.
type Cache interface {
	// Ref records an access to key and reports whether it hit.
	Ref(key uint64) bool
	// Insert adds key after a miss, returning the evicted key, if any.
	Insert(key uint64) (evicted uint64, wasEvict bool)
	// Contains reports presence without touching recency state.
	Contains(key uint64) bool
	// RefOrInsert combines Ref and Insert: it records an access, and on a
	// miss makes key resident, returning the evicted key, if any. Callers
	// that guard the cache with a lock (e.g. netv3's sharded block cache)
	// get the whole hit-or-fill decision in one critical section instead
	// of two lock round-trips.
	RefOrInsert(key uint64) (hit bool, evicted uint64, wasEvict bool)
	// Remove drops key, reporting whether it was present.
	Remove(key uint64) bool
	// Len returns the number of resident blocks; Cap the maximum.
	Len() int
	Cap() int
}

// Default MQ tuning, following the MQ paper.
const (
	DefaultNumQueues = 8
	// DefaultLifeTicks is the per-queue lifetime in cache accesses; the MQ
	// paper sets it to the observed temporal distance, for which peak
	// hit-ratio is robust over a wide range.
	DefaultLifeTicks = 32 * 1024
)

type mqEntry struct {
	key     uint64
	refs    int   // reference count (drives queue index)
	expire  int64 // currentTime + lifeTicks when (re)queued
	queue   int   // which Qi the entry sits in
	pinned  bool  // exempt from victim selection (e.g. dirty, being flushed)
	element *list.Element
}

// MQ is the Multi-Queue cache.
type MQ struct {
	capacity  int
	numQueues int
	lifeTicks int64

	queues  []*list.List // Q0..Qm-1, each LRU (front = MRU)
	entries map[uint64]*mqEntry

	qout     *list.List // ghost queue of evicted keys (stores mqEntry w/o residency)
	qoutMap  map[uint64]*mqEntry
	qoutCap  int
	now      int64 // logical time in accesses
	hits     int64
	accesses int64
	pinned   int // resident entries currently pinned
}

// NewMQ returns an MQ cache holding capacity blocks, with numQueues
// frequency levels and the given per-queue lifetime in accesses. Zero
// numQueues/lifeTicks select the defaults. The ghost queue remembers as
// many evicted keys as the cache holds blocks (the MQ paper's setting).
func NewMQ(capacity, numQueues int, lifeTicks int64) *MQ {
	if capacity <= 0 {
		panic("mqcache: capacity must be positive")
	}
	if numQueues <= 0 {
		numQueues = DefaultNumQueues
	}
	if lifeTicks <= 0 {
		lifeTicks = DefaultLifeTicks
	}
	m := &MQ{
		capacity:  capacity,
		numQueues: numQueues,
		lifeTicks: lifeTicks,
		queues:    make([]*list.List, numQueues),
		entries:   make(map[uint64]*mqEntry),
		qout:      list.New(),
		qoutMap:   make(map[uint64]*mqEntry),
		qoutCap:   capacity,
	}
	for i := range m.queues {
		m.queues[i] = list.New()
	}
	return m
}

// queueIndex maps a reference count to its queue: floor(log2(refs)),
// clamped to the top queue.
func (m *MQ) queueIndex(refs int) int {
	idx := 0
	for r := refs; r > 1; r >>= 1 {
		idx++
	}
	if idx >= m.numQueues {
		idx = m.numQueues - 1
	}
	return idx
}

// Ref records an access. On hit the block's reference count increments
// and it moves to the MRU end of its (possibly higher) queue.
func (m *MQ) Ref(key uint64) bool {
	m.now++
	m.accesses++
	m.adjust()
	e, ok := m.entries[key]
	if !ok {
		return false
	}
	m.hits++
	e.refs++
	m.requeue(e)
	return true
}

func (m *MQ) requeue(e *mqEntry) {
	m.queues[e.queue].Remove(e.element)
	e.queue = m.queueIndex(e.refs)
	e.expire = m.now + m.lifeTicks
	e.element = m.queues[e.queue].PushFront(e)
}

// adjust implements MQ's lifetime demotion: the LRU block of each
// non-bottom queue whose lifetime expired moves down one queue.
func (m *MQ) adjust() {
	for q := 1; q < m.numQueues; q++ {
		back := m.queues[q].Back()
		if back == nil {
			continue
		}
		e := back.Value.(*mqEntry)
		if e.expire <= m.now {
			m.queues[q].Remove(e.element)
			e.queue = q - 1
			e.expire = m.now + m.lifeTicks
			e.element = m.queues[q-1].PushFront(e)
		}
	}
}

// Insert adds key after a miss. If the key is remembered in the ghost
// queue its old reference count is restored (plus one), placing it
// directly in a higher-frequency queue. Returns the victim, if one was
// evicted to make room. Callers that pin entries must use TryInsert
// instead: Insert panics if every resident entry is pinned and one must
// be evicted.
func (m *MQ) Insert(key uint64) (uint64, bool) {
	victim, wasEvict, inserted := m.TryInsert(key)
	if !inserted {
		if _, ok := m.entries[key]; ok {
			return 0, false // already resident; treat as no-op
		}
		panic("mqcache: Insert with every entry pinned (use TryInsert)")
	}
	return victim, wasEvict
}

// TryInsert adds key after a miss, like Insert, but refuses (inserted ==
// false, nothing evicted) when the cache is full and every resident
// entry is pinned. An already-resident key also reports inserted ==
// false with no eviction. With no pinned entries TryInsert behaves
// exactly like Insert.
func (m *MQ) TryInsert(key uint64) (victim uint64, wasEvict, inserted bool) {
	if _, ok := m.entries[key]; ok {
		return 0, false, false // already resident; treat as no-op
	}
	if len(m.entries) >= m.capacity {
		v, ok := m.evict()
		if !ok {
			return 0, false, false // every candidate pinned; refuse
		}
		victim, wasEvict = v, true
	}
	refs := 1
	if g, ok := m.qoutMap[key]; ok {
		refs = g.refs + 1
		m.qout.Remove(g.element)
		delete(m.qoutMap, key)
	}
	e := &mqEntry{key: key, refs: refs, expire: m.now + m.lifeTicks}
	e.queue = m.queueIndex(refs)
	e.element = m.queues[e.queue].PushFront(e)
	m.entries[key] = e
	return victim, wasEvict, true
}

// evict removes the least-valuable unpinned block — walking each queue
// from its LRU end upward, lowest queue first — and remembers it in the
// ghost queue. Returns false if every resident entry is pinned.
func (m *MQ) evict() (uint64, bool) {
	if len(m.entries) == 0 {
		panic("mqcache: evict on empty cache")
	}
	if m.pinned >= len(m.entries) {
		return 0, false
	}
	for q := 0; q < m.numQueues; q++ {
		for el := m.queues[q].Back(); el != nil; el = el.Prev() {
			e := el.Value.(*mqEntry)
			if e.pinned {
				continue
			}
			m.queues[q].Remove(e.element)
			delete(m.entries, e.key)
			// Remember in Qout.
			ghost := &mqEntry{key: e.key, refs: e.refs}
			ghost.element = m.qout.PushFront(ghost)
			m.qoutMap[e.key] = ghost
			if m.qout.Len() > m.qoutCap {
				oldest := m.qout.Back()
				g := oldest.Value.(*mqEntry)
				m.qout.Remove(oldest)
				delete(m.qoutMap, g.key)
			}
			return e.key, true
		}
	}
	return 0, false
}

// Pin exempts key from victim selection until Unpin. Reports whether the
// key is resident. Pinning an already-pinned key is a no-op.
func (m *MQ) Pin(key uint64) bool {
	e, ok := m.entries[key]
	if !ok {
		return false
	}
	if !e.pinned {
		e.pinned = true
		m.pinned++
	}
	return true
}

// Unpin makes key evictable again. Reports whether the key is resident.
// Unpinning an unpinned key is a no-op.
func (m *MQ) Unpin(key uint64) bool {
	e, ok := m.entries[key]
	if !ok {
		return false
	}
	if e.pinned {
		e.pinned = false
		m.pinned--
	}
	return true
}

// PinnedLen returns the number of resident pinned entries (for tests).
func (m *MQ) PinnedLen() int { return m.pinned }

// RefOrInsert implements Cache.
func (m *MQ) RefOrInsert(key uint64) (bool, uint64, bool) {
	if m.Ref(key) {
		return true, 0, false
	}
	victim, evicted := m.Insert(key)
	return false, victim, evicted
}

// RefOrTryInsert is RefOrInsert with TryInsert's refusal semantics: on a
// miss with the cache full of pinned entries it reports inserted ==
// false and leaves the cache untouched (beyond the access tick).
func (m *MQ) RefOrTryInsert(key uint64) (hit bool, victim uint64, wasEvict, inserted bool) {
	if m.Ref(key) {
		return true, 0, false, false
	}
	victim, wasEvict, inserted = m.TryInsert(key)
	return false, victim, wasEvict, inserted
}

// Contains implements Cache.
func (m *MQ) Contains(key uint64) bool { _, ok := m.entries[key]; return ok }

// Remove implements Cache.
func (m *MQ) Remove(key uint64) bool {
	e, ok := m.entries[key]
	if !ok {
		return false
	}
	if e.pinned {
		m.pinned--
	}
	m.queues[e.queue].Remove(e.element)
	delete(m.entries, key)
	return true
}

// Len implements Cache.
func (m *MQ) Len() int { return len(m.entries) }

// Cap implements Cache.
func (m *MQ) Cap() int { return m.capacity }

// HitRatio returns hits/accesses since creation.
func (m *MQ) HitRatio() float64 {
	if m.accesses == 0 {
		return 0
	}
	return float64(m.hits) / float64(m.accesses)
}

// GhostLen returns the current ghost-queue population (for tests).
func (m *MQ) GhostLen() int { return m.qout.Len() }
