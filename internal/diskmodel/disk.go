// Package diskmodel provides a mechanical disk service-time model and a
// queued disk device for the simulation. Service time is the classic
// seek + rotational latency + media transfer decomposition; sequential
// requests skip the seek and most of the rotation, random requests pay
// an average seek and half a rotation (jittered).
//
// Figures 7, 8, and 13 of the paper depend only on this distribution and
// on FIFO queueing at the device.
package diskmodel

import (
	"time"

	"github.com/v3storage/v3/internal/sim"
)

// Params describes a disk mechanically.
type Params struct {
	Name        string
	RPM         int           // spindle speed
	AvgSeek     time.Duration // average random seek
	TrackSeek   time.Duration // track-to-track seek
	MediaMBps   float64       // sustained media transfer rate
	Overhead    time.Duration // controller/command overhead per request
	CapacityGB  int           // advertised capacity
	WriteExtra  time.Duration // extra settle time for writes
	CacheWrites bool          // write-back controller cache (not used for DB safety)
}

// RotationPeriod returns one full revolution.
func (p Params) RotationPeriod() time.Duration {
	if p.RPM <= 0 {
		return 0
	}
	return time.Duration(float64(time.Minute) / float64(p.RPM))
}

// Request is one disk I/O.
type Request struct {
	Offset int64 // byte offset on the device
	Length int   // bytes
	Write  bool
	Done   *sim.Event // fired at completion
	Start  sim.Time   // set by the disk at submission
	Finish sim.Time   // set by the disk at completion
}

// Disk is a single queued device: one head assembly serving a FIFO queue
// of requests with mechanical service times.
type Disk struct {
	e       *sim.Engine
	params  Params
	rng     *sim.Rand
	queue   *sim.Queue[*Request]
	lastEnd int64 // byte position after the previous request (for sequentiality)
	// Stats
	served    sim.Counter
	busy      time.Duration
	queueLens sim.Tally
}

// New creates a disk and starts its service process.
func New(e *sim.Engine, params Params, rng *sim.Rand) *Disk {
	d := &Disk{e: e, params: params, rng: rng, queue: sim.NewQueue[*Request](), lastEnd: -1}
	e.Go("disk:"+params.Name, d.serve)
	return d
}

// Params returns the disk's mechanical parameters.
func (d *Disk) Params() Params { return d.params }

// Submit enqueues req and returns immediately; req.Done fires when the
// request completes. Safe to call from events or processes.
func (d *Disk) Submit(req *Request) {
	if req.Done == nil {
		req.Done = sim.NewEvent()
	}
	req.Start = d.e.Now()
	d.queueLens.Add(float64(d.queue.Len()))
	d.queue.Put(d.e, req)
}

// ServiceTime computes the mechanical service time for a request at
// offset/length given the previous head position (prevEnd; negative means
// unknown). Exposed for unit testing and for analytic sizing.
func (d *Disk) ServiceTime(prevEnd, offset int64, length int, write bool) time.Duration {
	p := d.params
	t := p.Overhead
	sequential := prevEnd >= 0 && offset == prevEnd
	if sequential {
		// Head is already there; pay a short settle.
		t += p.TrackSeek / 2
	} else {
		// Random: jittered average seek plus uniform rotational latency.
		seek := p.AvgSeek/2 + time.Duration(d.rng.Float64()*float64(p.AvgSeek))
		rot := time.Duration(d.rng.Float64() * float64(p.RotationPeriod()))
		t += seek + rot
	}
	if p.MediaMBps > 0 {
		t += time.Duration(float64(length) / (p.MediaMBps * 1e6) * float64(time.Second))
	}
	if write {
		t += p.WriteExtra
	}
	return t
}

func (d *Disk) serve(p *sim.Proc) {
	for {
		req := d.queue.Get(p)
		st := d.ServiceTime(d.lastEnd, req.Offset, req.Length, req.Write)
		p.Sleep(st)
		d.busy += st
		d.lastEnd = req.Offset + int64(req.Length)
		req.Finish = p.Now()
		d.served.Inc()
		req.Done.Fire(d.e)
	}
}

// Served returns the number of completed requests.
func (d *Disk) Served() int64 { return d.served.Value() }

// BusyTime returns accumulated mechanical service time.
func (d *Disk) BusyTime() time.Duration { return d.busy }

// MeanQueueLen returns the average queue length observed at submission.
func (d *Disk) MeanQueueLen() float64 { return d.queueLens.Mean() }

// Array is a set of identical disks addressed by index, used by the V3
// disk manager and by the local baseline.
type Array struct {
	Disks []*Disk
}

// NewArray creates n disks sharing params; each disk gets an independent
// RNG stream split from rng.
func NewArray(e *sim.Engine, n int, params Params, rng *sim.Rand) *Array {
	a := &Array{Disks: make([]*Disk, n)}
	for i := range a.Disks {
		a.Disks[i] = New(e, params, rng.Split())
	}
	return a
}

// Served returns total completed requests across the array.
func (a *Array) Served() int64 {
	var n int64
	for _, d := range a.Disks {
		n += d.Served()
	}
	return n
}
