package diskmodel

import (
	"testing"
	"time"

	"github.com/v3storage/v3/internal/sim"
)

func testDisk(e *sim.Engine) *Disk {
	return New(e, SCSI10K(), sim.NewRand(1))
}

func TestRotationPeriod(t *testing.T) {
	if got := SCSI10K().RotationPeriod(); got != 6*time.Millisecond {
		t.Fatalf("10K RPM rotation = %v, want 6ms", got)
	}
	if got := FC15K().RotationPeriod(); got != 4*time.Millisecond {
		t.Fatalf("15K RPM rotation = %v, want 4ms", got)
	}
	if (Params{}).RotationPeriod() != 0 {
		t.Fatal("zero RPM should give zero period")
	}
}

func TestServiceTimeRandomWithinEnvelope(t *testing.T) {
	e := sim.NewEngine()
	d := testDisk(e)
	p := d.Params()
	for i := 0; i < 1000; i++ {
		st := d.ServiceTime(-1, int64(i)*1e6, 8192, false)
		lo := p.Overhead + p.AvgSeek/2
		hi := p.Overhead + p.AvgSeek/2 + p.AvgSeek + p.RotationPeriod() + time.Millisecond
		if st < lo || st > hi {
			t.Fatalf("service time %v outside [%v, %v]", st, lo, hi)
		}
	}
}

func TestServiceTimeSequentialFasterThanRandom(t *testing.T) {
	e := sim.NewEngine()
	d := testDisk(e)
	var seq, rnd time.Duration
	for i := 0; i < 200; i++ {
		seq += d.ServiceTime(1000, 1000, 8192, false)
		rnd += d.ServiceTime(-1, 8192, 8192, false)
	}
	if seq >= rnd/4 {
		t.Fatalf("sequential (%v) should be far faster than random (%v)", seq, rnd)
	}
}

func TestServiceTimeScalesWithLength(t *testing.T) {
	e := sim.NewEngine()
	d := testDisk(e)
	small := d.ServiceTime(0, 0, 8192, false)
	big := d.ServiceTime(0, 0, 8192*16, false)
	wantDelta := time.Duration(float64(8192*15) / (d.Params().MediaMBps * 1e6) * float64(time.Second))
	delta := big - small
	if delta < wantDelta*9/10 || delta > wantDelta*11/10 {
		t.Fatalf("transfer delta = %v, want ~%v", delta, wantDelta)
	}
}

func TestWritePaysExtra(t *testing.T) {
	e := sim.NewEngine()
	d := testDisk(e)
	r := d.ServiceTime(0, 0, 8192, false)
	w := d.ServiceTime(0, 0, 8192, true)
	if w-r != d.Params().WriteExtra {
		t.Fatalf("write extra = %v, want %v", w-r, d.Params().WriteExtra)
	}
}

func TestSubmitCompletesAndRecordsTimes(t *testing.T) {
	e := sim.NewEngine()
	d := testDisk(e)
	req := &Request{Offset: 4096, Length: 8192, Done: sim.NewEvent()}
	d.Submit(req)
	var finished sim.Time
	e.Go("waiter", func(p *sim.Proc) {
		req.Done.Wait(p)
		finished = p.Now()
	})
	e.RunFor(time.Second)
	if !req.Done.Fired() {
		t.Fatal("request never completed")
	}
	if req.Finish != finished || req.Finish <= req.Start {
		t.Fatalf("finish=%v start=%v observer=%v", req.Finish, req.Start, finished)
	}
	if d.Served() != 1 {
		t.Fatalf("served = %d", d.Served())
	}
}

func TestSubmitWithoutDoneAllocatesEvent(t *testing.T) {
	e := sim.NewEngine()
	d := testDisk(e)
	req := &Request{Offset: 0, Length: 512}
	d.Submit(req)
	e.RunFor(time.Second)
	if req.Done == nil || !req.Done.Fired() {
		t.Fatal("Submit should allocate and fire Done")
	}
}

func TestFIFOOrdering(t *testing.T) {
	e := sim.NewEngine()
	d := testDisk(e)
	var order []int
	for i := 0; i < 5; i++ {
		req := &Request{Offset: int64(i) * 1e6, Length: 8192, Done: sim.NewEvent()}
		d.Submit(req)
		idx := i
		e.Go("w", func(p *sim.Proc) {
			req.Done.Wait(p)
			order = append(order, idx)
		})
	}
	e.RunFor(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order %v, want FIFO", order)
		}
	}
}

func TestQueueingDelaysLaterRequests(t *testing.T) {
	e := sim.NewEngine()
	d := testDisk(e)
	reqs := make([]*Request, 8)
	for i := range reqs {
		reqs[i] = &Request{Offset: int64(i) * 1e7, Length: 8192, Done: sim.NewEvent()}
		d.Submit(reqs[i])
	}
	e.RunFor(time.Second)
	first := reqs[0].Finish - reqs[0].Start
	last := reqs[7].Finish - reqs[7].Start
	if last < 5*first {
		t.Fatalf("8-deep queue: last latency %v should dwarf first %v", last, first)
	}
}

func TestRandomReadLatencyMatchesAnalytic(t *testing.T) {
	// Mean random 8K read = overhead + avgSeek + rot/2 + transfer.
	e := sim.NewEngine()
	d := testDisk(e)
	var total time.Duration
	n := 0
	e.Go("load", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			done := sim.NewEvent()
			d.Submit(&Request{Offset: int64(i*37+1) * 1 << 20, Length: 8192, Done: done})
			t0 := p.Now()
			done.Wait(p)
			total += p.Now() - t0
			n++
		}
	})
	e.Run()
	mean := total / time.Duration(n)
	pp := d.Params()
	want := pp.Overhead + pp.AvgSeek + pp.RotationPeriod()/2 +
		time.Duration(8192/(pp.MediaMBps*1e6)*float64(time.Second))
	if mean < want*85/100 || mean > want*115/100 {
		t.Fatalf("mean = %v, want ~%v", mean, want)
	}
}

func TestArrayCreatesIndependentDisks(t *testing.T) {
	e := sim.NewEngine()
	a := NewArray(e, 4, SCSI10K(), sim.NewRand(2))
	if len(a.Disks) != 4 {
		t.Fatalf("len = %d", len(a.Disks))
	}
	for i, d := range a.Disks {
		d.Submit(&Request{Offset: int64(i) * 1e6, Length: 8192})
	}
	e.RunFor(time.Second)
	if a.Served() != 4 {
		t.Fatalf("served = %d, want 4 (parallel service)", a.Served())
	}
	// Parallel: all four should be done well before 4x single service time.
	if e.Now() > time.Second {
		t.Fatal("array did not serve in parallel")
	}
}

func TestBusyTimeAccumulates(t *testing.T) {
	e := sim.NewEngine()
	d := testDisk(e)
	d.Submit(&Request{Offset: 0, Length: 8192})
	d.Submit(&Request{Offset: 1 << 20, Length: 8192})
	e.RunFor(time.Second)
	if d.BusyTime() <= 0 {
		t.Fatal("busy time not accumulated")
	}
	if d.MeanQueueLen() < 0 {
		t.Fatal("queue stats broken")
	}
}
