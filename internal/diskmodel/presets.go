package diskmodel

import "time"

// SCSI10K returns the mid-size configuration's disk: 18 GB 10K RPM
// UltraSCSI (Table 2, mid-size column).
func SCSI10K() Params {
	return Params{
		Name:       "scsi-18g-10k",
		RPM:        10000,
		AvgSeek:    4900 * time.Microsecond,
		TrackSeek:  600 * time.Microsecond,
		MediaMBps:  40,
		Overhead:   200 * time.Microsecond,
		CapacityGB: 18,
		WriteExtra: 500 * time.Microsecond,
	}
}

// FC15K returns the large configuration's disk: 18 GB 15K RPM Fibre
// Channel behind a Mylex eXtremeRAID 3000 (Table 2, large column).
func FC15K() Params {
	return Params{
		Name:       "fc-18g-15k",
		RPM:        15000,
		AvgSeek:    3800 * time.Microsecond,
		TrackSeek:  500 * time.Microsecond,
		MediaMBps:  55,
		Overhead:   150 * time.Microsecond,
		CapacityGB: 18,
		WriteExtra: 400 * time.Microsecond,
	}
}
