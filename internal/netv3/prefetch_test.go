package netv3

import (
	"bytes"
	"testing"

	"github.com/v3storage/v3/internal/bufpool"
)

// Stride-detector unit tests: the prefetcher is pure per-session state,
// so these drive observe directly and check the emitted windows.

func TestPrefetcherSequentialStream(t *testing.T) {
	var p prefetcher
	const rl = 2 * cacheBlockSize // 16 KB reads

	if _, cancel, ok := p.observe(1, 0, rl, false); ok || cancel != nil {
		t.Fatal("first read must not arm read-ahead")
	}
	if _, _, ok := p.observe(1, rl, rl, false); ok {
		t.Fatal("one adjacency is below the arming streak")
	}
	blks, _, ok := p.observe(1, 2*rl, rl, false)
	if !ok {
		t.Fatal("third sequential read must open a window")
	}
	// The stream has consumed blocks 0-5; the window starts at the
	// frontier (block 6) and spans the slow-start degree.
	if len(blks) != minPrefetchBlocks {
		t.Fatalf("window size %d, want %d", len(blks), minPrefetchBlocks)
	}
	for i, b := range blks {
		if b != uint64(6+i) {
			t.Fatalf("blks[%d]=%d, want %d", i, b, 6+i)
		}
	}
	// Continuing the scan doubles the degree once the previous window is
	// half consumed.
	blks2, _, ok := p.observe(1, 3*rl, rl, false)
	if !ok {
		t.Fatal("continuing read must extend the horizon")
	}
	if len(blks2) != 2*minPrefetchBlocks {
		t.Fatalf("second window size %d, want doubled %d", len(blks2), 2*minPrefetchBlocks)
	}
	if blks2[0] != blks[len(blks)-1]+1 {
		t.Fatalf("second window starts at %d, want contiguous after %d", blks2[0], blks[len(blks)-1])
	}
}

func TestPrefetcherBreakCancelsEmitted(t *testing.T) {
	var p prefetcher
	const rl = 2 * cacheBlockSize
	p.observe(1, 0, rl, false)
	p.observe(1, rl, rl, false)
	w1, _, _ := p.observe(1, 2*rl, rl, false)
	w2, _, _ := p.observe(1, 3*rl, rl, false)

	// A far-away read kills the stream: every block the dead stream
	// emitted comes back for discard, exactly once.
	_, cancel, ok := p.observe(1, 500*cacheBlockSize, rl, false)
	if ok {
		t.Fatal("stream-breaking read must not open a window")
	}
	if want := len(w1) + len(w2); len(cancel) != want {
		t.Fatalf("cancel returned %d blocks, want %d", len(cancel), want)
	}
	if _, cancel2, _ := p.observe(1, 900*cacheBlockSize, rl, false); len(cancel2) != 0 {
		t.Fatalf("second break returned %d canceled blocks, want 0", len(cancel2))
	}
}

func TestPrefetcherStridedStream(t *testing.T) {
	var p prefetcher
	const stride = 3 * cacheBlockSize
	const rl = cacheBlockSize

	p.observe(1, 0, rl, true)
	p.observe(1, stride, rl, true) // establishes the stride
	if _, _, ok := p.observe(1, 2*stride, rl, true); ok {
		t.Fatal("strided streak of 1 must not arm")
	}
	blks, _, ok := p.observe(1, 3*stride, rl, true)
	if !ok {
		t.Fatal("third equal stride must open a strided window")
	}
	// Predicted reads extrapolate from the newest read (block 9) at
	// 3-block steps: 12, 15, 18, ... one block per predicted read.
	if len(blks) != minPrefetchBlocks {
		t.Fatalf("strided window size %d, want %d", len(blks), minPrefetchBlocks)
	}
	for i, b := range blks {
		if want := uint64(12 + 3*i); b != want {
			t.Fatalf("blks[%d]=%d, want %d", i, b, want)
		}
	}
}

func TestPrefetcherStrideGate(t *testing.T) {
	var p prefetcher
	const stride = 3 * cacheBlockSize
	// Identical access pattern, strideOK=false (shallow or absent disk
	// queue): scatter read-ahead must never arm.
	for i := int64(0); i < 12; i++ {
		if _, _, ok := p.observe(1, i*stride, cacheBlockSize, false); ok {
			t.Fatalf("strided window armed at read %d with strideOK=false", i)
		}
	}
}

// Residency accounting: installs charge prefResident, consumption and
// discard release it, and discard never touches dirty or demand state.

func TestPrefetchDiscardAccounting(t *testing.T) {
	pool := bufpool.New()
	store := NewMemStore(256 * cacheBlockSize)
	for blk := int64(0); blk < 8; blk++ {
		buf := bytes.Repeat([]byte{byte('A' + blk)}, cacheBlockSize)
		if err := store.WriteAt(buf, blk*cacheBlockSize); err != nil {
			t.Fatal(err)
		}
	}
	c := newBlockCache(64, 4, pool)
	v := &volume{store: store, cache: c}

	if err := c.prefetchFill(v, 0, 8); err != nil {
		t.Fatal(err)
	}
	if got := c.prefResident.Load(); got != 8 {
		t.Fatalf("prefResident after fill = %d, want 8", got)
	}

	// A demand hit consumes a prefetched block: the budget is released
	// and the hit counts as a prefetch hit, not a discardable block.
	dst := make([]byte, cacheBlockSize)
	if err := c.readBlock(v, 3, 0, cacheBlockSize, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 'D' {
		t.Fatalf("read block 3 = %q, want 'D'", dst[0])
	}
	if got := c.prefResident.Load(); got != 7 {
		t.Fatalf("prefResident after demand hit = %d, want 7", got)
	}
	if got := c.prefHits.Load(); got != 1 {
		t.Fatalf("prefHits = %d, want 1", got)
	}

	// A write claims another block: absorb clears its pref mark, so the
	// later discard must leave the dirty bytes alone.
	if err := c.absorb(v, 5, 0, cacheBlockSize, bytes.Repeat([]byte{'z'}, cacheBlockSize)); err != nil {
		t.Fatal(err)
	}
	if got := c.prefResident.Load(); got != 6 {
		t.Fatalf("prefResident after absorb = %d, want 6", got)
	}

	// The stream dies: discarding the whole window drops only the six
	// still-speculative blocks.
	dropped := c.prefetchDiscard([]uint64{0, 1, 2, 3, 4, 5, 6, 7})
	if dropped != 6 {
		t.Fatalf("prefetchDiscard dropped %d, want 6", dropped)
	}
	if got := c.prefResident.Load(); got != 0 {
		t.Fatalf("prefResident after discard = %d, want 0", got)
	}
	if got := c.prefDiscards.Load(); got != 6 {
		t.Fatalf("prefDiscards = %d, want 6", got)
	}
	// The consumed block was re-fetched? No: a hit-consumed block leaves
	// pref state but stays resident, and the dirty block kept its bytes.
	if !c.readBlockHit(3, 0, cacheBlockSize, dst) || dst[0] != 'D' {
		t.Fatal("demand-consumed block must survive the discard")
	}
	if !c.readBlockHit(5, 0, cacheBlockSize, dst) || dst[0] != 'z' {
		t.Fatal("dirty block must survive the discard with its written bytes")
	}
	// The discarded ones are gone.
	if c.readBlockHit(1, 0, cacheBlockSize, dst) {
		t.Fatal("discarded block still resident")
	}
}

// Pinning integration: dirty blocks are unevictable, a shard full of
// dirty blocks refuses new installs, and both the read and write paths
// degrade to uncached service instead of orphaning.

func TestDirtyShardRefusesInstalls(t *testing.T) {
	pool := bufpool.New()
	store := NewMemStore(256 * cacheBlockSize)
	// One shard, four slots: easy to fill wall-to-wall with dirty blocks.
	c := newBlockCache(4, 1, pool)
	v := &volume{store: store, cache: c}

	pattern := func(b byte) []byte { return bytes.Repeat([]byte{b}, cacheBlockSize) }
	for blk := uint64(0); blk < 4; blk++ {
		if err := c.absorb(v, blk, 0, cacheBlockSize, pattern(byte('a'+blk))); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.dirtyCount.Load(); got != 4 {
		t.Fatalf("dirtyCount = %d, want 4", got)
	}

	// A fifth dirty block has nowhere to go: absorb must refuse rather
	// than orphan an acked block.
	err := c.absorb(v, 10, 0, cacheBlockSize, pattern('x'))
	if err != errCacheBusy {
		t.Fatalf("absorb into full dirty shard: err=%v, want errCacheBusy", err)
	}
	if got := c.orphanCount.Load(); got != 0 {
		t.Fatalf("orphanCount = %d, want 0 — pinning must prevent orphaning", got)
	}

	// A demand read of an uncached block is served from the store
	// without installing (nothing to evict).
	if err := store.WriteAt(pattern('s'), 20*cacheBlockSize); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, cacheBlockSize)
	if err := c.readBlock(v, 20, 0, cacheBlockSize, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 's' {
		t.Fatalf("uncached read = %q, want 's'", dst[0])
	}
	if c.readBlockHit(20, 0, cacheBlockSize, dst) {
		t.Fatal("refused insert must not have installed the block")
	}

	// Prefetch over the full shard is refused, not forced.
	if err := c.prefetchFill(v, 30, 4); err != nil {
		t.Fatal(err)
	}
	if got := c.prefResident.Load(); got != 0 {
		t.Fatalf("prefResident = %d, want 0 — speculation must not displace dirty blocks", got)
	}

	// All four dirty blocks still carry their acked bytes.
	for blk := uint64(0); blk < 4; blk++ {
		if !c.readBlockHit(blk, 0, cacheBlockSize, dst) || dst[0] != byte('a'+blk) {
			t.Fatalf("dirty block %d lost its bytes", blk)
		}
	}

	// Destaging unpins: after stage+unstage the shard accepts new blocks
	// again.
	buf := make([]byte, cacheBlockSize)
	for blk := uint64(0); blk < 4; blk++ {
		if !c.stage(blk, buf) {
			t.Fatalf("stage(%d) refused", blk)
		}
		if err := store.WriteAt(buf, int64(blk)*cacheBlockSize); err != nil {
			t.Fatal(err)
		}
	}
	c.unstage([]uint64{0, 1, 2, 3}, false)
	if err := c.absorb(v, 10, 0, cacheBlockSize, pattern('x')); err != nil {
		t.Fatalf("absorb after destage: %v", err)
	}
	if !c.readBlockHit(10, 0, cacheBlockSize, dst) || dst[0] != 'x' {
		t.Fatal("post-destage absorb must be resident")
	}
}

func TestRedirtiedBlockStaysPinned(t *testing.T) {
	pool := bufpool.New()
	store := NewMemStore(256 * cacheBlockSize)
	c := newBlockCache(4, 1, pool)
	v := &volume{store: store, cache: c}

	w := bytes.Repeat([]byte{'1'}, cacheBlockSize)
	if err := c.absorb(v, 0, 0, cacheBlockSize, w); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, cacheBlockSize)
	if !c.stage(0, buf) {
		t.Fatal("stage refused")
	}
	// Re-dirtied while its destage write is in flight: the unstage that
	// follows must keep it pinned for the next pass.
	if err := c.absorb(v, 0, 0, cacheBlockSize, bytes.Repeat([]byte{'2'}, cacheBlockSize)); err != nil {
		t.Fatal(err)
	}
	c.unstage([]uint64{0}, false)
	if got := c.dirtyCount.Load(); got != 1 {
		t.Fatalf("dirtyCount = %d, want 1 (re-dirtied mid-flight)", got)
	}
	// Fill the shard, then overflow it: block 0 must never be the victim.
	for blk := uint64(1); blk < 4; blk++ {
		if err := c.readBlock(v, blk, 0, cacheBlockSize, buf); err != nil {
			t.Fatal(err)
		}
	}
	for blk := uint64(8); blk < 16; blk++ {
		if err := c.readBlock(v, blk, 0, cacheBlockSize, buf); err != nil {
			t.Fatal(err)
		}
	}
	if !c.readBlockHit(0, 0, cacheBlockSize, buf) || buf[0] != '2' {
		t.Fatal("re-dirtied block was evicted or lost its second write")
	}
	if got := c.orphanCount.Load(); got != 0 {
		t.Fatalf("orphanCount = %d, want 0", got)
	}
}
