package netv3

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/faultnet"
)

// startFaultServerStore is startFaultServer with a caller-supplied store,
// for chaos runs that need injected device latency as well as injected
// network faults.
func startFaultServerStore(t *testing.T, cfg ServerConfig, store BlockStore) (*Injected, string) {
	t.Helper()
	inj := faultnet.New(1)
	srv := NewServer(cfg)
	srv.AddVolume(1, store)
	ln, err := inj.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.ListenOn(ln)
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return &Injected{Inj: inj, Srv: srv}, ln.Addr().String()
}

// TestChaosOverloadStormShedsBounded hammers a deliberately undersized
// scheduler (one worker, tiny admission limit, slow store) with far more
// offered load than it can absorb. The contract under the storm: shed
// completions come back fast (admission refusal is a queue check, not a
// disk wait), every request resolves one way or the other, the foreground
// backlog never exceeds the admission limit, and the server serves
// normally once the storm passes.
func TestChaosOverloadStormShedsBounded(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.SchedWorkers = 1
	cfg.AdmitLimit = 4
	f, addr := startFaultServerStore(t, cfg,
		&slowStore{BlockStore: NewMemStore(4 << 20), delay: time.Millisecond})
	ccfg := DefaultClientConfig()
	ccfg.KeepaliveInterval = 0
	c, err := Dial(addr, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const (
		submitters = 8
		perG       = 50
	)
	var okN, shedN atomic.Int64
	var slowShed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 4096)
			for i := 0; i < perG; i++ {
				t0 := time.Now()
				err := c.Read(1, int64((g*perG+i)%512)*4096, buf)
				switch {
				case err == nil:
					okN.Add(1)
				case errors.Is(err, ErrOverloaded):
					shedN.Add(1)
					// A shed must not have waited out the disk backlog:
					// with AdmitLimit 4 and a ~1ms device, anything beyond
					// a generous scheduling-noise budget means the refusal
					// queued behind real work.
					if time.Since(t0) > 2*time.Second {
						slowShed.Add(1)
					}
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if okN.Load() == 0 {
		t.Fatal("storm: nothing succeeded")
	}
	if shedN.Load() == 0 {
		t.Fatal("storm: nothing was shed — offered load should exceed one 1ms-per-op worker")
	}
	if n := slowShed.Load(); n > 0 {
		t.Fatalf("%d shed completions were slow — refusals queued instead of failing fast", n)
	}
	st := f.Srv.SchedStats()
	if st.Shed < shedN.Load() {
		t.Fatalf("server shed counter %d < client-observed %d", st.Shed, shedN.Load())
	}
	if st.FGQueued > cfg.AdmitLimit {
		t.Fatalf("foreground backlog %d exceeds admission limit %d", st.FGQueued, cfg.AdmitLimit)
	}
	// Calm after the storm: a plain request succeeds.
	if err := c.Read(1, 0, make([]byte, 512)); err != nil && !errors.Is(err, ErrOverloaded) {
		t.Fatalf("post-storm read: %v", err)
	}
}

// TestChaosForegroundLatencyUnderBackgroundSaturation runs destage churn
// and a background-class write flood beside a foreground reader and
// checks the QoS contract qualitatively: every foreground read completes,
// and its p99 stays within a loose CI-safe bound while the background
// lane is saturated — the lane split plus the weighted round-robin is
// what keeps one bulk stream from parking a point reader behind it.
func TestChaosForegroundLatencyUnderBackgroundSaturation(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.SchedWorkers = 2
	cfg.CacheBlocks = 64 // small: fg reads miss, bg writes cross the high-watermark
	cfg.DirtyHighWater = 16
	cfg.DestageInterval = time.Millisecond
	_, addr := startFaultServerStore(t, cfg,
		&slowStore{BlockStore: NewMemStore(16 << 20), delay: 200 * time.Microsecond})
	ccfg := DefaultClientConfig()
	ccfg.KeepaliveInterval = 0
	c, err := Dial(addr, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fg, err := c.OpenStream(StreamConfig{Credits: 4})
	if err != nil {
		t.Fatal(err)
	}
	bg, err := c.OpenStream(StreamConfig{Credits: 32, Background: true})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var bgOps atomic.Int64
	var bgWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		bgWG.Add(1)
		go func(i int) {
			defer bgWG.Done()
			payload := make([]byte, 64<<10)
			for off := int64(i) * (1 << 20); ; off += int64(len(payload)) {
				select {
				case <-stop:
					return
				default:
				}
				if off >= 12<<20 {
					off = int64(i) * (1 << 20)
				}
				if err := bg.Write(1, off, payload); err != nil && !errors.Is(err, ErrOverloaded) {
					return
				}
				bgOps.Add(1)
			}
		}(i)
	}

	// Let the background flood establish itself before measuring.
	time.Sleep(50 * time.Millisecond)
	const reads = 300
	lats := make([]time.Duration, 0, reads)
	buf := make([]byte, 8192)
	for i := 0; i < reads; i++ {
		t0 := time.Now()
		if err := fg.Read(1, int64(12<<20)+int64(i%256)*8192, buf); err != nil {
			if errors.Is(err, ErrOverloaded) {
				continue // admission can clip the fg too; QoS is about waits, not admission
			}
			t.Fatalf("fg read %d: %v", i, err)
		}
		lats = append(lats, time.Since(t0))
	}
	close(stop)
	bgWG.Wait()
	if bgOps.Load() == 0 {
		t.Fatal("background flood made no progress")
	}
	if len(lats) < reads/2 {
		t.Fatalf("only %d/%d foreground reads completed", len(lats), reads)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[len(lats)*99/100]
	// Loose CI bound: a ~200µs device read behind a 2-worker scheduler
	// must not see multi-hundred-ms foreground tails even with the
	// background lane saturated.
	if p99 > 500*time.Millisecond {
		t.Fatalf("foreground p99 %v under background saturation — lane priority not holding", p99)
	}
	t.Logf("fg p99 %v over %d reads while bg pushed %d writes", p99, len(lats), bgOps.Load())
	_ = fg.Close()
	_ = bg.Close()
}

// TestChaosBlackholeFailsAllStreams cuts the wire (silently — a blackhole,
// not a close) under a multi-stream client whose reconnect budget cannot
// succeed, and checks the fan-out contract: every pending on every stream
// resolves with ErrConnLost — exactly once each, no waiter hangs — and
// later submissions fail instead of wedging.
func TestChaosBlackholeFailsAllStreams(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.SchedWorkers = 2
	f, addr := startFaultServerStore(t, cfg, NewMemStore(4<<20))
	ccfg := DefaultClientConfig()
	ccfg.KeepaliveInterval = 200 * time.Millisecond
	ccfg.DialTimeout = 150 * time.Millisecond
	ccfg.ReconnectBackoff = 20 * time.Millisecond
	ccfg.MaxReconnects = 2
	c, err := Dial(addr, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const nStreams = 3
	streams := make([]*Stream, nStreams)
	for i := range streams {
		if streams[i], err = c.OpenStream(StreamConfig{Credits: 4}); err != nil {
			t.Fatal(err)
		}
	}
	f.Inj.Blackhole(true)
	var handles []*Pending
	for _, st := range streams {
		for k := 0; k < 3; k++ {
			h, err := st.WriteAsync(1, int64(k)*8192, make([]byte, 4096))
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
	}
	var lost int
	for i, h := range handles {
		err := h.WaitTimeout(15 * time.Second)
		if !errors.Is(err, ErrConnLost) {
			t.Fatalf("stream pending %d: err=%v, want ErrConnLost", i, err)
		}
		lost++
	}
	if lost != len(handles) {
		t.Fatalf("resolved %d/%d pendings", lost, len(handles))
	}
	// The client has exhausted reconnects; new submissions on any stream
	// must fail fast, not hang.
	for i, st := range streams {
		done := make(chan error, 1)
		go func() { done <- st.Write(1, 0, make([]byte, 512)) }()
		select {
		case err := <-done:
			if err == nil {
				t.Fatalf("stream %d: write succeeded into a blackhole", i)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("stream %d: post-loss write hung", i)
		}
	}
}
