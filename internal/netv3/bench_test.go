package netv3

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/benchjson"
	"github.com/v3storage/v3/internal/obs"
	"github.com/v3storage/v3/internal/wire"
)

// Benchmark results are collected here and, when the BENCH_JSON
// environment variable names a file, written out by TestMain so the
// repo's perf trajectory is machine-readable across PRs (`make bench`).
// The writer merges by name — same-name rows are replaced keeping the
// newest, others survive — so full sweeps and targeted runs (`make
// bench-disk`, `make bench-mux`) compose in any order.
type benchRecord = benchjson.Record

var (
	benchMu      sync.Mutex
	benchRecords []benchRecord
)

func record(r benchRecord) {
	benchMu.Lock()
	benchRecords = append(benchRecords, r)
	benchMu.Unlock()
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_JSON"); path != "" {
		_ = benchjson.Write(path, benchRecords)
	}
	os.Exit(code)
}

// ablationConfig names one point in the optimization space.
type ablationConfig struct {
	name    string
	noPool  bool
	noBatch bool
	shards  int // 0 = default, 1 = unsharded
}

var ablations = []ablationConfig{
	{name: "all-on"},
	{name: "no-pool", noPool: true},
	{name: "no-batch", noBatch: true},
	{name: "no-shard", shards: 1},
	{name: "all-off", noPool: true, noBatch: true, shards: 1},
}

// benchPair starts a server+client for one benchmark run.
func benchPair(b *testing.B, ac ablationConfig, cacheBlocks int) (*Server, *Client) {
	b.Helper()
	cfg := DefaultServerConfig()
	cfg.CacheBlocks = cacheBlocks
	cfg.CacheShards = ac.shards
	cfg.NoPool = ac.noPool
	cfg.NoBatch = ac.noBatch
	srv := NewServer(cfg)
	srv.AddVolume(1, NewMemStore(64<<20))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	b.Cleanup(func() { srv.Close() })
	ccfg := DefaultClientConfig()
	ccfg.NoBatch = ac.noBatch
	c, err := Dial(addr.String(), ccfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return srv, c
}

// pipelineReads keeps `outstanding` reads in flight for b.N total ops and
// returns wall-clock elapsed plus allocation deltas per op.
func pipelineReads(b *testing.B, c *Client, size, outstanding int) (elapsed time.Duration, bytesPerOp, allocsPerOp float64) {
	b.Helper()
	const region = 32 << 20
	bufs := make([][]byte, outstanding)
	for i := range bufs {
		bufs[i] = make([]byte, size)
	}
	handles := make([]*Pending, outstanding)
	var ms1, ms2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms1)
	b.ResetTimer()
	t0 := time.Now()
	for n := 0; n < b.N; n++ {
		s := n % outstanding
		if handles[s] != nil {
			if err := handles[s].Wait(); err != nil {
				b.Fatal(err)
			}
		}
		off := int64(n*size) % (region - int64(size))
		h, err := c.ReadAsync(1, off, bufs[s])
		if err != nil {
			b.Fatal(err)
		}
		handles[s] = h
	}
	for _, h := range handles {
		if h != nil {
			if err := h.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	elapsed = time.Since(t0)
	b.StopTimer()
	runtime.ReadMemStats(&ms2)
	bytesPerOp = float64(ms2.TotalAlloc-ms1.TotalAlloc) / float64(b.N)
	allocsPerOp = float64(ms2.Mallocs-ms1.Mallocs) / float64(b.N)
	return elapsed, bytesPerOp, allocsPerOp
}

// BenchmarkNetv3Throughput sweeps request size × outstanding I/Os on the
// fully optimized path, the TCP counterpart of the paper's cached
// throughput microbenchmark (Figure 6).
func BenchmarkNetv3Throughput(b *testing.B) {
	for _, size := range []int{4096, 8192, 65536} {
		for _, outstanding := range []int{1, 16} {
			name := fmt.Sprintf("size=%d/outstanding=%d", size, outstanding)
			b.Run(name, func(b *testing.B) {
				_, c := benchPair(b, ablations[0], 4096)
				elapsed, bpo, apo := pipelineReads(b, c, size, outstanding)
				ops := float64(b.N) / elapsed.Seconds()
				mbs := ops * float64(size) / 1e6
				b.ReportMetric(ops, "ops/s")
				b.ReportMetric(mbs, "MB/s")
				b.ReportMetric(bpo, "alloc-B/op")
				record(benchRecord{
					Name: "Netv3Throughput/" + name, OpsPerSec: ops, MBPerSec: mbs,
					BytesPerOp: bpo, AllocsPerOp: apo,
				})
			})
		}
	}
}

// BenchmarkNetv3Latency measures single-outstanding (synchronous)
// round-trip time, the Figure 3 analogue.
func BenchmarkNetv3Latency(b *testing.B) {
	for _, size := range []int{512, 8192} {
		name := fmt.Sprintf("size=%d", size)
		b.Run(name, func(b *testing.B) {
			_, c := benchPair(b, ablations[0], 4096)
			buf := make([]byte, size)
			b.ResetTimer()
			t0 := time.Now()
			for n := 0; n < b.N; n++ {
				if err := c.Read(1, int64(n*size)%(16<<20), buf); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(t0)
			mean := elapsed.Seconds() / float64(b.N) * 1e6
			b.ReportMetric(mean, "µs/op")
			record(benchRecord{Name: "Netv3Latency/" + name, MeanMicros: mean})
		})
	}
}

// BenchmarkNetv3Ablation toggles each optimization individually at
// 8 KB × 16 outstanding — the per-optimization accounting the paper does
// in Figures 9/12. "all-off" is the seed-equivalent baseline: fresh
// allocations per request, one flush and one read syscall per frame, and
// a single cache lock.
//
// The disk-* variants measure the pipelined disk path against a
// file-backed store with an artificial per-I/O latency, so the toggles
// (workers, write-behind, prefetch) move actual disk time, not just CPU:
// disk-sync is the fully synchronous inline baseline, disk-workers adds
// the worker pool, disk-writebehind adds destaging, disk-all is both.
// The disk-seq pair isolates sequential read-ahead.
func BenchmarkNetv3Ablation(b *testing.B) {
	for _, ac := range ablations {
		b.Run(ac.name, func(b *testing.B) {
			_, c := benchPair(b, ac, 4096)
			elapsed, bpo, apo := pipelineReads(b, c, 8192, 16)
			ops := float64(b.N) / elapsed.Seconds()
			b.ReportMetric(ops, "ops/s")
			b.ReportMetric(bpo, "alloc-B/op")
			b.ReportMetric(apo, "allocs/op")
			record(benchRecord{
				Name: "Netv3Ablation/" + ac.name + "/8192x16", OpsPerSec: ops,
				MBPerSec: ops * 8192 / 1e6, BytesPerOp: bpo, AllocsPerOp: apo,
			})
		})
	}
	for _, dc := range diskAblations {
		b.Run(dc.name, func(b *testing.B) {
			c := benchDiskPair(b, dc)
			elapsed := pipelineMixed(b, c, 8192, 16)
			ops := float64(b.N) / elapsed.Seconds()
			b.ReportMetric(ops, "ops/s")
			record(benchRecord{
				Name: "Netv3Ablation/" + dc.name + "/8192x16mixed", OpsPerSec: ops,
				MBPerSec: ops * 8192 / 1e6,
			})
		})
	}
	for _, dc := range []diskAblationConfig{
		{name: "disk-seq-noprefetch", workers: 8, noWB: true, noPF: true},
		{name: "disk-seq-prefetch", workers: 8, noWB: true},
	} {
		b.Run(dc.name, func(b *testing.B) {
			c := benchDiskPair(b, dc)
			buf := make([]byte, 8192)
			b.ResetTimer()
			t0 := time.Now()
			for n := 0; n < b.N; n++ {
				off := int64(n%(diskBenchRegion/8192)) * 8192
				if err := c.Read(1, off, buf); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(t0)
			ops := float64(b.N) / elapsed.Seconds()
			b.ReportMetric(ops, "ops/s")
			record(benchRecord{
				Name: "Netv3Ablation/" + dc.name + "/8192seq", OpsPerSec: ops,
				MBPerSec: ops * 8192 / 1e6,
			})
		})
	}
}

// BenchmarkNetv3Obs is the observability ablation: the standard
// 8 KB × 16 pipelined read workload with the full metrics stack enabled
// (client stage trace + server histograms and gauges) against the
// nil-registry fast path. The acceptance bar for the obs layer is that
// "on" stays within 3% ops/s of "off".
func BenchmarkNetv3Obs(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultServerConfig()
			cfg.CacheBlocks = 4096
			ccfg := DefaultClientConfig()
			if on {
				cfg.Metrics = obs.New()
				ccfg.Metrics = obs.New()
			}
			srv := NewServer(cfg)
			srv.AddVolume(1, NewMemStore(64<<20))
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve()
			b.Cleanup(func() { srv.Close() })
			c, err := Dial(addr.String(), ccfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })
			elapsed, bpo, _ := pipelineReads(b, c, 8192, 16)
			ops := float64(b.N) / elapsed.Seconds()
			b.ReportMetric(ops, "ops/s")
			b.ReportMetric(bpo, "alloc-B/op")
			record(benchRecord{
				Name: "Netv3Obs/" + name + "/8192x16", OpsPerSec: ops,
				MBPerSec: ops * 8192 / 1e6, BytesPerOp: bpo,
			})
		})
	}
}

// BenchmarkNetv3TraceObs is the cross-tier tracing ablation: the
// standard 8 KB × 16 pipelined read workload with the full metrics stack
// on BOTH arms, toggling only what this PR added — the 1-in-4 trace
// sampling with server span fill plus an always-on flight recorder ring
// on the server — against NoTrace on both sides with no ring. The
// acceptance bar is that "on" stays within 3% ops/s of "off": the
// recorder is meant to run in production, not only during incidents.
func BenchmarkNetv3TraceObs(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultServerConfig()
			cfg.CacheBlocks = 4096
			cfg.Metrics = obs.New()
			ccfg := DefaultClientConfig()
			ccfg.Metrics = obs.New()
			if on {
				cfg.Flight = obs.NewFlight(0, 0)
			} else {
				cfg.NoTrace = true
				ccfg.NoTrace = true
			}
			srv := NewServer(cfg)
			srv.AddVolume(1, NewMemStore(64<<20))
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve()
			b.Cleanup(func() { srv.Close() })
			c, err := Dial(addr.String(), ccfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })
			elapsed, bpo, _ := pipelineReads(b, c, 8192, 16)
			ops := float64(b.N) / elapsed.Seconds()
			b.ReportMetric(ops, "ops/s")
			b.ReportMetric(bpo, "alloc-B/op")
			record(benchRecord{
				Name: "Netv3TraceObs/" + name + "/8192x16", OpsPerSec: ops,
				MBPerSec: ops * 8192 / 1e6, BytesPerOp: bpo,
			})
		})
	}
}

// slowStore wraps a BlockStore with a fixed per-I/O latency, standing in
// for a disk so the pipelined-path benchmarks measure overlap of real
// wait time rather than memcpy speed.
type slowStore struct {
	BlockStore
	delay time.Duration
}

func (s *slowStore) ReadAt(b []byte, off int64) error {
	time.Sleep(s.delay)
	return s.BlockStore.ReadAt(b, off)
}

func (s *slowStore) WriteAt(b []byte, off int64) error {
	time.Sleep(s.delay)
	return s.BlockStore.WriteAt(b, off)
}

type diskAblationConfig struct {
	name    string
	workers int
	noWB    bool
	noPF    bool
	diskq   bool
	sqdepth int
}

var diskAblations = []diskAblationConfig{
	{name: "disk-sync", workers: 0, noWB: true, noPF: true},
	{name: "disk-workers", workers: 8, noWB: true, noPF: true},
	{name: "disk-writebehind", workers: 0, noPF: true},
	{name: "disk-all", workers: 8},
}

// diskBenchRegion is the working set of the disk-path benchmarks: 32 MB,
// four times the 1024-block (8 MB) cache, so demand reads keep missing.
const diskBenchRegion = 32 << 20

// diskBenchDelay is the injected per-I/O store latency, in the ballpark
// of a short-stroked disk or networked flash access.
const diskBenchDelay = 150 * time.Microsecond

func benchDiskPair(b *testing.B, dc diskAblationConfig) *Client {
	b.Helper()
	cfg := DefaultServerConfig()
	cfg.CacheBlocks = 1024
	cfg.DiskWorkers = dc.workers
	cfg.NoWriteBehind = dc.noWB
	cfg.NoPrefetch = dc.noPF
	cfg.DiskQ = dc.diskq
	cfg.SQDepth = dc.sqdepth
	cfg.DestageInterval = 2 * time.Millisecond
	fs, err := NewFileStore(filepath.Join(b.TempDir(), "vol.img"), diskBenchRegion)
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(cfg)
	srv.AddVolume(1, &slowStore{BlockStore: fs, delay: diskBenchDelay})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	b.Cleanup(func() { srv.Close(); fs.Close() })
	c, err := Dial(addr.String(), DefaultClientConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// pipelineMixed keeps `outstanding` mixed requests in flight: odd ops
// are strided reads across the front half of the region (cycling through
// twice the cache capacity, so most of them miss), even ops are
// sequential writes into the back half (the coalescing-friendly pattern
// of a database log). A Flush at the end makes every variant pay its
// full destage bill inside the measured window.
func pipelineMixed(b *testing.B, c *Client, size, outstanding int) time.Duration {
	b.Helper()
	const half = diskBenchRegion / 2
	blocks := half / size
	bufs := make([][]byte, outstanding)
	for i := range bufs {
		bufs[i] = make([]byte, size)
	}
	data := make([]byte, size)
	handles := make([]*Pending, outstanding)
	b.ResetTimer()
	t0 := time.Now()
	for n := 0; n < b.N; n++ {
		s := n % outstanding
		if handles[s] != nil {
			if err := handles[s].Wait(); err != nil {
				b.Fatal(err)
			}
		}
		var h *Pending
		var err error
		if n%2 == 0 {
			off := int64(half) + int64(n/2%blocks)*int64(size)
			h, err = c.WriteAsync(1, off, data)
		} else {
			off := int64((n * 13) % blocks * size)
			h, err = c.ReadAsync(1, off, bufs[s])
		}
		if err != nil {
			b.Fatal(err)
		}
		handles[s] = h
	}
	for _, h := range handles {
		if h != nil {
			if err := h.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := c.Flush(1); err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(t0)
	b.StopTimer()
	return elapsed
}

// BenchmarkNetv3DiskQ is the batched-disk-backend ablation: the mixed
// pipelined workload over the slow store, with the classic worker pipe
// (diskq-off, the PR-5 disk-all configuration) against the SQ/CQ disk
// queue at several submission depths, at two client pipeline depths.
// The sweep is the disk-path analogue of the paper's
// outstanding-descriptor scaling: the worker pool saturates at its
// thread count no matter how deep the client pipelines (and its
// destager pays one synchronous store write per run), while the queue
// rides the submission depth — demand reads fan out to SQ width,
// destage runs and orphan drains go down as one concurrent vectored
// batch per pass, and the prefetcher's strided read-ahead windows ride
// the same ring. Depths past the client's pipeline keep paying off:
// speculative and write-back I/O overlaps demand misses instead of
// queuing behind them.
func BenchmarkNetv3DiskQ(b *testing.B) {
	for _, outstanding := range []int{16, 64} {
		for _, dc := range []diskAblationConfig{
			{name: "diskq-off", workers: 8},
			{name: "diskq-d8", diskq: true, sqdepth: 8},
			{name: "diskq-d32", diskq: true, sqdepth: 32},
			{name: "diskq-d64", diskq: true, sqdepth: 64},
			{name: "diskq-d128", diskq: true, sqdepth: 128},
			{name: "diskq-d256", diskq: true, sqdepth: 256},
		} {
			name := fmt.Sprintf("%s/8192x%dmixed", dc.name, outstanding)
			b.Run(name, func(b *testing.B) {
				c := benchDiskPair(b, dc)
				elapsed := pipelineMixed(b, c, 8192, outstanding)
				ops := float64(b.N) / elapsed.Seconds()
				b.ReportMetric(ops, "ops/s")
				record(benchRecord{
					Name: "Netv3DiskQ/" + name, OpsPerSec: ops,
					MBPerSec: ops * 8192 / 1e6,
				})
			})
		}
	}
}

// BenchmarkNetv3ServerReadPath isolates the server-side read path —
// frame decode, dispatch, cache lookup, response framing — without the
// client or the socket, for a precise allocation account. "all-on" runs
// the batched inline path (reused decode struct, pooled body, reused
// response, scratch frame); "all-off" runs the seed's path (fresh
// Unmarshal, make([]byte) body, fresh response, Marshal frame).
func BenchmarkNetv3ServerReadPath(b *testing.B) {
	for _, ac := range []ablationConfig{ablations[0], ablations[len(ablations)-1]} {
		b.Run(ac.name, func(b *testing.B) {
			cfg := DefaultServerConfig()
			cfg.CacheBlocks = 4096
			cfg.CacheShards = ac.shards
			cfg.NoPool = ac.noPool
			cfg.NoBatch = ac.noBatch
			s := NewServer(cfg)
			s.AddVolume(1, NewMemStore(64<<20))
			w := newRespWriter(io.Discard, ac.noBatch, ac.noPool)
			req := &wire.Read{Header: wire.Header{Seq: 1}, ReqID: 1, Volume: 1, Length: 8192}
			frame := wire.Marshal(req)
			inline := !ac.noBatch
			var m wire.Read
			var ms1, ms2 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms1)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				off := uint64(n%4096) * 8192
				if inline {
					if err := wire.UnmarshalInto(frame, &m); err != nil {
						b.Fatal(err)
					}
					m.Offset = off
					s.handleRead(&m, w, respInline, 0)
				} else {
					mi, err := wire.Unmarshal(frame)
					if err != nil {
						b.Fatal(err)
					}
					r := mi.(*wire.Read)
					r.Offset = off
					s.handleRead(r, w, respGo, 0)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms2)
			bpo := float64(ms2.TotalAlloc-ms1.TotalAlloc) / float64(b.N)
			apo := float64(ms2.Mallocs-ms1.Mallocs) / float64(b.N)
			b.ReportMetric(bpo, "alloc-B/op")
			b.ReportMetric(apo, "allocs/op")
			record(benchRecord{
				Name: "Netv3ServerReadPath/" + ac.name, BytesPerOp: bpo, AllocsPerOp: apo,
			})
		})
	}
}

// BenchmarkNetv3WriteThroughput covers the submission direction (client
// batching + server staging-buffer pooling).
func BenchmarkNetv3WriteThroughput(b *testing.B) {
	const size, outstanding = 8192, 16
	_, c := benchPair(b, ablations[0], 0)
	data := make([]byte, size)
	handles := make([]*Pending, outstanding)
	b.ResetTimer()
	t0 := time.Now()
	for n := 0; n < b.N; n++ {
		s := n % outstanding
		if handles[s] != nil {
			if err := handles[s].Wait(); err != nil {
				b.Fatal(err)
			}
		}
		h, err := c.WriteAsync(1, int64(n*size)%(32<<20), data)
		if err != nil {
			b.Fatal(err)
		}
		handles[s] = h
	}
	for _, h := range handles {
		if h != nil {
			if err := h.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	elapsed := time.Since(t0)
	ops := float64(b.N) / elapsed.Seconds()
	b.ReportMetric(ops, "ops/s")
	b.ReportMetric(ops*size/1e6, "MB/s")
	record(benchRecord{Name: "Netv3WriteThroughput/8192x16", OpsPerSec: ops, MBPerSec: ops * size / 1e6})
}
