package netv3

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/wire"
)

// TestStressMixedIOWithReconnects hammers one client from 16 goroutines
// with mixed-size reads and writes while another goroutine repeatedly
// severs the TCP connection. Every I/O must eventually succeed (the
// reconnection layer replays unacknowledged requests) and every read
// must observe that worker's own writes. Run under -race this also
// checks the mu/sendMu split for data races.
func TestStressMixedIOWithReconnects(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.CacheBlocks = 256
	_, addr := startServer(t, cfg, 32<<20)
	ccfg := DefaultClientConfig()
	ccfg.ReconnectBackoff = 5 * time.Millisecond
	ccfg.MaxReconnects = 1000
	c, err := Dial(addr, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 16
	const iters = 100
	sizes := []int{512, 4096, 8192, 65536}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	stopKill := make(chan struct{})
	var killWG sync.WaitGroup
	killWG.Add(1)
	go func() {
		defer killWG.Done()
		for i := 0; i < 8; i++ {
			select {
			case <-stopKill:
				return
			case <-time.After(5 * time.Millisecond):
				c.KillConnForTest()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * (1 << 20) // disjoint 1 MB region per worker
			for i := 0; i < iters; i++ {
				size := sizes[(w+i)%len(sizes)]
				off := base + int64(i%4)*int64(65536)
				data := bytes.Repeat([]byte{byte(w*31 + i + 1)}, size)
				if err := c.Write(1, off, data); err != nil {
					errs <- fmt.Errorf("worker %d iter %d write: %w", w, i, err)
					return
				}
				got := make([]byte, size)
				if err := c.Read(1, off, got); err != nil {
					errs <- fmt.Errorf("worker %d iter %d read: %w", w, i, err)
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("worker %d iter %d corrupted", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopKill)
	killWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.Reconnects() == 0 {
		t.Fatal("kill goroutine never forced a reconnection")
	}
}

// TestUnknownSeqPayloadDrained is the regression test for the stream
// desync bug: a ReadResp for an unknown/stale seq with StatusOK used to
// leave its payload bytes on the connection, corrupting every subsequent
// frame. The fake server answers each Read with a bogus unknown-seq
// response (plus payload) before the real one; the client must drain the
// junk and keep completing real requests.
func TestUnknownSeqPayloadDrained(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := wire.ReadFrom(conn); err != nil { // Connect
			return
		}
		_ = wire.WriteTo(conn, &wire.ConnectResp{
			Status: wire.StatusOK, Credits: 4, MaxXfer: 1 << 20, SessionID: 1,
		})
		for {
			msg, err := wire.ReadFrom(conn)
			if err != nil {
				return
			}
			m, ok := msg.(*wire.Read)
			if !ok {
				return // Disconnect or anything else ends the session
			}
			junk := bytes.Repeat([]byte{0xEE}, 768)
			bogus := &wire.ReadResp{
				ReqID: 9999, Status: wire.StatusOK, Credits: 1, Length: uint32(len(junk)),
			}
			bogus.Ack = 0xFFFFFF0 // never a live seq in this test
			if err := wire.WriteTo(conn, bogus); err != nil {
				return
			}
			if _, err := conn.Write(junk); err != nil {
				return
			}
			body := bytes.Repeat([]byte{byte(m.ReqID)}, int(m.Length))
			real := &wire.ReadResp{
				ReqID: m.ReqID, Status: wire.StatusOK, Credits: 1, Length: m.Length,
			}
			real.Ack = uint32(m.Seq)
			if err := wire.WriteTo(conn, real); err != nil {
				return
			}
			if _, err := conn.Write(body); err != nil {
				return
			}
		}
	}()

	c, err := Dial(ln.Addr().String(), DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Several sequential reads: with the bug, the first junk payload
	// desyncs the stream and the second read never completes correctly.
	for i := 1; i <= 3; i++ {
		buf := make([]byte, 1024)
		if err := c.Read(1, 0, buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := byte(i) // ReqID counts up from 1 on this fresh client
		for j, b := range buf {
			if b != want {
				t.Fatalf("read %d byte %d = %#x, want %#x (stream desynced)", i, j, b, want)
			}
		}
	}
}

// TestAsyncAPI exercises ReadAsync/WriteAsync handles: overlapped
// submission within the credit window, Done polling, and multi-Wait.
func TestAsyncAPI(t *testing.T) {
	_, addr := startServer(t, DefaultServerConfig(), 8<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 16
	writes := make([]*Pending, n)
	for i := 0; i < n; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, 8192)
		h, err := c.WriteAsync(1, int64(i)*8192, data)
		if err != nil {
			t.Fatal(err)
		}
		writes[i] = h
	}
	for i, h := range writes {
		if err := h.Wait(); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if !h.Done() {
			t.Fatal("Done false after Wait")
		}
		if err := h.Wait(); err != nil { // Wait must be repeatable
			t.Fatalf("re-Wait write %d: %v", i, err)
		}
	}
	reads := make([]*Pending, n)
	bufs := make([][]byte, n)
	for i := 0; i < n; i++ {
		bufs[i] = make([]byte, 8192)
		h, err := c.ReadAsync(1, int64(i)*8192, bufs[i])
		if err != nil {
			t.Fatal(err)
		}
		reads[i] = h
	}
	for i, h := range reads {
		if err := h.Wait(); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if bufs[i][0] != byte(i+1) || bufs[i][8191] != byte(i+1) {
			t.Fatalf("read %d data wrong", i)
		}
	}
}

// TestAblationConfigs runs a roundtrip under every ablation combination
// so the benchmark configurations are known-correct, not just fast.
func TestAblationConfigs(t *testing.T) {
	cases := []struct {
		name    string
		mut     func(*ServerConfig)
		noBatch bool
	}{
		{"all-on", func(c *ServerConfig) {}, false},
		{"no-pool", func(c *ServerConfig) { c.NoPool = true }, false},
		{"no-batch", func(c *ServerConfig) { c.NoBatch = true }, true},
		{"no-shard", func(c *ServerConfig) { c.CacheShards = 1 }, false},
		{"all-off", func(c *ServerConfig) { c.NoPool = true; c.NoBatch = true; c.CacheShards = 1 }, true},
		{"disk-workers", func(c *ServerConfig) { c.DiskWorkers = 8 }, false},
		{"no-writebehind", func(c *ServerConfig) { c.NoWriteBehind = true }, false},
		{"no-prefetch", func(c *ServerConfig) { c.NoPrefetch = true }, false},
		{"disk-sync", func(c *ServerConfig) {
			c.DiskWorkers = 8
			c.NoWriteBehind = true
			c.NoPrefetch = true
		}, false},
		{"disk-nobatch", func(c *ServerConfig) { c.DiskWorkers = 8; c.NoBatch = true }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultServerConfig()
			cfg.CacheBlocks = 64
			tc.mut(&cfg)
			srv, addr := startServer(t, cfg, 4<<20)
			ccfg := DefaultClientConfig()
			ccfg.NoBatch = tc.noBatch
			c, err := Dial(addr, ccfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			data := bytes.Repeat([]byte{0x5A}, 24576) // spans 3 cache blocks
			if err := c.Write(1, 4096, data); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(data))
			for i := 0; i < 3; i++ { // repeat so the cache path hits
				if err := c.Read(1, 4096, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("%s roundtrip corrupted", tc.name)
				}
			}
			if hits, misses := srv.CacheStats(); hits == 0 && misses == 0 {
				t.Fatalf("%s: cache never touched", tc.name)
			}
		})
	}
}
