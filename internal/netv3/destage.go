package netv3

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"github.com/v3storage/v3/internal/diskq"
	"github.com/v3storage/v3/internal/obs"
)

// maxDestageRun caps one coalesced destage write at 64 blocks (512 KB
// with 8 KB blocks) — large enough to amortize per-I/O cost, small
// enough to bound staging-buffer size and store-write latency.
const maxDestageRun = 64

// destageHistBuckets is the number of log2 batch-size buckets: runs of
// 1, 2, ≤4, ≤8, ≤16, ≤32 and ≤64 blocks.
const destageHistBuckets = 7

// destager is the per-volume write-behind engine, the TCP-path analogue
// of the paper's pipelined disk manager (Section 3.2): writes are
// absorbed into the cache as dirty blocks and acknowledged immediately,
// while this background component coalesces adjacent dirty blocks into
// large contiguous store writes. Durability is explicit — the Flush wire
// op drains the dirty set and fsyncs — exactly the contract a database
// log manager wants from a storage server.
//
// mu is the destage mutex. It is held for a whole destage pass, by the
// write-through fallback, and by Flush, and it serializes every store
// write the write-behind machinery issues. That gives a simple global
// ordering argument: at any instant at most one destage-side store write
// is in flight per volume, and cache state transitions (dirty →
// flushing → clean) always happen under both mu and the shard lock.
type destager struct {
	s     *Server
	v     *volume
	cache *blockCache

	mu      sync.Mutex // the destage mutex; see type comment
	kick    chan struct{}
	stopped chan struct{} // closed when run() has finished its final pass
	bgKey   uint64        // scheduler tenant key for background-lane passes

	interval time.Duration
	hiWater  int

	// Store errors during background destaging are sticky: the blocks
	// stay dirty (or orphaned) and the error surfaces on the next Flush.
	errMu sync.Mutex
	err   error

	runs          atomic.Int64
	blocks        atomic.Int64
	hist          [destageHistBuckets]atomic.Int64
	wtFallbacks   atomic.Int64 // writes bounced to write-through at the high-watermark
	orphanWrites  atomic.Int64
	orphanRetries atomic.Int64
}

func newDestager(s *Server, v *volume) *destager {
	hw := s.cfg.DirtyHighWater
	if hw <= 0 {
		hw = s.cfg.CacheBlocks / 2
		if hw < 1 {
			hw = 1
		}
	}
	iv := s.cfg.DestageInterval
	if iv <= 0 {
		iv = 5 * time.Millisecond
	}
	return &destager{
		s:        s,
		v:        v,
		cache:    v.cache,
		kick:     make(chan struct{}, 1),
		stopped:  make(chan struct{}),
		bgKey:    newBGKey(),
		interval: iv,
		hiWater:  hw,
	}
}

// run is the background destage loop: every interval (or sooner when
// kicked by a write crossing the high-watermark) it commits the current
// dirty set.
func (d *destager) run(done <-chan struct{}) {
	defer close(d.stopped)
	t := time.NewTicker(d.interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			// Final best-effort pass so a clean shutdown leaves little
			// behind; Flush remains the only durability guarantee.
			d.destagePass()
			return
		case <-t.C:
		case <-d.kick:
		}
		d.destagePass()
	}
}

// destagePass runs one pass, routed through the scheduler's background
// lane when the shared scheduler is on — so destaging competes for workers
// under the lane policy (foreground priority, starvation-guarded) instead
// of running unmetered beside them. This goroutine is a dedicated
// producer, never a scheduler worker, so enqueue-and-wait cannot deadlock;
// a refused enqueue (scheduler closing) falls back to running the pass
// right here.
func (d *destager) destagePass() {
	if sc := d.s.sched; sc != nil {
		done := make(chan struct{})
		if ok, _ := sc.tryEnqueue(d.bgKey, 1, true, func() { d.destageAll(); close(done) }); ok {
			<-done
			return
		}
	}
	d.destageAll()
}

// kickNow nudges the background loop without blocking.
func (d *destager) kickNow() {
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

// overWater reports whether uncommitted state (dirty + orphaned blocks)
// has reached the high-watermark, at which point new writes fall back to
// write-through so dirty state cannot grow without bound.
func (d *destager) overWater() bool {
	return d.cache.dirtyCount.Load()+d.cache.orphanCount.Load() >= int64(d.hiWater)
}

func (d *destager) setErr(err error) {
	d.errMu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.errMu.Unlock()
}

// takeErr returns and clears the sticky destage error.
func (d *destager) takeErr() error {
	d.errMu.Lock()
	err := d.err
	d.err = nil
	d.errMu.Unlock()
	return err
}

// destageAll runs one complete pass: orphans first (they hold the oldest
// acked bytes), then the dirty set coalesced into contiguous runs, then
// orphans created by evictions during the pass.
func (d *destager) destageAll() {
	var t0 int64
	if d.s.om != nil || d.s.flight != nil {
		t0 = obs.Now()
	}
	blk0 := d.blocks.Load()
	d.mu.Lock()
	if d.v.dq != nil {
		d.drainOrphansBatchedLocked()
		d.passBatchedLocked()
		d.drainOrphansBatchedLocked()
	} else {
		d.drainOrphansLocked()
		d.passLocked()
		d.drainOrphansLocked()
	}
	d.mu.Unlock()
	if t0 != 0 {
		dur := obs.Now() - t0
		if d.s.om != nil {
			d.s.om.destageRun.Observe(dur)
		}
		// Flight attribution: which writes the pass retired and how long
		// it held the destage mutex — the background work a foreground
		// latency spike in the ring usually sits next to.
		d.s.flight.Record(fkDestage, 0, uint64(d.blocks.Load()-blk0), uint64(dur))
	}
}

// passLocked commits the dirty snapshot as coalesced contiguous writes.
// Caller holds d.mu.
func (d *destager) passLocked() {
	blks := d.cache.dirtySnapshot()
	if len(blks) == 0 {
		return
	}
	vsize := d.v.store.Size()
	buf := d.s.pool.Get(maxDestageRun * cacheBlockSize)
	defer d.s.pool.Put(buf)
	i := 0
	for i < len(blks) {
		start := blks[i]
		n := 0
		for i < len(blks) && n < maxDestageRun && blks[i] == start+uint64(n) {
			ln := blockLen(vsize, blks[i])
			if !d.cache.stage(blks[i], buf[n*cacheBlockSize:int64(n)*cacheBlockSize+ln]) {
				break // no longer resident-dirty; run ends here
			}
			n++
			i++
		}
		if n == 0 {
			i++ // skip the unstageable block
			continue
		}
		staged := blks[i-n : i]
		off := int64(start) * cacheBlockSize
		runBytes := int64(n) * cacheBlockSize
		if off+runBytes > vsize {
			runBytes = vsize - off
		}
		if err := d.v.store.WriteAt(buf[:runBytes], off); err != nil {
			d.s.logf("netv3: destage vol run [%d,+%d): %v", off, runBytes, err)
			d.cache.unstage(staged, true)
			d.setErr(err)
			continue
		}
		d.cache.unstage(staged, false)
		d.runs.Add(1)
		d.blocks.Add(int64(n))
		d.hist[batchBucket(n)].Add(1)
	}
}

// passBatchedLocked is passLocked over the batched disk queue: the pass
// stages every coalesced run exactly as the classic path does, but
// instead of one blocking store write per run it submits ALL runs as a
// single vectored batch and waits for the completions — the queue's
// backends keep up to SQDepth extents in flight at once, so a pass of k
// runs costs ~1 device round instead of k. Waiting happens under d.mu,
// which preserves the destage mutex's ordering contract at pass
// granularity: the runs of one batch cover pairwise-disjoint block
// ranges (a sorted, deduplicated dirty snapshot partitions into
// non-overlapping runs), so their relative completion order cannot
// change file contents, and no other destage-side write can start until
// the whole batch has resolved. Each run stages into its own queue
// buffer (registered with the kernel on the io_uring backend), sized so
// one maximal run fills one registered slab. Caller holds d.mu.
func (d *destager) passBatchedLocked() {
	blks := d.cache.dirtySnapshot()
	if len(blks) == 0 {
		return
	}
	vsize := d.v.store.Size()
	dq := d.v.dq
	type runInfo struct {
		staged []uint64
		off    int64
		bytes  int64
		buf    []byte
	}
	var runs []runInfo
	var ops []diskq.Op
	i := 0
	for i < len(blks) {
		start := blks[i]
		buf := dq.q.GetBuf(maxDestageRun * cacheBlockSize)
		n := 0
		for i < len(blks) && n < maxDestageRun && blks[i] == start+uint64(n) {
			ln := blockLen(vsize, blks[i])
			if !d.cache.stage(blks[i], buf[n*cacheBlockSize:int64(n)*cacheBlockSize+ln]) {
				break // no longer resident-dirty; run ends here
			}
			n++
			i++
		}
		if n == 0 {
			dq.q.PutBuf(buf)
			i++ // skip the unstageable block
			continue
		}
		off := int64(start) * cacheBlockSize
		runBytes := int64(n) * cacheBlockSize
		if off+runBytes > vsize {
			runBytes = vsize - off
		}
		runs = append(runs, runInfo{staged: blks[i-n : i], off: off, bytes: runBytes, buf: buf})
		ops = append(ops, diskq.Op{Kind: diskq.OpWrite, Buf: buf[:runBytes], Off: off})
	}
	if len(runs) == 0 {
		return
	}
	comps, nsub := dq.runBatch(ops)
	for ri, r := range runs {
		var err error
		if ri < nsub {
			err = comps[ri].Err
		} else {
			// The queue closed mid-batch; this run was never submitted and
			// will never complete, so commit it synchronously. No
			// double-write hazard: the queue's contract is that completions
			// arrive for exactly the first nsub ops.
			err = d.v.store.WriteAt(r.buf[:r.bytes], r.off)
		}
		if err != nil {
			d.s.logf("netv3: destage vol run [%d,+%d): %v", r.off, r.bytes, err)
			d.cache.unstage(r.staged, true)
			d.setErr(err)
		} else {
			d.cache.unstage(r.staged, false)
			d.runs.Add(1)
			d.blocks.Add(int64(len(r.staged)))
			d.hist[batchBucket(len(r.staged))].Add(1)
		}
		dq.q.PutBuf(r.buf)
	}
}

// batchBucket maps a run's block count to its log2 histogram bucket.
func batchBucket(n int) int {
	b := bits.Len(uint(n - 1)) // 1→0, 2→1, 3..4→2, 5..8→3, ...
	if b >= destageHistBuckets {
		b = destageHistBuckets - 1
	}
	return b
}

// drainOrphansLocked commits evicted-while-dirty payloads. Each entry is
// marked writing under the orphan lock, written without it, then removed
// (or unmarked, on error, so the next pass retries). Caller holds d.mu.
func (d *destager) drainOrphansLocked() {
	c := d.cache
	for {
		if c.orphanCount.Load() == 0 {
			return
		}
		c.orphanMu.Lock()
		var e *orphanEntry
		for _, cand := range c.orphans {
			if !cand.writing {
				e = cand
				break
			}
		}
		if e != nil {
			e.writing = true
		}
		c.orphanMu.Unlock()
		if e == nil {
			return
		}
		err := d.v.store.WriteAt(e.payload[:e.n], int64(e.blk)*cacheBlockSize)
		c.orphanMu.Lock()
		if err != nil {
			e.writing = false // leave queued for the next pass
		} else {
			for i, cand := range c.orphans {
				if cand == e {
					c.orphans = append(c.orphans[:i], c.orphans[i+1:]...)
					break
				}
			}
			c.orphanCount.Add(-1)
			c.pool.Put(e.payload)
		}
		c.orphanMu.Unlock()
		if err != nil {
			d.s.logf("netv3: destage orphan block %d: %v", e.blk, err)
			d.setErr(err)
			d.orphanRetries.Add(1)
			return // don't hot-loop against a failing store
		}
		// The store changed under a block with no resident entry to fold
		// into; invalidate any in-flight queue read over its shard.
		// (Ordered after orphanMu is released: shard locks are taken
		// before orphanMu everywhere else.)
		c.bumpEpoch(e.blk)
		d.orphanWrites.Add(1)
		d.runs.Add(1)
		d.blocks.Add(1)
		d.hist[0].Add(1)
	}
}

// drainOrphansBatchedLocked is drainOrphansLocked over the batched disk
// queue. Orphans are the scatter workload the queue exists for: eviction
// punches them out of the dirty set at unrelated offsets, so a drain is
// a pile of discontiguous single-block extents — committed serially they
// cost one blocking device round EACH, under the destage mutex, which
// under cache pressure starves the coalesced pass behind them. Here one
// sweep claims every drainable entry and commits them all as one
// vectored batch. A batch's writes land in any order, so same-block
// entries (the list can hold several; newest last is authoritative) must
// not share a batch: the sweep claims only each block's first unclaimed
// entry — the serial loop's front-to-back order — and the outer loop
// picks up the rest. Caller holds d.mu.
func (d *destager) drainOrphansBatchedLocked() {
	c := d.cache
	for {
		if c.orphanCount.Load() == 0 {
			return
		}
		c.orphanMu.Lock()
		var batch []*orphanEntry
		claimed := make(map[uint64]bool)
		for _, cand := range c.orphans {
			if cand.writing || claimed[cand.blk] {
				continue
			}
			cand.writing = true
			claimed[cand.blk] = true
			batch = append(batch, cand)
		}
		c.orphanMu.Unlock()
		if len(batch) == 0 {
			return
		}
		ops := make([]diskq.Op, len(batch))
		for i, e := range batch {
			ops[i] = diskq.Op{Kind: diskq.OpWrite, Buf: e.payload[:e.n], Off: int64(e.blk) * cacheBlockSize}
		}
		comps, nsub := d.v.dq.runBatch(ops)
		failed := false
		for i, e := range batch {
			var err error
			if i < nsub {
				err = comps[i].Err
			} else {
				// Queue closed mid-batch; this entry was never submitted.
				err = d.v.store.WriteAt(e.payload[:e.n], int64(e.blk)*cacheBlockSize)
			}
			c.orphanMu.Lock()
			if err != nil {
				e.writing = false // leave queued for the next pass
			} else {
				for j, cand := range c.orphans {
					if cand == e {
						c.orphans = append(c.orphans[:j], c.orphans[j+1:]...)
						break
					}
				}
				c.orphanCount.Add(-1)
				c.pool.Put(e.payload)
			}
			c.orphanMu.Unlock()
			if err != nil {
				d.s.logf("netv3: destage orphan block %d: %v", e.blk, err)
				d.setErr(err)
				d.orphanRetries.Add(1)
				failed = true
				continue
			}
			// Same ordering note as the serial path: bumpEpoch takes the
			// shard lock, so it runs only after orphanMu is released.
			c.bumpEpoch(e.blk)
			d.orphanWrites.Add(1)
			d.runs.Add(1)
			d.blocks.Add(1)
			d.hist[0].Add(1)
		}
		if failed {
			return // don't hot-loop against a failing store
		}
	}
}

// writeThrough commits one request's bytes under the destage mutex — the
// backpressure path once the high-watermark is reached. Blocks resident
// in the cache absorb the bytes (a dirty block's store ordering belongs
// to the destager and must not be written around; a clean one also gets
// a direct store write so it can stay clean); non-resident blocks write
// straight through, write-around style.
func (d *destager) writeThrough(b []byte, off int64) error {
	if err := checkStoreRange(d.v.store.Size(), off, len(b)); err != nil {
		return err
	}
	d.wtFallbacks.Add(1)
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.cache
	cur := off
	rest := b
	for len(rest) > 0 {
		blk := uint64(cur) / cacheBlockSize
		within := cur % cacheBlockSize
		n := int64(cacheBlockSize) - within
		if n > int64(len(rest)) {
			n = int64(len(rest))
		}
		resident, wasDirty := c.absorbIfResident(blk, within, n, rest[:n])
		switch {
		case resident && wasDirty:
			// Dirty block: the destager owns its store ordering; the
			// overlay above is enough.
		case !resident && c.orphaned(blk):
			// A queued orphan holds older acked bytes for this block.
			// Writing around it would let the drain later commit those
			// stale bytes *over* ours. Fold the new bytes into the
			// cache instead — absorb adopts and merges the orphan and
			// re-marks the block dirty, so the destager commits the
			// merge in order. (We hold d.mu, so no drain can remove
			// the entry between the check and the absorb; session-side
			// adoption just makes the block resident, which absorb
			// also handles.)
			if err := c.absorb(d.v, blk, within, n, rest[:n]); err != nil {
				if err == errCacheBusy {
					// No cache slot to adopt the orphan into: merge the
					// bytes into the orphan entry itself; the drain then
					// commits the merged payload in order. (Entries are
					// never mid-commit here — drains run under d.mu, which
					// we hold — so the fold cannot miss; if the entry
					// vanished anyway, write-around below is correct.)
					if c.orphanFold(blk, within, n, rest[:n]) {
						break
					}
					if err := d.v.store.WriteAt(rest[:n], cur); err != nil {
						return err
					}
					c.updateBlock(blk, within, n, rest[:n])
					break
				}
				return err
			}
		default:
			if err := d.v.store.WriteAt(rest[:n], cur); err != nil {
				return err
			}
			// A miss fill racing this store write can install the
			// pre-write bytes (it reads the store under only its shard
			// lock). Re-applying the bytes to any now-resident block
			// restores the writer ordering rule (see blockCache): the
			// fill either finished before this update, which corrects
			// it, or starts after the store write and reads fresh bytes.
			c.updateBlock(blk, within, n, rest[:n])
		}
		cur += n
		rest = rest[n:]
	}
	return nil
}

// flush is the durability barrier behind the wire-level Flush op: drain
// all uncommitted write-behind state, then fsync the store. Any sticky
// background destage error surfaces here.
func (d *destager) flush() error {
	d.destageAll()
	if err := d.takeErr(); err != nil {
		return err
	}
	if dq := d.v.dq; dq != nil {
		// The fsync rides the queue as a drain-barrier SQE: it starts only
		// after every outstanding write completes, exactly the sequencing
		// the classic path got from destageAll-then-Sync, without stalling
		// submissions from other flows.
		return dq.fsyncBarrier()
	}
	return d.v.store.Sync()
}
