package netv3

import (
	"sync/atomic"

	"github.com/v3storage/v3/internal/obs"
)

// Read-ahead sizing: a detected sequential stream starts at
// minPrefetchBlocks of read-ahead and doubles per trigger up to
// maxPrefetchBlocks (256 KB with 8 KB blocks), so short scans stay
// cheap and long scans keep the disk ahead of the client.
const (
	minPrefetchBlocks = 8
	maxPrefetchBlocks = 32
	// prefetchStreak is how many back-to-back sequential reads arm
	// read-ahead; one adjacency is too weak a signal.
	prefetchStreak = 2
)

// prefetcher is per-session sequential-stream detection, the server-side
// read-ahead of the paper's pipelined disk path: databases scan files
// sequentially during recovery and table scans, and a detected stream
// lets the disk run ahead of the client's request window. State is only
// touched by the session goroutine; no locking.
type prefetcher struct {
	vol     uint32
	nextOff int64  // offset that would continue the current stream
	streak  int    // consecutive sequential reads observed
	ahead   uint64 // first block NOT yet requested for read-ahead
	degree  int    // blocks per trigger, doubling to maxPrefetchBlocks
	started bool
}

// observe feeds one read into the detector and returns a block range to
// prefetch, if the stream is established and has caught up with the
// previous read-ahead horizon.
func (p *prefetcher) observe(vol uint32, off, length int64) (start uint64, n int, ok bool) {
	if !p.started || vol != p.vol || off != p.nextOff {
		p.vol = vol
		p.streak = 0
		p.degree = minPrefetchBlocks
		p.ahead = 0
		p.started = true
	} else {
		p.streak++
	}
	p.nextOff = off + length
	if p.streak < prefetchStreak {
		return 0, 0, false
	}
	// First block at or past the read's end — the stream's frontier.
	frontier := uint64((off + length + cacheBlockSize - 1) / cacheBlockSize)
	if p.ahead < frontier {
		p.ahead = frontier
	}
	// Trigger only once the stream has consumed most of the previous
	// window: this keeps at most ~1.5 windows of read-ahead outstanding
	// instead of racing the horizon further away on every read.
	if p.ahead-frontier >= uint64(p.degree)/2 {
		return 0, 0, false
	}
	n = p.degree
	if p.degree < maxPrefetchBlocks {
		p.degree *= 2
	}
	start = p.ahead
	p.ahead += uint64(n)
	return start, n, true
}

// prefetchReq is one read-ahead range for the volume's prefetch worker.
type prefetchReq struct {
	start uint64
	n     int
}

// prefetchWorker is the per-volume background read-ahead engine: one
// goroutine draining a small request channel. Requests that arrive while
// it is busy are dropped — read-ahead is best-effort and a demand miss
// is always correct, just slower.
type prefetchWorker struct {
	v       *volume
	reqs    chan prefetchReq
	dropped atomic.Int64
}

func newPrefetchWorker(v *volume) *prefetchWorker {
	return &prefetchWorker{v: v, reqs: make(chan prefetchReq, 8)}
}

// submit queues a read-ahead range, dropping it if the worker is behind.
func (w *prefetchWorker) submit(start uint64, n int) {
	select {
	case w.reqs <- prefetchReq{start: start, n: n}:
	default:
		w.dropped.Add(1)
	}
}

func (w *prefetchWorker) run(s *Server, done <-chan struct{}) {
	for {
		select {
		case <-done:
			return
		case r := <-w.reqs:
			var t0 int64
			if s.om != nil {
				t0 = obs.Now()
			}
			if err := w.v.cache.prefetchFill(w.v, r.start, r.n); err != nil {
				// Best-effort: log and move on; the demand path will
				// surface a persistent store error to the client.
				s.logf("netv3: prefetch blocks [%d,+%d): %v", r.start, r.n, err)
			}
			if t0 != 0 {
				s.om.prefetchFill.Observe(obs.Now() - t0)
			}
		}
	}
}
