package netv3

import (
	"sync"
	"sync/atomic"

	"github.com/v3storage/v3/internal/diskq"
	"github.com/v3storage/v3/internal/obs"
)

// Read-ahead sizing: a detected stream starts at minPrefetchBlocks of
// read-ahead and doubles per trigger up to maxPrefetchBlocks (256 KB
// with 8 KB blocks), so short scans stay cheap and long scans keep the
// disk ahead of the client.
const (
	minPrefetchBlocks = 8
	maxPrefetchBlocks = 32
	// prefetchStreak is how many back-to-back stream-continuing reads arm
	// read-ahead; one adjacency is too weak a signal.
	prefetchStreak = 2
	// maxPrefetchStride bounds the byte distance between consecutive read
	// starts that still counts as a strided stream — wider gaps cover so
	// little of the region per cached byte that read-ahead is a net loss.
	maxPrefetchStride = 64 * cacheBlockSize
)

// prefetcher is per-session read-stream detection, the server-side
// read-ahead of the paper's pipelined disk path. Two stream shapes arm
// it: pure sequential scans (recovery, table scans) and constant-stride
// scans (index range scans with a fixed fan-out, column projections of
// fixed-width rows). A detected stream lets the disk run ahead of the
// client's request window. State is only touched by the session
// goroutine; no locking.
type prefetcher struct {
	vol     uint32
	lastOff int64 // previous read's start offset
	length  int64 // previous read's length
	nextOff int64 // offset that would continue a sequential stream
	stride  int64 // byte delta between the two most recent read starts
	streak  int   // consecutive stream-continuing reads observed

	ahead    uint64 // sequential: first block NOT yet requested for read-ahead
	aheadOff int64  // strided: next predicted read start NOT yet requested
	degree   int    // window size per trigger, doubling to maxPrefetchBlocks
	started  bool

	// emitted remembers the blocks of this stream's recent windows,
	// oldest first, so that when the stream dies its not-yet-consumed
	// read-ahead can be discarded instead of squatting on cache slots
	// (and on the prefetch residency budget) until eviction gets to it.
	emitted []uint64
}

// maxEmitted bounds the emitted ring; the oldest entries it sheds are
// the ones the stream has long since consumed (discard skips consumed
// blocks anyway, so shedding them early costs nothing).
const maxEmitted = 4 * maxPrefetchBlocks

// observe feeds one read into the detector and returns the blocks to
// prefetch, if a stream is established and has caught up with the
// previous read-ahead horizon. Sequential streams yield a contiguous
// window; strided streams (allowed only when strideOK — scatter
// read-ahead is affordable only over the batched disk queue, where a
// window is one vectored submission rather than one blocking read per
// block) yield the blocks under the next predicted read positions.
// cancel, returned when this read broke an established stream, is the
// dead stream's emitted read-ahead — the caller should hand it to
// prefetchDiscard so unconsumed speculation stops occupying the cache.
func (p *prefetcher) observe(vol uint32, off, length int64, strideOK bool) (blks, cancel []uint64, ok bool) {
	seq := p.started && vol == p.vol && off == p.nextOff
	delta := off - p.lastOff
	strided := p.started && vol == p.vol && !seq && strideOK &&
		delta == p.stride && delta != 0 &&
		delta > -maxPrefetchStride && delta < maxPrefetchStride
	if seq || strided {
		p.streak++
	} else {
		p.streak = 0
		// Slow-start with memory: a broken stream re-arms at half its old
		// window, not the minimum — scans that wrap (or skip a record)
		// resume the same cadence and should regain depth in one trigger.
		p.degree /= 2
		if p.degree < minPrefetchBlocks {
			p.degree = minPrefetchBlocks
		}
		p.ahead = 0
		p.aheadOff = 0
		cancel = p.emitted
		p.emitted = nil
	}
	if p.started && vol == p.vol {
		p.stride = delta
	} else {
		p.stride = 0
	}
	p.vol = vol
	p.lastOff = off
	p.length = length
	p.nextOff = off + length
	p.started = true
	if p.streak < prefetchStreak {
		return nil, cancel, false
	}
	if seq {
		blks, ok = p.sequentialWindow(off, length)
	} else {
		blks, ok = p.stridedWindow(off, length)
	}
	if ok {
		p.emitted = append(p.emitted, blks...)
		if n := len(p.emitted) - maxEmitted; n > 0 {
			p.emitted = p.emitted[n:]
		}
	}
	return blks, cancel, ok
}

// sequentialWindow advances the contiguous read-ahead horizon.
func (p *prefetcher) sequentialWindow(off, length int64) (blks []uint64, ok bool) {
	// First block at or past the read's end — the stream's frontier.
	frontier := uint64((off + length + cacheBlockSize - 1) / cacheBlockSize)
	if p.ahead < frontier {
		p.ahead = frontier
	}
	// Trigger only once the stream has consumed most of the previous
	// window: this keeps at most ~1.5 windows of read-ahead outstanding
	// instead of racing the horizon further away on every read.
	if p.ahead-frontier >= uint64(p.degree)/2 {
		return nil, false
	}
	n := p.degree
	if p.degree < maxPrefetchBlocks {
		p.degree *= 2
	}
	blks = make([]uint64, n)
	for i := range blks {
		blks[i] = p.ahead + uint64(i)
	}
	p.ahead += uint64(n)
	return blks, true
}

// stridedWindow advances the predicted-read horizon: future read starts
// extrapolate at the detected stride from the newest observed read, and
// a window covers every block those predicted reads would touch.
func (p *prefetcher) stridedWindow(off, length int64) (blks []uint64, ok bool) {
	steps := int64(0)
	if p.aheadOff != 0 {
		steps = (p.aheadOff - off) / p.stride // positive when the horizon is ahead
	}
	if steps <= 0 {
		p.aheadOff = off + p.stride
		steps = 1
	}
	// Refill while the horizon is within a full window of the stream:
	// a window's fill costs a device round, so the lead must cover one
	// or the stream catches the horizon and misses (pacing is in
	// predicted-read units; up to two windows stay outstanding).
	if steps > int64(p.degree) {
		return nil, false
	}
	reads := p.degree
	if p.degree < maxPrefetchBlocks {
		p.degree *= 2
	}
	last := ^uint64(0)
	for k := 0; k < reads && len(blks) < maxPrefetchBlocks; k++ {
		o := p.aheadOff
		if o < 0 {
			break // a descending scan ran off the front of the volume
		}
		end := o + length
		if end <= o {
			end = o + 1
		}
		for b := uint64(o) / cacheBlockSize; b <= uint64(end-1)/cacheBlockSize; b++ {
			if b != last && len(blks) < maxPrefetchBlocks {
				blks = append(blks, b)
				last = b
			}
		}
		p.aheadOff += p.stride
	}
	return blks, len(blks) > 0
}

// prefetchReq is one read-ahead window for the volume's prefetch
// worker: an ascending block list, contiguous for sequential streams,
// gapped for strided ones.
type prefetchReq struct {
	blks []uint64
}

// prefetchFillStreams is how many window fills a volume's prefetch
// worker keeps in flight at once over the batched disk queue. A fill is
// device-bound (one vectored batch, then a wait), so overlapping a few
// keeps read-ahead supply at queue rate instead of one-window-per-device
// -round; the classic path stays serial — its fill holds shard locks for
// the whole store read, and overlapping those would stall demand hits.
const prefetchFillStreams = 6

// prefetchWorker is the per-volume background read-ahead engine: one
// goroutine draining a small request channel (fanning out to a few
// concurrent fills on the batched path). Requests that arrive while the
// lane is full are dropped — read-ahead is best-effort and a demand miss
// is always correct, just slower.
type prefetchWorker struct {
	v       *volume
	reqs    chan prefetchReq
	stopped chan struct{} // closed when run() exits
	bgKey   uint64        // scheduler tenant key for background-lane fills
	dropped atomic.Int64
}

func newPrefetchWorker(v *volume) *prefetchWorker {
	return &prefetchWorker{v: v, reqs: make(chan prefetchReq, 8), stopped: make(chan struct{}), bgKey: newBGKey()}
}

// submit queues a read-ahead window, dropping it if the worker is behind.
func (w *prefetchWorker) submit(blks []uint64) {
	select {
	case w.reqs <- prefetchReq{blks: blks}:
	default:
		w.dropped.Add(1)
	}
}

func (w *prefetchWorker) run(s *Server, done <-chan struct{}) {
	defer close(w.stopped)
	var fills sync.WaitGroup
	defer fills.Wait()
	sem := make(chan struct{}, prefetchFillStreams)
	for {
		select {
		case <-done:
			return
		case r := <-w.reqs:
			if w.v.dq == nil {
				w.fill(s, r.blks)
				continue
			}
			select {
			case sem <- struct{}{}:
			case <-done:
				return
			}
			fills.Add(1)
			go func() {
				defer fills.Done()
				defer func() { <-sem }()
				w.fill(s, r.blks)
			}()
		}
	}
}

// fill services one window. When the shared scheduler is on, the store
// work rides its background lane — read-ahead is exactly the speculative
// traffic the lane exists to meter — with this goroutine (a dedicated
// producer, never a scheduler worker) enqueueing and waiting; a refused
// enqueue (scheduler closing) runs the fill here instead.
func (w *prefetchWorker) fill(s *Server, blks []uint64) {
	if sc := s.sched; sc != nil {
		done := make(chan struct{})
		if ok, _ := sc.tryEnqueue(w.bgKey, 1, true, func() { w.fillNow(s, blks); close(done) }); ok {
			<-done
			return
		}
	}
	w.fillNow(s, blks)
}

// fillNow services one window on the calling goroutine, routing to the
// batched or classic engine. A window is dropped whole when unconsumed
// read-ahead already fills the cache's residency budget — fetching more
// would only evict earlier read-ahead (or demand state) before anything
// is consumed.
func (w *prefetchWorker) fillNow(s *Server, blks []uint64) {
	if c := w.v.cache; c.prefResident.Load() >= c.prefBudget {
		w.dropped.Add(1)
		return
	}
	var t0 int64
	if s.om != nil || s.flight != nil {
		t0 = obs.Now()
	}
	var err error
	if w.v.dq != nil {
		err = w.fillBatched(blks)
	} else {
		err = w.fillClassic(blks)
	}
	if err != nil {
		// Best-effort: log and move on; the demand path will
		// surface a persistent store error to the client.
		s.logf("netv3: prefetch %d blocks from %d: %v", len(blks), blks[0], err)
	}
	if t0 != 0 {
		dur := obs.Now() - t0
		if s.om != nil {
			s.om.prefetchFill.Observe(dur)
		}
		// Flight attribution: the speculative fill's size and cost, so a
		// dump shows read-ahead competing with the demand traffic near it.
		s.flight.Record(fkPrefetch, 0, uint64(len(blks)), uint64(dur))
	}
}

// fillClassic services a window with the shard-locked contiguous fill,
// one store read per contiguous run. The detector only emits gapped
// windows over the batched queue, so in practice this is a single run.
func (w *prefetchWorker) fillClassic(blks []uint64) error {
	var firstErr error
	for i := 0; i < len(blks); {
		j := i + 1
		for j < len(blks) && blks[j] == blks[j-1]+1 {
			j++
		}
		if err := w.v.cache.prefetchFill(w.v, blks[i], j-i); err != nil && firstErr == nil {
			firstErr = err
		}
		i = j
	}
	return firstErr
}

// fillBatched is prefetchFill over the batched disk queue: the whole
// doubling window goes down as one vectored submission — one read extent
// per maximal run of wanted, block-contiguous entries — with NO shard
// locks held across the device time. The classic fill pins every touched
// shard for the whole store read, stalling demand hits behind read-ahead;
// here the plan and install phases take the locks only briefly, and the
// epoch snapshot taken by prefetchPlan lets prefetchInstall drop any
// block a write raced past the unlocked read (a dropped block just
// misses later). Strided windows are where the vectoring earns its keep:
// a gapped window becomes a scatter of single-block extents in one
// submission, an I/O shape the classic one-read-per-call fill cannot
// express without serializing on the worker.
func (w *prefetchWorker) fillBatched(blks []uint64) error {
	v := w.v
	c := v.cache
	want, epochs, need := c.prefetchPlan(v, blks)
	if need == 0 {
		return nil
	}
	n := len(blks)
	dq := v.dq
	buf := dq.q.GetBuf(n * cacheBlockSize)
	defer dq.q.PutBuf(buf)
	vsize := v.store.Size()
	var ops []diskq.Op
	var runs [][2]int // wanted-run [start index, block count] per op
	for i := 0; i < n; {
		if !want[i] {
			i++
			continue
		}
		j := i + 1
		for j < n && want[j] && blks[j] == blks[j-1]+1 {
			j++
		}
		off := int64(blks[i]) * cacheBlockSize
		ln := int64(j-i) * cacheBlockSize
		if off+ln > vsize {
			// The run ends in a partial tail block; reads only fill up to
			// vsize, so pre-zero the slack the install phase will copy out.
			ln = vsize - off
			clear(buf[int64(i)*cacheBlockSize+ln : int64(j)*cacheBlockSize])
		}
		ops = append(ops, diskq.Op{Kind: diskq.OpRead, Buf: buf[int64(i)*cacheBlockSize : int64(i)*cacheBlockSize+ln], Off: off})
		runs = append(runs, [2]int{i, j - i})
		i = j
	}
	comps, nsub := dq.runBatch(ops)
	ok := make([]bool, n)
	var firstErr error
	for oi, run := range runs {
		good := oi < nsub && comps[oi].Err == nil
		if oi < nsub && comps[oi].Err != nil && firstErr == nil {
			firstErr = comps[oi].Err
		}
		for k := 0; k < run[1]; k++ {
			ok[run[0]+k] = good
		}
	}
	c.prefetchInstall(v, blks, want, ok, epochs, buf)
	return firstErr
}
