package netv3

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T, cfg ServerConfig, volSize int64) (*Server, string) {
	t.Helper()
	srv := NewServer(cfg)
	srv.AddVolume(1, NewMemStore(volSize))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func TestReadWriteRoundtrip(t *testing.T) {
	_, addr := startServer(t, DefaultServerConfig(), 1<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := []byte("hello, VI-attached volume vault")
	if err := c.Write(1, 8192, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.Read(1, 8192, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
}

func TestReadUnwrittenReturnsZeros(t *testing.T) {
	_, addr := startServer(t, DefaultServerConfig(), 1<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := make([]byte, 4096)
	if err := c.Read(1, 0, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten region not zero")
		}
	}
}

func TestLargeTransfer(t *testing.T) {
	_, addr := startServer(t, DefaultServerConfig(), 8<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]byte, 1<<20) // MaxXfer default
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := c.Write(1, 1<<20, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.Read(1, 1<<20, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("1MB roundtrip corrupted")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, addr := startServer(t, DefaultServerConfig(), 16<<20)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr, DefaultClientConfig())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 16; i++ {
				off := int64(w*16+i) * 8192
				data := bytes.Repeat([]byte{byte(w*16 + i)}, 8192)
				if err := c.Write(1, off, data); err != nil {
					errs <- err
					return
				}
				got := make([]byte, 8192)
				if err := c.Read(1, off, got); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("worker %d block %d corrupted", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.Served() < 128 {
		t.Fatalf("served=%d", srv.Served())
	}
	if srv.Sessions() != 4 {
		t.Fatalf("sessions=%d", srv.Sessions())
	}
}

func TestOverlappedIOWithinOneClient(t *testing.T) {
	_, addr := startServer(t, DefaultServerConfig(), 16<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			off := int64(i) * 65536
			data := bytes.Repeat([]byte{byte(i + 1)}, 32768)
			if err := c.Write(1, off, data); err != nil {
				errs <- err
				return
			}
			got := make([]byte, len(data))
			if err := c.Read(1, off, got); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("stream %d corrupted", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestUnknownVolume(t *testing.T) {
	_, addr := startServer(t, DefaultServerConfig(), 1<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(99, 0, []byte("x")); err == nil {
		t.Fatal("write to unknown volume should fail")
	}
	// Session must remain usable.
	if err := c.Write(1, 0, []byte("y")); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangeIO(t *testing.T) {
	_, addr := startServer(t, DefaultServerConfig(), 65536)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(1, 65536-10, make([]byte, 100)); err == nil {
		t.Fatal("out-of-range write should fail")
	}
	if err := c.Read(1, 0, make([]byte, 512)); err != nil {
		t.Fatalf("session unusable after EIO: %v", err)
	}
}

func TestServerCacheHits(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.CacheBlocks = 128
	srv, addr := startServer(t, cfg, 4<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 8192)
	if err := c.Write(1, 0, bytes.Repeat([]byte{7}, 8192)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Read(1, 0, buf); err != nil {
			t.Fatal(err)
		}
	}
	hits, _ := srv.CacheStats()
	if hits == 0 {
		t.Fatal("no cache hits recorded")
	}
	if buf[0] != 7 {
		t.Fatal("cached data wrong")
	}
}

func TestCachedReadConsistentAfterWrite(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.CacheBlocks = 128
	_, addr := startServer(t, cfg, 1<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 8192)
	if err := c.Write(1, 0, bytes.Repeat([]byte{1}, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(1, 0, buf); err != nil { // populates the cache
		t.Fatal(err)
	}
	if err := c.Write(1, 0, bytes.Repeat([]byte{2}, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 2 || buf[8191] != 2 {
		t.Fatal("stale cache after write")
	}
}

func TestFileStoreBacked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.img")
	fs, err := NewFileStore(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(DefaultServerConfig())
	srv.AddVolume(7, fs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	c, err := Dial(addr.String(), DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := []byte("persistent bytes")
	if err := c.Write(7, 512, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.Read(7, 512, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file store roundtrip corrupted")
	}
	if srv.VolumeSize(7) != 1<<20 {
		t.Fatal("volume size wrong")
	}
}

func TestCreditWindowRespected(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.Credits = 2
	_, addr := startServer(t, cfg, 8<<20)
	ccfg := DefaultClientConfig()
	c, err := Dial(addr, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// 16 concurrent writes through a 2-credit window must all complete.
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.Write(1, int64(i)*8192, bytes.Repeat([]byte{byte(i)}, 8192)); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestReconnectReplaysOutstanding(t *testing.T) {
	srv, addr := startServer(t, DefaultServerConfig(), 1<<20)
	ccfg := DefaultClientConfig()
	ccfg.ReconnectBackoff = 20 * time.Millisecond
	c, err := Dial(addr, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(1, 0, []byte("before")); err != nil {
		t.Fatal(err)
	}
	_ = srv // the same listener keeps accepting
	c.KillConnForTest()
	// Next I/O hits the dead socket, triggers reconnection, and succeeds.
	deadline := time.Now().Add(5 * time.Second)
	var got []byte
	for time.Now().Before(deadline) {
		got = make([]byte, 6)
		if err := c.Read(1, 0, got); err == nil {
			break
		}
	}
	if string(got) != "before" {
		t.Fatalf("after reconnect got %q", got)
	}
	if c.Reconnects() == 0 {
		t.Fatal("no reconnection recorded")
	}
	if srv.Sessions() < 2 {
		t.Fatalf("server sessions=%d, want >= 2", srv.Sessions())
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	_, addr := startServer(t, DefaultServerConfig(), 1<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Read(1, 0, make([]byte, 16)); err == nil {
		t.Fatal("read after close should fail")
	}
}

func TestMemStoreBounds(t *testing.T) {
	m := NewMemStore(100)
	if err := m.ReadAt(make([]byte, 10), 95); err == nil {
		t.Fatal("overflow read accepted")
	}
	if err := m.WriteAt(make([]byte, 10), -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if m.Size() != 100 {
		t.Fatal("size wrong")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
