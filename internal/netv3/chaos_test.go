package netv3

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestChaosHungServerDetection is the headline hung-peer scenario: the
// server's link goes silent WITHOUT closing — writes vanish, reads
// stall — which no error return ever reports. The idle-armed keepalive
// must notice within 2× the interval, and with the retry budget also
// exhausted (the peer stays black), every stranded pending must complete
// with ErrConnLost instead of hanging its waiter forever.
func TestChaosHungServerDetection(t *testing.T) {
	f, addr := startFaultServer(t, DefaultServerConfig(), 1<<20)
	const ka = 300 * time.Millisecond
	cfg := DefaultClientConfig()
	cfg.KeepaliveInterval = ka
	cfg.DialTimeout = 150 * time.Millisecond
	cfg.ReconnectBackoff = 20 * time.Millisecond
	cfg.MaxReconnects = 2
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(1, 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	f.Inj.Blackhole(true)
	t0 := time.Now()
	// Requests submitted into the blackhole: the writes "succeed" (bytes
	// swallowed), so nothing errors — the handles just strand.
	var handles []*Pending
	for i := 0; i < 4; i++ {
		h, err := c.WriteAsync(1, int64(i)*4096, make([]byte, 4096))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// Detection bound: idle for ka arms the ping, the ping's read
	// deadline fires ka later — 2×ka worst case, plus scheduler slack.
	for time.Since(t0) < 2*ka+200*time.Millisecond {
		if c.Stats().HungDetections >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	detected := time.Since(t0)
	if c.Stats().HungDetections < 1 {
		t.Fatalf("hung peer not detected within %v (2×keepalive + slack)", detected)
	}
	t.Logf("hung peer detected after %v (keepalive %v)", detected, ka)
	// With the peer still black, reconnection exhausts its budget and
	// every pending resolves with ErrConnLost — no waiter hangs.
	for i, h := range handles {
		if err := h.WaitTimeout(5 * time.Second); !errors.Is(err, ErrConnLost) {
			t.Fatalf("pending %d: err=%v, want ErrConnLost", i, err)
		}
	}
	if total := time.Since(t0); total > 10*time.Second {
		t.Fatalf("stranded pendings took %v to resolve", total)
	}
}

// TestChaosCancelStorm hammers the cancel path under load on a slowed
// link: many goroutines submit, a third of the requests are abandoned
// through tiny bounded waits or explicit Cancel, the rest complete
// normally. Afterwards the credit window must be exactly whole — every
// slot home, nothing leaked, the full window immediately usable.
func TestChaosCancelStorm(t *testing.T) {
	f, addr := startFaultServer(t, DefaultServerConfig(), 4<<20)
	cfg := DefaultClientConfig()
	cfg.KeepaliveInterval = 0 // isolate cancellation from hung detection
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f.Inj.SetLatency(2*time.Millisecond, 2*time.Millisecond)
	const (
		workers = 8
		perG    = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*perG)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 4096)
			for i := 0; i < perG; i++ {
				n := g*perG + i
				var h *Pending
				var err error
				if n%2 == 0 {
					h, err = c.WriteAsync(1, int64(n%64)*4096, buf)
				} else {
					h, err = c.ReadAsync(1, int64(n%64)*4096, buf)
				}
				if err != nil {
					errs <- fmt.Errorf("submit %d: %w", n, err)
					return
				}
				switch n % 3 {
				case 0:
					// Abandon through a bound that usually expires mid-flight.
					if err := h.WaitTimeout(time.Millisecond); err != nil &&
						!errors.Is(err, ErrWaitTimeout) {
						errs <- fmt.Errorf("req %d: %w", n, err)
						return
					}
				case 1:
					h.Cancel() // either outcome is legal; slot must come home
					if err := h.Wait(); err != nil && !errors.Is(err, ErrCanceled) {
						errs <- fmt.Errorf("req %d after cancel: %w", n, err)
						return
					}
				default:
					if err := h.Wait(); err != nil {
						errs <- fmt.Errorf("req %d: %w", n, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	f.Inj.SetLatency(0, 0)
	// Zero leak criterion: once the in-flight count drains, every credit
	// slot must be back in the channel.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if c.Stats().InFlight == 0 && len(c.creditC) == cap(c.creditC) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("window not whole after storm: inflight=%d slots=%d/%d",
				c.Stats().InFlight, len(c.creditC), cap(c.creditC))
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the whole window is genuinely usable: saturate it end-to-end.
	var wg2 sync.WaitGroup
	for i := 0; i < cap(c.creditC); i++ {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			if err := c.Read(1, int64(i%64)*4096, make([]byte, 4096)); err != nil {
				t.Errorf("post-storm read %d: %v", i, err)
			}
		}(i)
	}
	wg2.Wait()
}

// TestChaosDestagePartition exercises a write-behind server across a
// transient partition: writes are absorbed as dirty cache, the link
// blackholes mid-stream, the keepalive detects it, and reconnection
// replays the stranded writes once the partition heals — after which a
// flush barrier and full read-back must show every byte intact.
func TestChaosDestagePartition(t *testing.T) {
	scfg := DefaultServerConfig()
	scfg.CacheBlocks = 512 // cache present + write-behind on by default
	f, addr := startFaultServer(t, scfg, 4<<20)
	cfg := DefaultClientConfig()
	cfg.KeepaliveInterval = 200 * time.Millisecond
	cfg.DialTimeout = 300 * time.Millisecond
	cfg.ReconnectBackoff = 100 * time.Millisecond
	cfg.MaxReconnects = 8
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	block := func(i int) []byte {
		b := make([]byte, 8192)
		for j := range b {
			b[j] = byte(i*31 + j)
		}
		return b
	}
	// Phase 1: committed before the partition.
	for i := 0; i < 16; i++ {
		if err := c.Write(1, int64(i)*8192, block(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 2: submitted into the partition; the handles strand until
	// reconnection replays them.
	f.Inj.Blackhole(true)
	var handles []*Pending
	for i := 16; i < 24; i++ {
		h, err := c.WriteAsync(1, int64(i)*8192, block(i))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// Heal inside the retry budget: detection ≤ 2×ka (400ms), then
	// reconnect attempts every ~100-300ms for up to 8 tries.
	time.Sleep(600 * time.Millisecond)
	f.Inj.Blackhole(false)
	for i, h := range handles {
		if err := h.WaitTimeout(15 * time.Second); err != nil {
			t.Fatalf("partition write %d: %v (reconnects=%d hung=%d)",
				i, err, c.Reconnects(), c.Stats().HungDetections)
		}
	}
	if c.Stats().HungDetections < 1 {
		t.Fatal("partition was never detected as a hung peer")
	}
	if c.Reconnects() < 1 {
		t.Fatal("client never reconnected across the partition")
	}
	// Durability barrier, then verify every block — phase 1 and the
	// replayed phase 2 — survived the partition.
	if err := c.Flush(1); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8192)
	for i := 0; i < 24; i++ {
		if err := c.Read(1, int64(i)*8192, got); err != nil {
			t.Fatalf("read-back %d: %v", i, err)
		}
		if !bytes.Equal(got, block(i)) {
			t.Fatalf("block %d corrupted across partition", i)
		}
	}
}

// TestChaosKeepaliveQuietOnHealthyLink pins the hot-path cost contract:
// on a link with steady traffic the keepalive must never fire — the
// detector is idle-armed, so a healthy busy connection pays only the
// per-frame timestamp store.
func TestChaosKeepaliveQuietOnHealthyLink(t *testing.T) {
	_, addr := startFaultServer(t, DefaultServerConfig(), 1<<20)
	cfg := DefaultClientConfig()
	cfg.KeepaliveInterval = 100 * time.Millisecond
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Traffic at 4× the keepalive frequency for several intervals.
	buf := make([]byte, 512)
	for i := 0; i < 20; i++ {
		if err := c.Read(1, 0, buf); err != nil {
			t.Fatal(err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if st := c.Stats(); st.KeepalivePings != 0 {
		t.Fatalf("keepalive sent %d pings on a busy link, want 0", st.KeepalivePings)
	}
	// Now idle: the ping fires, the server pongs, and nothing trips.
	time.Sleep(350 * time.Millisecond)
	st := c.Stats()
	if st.KeepalivePings < 1 {
		t.Fatal("keepalive never probed an idle link")
	}
	if st.HungDetections != 0 {
		t.Fatalf("healthy idle link produced %d hung detections", st.HungDetections)
	}
	// The link still works after idling through keepalive cycles.
	if err := c.Read(1, 0, buf); err != nil {
		t.Fatalf("read after idle keepalives: %v", err)
	}
}
