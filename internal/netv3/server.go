package netv3

import (
	"bufio"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/v3storage/v3/internal/bufpool"
	"github.com/v3storage/v3/internal/flow"
	"github.com/v3storage/v3/internal/obs"
	"github.com/v3storage/v3/internal/wire"
)

// ServerConfig sizes a netv3 server.
type ServerConfig struct {
	// Credits is the flow-control window granted per session: the number
	// of staging buffer slots, each MaxXfer bytes.
	Credits int
	// MaxXfer bounds a single transfer.
	MaxXfer uint32
	// CacheBlocks enables a server-side MQ read cache of 8 KB blocks per
	// volume (0 disables).
	CacheBlocks int
	// CacheShards is the number of independently locked cache shards per
	// volume (rounded up to a power of two). 0 selects the default (16);
	// 1 yields a single-lock cache, the ablation baseline.
	CacheShards int
	// NoPool disables payload buffer pooling (ablation: every request
	// allocates fresh buffers, the pre-optimization behavior).
	NoPool bool
	// NoBatch disables response frame batching (ablation: every response
	// is flushed to the socket individually).
	NoBatch bool
	// DiskWorkers, when positive, enables the pipelined disk path: each
	// volume gets a pool of that many disk worker goroutines, cache hits
	// are served inline on the session loop, and store I/O completes out
	// of order through a per-session completion lane. 0 keeps the classic
	// synchronous dispatch (the ablation baseline).
	DiskWorkers int
	// DiskQ routes every store I/O through a batched submission/completion
	// queue (internal/diskq): demand-read misses, write-through writes,
	// destage runs, and prefetch windows become submissions on one SQ/CQ
	// pair per volume, drained by a single dispatcher goroutine, with
	// io_uring underneath on Linux and a goroutine pool elsewhere. It
	// supersedes DiskWorkers for dispatch (no per-volume worker pool is
	// created); a positive DiskWorkers then only sizes the portable
	// backend's pool.
	DiskQ bool
	// SQDepth bounds the in-flight operations of each volume's disk queue
	// (submission-queue depth). 0 selects 64. Only meaningful with DiskQ.
	SQDepth int
	// NoWriteBehind disables write-behind destaging (ablation): writes go
	// to the store before they are acknowledged, as in the seed. Only
	// meaningful when CacheBlocks > 0, since dirty blocks live in the
	// cache.
	NoWriteBehind bool
	// NoPrefetch disables sequential read-ahead (ablation). Only
	// meaningful when CacheBlocks > 0.
	NoPrefetch bool
	// DirtyHighWater caps uncommitted write-behind blocks per volume;
	// writes beyond it fall back to write-through until the destager
	// catches up. 0 selects CacheBlocks/2.
	DirtyHighWater int
	// DestageInterval is the background destage period. 0 selects 5ms.
	DestageInterval time.Duration
	// SchedWorkers, when positive, replaces per-session dispatch with the
	// shared request scheduler: a bounded pool of that many workers drains
	// per-tenant weighted queues in two QoS lanes (foreground client I/O,
	// background destage/prefetch/utility), with admission control shedding
	// foreground work past AdmitLimit. 0 keeps per-session dispatch; see
	// sched.go. When on, it supersedes DiskWorkers/DiskQ for request
	// dispatch (the disk queue still carries destage batches).
	SchedWorkers int
	// AdmitLimit caps queued foreground scheduler tasks; beyond it requests
	// are refused with StatusEOverloaded plus a retry-after hint instead of
	// queueing without bound. 0 selects SchedWorkers*256. Only meaningful
	// with SchedWorkers > 0.
	AdmitLimit int
	// MaxStreams caps logical streams per connection (the wire protocol's
	// session-multiplexing layer). 0 selects 65535, the field's ceiling.
	MaxStreams int
	// Metrics, when non-nil, enables server-side instrumentation on this
	// registry: dispatch/queue-wait/disk-service/destage/flush/prefetch
	// latency histograms plus gauge exports of the served/cache/pool/disk
	// counters. Nil is the disabled fast path.
	Metrics *obs.Registry
	// NoTrace stops the server from negotiating FeatureTrace, so traced
	// clients get zero span blocks back — the ablation off-arm and the
	// stand-in for a pre-trace server binary.
	NoTrace bool
	// Flight, when non-nil, is the always-on flight recorder: dispatches,
	// sheds, disk submissions/completions, destage and prefetch passes
	// record fixed-size events into its ring, and admission-control sheds
	// auto-capture an incident dump. Nil no-ops every site.
	Flight *obs.Flight
	// Logger receives connection-level errors; nil silences them.
	Logger *log.Logger
}

// DefaultServerConfig returns sensible defaults: 64 slots of 1 MB.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{Credits: 64, MaxXfer: 1 << 20}
}

const cacheBlockSize = 8192

// sockBufSize sizes the per-session bufio reader and writer. The writer
// doubles as the frame-batching byte threshold: a pending batch is
// pushed to the kernel when it reaches this size even if responses are
// still being produced.
const sockBufSize = 64 << 10

// readBufSize returns the session read-buffer size: the full batching
// buffer normally, a single control frame when batching is ablated — so
// the NoBatch baseline consumes inbound frames one syscall at a time,
// like the unbatched path it stands in for.
func readBufSize(noBatch bool) int {
	if noBatch {
		return wire.ControlSize
	}
	return sockBufSize
}

// srvStream is the server-side record of one open logical stream: its QoS
// class and scheduler weight, as announced by StreamOpen. Owned by the
// session goroutine.
type srvStream struct {
	class  uint8
	weight int
}

// volume is one exported store with its optional sharded block cache
// and the per-volume disk-pipeline components (each nil when its toggle
// is off).
type volume struct {
	store BlockStore
	cache *blockCache
	pipe  *diskPipe       // DiskWorkers > 0 (without DiskQ): async store I/O
	dq    *diskQueue      // DiskQ: batched submission/completion store I/O
	wb    *destager       // cache + write-behind: dirty-block destaging
	pf    *prefetchWorker // cache + prefetch: sequential read-ahead
}

// Server exports volumes over TCP.
type Server struct {
	cfg    ServerConfig
	pool   *bufpool.Pool // nil when cfg.NoPool: Get/Put degrade to make/no-op
	om     *serverObs    // nil when cfg.Metrics is unset
	flight *obs.Flight   // nil when cfg.Flight is unset; every Record no-ops
	sched  *sched        // nil unless cfg.SchedWorkers > 0

	// volumes is a copy-on-write map: lookups on the request hot path are
	// a single atomic load, with no lock shared across sessions. addMu
	// serializes the (rare) writers.
	volumes atomic.Pointer[map[uint32]*volume]
	addMu   sync.Mutex

	ln       net.Listener
	sessions atomic.Int64
	served   atomic.Int64
	nextSess atomic.Uint64
	closed   atomic.Bool
	done     chan struct{} // closed by Close; stops background goroutines

	// Live (not cumulative) session and stream population, plus the
	// cumulative stream count — the gauges behind v3d -stats and the
	// netv3_srv_{sessions,streams}_active metrics.
	sessActive    atomic.Int64
	streamsActive atomic.Int64
	streamsTotal  atomic.Int64

	// connMu/conns track live session sockets so Close can sever them;
	// without this a closed server would keep serving established
	// sessions and peers would never observe the shutdown.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// NewServer returns a server with no volumes; add them with AddVolume.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Credits <= 0 {
		cfg.Credits = 64
	}
	if cfg.MaxXfer == 0 {
		cfg.MaxXfer = 1 << 20
	}
	if cfg.MaxStreams <= 0 || cfg.MaxStreams > int(^uint16(0)) {
		cfg.MaxStreams = int(^uint16(0))
	}
	s := &Server{cfg: cfg, done: make(chan struct{}), conns: make(map[net.Conn]struct{})}
	s.flight = cfg.Flight
	s.flight.SetKindNames(flightKindNames)
	if !cfg.NoPool {
		s.pool = bufpool.New()
	}
	s.volumes.Store(&map[uint32]*volume{})
	s.om = newServerObs(cfg.Metrics, s)
	if cfg.SchedWorkers > 0 {
		s.sched = newSched(s, cfg.SchedWorkers, cfg.AdmitLimit)
	}
	return s
}

// AddVolume exports store under the given volume ID.
func (s *Server) AddVolume(id uint32, store BlockStore) {
	s.addMu.Lock()
	defer s.addMu.Unlock()
	v := &volume{store: store}
	if s.cfg.CacheBlocks > 0 {
		v.cache = newBlockCache(s.cfg.CacheBlocks, s.cfg.CacheShards, s.pool)
	}
	if !s.closed.Load() {
		if s.cfg.DiskQ {
			dq, err := newDiskQueue(s, v)
			if err != nil {
				// Should not happen — the portable backend has no failure
				// mode — but a volume without its queue still works through
				// the classic paths.
				s.logf("netv3: vol %d disk queue: %v", id, err)
			} else {
				v.dq = dq
			}
		} else if s.cfg.DiskWorkers > 0 {
			v.pipe = newDiskPipe(s, v)
		}
		if v.cache != nil && !s.cfg.NoWriteBehind {
			v.wb = newDestager(s, v)
			go v.wb.run(s.done)
		}
		if v.cache != nil && !s.cfg.NoPrefetch {
			v.pf = newPrefetchWorker(v)
			go v.pf.run(s, s.done)
		}
	}
	old := *s.volumes.Load()
	next := make(map[uint32]*volume, len(old)+1)
	for k, ov := range old {
		next[k] = ov
	}
	next[id] = v
	s.volumes.Store(&next)
}

// lookup resolves a volume ID lock-free.
func (s *Server) lookup(id uint32) *volume {
	return (*s.volumes.Load())[id]
}

// VolumeSize returns the size of volume id, or 0 if absent.
func (s *Server) VolumeSize(id uint32) int64 {
	if v := s.lookup(id); v != nil {
		return v.store.Size()
	}
	return 0
}

// Served returns the number of requests completed.
func (s *Server) Served() int64 { return s.served.Load() }

// Sessions returns the number of sessions accepted.
func (s *Server) Sessions() int64 { return s.sessions.Load() }

// SessionsActive returns the number of sessions currently established.
func (s *Server) SessionsActive() int64 { return s.sessActive.Load() }

// StreamsActive returns the number of logical streams currently open
// across all sessions.
func (s *Server) StreamsActive() int64 { return s.streamsActive.Load() }

// StreamsTotal returns the cumulative number of logical streams opened.
func (s *Server) StreamsTotal() int64 { return s.streamsTotal.Load() }

// CacheStats returns aggregate (hits, misses) across volumes.
func (s *Server) CacheStats() (hits, misses int64) {
	for _, v := range *s.volumes.Load() {
		if v.cache != nil {
			h, m := v.cache.stats()
			hits += h
			misses += m
		}
	}
	return hits, misses
}

// PoolStats returns buffer-pool counters (zero when pooling is off).
func (s *Server) PoolStats() bufpool.Stats { return s.pool.Stats() }

// Listen binds addr and returns the bound address (use ":0" for an
// ephemeral port).
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	return ln.Addr(), nil
}

// ListenOn adopts an existing listener instead of binding a fresh
// socket — the hook that lets a fault injector (internal/faultnet)
// interpose on every session a test server accepts. Call Serve after.
func (s *Server) ListenOn(ln net.Listener) {
	s.ln = ln
}

// Serve accepts sessions until Close. Call after Listen.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		if s.closed.Load() {
			s.connMu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.sessions.Add(1)
		go s.session(conn)
	}
}

// ListenAndServe combines Listen and Serve on addr.
func (s *Server) ListenAndServe(addr string) error {
	if _, err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Close stops accepting, stops the background disk-path goroutines
// (workers drain their queues first), severs every live session, and
// closes the listener. Per volume the order matters: the destager and
// prefetcher finish first (their final passes may still submit to the
// disk queue), then the queue itself closes, draining every in-flight
// completion before the dispatcher exits. Sessions racing this see
// TrySubmit fail and take the classic path.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.done)
	for _, v := range *s.volumes.Load() {
		if v.wb != nil {
			<-v.wb.stopped
		}
		if v.pf != nil {
			<-v.pf.stopped
		}
		if v.pipe != nil {
			v.pipe.shutdown()
		}
		if v.dq != nil {
			v.dq.close()
		}
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.conns = make(map[net.Conn]struct{})
	s.connMu.Unlock()
	// The scheduler closes last: sessions racing the shutdown see
	// tryEnqueue fail and fall back to inline execution, and by this point
	// the destagers/prefetchers (its background producers) have stopped and
	// the conns are severed, so the drain is short.
	if s.sched != nil {
		s.sched.close()
	}
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// obsDispatch folds one inline dispatch — frame decoded → response
// buffered or disk task queued — into the dispatch histogram. t0 is zero
// when metrics are off (or the request took the goroutine ablation
// path), making the disabled case a single branch.
func (s *Server) obsDispatch(t0 int64) {
	if t0 != 0 {
		s.om.dispatch.Observe(obs.Now() - t0)
	}
}

// respWriter serializes response frames and bodies onto one session's
// socket. In batching mode responses accumulate in a bufio.Writer and
// the session loop issues one flush syscall when the inbound request
// burst drains — the TCP analogue of the paper's interrupt batching
// (Section 3.2): just as kDSA withholds completion interrupts while more
// completions are imminent, the session withholds the flush while more
// requests (hence more responses) are already buffered. The byte
// threshold is the bufio buffer itself: a batch that reaches sockBufSize
// is pushed to the kernel mid-stream.
//
// With noBatch the writer reproduces the seed's behavior exactly: no
// write buffering, one syscall for the frame and a second for the body.
// With noPool it also reproduces the seed's per-frame Marshal
// allocation instead of staging frames in the scratch buffer.
type respWriter struct {
	mu      sync.Mutex
	conn    io.Writer
	bw      *bufio.Writer // nil when noBatch
	noBatch bool
	noPool  bool
	scratch [wire.ControlSize]byte // frame staging; guarded by mu

	// responders counts scheduler workers currently inside respondSched:
	// a worker flushes only when it is the last one out, so a burst of
	// concurrent completions coalesces into one syscall — the adaptive
	// flush discipline, ported to multi-producer response traffic.
	responders atomic.Int32

	// Async completion-writer state (scheduler sessions only). A session
	// multiplexing hundreds of logical streams can have megabytes of
	// responses outstanding toward one socket; once the kernel send buffer
	// fills, a synchronous flush blocks while holding mu and every
	// scheduler worker trying to complete a request queues up behind the
	// socket — the worker pool drains at wire speed instead of device
	// speed. In async mode workers append encoded responses to q (a
	// memcpy) and return to the pool; the dedicated writeLoop goroutine
	// swaps the queue out and writes it with mu released, so socket
	// backpressure stalls only the writer and concurrent completions
	// coalesce into one large write. This is the completion-queue drain
	// from the paper's server (Section 4): workers post completions, one
	// agent moves them to the wire.
	async   bool
	q       []byte     // pending response bytes; guarded by mu
	qSpare  []byte     // writeLoop's drained buffer, recycled; guarded by mu
	qCond   *sync.Cond // writeLoop waits here for work
	qSpace  *sync.Cond // producers wait here when q exceeds asyncQMax
	qErr    error      // sticky socket error; poisons all later responds
	qClosed bool
	qWG     sync.WaitGroup

	// Reusable hot-path response structs for inline (batching-mode)
	// dispatch, where the session loop is the only responder. Guarded by
	// mu like scratch.
	rr wire.ReadResp
	wr wire.WriteResp
}

func newRespWriter(conn io.Writer, noBatch, noPool bool) *respWriter {
	w := &respWriter{conn: conn, noBatch: noBatch, noPool: noPool}
	if !noBatch {
		w.bw = bufio.NewWriterSize(conn, sockBufSize)
	}
	return w
}

// asyncQMax bounds the async response queue. Producers (scheduler
// workers) block once the unsent backlog passes it — the same
// backpressure a blocking flush used to apply, minus the convoy: the cap
// is far above what client credits admit in normal operation, so it only
// engages against a peer that stops reading.
const asyncQMax = 16 << 20

// startAsync switches the writer into async completion mode and starts
// writeLoop. closeConn force-closes the session socket, unblocking the
// session read loop when the writer hits a socket error.
func (w *respWriter) startAsync(closeConn func()) {
	w.async = true
	w.qCond = sync.NewCond(&w.mu)
	w.qSpace = sync.NewCond(&w.mu)
	w.qWG.Add(1)
	go w.writeLoop(closeConn)
}

// stopAsync stops accepting responses and waits for writeLoop to drain
// what is already queued (or die on the socket error that ended the
// session).
func (w *respWriter) stopAsync() {
	w.mu.Lock()
	w.qClosed = true
	w.mu.Unlock()
	w.qCond.Broadcast()
	w.qSpace.Broadcast()
	w.qWG.Wait()
}

// writeLoop is the session's single socket writer in async mode: swap
// the pending buffer out under mu, write it with mu released. The two
// buffers ping-pong, so steady state allocates nothing.
func (w *respWriter) writeLoop(closeConn func()) {
	defer w.qWG.Done()
	for {
		w.mu.Lock()
		for len(w.q) == 0 && !w.qClosed {
			w.qCond.Wait()
		}
		if len(w.q) == 0 || w.qErr != nil { // closed and drained, or poisoned
			w.mu.Unlock()
			return
		}
		buf := w.q
		w.q = w.qSpare[:0]
		w.mu.Unlock()
		w.qSpace.Broadcast()
		_, err := w.conn.Write(buf)
		w.mu.Lock()
		w.qSpare = buf[:0]
		if err != nil {
			w.qErr = err
			w.q = nil
			w.mu.Unlock()
			w.qSpace.Broadcast()
			closeConn()
			return
		}
		w.mu.Unlock()
	}
}

// qAppend copies one frame plus optional body into the async queue and
// wakes writeLoop. Call with mu held.
func (w *respWriter) qAppend(frame, body []byte) error {
	for len(w.q) >= asyncQMax && w.qErr == nil && !w.qClosed {
		w.qSpace.Wait()
	}
	if w.qErr != nil {
		return w.qErr
	}
	if w.qClosed {
		return net.ErrClosed
	}
	w.q = append(w.q, frame...)
	w.q = append(w.q, body...)
	w.qCond.Signal()
	return nil
}

// frame encodes m either into the shared scratch buffer (pooling on) or
// a fresh allocation (noPool, the seed's per-message cost). Call with mu
// held.
func (w *respWriter) frame(m wire.Message) []byte {
	if w.noPool {
		return wire.Marshal(m)
	}
	wire.MarshalInto(w.scratch[:], m)
	return w.scratch[:]
}

// send writes one response frame plus optional body and pushes it to
// the kernel immediately. It is the control-plane path (handshake,
// pong, flow-control rejections) and the whole data path when batching
// is off — where frame and body go out as two separate unbuffered
// writes, like the seed.
func (w *respWriter) send(m wire.Message, body []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.async {
		return w.qAppend(w.frame(m), body)
	}
	if w.noBatch {
		if _, err := w.conn.Write(w.frame(m)); err != nil {
			return err
		}
		if len(body) > 0 {
			if _, err := w.conn.Write(body); err != nil {
				return err
			}
		}
		return nil
	}
	if _, err := w.bw.Write(w.frame(m)); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.bw.Write(body); err != nil {
			return err
		}
	}
	return w.bw.Flush()
}

// buffer appends one response frame plus optional body to the pending
// batch without flushing; the session loop flushes via flushPending when
// the inbound burst drains. Batching mode only.
func (w *respWriter) buffer(m wire.Message, body []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.async {
		return w.qAppend(w.frame(m), body)
	}
	if _, err := w.bw.Write(w.frame(m)); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.bw.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// respMode selects how a response reaches the socket.
type respMode int

const (
	// respGo writes and flushes immediately — goroutine dispatch, noBatch,
	// and the control plane.
	respGo respMode = iota
	// respInline buffers; the session loop flushes when the inbound burst
	// drains.
	respInline
	// respSched buffers and flushes only when no other scheduler worker is
	// mid-response — the multi-producer adaptive flush.
	respSched
)

// respond routes a response through the batch (inline dispatch), the
// scheduler's last-responder-flushes path, or straight to the socket
// (goroutine dispatch, noBatch).
func (w *respWriter) respond(m wire.Message, body []byte, mode respMode) error {
	switch mode {
	case respInline:
		return w.buffer(m, body)
	case respSched:
		return w.respondSched(m, body)
	}
	return w.send(m, body)
}

// respondSched writes one response from a scheduler worker. Unlike the
// session loop, workers have no "burst is over" signal to hang a flush
// on, so the discipline is: buffer under mu, and flush only if no other
// worker is already waiting to append — the last responder out pushes the
// whole batch in one syscall. The responders increment happens before
// taking mu, so a waiter is visible to the current lock holder and
// suppresses its flush.
func (w *respWriter) respondSched(m wire.Message, body []byte) error {
	if w.bw == nil || w.async {
		return w.send(m, body)
	}
	w.responders.Add(1)
	w.mu.Lock()
	w.responders.Add(-1)
	var err error
	if _, err = w.bw.Write(w.frame(m)); err == nil && len(body) > 0 {
		_, err = w.bw.Write(body)
	}
	if err == nil && w.responders.Load() == 0 {
		err = w.bw.Flush()
	}
	w.mu.Unlock()
	return err
}

// flushPending pushes any buffered responses to the kernel.
func (w *respWriter) flushPending() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.async {
		return w.qErr // writeLoop pushes continuously; only report death
	}
	if w.bw == nil || w.bw.Buffered() == 0 {
		return nil
	}
	return w.bw.Flush()
}

// session speaks the V3 protocol on one connection. Control messages are
// fixed 64-byte frames; write payloads follow their Write message, read
// payloads follow the ReadResp.
//
// Dispatch depends on the batching mode. Batching on: requests execute
// inline in this loop (no per-request goroutine), responses accumulate
// in the respWriter, and one flush goes out when no further request
// frame is already buffered — the paper's completion pipeline, which
// also lets the loop reuse one decoded message and one response struct
// for the whole session. Batching off (the ablation baseline): each
// request runs in its own goroutine and each response is written
// unbuffered, the seed's dispatch.
func (s *Server) session(conn net.Conn) {
	defer func() {
		conn.Close()
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
	}()
	inline := !s.cfg.NoBatch
	mode := respGo
	if inline {
		mode = respInline
	}
	br := bufio.NewReaderSize(conn, readBufSize(s.cfg.NoBatch))
	var frame [wire.ControlSize]byte
	msg, err := wire.ReadFrom(br)
	if err != nil {
		s.logf("netv3: handshake read: %v", err)
		return
	}
	connect, ok := msg.(*wire.Connect)
	if !ok {
		s.logf("netv3: expected Connect, got %v", wire.TypeOf(msg))
		return
	}
	credits := s.cfg.Credits
	if w := int(connect.WantCreds); w > 0 && w < credits {
		credits = w
	}
	fc := flow.NewServer(credits)
	w := newRespWriter(conn, s.cfg.NoBatch, s.cfg.NoPool)
	// Feature negotiation: the reply carries the intersection of what the
	// client advertised and what this server speaks. An old client encodes
	// zeros in the (formerly padding) feature field, so the intersection is
	// empty and both sides keep the original protocol.
	srvFeats := wire.FeatureStreams | wire.FeatureTrace
	if s.cfg.NoTrace {
		srvFeats &^= wire.FeatureTrace
	}
	feats := connect.Features & srvFeats
	resp := &wire.ConnectResp{
		Status: wire.StatusOK, Credits: uint16(credits),
		MaxXfer: s.cfg.MaxXfer, SessionID: s.nextSess.Add(1),
		Features: feats,
	}
	if feats&wire.FeatureStreams != 0 {
		resp.MaxStreams = uint16(s.cfg.MaxStreams)
	}
	sessID := resp.SessionID
	if err := w.send(resp, nil); err != nil {
		return
	}
	s.sessActive.Add(1)
	defer s.sessActive.Add(-1)
	// streams is the session's logical-stream registry: class and weight
	// per open stream, fed by StreamOpen/StreamClose control frames. Only
	// the session goroutine touches it. Stream 0 — the legacy/root session
	// — is always implicitly open and foreground.
	streams := make(map[uint32]*srvStream)
	defer func() { s.streamsActive.Add(-int64(len(streams))) }()
	// tenant resolves a frame's stream id to its scheduler coordinates,
	// implicitly opening unknown streams as foreground (a data frame can
	// legitimately precede its re-announced StreamOpen after a client
	// reconnect).
	tenant := func(stream uint32) (key uint64, bg bool, weight int) {
		weight = 1
		if st := streams[stream]; st != nil {
			bg = st.class == wire.ClassBackground
			if st.weight > 0 {
				weight = st.weight
			}
		} else if stream != 0 {
			streams[stream] = &srvStream{class: wire.ClassForeground}
			s.streamsActive.Add(1)
			s.streamsTotal.Add(1)
		}
		return tenantKey(sessID, stream), bg, weight
	}
	sched := s.sched
	if sched != nil && w.bw != nil {
		// Scheduler sessions complete requests from pool workers; route
		// their responses through the async completion writer so a full
		// socket never stalls the shared pool. The handshake above went
		// out synchronously, so the ConnectResp error path stays simple.
		w.startAsync(func() { conn.Close() })
		defer w.stopAsync()
	}
	var sc *sessCtx // completion lane, with disk workers or the disk queue
	if (s.cfg.DiskWorkers > 0 || s.cfg.DiskQ) && sched == nil {
		sc = newSessCtx(s, w, credits)
		defer func() {
			// Kill the socket first so no new requests arrive, then wait
			// out in-flight worker tasks before closing the lane.
			conn.Close()
			sc.close()
		}()
	}
	var pf prefetcher    // per-session sequential-read detector
	var rdMsg wire.Read  // reused by inline dispatch
	var wrMsg wire.Write // reused by inline dispatch
	var obsTick uint     // drives 1-in-traceSample dispatch timing
	for {
		// Adaptive flush: if no complete request frame is already
		// buffered, the burst is over — push the batched responses out
		// before blocking for more work.
		if inline && br.Buffered() < wire.ControlSize {
			if err := w.flushPending(); err != nil {
				return
			}
		}
		t, err := wire.ReadFrame(br, &frame)
		if err != nil {
			if err != io.EOF {
				s.logf("netv3: session read: %v", err)
			}
			return
		}
		// Inline-dispatch start stamp; zero when metrics are off or this
		// request falls outside the 1-in-traceSample sample.
		var dt0 int64
		if s.om != nil {
			if obsTick%traceSample == 0 {
				dt0 = obs.Now()
			}
			obsTick++
		}
		switch t {
		case wire.TRead:
			// Reads reserve no server-side slot: flow-control slots name
			// the staging buffers for payloads *arriving at* the server,
			// and a read carries none — its response buffer is accounted
			// by the credit the client holds until the ReadResp returns
			// it. So there is nothing to reserve here and fc is untouched.
			m := &rdMsg
			if !inline {
				m = new(wire.Read)
			}
			if err := wire.UnmarshalInto(frame[:], m); err != nil {
				return
			}
			arr := traceArr(m.Trace)
			s.flight.Record(fkDispatch, m.Trace, uint64(t), uint64(m.Volume))
			if sched != nil {
				s.schedRead(m, w, &pf, tenant, mode, arr)
				s.obsDispatch(dt0)
				continue
			}
			if s.fastRead(m, w, sc, &pf, mode, arr) {
				s.obsDispatch(dt0)
				continue
			}
			if inline {
				s.handleRead(m, w, respInline, arr)
				s.obsDispatch(dt0)
				continue
			}
			go s.handleRead(m, w, respGo, arr)
		case wire.TWrite:
			m := &wrMsg
			if !inline {
				m = new(wire.Write)
			}
			if err := wire.UnmarshalInto(frame[:], m); err != nil {
				return
			}
			if err := fc.Reserve(m.Slot); err != nil {
				s.logf("netv3: %v", err)
				_ = w.respond(&wire.WriteResp{Header: wire.Header{Ack: uint32(m.Seq), Stream: m.Stream},
					ReqID: m.ReqID, Status: wire.StatusEAgain}, nil, mode)
				continue
			}
			// The payload follows the control message on the stream and
			// must be drained before the next frame.
			if m.Length > s.cfg.MaxXfer {
				s.logf("netv3: oversized write %d", m.Length)
				return
			}
			body := s.pool.Get(int(m.Length))
			if _, err := io.ReadFull(br, body); err != nil {
				s.pool.Put(body)
				return
			}
			// The slot names the staging buffer for the payload *in transit*;
			// those bytes are now off the stream, so release it immediately
			// rather than at request completion. Frames are processed in
			// order on one goroutine, which makes this the contract the
			// client's cancellation path relies on: a canceled request's
			// slot, reused on the same session, reaches this Reserve only
			// after the canceled write's payload already passed through here.
			// (fc is now touched only by the session loop — no lock.)
			_ = fc.Release(m.Slot)
			arr := traceArr(m.Trace)
			s.flight.Record(fkDispatch, m.Trace, uint64(t), uint64(m.Volume))
			v := s.lookup(m.Volume)
			if v != nil && v.wb != nil {
				if !v.wb.overWater() {
					// Write-behind: absorb into the cache as dirty blocks
					// and acknowledge immediately; the destager owns the
					// store write, Flush is the durability barrier.
					st := wire.StatusOK
					if err := v.absorbWrite(body, int64(m.Offset)); err != nil {
						st = wire.StatusEIO
						s.logf("netv3: write-behind vol %d [%d,+%d): %v", m.Volume, m.Offset, m.Length, err)
					}
					wr := &w.wr
					if !inline {
						wr = new(wire.WriteResp)
					}
					*wr = wire.WriteResp{Header: wire.Header{Ack: uint32(m.Seq), Stream: m.Stream},
						ReqID: m.ReqID, Status: st, Credits: 1}
					fillSpan(&wr.Header, &wr.SrvSpan, m.Trace, arr, arr)
					s.served.Add(1)
					_ = w.respond(wr, nil, mode)
					s.pool.Put(body)
					s.obsDispatch(dt0)
					continue
				}
				// Over the dirty high-watermark: this write goes through
				// the slow path; prod the destager to start catching up.
				v.wb.kickNow()
			}
			if sched != nil {
				key, bg, weight := tenant(m.Stream)
				mm := new(wire.Write)
				*mm = *m
				ok, qd := sched.tryEnqueue(key, weight, bg, func() {
					s.handleWrite(mm, body, w, respSched, arr)
					s.pool.Put(body)
				})
				if !ok {
					s.pool.Put(body)
					s.noteShed(m.Trace, key, qd)
					_ = w.respond(&wire.WriteResp{Header: wire.Header{Ack: uint32(m.Seq), Stream: m.Stream},
						ReqID: m.ReqID, Status: wire.StatusEOverloaded, Credits: 1,
						RetryAfterMS: sched.retryAfterMS(qd)}, nil, mode)
				}
				s.obsDispatch(dt0)
				continue
			}
			if v != nil && v.dq != nil && v.wb == nil {
				// Write-through volume on the disk queue: the store write
				// rides the SQ and the ack comes back through the completion
				// lane. (Write-behind volumes never reach here below the
				// high-watermark, and above it writeThrough must stay
				// synchronous — it takes the destage mutex, which a
				// completion callback may never block on.)
				if checkStoreRange(v.store.Size(), int64(m.Offset), len(body)) == nil {
					sc.wg.Add(1)
					if v.dq.submitWrite(sc, m.Seq, m.ReqID, body, int64(m.Offset), m.Trace, arr) {
						s.obsDispatch(dt0)
						continue
					}
					sc.wg.Done()
				}
			}
			if v != nil && v.pipe != nil {
				t := diskTask{sc: sc, kind: taskWrite, seq: m.Seq, reqID: m.ReqID,
					off: int64(m.Offset), body: body}
				sc.wg.Add(1)
				if v.pipe.trySubmit(t) {
					s.obsDispatch(dt0)
					continue
				}
				sc.wg.Done()
			}
			if inline {
				s.handleWrite(m, body, w, respInline, arr)
				s.pool.Put(body)
				s.obsDispatch(dt0)
				continue
			}
			go func() {
				s.handleWrite(m, body, w, respGo, arr)
				s.pool.Put(body)
			}()
		case wire.TFlush:
			m := new(wire.Flush)
			if err := wire.UnmarshalInto(frame[:], m); err != nil {
				return
			}
			arr := traceArr(m.Trace)
			s.flight.Record(fkDispatch, m.Trace, uint64(t), uint64(m.Volume))
			if sched != nil {
				// Flush rides the scheduler like any other foreground op —
				// a durability barrier is latency-sensitive to its issuer.
				// The worker running it may block in destage+fsync, which is
				// safe: the pass never waits on another scheduler task.
				key, bg, weight := tenant(m.Stream)
				ok, qd := sched.tryEnqueue(key, weight, bg, func() { s.handleFlush(m, w, arr) })
				if !ok {
					s.noteShed(m.Trace, key, qd)
					_ = w.respond(&wire.FlushResp{Header: wire.Header{Ack: uint32(m.Seq), Stream: m.Stream},
						ReqID: m.ReqID, Status: wire.StatusEOverloaded, Credits: 1,
						RetryAfterMS: sched.retryAfterMS(qd)}, nil, mode)
				}
				s.obsDispatch(dt0)
				continue
			}
			// Flush is rare and slow (full destage + fsync), so it always
			// runs on its own goroutine; its response takes the direct
			// send path and may complete out of order, which the client
			// matches by Ack like any other response.
			go s.handleFlush(m, w, arr)
		case wire.TStreamOpen:
			m := new(wire.StreamOpen)
			if err := wire.UnmarshalInto(frame[:], m); err != nil {
				return
			}
			sr := &wire.StreamOpenResp{Header: wire.Header{Stream: m.Stream}, Status: wire.StatusOK}
			switch {
			case m.Stream == 0:
				// Stream 0 is the implicit root session; "opening" it just
				// re-grants (harmless, and a cheap client probe).
				sr.Credits = uint16(credits)
			case streams[m.Stream] == nil && len(streams) >= s.cfg.MaxStreams:
				sr.Status = wire.StatusEOverloaded
				sr.RetryAfterMS = 10
			default:
				// New stream, or a reconnecting client re-announcing one this
				// session already knows — re-registration is idempotent and
				// the grant is re-sent (the client drops an unexpected reply).
				if streams[m.Stream] == nil {
					s.streamsActive.Add(1)
					s.streamsTotal.Add(1)
				}
				streams[m.Stream] = &srvStream{class: m.Class, weight: int(m.Weight)}
				grant := int(m.WantCreds)
				if grant <= 0 {
					grant = 1
				}
				if grant > credits {
					grant = credits
				}
				sr.Credits = uint16(grant)
			}
			// Control-plane reply: direct send, like the handshake.
			if err := w.send(sr, nil); err != nil {
				return
			}
		case wire.TStreamClose:
			m := new(wire.StreamClose)
			if err := wire.UnmarshalInto(frame[:], m); err != nil {
				return
			}
			if m.Stream != 0 && streams[m.Stream] != nil {
				delete(streams, m.Stream)
				s.streamsActive.Add(-1)
			}
		case wire.TPing:
			var seq uint64
			if m, err := wire.Unmarshal(frame[:]); err == nil {
				seq = m.Hdr().Seq
			}
			_ = w.send(&wire.Pong{Header: wire.Header{Seq: seq}}, nil)
		case wire.TDisconnect:
			return
		default:
			s.logf("netv3: unexpected %v", t)
			return
		}
	}
}

// handleRead serves one read. With inline dispatch the response struct
// is the respWriter's reusable one, so a cache-hit read completes with
// zero heap allocations; goroutine dispatch allocates per response like
// the seed.
//
// arr is the traced request's arrival stamp (zero untraced): the gap to
// handler entry is the span block's queue wait — on the scheduler path
// that is the real lane wait, since the worker runs this closure.
func (s *Server) handleRead(m *wire.Read, w *respWriter, mode respMode, arr int64) {
	start := traceArr(m.Trace)
	var rr *wire.ReadResp
	if mode == respInline {
		rr = &w.rr
		*rr = wire.ReadResp{}
	} else {
		rr = new(wire.ReadResp)
	}
	rr.Stream = m.Stream
	rr.Ack = uint32(m.Seq)
	rr.ReqID = m.ReqID
	rr.Credits = 1
	v := s.lookup(m.Volume)
	if v == nil {
		rr.Status = wire.StatusENoVolume
		_ = w.respond(rr, nil, mode)
		return
	}
	if m.Length > s.cfg.MaxXfer {
		rr.Status = wire.StatusEInval
		_ = w.respond(rr, nil, mode)
		return
	}
	// Validate the range up front: the cached path slices per-block
	// buffers from wire-supplied arithmetic, so a hostile offset (say,
	// MaxInt64) must be rejected before it reaches any buffer math.
	if checkStoreRange(v.store.Size(), int64(m.Offset), int(m.Length)) != nil {
		rr.Status = wire.StatusEInval
		_ = w.respond(rr, nil, mode)
		return
	}
	body := s.pool.Get(int(m.Length))
	var err error
	if v.cache != nil {
		err = v.cachedRead(body, int64(m.Offset))
	} else {
		err = v.store.ReadAt(body, int64(m.Offset))
	}
	rr.Status = wire.StatusOK
	if err != nil {
		rr.Status = wire.StatusEIO
		s.pool.Put(body)
		body = nil
		s.logf("netv3: read: %v", err)
	}
	s.served.Add(1)
	rr.Length = uint32(len(body))
	fillSpan(&rr.Header, &rr.SrvSpan, m.Trace, arr, start)
	_ = w.respond(rr, body, mode)
	s.pool.Put(body)
}

func (s *Server) handleWrite(m *wire.Write, body []byte, w *respWriter, mode respMode, arr int64) {
	start := traceArr(m.Trace)
	var wr *wire.WriteResp
	if mode == respInline {
		wr = &w.wr
		*wr = wire.WriteResp{}
	} else {
		wr = new(wire.WriteResp)
	}
	wr.Stream = m.Stream
	wr.Ack = uint32(m.Seq)
	wr.ReqID = m.ReqID
	wr.Credits = 1
	v := s.lookup(m.Volume)
	wr.Status = wire.StatusOK
	if v == nil {
		wr.Status = wire.StatusENoVolume
	} else if err := v.write(body, int64(m.Offset)); err != nil {
		wr.Status = wire.StatusEIO
		s.logf("netv3: write: %v", err)
	}
	s.served.Add(1)
	fillSpan(&wr.Header, &wr.SrvSpan, m.Trace, arr, start)
	_ = w.respond(wr, nil, mode)
}

// schedRead is read dispatch under the shared scheduler: the session loop
// feeds the sequential-read detector and serves whole-cache hits inline
// (its serial fast path, same as fastRead), and everything else becomes a
// foreground-lane task executing the classic read synchronously on a
// scheduler worker. Admission refusals answer EOverloaded with a backlog-
// sized retry hint. tenant is the session's stream→scheduler resolver.
func (s *Server) schedRead(m *wire.Read, w *respWriter, pf *prefetcher,
	tenant func(uint32) (uint64, bool, int), mode respMode, arr int64) {
	v := s.lookup(m.Volume)
	if v != nil && m.Length <= s.cfg.MaxXfer &&
		checkStoreRange(v.store.Size(), int64(m.Offset), int(m.Length)) == nil {
		if v.pf != nil {
			strideOK := v.dq != nil && v.dq.q.Depth() >= 2*maxPrefetchBlocks
			blks, cancel, ok := pf.observe(m.Volume, int64(m.Offset), int64(m.Length), strideOK)
			if len(cancel) > 0 {
				v.cache.prefetchDiscard(cancel)
			}
			if ok {
				v.pf.submit(blks)
			}
		}
		if v.cache != nil {
			body := s.pool.Get(int(m.Length))
			if v.tryCachedRead(body, int64(m.Offset)) {
				rr := &w.rr
				if mode != respInline {
					rr = new(wire.ReadResp)
				}
				*rr = wire.ReadResp{Header: wire.Header{Ack: uint32(m.Seq), Stream: m.Stream},
					ReqID: m.ReqID, Status: wire.StatusOK, Credits: 1, Length: uint32(len(body))}
				fillSpan(&rr.Header, &rr.SrvSpan, m.Trace, arr, arr)
				s.served.Add(1)
				_ = w.respond(rr, body, mode)
				s.pool.Put(body)
				return
			}
			s.pool.Put(body)
		}
	}
	key, bg, weight := tenant(m.Stream)
	mm := new(wire.Read)
	*mm = *m
	ok, qd := s.sched.tryEnqueue(key, weight, bg, func() { s.handleRead(mm, w, respSched, arr) })
	if !ok {
		s.noteShed(m.Trace, key, qd)
		_ = w.respond(&wire.ReadResp{Header: wire.Header{Ack: uint32(m.Seq), Stream: m.Stream},
			ReqID: m.ReqID, Status: wire.StatusEOverloaded, Credits: 1,
			RetryAfterMS: s.sched.retryAfterMS(qd)}, nil, mode)
	}
}

// noteShed records an admission-control refusal in the flight recorder
// and auto-captures an incident dump — an overload is exactly the moment
// the ring's recent history is worth keeping.
func (s *Server) noteShed(trace, key uint64, backlog int) {
	if s.flight == nil {
		return
	}
	s.flight.Record(fkShed, trace, key, uint64(backlog))
	s.flight.Incident("sched-shed")
}

// fastRead is the pipelined dispatch for reads: it feeds the session's
// sequential-read detector, serves whole-cache hits inline (a memcpy on
// the session goroutine), and hands misses to the volume's disk workers
// so one slow store read cannot stall the requests queued behind it. A
// false return sends the request down the classic path, which also owns
// all error responses.
func (s *Server) fastRead(m *wire.Read, w *respWriter, sc *sessCtx, pf *prefetcher, mode respMode, arr int64) bool {
	v := s.lookup(m.Volume)
	if v == nil || m.Length > s.cfg.MaxXfer {
		return false
	}
	if v.pf != nil {
		// Strided read-ahead needs the batched queue AND ring headroom: a
		// strided window is one vectored batch of up to maxPrefetchBlocks
		// scattered single-block reads, and speculation that can fill half
		// the ring starves demand misses queued behind it.
		strideOK := v.dq != nil && v.dq.q.Depth() >= 2*maxPrefetchBlocks
		blks, cancel, ok := pf.observe(m.Volume, int64(m.Offset), int64(m.Length), strideOK)
		if len(cancel) > 0 {
			v.cache.prefetchDiscard(cancel)
		}
		if ok {
			v.pf.submit(blks)
		}
	}
	if v.pipe == nil && v.dq == nil {
		return false
	}
	body := s.pool.Get(int(m.Length))
	if v.cache != nil && v.tryCachedRead(body, int64(m.Offset)) {
		var rr *wire.ReadResp
		if mode == respInline {
			rr = &w.rr
		} else {
			rr = new(wire.ReadResp)
		}
		*rr = wire.ReadResp{Header: wire.Header{Ack: uint32(m.Seq), Stream: m.Stream},
			ReqID: m.ReqID, Status: wire.StatusOK, Credits: 1, Length: uint32(len(body))}
		fillSpan(&rr.Header, &rr.SrvSpan, m.Trace, arr, arr)
		s.served.Add(1)
		_ = w.respond(rr, body, mode)
		s.pool.Put(body)
		return true
	}
	if v.dq != nil {
		// Miss on a disk-queue volume: the store read rides the SQ without
		// any shard lock held for the device time. The submit-time check
		// proves no block in the range carries uncommitted write-behind
		// bytes (those must come from the cache, via the classic path) and
		// snapshots the covered shards' write epochs; completion-time
		// revalidation catches the rare write that lands mid-flight.
		off := int64(m.Offset)
		if checkStoreRange(v.store.Size(), off, len(body)) != nil {
			s.pool.Put(body)
			return false // classic path owns the error response
		}
		var epochs []shardEpoch
		if v.cache != nil {
			startBlk := uint64(off / cacheBlockSize)
			nblocks := int((off+int64(len(body))+cacheBlockSize-1)/cacheBlockSize) - int(startBlk)
			var ok bool
			if epochs, ok = v.cache.demandReadCheck(startBlk, nblocks); !ok {
				s.pool.Put(body)
				return false
			}
		}
		sc.wg.Add(1)
		if v.dq.submitDemandRead(sc, m.Seq, m.ReqID, body, off, epochs, m.Trace, arr) {
			return true
		}
		sc.wg.Done()
		s.pool.Put(body)
		return false
	}
	t := diskTask{sc: sc, kind: taskRead, seq: m.Seq, reqID: m.ReqID, off: int64(m.Offset), body: body}
	sc.wg.Add(1)
	if v.pipe.trySubmit(t) {
		return true
	}
	sc.wg.Done()
	s.pool.Put(body)
	return false
}

// handleFlush serves the wire-level durability barrier: drain the
// volume's write-behind state and fsync the store. Writes acknowledged
// before the Flush was received are durable once it succeeds.
func (s *Server) handleFlush(m *wire.Flush, w *respWriter, arr int64) {
	var t0 int64
	if s.om != nil || s.flight != nil {
		t0 = obs.Now()
	}
	start := traceArr(m.Trace)
	fr := &wire.FlushResp{Header: wire.Header{Ack: uint32(m.Seq), Stream: m.Stream},
		ReqID: m.ReqID, Status: wire.StatusOK, Credits: 1}
	v := s.lookup(m.Volume)
	if v == nil {
		fr.Status = wire.StatusENoVolume
	} else if err := v.flush(); err != nil {
		fr.Status = wire.StatusEIO
		s.logf("netv3: flush vol %d: %v", m.Volume, err)
	}
	if t0 != 0 {
		d := obs.Now() - t0
		if s.om != nil {
			s.om.flushDur.Observe(d)
		}
		s.flight.Record(fkFlush, m.Trace, uint64(m.Volume), uint64(d))
	}
	s.served.Add(1)
	fillSpan(&fr.Header, &fr.SrvSpan, m.Trace, arr, start)
	_ = w.send(fr, nil)
}

// DiskStats aggregates disk-pipeline counters across volumes.
type DiskStats struct {
	// DirtyBlocks and OrphanBlocks together are the volume of acked but
	// not yet committed write-behind data, in 8 KB blocks.
	DirtyBlocks  int64
	OrphanBlocks int64
	// DestageRuns / DestagedBlocks count coalesced store writes issued by
	// the destagers; DestageBatchHist buckets runs by size: 1, 2, ≤4, ≤8,
	// ≤16, ≤32, ≤64 blocks.
	DestageRuns      int64
	DestagedBlocks   int64
	DestageBatchHist [destageHistBuckets]int64
	// WriteThroughFallbacks counts writes bounced to the synchronous path
	// at the dirty high-watermark.
	WriteThroughFallbacks int64
	PrefetchFills         int64 // blocks installed by read-ahead
	PrefetchHits          int64 // demand hits on those blocks
	PrefetchDropped       int64 // read-ahead requests dropped (worker busy)
	// InlineFallbacks counts requests bounced to classic dispatch because
	// the disk-worker queue was full.
	InlineFallbacks int64
	// Disk-queue counters (DiskQ mode): demand reads and write-through
	// writes completed through the queue, vectored batches submitted,
	// submissions bounced to the classic path (queue full or closing), and
	// reads redone classically after a concurrent write bumped a covered
	// shard's epoch mid-flight.
	DiskQReads     int64
	DiskQWrites    int64
	DiskQBatches   int64
	DiskQFallbacks int64
	DiskQRetries   int64
}

// DiskStats returns cumulative disk-pipeline counters.
func (s *Server) DiskStats() DiskStats {
	var d DiskStats
	for _, v := range *s.volumes.Load() {
		if v.cache != nil {
			d.DirtyBlocks += v.cache.dirtyCount.Load()
			d.OrphanBlocks += v.cache.orphanCount.Load()
			d.PrefetchFills += v.cache.prefFills.Load()
			d.PrefetchHits += v.cache.prefHits.Load()
		}
		if v.wb != nil {
			d.DestageRuns += v.wb.runs.Load()
			d.DestagedBlocks += v.wb.blocks.Load()
			for i := range v.wb.hist {
				d.DestageBatchHist[i] += v.wb.hist[i].Load()
			}
			d.WriteThroughFallbacks += v.wb.wtFallbacks.Load()
		}
		if v.pf != nil {
			d.PrefetchDropped += v.pf.dropped.Load()
		}
		if v.pipe != nil {
			d.InlineFallbacks += v.pipe.inlineFallbacks.Load()
		}
		if v.dq != nil {
			d.DiskQReads += v.dq.reads.Load()
			d.DiskQWrites += v.dq.writes.Load()
			d.DiskQBatches += v.dq.batches.Load()
			d.DiskQFallbacks += v.dq.fallbacks.Load()
			d.DiskQRetries += v.dq.retries.Load()
		}
	}
	return d
}

// cachedRead serves aligned 8 KB blocks from the sharded MQ cache,
// filling misses from the store; each block touches only its own shard
// lock.
func (v *volume) cachedRead(b []byte, off int64) error {
	end := off + int64(len(b))
	for cur := off; cur < end; {
		blk := uint64(cur / cacheBlockSize)
		within := cur % cacheBlockSize
		n := int64(cacheBlockSize - within)
		if end-cur < n {
			n = end - cur
		}
		if err := v.cache.readBlock(v, blk, within, n, b[cur-off:cur-off+n]); err != nil {
			return err
		}
		cur += n
	}
	return nil
}

// readInto fills b from off, through the cache when one exists.
func (v *volume) readInto(b []byte, off int64) error {
	if v.cache != nil {
		return v.cachedRead(b, off)
	}
	return v.store.ReadAt(b, off)
}

// tryCachedRead serves b entirely from resident cache blocks, reporting
// false (with b possibly partially filled) on any miss — the inline
// fast path of the pipelined dispatch, which never touches the store.
func (v *volume) tryCachedRead(b []byte, off int64) bool {
	// checkStoreRange, not a bare off+len comparison: off near MaxInt64
	// wraps end negative, which sails past `end > size` AND makes the
	// loop below run zero iterations — reporting a successful "hit" that
	// returned no bytes at all.
	if checkStoreRange(v.store.Size(), off, len(b)) != nil {
		return false
	}
	end := off + int64(len(b))
	for cur := off; cur < end; {
		blk := uint64(cur / cacheBlockSize)
		within := cur % cacheBlockSize
		n := int64(cacheBlockSize - within)
		if end-cur < n {
			n = end - cur
		}
		if !v.cache.readBlockHit(blk, within, n, b[cur-off:cur-off+n]) {
			return false
		}
		cur += n
	}
	return true
}

// absorbWrite folds a write into the cache as dirty blocks — the
// write-behind acknowledge-then-destage path.
func (v *volume) absorbWrite(b []byte, off int64) error {
	if err := checkStoreRange(v.store.Size(), off, len(b)); err != nil {
		return err
	}
	end := off + int64(len(b))
	for cur := off; cur < end; {
		blk := uint64(cur / cacheBlockSize)
		within := cur % cacheBlockSize
		n := int64(cacheBlockSize - within)
		if end-cur < n {
			n = end - cur
		}
		if err := v.cache.absorb(v, blk, within, n, b[cur-off:cur-off+n]); err != nil {
			if err == errCacheBusy && v.wb != nil {
				// This block's shard has every slot pinned by uncommitted
				// state; commit the rest of the write through the
				// backpressure path. Already-absorbed blocks are dirty and
				// ordered by the destager as usual.
				return v.wb.writeThrough(b[cur-off:], cur)
			}
			return err
		}
		cur += n
	}
	return nil
}

// flush makes all acknowledged writes durable: drain write-behind state,
// then sync the store. On a write-through disk-queue volume the fsync
// rides the queue as a drain barrier, sequencing it after every
// outstanding queued write.
func (v *volume) flush() error {
	if v.wb != nil {
		return v.wb.flush()
	}
	if v.dq != nil {
		return v.dq.fsyncBarrier()
	}
	return v.store.Sync()
}

// write commits to the store and updates any cached blocks. On a
// write-behind volume this is the slow synchronous path (worker tasks
// and high-watermark fallbacks), which must coordinate with the
// destager rather than write around dirty blocks.
func (v *volume) write(b []byte, off int64) error {
	if v.wb != nil {
		return v.wb.writeThrough(b, off)
	}
	if err := v.store.WriteAt(b, off); err != nil {
		return err
	}
	if v.cache == nil {
		return nil
	}
	end := off + int64(len(b))
	for cur := off; cur < end; {
		blk := uint64(cur / cacheBlockSize)
		within := cur % cacheBlockSize
		n := int64(cacheBlockSize - within)
		if end-cur < n {
			n = end - cur
		}
		v.cache.updateBlock(blk, within, n, b[cur-off:cur-off+n])
		cur += n
	}
	return nil
}
