package netv3

import (
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"github.com/v3storage/v3/internal/flow"
	"github.com/v3storage/v3/internal/mqcache"
	"github.com/v3storage/v3/internal/wire"
)

// ServerConfig sizes a netv3 server.
type ServerConfig struct {
	// Credits is the flow-control window granted per session: the number
	// of staging buffer slots, each MaxXfer bytes.
	Credits int
	// MaxXfer bounds a single transfer.
	MaxXfer uint32
	// CacheBlocks enables a server-side MQ read cache of 8 KB blocks per
	// volume (0 disables).
	CacheBlocks int
	// Logger receives connection-level errors; nil silences them.
	Logger *log.Logger
}

// DefaultServerConfig returns sensible defaults: 64 slots of 1 MB.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{Credits: 64, MaxXfer: 1 << 20}
}

const cacheBlockSize = 8192

// volume is one exported store with its optional block cache.
type volume struct {
	store BlockStore
	mu    sync.Mutex
	cache *mqcache.MQ
	data  map[uint64][]byte // cached block payloads
	hits  atomic.Int64
	miss  atomic.Int64
}

// Server exports volumes over TCP.
type Server struct {
	cfg      ServerConfig
	mu       sync.Mutex
	volumes  map[uint32]*volume
	ln       net.Listener
	sessions atomic.Int64
	served   atomic.Int64
	nextSess atomic.Uint64
	closed   atomic.Bool
}

// NewServer returns a server with no volumes; add them with AddVolume.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Credits <= 0 {
		cfg.Credits = 64
	}
	if cfg.MaxXfer == 0 {
		cfg.MaxXfer = 1 << 20
	}
	return &Server{cfg: cfg, volumes: make(map[uint32]*volume)}
}

// AddVolume exports store under the given volume ID.
func (s *Server) AddVolume(id uint32, store BlockStore) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := &volume{store: store}
	if s.cfg.CacheBlocks > 0 {
		v.cache = mqcache.NewMQ(s.cfg.CacheBlocks, 0, 0)
		v.data = make(map[uint64][]byte)
	}
	s.volumes[id] = v
}

// VolumeSize returns the size of volume id, or 0 if absent.
func (s *Server) VolumeSize(id uint32) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.volumes[id]; ok {
		return v.store.Size()
	}
	return 0
}

// Served returns the number of requests completed.
func (s *Server) Served() int64 { return s.served.Load() }

// Sessions returns the number of sessions accepted.
func (s *Server) Sessions() int64 { return s.sessions.Load() }

// CacheStats returns aggregate (hits, misses) across volumes.
func (s *Server) CacheStats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range s.volumes {
		hits += v.hits.Load()
		misses += v.miss.Load()
	}
	return hits, misses
}

// Listen binds addr and returns the bound address (use ":0" for an
// ephemeral port).
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	return ln.Addr(), nil
}

// Serve accepts sessions until Close. Call after Listen.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.sessions.Add(1)
		go s.session(conn)
	}
}

// ListenAndServe combines Listen and Serve on addr.
func (s *Server) ListenAndServe(addr string) error {
	if _, err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Close stops accepting and closes the listener.
func (s *Server) Close() error {
	s.closed.Store(true)
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// session speaks the V3 protocol on one connection. Control messages are
// fixed 64-byte frames; write payloads follow their Write message, read
// payloads follow the ReadResp.
func (s *Server) session(conn net.Conn) {
	defer conn.Close()
	msg, err := wire.ReadFrom(conn)
	if err != nil {
		s.logf("netv3: handshake read: %v", err)
		return
	}
	connect, ok := msg.(*wire.Connect)
	if !ok {
		s.logf("netv3: expected Connect, got %v", wire.TypeOf(msg))
		return
	}
	credits := s.cfg.Credits
	if w := int(connect.WantCreds); w > 0 && w < credits {
		credits = w
	}
	fc := flow.NewServer(credits)
	var wmu sync.Mutex // serializes response frames + bodies
	resp := &wire.ConnectResp{
		Status: wire.StatusOK, Credits: uint16(credits),
		MaxXfer: s.cfg.MaxXfer, SessionID: s.nextSess.Add(1),
	}
	if err := wire.WriteTo(conn, resp); err != nil {
		return
	}
	reply := func(m wire.Message, body []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		if err := wire.WriteTo(conn, m); err != nil {
			return err
		}
		if len(body) > 0 {
			_, err := conn.Write(body)
			return err
		}
		return nil
	}
	var fcMu sync.Mutex
	for {
		msg, err := wire.ReadFrom(conn)
		if err != nil {
			if err != io.EOF {
				s.logf("netv3: session read: %v", err)
			}
			return
		}
		switch m := msg.(type) {
		case *wire.Read:
			fcMu.Lock()
			// Reads carry no slot on the wire in this direction; flow
			// control is enforced by the client. Nothing to reserve.
			fcMu.Unlock()
			go s.handleRead(m, reply)
		case *wire.Write:
			fcMu.Lock()
			err := fc.Reserve(m.Slot)
			fcMu.Unlock()
			if err != nil {
				s.logf("netv3: %v", err)
				_ = reply(&wire.WriteResp{Header: wire.Header{Ack: uint32(m.Seq)},
					ReqID: m.ReqID, Status: wire.StatusEAgain}, nil)
				continue
			}
			// The payload follows the control message on the stream and
			// must be drained before the next frame.
			if m.Length > s.cfg.MaxXfer {
				s.logf("netv3: oversized write %d", m.Length)
				return
			}
			body := make([]byte, m.Length)
			if _, err := io.ReadFull(conn, body); err != nil {
				return
			}
			go func() {
				s.handleWrite(m, body, reply)
				fcMu.Lock()
				_ = fc.Release(m.Slot)
				fcMu.Unlock()
			}()
		case *wire.Ping:
			_ = reply(&wire.Pong{Header: wire.Header{Seq: m.Seq}}, nil)
		case *wire.Disconnect:
			return
		default:
			s.logf("netv3: unexpected %v", wire.TypeOf(msg))
			return
		}
	}
}

func (s *Server) lookup(id uint32) *volume {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.volumes[id]
}

func (s *Server) handleRead(m *wire.Read, reply func(wire.Message, []byte) error) {
	v := s.lookup(m.Volume)
	if v == nil {
		_ = reply(&wire.ReadResp{ReqID: m.ReqID, Status: wire.StatusENoVolume, Credits: 1}, nil)
		return
	}
	if m.Length > s.cfg.MaxXfer {
		_ = reply(&wire.ReadResp{ReqID: m.ReqID, Status: wire.StatusEInval, Credits: 1}, nil)
		return
	}
	body := make([]byte, m.Length)
	var err error
	if v.cache != nil {
		err = v.cachedRead(body, int64(m.Offset))
	} else {
		err = v.store.ReadAt(body, int64(m.Offset))
	}
	status := wire.StatusOK
	if err != nil {
		status = wire.StatusEIO
		body = nil
		s.logf("netv3: read: %v", err)
	}
	s.served.Add(1)
	rr := &wire.ReadResp{ReqID: m.ReqID, Status: status, Credits: 1}
	rr.Ack = uint32(m.Seq)
	_ = reply(rr, body)
}

func (s *Server) handleWrite(m *wire.Write, body []byte, reply func(wire.Message, []byte) error) {
	v := s.lookup(m.Volume)
	status := wire.StatusOK
	if v == nil {
		status = wire.StatusENoVolume
	} else if err := v.write(body, int64(m.Offset)); err != nil {
		status = wire.StatusEIO
		s.logf("netv3: write: %v", err)
	}
	s.served.Add(1)
	wr := &wire.WriteResp{ReqID: m.ReqID, Status: status, Credits: 1}
	wr.Ack = uint32(m.Seq)
	_ = reply(wr, nil)
}

// cachedRead serves aligned 8 KB blocks from the MQ cache and fills
// misses from the store.
func (v *volume) cachedRead(b []byte, off int64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	end := off + int64(len(b))
	for cur := off; cur < end; {
		blk := uint64(cur / cacheBlockSize)
		within := cur % cacheBlockSize
		n := int64(cacheBlockSize - within)
		if end-cur < n {
			n = end - cur
		}
		if v.cache.Ref(blk) {
			v.hits.Add(1)
		} else {
			v.miss.Add(1)
			payload := make([]byte, cacheBlockSize)
			bs := int64(blk) * cacheBlockSize
			readLen := cacheBlockSize
			if bs+int64(readLen) > v.store.Size() {
				readLen = int(v.store.Size() - bs)
			}
			if err := v.store.ReadAt(payload[:readLen], bs); err != nil {
				return err
			}
			if victim, ev := v.cache.Insert(blk); ev {
				delete(v.data, victim)
			}
			v.data[blk] = payload
		}
		copy(b[cur-off:cur-off+n], v.data[blk][within:within+n])
		cur += n
	}
	return nil
}

// write commits to the store and updates any cached blocks.
func (v *volume) write(b []byte, off int64) error {
	if err := v.store.WriteAt(b, off); err != nil {
		return err
	}
	if v.cache == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	end := off + int64(len(b))
	for cur := off; cur < end; {
		blk := uint64(cur / cacheBlockSize)
		within := cur % cacheBlockSize
		n := int64(cacheBlockSize - within)
		if end-cur < n {
			n = end - cur
		}
		if payload, ok := v.data[blk]; ok {
			copy(payload[within:within+n], b[cur-off:cur-off+n])
			v.cache.Ref(blk)
		}
		cur += n
	}
	return nil
}
