package netv3

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// diskCfg is a server config with the full pipelined disk path enabled
// and background destaging effectively disabled (hour-long interval), so
// tests control destage timing through Flush and the high-watermark.
func diskCfg() ServerConfig {
	cfg := DefaultServerConfig()
	cfg.CacheBlocks = 256
	cfg.DiskWorkers = 4
	cfg.DestageInterval = time.Hour
	return cfg
}

func startFileServer(t *testing.T, cfg ServerConfig, path string, size int64) (*Server, string) {
	t.Helper()
	fs, err := NewFileStore(path, size)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cfg)
	srv.AddVolume(1, fs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close(); fs.Close() })
	return srv, addr.String()
}

// TestDiskPathConcurrentMixed runs concurrent readers, writers, and
// flushers against a file-backed volume with workers, write-behind, and
// prefetch all enabled, and checks every byte that comes back.
func TestDiskPathConcurrentMixed(t *testing.T) {
	cfg := diskCfg()
	cfg.DestageInterval = time.Millisecond // let the destager race the I/O
	path := filepath.Join(t.TempDir(), "vol.img")
	_, addr := startFileServer(t, cfg, path, 8<<20)

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr, DefaultClientConfig())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			region := int64(g) * (2 << 20) // disjoint 2 MB region per goroutine
			buf := make([]byte, 8192)
			for iter := 0; iter < 20; iter++ {
				off := region + int64(iter)*8192
				data := bytes.Repeat([]byte{byte(g*31 + iter + 1)}, 8192)
				if err := c.Write(1, off, data); err != nil {
					errs <- fmt.Errorf("g%d write: %w", g, err)
					return
				}
				if err := c.Read(1, off, buf); err != nil {
					errs <- fmt.Errorf("g%d read: %w", g, err)
					return
				}
				if !bytes.Equal(buf, data) {
					errs <- fmt.Errorf("g%d iter %d: read back wrong bytes", g, iter)
					return
				}
				if iter%5 == 4 {
					if err := c.Flush(1); err != nil {
						errs <- fmt.Errorf("g%d flush: %w", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWriteBehindIsBehind proves writes are acknowledged before the
// store sees them: with background destaging parked, an acked write is
// readable through the protocol while the backing file still holds
// zeros, and Flush is what moves the bytes to disk.
func TestWriteBehindIsBehind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.img")
	srv, addr := startFileServer(t, diskCfg(), path, 1<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := bytes.Repeat([]byte{0xAB}, 16384)
	if err := c.Write(1, 8192, data); err != nil {
		t.Fatal(err)
	}
	if d := srv.DiskStats(); d.DirtyBlocks == 0 {
		t.Fatal("acked write produced no dirty blocks")
	}
	onDisk := make([]byte, len(data))
	readFile := func() {
		t.Helper()
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := f.ReadAt(onDisk, 8192); err != nil {
			t.Fatal(err)
		}
	}
	readFile()
	if !bytes.Equal(onDisk, make([]byte, len(data))) {
		t.Fatal("write reached the file before any destage ran")
	}
	got := make([]byte, len(data))
	if err := c.Read(1, 8192, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("acked write not readable through the protocol")
	}
	if err := c.Flush(1); err != nil {
		t.Fatal(err)
	}
	readFile()
	if !bytes.Equal(onDisk, data) {
		t.Fatal("Flush did not move acked bytes to the file")
	}
	d := srv.DiskStats()
	if d.DirtyBlocks != 0 {
		t.Fatalf("dirty blocks remain after Flush: %d", d.DirtyBlocks)
	}
	if d.DestageRuns == 0 || d.DestagedBlocks == 0 {
		t.Fatal("flush recorded no destage activity")
	}
	// Two adjacent dirty blocks must have coalesced: at least one run of
	// more than one block in the batch histogram.
	coalesced := int64(0)
	for i := 1; i < len(d.DestageBatchHist); i++ {
		coalesced += d.DestageBatchHist[i]
	}
	if coalesced == 0 {
		t.Fatalf("no coalesced destage run recorded: hist %v", d.DestageBatchHist)
	}
}

// TestFlushCrashConsistency checks the acceptance criterion directly:
// data acked and then Flushed is readable after the server process goes
// away and a new one opens the same file.
func TestFlushCrashConsistency(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.img")
	const size = 1 << 20
	fs, err := NewFileStore(path, size)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(diskCfg())
	srv.AddVolume(1, fs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()

	c, err := Dial(addr.String(), DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xC4}, 24576)
	if err := c.Write(1, 4096, data); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(1); err != nil {
		t.Fatal(err)
	}
	// "Crash": drop the client and server without any orderly destage
	// beyond what Flush already guaranteed.
	c.Close()
	srv.Close()
	fs.Close()

	fs2, err := NewFileStore(path, size)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(diskCfg())
	srv2.AddVolume(1, fs2)
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve()
	defer func() { srv2.Close(); fs2.Close() }()
	c2, err := Dial(addr2.String(), DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got := make([]byte, len(data))
	if err := c2.Read(1, 4096, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("flushed data lost across server restart")
	}
}

// TestReconnectMidDestage severs the connection while dirty blocks are
// in flight to the destager; the client's replay plus Flush must still
// leave every byte correct and durable.
func TestReconnectMidDestage(t *testing.T) {
	cfg := diskCfg()
	cfg.DestageInterval = time.Millisecond
	path := filepath.Join(t.TempDir(), "vol.img")
	_, addr := startFileServer(t, cfg, path, 4<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const blocks = 64
	pending := make([]*Pending, 0, blocks)
	for i := 0; i < blocks; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, 8192)
		h, err := c.WriteAsync(1, int64(i)*8192, data)
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, h)
		if i == blocks/2 {
			c.KillConnForTest()
		}
	}
	for _, h := range pending {
		if err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(1); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8192)
	for i := 0; i < blocks; i++ {
		if err := c.Read(1, int64(i)*8192, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) || got[8191] != byte(i+1) {
			t.Fatalf("block %d corrupted after reconnect: %d", i, got[0])
		}
	}
	if c.Reconnects() == 0 {
		t.Fatal("test never exercised the reconnect path")
	}
}

// TestDirtyHighWaterFallsBackToWriteThrough checks the backpressure
// valve: once uncommitted blocks reach the watermark, writes take the
// synchronous path (and stay correct) instead of growing dirty state.
func TestDirtyHighWaterFallsBackToWriteThrough(t *testing.T) {
	cfg := diskCfg()
	cfg.DirtyHighWater = 4
	path := filepath.Join(t.TempDir(), "vol.img")
	srv, addr := startFileServer(t, cfg, path, 1<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 16; i++ {
		if err := c.Write(1, int64(i)*8192, bytes.Repeat([]byte{byte(i + 1)}, 8192)); err != nil {
			t.Fatal(err)
		}
	}
	if d := srv.DiskStats(); d.WriteThroughFallbacks == 0 {
		t.Fatal("watermark never triggered write-through fallback")
	}
	got := make([]byte, 8192)
	for i := 0; i < 16; i++ {
		if err := c.Read(1, int64(i)*8192, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) {
			t.Fatalf("block %d wrong after fallback: %d", i, got[0])
		}
	}
	if err := c.Flush(1); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchSequentialStream drives a sequential scan and checks the
// read-ahead pipeline: blocks get installed ahead of the reader and
// later demand reads hit them.
func TestPrefetchSequentialStream(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.CacheBlocks = 512
	cfg.DiskWorkers = 4
	srv, addr := startServer(t, cfg, 4<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 8192)
	for i := 0; i < 256; i++ {
		if err := c.Read(1, int64(i)*8192, buf); err != nil {
			t.Fatal(err)
		}
		if i%16 == 0 {
			time.Sleep(time.Millisecond) // let the prefetch worker run ahead
		}
	}
	d := srv.DiskStats()
	if d.PrefetchFills == 0 {
		t.Fatal("sequential scan triggered no prefetch fills")
	}
	if d.PrefetchHits == 0 {
		t.Fatal("prefetched blocks were never hit")
	}
	t.Logf("prefetch fills=%d hits=%d dropped=%d", d.PrefetchFills, d.PrefetchHits, d.PrefetchDropped)
}

// TestFlushUnknownVolume: the barrier on a nonexistent volume must fail
// cleanly, not hang or kill the session.
func TestFlushUnknownVolume(t *testing.T) {
	_, addr := startServer(t, diskCfg(), 1<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Flush(42); err == nil {
		t.Fatal("flush of unknown volume should fail")
	}
	if err := c.Flush(1); err != nil {
		t.Fatalf("session unusable after failed flush: %v", err)
	}
}

// TestFileStoreShortReadContext truncates the backing file underneath a
// FileStore and checks the error names the exact extent, so an EIO in a
// server log can be traced to bytes on disk.
func TestFileStoreShortReadContext(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.img")
	fs, err := NewFileStore(path, 65536)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := os.Truncate(path, 4096); err != nil {
		t.Fatal(err)
	}
	err = fs.ReadAt(make([]byte, 8192), 8192)
	if err == nil {
		t.Fatal("read past truncation point should fail")
	}
	if !strings.Contains(err.Error(), "[8192,+8192)") {
		t.Fatalf("error lacks extent context: %v", err)
	}
}
