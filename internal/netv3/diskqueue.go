package netv3

import (
	"os"
	"sync"
	"sync/atomic"

	"github.com/v3storage/v3/internal/diskq"
	"github.com/v3storage/v3/internal/wire"
)

// diskQueue is a volume's batched submission/completion disk backend:
// the netv3 face of internal/diskq. Where the classic diskPipe binds
// one goroutine to one blocking store call, the queue moves every store
// operation through an SQ/CQ pair — demand-read misses, write-through
// writes, the destager's coalesced runs, the prefetcher's doubling
// windows, and the Flush fsync barrier all become submissions, and one
// dispatcher goroutine drains completions for the whole volume.
//
// Completion routing: every submission registers a callback keyed by
// its token. Callbacks run on the dispatcher in reap order, which the
// backends guarantee puts an fsync's completion after the completions
// of every write it barriers — the property the flush path's
// error-collection relies on. Callbacks must never block indefinitely:
// cache work is lock-bounded and session sends are non-blocking by the
// credit-sizing invariant (a session's completion lane holds at least
// as many slots as the client holds credits).
//
// Because Submit can be interleaved with the completion it triggers,
// registration uses a claim protocol instead of insert-before-submit:
// the dispatcher parks completions whose token has no callback yet, and
// the submitter claims parked completions when it registers. Both sides
// run under mu, so a completion is executed exactly once, on whichever
// side arrives second.
type diskQueue struct {
	s *Server
	v *volume
	q *diskq.Queue

	mu        sync.Mutex
	pending   map[uint64]func(diskq.Completion)
	unclaimed map[uint64]diskq.Completion

	dispatcherDone chan struct{}

	reads     atomic.Int64 // demand reads served through the queue
	writes    atomic.Int64 // async write-through writes
	batches   atomic.Int64 // destage/prefetch vectored batches
	fallbacks atomic.Int64 // submissions bounced to the classic path
	retries   atomic.Int64 // reads redone classically after an epoch change
}

// storeFile adapts a BlockStore to diskq.File so wrapped stores (fault
// injectors, latency models, in-memory volumes) ride the portable
// backend with their wrapping intact.
type storeFile struct {
	bs BlockStore
}

func (f storeFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.bs.ReadAt(p, off); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (f storeFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.bs.WriteAt(p, off); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (f storeFile) Sync() error { return f.bs.Sync() }

// queueFile resolves the diskq.File a volume's queue operates on: a
// *FileStore contributes its backing *os.File (making the io_uring
// backend eligible, with the store's range discipline enforced by the
// submitters); any other store is adapted, which lands on the portable
// backend and keeps wrappers like faultnet in the I/O path.
func queueFile(store BlockStore) diskq.File {
	if fs, ok := store.(*FileStore); ok {
		return fs.File()
	}
	return storeFile{bs: store}
}

func newDiskQueue(s *Server, v *volume) (*diskQueue, error) {
	depth := s.cfg.SQDepth
	if depth <= 0 {
		depth = 64
	}
	workers := s.cfg.DiskWorkers
	if workers <= 0 {
		workers = depth
	}
	q, err := diskq.Open(queueFile(v.store), diskq.Config{
		Depth:   depth,
		Workers: workers,
		Metrics: s.cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	dq := &diskQueue{
		s:              s,
		v:              v,
		q:              q,
		pending:        make(map[uint64]func(diskq.Completion), depth),
		unclaimed:      make(map[uint64]diskq.Completion),
		dispatcherDone: make(chan struct{}),
	}
	go dq.dispatch()
	return dq, nil
}

// dispatch is the volume's completion drain: it reaps in batches and
// routes each completion to its registered callback, parking early
// arrivals until the submitter claims them. It exits when the queue is
// closed and drained.
func (dq *diskQueue) dispatch() {
	defer close(dq.dispatcherDone)
	out := make([]diskq.Completion, dq.q.Depth())
	for {
		n, err := dq.q.Reap(out, 1)
		for _, c := range out[:n] {
			dq.mu.Lock()
			fn, ok := dq.pending[c.Token]
			if ok {
				delete(dq.pending, c.Token)
			} else {
				dq.unclaimed[c.Token] = c
			}
			dq.mu.Unlock()
			if ok {
				fn(c)
			}
		}
		if err != nil {
			return
		}
	}
}

// claim registers fns for the contiguous tokens first..first+len-1,
// running any callback whose completion already arrived. It is the
// submitter half of the parking protocol.
func (dq *diskQueue) claim(first uint64, fns []func(diskq.Completion)) {
	type ready struct {
		fn func(diskq.Completion)
		c  diskq.Completion
	}
	var run []ready
	dq.mu.Lock()
	for i, fn := range fns {
		tok := first + uint64(i)
		if c, ok := dq.unclaimed[tok]; ok {
			delete(dq.unclaimed, tok)
			run = append(run, ready{fn: fn, c: c})
		} else {
			dq.pending[tok] = fn
		}
	}
	dq.mu.Unlock()
	for _, r := range run {
		r.fn(r.c)
	}
}

// trySubmit submits one op without blocking and registers its callback.
// A false return means queue full or closed: the caller owns the op and
// takes its classic path.
func (dq *diskQueue) trySubmit(op diskq.Op, fn func(diskq.Completion)) bool {
	tok, ok := dq.q.TrySubmit(op)
	if !ok {
		dq.fallbacks.Add(1)
		return false
	}
	dq.claim(tok, []func(diskq.Completion){fn})
	return true
}

// submitBatch submits ops as one vectored batch (blocking for queue
// space) and registers callbacks for the ops actually accepted. It
// returns that count: on a closing queue it can be short, and the
// caller runs its synchronous fallback on ops[n:] — exactly the ops
// that will never complete — so nothing is issued twice.
func (dq *diskQueue) submitBatch(ops []diskq.Op, fns []func(diskq.Completion)) int {
	first, n, err := dq.q.Submit(ops)
	if n > 0 {
		dq.claim(first, fns[:n])
		if len(ops) > 1 {
			dq.batches.Add(1)
		}
	}
	if err != nil {
		dq.fallbacks.Add(int64(len(ops) - n))
	}
	return n
}

// dqWaiter collects a blocking submitter's batch results: callbacks
// count down and record per-op completions; wait blocks the submitter
// (never the dispatcher) until the batch drains.
type dqWaiter struct {
	mu    sync.Mutex
	cond  *sync.Cond
	left  int
	comps []diskq.Completion
}

func newDQWaiter(n int) *dqWaiter {
	w := &dqWaiter{left: n, comps: make([]diskq.Completion, n)}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// callback returns the completion callback for batch index i.
func (w *dqWaiter) callback(i int) func(diskq.Completion) {
	return func(c diskq.Completion) {
		w.mu.Lock()
		w.comps[i] = c
		w.left--
		if w.left == 0 {
			w.cond.Broadcast()
		}
		w.mu.Unlock()
	}
}

// wait blocks until n callbacks have fired (use the submitBatch return;
// never-submitted ops must not be waited for) and returns the per-index
// completions.
func (w *dqWaiter) wait(n int) []diskq.Completion {
	w.mu.Lock()
	for w.left > len(w.comps)-n {
		w.cond.Wait()
	}
	w.mu.Unlock()
	return w.comps
}

// runBatch is the blocking convenience: submit ops, wait for the
// accepted ones, and report (completions, accepted). Used by the
// destager and prefetcher, whose passes own their goroutines.
func (dq *diskQueue) runBatch(ops []diskq.Op) ([]diskq.Completion, int) {
	w := newDQWaiter(len(ops))
	fns := make([]func(diskq.Completion), len(ops))
	for i := range fns {
		fns[i] = w.callback(i)
	}
	n := dq.submitBatch(ops, fns)
	if n == 0 {
		return w.comps, 0
	}
	return w.wait(n), n
}

// fsyncBarrier makes every previously submitted write durable through
// the queue: the fsync SQE is a drain barrier, so it starts only after
// outstanding writes complete, and its completion is dispatched after
// theirs — by which point their error callbacks have run. Falls back to
// a direct store sync when the queue is closed or full of barriers.
func (dq *diskQueue) fsyncBarrier() error {
	w := newDQWaiter(1)
	tok, err := dq.q.SubmitFsync()
	if err != nil {
		return dq.v.store.Sync()
	}
	dq.claim(tok, []func(diskq.Completion){w.callback(0)})
	return w.wait(1)[0].Err
}

// submitDemandRead moves a session's cache-miss read onto the queue.
// The caller has already validated the range and verified no block in
// it carries uncommitted write-behind state (dirty/flushing/orphan);
// epochs is the per-touched-shard write-epoch snapshot taken during
// that check. On completion the dispatcher revalidates the snapshot: if
// any covered shard has absorbed a write since, the store bytes may be
// stale or torn, and the read is redone through the classic cache path
// (rare — it costs one synchronous cached read on the dispatcher).
// A false return means queue full/closed: caller falls back.
//
// trace/arr carry a traced request's id and arrival stamp into the
// completion callback, where the response's span block is filled: queue
// wait is arrival→SQ submit, service is submit→response build, and the
// disk-queue split (SQ wait vs device time) comes straight off the
// Completion — the decomposition the merged client table surfaces as
// its "srv diskq wait" and "srv device" columns.
func (dq *diskQueue) submitDemandRead(sc *sessCtx, seq uint64, reqID uint64, body []byte, off int64, epochs []shardEpoch, trace uint64, arr int64) bool {
	s := dq.s
	sub := traceArr(trace)
	s.flight.Record(fkDiskqSubmit, trace, uint64(off), uint64(len(body)))
	finish := func(err error, c diskq.Completion) {
		rr := &wire.ReadResp{Header: wire.Header{Ack: uint32(seq)}, ReqID: reqID, Credits: 1, Status: wire.StatusOK}
		resp := body
		if err != nil {
			rr.Status = wire.StatusEIO
			s.logf("netv3: diskq read [%d,+%d): %v", off, len(body), err)
			s.pool.Put(body)
			resp = nil
		}
		rr.Length = uint32(len(resp))
		fillSpan(&rr.Header, &rr.SrvSpan, trace, arr, sub)
		if trace != 0 {
			rr.SrvDiskQNS = clamp32(c.QueueNS)
			rr.SrvDeviceNS = clamp32(c.DeviceNS)
		}
		s.flight.Record(fkDiskqDone, trace, uint64(c.QueueNS), uint64(c.DeviceNS))
		s.served.Add(1)
		dq.reads.Add(1)
		sc.complete(completion{msg: rr, body: resp})
		sc.wg.Done()
	}
	ok := dq.trySubmit(diskq.Op{Kind: diskq.OpRead, Buf: body, Off: off}, func(c diskq.Completion) {
		if c.Err == nil && dq.v.cache != nil && !dq.v.cache.epochsUnchanged(epochs) {
			// A write landed on a covered epoch stripe mid-flight; the
			// store image we read may predate (or tear) it. Redo through
			// the coherent path — off the dispatcher, whose drain must
			// never wait out a device-time store read (a redo here would
			// stall every other completion behind it). Bounded by the
			// session's credits, like any other in-flight request. The
			// span keeps the wasted queue trip's disk split — that time
			// was really spent serving this request.
			dq.retries.Add(1)
			go func() { finish(dq.v.cachedRead(body, off), c) }()
			return
		}
		finish(c.Err, c)
	})
	return ok
}

// submitWrite moves a write-through write (cache disabled or
// NoWriteBehind) onto the queue. The cache update and the response both
// happen on completion, preserving the store-write-before-cache-update
// ordering rule. A false return means the caller falls back.
func (dq *diskQueue) submitWrite(sc *sessCtx, seq uint64, reqID uint64, body []byte, off int64, trace uint64, arr int64) bool {
	s := dq.s
	sub := traceArr(trace)
	s.flight.Record(fkDiskqSubmit, trace, uint64(off), uint64(len(body)))
	return dq.trySubmit(diskq.Op{Kind: diskq.OpWrite, Buf: body, Off: off}, func(c diskq.Completion) {
		wr := &wire.WriteResp{Header: wire.Header{Ack: uint32(seq)}, ReqID: reqID, Credits: 1, Status: wire.StatusOK}
		if c.Err != nil {
			wr.Status = wire.StatusEIO
			s.logf("netv3: diskq write [%d,+%d): %v", off, len(body), c.Err)
		} else if dq.v.cache != nil {
			updateCachedRange(dq.v.cache, body, off)
		}
		fillSpan(&wr.Header, &wr.SrvSpan, trace, arr, sub)
		if trace != 0 {
			wr.SrvDiskQNS = clamp32(c.QueueNS)
			wr.SrvDeviceNS = clamp32(c.DeviceNS)
		}
		s.flight.Record(fkDiskqDone, trace, uint64(c.QueueNS), uint64(c.DeviceNS))
		s.pool.Put(body)
		s.served.Add(1)
		dq.writes.Add(1)
		sc.complete(completion{msg: wr})
		sc.wg.Done()
	})
}

// close stops intake and waits for the dispatcher to drain every
// in-flight completion (running their callbacks) before returning.
func (dq *diskQueue) close() {
	dq.q.Close()
	<-dq.dispatcherDone
}

// File exposes the store's backing file for the io_uring backend.
func (s *FileStore) File() *os.File { return s.f }

// updateCachedRange folds committed write bytes into any resident cache
// blocks of [off, off+len(b)) — the block-split loop volume.write uses,
// shared with the queue's asynchronous write completion.
func updateCachedRange(c *blockCache, b []byte, off int64) {
	end := off + int64(len(b))
	for cur := off; cur < end; {
		blk := uint64(cur / cacheBlockSize)
		within := cur % cacheBlockSize
		n := int64(cacheBlockSize - within)
		if end-cur < n {
			n = end - cur
		}
		c.updateBlock(blk, within, n, b[cur-off:cur-off+n])
		cur += n
	}
}
