package netv3

import (
	"fmt"

	"github.com/v3storage/v3/internal/obs"
	"github.com/v3storage/v3/internal/wire"
)

// Client-side stage indices. The five stages tile a request's lifetime
// exactly — submit-entry to waiter-wakeup — so the per-stage means of a
// workload column-sum to its end-to-end mean, which is how the paper's
// breakdown tables are laid out (each DSA variant's I/O decomposed into
// submission, transfer, server and completion costs that add up to the
// measured round trip).
const (
	// stSubmit: ReadAsync/WriteAsync/FlushAsync entry → frame staged in
	// the submission batch (credit wait, bookkeeping, sendMu wait).
	stSubmit = iota
	// stWire: frame staged → socket write returned (bufio copy, plus the
	// flush syscall when this sender drains the batch).
	stWire
	// stServer: socket write → response decoded and its payload landed in
	// the caller's buffer — kernel, network, all server-side processing,
	// and the inbound data transfer. The remote half of this stage is
	// broken down further by the server's own histograms.
	stServer
	// stDeliver: response received → completion published (pending-map
	// removal, error mapping, handle close).
	stDeliver
	// stWake: completion published → the waiter observing it (scheduler
	// latency — the paper's completion-notification cost).
	stWake
	nStages
)

// traceSample is the stage-trace sampling interval: every traceSample-th
// request submitted on an instrumented client carries the full
// six-timestamp trace; the rest pay one counter increment. The workloads
// the breakdown table describes are homogeneous streams, so a 1-in-4
// systematic sample leaves the per-stage means unbiased while keeping
// the instrumented data path within a few hundred ns/op of the
// uninstrumented one.
const traceSample = 4

// clientStageMetrics are the registry histogram names, index-aligned
// with the stage constants.
var clientStageMetrics = [nStages]string{
	"netv3_client_stage_submit_ns",
	"netv3_client_stage_wire_ns",
	"netv3_client_stage_server_ns",
	"netv3_client_stage_deliver_ns",
	"netv3_client_stage_wake_ns",
}

// ClientStageDefs returns the breakdown-table schema of the client's
// stage trace, for obs.Breakdown over the registry passed in
// ClientConfig.Metrics.
func ClientStageDefs() []obs.StageDef {
	return []obs.StageDef{
		{Display: "submission", Metric: clientStageMetrics[stSubmit]},
		{Display: "wire write", Metric: clientStageMetrics[stWire]},
		{Display: "server+net", Metric: clientStageMetrics[stServer]},
		{Display: "delivery", Metric: clientStageMetrics[stDeliver]},
		{Display: "wakeup", Metric: clientStageMetrics[stWake]},
	}
}

// Span-stage metric names: the server-side decomposition of stServer,
// carried back in each traced response's SrvSpan block. Together with
// the net residual they re-tile the server+net stage, so the merged
// nine-column table still sums to the measured end-to-end mean.
const (
	metricSrvSched  = "netv3_client_stage_srv_sched_ns"
	metricSrvCPU    = "netv3_client_stage_srv_cpu_ns"
	metricSrvDiskQ  = "netv3_client_stage_srv_diskq_ns"
	metricSrvDevice = "netv3_client_stage_srv_device_ns"
	metricNetResid  = "netv3_client_stage_net_ns"
)

// MergedStageDefs returns the cross-tier breakdown schema: the client's
// local stages with the server+net stage replaced by its five-way
// decomposition (scheduler wait, server CPU, disk-queue wait, device
// time, and the network/kernel residual). Every row is clamped at zero
// on capture, and against a pre-trace server the spans decode as zeros
// so the whole server+net stage lands in the net residual — the table
// tiles either way.
func MergedStageDefs() []obs.StageDef {
	return []obs.StageDef{
		{Display: "submission", Metric: clientStageMetrics[stSubmit]},
		{Display: "wire write", Metric: clientStageMetrics[stWire]},
		{Display: "srv sched wait", Metric: metricSrvSched},
		{Display: "srv cpu", Metric: metricSrvCPU},
		{Display: "srv diskq wait", Metric: metricSrvDiskQ},
		{Display: "srv device", Metric: metricSrvDevice},
		{Display: "net+kernel", Metric: metricNetResid},
		{Display: "delivery", Metric: clientStageMetrics[stDeliver]},
		{Display: "wakeup", Metric: clientStageMetrics[stWake]},
	}
}

// clientObs is a client's stage-histogram set plus the failure-path
// counters (cancellation, deadline expiry, hung-peer detection) and the
// keepalive RTT histogram; nil when no registry is configured, which
// gates every capture site down to one branch — the note* helpers are
// nil-receiver safe so callers never re-check.
type clientObs struct {
	stages [nStages]*obs.Hist

	// Server-span decomposition of stServer (see MergedStageDefs).
	srvSched  *obs.Hist
	srvCPU    *obs.Hist
	srvDiskQ  *obs.Hist
	srvDevice *obs.Hist
	netResid  *obs.Hist

	cancels   *obs.Counter // netv3_client_cancels_total
	deadlines *obs.Counter // netv3_client_deadline_exceeded_total
	hungs     *obs.Counter // netv3_client_hung_peer_total
	pings     *obs.Counter // netv3_client_keepalive_pings_total
	kaRTT     *obs.Hist    // netv3_client_keepalive_rtt_ns
}

func newClientObs(r *obs.Registry) *clientObs {
	if r == nil {
		return nil
	}
	co := &clientObs{
		srvSched:  r.Hist(metricSrvSched),
		srvCPU:    r.Hist(metricSrvCPU),
		srvDiskQ:  r.Hist(metricSrvDiskQ),
		srvDevice: r.Hist(metricSrvDevice),
		netResid:  r.Hist(metricNetResid),
		cancels:   r.Counter("netv3_client_cancels_total"),
		deadlines: r.Counter("netv3_client_deadline_exceeded_total"),
		hungs:     r.Counter("netv3_client_hung_peer_total"),
		pings:     r.Counter("netv3_client_keepalive_pings_total"),
		kaRTT:     r.Hist("netv3_client_keepalive_rtt_ns"),
	}
	for i, name := range clientStageMetrics {
		co.stages[i] = r.Hist(name)
	}
	return co
}

// noteCancel counts one canceled request (explicit Cancel or an expired
// bounded wait).
func (co *clientObs) noteCancel() {
	if co == nil {
		return
	}
	co.cancels.Inc()
}

// noteDeadline counts one bounded-wait expiry (WaitTimeout/WaitContext).
func (co *clientObs) noteDeadline() {
	if co == nil {
		return
	}
	co.deadlines.Inc()
}

// noteHung counts one connection declared dead by keepalive deadline
// enforcement — a silent, not closed, peer.
func (co *clientObs) noteHung() {
	if co == nil {
		return
	}
	co.hungs.Inc()
}

// notePing counts one keepalive TPing sent on an idle link.
func (co *clientObs) notePing() {
	if co == nil {
		return
	}
	co.pings.Inc()
}

// noteKeepaliveRTT records one ping→pong round trip.
func (co *clientObs) noteKeepaliveRTT(ns int64) {
	if co == nil {
		return
	}
	co.kaRTT.Observe(ns)
}

// recordTrace folds one completed request's timestamps into the stage
// histograms. Stages are clamped at zero so a replayed request (whose
// send-side stamps were overwritten mid-flight) cannot record a negative
// duration.
//
// sp is the server-side span block echoed in the response: the stServer
// interval (t3-t2) is re-tiled as sched wait + server CPU + disk-queue
// wait + device time + network residual, each clamped at zero so the
// five spans still column-sum to the interval they decompose. A
// pre-trace server answers all-zero spans, which lands the whole
// interval in the residual — the merged table tiles either way.
func (co *clientObs) recordTrace(t0, t1, t2, t3, t4, t5 int64, sp wire.SrvSpan) {
	co.stages[stSubmit].Observe(maxNS(t1 - t0))
	co.stages[stWire].Observe(maxNS(t2 - t1))
	co.stages[stServer].Observe(maxNS(t3 - t2))
	co.stages[stDeliver].Observe(maxNS(t4 - t3))
	co.stages[stWake].Observe(maxNS(t5 - t4))

	q, svc := int64(sp.SrvQueueNS), int64(sp.SrvServiceNS)
	dq, dev := int64(sp.SrvDiskQNS), int64(sp.SrvDeviceNS)
	co.srvSched.Observe(maxNS(q))
	co.srvCPU.Observe(maxNS(svc - dq - dev))
	co.srvDiskQ.Observe(maxNS(dq))
	co.srvDevice.Observe(maxNS(dev))
	co.netResid.Observe(maxNS((t3 - t2) - q - svc))
}

func maxNS(ns int64) int64 {
	if ns < 0 {
		return 0
	}
	return ns
}

// serverObs is a server's histogram set plus the gauge-func exports of
// its existing counters; nil when no registry is configured.
type serverObs struct {
	// dispatch is the session loop's inline handling time per request:
	// decode → response buffered (or task queued) — the server half of
	// the paper's "server processing" column that the client can only see
	// folded into its server+net stage.
	dispatch *obs.Hist
	// queueWait is a disk task's time between session-loop enqueue and
	// worker pickup — the disk-pipeline backlog signal.
	queueWait *obs.Hist
	// diskRead/diskWrite are store I/O service times inside the workers.
	diskRead  *obs.Hist
	diskWrite *obs.Hist
	// destageRun is one background destage pass; flushDur one wire-level
	// Flush barrier; prefetchFill one read-ahead fill.
	destageRun   *obs.Hist
	flushDur     *obs.Hist
	prefetchFill *obs.Hist
	// schedFGWait/schedBGWait are a scheduler task's enqueue→pickup waits
	// per QoS lane — the direct signal for "is the foreground lane flat
	// while background saturates".
	schedFGWait *obs.Hist
	schedBGWait *obs.Hist
}

// newServerObs builds the histogram set and registers gauge funcs that
// export the server's existing atomic counters (served, sessions, cache,
// pool, disk pipeline) without double bookkeeping — the counters the old
// v3d -stats loop logged, folded into the snapshot.
func newServerObs(r *obs.Registry, s *Server) *serverObs {
	if r == nil {
		return nil
	}
	so := &serverObs{
		dispatch:     r.Hist("netv3_srv_dispatch_ns"),
		queueWait:    r.Hist("netv3_srv_disk_queue_wait_ns"),
		diskRead:     r.Hist("netv3_srv_disk_read_ns"),
		diskWrite:    r.Hist("netv3_srv_disk_write_ns"),
		destageRun:   r.Hist("netv3_srv_destage_run_ns"),
		flushDur:     r.Hist("netv3_srv_flush_ns"),
		prefetchFill: r.Hist("netv3_srv_prefetch_fill_ns"),
		schedFGWait:  r.Hist("netv3_srv_sched_fg_wait_ns"),
		schedBGWait:  r.Hist("netv3_srv_sched_bg_wait_ns"),
	}
	r.GaugeFunc("netv3_srv_served_total", s.Served)
	r.GaugeFunc("netv3_srv_sessions_total", s.Sessions)
	// Live population gauges (decremented on close, unlike the _total
	// counters) plus the stream-multiplexing and scheduler exports.
	r.GaugeFunc("netv3_srv_sessions_active", s.SessionsActive)
	r.GaugeFunc("netv3_srv_streams_active", s.StreamsActive)
	r.GaugeFunc("netv3_srv_streams_total", s.StreamsTotal)
	r.GaugeFunc("netv3_srv_sched_fg_queued", func() int64 { return int64(s.SchedStats().FGQueued) })
	r.GaugeFunc("netv3_srv_sched_bg_queued", func() int64 { return int64(s.SchedStats().BGQueued) })
	r.GaugeFunc("netv3_srv_sched_fg_done_total", func() int64 { return s.SchedStats().FGDone })
	r.GaugeFunc("netv3_srv_sched_bg_done_total", func() int64 { return s.SchedStats().BGDone })
	r.GaugeFunc("netv3_srv_sched_shed_total", func() int64 { return s.SchedStats().Shed })
	r.GaugeFunc("netv3_srv_sched_stride_fires_total", func() int64 { return s.SchedStats().StrideFires })
	r.GaugeFunc("netv3_srv_sched_fg_tenants", func() int64 { return int64(s.SchedStats().FGTenants) })
	r.GaugeFunc("netv3_srv_sched_bg_tenants", func() int64 { return int64(s.SchedStats().BGTenants) })
	// Per-tenant queue depths: the member set is whatever tenants exist
	// at scrape time (logical streams come and go), so this is a gauge
	// set, not pre-registered gauges.
	r.GaugeSet("netv3_srv_sched_tenant_queued", func() map[string]int64 {
		ts := s.SchedTenants()
		out := make(map[string]int64, len(ts))
		for _, t := range ts {
			lane := "fg"
			if t.BG {
				lane = "bg"
			}
			out[fmt.Sprintf(`{lane=%q,tenant="%d",weight="%d"}`, lane, t.Key, t.Weight)] = int64(t.Queued)
		}
		return out
	})
	r.GaugeFunc("netv3_srv_cache_hits_total", func() int64 { h, _ := s.CacheStats(); return h })
	r.GaugeFunc("netv3_srv_cache_misses_total", func() int64 { _, m := s.CacheStats(); return m })
	r.GaugeFunc("netv3_srv_pool_gets_total", func() int64 { return s.PoolStats().Gets })
	r.GaugeFunc("netv3_srv_pool_allocs_total", func() int64 { return s.PoolStats().Allocs })
	r.GaugeFunc("netv3_srv_dirty_blocks", func() int64 { return s.DiskStats().DirtyBlocks })
	r.GaugeFunc("netv3_srv_orphan_blocks", func() int64 { return s.DiskStats().OrphanBlocks })
	r.GaugeFunc("netv3_srv_destage_runs_total", func() int64 { return s.DiskStats().DestageRuns })
	r.GaugeFunc("netv3_srv_destaged_blocks_total", func() int64 { return s.DiskStats().DestagedBlocks })
	r.GaugeFunc("netv3_srv_write_through_fallbacks_total", func() int64 { return s.DiskStats().WriteThroughFallbacks })
	r.GaugeFunc("netv3_srv_prefetch_fills_total", func() int64 { return s.DiskStats().PrefetchFills })
	r.GaugeFunc("netv3_srv_prefetch_hits_total", func() int64 { return s.DiskStats().PrefetchHits })
	r.GaugeFunc("netv3_srv_prefetch_dropped_total", func() int64 { return s.DiskStats().PrefetchDropped })
	r.GaugeFunc("netv3_srv_inline_fallbacks_total", func() int64 { return s.DiskStats().InlineFallbacks })
	// Disk-queue (DiskQ) exports. The in-flight gauge reads the live
	// SQ depth across volumes; the counters mirror DiskStats. The queue's
	// own histograms (submit/reap batch sizes, queue-wait vs device time)
	// register themselves on the same registry via diskq.Config.Metrics.
	r.GaugeFunc("netv3_srv_diskq_inflight", func() int64 {
		var n int64
		for _, v := range *s.volumes.Load() {
			if v.dq != nil {
				n += int64(v.dq.q.InFlight())
			}
		}
		return n
	})
	r.GaugeFunc("netv3_srv_diskq_reads_total", func() int64 { return s.DiskStats().DiskQReads })
	r.GaugeFunc("netv3_srv_diskq_writes_total", func() int64 { return s.DiskStats().DiskQWrites })
	r.GaugeFunc("netv3_srv_diskq_batches_total", func() int64 { return s.DiskStats().DiskQBatches })
	r.GaugeFunc("netv3_srv_diskq_fallbacks_total", func() int64 { return s.DiskStats().DiskQFallbacks })
	r.GaugeFunc("netv3_srv_diskq_retries_total", func() int64 { return s.DiskStats().DiskQRetries })
	return so
}
