// Package netv3 is a real, runnable implementation of the V3 block
// protocol over TCP: a storage server daemon exporting virtualized
// volumes and a client with credit flow control and transparent
// reconnection. It reuses the transport-independent pieces of the
// repository — the wire format (internal/wire), credit accounting
// (internal/flow), the reconnection state machine (internal/reliable),
// and the MQ block cache (internal/mqcache) — so the protocol logic is
// shared with the simulated VI transport.
//
// TCP stands in for the VI interconnect: it provides reliable in-order
// delivery but none of VI's kernel-bypass properties, so this package
// demonstrates the protocol and the API, not the paper's performance
// claims (those are the simulation's job).
package netv3

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// BlockStore is the backing storage of one volume.
type BlockStore interface {
	ReadAt(b []byte, off int64) error
	WriteAt(b []byte, off int64) error
	// Sync makes every completed WriteAt durable. It is the store half of
	// the wire-level Flush barrier; volatile stores may no-op.
	Sync() error
	Size() int64
	Close() error
}

// MemStore is a volatile in-memory volume.
type MemStore struct {
	mu   sync.RWMutex
	data []byte
}

// NewMemStore allocates an in-memory volume of size bytes.
func NewMemStore(size int64) *MemStore {
	return &MemStore{data: make([]byte, size)}
}

// checkStoreRange validates [off, off+n) against the volume size. The
// comparison is phrased to stay correct for hostile inputs: the naive
// `off+int64(n) > size` wraps negative when a wire request carries an
// offset near MaxInt64, letting the access through and crashing the
// store deeper in. `off > size-int64(n)` cannot overflow once n is
// known to be in [0, size].
func checkStoreRange(size, off int64, n int) error {
	if off < 0 || n < 0 || int64(n) > size || off > size-int64(n) {
		return fmt.Errorf("netv3: access [%d,+%d) outside volume of %d bytes", off, n, size)
	}
	return nil
}

// ReadAt implements BlockStore.
func (m *MemStore) ReadAt(b []byte, off int64) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := checkStoreRange(int64(len(m.data)), off, len(b)); err != nil {
		return err
	}
	copy(b, m.data[off:])
	return nil
}

// WriteAt implements BlockStore.
func (m *MemStore) WriteAt(b []byte, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := checkStoreRange(int64(len(m.data)), off, len(b)); err != nil {
		return err
	}
	copy(m.data[off:], b)
	return nil
}

// Sync implements BlockStore; memory is as durable as it gets.
func (m *MemStore) Sync() error { return nil }

// Size implements BlockStore.
func (m *MemStore) Size() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.data))
}

// Close implements BlockStore.
func (m *MemStore) Close() error { return nil }

// FileStore is a volume backed by a file (sparse until written).
type FileStore struct {
	f    *os.File
	size int64
}

// NewFileStore opens (creating if needed) path as a volume of size bytes.
func NewFileStore(path string, size int64) (*FileStore, error) {
	if size <= 0 {
		return nil, errors.New("netv3: file store needs a positive size")
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	return &FileStore{f: f, size: size}, nil
}

// ReadAt implements BlockStore. A failed or short read is reported with
// the file range and the bytes actually transferred, so an EIO surfaced
// to a client can be traced to the exact extent on disk.
func (s *FileStore) ReadAt(b []byte, off int64) error {
	if err := checkStoreRange(s.size, off, len(b)); err != nil {
		return err
	}
	n, err := s.f.ReadAt(b, off)
	if err != nil {
		if n > 0 && n < len(b) {
			return fmt.Errorf("netv3: file store short read [%d,+%d): got %d bytes: %w", off, len(b), n, err)
		}
		return fmt.Errorf("netv3: file store read [%d,+%d): %w", off, len(b), err)
	}
	return nil
}

// WriteAt implements BlockStore, reporting short writes distinctly from
// outright failures (see ReadAt).
func (s *FileStore) WriteAt(b []byte, off int64) error {
	if err := checkStoreRange(s.size, off, len(b)); err != nil {
		return err
	}
	n, err := s.f.WriteAt(b, off)
	if err != nil {
		if n > 0 && n < len(b) {
			return fmt.Errorf("netv3: file store short write [%d,+%d): wrote %d bytes: %w", off, len(b), n, err)
		}
		return fmt.Errorf("netv3: file store write [%d,+%d): %w", off, len(b), err)
	}
	// io.WriterAt's contract makes err non-nil whenever n < len(b), so a
	// nil-error short write cannot occur and needs no branch here.
	return nil
}

// Sync implements BlockStore: fsync the backing file.
func (s *FileStore) Sync() error {
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("netv3: file store sync: %w", err)
	}
	return nil
}

// Size implements BlockStore.
func (s *FileStore) Size() int64 { return s.size }

// Close implements BlockStore.
func (s *FileStore) Close() error { return s.f.Close() }
