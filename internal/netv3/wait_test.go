package netv3

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/wire"
)

// startHungServer speaks just enough protocol to complete the handshake,
// then swallows every request without answering — the shape of a wedged
// (not dead) backend, which only bounded waits can detect.
func startHungServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var mu sync.Mutex
	var conns []net.Conn
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			go func(conn net.Conn) {
				if _, err := wire.ReadFrom(conn); err != nil {
					return
				}
				wire.WriteTo(conn, &wire.ConnectResp{
					Status: wire.StatusOK, Credits: 8, MaxXfer: 1 << 20, SessionID: 1,
				})
				// Keep reading so the client's writes never block, but
				// never respond.
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestPendingWaitTimeout(t *testing.T) {
	addr := startHungServer(t)
	cfg := DefaultClientConfig()
	cfg.ReconnectBackoff = 10 * time.Millisecond
	cfg.MaxReconnects = 1
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, err := c.ReadAsync(1, 0, make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := h.WaitTimeout(50 * time.Millisecond); !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("err=%v, want ErrWaitTimeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("WaitTimeout took %v", d)
	}
	// The expired wait canceled the request and published ErrWaitTimeout
	// as its completion status; a second wait observes the same status
	// immediately rather than panicking or blocking.
	if err := h.WaitTimeout(10 * time.Millisecond); !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("second wait: err=%v, want ErrWaitTimeout", err)
	}
	// And the credit slot came home with the cancel: nothing is in
	// flight pinning the window behind an abandoned handle.
	if st := c.Stats(); st.InFlight != 0 {
		t.Fatalf("InFlight after expired wait = %d, want 0", st.InFlight)
	}
}

func TestPendingWaitContext(t *testing.T) {
	addr := startHungServer(t)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, err := c.ReadAsync(1, 0, make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if err := h.WaitContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}

// TestPendingWaitTimeoutCompleted pins that WaitTimeout on a finished
// request returns its result immediately, even with a zero bound.
func TestPendingWaitTimeoutCompleted(t *testing.T) {
	_, addr := startServer(t, DefaultServerConfig(), 1<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, err := c.ReadAsync(1, 0, make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := h.WaitTimeout(0); err != nil {
		t.Fatalf("completed request reported %v through WaitTimeout", err)
	}
	if err := h.WaitContext(context.Background()); err != nil {
		t.Fatalf("completed request reported %v through WaitContext", err)
	}
}

// TestZeroLengthRead pins the health-probe op the cluster vault relies
// on: a zero-length read is a legal request that completes successfully
// end-to-end.
func TestZeroLengthRead(t *testing.T) {
	_, addr := startServer(t, DefaultServerConfig(), 1<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Read(1, 0, nil); err != nil {
		t.Fatalf("zero-length read (nil buf): %v", err)
	}
	if err := c.Read(1, 0, []byte{}); err != nil {
		t.Fatalf("zero-length read (empty buf): %v", err)
	}
	h, err := c.ReadAsync(1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WaitTimeout(5 * time.Second); err != nil {
		t.Fatalf("async zero-length read: %v", err)
	}
}

// TestReconnectsCounterConcurrent exercises the Reconnects read path
// while the connection is being torn down repeatedly; under -race this
// pins that the counter is accessed atomically.
func TestReconnectsCounterConcurrent(t *testing.T) {
	_, addr := startServer(t, DefaultServerConfig(), 1<<20)
	cfg := DefaultClientConfig()
	cfg.ReconnectBackoff = 5 * time.Millisecond
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			_ = c.Reconnects()
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < 3; i++ {
		c.KillConnForTest()
		if err := c.Read(1, 0, make([]byte, 64)); err != nil {
			t.Fatalf("read after kill %d: %v", i, err)
		}
	}
	<-done
	if c.Reconnects() < 3 {
		t.Fatalf("reconnects=%d, want >=3", c.Reconnects())
	}
}
