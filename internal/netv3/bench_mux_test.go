package netv3

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The mux benchmarks measure the session-multiplexing claims directly:
// a flat p99 as the logical-session count grows 100× on one connection,
// throughput parity (or better) against a connection per client, and a
// foreground p99 that holds while the background lane is saturated.
// Rows land in BENCH_netv3.json with P99Micros filled in.

// benchMuxServer starts a scheduler-enabled server over a RAM-backed
// store. Deliberately no injected device delay: time.Sleep granularity
// on a small host (~1 ms observed on one CPU) dwarfs any realistic
// per-op delay and turns the numbers into runtime-timer noise. With a
// RAM store the benchmarks measure the software path — frame parse,
// scheduler queueing, credit accounting, response batching — which is
// what the multiplexing claims are about.
func benchMuxServer(b *testing.B, cfg ServerConfig) string {
	b.Helper()
	srv := NewServer(cfg)
	srv.AddVolume(1, NewMemStore(64<<20))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	b.Cleanup(func() { srv.Close() })
	return addr.String()
}

// openStreams opens n streams concurrently (serial opens at 10k streams
// would spend longer in setup than in the measured region).
func openStreams(b *testing.B, c *Client, n int, cfg StreamConfig) []*Stream {
	b.Helper()
	streams := make([]*Stream, n)
	var wg sync.WaitGroup
	var firstErr atomic.Value
	const openers = 16
	var next atomic.Int64
	for g := 0; g < openers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				st, err := c.OpenStream(cfg)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				streams[i] = st
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		b.Fatal(err)
	}
	return streams
}

// muxLoad drives total synchronous 4 KB reads through the streams from
// `workers` goroutines (the fixed offered load), spreading ops across
// streams round-robin, and returns the sorted per-op latencies plus the
// wall time.
func muxLoad(b *testing.B, streams []*Stream, workers, total int) ([]time.Duration, time.Duration) {
	b.Helper()
	var next atomic.Int64
	lats := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 4096)
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				st := streams[i%len(streams)]
				off := int64(i*4096) % (32 << 20)
				s := time.Now()
				if err := st.Read(1, off, buf); err != nil {
					b.Error(err)
					return
				}
				lats[w] = append(lats[w], time.Since(s))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(t0)
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all, wall
}

func p99us(sorted []time.Duration) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return float64(sorted[len(sorted)*99/100].Nanoseconds()) / 1e3
}

func meanus(sorted []time.Duration) float64 {
	if len(sorted) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return float64(sum.Nanoseconds()) / float64(len(sorted)) / 1e3
}

// BenchmarkNetv3MuxSessions holds the offered load fixed (64 concurrent
// synchronous readers) and grows the logical-session count 100×. The
// claim under test: p99 at 10000 streams on one connection stays within
// 2× of p99 at 100 streams — per-request cost must not scale with the
// stream population.
func BenchmarkNetv3MuxSessions(b *testing.B) {
	for _, nStreams := range []int{100, 10000} {
		b.Run(fmt.Sprintf("streams=%d", nStreams), func(b *testing.B) {
			cfg := DefaultServerConfig()
			cfg.SchedWorkers = 8
			cfg.Credits = 256
			addr := benchMuxServer(b, cfg)
			ccfg := DefaultClientConfig()
			ccfg.KeepaliveInterval = 0
			c, err := Dial(addr, ccfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })
			streams := openStreams(b, c, nStreams, StreamConfig{Credits: 1})
			b.ResetTimer()
			lats, wall := muxLoad(b, streams, 64, b.N)
			b.StopTimer()
			if len(lats) == 0 {
				b.Fatal("no ops completed")
			}
			ops := float64(len(lats)) / wall.Seconds()
			p99 := p99us(lats)
			b.ReportMetric(ops, "ops/s")
			b.ReportMetric(p99, "p99-µs")
			record(benchRecord{
				Name:      fmt.Sprintf("Netv3MuxSessions/streams=%d/4096x64", nStreams),
				OpsPerSec: ops, MBPerSec: ops * 4096 / 1e6,
				MeanMicros: meanus(lats), P99Micros: p99,
			})
		})
	}
}

// BenchmarkNetv3MuxVsConns pits 512 logical clients multiplexed on one
// connection against 512 real connections at equal concurrency (each
// logical client: one outstanding synchronous read). The multiplexed
// path must not cost throughput against the connection-per-client
// baseline it replaces.
func BenchmarkNetv3MuxVsConns(b *testing.B) {
	const clients = 512
	serverCfg := func() ServerConfig {
		cfg := DefaultServerConfig()
		cfg.SchedWorkers = 8
		cfg.Credits = clients // the mux conn's window must not cap concurrency
		return cfg
	}
	run := func(b *testing.B, io []IO) {
		b.Helper()
		var next atomic.Int64
		var done atomic.Int64
		var wg sync.WaitGroup
		b.ResetTimer()
		t0 := time.Now()
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := make([]byte, 4096)
				for {
					i := int(next.Add(1)) - 1
					if i >= b.N {
						return
					}
					h, err := io[w].ReadAsync(1, int64(i*4096)%(32<<20), buf)
					if err != nil {
						b.Error(err)
						return
					}
					if err := h.Wait(); err != nil {
						b.Error(err)
						return
					}
					done.Add(1)
				}
			}(w)
		}
		wg.Wait()
		wall := time.Since(t0)
		b.StopTimer()
		ops := float64(done.Load()) / wall.Seconds()
		b.ReportMetric(ops, "ops/s")
		name := "Netv3MuxVsConns/mux-512-streams-1-conn/4096"
		if len(io) > 0 {
			if _, isClient := io[0].(*Client); isClient {
				name = "Netv3MuxVsConns/conn-per-client-512/4096"
			}
		}
		record(benchRecord{Name: name, OpsPerSec: ops, MBPerSec: ops * 4096 / 1e6})
	}
	b.Run("mux-512-streams-1-conn", func(b *testing.B) {
		addr := benchMuxServer(b, serverCfg())
		ccfg := DefaultClientConfig()
		ccfg.KeepaliveInterval = 0
		ccfg.WantCredits = clients
		c, err := Dial(addr, ccfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		streams := openStreams(b, c, clients, StreamConfig{Credits: 1})
		io := make([]IO, clients)
		for i, st := range streams {
			io[i] = st
		}
		run(b, io)
	})
	b.Run("conn-per-client-512", func(b *testing.B) {
		addr := benchMuxServer(b, serverCfg())
		io := make([]IO, clients)
		for i := range io {
			ccfg := DefaultClientConfig()
			ccfg.KeepaliveInterval = 0
			c, err := Dial(addr, ccfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })
			io[i] = c
		}
		run(b, io)
	})
}

// BenchmarkNetv3MuxLane is the QoS-lane ablation: eight foreground
// sessions' read p99 measured alone, then with the background lane
// saturated by resync-style writes and destage churn on the same
// connection. The background traffic matches what vvault actually
// generates — stripe-sized (8 KB) replay writes plus the destage work
// they trigger — because that is the load the lane split exists to
// isolate. The lane split plus weighted round-robin is accepted when
// the loaded p99 stays within 1.5× of the unloaded one.
func BenchmarkNetv3MuxLane(b *testing.B) {
	for _, loaded := range []bool{false, true} {
		name := "fg-alone"
		if loaded {
			name = "fg-under-bg"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultServerConfig()
			cfg.SchedWorkers = 4
			cfg.Credits = 256
			cfg.CacheBlocks = 64 // small: fg misses, bg writes cross the high-watermark
			cfg.DirtyHighWater = 16
			cfg.DestageInterval = time.Millisecond
			addr := benchMuxServer(b, cfg)
			ccfg := DefaultClientConfig()
			ccfg.KeepaliveInterval = 0
			c, err := Dial(addr, ccfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })
			const fgSessions = 8
			fgStreams := make([]*Stream, fgSessions)
			for i := range fgStreams {
				st, err := c.OpenStream(StreamConfig{Credits: 1})
				if err != nil {
					b.Fatal(err)
				}
				fgStreams[i] = st
			}
			stop := make(chan struct{})
			var bgWG sync.WaitGroup
			if loaded {
				// The bg carve-out is deliberately small: each credit is a
				// payload the flooders may queue on the shared wire ahead
				// of a foreground frame, so the carve-out directly bounds
				// head-of-line blocking — the reason background streams
				// get small credit allocations (vvault's resync stream
				// does the same).
				bg, err := c.OpenStream(StreamConfig{Credits: 4, Background: true})
				if err != nil {
					b.Fatal(err)
				}
				// Two flooders are plenty: the carve-out (4 credits) bounds
				// offered bg load, so extra flooder goroutines only add
				// client-side scheduler churn without adding wire load.
				for g := 0; g < 2; g++ {
					bgWG.Add(1)
					go func(g int) {
						defer bgWG.Done()
						payload := make([]byte, 8<<10) // one vvault stripe
						for off := int64(g) * (3 << 20); ; off += int64(len(payload)) {
							select {
							case <-stop:
								return
							default:
							}
							if off >= int64(g+1)*(3<<20) {
								off = int64(g) * (3 << 20)
							}
							_ = bg.Write(1, off, payload)
						}
					}(g)
				}
				time.Sleep(20 * time.Millisecond) // let the flood establish
			}
			var mu sync.Mutex
			var lats []time.Duration
			var next atomic.Int64
			var fgWG sync.WaitGroup
			b.ResetTimer()
			for _, st := range fgStreams {
				fgWG.Add(1)
				go func(st *Stream) {
					defer fgWG.Done()
					buf := make([]byte, 8192)
					var local []time.Duration
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							break
						}
						off := int64(16<<20) + (i%1024)*8192
						s := time.Now()
						if err := st.Read(1, off, buf); err != nil {
							b.Error(err)
							break
						}
						local = append(local, time.Since(s))
					}
					mu.Lock()
					lats = append(lats, local...)
					mu.Unlock()
				}(st)
			}
			fgWG.Wait()
			b.StopTimer()
			close(stop)
			bgWG.Wait()
			if len(lats) == 0 {
				b.Fatal("no foreground ops completed")
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			p99 := p99us(lats)
			b.ReportMetric(p99, "p99-µs")
			record(benchRecord{
				Name:       "Netv3MuxLane/" + name + "/8192",
				MeanMicros: meanus(lats), P99Micros: p99,
			})
		})
	}
}
