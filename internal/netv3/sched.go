package netv3

import (
	"sync"
	"sync/atomic"

	"github.com/v3storage/v3/internal/obs"
)

// This file is the server's shared request scheduler — the dispatch model
// behind session multiplexing. The paper's server (Section 4) multiplexes
// many database sessions onto a small set of VIs and a fixed worker pool;
// the TCP analogue here replaces per-session dispatch with one bounded
// pool draining per-tenant weighted queues in two QoS lanes:
//
//   - foreground: client reads, writes, and flushes — the latency-sensitive
//     traffic whose p99 must stay flat as logical sessions scale to 10k+.
//   - background: destage passes, prefetch fills, and requests from streams
//     opened with ClassBackground (resync-style utility traffic).
//
// The foreground lane has strict priority, except that every
// bgStarvationStride-th pop takes background work first so a saturated
// foreground can never starve destaging into a dirty-block pileup.
//
// Isolation runs the other way too: at most workers-1 background tasks
// execute concurrently, so a convoy of background work (e.g. write-through
// and destage tasks serializing on the destage mutex) can never occupy
// every worker — one is always free the moment foreground work arrives.
// Without the reservation a saturated background lane adds its whole
// convoy length to the foreground p99; with it the foreground wait is
// bounded by its own service time. The cap is lifted during close so
// shutdown still drains the background lane.
//
// Within a lane, tenants (one per logical stream, keyed sessID<<32|stream)
// are drained round-robin with per-visit budgets equal to their weights, so
// one chatty stream cannot monopolize the pool while 9,999 idle-ish streams
// each wait for a single request — the mechanism that keeps p99 flat under
// high session counts.
//
// Admission control sheds foreground work instead of queueing without
// bound: past the configured limit, tryEnqueue refuses and the session loop
// answers StatusEOverloaded with a retry-after hint sized to the backlog.
//
// Deadlock discipline: a task running on a scheduler worker must never
// block on the completion of another scheduler task. Background routing
// therefore happens only from dedicated goroutines (the destager's run
// loop, the prefetch worker's fill goroutines), which enqueue and wait;
// flush tasks call destageAll inline rather than enqueueing it.

// bgStarvationStride makes every N-th worker pop service the background
// lane even when foreground work is pending.
const bgStarvationStride = 16

// schedBGKeys allocates tenant keys for the server's internal background
// flows (destagers, prefetchers), counting down from the top of the key
// space so they can never collide with session tenants (sessID<<32|stream
// with a monotonically increasing session counter).
var schedBGKeys atomic.Uint64

func newBGKey() uint64 { return ^uint64(0) - schedBGKeys.Add(1) }

// tenantKey names one logical stream's scheduler queue.
func tenantKey(sess uint64, stream uint32) uint64 {
	return sess<<32 | uint64(stream)
}

// schedTask is one unit of deferred work.
type schedTask struct {
	run func()
	enq int64 // obs.Now at enqueue; zero when metrics are off
}

// tenantQ is one tenant's FIFO within a lane. head indexes the next task
// so dequeue is O(1) without reslicing the backing array away from reuse.
type tenantQ struct {
	key    uint64
	weight int
	budget int // tasks remaining in the current round-robin visit
	head   int
	tasks  []schedTask
	queued bool // on the lane's active ring
}

// laneQ is one QoS lane: the active-tenant ring plus the tenant registry.
// All access is under the scheduler mutex.
type laneQ struct {
	tenants map[uint64]*tenantQ
	ring    []*tenantQ
	next    int // ring index of the current round-robin position
	n       int // total queued tasks across tenants
}

func newLaneQ() laneQ { return laneQ{tenants: make(map[uint64]*tenantQ)} }

// enqueue appends t to the tenant's FIFO, activating the tenant if idle.
func (l *laneQ) enqueue(key uint64, weight int, t schedTask) {
	if weight < 1 {
		weight = 1
	}
	tq := l.tenants[key]
	if tq == nil {
		tq = &tenantQ{key: key}
		l.tenants[key] = tq
	}
	tq.weight = weight
	tq.tasks = append(tq.tasks, t)
	l.n++
	if !tq.queued {
		tq.queued = true
		tq.budget = weight
		l.ring = append(l.ring, tq)
	}
}

// pop removes one task by weighted round-robin: the tenant at the ring
// position yields up to weight tasks per visit before the position
// advances. Call only when l.n > 0.
func (l *laneQ) pop() schedTask {
	for {
		tq := l.ring[l.next]
		if tq.head >= len(tq.tasks) {
			l.removeAt(l.next)
			continue
		}
		t := tq.tasks[tq.head]
		tq.tasks[tq.head] = schedTask{} // release the closure
		tq.head++
		l.n--
		tq.budget--
		if tq.head >= len(tq.tasks) {
			tq.tasks = tq.tasks[:0]
			tq.head = 0
			l.removeAt(l.next)
		} else if tq.budget <= 0 {
			tq.budget = tq.weight
			l.next = (l.next + 1) % len(l.ring)
		}
		return t
	}
}

// removeAt drops the ring entry at i (swap-remove) and retires the tenant
// from the registry so 10k churning streams don't accrete dead queues.
func (l *laneQ) removeAt(i int) {
	tq := l.ring[i]
	tq.queued = false
	delete(l.tenants, tq.key)
	last := len(l.ring) - 1
	l.ring[i] = l.ring[last]
	l.ring[last] = nil
	l.ring = l.ring[:last]
	if l.next >= len(l.ring) {
		l.next = 0
	}
}

// sched is the shared scheduler instance; one per server when
// SchedWorkers > 0.
type sched struct {
	s       *Server
	workers int
	limit   int // max queued foreground tasks before admission sheds

	mu        sync.Mutex
	cond      *sync.Cond
	fg, bg    laneQ
	bgRunning int // background tasks currently executing
	bgMax     int // cap on bgRunning (workers-1; min 1) — the fg reservation
	closed    bool
	wg        sync.WaitGroup

	shed        atomic.Int64 // foreground tasks refused by admission control
	fgDone      atomic.Int64
	bgDone      atomic.Int64
	strideFires atomic.Int64 // bg pops taken while fg work was pending (anti-starvation)
}

func newSched(s *Server, workers, limit int) *sched {
	if limit <= 0 {
		limit = workers * 256
	}
	bgMax := workers - 1
	if bgMax < 1 {
		bgMax = 1
	}
	sc := &sched{s: s, workers: workers, limit: limit, bgMax: bgMax, fg: newLaneQ(), bg: newLaneQ()}
	sc.cond = sync.NewCond(&sc.mu)
	sc.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go sc.worker()
	}
	return sc
}

// tryEnqueue queues run under the tenant's lane. A false return means the
// task was NOT accepted: either admission shed it (queued reports the
// foreground backlog for the retry hint) or the scheduler is closed
// (queued == 0) and the caller must run the work itself or fail the
// request. Background enqueues are never shed — their depth is bounded by
// their producers (client credits, one destage pass at a time).
func (sc *sched) tryEnqueue(key uint64, weight int, bg bool, run func()) (ok bool, queued int) {
	var enq int64
	if sc.s.om != nil {
		enq = obs.Now()
	}
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return false, 0
	}
	l := &sc.fg
	if bg {
		l = &sc.bg
	} else if sc.fg.n >= sc.limit {
		n := sc.fg.n
		sc.mu.Unlock()
		sc.shed.Add(1)
		return false, n
	}
	l.enqueue(key, weight, schedTask{run: run, enq: enq})
	sc.mu.Unlock()
	sc.cond.Signal()
	return true, 0
}

// retryAfterMS sizes the shed hint to the backlog: roughly how long the
// queue needs to drain at one task per worker per ~16 queue lengths, so a
// deeper pileup pushes retries further out.
func (sc *sched) retryAfterMS(queued int) uint16 {
	ms := 1 + queued/(sc.workers*16)
	if ms > 60000 {
		ms = 60000
	}
	return uint16(ms)
}

func (sc *sched) worker() {
	defer sc.wg.Done()
	tick := 0
	for {
		sc.mu.Lock()
		for {
			// Background work is poppable only while under the concurrency
			// cap (lifted at close so shutdown drains the lane).
			bgReady := sc.bg.n > 0 && (sc.bgRunning < sc.bgMax || sc.closed)
			if sc.fg.n > 0 || bgReady {
				break
			}
			if sc.closed {
				sc.mu.Unlock() // drained (or only capped bg left — impossible when closed)
				return
			}
			sc.cond.Wait()
		}
		tick++
		var t schedTask
		fromBG := false
		if sc.bg.n > 0 && (sc.bgRunning < sc.bgMax || sc.closed) &&
			(sc.fg.n == 0 || tick%bgStarvationStride == 0) {
			if sc.fg.n > 0 {
				sc.strideFires.Add(1) // bg taken ahead of pending fg: the starvation guard fired
			}
			t = sc.bg.pop()
			fromBG = true
			sc.bgRunning++
		} else {
			t = sc.fg.pop()
		}
		sc.mu.Unlock()
		if t.enq != 0 {
			d := obs.Now() - t.enq
			if fromBG {
				sc.s.om.schedBGWait.Observe(d)
			} else {
				sc.s.om.schedFGWait.Observe(d)
			}
		}
		t.run()
		if fromBG {
			sc.mu.Lock()
			sc.bgRunning--
			sc.mu.Unlock()
			sc.cond.Signal() // a bg slot freed; wake a capped waiter
			sc.bgDone.Add(1)
		} else {
			sc.fgDone.Add(1)
		}
	}
}

// close stops admissions, drains both lanes, and waits out the workers.
func (sc *sched) close() {
	sc.mu.Lock()
	sc.closed = true
	sc.mu.Unlock()
	sc.cond.Broadcast()
	sc.wg.Wait()
}

// SchedStats is a snapshot of the shared scheduler; zero when the
// scheduler is disabled.
type SchedStats struct {
	Workers     int
	FGQueued    int   // foreground tasks waiting
	BGQueued    int   // background tasks waiting
	FGTenants   int   // tenants with queued foreground work
	BGTenants   int   // tenants with queued background work
	FGDone      int64 // foreground tasks completed
	BGDone      int64 // background tasks completed
	Shed        int64 // foreground tasks refused by admission control
	StrideFires int64 // anti-starvation pops (bg taken while fg was pending)
}

// SchedStats returns scheduler counters (zero value when SchedWorkers is 0).
func (s *Server) SchedStats() SchedStats {
	sc := s.sched
	if sc == nil {
		return SchedStats{}
	}
	sc.mu.Lock()
	st := SchedStats{
		Workers:  sc.workers,
		FGQueued: sc.fg.n, BGQueued: sc.bg.n,
		FGTenants: len(sc.fg.tenants), BGTenants: len(sc.bg.tenants),
	}
	sc.mu.Unlock()
	st.FGDone = sc.fgDone.Load()
	st.BGDone = sc.bgDone.Load()
	st.Shed = sc.shed.Load()
	st.StrideFires = sc.strideFires.Load()
	return st
}

// SchedTenantStat is one tenant's live scheduler queue state.
type SchedTenantStat struct {
	Key    uint64 // sessID<<32|stream (internal bg flows count down from ^0)
	BG     bool   // which lane the queue lives in
	Queued int    // tasks waiting
	Weight int    // round-robin weight
}

// SchedTenants snapshots every tenant with queued work, foreground lane
// first. Nil when the scheduler is disabled or idle — tenants retire the
// moment their queues drain, so this is the transient backlog, not a
// roster of connected streams.
func (s *Server) SchedTenants() []SchedTenantStat {
	sc := s.sched
	if sc == nil {
		return nil
	}
	var out []SchedTenantStat
	sc.mu.Lock()
	for _, l := range []*laneQ{&sc.fg, &sc.bg} {
		for _, tq := range l.tenants {
			out = append(out, SchedTenantStat{
				Key: tq.key, BG: l == &sc.bg,
				Queued: len(tq.tasks) - tq.head, Weight: tq.weight,
			})
		}
	}
	sc.mu.Unlock()
	return out
}
