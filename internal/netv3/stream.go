package netv3

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/v3storage/v3/internal/wire"
)

// ErrOverloaded is the sentinel behind shed completions: the server's
// admission control rejected the request instead of queueing it. Match
// with errors.Is; the concrete *OverloadedError carries the server's
// retry-after hint.
var ErrOverloaded = errors.New("netv3: server overloaded")

// ErrStreamClosed is returned by submissions on a closed stream, and is
// the completion status of requests in flight on a stream when it closed.
var ErrStreamClosed = errors.New("netv3: stream closed")

// ErrStreamsUnsupported is returned by OpenStream when the connected
// server did not negotiate the stream feature (an old binary).
var ErrStreamsUnsupported = errors.New("netv3: peer does not support streams")

// OverloadedError is the concrete shed error: errors.Is(err,
// ErrOverloaded) matches it, and RetryAfter carries the server's backoff
// hint (zero when the server offered none).
type OverloadedError struct {
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("netv3: server overloaded (retry after %v)", e.RetryAfter)
	}
	return "netv3: server overloaded"
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// respErr maps a response status (plus its shed hint) to the completion
// error. The common path — StatusOK — stays a single compare.
func respErr(s wire.Status, retryMS uint16) error {
	if s == wire.StatusOK {
		return nil
	}
	if s == wire.StatusEOverloaded {
		return &OverloadedError{RetryAfter: time.Duration(retryMS) * time.Millisecond}
	}
	return s.Err()
}

// IO is the async block-I/O surface shared by a whole client session and
// by one logical stream of it: cluster layers program against IO so a
// vault backend can ride a multiplexed stream or a bare connection
// interchangeably.
type IO interface {
	ReadAsync(vol uint32, off int64, buf []byte) (*Pending, error)
	WriteAsync(vol uint32, off int64, data []byte) (*Pending, error)
	FlushAsync(vol uint32) (*Pending, error)
	ReadAsyncCtx(ctx context.Context, vol uint32, off int64, buf []byte) (*Pending, error)
	WriteAsyncCtx(ctx context.Context, vol uint32, off int64, data []byte) (*Pending, error)
	FlushAsyncCtx(ctx context.Context, vol uint32) (*Pending, error)
}

var (
	_ IO = (*Client)(nil)
	_ IO = (*Stream)(nil)
)

// StreamConfig tunes one logical stream.
type StreamConfig struct {
	// Credits caps how many of the connection's credit slots this stream
	// may hold concurrently — its carve-out of the shared window. Streams
	// never add slots: the connection window stays the hard bound, the
	// per-stream cap keeps one chatty logical client from monopolizing it.
	// 0 asks for 1.
	Credits int
	// Weight is the stream's share in the server's per-tenant weighted
	// round-robin (0 = default weight 1). A weight-4 stream gets up to 4
	// requests dispatched per scheduler visit.
	Weight int
	// Background routes the stream's requests to the server's background
	// QoS lane (destage/resync/prefetch-class traffic), which can never
	// starve the foreground lane.
	Background bool
}

// Stream is one logical client session multiplexed over a Client's
// connection — the paper's many-database-sessions-per-VI shape. Each
// stream holds its own credit carve-out and QoS class; thousands can
// share one wire connection. Safe for concurrent use.
type Stream struct {
	c   *Client
	id  uint32
	cfg StreamConfig

	// sem holds the stream's credit tokens (capacity = granted credits).
	// Submission takes a token before competing for a connection slot, so
	// a stream at its cap queues locally instead of starving siblings.
	sem chan struct{}

	closed atomic.Bool
}

// ID returns the wire stream id.
func (st *Stream) ID() uint32 { return st.id }

// Credits returns the granted per-stream credit cap.
func (st *Stream) Credits() int { return cap(st.sem) }

// Background reports whether the stream rides the background QoS lane.
func (st *Stream) Background() bool { return st.cfg.Background }

// acquire takes one stream credit, honoring ctx (nil = block forever).
func (st *Stream) acquire(ctx context.Context) error {
	if ctx == nil {
		<-st.sem
		return nil
	}
	select {
	case <-st.sem:
		return nil
	default:
	}
	select {
	case <-st.sem:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns one stream credit.
func (st *Stream) release() { st.sem <- struct{}{} }

// submit runs the client submission path under this stream's credit
// carve-out and stream id. The closed check repeats after the credit
// wait: Close drains in-flight requests, and their returning tokens must
// wake blocked submitters into an error, not into a dead stream.
func (st *Stream) submit(ctx context.Context, op int, vol uint32, off int64, buf, data []byte) (*Pending, error) {
	if st.closed.Load() {
		return nil, ErrStreamClosed
	}
	if err := st.acquire(ctx); err != nil {
		return nil, err
	}
	if st.closed.Load() {
		st.release()
		return nil, ErrStreamClosed
	}
	p, err := st.c.submit(ctx, st, op, vol, off, buf, data)
	if err != nil {
		st.release()
		return nil, err
	}
	return p, nil
}

// ReadAsync submits a read on this stream; see Client.ReadAsync.
func (st *Stream) ReadAsync(vol uint32, off int64, buf []byte) (*Pending, error) {
	return st.submit(nil, opRead, vol, off, buf, nil)
}

// ReadAsyncCtx is ReadAsync with a cancelable credit wait.
func (st *Stream) ReadAsyncCtx(ctx context.Context, vol uint32, off int64, buf []byte) (*Pending, error) {
	return st.submit(ctx, opRead, vol, off, buf, nil)
}

// WriteAsync submits a write on this stream; see Client.WriteAsync.
func (st *Stream) WriteAsync(vol uint32, off int64, data []byte) (*Pending, error) {
	return st.submit(nil, opWrite, vol, off, nil, data)
}

// WriteAsyncCtx is WriteAsync with a cancelable credit wait.
func (st *Stream) WriteAsyncCtx(ctx context.Context, vol uint32, off int64, data []byte) (*Pending, error) {
	return st.submit(ctx, opWrite, vol, off, nil, data)
}

// FlushAsync submits a durability barrier on this stream.
func (st *Stream) FlushAsync(vol uint32) (*Pending, error) {
	return st.submit(nil, opFlush, vol, 0, nil, nil)
}

// FlushAsyncCtx is FlushAsync with a cancelable credit wait.
func (st *Stream) FlushAsyncCtx(ctx context.Context, vol uint32) (*Pending, error) {
	return st.submit(ctx, opFlush, vol, 0, nil, nil)
}

// Read is the synchronous read on this stream.
func (st *Stream) Read(vol uint32, off int64, buf []byte) error {
	h, err := st.ReadAsync(vol, off, buf)
	if err != nil {
		return err
	}
	return h.Wait()
}

// Write is the synchronous write on this stream.
func (st *Stream) Write(vol uint32, off int64, data []byte) error {
	h, err := st.WriteAsync(vol, off, data)
	if err != nil {
		return err
	}
	return h.Wait()
}

// Flush is the synchronous durability barrier on this stream.
func (st *Stream) Flush(vol uint32) error {
	h, err := st.FlushAsync(vol)
	if err != nil {
		return err
	}
	return h.Wait()
}

// Close retires the stream: requests still in flight on it complete with
// ErrStreamClosed (their buffers detach exactly like Cancel — a late
// response from the server is drained by sequence-number mismatch without
// touching caller memory), the server is told to drop the stream's
// scheduler state, and further submissions fail fast. Idempotent.
func (st *Stream) Close() error {
	if !st.closed.CompareAndSwap(false, true) {
		return nil
	}
	c := st.c

	// Detach in-flight requests. Collect under mu, cancel outside it:
	// cancel re-takes mu and re-checks membership, so a racing completion
	// simply wins.
	c.mu.Lock()
	var inflight []*Pending
	for _, p := range c.pending {
		if p.st == st {
			inflight = append(inflight, p)
		}
	}
	delete(c.streams, st.id)
	gen := c.genID
	closed := c.closed
	c.mu.Unlock()
	for _, p := range inflight {
		p.cancel(ErrStreamClosed)
	}
	if !closed {
		c.sendCtl(gen, &wire.StreamClose{Header: wire.Header{Stream: st.id}})
	}
	c.streamsOpen.Add(-1)
	return nil
}

// OpenStream negotiates a new logical stream on the connection. The
// request round-trips to the server (bounded by DialTimeout) so the grant
// — per-stream credits, admission — is authoritative. Under overload the
// server can refuse with ErrOverloaded plus a retry-after hint.
func (c *Client) OpenStream(cfg StreamConfig) (*Stream, error) {
	if cfg.Credits <= 0 {
		cfg.Credits = 1
	}
	if cfg.Credits > int(^uint16(0)) {
		cfg.Credits = int(^uint16(0))
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.features&wire.FeatureStreams == 0 {
		c.mu.Unlock()
		return nil, ErrStreamsUnsupported
	}
	if c.maxStreams > 0 && len(c.streams) >= int(c.maxStreams) {
		c.mu.Unlock()
		return nil, fmt.Errorf("netv3: stream cap %d reached", c.maxStreams)
	}
	c.nextStream++
	id := c.nextStream
	ch := make(chan *wire.StreamOpenResp, 1)
	c.openWaiters[id] = ch
	gen := c.genID
	c.mu.Unlock()

	class := wire.ClassForeground
	if cfg.Background {
		class = wire.ClassBackground
	}
	c.sendCtl(gen, &wire.StreamOpen{
		Header: wire.Header{Stream: id},
		Class:  class, Weight: uint16(cfg.Weight), WantCreds: uint16(cfg.Credits),
	})

	timeout := c.cfg.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	var resp *wire.StreamOpenResp
	select {
	case resp = <-ch:
	case <-t.C:
		c.mu.Lock()
		delete(c.openWaiters, id)
		c.mu.Unlock()
		// A response that raced the delete is ignored by the reader.
		select {
		case resp = <-ch:
		default:
			return nil, fmt.Errorf("netv3: stream open timed out after %v", timeout)
		}
	}
	c.mu.Lock()
	delete(c.openWaiters, id)
	c.mu.Unlock()
	if err := respErr(resp.Status, resp.RetryAfterMS); err != nil {
		return nil, err
	}
	credits := int(resp.Credits)
	if credits <= 0 {
		credits = 1
	}
	st := &Stream{c: c, id: id, cfg: cfg, sem: make(chan struct{}, credits)}
	for i := 0; i < credits; i++ {
		st.sem <- struct{}{}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.streams[id] = st
	c.mu.Unlock()
	c.streamsOpen.Add(1)
	c.streamsOpened.Add(1)
	return st, nil
}

// StreamsSupported reports whether the connected server negotiated the
// stream feature.
func (c *Client) StreamsSupported() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.features&wire.FeatureStreams != 0
}

// MaxStreams returns the server's per-connection stream cap (0 when
// streams are off).
func (c *Client) MaxStreams() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int(c.maxStreams)
}
