package netv3

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/wire"
)

// startSchedServer is startServer with the shared scheduler enabled.
func startSchedServer(t *testing.T, cfg ServerConfig, volSize int64) (*Server, string) {
	t.Helper()
	if cfg.SchedWorkers == 0 {
		cfg.SchedWorkers = 4
	}
	return startServer(t, cfg, volSize)
}

// TestStreamsBasicIO drives reads, writes, and flushes over a handful of
// logical streams multiplexed on one connection against a scheduler-mode
// server, checks data integrity end to end, and checks that the active
// session/stream gauges rise and fall with the population (satellite:
// active — not just cumulative — tracking).
func TestStreamsBasicIO(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.CacheBlocks = 256
	srv, addr := startSchedServer(t, cfg, 8<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.StreamsSupported() {
		t.Fatal("server did not negotiate the stream feature")
	}
	if c.MaxStreams() == 0 {
		t.Fatal("negotiated MaxStreams is 0")
	}

	const nStreams = 8
	streams := make([]*Stream, nStreams)
	for i := range streams {
		cfg := StreamConfig{Credits: 4}
		if i%3 == 2 {
			cfg.Background = true
			cfg.Weight = 2
		}
		st, err := c.OpenStream(cfg)
		if err != nil {
			t.Fatalf("OpenStream %d: %v", i, err)
		}
		streams[i] = st
	}
	if got := srv.StreamsActive(); got != nStreams {
		t.Fatalf("server StreamsActive = %d, want %d", got, nStreams)
	}
	if got := c.Stats().StreamsOpen; got != nStreams {
		t.Fatalf("client StreamsOpen = %d, want %d", got, nStreams)
	}
	if got := srv.SessionsActive(); got != 1 {
		t.Fatalf("SessionsActive = %d, want 1", got)
	}

	var wg sync.WaitGroup
	errs := make(chan error, nStreams)
	for i, st := range streams {
		wg.Add(1)
		go func(i int, st *Stream) {
			defer wg.Done()
			base := int64(i) * 512 * 1024
			payload := bytes.Repeat([]byte{byte(i + 1)}, 16<<10)
			for k := 0; k < 8; k++ {
				off := base + int64(k)*int64(len(payload))
				if err := st.Write(1, off, payload); err != nil {
					errs <- fmt.Errorf("stream %d write: %w", i, err)
					return
				}
			}
			if err := st.Flush(1); err != nil {
				errs <- fmt.Errorf("stream %d flush: %w", i, err)
				return
			}
			got := make([]byte, len(payload))
			for k := 0; k < 8; k++ {
				off := base + int64(k)*int64(len(got))
				if err := st.Read(1, off, got); err != nil {
					errs <- fmt.Errorf("stream %d read: %w", i, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("stream %d: data mismatch at %d", i, off)
					return
				}
			}
		}(i, st)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	for _, st := range streams {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// StreamClose frames race the gauge check; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for srv.StreamsActive() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.StreamsActive(); got != 0 {
		t.Fatalf("server StreamsActive after close = %d, want 0", got)
	}
	if got := c.Stats().StreamsOpen; got != 0 {
		t.Fatalf("client StreamsOpen after close = %d, want 0", got)
	}
	if got := srv.StreamsTotal(); got < nStreams {
		t.Fatalf("StreamsTotal = %d, want >= %d", got, nStreams)
	}
	if _, err := streams[0].ReadAsync(1, 0, make([]byte, 8)); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("submit on closed stream: got %v, want ErrStreamClosed", err)
	}
}

// TestStreamsOnClassicServer checks that the stream layer works without
// the shared scheduler: the registry and credit grants live in the session
// loop, so classic dispatch (and its disk pipeline) serve stream traffic
// unchanged.
func TestStreamsOnClassicServer(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.CacheBlocks = 128
	cfg.DiskWorkers = 2
	_, addr := startServer(t, cfg, 4<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.OpenStream(StreamConfig{Credits: 8})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5a}, 32<<10)
	if err := st.Write(1, 128<<10, payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := st.Read(1, 128<<10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data mismatch over stream on classic server")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamsUnsupportedPeer pins the fallback contract: against a server
// that negotiates no features (an old binary, simulated by a minimal
// handshake that echoes zero feature bits), the client connects and runs
// plain I/O fine, and OpenStream fails with ErrStreamsUnsupported.
func TestStreamsUnsupportedPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		m, err := wire.ReadFrom(conn)
		if err != nil {
			return
		}
		if _, ok := m.(*wire.Connect); !ok {
			return
		}
		// A pre-feature server: zeros where Features/MaxStreams now live.
		resp := &wire.ConnectResp{Status: wire.StatusOK, Credits: 8, MaxXfer: 1 << 20, SessionID: 1}
		_, _ = conn.Write(wire.Marshal(resp))
		// Hold the connection open until the client is done.
		buf := make([]byte, 1)
		_, _ = conn.Read(buf)
	}()
	cfg := DefaultClientConfig()
	cfg.KeepaliveInterval = 0
	c, err := Dial(ln.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.StreamsSupported() {
		t.Fatal("StreamsSupported true against a zero-feature peer")
	}
	if _, err := c.OpenStream(StreamConfig{}); !errors.Is(err, ErrStreamsUnsupported) {
		t.Fatalf("OpenStream: got %v, want ErrStreamsUnsupported", err)
	}
}

// TestAdmissionControlSheds saturates a one-worker, tiny-admission-limit
// scheduler with a slow store and checks that overload is shed fast with
// ErrOverloaded plus a nonzero retry-after hint, that non-shed requests
// still complete correctly, and that the shed counter surfaces the event.
func TestAdmissionControlSheds(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.SchedWorkers = 1
	cfg.AdmitLimit = 1
	srv := NewServer(cfg)
	srv.AddVolume(1, &slowStore{BlockStore: NewMemStore(1 << 20), delay: 2 * time.Millisecond})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })

	c, err := Dial(addr.String(), DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	pendings := make([]*Pending, 0, n)
	bufs := make([][]byte, n)
	for i := 0; i < n; i++ {
		bufs[i] = make([]byte, 4096)
		p, err := c.ReadAsync(1, 0, bufs[i])
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	var ok, shed int
	for _, p := range pendings {
		err := p.Wait()
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			shed++
			var oe *OverloadedError
			if !errors.As(err, &oe) {
				t.Fatalf("shed error is %T, want *OverloadedError", err)
			}
			if oe.RetryAfter <= 0 {
				t.Fatal("shed completion carries no retry-after hint")
			}
		default:
			t.Fatalf("unexpected completion: %v", err)
		}
	}
	if shed == 0 {
		t.Fatalf("no request was shed (ok=%d) — admission limit not enforced", ok)
	}
	if ok == 0 {
		t.Fatal("every request was shed — admission control admits nothing")
	}
	if got := srv.SchedStats().Shed; got < int64(shed) {
		t.Fatalf("SchedStats().Shed = %d, want >= %d", got, shed)
	}
	// The connection must still be usable after a shed storm.
	if err := c.Write(1, 0, []byte("still alive")); err != nil {
		t.Fatalf("post-shed write: %v", err)
	}
}

// TestClosedStreamResponseDrains is the demux regression test: a response
// arriving for a stream closed while the request was in flight must be
// drained off the wire without scribbling on the caller's buffer, and the
// connection must stay correctly framed for later traffic.
func TestClosedStreamResponseDrains(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.SchedWorkers = 2
	srv := NewServer(cfg)
	srv.AddVolume(1, &slowStore{BlockStore: NewMemStore(1 << 20), delay: 50 * time.Millisecond})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })

	c, err := Dial(addr.String(), DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.OpenStream(StreamConfig{Credits: 4})
	if err != nil {
		t.Fatal(err)
	}
	buf := bytes.Repeat([]byte{0xAB}, 8192)
	p, err := st.ReadAsync(1, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("in-flight completion: got %v, want ErrStreamClosed", err)
	}
	// Let the server's (slow) response arrive and be drained.
	time.Sleep(150 * time.Millisecond)
	for _, b := range buf {
		if b != 0xAB {
			t.Fatal("late response for a closed stream scribbled on the detached buffer")
		}
	}
	// Framing intact: fresh traffic on the same connection round-trips.
	want := []byte("post-close traffic")
	if err := c.Write(1, 4096, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := c.Read(1, 4096, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-close read mismatch — stream desynced")
	}
}

// TestStreamCreditCarveOut checks that a stream's credit cap only bounds
// its own concurrency: a 1-credit stream still completes a pipelined
// burst, and a sibling stream makes progress beside it.
func TestStreamCreditCarveOut(t *testing.T) {
	cfg := DefaultServerConfig()
	srv, addr := startSchedServer(t, cfg, 1<<20)
	_ = srv
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	narrow, err := c.OpenStream(StreamConfig{Credits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Credits() != 1 {
		t.Fatalf("granted credits = %d, want 1", narrow.Credits())
	}
	wide, err := c.OpenStream(StreamConfig{Credits: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 2)
	for _, st := range []*Stream{narrow, wide} {
		wg.Add(1)
		go func(st *Stream) {
			defer wg.Done()
			buf := make([]byte, 512)
			for i := 0; i < 32; i++ {
				if err := st.Read(1, int64(i)*512, buf); err != nil {
					errc <- err
					return
				}
			}
		}(st)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestStreamSurvivesReconnect checks that open streams are re-announced
// on the replacement session: after a killed connection, traffic on an
// already-open stream works again without reopening it.
func TestStreamSurvivesReconnect(t *testing.T) {
	cfg := DefaultServerConfig()
	_, addr := startSchedServer(t, cfg, 1<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.OpenStream(StreamConfig{Credits: 4, Weight: 3})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("before the cut")
	if err := st.Write(1, 0, payload); err != nil {
		t.Fatal(err)
	}
	c.KillConnForTest()
	// In-flight work fails with ErrConnLost; fresh submissions recover.
	got := make([]byte, len(payload))
	deadline := time.Now().Add(5 * time.Second)
	for {
		err = st.Read(1, 0, got)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream never recovered: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("post-reconnect read mismatch")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestManyStreamsOneConnection opens a few thousand logical streams on a
// single wire connection — the headline scale claim, kept small enough
// for CI — and drives one read on each, checking the gauges at peak and
// after teardown.
func TestManyStreamsOneConnection(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultServerConfig()
	cfg.CacheBlocks = 256
	srv, addr := startSchedServer(t, cfg, 4<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 2000
	streams := make([]*Stream, n)
	for i := range streams {
		st, err := c.OpenStream(StreamConfig{Credits: 1})
		if err != nil {
			t.Fatalf("OpenStream %d: %v", i, err)
		}
		streams[i] = st
	}
	if got := srv.StreamsActive(); got != n {
		t.Fatalf("StreamsActive = %d, want %d", got, n)
	}
	var wg sync.WaitGroup
	errc := make(chan error, n)
	sem := make(chan struct{}, 256) // bound test-side goroutine burst
	for i, st := range streams {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, st *Stream) {
			defer wg.Done()
			defer func() { <-sem }()
			buf := make([]byte, 1024)
			if err := st.Read(1, int64(i%1024)*1024, buf); err != nil {
				errc <- fmt.Errorf("stream %d: %w", i, err)
			}
		}(i, st)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for _, st := range streams {
		_ = st.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.StreamsActive() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.StreamsActive(); got != 0 {
		t.Fatalf("StreamsActive after teardown = %d, want 0", got)
	}
}
