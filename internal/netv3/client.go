package netv3

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/v3storage/v3/internal/flow"
	"github.com/v3storage/v3/internal/reliable"
	"github.com/v3storage/v3/internal/wire"
)

// ClientConfig tunes a netv3 client.
type ClientConfig struct {
	// WantCredits asks the server for a flow-control window (0 accepts
	// the server's default).
	WantCredits int
	// ReconnectBackoff and MaxReconnects drive the reconnection state
	// machine after a connection failure.
	ReconnectBackoff time.Duration
	MaxReconnects    int
	// DialTimeout bounds each dial attempt.
	DialTimeout time.Duration
}

// DefaultClientConfig returns production defaults.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		ReconnectBackoff: 100 * time.Millisecond,
		MaxReconnects:    8,
		DialTimeout:      5 * time.Second,
	}
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("netv3: client closed")

type pendingIO struct {
	seq    uint64
	msg    wire.Message // for replay after reconnection
	body   []byte       // write payload (replay) — nil for reads
	buf    []byte       // read destination
	doneCh chan error
}

// Client is a DSA-style block client for a netv3 server. It is safe for
// concurrent use; requests overlap up to the credit window.
type Client struct {
	cfg  ClientConfig
	addr string

	mu      sync.Mutex
	conn    net.Conn
	fc      *flow.Client
	creditC chan uint32 // available slot ids (buffered = window)
	pending map[uint64]*pendingIO
	tracker *reliable.Tracker
	reconn  *reliable.Reconnector
	nextSeq uint64
	nextReq uint64
	maxXfer uint32
	closed  bool
	genID   int // bumps on every reconnect; stale readers exit
	start   time.Time

	reconnects int64
}

// Dial connects to a netv3 server.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	c := &Client{
		cfg:     cfg,
		addr:    addr,
		pending: make(map[uint64]*pendingIO),
		tracker: reliable.NewTracker(0, 0),
		reconn:  reliable.NewReconnector(cfg.ReconnectBackoff, cfg.MaxReconnects),
		start:   time.Now(),
	}
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// connectLocked dials and handshakes; call with mu held (or before the
// client is shared).
func (c *Client) connectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	if err := wire.WriteTo(conn, &wire.Connect{ClientID: 1, WantCreds: uint16(c.cfg.WantCredits)}); err != nil {
		conn.Close()
		return err
	}
	msg, err := wire.ReadFrom(conn)
	if err != nil {
		conn.Close()
		return err
	}
	resp, ok := msg.(*wire.ConnectResp)
	if !ok || resp.Status != wire.StatusOK {
		conn.Close()
		return fmt.Errorf("netv3: handshake rejected: %v", msg)
	}
	c.conn = conn
	c.maxXfer = resp.MaxXfer
	// The credit window is created once; it survives reconnections (the
	// server grants the same window per session, and in-flight slots are
	// replayed on the new session).
	if c.creditC == nil {
		credits := int(resp.Credits)
		c.fc = flow.NewClient()
		c.fc.Grant(credits)
		c.creditC = make(chan uint32, credits)
		for {
			slot, err := c.fc.TakeNow()
			if err != nil {
				break
			}
			c.creditC <- slot
		}
	}
	c.genID++
	go c.reader(conn, c.genID)
	return nil
}

// MaxTransfer returns the server's per-request transfer bound.
func (c *Client) MaxTransfer() int { return int(c.maxXfer) }

// KillConnForTest severs the underlying TCP connection without marking
// the client closed, so the next I/O exercises the reconnection path.
// For fault-injection tests and demos only.
func (c *Client) KillConnForTest() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
	}
}

// Reconnects returns how many times the session has been re-established.
func (c *Client) Reconnects() int64 { return c.reconnects }

// Close tears the session down; outstanding requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn != nil {
		_ = wire.WriteTo(c.conn, &wire.Disconnect{})
		c.conn.Close()
	}
	for _, p := range c.pending {
		p.doneCh <- ErrClosed
	}
	c.pending = map[uint64]*pendingIO{}
	return nil
}

// Read fills buf from volume vol at off.
func (c *Client) Read(vol uint32, off int64, buf []byte) error {
	slot := <-c.creditC
	defer func() { c.creditC <- slot }()
	p := &pendingIO{buf: buf, doneCh: make(chan error, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.nextSeq++
	c.nextReq++
	p.seq = c.nextSeq
	m := &wire.Read{
		Header: wire.Header{Seq: p.seq}, ReqID: c.nextReq,
		Volume: vol, Offset: uint64(off), Length: uint32(len(buf)),
	}
	p.msg = m
	c.pending[p.seq] = p
	c.tracker.Track(p.seq, time.Since(c.start))
	err := wire.WriteTo(c.conn, m)
	c.mu.Unlock()
	if err != nil {
		c.connectionBroken()
	}
	return <-p.doneCh
}

// Write commits data to volume vol at off.
func (c *Client) Write(vol uint32, off int64, data []byte) error {
	slot := <-c.creditC
	defer func() { c.creditC <- slot }()
	p := &pendingIO{body: data, doneCh: make(chan error, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.nextSeq++
	c.nextReq++
	p.seq = c.nextSeq
	m := &wire.Write{
		Header: wire.Header{Seq: p.seq}, ReqID: c.nextReq,
		Volume: vol, Offset: uint64(off), Length: uint32(len(data)), Slot: slot,
	}
	p.msg = m
	c.pending[p.seq] = p
	c.tracker.Track(p.seq, time.Since(c.start))
	err := c.writeWithBody(m, data)
	c.mu.Unlock()
	if err != nil {
		c.connectionBroken()
	}
	return <-p.doneCh
}

// writeWithBody sends a control frame plus payload atomically with
// respect to other senders. Caller holds mu.
func (c *Client) writeWithBody(m wire.Message, body []byte) error {
	if err := wire.WriteTo(c.conn, m); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := c.conn.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// reader demultiplexes responses for one connection generation.
func (c *Client) reader(conn net.Conn, gen int) {
	for {
		msg, err := wire.ReadFrom(conn)
		if err != nil {
			c.mu.Lock()
			stale := gen != c.genID || c.closed
			c.mu.Unlock()
			if !stale {
				c.connectionBroken()
			}
			return
		}
		switch m := msg.(type) {
		case *wire.ReadResp:
			c.mu.Lock()
			p := c.pending[uint64(m.Ack)]
			c.mu.Unlock()
			var err error
			if p != nil && m.Status == wire.StatusOK {
				_, err = io.ReadFull(conn, p.buf)
			} else if m.Status != wire.StatusOK {
				err = m.Status.Err()
			}
			c.complete(uint64(m.Ack), err)
		case *wire.WriteResp:
			c.complete(uint64(m.Ack), m.Status.Err())
		case *wire.Pong:
			// liveness only
		default:
			// Unexpected frame: treat as protocol failure.
			c.connectionBroken()
			return
		}
	}
}

func (c *Client) complete(seq uint64, err error) {
	c.mu.Lock()
	p := c.pending[seq]
	delete(c.pending, seq)
	c.tracker.Ack(seq)
	c.mu.Unlock()
	if p != nil {
		p.doneCh <- err
	}
}

// connectionBroken drives the reconnection state machine: redial with
// backoff and replay every unacknowledged request on the new session.
func (c *Client) connectionBroken() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.reconn.State() != reliable.StateConnected {
		return
	}
	now := time.Since(c.start)
	c.reconn.ConnectionBroken(now)
	if c.conn != nil {
		c.conn.Close()
	}
	for c.reconn.State() == reliable.StateReconnecting {
		now = time.Since(c.start)
		if !c.reconn.ShouldAttempt(now) {
			next, _ := c.reconn.NextAttemptAt()
			c.mu.Unlock()
			time.Sleep(next - now)
			c.mu.Lock()
			if c.closed {
				return
			}
			continue
		}
		if err := c.connectLocked(); err != nil {
			c.reconn.AttemptFailed(time.Since(c.start))
			continue
		}
		c.reconn.AttemptSucceeded()
		c.reconnects++
		c.tracker.Reset(time.Since(c.start))
		// Replay unacknowledged requests in order on the new session.
		for _, seq := range c.tracker.Unacked() {
			p, ok := c.pending[seq]
			if !ok {
				continue
			}
			if err := c.writeWithBody(p.msg, p.body); err != nil {
				// New connection failed immediately; loop again.
				c.reconn.ConnectionBroken(time.Since(c.start))
				c.conn.Close()
				break
			}
		}
		if c.reconn.State() == reliable.StateConnected {
			return
		}
	}
	// Permanent failure: fail everything outstanding.
	for seq, p := range c.pending {
		delete(c.pending, seq)
		p.doneCh <- fmt.Errorf("netv3: connection lost and reconnection failed")
	}
	c.closed = true
}
