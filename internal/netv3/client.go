package netv3

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/v3storage/v3/internal/flow"
	"github.com/v3storage/v3/internal/obs"
	"github.com/v3storage/v3/internal/reliable"
	"github.com/v3storage/v3/internal/wire"
)

// ClientConfig tunes a netv3 client.
type ClientConfig struct {
	// WantCredits asks the server for a flow-control window (0 accepts
	// the server's default).
	WantCredits int
	// ReconnectBackoff and MaxReconnects drive the reconnection state
	// machine after a connection failure.
	ReconnectBackoff time.Duration
	MaxReconnects    int
	// DialTimeout bounds each dial attempt, including the handshake: a
	// peer that accepts the TCP connection but never answers the Connect
	// (blackholed, wedged) fails the attempt within this bound instead of
	// hanging the reconnection loop.
	DialTimeout time.Duration
	// KeepaliveInterval arms the idle-link hung-peer detector. When no
	// frame has arrived for a full interval, the client sends a TPing and
	// sets a read deadline one more interval out; a peer that stays
	// silent — socket open, nothing moving — fails the reader within
	// 2×interval and enters reconnection exactly like a closed peer.
	// While traffic flows the detector costs one atomic store per inbound
	// frame. 0 disables.
	KeepaliveInterval time.Duration
	// NoBatch disables submission frame batching (ablation: every request
	// is flushed to the socket individually).
	NoBatch bool
	// NoTrace stops the client from advertising FeatureTrace, so requests
	// go out untraced and responses carry zero spans — the knob for the
	// tracing ablation and for exercising the pre-trace-peer fallback
	// without an old binary.
	NoTrace bool
	// Metrics, when non-nil, enables the client's stage trace: every
	// request's submit → frame-stage → wire-write → server+net →
	// delivery → wakeup timestamps aggregate into per-stage histograms
	// (see ClientStageDefs) on this registry, plus the failure-path
	// counters (cancels, deadline expiries, hung-peer detections) and the
	// keepalive RTT histogram. Nil is the disabled fast path — capture
	// sites cost one branch.
	Metrics *obs.Registry
}

// DefaultClientConfig returns production defaults.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		ReconnectBackoff:  100 * time.Millisecond,
		MaxReconnects:     8,
		DialTimeout:       5 * time.Second,
		KeepaliveInterval: 2 * time.Second,
	}
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("netv3: client closed")

// ErrWaitTimeout is the completion status of a request whose bounded
// wait expired: the request is canceled (buffer detached, credit slot
// returned) and this error is published on the handle.
var ErrWaitTimeout = errors.New("netv3: wait timed out")

// ErrCanceled is the completion status of a request canceled via
// Pending.Cancel.
var ErrCanceled = errors.New("netv3: request canceled")

// ErrConnLost is the completion status of requests that were outstanding
// when the connection broke and could not be replayed (reconnection
// exhausted its attempts). Callers such as cluster layers use it to tell
// a dead backend from an I/O error the backend itself reported.
var ErrConnLost = errors.New("netv3: connection lost and reconnection failed")

// Pending is one in-flight request and its completion handle — the TCP
// counterpart of the cDSA API's async calls plus Poll/Wait
// (internal/core/api.go calls 5, 6, 9, 10).
type Pending struct {
	c    *Client
	st   *Stream // issuing stream (nil = root session); holds one stream credit
	seq  uint64
	slot uint32       // credit slot held until completion
	msg  wire.Message // for replay after reconnection
	body []byte       // write payload (replay) — nil for reads
	buf  []byte       // read destination
	err  error        // completion status; valid once done is closed
	done chan struct{}

	// Stage-trace timestamps (obs.Now nanos), populated only when the
	// client has a metrics registry: t0 submit entry, t1 frame staged,
	// t2 socket write done, t3 response frame decoded, t4 completion
	// published. The wakeup stamp is taken by whichever Wait/Done call
	// first observes the completion; recorded makes the trace fold into
	// the histograms exactly once.
	t0, t1, t2, t3, t4 int64
	recorded           atomic.Bool

	// span is the server-side stage block echoed in the response of a
	// traced request (zeros against a pre-trace server). Written by the
	// reader before the completion publishes, so it is stable once done
	// is closed.
	span wire.SrvSpan
}

// ServerSpan returns the server-side stage decomposition the response
// carried back: scheduler+queue wait, worker service time, and the disk
// queue-wait/device-time split. All zeros when the request was untraced
// (see Traced), the server predates FeatureTrace, or the request failed
// before a response arrived. Valid once the request completes.
func (h *Pending) ServerSpan() wire.SrvSpan { return h.span }

// finishTrace folds the request's stage trace into the client's
// histograms, once, from the first waiter to observe completion. A
// request without a full trace (metrics disabled, or failed before a
// response arrived) records nothing.
func (h *Pending) finishTrace() {
	c := h.c
	if c == nil || c.om == nil || h.t0 == 0 || h.t3 == 0 {
		return
	}
	if !h.recorded.CompareAndSwap(false, true) {
		return
	}
	c.om.recordTrace(h.t0, h.t1, h.t2, h.t3, h.t4, obs.Now(), h.span)
}

// Done reports without blocking whether the request has completed — the
// polling primitive.
func (h *Pending) Done() bool {
	select {
	case <-h.done:
		h.finishTrace()
		return true
	default:
		return false
	}
}

// Wait blocks until the request completes and returns its status. It may
// be called any number of times, from any goroutine.
func (h *Pending) Wait() error {
	<-h.done
	h.finishTrace()
	return h.err
}

// WaitTimeout blocks until the request completes or d elapses. An
// expired wait CANCELS the request: the buffers passed to
// ReadAsync/WriteAsync are detached (the caller owns them again the
// moment this returns) and the credit slot goes back to the window
// immediately — an abandoned handle can no longer pin a slot until the
// server deigns to answer. ErrWaitTimeout is both the return value and
// the handle's published completion status, so later waiters see it too.
// If the completion races the expiry, the request's real status wins and
// is returned instead.
func (h *Pending) WaitTimeout(d time.Duration) error {
	select {
	case <-h.done:
		h.finishTrace()
		return h.err
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-h.done:
		h.finishTrace()
		return h.err
	case <-t.C:
		if c := h.c; c != nil {
			c.waitTimeouts.Add(1)
			c.om.noteDeadline()
		}
		if h.cancel(ErrWaitTimeout) {
			return ErrWaitTimeout
		}
		<-h.done
		h.finishTrace()
		return h.err
	}
}

// WaitContext is the context-aware WaitTimeout: if ctx ends first the
// request is canceled the same way (buffer detached, slot returned) and
// ctx.Err() is published and returned.
func (h *Pending) WaitContext(ctx context.Context) error {
	select {
	case <-h.done:
		h.finishTrace()
		return h.err
	case <-ctx.Done():
		if c := h.c; c != nil {
			c.waitTimeouts.Add(1)
			c.om.noteDeadline()
		}
		if h.cancel(ctx.Err()) {
			return ctx.Err()
		}
		<-h.done
		h.finishTrace()
		return h.err
	}
}

// Cancel detaches the request from its caller: the handle completes with
// ErrCanceled, the credit slot returns to the window immediately, and
// the read/write buffers are released — the caller owns them again the
// moment Cancel returns true. The request itself may still reach the
// server; a late response is recognized by its stale sequence number and
// drained without touching caller memory (the server releases a write's
// staging slot in frame order, so a canceled slot reused on the same
// session cannot collide). Cancel reports false when the request already
// completed — or its payload delivery had begun — in which case the
// handle carries the real status and the caller must Wait before
// touching the buffers.
func (h *Pending) Cancel() bool { return h.cancel(ErrCanceled) }

// cancel completes the handle with cause if the request is still
// pending. Removal from the pending map under mu is the exclusion point
// against the reader's claim (see reader): whichever side removes the
// request owns its buffers.
func (h *Pending) cancel(cause error) bool {
	c := h.c
	if c == nil {
		return false
	}
	c.mu.Lock()
	if c.pending[h.seq] != h {
		c.mu.Unlock()
		return false
	}
	delete(c.pending, h.seq)
	c.tracker.Ack(h.seq)
	h.buf = nil
	h.body = nil
	h.msg = nil
	c.mu.Unlock()
	c.cancels.Add(1)
	c.om.noteCancel()
	c.finish(h, cause)
	return true
}

// Traced reports whether this request carries the sampled stage trace
// (1 in traceSample requests on a metrics-enabled client). Callers
// comparing the breakdown table against their own end-to-end timing
// should average over traced requests only, so both sides describe the
// same population.
func (h *Pending) Traced() bool { return h.t0 != 0 }

// TraceSupported reports whether the connected server negotiated the
// trace feature: sampled requests carry a trace id and return a filled
// server span block. False against a pre-trace server or when either
// side set NoTrace — the client then keeps its client-only stage trace
// and the merged table's server columns read zero.
func (c *Client) TraceSupported() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.features&wire.FeatureTrace != 0
}

// Client is a DSA-style block client for a netv3 server. It is safe for
// concurrent use; requests overlap up to the credit window.
//
// Locking: mu guards only request bookkeeping (pending map, sequence
// numbers, connection identity, reconnection state). Payload
// transmission happens under the separate sendMu, so concurrent
// submitters and the completion path never wait behind a blocking
// network write — the lock-minimization lesson of Section 3.3 applied to
// the client. Reconnection dials run under NEITHER lock (see recover):
// a 5-second dial to a dead peer must not freeze Stats, Close, cancels,
// or other submitters' bookkeeping.
type Client struct {
	cfg  ClientConfig
	addr string

	mu         sync.Mutex
	conn       net.Conn
	fc         *flow.Client
	creditC    chan uint32 // available slot ids (buffered = window)
	pending    map[uint64]*Pending
	tracker    *reliable.Tracker
	reconn     *reliable.Reconnector
	recovering bool // single-flight guard: one goroutine owns the reconnect loop
	nextSeq    uint64
	nextReq    uint64
	maxXfer    uint32
	closed     bool
	genID      int // bumps on every reconnect; stale readers exit
	start      time.Time

	// Stream multiplexing state (guarded by mu). features/maxStreams come
	// from the last handshake; streams holds the open logical streams;
	// openWaiters routes StreamOpenResp frames (keyed by stream id) to the
	// goroutine blocked in OpenStream.
	features    uint32
	maxStreams  uint16
	streams     map[uint32]*Stream
	nextStream  uint32
	openWaiters map[uint32]chan *wire.StreamOpenResp

	// Submission path, guarded by sendMu. bw wraps the generation-bwGen
	// connection; senders counts goroutines queued for sendMu, driving
	// the adaptive flush (flush only when nobody else is about to write).
	sendMu  sync.Mutex
	bw      *bufio.Writer
	bwGen   int
	senders atomic.Int32
	scratch [wire.ControlSize]byte // frame staging; guarded by sendMu

	om        *clientObs    // stage-trace histograms; nil when Metrics is unset
	traceCtr  atomic.Uint64 // submit counter driving 1-in-traceSample tracing
	traceBase uint64        // per-client trace-id salt (wall-clock at Dial)

	// Keepalive state. lastRecv is the obs.Now() stamp of the last
	// inbound frame; kaArmed is set while a ping is outstanding with a
	// read deadline armed on the connection (the reader clears both on
	// the next frame); kaPingAt times the outstanding ping for the RTT
	// histogram.
	lastRecv atomic.Int64
	kaArmed  atomic.Bool
	kaPingAt atomic.Int64

	streamsOpen   atomic.Int64 // currently open logical streams
	streamsOpened atomic.Int64 // cumulative streams ever opened

	reconnects   atomic.Int64
	retries      atomic.Int64 // requests replayed after a reconnect
	waitTimeouts atomic.Int64 // bounded-wait expiries observed by callers
	cancels      atomic.Int64 // requests canceled (explicitly or by expired waits)
	kaPings      atomic.Int64 // keepalive pings sent
	hungPeers    atomic.Int64 // connections declared dead by deadline enforcement
}

// Dial connects to a netv3 server.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	c := &Client{
		cfg:         cfg,
		addr:        addr,
		pending:     make(map[uint64]*Pending),
		streams:     make(map[uint32]*Stream),
		openWaiters: make(map[uint32]chan *wire.StreamOpenResp),
		tracker:     reliable.NewTracker(0, 0),
		reconn:      reliable.NewReconnector(cfg.ReconnectBackoff, cfg.MaxReconnects),
		start:       time.Now(),
		om:          newClientObs(cfg.Metrics),
		traceBase:   uint64(time.Now().UnixNano()),
	}
	conn, resp, err := c.dialSession()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.installConn(conn, resp)
	c.mu.Unlock()
	return c, nil
}

// dialSession dials and handshakes one session without holding any
// client lock. The whole exchange runs under a DialTimeout deadline: a
// peer that accepts the connection and then goes silent must fail the
// attempt, not hang it.
func (c *Client) dialSession() (net.Conn, *wire.ConnectResp, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, nil, err
	}
	_ = conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	feats := wire.FeatureStreams | wire.FeatureTrace
	if c.cfg.NoTrace {
		feats &^= wire.FeatureTrace
	}
	if err := wire.WriteTo(conn, &wire.Connect{
		ClientID: 1, WantCreds: uint16(c.cfg.WantCredits),
		Features: feats,
	}); err != nil {
		conn.Close()
		return nil, nil, err
	}
	msg, err := wire.ReadFrom(conn)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	resp, ok := msg.(*wire.ConnectResp)
	if !ok || resp.Status != wire.StatusOK {
		conn.Close()
		return nil, nil, fmt.Errorf("netv3: handshake rejected: %v", msg)
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, resp, nil
}

// installConn adopts a freshly handshaken connection; call with mu held.
func (c *Client) installConn(conn net.Conn, resp *wire.ConnectResp) {
	c.conn = conn
	c.maxXfer = resp.MaxXfer
	c.features = resp.Features
	c.maxStreams = resp.MaxStreams
	// The credit window is created once; it survives reconnections (the
	// server grants the same window per session, and in-flight slots are
	// replayed on the new session).
	if c.creditC == nil {
		credits := int(resp.Credits)
		c.fc = flow.NewClient()
		c.fc.Grant(credits)
		c.creditC = make(chan uint32, credits)
		for {
			slot, err := c.fc.TakeNow()
			if err != nil {
				break
			}
			c.creditC <- slot
		}
	}
	c.genID++
	c.lastRecv.Store(obs.Now())
	c.kaArmed.Store(false)
	c.kaPingAt.Store(0)
	c.sendMu.Lock()
	c.bw = bufio.NewWriterSize(conn, sockBufSize)
	c.bwGen = c.genID
	c.sendMu.Unlock()
	go c.reader(conn, c.genID)
	if c.cfg.KeepaliveInterval > 0 {
		go c.keepalive(conn, c.genID)
	}
}

// MaxTransfer returns the server's per-request transfer bound.
func (c *Client) MaxTransfer() int { return int(c.maxXfer) }

// Credits returns the session's negotiated flow-control window — the
// number of requests that can usefully be in flight at once. Callers
// that fan a batch out over the async API (database read-ahead, extent
// scatter) should clamp their outstanding-request count to this: past
// the window, extra submissions only queue on the credit channel and
// inflate the submission stage without adding concurrency.
func (c *Client) Credits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.creditC == nil {
		return 0
	}
	return cap(c.creditC)
}

// KillConnForTest severs the underlying TCP connection without marking
// the client closed, so the next I/O exercises the reconnection path.
// For fault-injection tests and demos only.
func (c *Client) KillConnForTest() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
	}
}

// Reconnects returns how many times the session has been re-established.
// The counter is written by the reconnection path, so the load is atomic
// — callers may poll it concurrently with I/O.
func (c *Client) Reconnects() int64 { return c.reconnects.Load() }

// ClientStats is a point-in-time snapshot of the client's health
// counters — the submission-side visibility the server has always had.
type ClientStats struct {
	// InFlight is the number of requests submitted but not yet completed
	// (each holds a credit slot).
	InFlight int
	// Retries counts requests replayed onto a fresh session after a
	// reconnect; Reconnects counts the sessions themselves.
	Retries    int64
	Reconnects int64
	// WaitTimeouts counts bounded-wait expiries (WaitTimeout/WaitContext);
	// each also cancels its request, counted under Cancels.
	WaitTimeouts int64
	// Cancels counts requests canceled before completion — explicitly or
	// by an expired bounded wait. Every cancel returned its credit slot
	// to the window immediately.
	Cancels int64
	// KeepalivePings counts TPing probes sent on idle links;
	// HungDetections counts connections declared dead because the probe's
	// read deadline expired with the peer silent.
	KeepalivePings int64
	HungDetections int64
	// StreamsOpen is the number of currently open logical streams;
	// StreamsOpened is the cumulative count ever opened.
	StreamsOpen   int64
	StreamsOpened int64
}

// Stats snapshots the client's counters; safe to call concurrently with
// I/O — including while a reconnect storm is dialing, which no longer
// holds the bookkeeping lock.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	inflight := len(c.pending)
	c.mu.Unlock()
	return ClientStats{
		InFlight:       inflight,
		Retries:        c.retries.Load(),
		Reconnects:     c.reconnects.Load(),
		WaitTimeouts:   c.waitTimeouts.Load(),
		Cancels:        c.cancels.Load(),
		KeepalivePings: c.kaPings.Load(),
		HungDetections: c.hungPeers.Load(),
		StreamsOpen:    c.streamsOpen.Load(),
		StreamsOpened:  c.streamsOpened.Load(),
	}
}

// Close tears the session down; outstanding requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	failed := c.pending
	c.pending = map[uint64]*Pending{}
	c.mu.Unlock()
	if conn != nil {
		c.senders.Add(1)
		c.sendMu.Lock()
		c.senders.Add(-1)
		wire.MarshalInto(c.scratch[:], &wire.Disconnect{})
		_, _ = c.bw.Write(c.scratch[:])
		_ = c.bw.Flush()
		c.sendMu.Unlock()
		conn.Close()
	}
	for _, p := range failed {
		c.finish(p, ErrClosed)
	}
	return nil
}

// Read fills buf from volume vol at off.
func (c *Client) Read(vol uint32, off int64, buf []byte) error {
	h, err := c.ReadAsync(vol, off, buf)
	if err != nil {
		return err
	}
	return h.Wait()
}

// Write sends data to volume vol at off. Completion means the server
// accepted the bytes and every later read observes them; on a
// write-behind server they may not yet be durable — Flush is the
// durability barrier.
func (c *Client) Write(vol uint32, off int64, data []byte) error {
	h, err := c.WriteAsync(vol, off, data)
	if err != nil {
		return err
	}
	return h.Wait()
}

// Flush is the durability barrier: when it returns nil, every write on
// vol whose completion was observed before Flush was submitted is
// durable on the server's store. Writes still in flight are not covered
// — Wait them first.
func (c *Client) Flush(vol uint32) error {
	h, err := c.FlushAsync(vol)
	if err != nil {
		return err
	}
	return h.Wait()
}

// ReadCtx is the cancelable synchronous read: ctx bounds both the
// credit-slot wait and the completion. If ctx ends first the request is
// canceled — buf is the caller's again the moment this returns — and
// ctx.Err() comes back.
func (c *Client) ReadCtx(ctx context.Context, vol uint32, off int64, buf []byte) error {
	h, err := c.ReadAsyncCtx(ctx, vol, off, buf)
	if err != nil {
		return err
	}
	return h.WaitContext(ctx)
}

// WriteCtx is the cancelable synchronous write; see ReadCtx.
func (c *Client) WriteCtx(ctx context.Context, vol uint32, off int64, data []byte) error {
	h, err := c.WriteAsyncCtx(ctx, vol, off, data)
	if err != nil {
		return err
	}
	return h.WaitContext(ctx)
}

// FlushCtx is the cancelable durability barrier; see ReadCtx. A canceled
// flush guarantees nothing — reissue it after the window drains.
func (c *Client) FlushCtx(ctx context.Context, vol uint32) error {
	h, err := c.FlushAsyncCtx(ctx, vol)
	if err != nil {
		return err
	}
	return h.WaitContext(ctx)
}

// FlushAsync submits a flush barrier and returns a completion handle.
func (c *Client) FlushAsync(vol uint32) (*Pending, error) {
	return c.submit(nil, nil, opFlush, vol, 0, nil, nil)
}

// FlushAsyncCtx is FlushAsync with a cancelable credit-slot wait.
func (c *Client) FlushAsyncCtx(ctx context.Context, vol uint32) (*Pending, error) {
	return c.submit(ctx, nil, opFlush, vol, 0, nil, nil)
}

// ReadAsync submits a read and returns immediately with a completion
// handle; buf must stay untouched until the handle reports completion
// (or is canceled, which hands buf back to the caller). Submission
// blocks only while the credit window is exhausted.
func (c *Client) ReadAsync(vol uint32, off int64, buf []byte) (*Pending, error) {
	return c.submit(nil, nil, opRead, vol, off, buf, nil)
}

// ReadAsyncCtx is ReadAsync with a cancelable credit-slot wait: if ctx
// ends while the window is exhausted — say, wedged by hung data-path
// requests — submission returns ctx.Err() instead of joining the wedge.
// Health probes depend on this bound.
func (c *Client) ReadAsyncCtx(ctx context.Context, vol uint32, off int64, buf []byte) (*Pending, error) {
	return c.submit(ctx, nil, opRead, vol, off, buf, nil)
}

// WriteAsync submits a write and returns immediately with a completion
// handle; data must stay untouched until the handle reports completion
// (or is canceled).
func (c *Client) WriteAsync(vol uint32, off int64, data []byte) (*Pending, error) {
	return c.submit(nil, nil, opWrite, vol, off, nil, data)
}

// WriteAsyncCtx is WriteAsync with a cancelable credit-slot wait.
func (c *Client) WriteAsyncCtx(ctx context.Context, vol uint32, off int64, data []byte) (*Pending, error) {
	return c.submit(ctx, nil, opWrite, vol, off, nil, data)
}

// Client-side op kinds for submit. All three occupy a credit slot while
// in flight: the slot bounds outstanding requests of any kind, even
// though only writes stage payload bytes in a server slot.
const (
	opRead = iota
	opWrite
	opFlush
)

// acquireSlot takes a credit slot, blocking while the window is
// exhausted. A nil ctx is the uncancelable fast path (one channel
// receive, identical to the pre-context behavior); with a ctx the wait
// ends early with ctx.Err() — the primitive that keeps health probes
// out of a wedged window.
func (c *Client) acquireSlot(ctx context.Context) (uint32, error) {
	if ctx == nil {
		return <-c.creditC, nil
	}
	select {
	case slot := <-c.creditC:
		return slot, nil
	default:
	}
	select {
	case slot := <-c.creditC:
		return slot, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func (c *Client) submit(ctx context.Context, st *Stream, op int, vol uint32, off int64, buf, data []byte) (*Pending, error) {
	// Stage trace starts at API entry, so the submission stage includes
	// any credit-window wait — the cost a caller actually experiences.
	// Only every traceSample-th request is traced; the rest pay one
	// counter increment here and zero-value branches downstream.
	var t0 int64
	if c.om != nil && c.traceCtr.Add(1)%traceSample == 0 {
		t0 = obs.Now()
	}
	slot, err := c.acquireSlot(ctx)
	if err != nil {
		return nil, err
	}
	p := &Pending{c: c, st: st, slot: slot, done: make(chan struct{}), t0: t0}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.creditC <- slot // hand the slot to any other blocked submitter
		return nil, ErrClosed
	}
	c.nextSeq++
	c.nextReq++
	p.seq = c.nextSeq
	var sid uint32
	if st != nil {
		sid = st.id
	}
	switch op {
	case opWrite:
		p.body = data
		p.msg = &wire.Write{
			Header: wire.Header{Seq: p.seq, Stream: sid}, ReqID: c.nextReq,
			Volume: vol, Offset: uint64(off), Length: uint32(len(data)), Slot: slot,
		}
	case opRead:
		p.buf = buf
		p.msg = &wire.Read{
			Header: wire.Header{Seq: p.seq, Stream: sid}, ReqID: c.nextReq,
			Volume: vol, Offset: uint64(off), Length: uint32(len(buf)),
		}
	case opFlush:
		p.msg = &wire.Flush{
			Header: wire.Header{Seq: p.seq, Stream: sid}, ReqID: c.nextReq, Volume: vol,
		}
	}
	// A traced request carries a trace id on the wire (when the server
	// negotiated FeatureTrace), telling the server to answer with its
	// span block — the join key between the client's stage trace and the
	// server's flight-recorder events. The id mixes the per-client salt
	// with the sequence number through a Weyl/Fibonacci step so ids from
	// clients dialed in the same instant still diverge.
	if t0 != 0 && c.features&wire.FeatureTrace != 0 {
		tr := c.traceBase ^ (p.seq * 0x9e3779b97f4a7c15)
		if tr == 0 {
			tr = 1 // zero means untraced on the wire
		}
		p.msg.Hdr().Trace = tr
	}
	c.pending[p.seq] = p
	c.tracker.Track(p.seq, time.Since(c.start))
	gen := c.genID
	c.mu.Unlock()
	// The network write happens outside mu: a slow or blocking send no
	// longer stalls other submitters' bookkeeping or the reader's
	// completion path.
	if err := c.send(gen, p, p.msg, p.body); err != nil {
		c.connectionBroken()
	}
	// Even on a send error the request is tracked: reconnection replay
	// (or permanent failure) will complete the handle.
	return p, nil
}

// send writes a control frame plus payload onto the submission stream.
// Frames from concurrent submitters batch in bw; the flush syscall is
// issued by whichever sender drains the queue (senders == 0), mirroring
// the server's response batching. gen identifies the connection the
// request was issued on: if a reconnect has replaced it, the write is
// skipped — replay owns retransmission on the new connection.
//
// With NoBatch the submission reproduces the seed exactly: a freshly
// allocated frame and an immediate flush per write, so frame and body
// reach the kernel as separate unbatched syscalls.
func (c *Client) send(gen int, p *Pending, m wire.Message, body []byte) error {
	c.senders.Add(1)
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.senders.Add(-1)
	if gen != c.bwGen {
		// Still honor the flush contract for earlier senders' bytes.
		if c.senders.Load() == 0 {
			_ = c.bw.Flush()
		}
		return nil
	}
	// Stage trace: the frame is about to enter the submission batch. The
	// wire-write stamp below lands after our own write (and flush, when
	// this sender drains the batch) returns; a frame flushed later by
	// another sender accounts that wait to the server+net stage instead.
	trace := p != nil && p.t0 != 0
	if trace {
		p.t1 = obs.Now()
	}
	if c.cfg.NoBatch {
		if _, err := c.bw.Write(wire.Marshal(m)); err != nil {
			return err
		}
		if err := c.bw.Flush(); err != nil {
			return err
		}
		if len(body) > 0 {
			if _, err := c.bw.Write(body); err != nil {
				return err
			}
		}
		err := c.bw.Flush()
		if trace {
			p.t2 = obs.Now()
		}
		return err
	}
	wire.MarshalInto(c.scratch[:], m)
	if _, err := c.bw.Write(c.scratch[:]); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := c.bw.Write(body); err != nil {
			return err
		}
	}
	var err error
	if c.senders.Load() == 0 {
		err = c.bw.Flush()
	}
	if trace {
		p.t2 = obs.Now()
	}
	return err
}

// keepalive is one connection generation's hung-peer detector. It wakes
// twice per interval and, whenever the link has been silent for a full
// interval, sends a TPing and arms a read deadline one interval out. A
// live peer answers with TPong (the reader clears the deadline and logs
// the RTT); a hung peer lets the deadline fire, which fails the reader
// and enters reconnection — the same path a closed peer takes, which is
// the whole point: "dead peer ⇒ silent" becomes as detectable as
// "dead peer ⇒ closed conn". While traffic flows, the hot path pays one
// atomic store per inbound frame and this goroutine never sends.
func (c *Client) keepalive(conn net.Conn, gen int) {
	iv := c.cfg.KeepaliveInterval
	tick := time.NewTicker(iv / 2)
	defer tick.Stop()
	for range tick.C {
		c.mu.Lock()
		stale := gen != c.genID || c.closed
		c.mu.Unlock()
		if stale {
			return
		}
		if c.kaArmed.Load() {
			// Ping outstanding; the armed read deadline owns detection.
			continue
		}
		if time.Duration(obs.Now()-c.lastRecv.Load()) < iv {
			continue
		}
		// Idle a full interval: probe. Arm the deadline before sending so
		// a pong can never race an unarmed state.
		c.kaPingAt.Store(obs.Now())
		c.kaArmed.Store(true)
		_ = conn.SetReadDeadline(time.Now().Add(iv))
		c.kaPings.Add(1)
		c.om.notePing()
		c.sendPing(gen)
	}
}

// sendPing pushes one TPing through the submission stream (respecting
// generation and batching discipline).
func (c *Client) sendPing(gen int) { c.sendCtl(gen, &wire.Ping{}) }

// sendCtl pushes one control frame (ping, stream open/close) through the
// submission stream, respecting generation and batching discipline.
// Control frames are rare, so each flushes immediately; errors are left
// to the reader, which owns connection-failure detection.
func (c *Client) sendCtl(gen int, m wire.Message) {
	c.senders.Add(1)
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.senders.Add(-1)
	if gen != c.bwGen {
		return
	}
	wire.MarshalInto(c.scratch[:], m)
	if _, err := c.bw.Write(c.scratch[:]); err != nil {
		return
	}
	_ = c.bw.Flush()
}

// reader demultiplexes responses for one connection generation. Frames
// decode into two reusable structs (one per response type), so steady
// state reads allocate nothing on the completion path.
func (c *Client) reader(conn net.Conn, gen int) {
	br := bufio.NewReaderSize(conn, readBufSize(c.cfg.NoBatch))
	var frame [wire.ControlSize]byte
	var rr wire.ReadResp
	var wr wire.WriteResp
	var fr wire.FlushResp
	var sr wire.StreamOpenResp
	fail := func(err error) {
		c.mu.Lock()
		stale := gen != c.genID || c.closed
		c.mu.Unlock()
		if stale {
			return
		}
		if errors.Is(err, os.ErrDeadlineExceeded) {
			// The keepalive's armed deadline expired with the peer silent:
			// a hung, not closed, connection — count it distinctly, then
			// recover exactly like a break.
			c.hungPeers.Add(1)
			c.om.noteHung()
		}
		c.connectionBroken()
	}
	for {
		t, err := wire.ReadFrame(br, &frame)
		if err != nil {
			fail(err)
			return
		}
		// Frame arrived: feed the keepalive. Clearing the armed deadline
		// costs a syscall only when a ping was outstanding.
		c.lastRecv.Store(obs.Now())
		if c.kaArmed.CompareAndSwap(true, false) {
			_ = conn.SetReadDeadline(time.Time{})
		}
		switch t {
		case wire.TReadResp:
			m := &rr
			if err := wire.UnmarshalInto(frame[:], m); err != nil {
				fail(err)
				return
			}
			// Claim the pending before touching its buffer: removal from
			// the map under mu is the exclusion point against Cancel —
			// whichever side removes the request owns the buffers. A
			// canceled (absent) request's payload is drained blind, never
			// written into memory the caller got back.
			c.mu.Lock()
			p := c.pending[uint64(m.Ack)]
			if p != nil {
				delete(c.pending, uint64(m.Ack))
				c.tracker.Ack(uint64(m.Ack))
			}
			c.mu.Unlock()
			n := int64(m.Length)
			var ioErr error
			switch {
			case m.Status != wire.StatusOK:
				ioErr = respErr(m.Status, m.RetryAfterMS)
				// Error responses carry no payload (Length is 0), but trust
				// the header over the convention.
				if n > 0 {
					_, err = io.CopyN(io.Discard, br, n)
				}
			case p != nil && int64(len(p.buf)) == n:
				_, err = io.ReadFull(br, p.buf)
			default:
				// Unknown, stale or canceled seq, or a length mismatch. The
				// payload must still leave the stream — otherwise its bytes
				// would be parsed as the next control frame and every
				// subsequent response on this connection would be corrupted.
				_, err = io.CopyN(io.Discard, br, n)
				if p != nil {
					ioErr = fmt.Errorf("netv3: read response length %d != buffer %d", n, len(p.buf))
				}
			}
			if err != nil { // stream died mid-payload
				if p != nil {
					c.unclaim(p)
				}
				fail(err)
				return
			}
			if p != nil {
				if p.t0 != 0 {
					p.t3 = obs.Now()
					p.span = m.SrvSpan
				}
				c.finish(p, ioErr)
			}
		case wire.TWriteResp:
			if err := wire.UnmarshalInto(frame[:], &wr); err != nil {
				fail(err)
				return
			}
			c.complete(uint64(wr.Ack), respErr(wr.Status, wr.RetryAfterMS), wr.SrvSpan)
		case wire.TFlushResp:
			if err := wire.UnmarshalInto(frame[:], &fr); err != nil {
				fail(err)
				return
			}
			c.complete(uint64(fr.Ack), respErr(fr.Status, fr.RetryAfterMS), fr.SrvSpan)
		case wire.TStreamOpenResp:
			if err := wire.UnmarshalInto(frame[:], &sr); err != nil {
				fail(err)
				return
			}
			// Route by stream id to the goroutine blocked in OpenStream. No
			// waiter (timed out, or a reconnect re-announcement) — drop it.
			c.mu.Lock()
			ch := c.openWaiters[sr.Stream]
			c.mu.Unlock()
			if ch != nil {
				cp := sr
				select {
				case ch <- &cp:
				default:
				}
			}
		case wire.TPong:
			// Keepalive answer: log the round trip of the outstanding ping.
			if at := c.kaPingAt.Swap(0); at != 0 {
				c.om.noteKeepaliveRTT(obs.Now() - at)
			}
		default:
			// Unexpected frame: treat as protocol failure.
			c.connectionBroken()
			return
		}
	}
}

// unclaim returns a claimed-but-undelivered request to the pending set
// (the stream died mid-payload) so reconnection replays it — or fails it
// with ErrClosed when the client is already gone.
func (c *Client) unclaim(p *Pending) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.finish(p, ErrClosed)
		return
	}
	c.pending[p.seq] = p
	c.tracker.Track(p.seq, time.Since(c.start))
	c.mu.Unlock()
}

func (c *Client) complete(seq uint64, err error, sp wire.SrvSpan) {
	c.mu.Lock()
	p := c.pending[seq]
	delete(c.pending, seq)
	c.tracker.Ack(seq)
	c.mu.Unlock()
	if p != nil {
		// Stage trace: the response has arrived; everything from the
		// submitter's wire write to here is the server+net stage.
		// Untraced requests (t0 == 0) skip the clock.
		if p.t0 != 0 {
			p.t3 = obs.Now()
			p.span = sp
		}
		c.finish(p, err)
	}
}

// finish publishes the completion and returns the credit slot (and the
// issuing stream's carve-out token). Each Pending reaches finish exactly
// once: the reader's claim, cancel, Close, and permanent reconnection
// failure all remove it from the pending map under mu before calling
// here, so no two paths can both own it.
func (c *Client) finish(p *Pending, err error) {
	p.err = err
	if p.t3 != 0 {
		p.t4 = obs.Now()
	}
	close(p.done)
	c.creditC <- p.slot
	if p.st != nil {
		p.st.release()
	}
}

// connectionBroken starts the reconnection state machine. Only the first
// caller becomes the recovery driver (single-flight); later callers —
// concurrent submitters whose sends failed, a reader hitting EOF —
// return immediately, their requests parked in the pending map for
// replay.
func (c *Client) connectionBroken() {
	c.mu.Lock()
	if c.closed || c.recovering || c.reconn.State() != reliable.StateConnected {
		c.mu.Unlock()
		return
	}
	c.recovering = true
	c.reconn.ConnectionBroken(time.Since(c.start))
	if c.conn != nil {
		c.conn.Close()
	}
	c.mu.Unlock()
	c.recover()
}

// recover drives reconnection to completion: redial with exponential
// backoff and replay every unacknowledged request on the new session, or
// — when the bounded retry budget is spent — complete everything
// outstanding with ErrConnLost so no waiter hangs forever. Dial attempts
// (up to DialTimeout each) run with mu RELEASED: Stats, Close, cancels
// and submitter bookkeeping stay responsive through a reconnect storm.
func (c *Client) recover() {
	for {
		c.mu.Lock()
		if c.closed {
			c.recovering = false
			c.mu.Unlock()
			return
		}
		now := time.Since(c.start)
		if !c.reconn.ShouldAttempt(now) {
			next, _ := c.reconn.NextAttemptAt()
			c.mu.Unlock()
			time.Sleep(next - now)
			continue
		}
		c.mu.Unlock()

		conn, resp, err := c.dialSession() // no locks held

		c.mu.Lock()
		if c.closed {
			c.recovering = false
			c.mu.Unlock()
			if err == nil {
				conn.Close()
			}
			return
		}
		if err != nil {
			c.reconn.AttemptFailed(time.Since(c.start))
			if c.reconn.State() == reliable.StateFailed {
				c.failAllLocked()
				return
			}
			c.mu.Unlock()
			continue
		}
		c.installConn(conn, resp)
		c.reconn.AttemptSucceeded()
		c.reconnects.Add(1)
		c.tracker.Reset(time.Since(c.start))
		// Re-announce open streams before replaying their requests, so the
		// new session's scheduler has each stream's class/weight/credits.
		// Fire-and-forget: the responses find no waiter and are dropped,
		// and a server that races a data frame ahead of its announcement
		// implicitly opens the stream as foreground in the meantime.
		for id, st := range c.streams {
			class := wire.ClassForeground
			if st.cfg.Background {
				class = wire.ClassBackground
			}
			c.sendCtl(c.genID, &wire.StreamOpen{
				Header: wire.Header{Stream: id},
				Class:  class, Weight: uint16(st.cfg.Weight), WantCreds: uint16(cap(st.sem)),
			})
		}
		// Replay unacknowledged requests in order on the new session.
		replayed := true
		for _, seq := range c.tracker.Unacked() {
			p, ok := c.pending[seq]
			if !ok {
				continue
			}
			c.retries.Add(1)
			if err := c.send(c.genID, p, p.msg, p.body); err != nil {
				// New connection failed immediately; loop again.
				c.reconn.ConnectionBroken(time.Since(c.start))
				c.conn.Close()
				replayed = false
				break
			}
		}
		if replayed {
			c.recovering = false
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
	}
}

// failAllLocked ends recovery permanently: every outstanding request
// completes with ErrConnLost and the client closes. Called with mu held;
// unlocks before publishing completions.
func (c *Client) failAllLocked() {
	failed := c.pending
	c.pending = map[uint64]*Pending{}
	c.closed = true
	c.recovering = false
	c.mu.Unlock()
	for _, p := range failed {
		c.finish(p, ErrConnLost)
	}
}
