package netv3

import (
	"math"

	"github.com/v3storage/v3/internal/obs"
	"github.com/v3storage/v3/internal/wire"
)

// Flight-recorder event kinds. netv3 owns the kind space: the server,
// the disk pipeline, and the vault all record into one ring, so a dump
// interleaves tiers by timestamp — the point of the recorder is seeing
// what the scheduler, the disk queue, and the replicas were doing in
// the instants before an incident.
//
// Each kind's two free words (a, b) are documented inline; trace is the
// request's wire trace id when one is flowing, else 0.
const (
	fkDispatch    uint8 = iota + 1 // request decoded; a=msg type, b=volume
	fkShed                         // admission control refused; a=tenant key, b=fg backlog
	fkDiskqSubmit                  // op handed to the disk queue; a=offset, b=length
	fkDiskqDone                    // disk completion reaped; a=queue ns, b=device ns
	fkDestage                      // one destage pass; a=blocks written, b=pass ns
	fkPrefetch                     // one read-ahead fill; a=offset, b=fill ns
	fkFlush                        // durability barrier served; a=volume, b=barrier ns
	fkResp                         // response built; a=status, b=service ns
	fkReplicaTrip                  // vault backend tripped to Down; a=backend index, b=consecutive errors
	fkReplicaIO                    // vault per-replica sub-I/O done; a=backend index, b=rtt ns
)

// FlightReplicaTrip and FlightReplicaIO are the vault-tier kinds,
// exported so internal/vvault can record into the same ring the server
// and disk tiers use — one timestamp-ordered history across tiers.
const (
	FlightReplicaTrip = fkReplicaTrip
	FlightReplicaIO   = fkReplicaIO
)

// flightKindNames renders dump rows; index-aligned with the constants.
var flightKindNames = []string{
	"",
	"dispatch",
	"sched-shed",
	"diskq-submit",
	"diskq-done",
	"destage",
	"prefetch",
	"flush",
	"resp",
	"replica-trip",
	"replica-io",
}

// RegisterFlightKinds installs netv3's symbolic kind names on f so dump
// rows render as "replica-trip" rather than raw numbers. The server does
// this for rings handed to it; callers that feed a client-side ring
// (vvault without a co-resident server) call it directly. Nil-safe.
func RegisterFlightKinds(f *obs.Flight) { f.SetKindNames(flightKindNames) }

// clamp32 narrows a nanosecond interval into a SrvSpan field: negative
// (clock-replayed) intervals floor at zero, and anything past ~4.3 s
// saturates rather than wrapping.
func clamp32(ns int64) uint32 {
	if ns < 0 {
		return 0
	}
	if ns > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(ns)
}

// traceArr returns the arrival stamp for a request: the clock is read
// only for traced frames (trace != 0), keeping the untraced hot path
// free of it. The stamp anchors the span block — queue wait is
// arrival→handler start, service is handler start→response build.
func traceArr(trace uint64) int64 {
	if trace == 0 {
		return 0
	}
	return obs.Now()
}

// fillSpan stamps a traced response's id and the two spans every path
// shares: queue wait (arrival→start) and service time (start→now). The
// disk-queue split fields are filled only by the disk-queue completion
// path. No-op for untraced requests, leaving the block's zeros — the
// same bytes a pre-trace server emits.
func fillSpan(h *wire.Header, sp *wire.SrvSpan, trace uint64, arr, start int64) {
	if trace == 0 {
		return
	}
	h.Trace = trace
	sp.SrvQueueNS = clamp32(start - arr)
	sp.SrvServiceNS = clamp32(obs.Now() - start)
}
