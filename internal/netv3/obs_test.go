package netv3

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/obs"
)

// TestBreakdownSums checks the tiling invariant behind the breakdown
// table: the five client stages partition a request's lifetime, so their
// per-stage means must column-sum to the end-to-end mean the caller
// measures independently. Traces are sampled, so the caller's mean is
// taken over the same traced requests (Pending.Traced) — otherwise a
// GC pause or scheduler stall landing on an untraced request would skew
// the comparison populations apart.
func TestBreakdownSums(t *testing.T) {
	scfg := DefaultServerConfig()
	scfg.CacheBlocks = 256
	scfg.DiskWorkers = 2
	_, addr := startServer(t, scfg, 4<<20)
	reg := obs.New()
	ccfg := DefaultClientConfig()
	ccfg.Metrics = reg
	c, err := Dial(addr, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 2000
	buf := make([]byte, 8192)
	if err := c.Write(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	var e2e time.Duration
	var traced int64
	for i := 0; i < n; i++ {
		off := int64(i%256) * 8192
		s := time.Now()
		h, err := c.ReadAsync(1, off, buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(); err != nil {
			t.Fatal(err)
		}
		if h.Traced() {
			e2e += time.Since(s)
			traced++
		}
	}

	rows := obs.Breakdown(reg, ClientStageDefs())
	if len(rows) != nStages {
		t.Fatalf("rows = %d, want %d", len(rows), nStages)
	}
	// Traces are sampled 1-in-traceSample, deterministically by submit
	// count, so the loop sees n/traceSample traced requests give or take
	// the handshake write.
	if want := int64(n/traceSample - 1); traced < want {
		t.Fatalf("traced %d requests, want >= %d", traced, want)
	}
	for _, r := range rows {
		if r.Count < traced {
			t.Fatalf("stage %q recorded %d traces, want >= %d", r.Stage, r.Count, traced)
		}
	}
	stageSum := obs.SumMeanNS(rows)
	e2eMean := float64(e2e.Nanoseconds()) / float64(traced)
	dev := (stageSum - e2eMean) / e2eMean
	if dev < 0 {
		dev = -dev
	}
	t.Logf("stage sum %.0fns vs e2e mean %.0fns (%.1f%% deviation)", stageSum, e2eMean, 100*dev)
	if dev > 0.10 {
		t.Fatalf("stage means sum to %.0fns but measured e2e mean is %.0fns (%.1f%% off, want <= 10%%)\n%s",
			stageSum, e2eMean, 100*dev, obs.FormatBreakdown(rows, e2eMean))
	}
}

// TestMetricsEndpoint scrapes the live HTTP endpoint — Prometheus text
// and the JSON snapshot — while a mixed workload runs against an
// instrumented server, the way an operator would.
func TestMetricsEndpoint(t *testing.T) {
	sreg := obs.New()
	scfg := DefaultServerConfig()
	scfg.CacheBlocks = 256
	scfg.DiskWorkers = 2
	scfg.Metrics = sreg
	_, addr := startServer(t, scfg, 4<<20)
	creg := obs.New()
	ccfg := DefaultClientConfig()
	ccfg.Metrics = creg
	c, err := Dial(addr, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ep := httptest.NewServer(obs.Handler(sreg, creg))
	defer ep.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 8192)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			off := int64(i%128) * 8192
			if i%3 == 0 {
				_ = c.Write(1, off, buf)
			} else {
				_ = c.Read(1, off, buf)
			}
			if i%64 == 63 {
				_ = c.Flush(1)
			}
		}
	}()

	scrape := func(url string) string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", url, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// Let the workload produce some traffic, then scrape both formats a
	// few times mid-flight.
	time.Sleep(50 * time.Millisecond)
	var prom string
	var snap obs.SnapshotJSON
	for i := 0; i < 3; i++ {
		prom = scrape(ep.URL + "/metrics")
		if err := json.Unmarshal([]byte(scrape(ep.URL+"/metrics?format=json")), &snap); err != nil {
			t.Fatalf("JSON snapshot: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	for _, want := range []string{
		"netv3_srv_dispatch_ns",
		"netv3_srv_served_total",
		"netv3_srv_cache_hits_total",
		"netv3_client_stage_submit_ns",
		"netv3_client_stage_server_ns",
		`quantile="0.99"`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus scrape missing %q:\n%s", want, prom)
		}
	}
	if snap.Gauges["netv3_srv_served_total"] <= 0 {
		t.Fatalf("JSON snapshot served_total = %d, want > 0", snap.Gauges["netv3_srv_served_total"])
	}
	if h := snap.Hists["netv3_client_stage_server_ns"]; h.Count <= 0 || h.MeanNS <= 0 {
		t.Fatalf("JSON snapshot client server stage empty: %+v", h)
	}
	if h := snap.Hists["netv3_srv_dispatch_ns"]; h.Count <= 0 {
		t.Fatalf("JSON snapshot dispatch hist empty: %+v", h)
	}
}

// TestClientStats exercises the exported health counters: wait timeouts
// against a deliberately slow store, and retries/reconnects after a
// severed session.
func TestClientStats(t *testing.T) {
	scfg := DefaultServerConfig()
	srv := NewServer(scfg)
	srv.AddVolume(1, &slowStore{BlockStore: NewMemStore(1 << 20), delay: 30 * time.Millisecond})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })

	ccfg := DefaultClientConfig()
	ccfg.ReconnectBackoff = 20 * time.Millisecond
	c, err := Dial(addr.String(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	buf := make([]byte, 512)
	h, err := c.ReadAsync(1, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.InFlight != 1 {
		t.Fatalf("InFlight = %d, want 1", st.InFlight)
	}
	if err := h.WaitTimeout(time.Millisecond); !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("WaitTimeout = %v, want ErrWaitTimeout", err)
	}
	if st := c.Stats(); st.WaitTimeouts != 1 {
		t.Fatalf("WaitTimeouts = %d, want 1", st.WaitTimeouts)
	}
	// The expired wait canceled the request: later waiters observe the
	// same status, the cancel is counted, and the slot is already back —
	// nothing stays in flight pinning the window.
	if err := h.Wait(); !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("Wait after expiry = %v, want ErrWaitTimeout", err)
	}
	if st := c.Stats(); st.InFlight != 0 || st.Cancels != 1 {
		t.Fatalf("after expiry: InFlight=%d Cancels=%d, want 0 and 1", st.InFlight, st.Cancels)
	}

	c.KillConnForTest()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.Read(1, 0, buf); err == nil {
			break
		}
	}
	st := c.Stats()
	if st.Reconnects < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", st.Reconnects)
	}
}
