package netv3

import (
	"errors"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/v3storage/v3/internal/bufpool"
	"github.com/v3storage/v3/internal/mqcache"
)

// errCacheBusy reports that a cache insert was refused because every
// slot in the block's shard is pinned by uncommitted write-behind state
// (dirty or flushing blocks). Callers fall back to an uncached path.
var errCacheBusy = errors.New("netv3: cache shard full of uncommitted blocks")

// blockCache is the per-volume server cache, sharded so that cache hits
// on different blocks stop serializing on one volume-wide mutex during
// the payload memcpy. It is the TCP-path form of the paper's
// lock-synchronization minimization (Section 3.3): the same MQ policy,
// but the single lock pair per access now covers only 1/nshards of the
// key space. Shards are selected by low bits of the block number, so a
// sequential scan also spreads across shards.
//
// Beyond read caching, the cache carries the write-behind state of the
// paper's pipelined disk manager: blocks a write has landed in but the
// destager has not yet committed are *dirty*; blocks the destager has
// staged for an in-flight batch write are *flushing*; blocks installed
// ahead of a sequential reader are *prefetched*. The rules that keep the
// store and cache coherent:
//
//   - A dirty or flushing block is never evicted: it is pinned in the
//     MQ, so victim selection skips it, and an insert that would need to
//     evict from a shard whose every slot is pinned is refused instead
//     (the caller serves uncached or falls back to write-through).
//     Evicting one would either lose acked data (dirty) or let a reader
//     re-fill the block from the store while the destager's batch write
//     for the same bytes is still in flight (flushing) — a torn read.
//     Should one slip through anyway, evictLocked still moves the
//     payload to the orphan list, where the destager commits it and a
//     re-fetching reader can re-adopt it.
//   - Miss fills read the store while holding the block's shard lock,
//     and writers update the store before the cache: an in-flight fill
//     can observe stale store bytes, but the writer's cache update is
//     then ordered after the fill's insert and corrects the payload.
type blockCache struct {
	shards []cacheShard
	mask   uint64
	pool   *bufpool.Pool
	hits   atomic.Int64
	misses atomic.Int64

	dirtyCount atomic.Int64 // resident dirty blocks across shards
	prefFills  atomic.Int64 // blocks installed by the prefetcher
	prefHits   atomic.Int64 // demand hits on prefetched blocks

	// prefResident counts installed-but-not-yet-demanded prefetch blocks
	// (the union of the shards' pref sets). The prefetcher refuses new
	// windows once this passes its residency budget: unconsumed
	// read-ahead competing with demand blocks for cache slots evicts the
	// very state it is trying to shortcut — and under write load it
	// pushes dirty blocks into orphan limbo. prefBudget is the cap, a
	// quarter of the cache.
	prefResident atomic.Int64
	prefBudget   int64
	prefDiscards atomic.Int64 // dead-stream read-ahead blocks dropped

	// Orphans: dirty/flushing payloads whose blocks were evicted before
	// the destager committed them. orphanCount mirrors len(orphans) so
	// the (hot) read path can skip the lock when the list is empty.
	orphanMu    sync.Mutex
	orphans     []*orphanEntry
	orphanCount atomic.Int64
}

type orphanEntry struct {
	blk     uint64
	payload []byte // full cacheBlockSize slab, tail zeroed
	n       int64  // meaningful bytes (short only for the volume's tail block)
	writing bool   // destager is committing it right now
}

type cacheShard struct {
	mu       sync.Mutex
	mq       *mqcache.MQ
	data     map[uint64][]byte   // resident block payloads, len cacheBlockSize
	dirty    map[uint64]struct{} // written-behind, not yet destaged
	flushing map[uint64]struct{} // staged in an in-flight destage batch
	pref     map[uint64]struct{} // installed by prefetch, not yet demanded

	// epochs count content-changing events in this shard, striped by
	// block number: write absorbs, committed-write folds, destage
	// unstages, and orphan commits all bump the written block's stripe
	// under mu. The batched disk queue runs store reads without holding
	// shard locks; it snapshots the covered blocks' stripes at submit and
	// revalidates at completion — an unchanged stripe proves no write
	// touched any block sharing it mid-flight, so the store bytes it read
	// are neither stale nor torn. Striping (rather than one counter per
	// shard) keeps the false-conflict rate low under mixed workloads: a
	// write stream bumps only its own stripes, not every reader's. The
	// stripe count is prime so the power-of-two strides block workloads
	// favor cannot alias a whole write region onto a reader's stripes;
	// a false conflict only costs one re-read through the classic path.
	epochs [epochStripes]uint64
}

// epochStripes is the per-shard epoch stripe count. Prime (see above).
const epochStripes = 127

func epochStripe(blk uint64) int { return int(blk % epochStripes) }

// shardEpoch is one entry of a submit-time epoch snapshot: the observed
// counter of one (shard, stripe) pair.
type shardEpoch struct {
	idx    int
	stripe int
	epoch  uint64
}

// defaultCacheShards is the shard count when ServerConfig.CacheShards is
// zero. 16 keeps per-shard capacity useful for small caches while
// allowing 16-way concurrent hits.
const defaultCacheShards = 16

// newBlockCache builds a cache of totalBlocks across nshards shards
// (rounded up to a power of two; 1 disables sharding for ablation).
func newBlockCache(totalBlocks, nshards int, pool *bufpool.Pool) *blockCache {
	if nshards <= 0 {
		nshards = defaultCacheShards
	}
	if nshards&(nshards-1) != 0 {
		nshards = 1 << bits.Len(uint(nshards))
	}
	// Never create more shards than blocks: each shard needs capacity.
	for nshards > 1 && totalBlocks/nshards < 1 {
		nshards /= 2
	}
	per := totalBlocks / nshards
	if per < 1 {
		per = 1
	}
	c := &blockCache{shards: make([]cacheShard, nshards), mask: uint64(nshards - 1), pool: pool}
	c.prefBudget = int64(totalBlocks) / 4
	if c.prefBudget < minPrefetchBlocks {
		c.prefBudget = minPrefetchBlocks
	}
	for i := range c.shards {
		c.shards[i].mq = mqcache.NewMQ(per, 0, 0)
		c.shards[i].data = make(map[uint64][]byte, per)
		c.shards[i].dirty = make(map[uint64]struct{})
		c.shards[i].flushing = make(map[uint64]struct{})
		c.shards[i].pref = make(map[uint64]struct{})
	}
	return c
}

func (c *blockCache) shard(blk uint64) *cacheShard {
	return &c.shards[blk&c.mask]
}

// blockLen returns the meaningful byte count of blk: cacheBlockSize,
// except for the volume's final partial block.
func blockLen(vsize int64, blk uint64) int64 {
	n := vsize - int64(blk)*cacheBlockSize
	if n > cacheBlockSize {
		n = cacheBlockSize
	}
	return n
}

// hitLocked records prefetch accounting for a demand hit. Call with the
// shard lock held.
func (c *blockCache) hitLocked(sh *cacheShard, blk uint64) {
	if _, ok := sh.pref[blk]; ok {
		delete(sh.pref, blk)
		c.prefResident.Add(-1)
		c.prefHits.Add(1)
	}
}

// prefetchDiscard drops blocks a dead read stream prefetched but never
// consumed. Discarding is always safe for a block still in pref state:
// its bytes are a clean copy of the store, installed purely on a
// prediction the stream has just disproven. Blocks that left pref state
// (consumed by a demand hit, or claimed by a write — absorb clears the
// flag) are skipped. Returns the number of blocks dropped.
func (c *blockCache) prefetchDiscard(blks []uint64) int {
	dropped := 0
	for _, blk := range blks {
		sh := c.shard(blk)
		sh.mu.Lock()
		_, p := sh.pref[blk]
		_, d := sh.dirty[blk]
		_, f := sh.flushing[blk]
		if p && !d && !f {
			delete(sh.pref, blk)
			c.prefResident.Add(-1)
			c.pool.Put(sh.data[blk])
			delete(sh.data, blk)
			sh.mq.Remove(blk)
			dropped++
		}
		sh.mu.Unlock()
	}
	c.prefDiscards.Add(int64(dropped))
	return dropped
}

// evictLocked disposes of a victim the MQ just evicted. Clean victims
// release their slab; dirty or flushing victims move to the orphan list
// so their bytes are never lost or raced (see the type comment). Call
// with sh.mu held.
func (c *blockCache) evictLocked(v *volume, sh *cacheShard, victim uint64) {
	payload := sh.data[victim]
	delete(sh.data, victim)
	_, dirty := sh.dirty[victim]
	_, flushing := sh.flushing[victim]
	delete(sh.dirty, victim)
	delete(sh.flushing, victim)
	if _, p := sh.pref[victim]; p {
		delete(sh.pref, victim)
		c.prefResident.Add(-1)
	}
	if dirty {
		c.dirtyCount.Add(-1)
	}
	if dirty || flushing {
		e := &orphanEntry{blk: victim, payload: payload, n: blockLen(v.store.Size(), victim)}
		c.orphanMu.Lock()
		c.orphans = append(c.orphans, e)
		c.orphanMu.Unlock()
		c.orphanCount.Add(1)
		return
	}
	c.pool.Put(payload)
}

// adoptOrphan returns an owned copy of blk's orphaned payload, or nil.
// An orphan the destager is not yet committing is removed (the adopter
// re-marks the block dirty, making the cache the single source of
// truth); one mid-commit is left for the destager to finish.
//
// The list can hold several entries for one block: adopting a mid-commit
// entry leaves it behind, and evicting the re-adopted dirty block
// appends a fresh one. Entries append in age order, so the newest — the
// last match — carries the authoritative bytes; adopting an older one
// would resurrect data a later write already superseded.
func (c *blockCache) adoptOrphan(blk uint64) []byte {
	if c.orphanCount.Load() == 0 {
		return nil
	}
	c.orphanMu.Lock()
	defer c.orphanMu.Unlock()
	idx := -1
	for i, e := range c.orphans {
		if e.blk == blk {
			idx = i
		}
	}
	if idx < 0 {
		return nil
	}
	e := c.orphans[idx]
	cp := c.pool.Get(cacheBlockSize)
	copy(cp, e.payload)
	if !e.writing {
		c.orphans = append(c.orphans[:idx], c.orphans[idx+1:]...)
		c.orphanCount.Add(-1)
		c.pool.Put(e.payload)
	}
	return cp
}

// peekOrphan copies bytes [within, within+n) of blk's newest orphan
// payload into dst without adopting the entry — the read path for a
// refused cache insert: the bytes stay in orphan limbo (the destager
// still commits them) and the reader just observes them. Newest-match
// wins, as in adoptOrphan.
func (c *blockCache) peekOrphan(blk uint64, within, n int64, dst []byte) bool {
	if c.orphanCount.Load() == 0 {
		return false
	}
	c.orphanMu.Lock()
	defer c.orphanMu.Unlock()
	var e *orphanEntry
	for _, cand := range c.orphans {
		if cand.blk == blk {
			e = cand
		}
	}
	if e == nil {
		return false
	}
	copy(dst, e.payload[within:within+n])
	return true
}

// orphanFold merges write bytes into blk's newest orphan entry, for the
// write-through path when the cache refuses to adopt the orphan (shard
// full of pinned blocks). The destager later commits the merged payload
// in queue order, preserving write ordering without a cache slot.
// Reports false if no foldable entry exists (none, or the newest is
// mid-commit — impossible while the caller holds the destage mutex, as
// writeThrough does, since drains run entirely under it).
func (c *blockCache) orphanFold(blk uint64, within, n int64, src []byte) bool {
	c.orphanMu.Lock()
	defer c.orphanMu.Unlock()
	var e *orphanEntry
	for _, cand := range c.orphans {
		if cand.blk == blk {
			e = cand
		}
	}
	if e == nil || e.writing {
		return false
	}
	copy(e.payload[within:within+n], src)
	return true
}

// orphaned reports whether blk currently has an orphan entry.
func (c *blockCache) orphaned(blk uint64) bool {
	if c.orphanCount.Load() == 0 {
		return false
	}
	c.orphanMu.Lock()
	defer c.orphanMu.Unlock()
	for _, e := range c.orphans {
		if e.blk == blk {
			return true
		}
	}
	return false
}

// readBlock copies block blk's bytes [within, within+n) into dst,
// filling the block from store on a miss. The store read happens under
// the shard lock: that serializes misses per shard but guarantees a
// concurrent volume.write (store write, then cache update) can never
// leave a stale payload resident — the writer's cache update always
// observes a completed insert or no entry at all.
func (c *blockCache) readBlock(v *volume, blk uint64, within, n int64, dst []byte) error {
	sh := c.shard(blk)
	sh.mu.Lock()
	hit, victim, evicted, inserted := sh.mq.RefOrTryInsert(blk)
	if hit {
		c.hits.Add(1)
		c.hitLocked(sh, blk)
		copy(dst, sh.data[blk][within:within+n])
		sh.mu.Unlock()
		return nil
	}
	c.misses.Add(1)
	if !inserted {
		// Every slot in this shard is pinned by uncommitted write-behind
		// state; serve the read without caching it. An orphan holds the
		// freshest bytes if one exists; otherwise the store does (the
		// shard lock orders this read against absorbs, like a miss fill).
		if c.peekOrphan(blk, within, n, dst) {
			sh.mu.Unlock()
			return nil
		}
		err := v.store.ReadAt(dst[:n], int64(blk)*cacheBlockSize+within)
		sh.mu.Unlock()
		return err
	}
	if evicted {
		c.evictLocked(v, sh, victim)
	}
	if payload := c.adoptOrphan(blk); payload != nil {
		// The freshest bytes were in orphan limbo, not on disk: re-adopt
		// them as dirty so the destager commits them from here.
		sh.data[blk] = payload
		sh.dirty[blk] = struct{}{}
		c.dirtyCount.Add(1)
		sh.mq.Pin(blk)
		copy(dst, payload[within:within+n])
		sh.mu.Unlock()
		return nil
	}
	payload := c.pool.Get(cacheBlockSize)
	bs := int64(blk) * cacheBlockSize
	readLen := blockLen(v.store.Size(), blk)
	if err := v.store.ReadAt(payload[:readLen], bs); err != nil {
		// Roll the insert back so the failed block is not resident.
		sh.mq.Remove(blk)
		c.pool.Put(payload)
		sh.mu.Unlock()
		return err
	}
	// Pooled slabs arrive dirty; the tail past EOF must read as zeros.
	clear(payload[readLen:])
	sh.data[blk] = payload
	copy(dst, payload[within:within+n])
	sh.mu.Unlock()
	return nil
}

// readBlockHit is the hit-only probe behind the disk pipeline's inline
// fast path: it copies the block's bytes if resident and reports false
// otherwise, never touching the store. A false return leaves dst
// partially written; the caller re-issues the whole read on a worker.
func (c *blockCache) readBlockHit(blk uint64, within, n int64, dst []byte) bool {
	sh := c.shard(blk)
	sh.mu.Lock()
	payload, ok := sh.data[blk]
	if !ok {
		sh.mu.Unlock()
		return false
	}
	sh.mq.Ref(blk)
	c.hits.Add(1)
	c.hitLocked(sh, blk)
	copy(dst, payload[within:within+n])
	sh.mu.Unlock()
	return true
}

// absorb folds write bytes into block blk as dirty state — the
// write-behind path. An absent block is installed first: a fully
// covered block needs no store round-trip, a partially covered one is
// read-modify-write filled (from an orphan if one exists, else the
// store, under the shard lock like any fill).
func (c *blockCache) absorb(v *volume, blk uint64, within, n int64, src []byte) error {
	sh := c.shard(blk)
	sh.mu.Lock()
	payload, resident := sh.data[blk]
	if resident {
		sh.mq.Ref(blk)
	} else {
		hit, victim, evicted, inserted := sh.mq.RefOrTryInsert(blk)
		if !hit && !inserted {
			// Shard wall-to-wall pinned: no slot for another dirty block.
			// The caller commits these bytes via write-through instead.
			sh.mu.Unlock()
			return errCacheBusy
		}
		if evicted {
			c.evictLocked(v, sh, victim)
		}
		payload = c.adoptOrphan(blk)
		if payload == nil {
			payload = c.pool.Get(cacheBlockSize)
			bl := blockLen(v.store.Size(), blk)
			if within == 0 && n == bl {
				clear(payload[n:])
			} else {
				if err := v.store.ReadAt(payload[:bl], int64(blk)*cacheBlockSize); err != nil {
					sh.mq.Remove(blk)
					c.pool.Put(payload)
					sh.mu.Unlock()
					return err
				}
				clear(payload[bl:])
			}
		}
		sh.data[blk] = payload
	}
	copy(payload[within:within+n], src)
	if _, d := sh.dirty[blk]; !d {
		sh.dirty[blk] = struct{}{}
		c.dirtyCount.Add(1)
		sh.mq.Pin(blk)
	}
	if _, p := sh.pref[blk]; p {
		delete(sh.pref, blk)
		c.prefResident.Add(-1)
	}
	sh.epochs[epochStripe(blk)]++
	sh.mu.Unlock()
	return nil
}

// absorbIfResident folds write bytes into blk only if it is resident,
// reporting (resident, wasDirty). Used by the write-through fallback: a
// resident dirty block must absorb (its store ordering belongs to the
// destager); a resident clean block absorbs and the caller also writes
// the store so it can stay clean.
func (c *blockCache) absorbIfResident(blk uint64, within, n int64, src []byte) (resident, wasDirty bool) {
	sh := c.shard(blk)
	sh.mu.Lock()
	payload, ok := sh.data[blk]
	if !ok {
		sh.mu.Unlock()
		return false, false
	}
	sh.mq.Ref(blk)
	copy(payload[within:within+n], src)
	_, wasDirty = sh.dirty[blk]
	if _, p := sh.pref[blk]; p {
		delete(sh.pref, blk)
		c.prefResident.Add(-1)
	}
	sh.epochs[epochStripe(blk)]++
	sh.mu.Unlock()
	return true, wasDirty
}

// updateBlock folds a committed write into block blk if it is resident.
// Absent blocks are left absent (write-around): the read path will fetch
// the new bytes from the store. The epoch bumps even for absent blocks —
// the store itself just changed under this block, which is exactly what
// an in-flight queue read over the range must learn about.
func (c *blockCache) updateBlock(blk uint64, within, n int64, src []byte) {
	sh := c.shard(blk)
	sh.mu.Lock()
	if payload, ok := sh.data[blk]; ok {
		copy(payload[within:within+n], src)
		sh.mq.Ref(blk)
	}
	sh.epochs[epochStripe(blk)]++
	sh.mu.Unlock()
}

// bumpEpoch records an out-of-band store content change for blk
// (the destager's orphan commits, which write the store with no resident
// block to fold into).
func (c *blockCache) bumpEpoch(blk uint64) {
	sh := c.shard(blk)
	sh.mu.Lock()
	sh.epochs[epochStripe(blk)]++
	sh.mu.Unlock()
}

// epochsUnchanged revalidates a submit-time epoch snapshot: true means
// no content-changing event has touched any covered stripe since.
func (c *blockCache) epochsUnchanged(epochs []shardEpoch) bool {
	for _, e := range epochs {
		sh := &c.shards[e.idx]
		sh.mu.Lock()
		cur := sh.epochs[e.stripe]
		sh.mu.Unlock()
		if cur != e.epoch {
			return false
		}
	}
	return true
}

// dirtySnapshot returns the sorted block numbers currently dirty — the
// destager's work list. Blocks may be cleaned (or evicted to orphans)
// between snapshot and staging; stage re-checks under the shard lock.
func (c *blockCache) dirtySnapshot() []uint64 {
	blks := make([]uint64, 0, c.dirtyCount.Load())
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for blk := range sh.dirty {
			blks = append(blks, blk)
		}
		sh.mu.Unlock()
	}
	sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })
	return blks
}

// stage copies blk's payload into dst for a destage batch, moving the
// block dirty → flushing. Reports false if the block is no longer a
// resident dirty block (destaged, evicted, or re-adopted elsewhere).
func (c *blockCache) stage(blk uint64, dst []byte) bool {
	sh := c.shard(blk)
	sh.mu.Lock()
	payload, resident := sh.data[blk]
	if _, dirty := sh.dirty[blk]; !resident || !dirty {
		sh.mu.Unlock()
		return false
	}
	if _, f := sh.flushing[blk]; f {
		// A prior batch's write for this block is still in flight (it was
		// re-dirtied mid-batch). Staging it again would put two writes for
		// the same extent in flight at once with no ordering between them;
		// leave it dirty for the next pass, after unstage clears the mark.
		sh.mu.Unlock()
		return false
	}
	copy(dst, payload[:len(dst)])
	delete(sh.dirty, blk)
	c.dirtyCount.Add(-1)
	sh.flushing[blk] = struct{}{}
	sh.mu.Unlock()
	return true
}

// unstage clears the flushing marks of a committed batch. With redirty,
// the batch write failed: still-resident blocks return to dirty so the
// next pass retries them (orphaned ones are already queued separately).
func (c *blockCache) unstage(blks []uint64, redirty bool) {
	for _, blk := range blks {
		sh := c.shard(blk)
		sh.mu.Lock()
		delete(sh.flushing, blk)
		if redirty {
			if _, resident := sh.data[blk]; resident {
				if _, d := sh.dirty[blk]; !d {
					sh.dirty[blk] = struct{}{}
					c.dirtyCount.Add(1)
				}
			}
		}
		if _, d := sh.dirty[blk]; !d {
			// No uncommitted state left on this block (it was not
			// re-dirtied mid-flight): make it evictable again.
			sh.mq.Unpin(blk)
		}
		// The destage write for this block just finished (well or badly);
		// either way the store range was in motion while it was in flight.
		sh.epochs[epochStripe(blk)]++
		sh.mu.Unlock()
	}
}

// demandReadCheck decides whether the block range [start, start+n) may
// be read from the store *without* shard locks held, as the batched disk
// queue does. It is the submit half of the queue's coherence protocol:
// under each touched shard's lock (ascending — the global order) it
// rejects ranges with any uncommitted write-behind state — dirty,
// flushing, or orphaned blocks, whose freshest bytes are not on disk —
// and otherwise snapshots each covered block's epoch stripe for
// completion-time revalidation. ok=false sends the caller down the
// classic locked path.
func (c *blockCache) demandReadCheck(start uint64, n int) (epochs []shardEpoch, ok bool) {
	shardSet := make([]bool, len(c.shards))
	for i := 0; i < n; i++ {
		shardSet[(start+uint64(i))&c.mask] = true
	}
	var locked []*cacheShard
	unlock := func() {
		for _, sh := range locked {
			sh.mu.Unlock()
		}
	}
	for idx := range c.shards {
		if shardSet[idx] {
			c.shards[idx].mu.Lock()
			locked = append(locked, &c.shards[idx])
		}
	}
	epochs = make([]shardEpoch, 0, n)
	for i := 0; i < n; i++ {
		blk := start + uint64(i)
		sh := c.shard(blk)
		if _, d := sh.dirty[blk]; d {
			unlock()
			return nil, false
		}
		if _, f := sh.flushing[blk]; f {
			unlock()
			return nil, false
		}
		if c.orphaned(blk) {
			unlock()
			return nil, false
		}
		st := epochStripe(blk)
		epochs = append(epochs, shardEpoch{idx: int(blk & c.mask), stripe: st, epoch: sh.epochs[st]})
	}
	unlock()
	return epochs, true
}

// prefetchPlan is the lock phase of a batched prefetch fill: under the
// touched shards' locks it marks which of the window's blocks are worth
// fetching (in-volume, absent and not orphaned) and snapshots each
// block's epoch stripe (want and epochs are index-aligned with blks).
// The caller then reads the store with no locks held and hands the
// bytes to prefetchInstall. Returns need=0 when nothing is wanted.
func (c *blockCache) prefetchPlan(v *volume, blks []uint64) (want []bool, epochs []shardEpoch, need int) {
	vsize := v.store.Size()
	shardSet := make([]bool, len(c.shards))
	for _, blk := range blks {
		if int64(blk)*cacheBlockSize < vsize {
			shardSet[blk&c.mask] = true
		}
	}
	var locked []*cacheShard
	for idx := range c.shards {
		if shardSet[idx] {
			c.shards[idx].mu.Lock()
			locked = append(locked, &c.shards[idx])
		}
	}
	want = make([]bool, len(blks))
	epochs = make([]shardEpoch, len(blks))
	for i, blk := range blks {
		if int64(blk)*cacheBlockSize >= vsize {
			continue // out of volume; want stays false
		}
		sh := c.shard(blk)
		st := epochStripe(blk)
		epochs[i] = shardEpoch{idx: int(blk & c.mask), stripe: st, epoch: sh.epochs[st]}
		if _, resident := sh.data[blk]; !resident && !c.orphaned(blk) {
			want[i] = true
			need++
		}
	}
	for _, sh := range locked {
		sh.mu.Unlock()
	}
	if need == 0 {
		return nil, nil, 0
	}
	return want, epochs, need
}

// prefetchInstall publishes a lock-free prefetch read's bytes: slot i of
// buf holds blks[i] as read from the store, want marks the blocks
// prefetchPlan selected, and ok[i]=false marks blocks whose read extent
// failed. A block installs only if its epoch stripe is unchanged since
// the plan (no write raced the unlocked read), it is still absent, and
// it has not been orphaned — otherwise it is skipped; a future demand
// miss fetches it coherently. Returns the number installed.
func (c *blockCache) prefetchInstall(v *volume, blks []uint64, want, ok []bool, epochs []shardEpoch, buf []byte) int {
	shardSet := make([]bool, len(c.shards))
	for i, blk := range blks {
		if want[i] {
			shardSet[blk&c.mask] = true
		}
	}
	var locked []*cacheShard
	for idx := range c.shards {
		if shardSet[idx] {
			c.shards[idx].mu.Lock()
			locked = append(locked, &c.shards[idx])
		}
	}
	installed := 0
	for i, blk := range blks {
		if !want[i] || (ok != nil && !ok[i]) {
			continue
		}
		sh := c.shard(blk)
		if sh.epochs[epochs[i].stripe] != epochs[i].epoch {
			continue
		}
		if _, resident := sh.data[blk]; resident || c.orphaned(blk) {
			continue
		}
		hit, victim, evicted, inserted := sh.mq.RefOrTryInsert(blk)
		if hit {
			continue
		}
		if !inserted {
			// Shard wall-to-wall pinned: speculative bytes never displace
			// uncommitted ones, so the block is skipped; a later demand
			// miss fetches it coherently.
			continue
		}
		if evicted {
			c.evictLocked(v, sh, victim)
		}
		// Same second-reference promotion as the classic fill: keep the
		// not-yet-read window ahead of the MQ's lowest-queue LRU victim.
		sh.mq.Ref(blk)
		payload := c.pool.Get(cacheBlockSize)
		copy(payload, buf[i*cacheBlockSize:(i+1)*cacheBlockSize])
		sh.data[blk] = payload
		sh.pref[blk] = struct{}{}
		c.prefResident.Add(1)
		c.prefFills.Add(1)
		installed++
	}
	for _, sh := range locked {
		sh.mu.Unlock()
	}
	return installed
}

// prefetchFill installs blocks [start, start+n) from one contiguous
// store read, skipping resident and orphaned blocks. Every touched
// shard stays locked across the read — the same publication rule as a
// demand miss fill, widened to the whole range — so the
// store-write-before-cache-update ordering of writers keeps installed
// payloads fresh.
func (c *blockCache) prefetchFill(v *volume, start uint64, n int) error {
	vsize := v.store.Size()
	for n > 0 && int64(start+uint64(n)-1)*cacheBlockSize >= vsize {
		n--
	}
	if n <= 0 {
		return nil
	}
	// Collect the distinct shards the range touches, in ascending index
	// order (the global shard-lock order; single-shard paths trivially
	// comply).
	shardSet := make([]bool, len(c.shards))
	nlock := 0
	for i := 0; i < n; i++ {
		idx := (start + uint64(i)) & c.mask
		if !shardSet[idx] {
			shardSet[idx] = true
			nlock++
		}
	}
	locked := make([]*cacheShard, 0, nlock)
	for idx := range c.shards {
		if shardSet[idx] {
			c.shards[idx].mu.Lock()
			locked = append(locked, &c.shards[idx])
		}
	}
	unlock := func() {
		for _, sh := range locked {
			sh.mu.Unlock()
		}
	}
	want := make([]bool, n)
	need := 0
	for i := 0; i < n; i++ {
		blk := start + uint64(i)
		sh := c.shard(blk)
		if _, resident := sh.data[blk]; !resident && !c.orphaned(blk) {
			want[i] = true
			need++
		}
	}
	if need == 0 {
		unlock()
		return nil
	}
	buf := c.pool.Get(n * cacheBlockSize)
	readLen := int64(n) * cacheBlockSize
	if over := int64(start)*cacheBlockSize + readLen - vsize; over > 0 {
		readLen -= over
	}
	if err := v.store.ReadAt(buf[:readLen], int64(start)*cacheBlockSize); err != nil {
		unlock()
		c.pool.Put(buf)
		return err
	}
	clear(buf[readLen:])
	for i := 0; i < n; i++ {
		if !want[i] {
			continue
		}
		blk := start + uint64(i)
		sh := c.shard(blk)
		hit, victim, evicted, inserted := sh.mq.RefOrTryInsert(blk)
		if hit {
			continue // raced in by a demand fill in another shard? defensive
		}
		if !inserted {
			continue // shard wall-to-wall pinned; skip the speculative fill
		}
		if evicted {
			c.evictLocked(v, sh, victim)
		}
		// Second reference on insert: without it a long scan's read-ahead
		// lands in the MQ's lowest queue, whose LRU victim is the oldest
		// not-yet-read prefetched block — the next one the stream needs.
		// Promoted one level, eviction falls on already-consumed blocks.
		sh.mq.Ref(blk)
		payload := c.pool.Get(cacheBlockSize)
		copy(payload, buf[i*cacheBlockSize:(i+1)*cacheBlockSize])
		sh.data[blk] = payload
		sh.pref[blk] = struct{}{}
		c.prefResident.Add(1)
		c.prefFills.Add(1)
	}
	unlock()
	c.pool.Put(buf)
	return nil
}

// stats returns cumulative (hits, misses).
func (c *blockCache) stats() (int64, int64) {
	return c.hits.Load(), c.misses.Load()
}
