package netv3

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"github.com/v3storage/v3/internal/bufpool"
	"github.com/v3storage/v3/internal/mqcache"
)

// blockCache is the per-volume server read cache, sharded so that cache
// hits on different blocks stop serializing on one volume-wide mutex
// during the payload memcpy. It is the TCP-path form of the paper's
// lock-synchronization minimization (Section 3.3): the same MQ policy,
// but the single lock pair per access now covers only 1/nshards of the
// key space. Shards are selected by low bits of the block number, so a
// sequential scan also spreads across shards.
type blockCache struct {
	shards []cacheShard
	mask   uint64
	pool   *bufpool.Pool
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheShard struct {
	mu   sync.Mutex
	mq   *mqcache.MQ
	data map[uint64][]byte // resident block payloads, len cacheBlockSize
	_    [40]byte          // pad to a cache line so shard locks don't false-share
}

// defaultCacheShards is the shard count when ServerConfig.CacheShards is
// zero. 16 keeps per-shard capacity useful for small caches while
// allowing 16-way concurrent hits.
const defaultCacheShards = 16

// newBlockCache builds a cache of totalBlocks across nshards shards
// (rounded up to a power of two; 1 disables sharding for ablation).
func newBlockCache(totalBlocks, nshards int, pool *bufpool.Pool) *blockCache {
	if nshards <= 0 {
		nshards = defaultCacheShards
	}
	if nshards&(nshards-1) != 0 {
		nshards = 1 << bits.Len(uint(nshards))
	}
	// Never create more shards than blocks: each shard needs capacity.
	for nshards > 1 && totalBlocks/nshards < 1 {
		nshards /= 2
	}
	per := totalBlocks / nshards
	if per < 1 {
		per = 1
	}
	c := &blockCache{shards: make([]cacheShard, nshards), mask: uint64(nshards - 1), pool: pool}
	for i := range c.shards {
		c.shards[i].mq = mqcache.NewMQ(per, 0, 0)
		c.shards[i].data = make(map[uint64][]byte, per)
	}
	return c
}

func (c *blockCache) shard(blk uint64) *cacheShard {
	return &c.shards[blk&c.mask]
}

// readBlock copies block blk's bytes [within, within+n) into dst,
// filling the block from store on a miss. The store read happens under
// the shard lock: that serializes misses per shard but guarantees a
// concurrent volume.write (store write, then cache update) can never
// leave a stale payload resident — the writer's cache update always
// observes a completed insert or no entry at all.
func (c *blockCache) readBlock(v *volume, blk uint64, within, n int64, dst []byte) error {
	sh := c.shard(blk)
	sh.mu.Lock()
	hit, victim, evicted := sh.mq.RefOrInsert(blk)
	if hit {
		c.hits.Add(1)
		copy(dst, sh.data[blk][within:within+n])
		sh.mu.Unlock()
		return nil
	}
	c.misses.Add(1)
	if evicted {
		c.pool.Put(sh.data[victim])
		delete(sh.data, victim)
	}
	payload := c.pool.Get(cacheBlockSize)
	bs := int64(blk) * cacheBlockSize
	readLen := int64(cacheBlockSize)
	if bs+readLen > v.store.Size() {
		readLen = v.store.Size() - bs
	}
	if err := v.store.ReadAt(payload[:readLen], bs); err != nil {
		// Roll the insert back so the failed block is not resident.
		sh.mq.Remove(blk)
		c.pool.Put(payload)
		sh.mu.Unlock()
		return err
	}
	// Pooled slabs arrive dirty; the tail past EOF must read as zeros.
	clear(payload[readLen:])
	sh.data[blk] = payload
	copy(dst, payload[within:within+n])
	sh.mu.Unlock()
	return nil
}

// updateBlock folds a committed write into block blk if it is resident.
// Absent blocks are left absent (write-around): the read path will fetch
// the new bytes from the store.
func (c *blockCache) updateBlock(blk uint64, within, n int64, src []byte) {
	sh := c.shard(blk)
	sh.mu.Lock()
	if payload, ok := sh.data[blk]; ok {
		copy(payload[within:within+n], src)
		sh.mq.Ref(blk)
	}
	sh.mu.Unlock()
}

// stats returns cumulative (hits, misses).
func (c *blockCache) stats() (int64, int64) {
	return c.hits.Load(), c.misses.Load()
}
