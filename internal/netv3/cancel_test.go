package netv3

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/faultnet"
)

// startFaultServer runs a real server whose every session passes through
// a faultnet injector, so tests can blackhole, slow, or sever the link
// mid-protocol.
func startFaultServer(t *testing.T, cfg ServerConfig, volSize int64) (*Injected, string) {
	t.Helper()
	inj := faultnet.New(1)
	srv := NewServer(cfg)
	srv.AddVolume(1, NewMemStore(volSize))
	ln, err := inj.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.ListenOn(ln)
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return &Injected{Inj: inj, Srv: srv}, ln.Addr().String()
}

// Injected bundles a fault-wrapped server with its injector.
type Injected struct {
	Inj *faultnet.Injector
	Srv *Server
}

// TestCancelReleasesSlotsImmediately is the regression test for the
// credit-slot leak: before this PR an expired WaitTimeout left the slot
// pinned until the server answered, so a window's worth of timed-out
// requests against a hung server wedged the client permanently — every
// later submission blocked forever in the credit acquire. Now the expiry
// cancels the request and the slot comes straight home.
func TestCancelReleasesSlotsImmediately(t *testing.T) {
	addr := startHungServer(t) // grants 8 credits, never answers
	cfg := DefaultClientConfig()
	cfg.KeepaliveInterval = 0 // isolate the cancel path from hung detection
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Exhaust the whole window against the hung server and abandon every
	// handle through a bounded wait.
	for i := 0; i < cap(c.creditC); i++ {
		h, err := c.ReadAsync(1, 0, make([]byte, 64))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.WaitTimeout(5 * time.Millisecond); !errors.Is(err, ErrWaitTimeout) {
			t.Fatalf("req %d: err=%v, want ErrWaitTimeout", i, err)
		}
	}
	// The window must be fully reusable: a full window's worth of new
	// submissions acquires slots without blocking. Pre-fix this deadlocked
	// on the first iteration.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for i := 0; i < cap(c.creditC); i++ {
		h, err := c.ReadAsyncCtx(ctx, 1, 0, make([]byte, 64))
		if err != nil {
			t.Fatalf("post-cancel submission %d blocked: %v", i, err)
		}
		h.Cancel()
	}
	if st := c.Stats(); st.Cancels != int64(2*cap(c.creditC)) {
		t.Fatalf("Cancels=%d, want %d", st.Cancels, 2*cap(c.creditC))
	}
}

// TestCancelDetachesBuffer pins the ownership handoff: once Cancel
// returns true the caller owns the buffer again, and a late response for
// the canceled request is drained off the stream without ever touching
// that memory.
func TestCancelDetachesBuffer(t *testing.T) {
	f, addr := startFaultServer(t, DefaultServerConfig(), 1<<20)
	cfg := DefaultClientConfig()
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := bytes.Repeat([]byte{0xAB}, 4096)
	if err := c.Write(1, 0, data); err != nil {
		t.Fatal(err)
	}
	// Slow the link so the read response is still in flight when the
	// cancel lands.
	f.Inj.SetLatency(40*time.Millisecond, 0)
	buf := make([]byte, 4096)
	h, err := c.ReadAsync(1, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Cancel() {
		t.Fatal("Cancel returned false with the response still in flight")
	}
	if err := h.Wait(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Wait after Cancel = %v, want ErrCanceled", err)
	}
	// The buffer is ours: fill it with a sentinel and let the stale
	// response arrive. Its payload must be drained blind, not written here.
	for i := range buf {
		buf[i] = 0x5C
	}
	f.Inj.SetLatency(0, 0)
	// A follow-up read on the same connection proves the stream stayed
	// framed (the stale payload didn't shift frame boundaries) — and
	// reuses the reclaimed buffer, completing the ownership round trip.
	if err := c.Read(1, 0, buf); err != nil {
		t.Fatalf("read after canceled read: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("read-back after cancel mismatch")
	}
}

// TestCancelSentinelSurvivesLateResponse is the sharper half of the
// ownership test: after a cancel, the detached buffer's contents must
// still be exactly what the caller last wrote even AFTER the stale
// response has demonstrably arrived and been drained.
func TestCancelSentinelSurvivesLateResponse(t *testing.T) {
	f, addr := startFaultServer(t, DefaultServerConfig(), 1<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(1, 0, bytes.Repeat([]byte{0xEE}, 1024)); err != nil {
		t.Fatal(err)
	}
	f.Inj.SetLatency(30*time.Millisecond, 0)
	buf := make([]byte, 1024)
	h, err := c.ReadAsync(1, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Cancel() {
		t.Skip("response won the race; nothing to verify")
	}
	sentinel := byte(0x42)
	for i := range buf {
		buf[i] = sentinel
	}
	f.Inj.SetLatency(0, 0)
	// Round-trip a fresh request into a DIFFERENT buffer: by frame
	// ordering, its completion proves the stale response was already
	// received and drained.
	other := make([]byte, 1024)
	if err := c.Read(1, 0, other); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != sentinel {
			t.Fatalf("buf[%d]=%#x: late response wrote into a canceled buffer", i, b)
		}
	}
}

// TestStatsResponsiveDuringReconnect is the regression test for the
// reconnect-under-mutex stall: connectionBroken used to hold the client
// mutex across every dial attempt (up to DialTimeout each), so Stats,
// Close, and all submitter bookkeeping froze for seconds during a
// reconnect storm. Dials now run with the lock released.
func TestStatsResponsiveDuringReconnect(t *testing.T) {
	f, addr := startFaultServer(t, DefaultServerConfig(), 1<<20)
	cfg := DefaultClientConfig()
	cfg.KeepaliveInterval = 0
	cfg.DialTimeout = 2 * time.Second
	cfg.ReconnectBackoff = 50 * time.Millisecond
	cfg.MaxReconnects = 8
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(1, 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	// Blackhole the server and sever the session: the reconnect loop's
	// dial attempts will TCP-connect but hang in the handshake until
	// DialTimeout — the worst case for a lock held across the dial.
	f.Inj.Blackhole(true)
	c.KillConnForTest()
	time.Sleep(100 * time.Millisecond) // let recovery enter a dial attempt
	start := time.Now()
	_ = c.Stats()
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("Stats blocked %v during reconnect (lock held across dial)", d)
	}
	// Heal and confirm the client actually recovers end-to-end.
	f.Inj.Blackhole(false)
	deadline := time.Now().Add(20 * time.Second)
	for {
		if err := c.Read(1, 0, make([]byte, 512)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after heal")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if c.Reconnects() < 1 {
		t.Fatalf("Reconnects=%d, want >=1", c.Reconnects())
	}
}

// TestAcquireSlotHonorsContext pins the bounded submission primitive on
// its own: with the window exhausted, ReadAsyncCtx must return ctx.Err()
// within the context bound instead of joining the blocked acquirers.
func TestAcquireSlotHonorsContext(t *testing.T) {
	addr := startHungServer(t)
	cfg := DefaultClientConfig()
	cfg.KeepaliveInterval = 0
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	handles := make([]*Pending, 0, cap(c.creditC))
	for i := 0; i < cap(c.creditC); i++ {
		h, err := c.ReadAsync(1, 0, make([]byte, 64))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.ReadAsyncCtx(ctx, 1, 0, make([]byte, 64))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("bounded acquire took %v", d)
	}
	for _, h := range handles {
		h.Cancel()
	}
}
