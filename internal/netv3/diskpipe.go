package netv3

import (
	"sync"
	"sync/atomic"

	"github.com/v3storage/v3/internal/obs"
	"github.com/v3storage/v3/internal/wire"
)

const (
	taskRead = iota
	taskWrite
)

// diskTask is one store I/O handed from a session loop to the volume's
// disk workers. All request fields are copied in, so inline dispatch can
// keep reusing its decoded message structs.
type diskTask struct {
	sc    *sessCtx
	kind  int
	seq   uint64
	reqID uint64
	off   int64
	body  []byte // read: response buffer; write: payload (owned by the task)
	enq   int64  // enqueue timestamp; zero when metrics are off
}

// diskPipe is a per-volume pool of disk worker goroutines, the
// asynchronous-I/O half of the paper's pipelined disk manager: the
// session loop stays a pure protocol engine while store reads and
// writes proceed in parallel and complete out of order. Cache hits never
// enter the pipe — they are served inline, where the only cost is a
// memcpy.
type diskPipe struct {
	s     *Server
	v     *volume
	tasks chan diskTask

	// mu guards closed against the shutdown close(tasks): submitters hold
	// it shared, shutdown exclusively, so a task is never sent to a
	// closed channel and a false return always means "run it yourself".
	mu              sync.RWMutex
	closed          bool
	inlineFallbacks atomic.Int64
}

func newDiskPipe(s *Server, v *volume) *diskPipe {
	depth := s.cfg.DiskWorkers * 4
	if depth < 16 {
		depth = 16
	}
	p := &diskPipe{s: s, v: v, tasks: make(chan diskTask, depth)}
	for i := 0; i < s.cfg.DiskWorkers; i++ {
		go p.worker()
	}
	return p
}

// trySubmit queues t for the workers. A false return (queue full or pipe
// shut down) means the caller still owns the task and must execute it on
// the classic path.
func (p *diskPipe) trySubmit(t diskTask) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	if p.s.om != nil {
		t.enq = obs.Now()
	}
	select {
	case p.tasks <- t:
		return true
	default:
		p.inlineFallbacks.Add(1)
		return false
	}
}

// shutdown stops submissions and lets the workers drain and exit. Every
// task accepted before shutdown still completes, so session-side
// WaitGroups cannot strand.
func (p *diskPipe) shutdown() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.tasks)
}

func (p *diskPipe) worker() {
	for t := range p.tasks {
		p.runTask(t)
	}
}

func (p *diskPipe) runTask(t diskTask) {
	s := p.s
	defer t.sc.wg.Done()
	var svc0 int64
	if t.enq != 0 {
		svc0 = obs.Now()
		s.om.queueWait.Observe(svc0 - t.enq)
	}
	switch t.kind {
	case taskRead:
		rr := &wire.ReadResp{Header: wire.Header{Ack: uint32(t.seq)}, ReqID: t.reqID, Credits: 1, Status: wire.StatusOK}
		body := t.body
		if err := p.v.readInto(body, t.off); err != nil {
			rr.Status = wire.StatusEIO
			s.logf("netv3: worker read [%d,+%d): %v", t.off, len(body), err)
			s.pool.Put(body)
			body = nil
		}
		if svc0 != 0 {
			s.om.diskRead.Observe(obs.Now() - svc0)
		}
		rr.Length = uint32(len(body))
		s.served.Add(1)
		t.sc.complete(completion{msg: rr, body: body})
	case taskWrite:
		wr := &wire.WriteResp{Header: wire.Header{Ack: uint32(t.seq)}, ReqID: t.reqID, Credits: 1, Status: wire.StatusOK}
		if err := p.v.write(t.body, t.off); err != nil {
			wr.Status = wire.StatusEIO
			s.logf("netv3: worker write [%d,+%d): %v", t.off, len(t.body), err)
		}
		if svc0 != 0 {
			s.om.diskWrite.Observe(obs.Now() - svc0)
		}
		s.pool.Put(t.body)
		s.served.Add(1)
		t.sc.complete(completion{msg: wr})
	}
}

// completion is one finished worker task on its way back to the wire.
// Flow-control slots are no longer carried here: the session loop
// releases a write's slot as soon as its payload leaves the stream, so
// completions are pure response traffic.
type completion struct {
	msg  wire.Message
	body []byte // returned to the pool after the response is written
}

// sessCtx is a session's completion lane: workers finish tasks in any
// order and hand the responses to one dedicated completion goroutine
// over a channel, so no worker ever contends on the respWriter mutex or
// interleaves with another worker's frame+body write. The lane batches
// opportunistically — a response is buffered (not flushed) whenever more
// completions are already queued behind it, extending the session loop's
// interrupt-batching discipline to out-of-order completions.
type sessCtx struct {
	s    *Server
	w    *respWriter
	comp chan completion
	wg   sync.WaitGroup // in-flight worker tasks for this session
}

func newSessCtx(s *Server, w *respWriter, credits int) *sessCtx {
	// The lane must hold at least as many completions as the client can
	// have requests in flight (its granted credits): the disk queue's
	// dispatcher serves every session of every volume, so a single
	// lane-full send blocking it would stall unrelated sessions. With
	// capacity ≥ credits the send below never blocks.
	depth := 64
	if credits > depth {
		depth = credits
	}
	sc := &sessCtx{s: s, w: w, comp: make(chan completion, depth)}
	go sc.loop()
	return sc
}

func (sc *sessCtx) complete(c completion) {
	sc.comp <- c
}

// close tears the lane down after the connection is dead: wait out the
// in-flight tasks, then stop the completion goroutine.
func (sc *sessCtx) close() {
	sc.wg.Wait()
	close(sc.comp)
}

func (sc *sessCtx) loop() {
	for c := range sc.comp {
		// Buffer while more completions are queued; the last one in the
		// burst goes out with a flush.
		mode := respGo
		if sc.w.bw != nil && len(sc.comp) > 0 {
			mode = respInline
		}
		_ = sc.w.respond(c.msg, c.body, mode)
		if c.body != nil {
			sc.s.pool.Put(c.body)
		}
	}
}
