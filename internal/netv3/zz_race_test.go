package netv3

import (
	"testing"

	"github.com/v3storage/v3/internal/obs"
)

// Submit from one goroutine, Wait from another, metrics enabled.
func TestCrossGoroutineWaitTrace(t *testing.T) {
	_, addr := startServer(t, ServerConfig{CacheBlocks: 64}, 1<<20)
	ccfg := DefaultClientConfig()
	ccfg.Metrics = obs.New()
	c, err := Dial(addr, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hs := make(chan *Pending, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for h := range hs {
			if err := h.Wait(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	buf := make([]byte, 512)
	for i := 0; i < 2000; i++ {
		h, err := c.WriteAsync(1, 0, buf)
		if err != nil {
			t.Fatal(err)
		}
		hs <- h
	}
	close(hs)
	<-done
}
