package netv3

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/faultnet"
)

// diskQCfg is diskCfg with the batched submission/completion disk
// backend in place of the worker pool.
func diskQCfg() ServerConfig {
	cfg := DefaultServerConfig()
	cfg.CacheBlocks = 256
	cfg.DiskQ = true
	cfg.SQDepth = 32
	cfg.DestageInterval = time.Hour
	return cfg
}

// TestCheckStoreRangeOverflow is the regression test for the wire-offset
// integer overflow: off+int64(n) wraps negative for offsets near
// MaxInt64, so the old comparison let a hostile extent through and the
// panic surfaced deep inside buffer slicing. Every near-wrap shape must
// now be rejected.
func TestCheckStoreRangeOverflow(t *testing.T) {
	const size = 1 << 20
	bad := []struct {
		off int64
		n   int
	}{
		{math.MaxInt64, 1},
		{math.MaxInt64 - 4095, 8192}, // the wrapping shape
		{math.MaxInt64 - 8191, 8192}, // off+n == exactly MinInt64
		{size - 1, 2},
		{-1, 0},
		{0, size + 1},
		{4096, -1}, // negative length must not pass as "small"
	}
	for _, c := range bad {
		if err := checkStoreRange(size, c.off, c.n); err == nil {
			t.Errorf("checkStoreRange(%d, %d, %d) accepted an out-of-range extent", size, c.off, c.n)
		}
	}
	good := []struct {
		off int64
		n   int
	}{{0, 0}, {0, size}, {size, 0}, {size - 1, 1}, {8192, 4096}}
	for _, c := range good {
		if err := checkStoreRange(size, c.off, c.n); err != nil {
			t.Errorf("checkStoreRange(%d, %d, %d) rejected a valid extent: %v", size, c.off, c.n, err)
		}
	}
}

// TestDiskQMaliciousOffset drives hostile extents through the wire
// protocol against a disk-queue server: a read at an offset chosen to
// wrap the range check must come back as a clean error — not a server
// panic — and the session must remain fully usable afterwards.
func TestDiskQMaliciousOffset(t *testing.T) {
	_, addr := startServer(t, diskQCfg(), 1<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 8192)
	for _, off := range []int64{math.MaxInt64 - 4095, math.MaxInt64 - 8191, 1 << 40} {
		if err := c.Read(1, off, buf); err == nil {
			t.Fatalf("read at hostile offset %d succeeded", off)
		}
		if err := c.Write(1, off, buf); err == nil {
			t.Fatalf("write at hostile offset %d succeeded", off)
		}
	}
	// The session survived: a normal round trip still works.
	data := bytes.Repeat([]byte{0x5A}, 8192)
	if err := c.Write(1, 16384, data); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(1, 16384, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("read back wrong bytes after hostile offsets")
	}
}

// TestDiskQWriteThroughRoundtrip runs the cache-less configuration where
// every read and write rides the queue end to end (MemStore, so the
// portable backend via the adapter), and checks both the data and that
// the queue actually carried it.
func TestDiskQWriteThroughRoundtrip(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.DiskQ = true
	cfg.SQDepth = 16
	srv, addr := startServer(t, cfg, 4<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const blocks = 64
	for i := 0; i < blocks; i++ {
		if err := c.Write(1, int64(i)*8192, bytes.Repeat([]byte{byte(i + 1)}, 8192)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(1); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8192)
	for i := 0; i < blocks; i++ {
		if err := c.Read(1, int64(i)*8192, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) || got[8191] != byte(i+1) {
			t.Fatalf("block %d wrong after queue roundtrip", i)
		}
	}
	d := srv.DiskStats()
	if d.DiskQWrites == 0 {
		t.Fatalf("no writes went through the disk queue: %+v", d)
	}
	if d.DiskQReads == 0 {
		t.Fatalf("no reads went through the disk queue: %+v", d)
	}
}

// TestDiskQDestageBatches proves the destager drives the queue with
// vectored batches: with background destaging parked, acked writes stay
// out of the file until Flush, whose batched pass then commits runs via
// multi-op submissions and leaves the bytes on disk.
func TestDiskQDestageBatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.img")
	srv, addr := startFileServer(t, diskQCfg(), path, 4<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Two separated dirty extents → the batched pass has ≥ 2 runs to
	// submit as one vectored batch.
	a := bytes.Repeat([]byte{0xA1}, 64*1024)
	b := bytes.Repeat([]byte{0xB2}, 64*1024)
	if err := c.Write(1, 0, a); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(1, 1<<20, b); err != nil {
		t.Fatal(err)
	}
	onDisk := make([]byte, len(a))
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.ReadAt(onDisk, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, make([]byte, len(a))) {
		t.Fatal("write reached the file before any destage ran")
	}
	if err := c.Flush(1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(onDisk, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, a) {
		t.Fatal("Flush did not commit extent A through the batched pass")
	}
	if _, err := f.ReadAt(onDisk, 1<<20); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, b) {
		t.Fatal("Flush did not commit extent B through the batched pass")
	}
	d := srv.DiskStats()
	if d.DiskQBatches == 0 {
		t.Fatalf("destage issued no vectored batches: %+v", d)
	}
	if d.DirtyBlocks != 0 {
		t.Fatalf("dirty blocks remain after Flush: %d", d.DirtyBlocks)
	}
}

// TestDiskQCrashConsistency is the durability criterion under the
// batched path: bytes acked and Flushed through the queue (batched
// destage runs + the fsync barrier SQE) must be readable after the
// server goes away mid-stream and a fresh process opens the file. The
// second write burst is deliberately left unflushed — a crash may lose
// it, but must not corrupt the flushed prefix.
func TestDiskQCrashConsistency(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.img")
	const size = 4 << 20
	fs, err := NewFileStore(path, size)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(diskQCfg())
	srv.AddVolume(1, fs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()

	c, err := Dial(addr.String(), DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	const flushed = 96
	for i := 0; i < flushed; i++ {
		if err := c.Write(1, int64(i)*8192, bytes.Repeat([]byte{byte(i + 1)}, 8192)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(1); err != nil {
		t.Fatal(err)
	}
	// Unflushed tail: dirty blocks whose batch may be cut off mid-flight.
	for i := flushed; i < flushed+32; i++ {
		if err := c.Write(1, int64(i)*8192, bytes.Repeat([]byte{0xEE}, 8192)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	srv.Close()
	fs.Close()

	srv2, addr2 := startFileServer(t, diskQCfg(), path, size)
	_ = srv2
	c2, err := Dial(addr2, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got := make([]byte, 8192)
	for i := 0; i < flushed; i++ {
		if err := c2.Read(1, int64(i)*8192, got); err != nil {
			t.Fatalf("read block %d after restart: %v", i, err)
		}
		if got[0] != byte(i+1) || got[8191] != byte(i+1) {
			t.Fatalf("flushed block %d corrupted across restart: %d", i, got[0])
		}
	}
}

// TestDiskQPrefetchStream checks read-ahead under the batched path: a
// sequential scan must trigger window fills submitted as vectored
// batches, and later demand reads must hit the installed blocks.
func TestDiskQPrefetchStream(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.CacheBlocks = 512
	cfg.DiskQ = true
	srv, addr := startServer(t, cfg, 4<<20)
	c, err := Dial(addr, DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 8192)
	for i := 0; i < 256; i++ {
		if err := c.Read(1, int64(i)*8192, buf); err != nil {
			t.Fatal(err)
		}
		if i%16 == 0 {
			time.Sleep(time.Millisecond) // let the prefetch worker run ahead
		}
	}
	d := srv.DiskStats()
	if d.PrefetchFills == 0 {
		t.Fatal("sequential scan triggered no prefetch fills under diskq")
	}
	if d.PrefetchHits == 0 {
		t.Fatal("prefetched blocks were never hit under diskq")
	}
	t.Logf("diskq prefetch fills=%d hits=%d batches=%d reads=%d",
		d.PrefetchFills, d.PrefetchHits, d.DiskQBatches, d.DiskQReads)
}

// TestDiskQStoreFaults wires a faultnet store fault injector under the
// queue (every Nth op fails, every Mth is short) and checks the error
// plumbing the old synchronous path got for free: injected failures
// surface as per-request errors — never hangs, never wrong bytes on the
// ops that succeed — and the session survives all of it.
func TestDiskQStoreFaults(t *testing.T) {
	inner := NewMemStore(2 << 20)
	flaky := faultnet.NewStore(inner, faultnet.StoreConfig{ErrEvery: 7, ShortEvery: 11})
	cfg := DefaultServerConfig()
	cfg.DiskQ = true
	cfg.SQDepth = 8
	srv := NewServer(cfg)
	srv.AddVolume(1, flaky)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })

	c, err := Dial(addr.String(), DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wErrs, rErrs, ok int
	data := bytes.Repeat([]byte{0x7C}, 8192)
	buf := make([]byte, 8192)
	for i := 0; i < 60; i++ {
		off := int64(i) * 8192
		if err := c.Write(1, off, data); err != nil {
			wErrs++
			continue
		}
		if err := c.Read(1, off, buf); err != nil {
			rErrs++
			continue
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("op %d: successful read returned wrong bytes under fault injection", i)
		}
		ok++
	}
	if wErrs+rErrs == 0 {
		t.Fatalf("fault injector never fired (ops=%d)", flaky.Ops())
	}
	if ok == 0 {
		t.Fatal("no operation survived fault injection")
	}
	t.Logf("faults: writeErrs=%d readErrs=%d ok=%d stats=%+v", wErrs, rErrs, ok, srv.DiskStats())
}

// opaqueStore hides a FileStore's concrete type so the server's queue
// falls back to the portable backend instead of handing the raw file to
// io_uring — the lever the differential test uses to run both backends
// over identical storage.
type opaqueStore struct{ BlockStore }

// TestDiskQDifferentialBackends replays one deterministic workload trace
// against two disk-queue servers over file-backed volumes — one eligible
// for io_uring, one forced onto the portable backend — and requires
// byte-identical results: every read's payload and the final file
// images. On kernels without io_uring both runs use the portable
// backend and the test degenerates to a (still useful) determinism
// check.
func TestDiskQDifferentialBackends(t *testing.T) {
	const size = 2 << 20
	type result struct {
		reads [][]byte
		image []byte
	}
	runTrace := func(wrap bool) result {
		t.Helper()
		path := filepath.Join(t.TempDir(), "vol.img")
		fs, err := NewFileStore(path, size)
		if err != nil {
			t.Fatal(err)
		}
		var store BlockStore = fs
		if wrap {
			store = opaqueStore{fs}
		}
		cfg := diskQCfg()
		srv := NewServer(cfg)
		srv.AddVolume(1, store)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve()
		c, err := Dial(addr.String(), DefaultClientConfig())
		if err != nil {
			t.Fatal(err)
		}
		// Identical op sequence on both servers: seeded offsets/sizes,
		// write/read mix, periodic flush barriers.
		rng := rand.New(rand.NewSource(0x5eed))
		var res result
		for i := 0; i < 300; i++ {
			blk := rng.Intn(size / 8192)
			off := int64(blk) * 8192
			switch i % 3 {
			case 0, 1:
				data := bytes.Repeat([]byte{byte(rng.Intn(255) + 1)}, 8192)
				if err := c.Write(1, off, data); err != nil {
					t.Fatalf("trace write %d: %v", i, err)
				}
			case 2:
				buf := make([]byte, 8192)
				if err := c.Read(1, off, buf); err != nil {
					t.Fatalf("trace read %d: %v", i, err)
				}
				res.reads = append(res.reads, buf)
			}
			if i%50 == 49 {
				if err := c.Flush(1); err != nil {
					t.Fatalf("trace flush %d: %v", i, err)
				}
			}
		}
		if err := c.Flush(1); err != nil {
			t.Fatal(err)
		}
		c.Close()
		srv.Close()
		fs.Close()
		img, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		res.image = img
		return res
	}
	uringSide := runTrace(false)
	portableSide := runTrace(true)
	if len(uringSide.reads) != len(portableSide.reads) {
		t.Fatalf("trace divergence: %d vs %d reads", len(uringSide.reads), len(portableSide.reads))
	}
	for i := range uringSide.reads {
		if !bytes.Equal(uringSide.reads[i], portableSide.reads[i]) {
			t.Fatalf("read %d differs between backends", i)
		}
	}
	if !bytes.Equal(uringSide.image, portableSide.image) {
		t.Fatal("final file images differ between backends")
	}
}

// TestDiskQChaosPartition is TestChaosDestagePartition with the batched
// disk backend underneath: a transient blackhole mid-write-burst, hung
// peer detection, reconnection replay, then a flush barrier and full
// read-back — the queue must not change any of the recovery semantics.
func TestDiskQChaosPartition(t *testing.T) {
	scfg := DefaultServerConfig()
	scfg.CacheBlocks = 512
	scfg.DiskQ = true
	f, addr := startFaultServer(t, scfg, 4<<20)
	cfg := DefaultClientConfig()
	cfg.KeepaliveInterval = 200 * time.Millisecond
	cfg.DialTimeout = 300 * time.Millisecond
	cfg.ReconnectBackoff = 100 * time.Millisecond
	cfg.MaxReconnects = 8
	c, err := Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	block := func(i int) []byte {
		b := make([]byte, 8192)
		for j := range b {
			b[j] = byte(i*31 + j)
		}
		return b
	}
	for i := 0; i < 16; i++ {
		if err := c.Write(1, int64(i)*8192, block(i)); err != nil {
			t.Fatal(err)
		}
	}
	f.Inj.Blackhole(true)
	var handles []*Pending
	for i := 16; i < 24; i++ {
		h, err := c.WriteAsync(1, int64(i)*8192, block(i))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	time.Sleep(600 * time.Millisecond)
	f.Inj.Blackhole(false)
	for i, h := range handles {
		if err := h.WaitTimeout(15 * time.Second); err != nil {
			t.Fatalf("partition write %d: %v (reconnects=%d)", i, err, c.Reconnects())
		}
	}
	if c.Reconnects() < 1 {
		t.Fatal("client never reconnected across the partition")
	}
	if err := c.Flush(1); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8192)
	for i := 0; i < 24; i++ {
		if err := c.Read(1, int64(i)*8192, got); err != nil {
			t.Fatalf("read-back %d: %v", i, err)
		}
		if !bytes.Equal(got, block(i)) {
			t.Fatalf("block %d corrupted across partition under diskq", i)
		}
	}
}

// TestDiskQFlushSurfacesSyncError checks the fsync barrier's error path:
// a store whose next Sync fails must turn the wire-level Flush into an
// error — through the queue's fsync completion, not swallowed by it.
func TestDiskQFlushSurfacesSyncError(t *testing.T) {
	inner := NewMemStore(1 << 20)
	flaky := faultnet.NewStore(inner, faultnet.StoreConfig{})
	cfg := DefaultServerConfig()
	cfg.DiskQ = true
	srv := NewServer(cfg)
	srv.AddVolume(1, flaky)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr.String(), DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(1, 0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	flaky.FailNextSync(faultnet.ErrInjected)
	if err := c.Flush(1); err == nil {
		t.Fatal("flush succeeded despite injected fsync failure")
	}
	if err := c.Flush(1); err != nil {
		t.Fatalf("flush did not recover after one-shot sync fault: %v", err)
	}
	if name := srv.lookup(1).dq.q.BackendName(); !strings.Contains(name, "portable") {
		t.Fatalf("wrapped store unexpectedly not on portable backend: %s", name)
	}
}
