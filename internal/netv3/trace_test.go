package netv3

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/v3storage/v3/internal/obs"
)

// driveTraced pushes n async reads through c with the given pipeline
// window and returns the traced subset's count and summed
// caller-measured end-to-end time.
func driveTracedLoad(t *testing.T, c *Client, n, size, window int) (count int, e2e time.Duration) {
	t.Helper()
	bufs := make([][]byte, window)
	for i := range bufs {
		bufs[i] = make([]byte, size)
	}
	handles := make([]*Pending, window)
	starts := make([]time.Time, window)
	reap := func(s int) {
		if handles[s] == nil {
			return
		}
		if err := handles[s].Wait(); err != nil {
			t.Fatal(err)
		}
		if handles[s].Traced() {
			e2e += time.Since(starts[s])
			count++
		}
		handles[s] = nil
	}
	for i := 0; i < n; i++ {
		s := i % window
		reap(s)
		starts[s] = time.Now()
		h, err := c.ReadAsync(1, int64(i*size)%(1<<20), bufs[s])
		if err != nil {
			t.Fatal(err)
		}
		handles[s] = h
	}
	for s := range handles {
		reap(s)
	}
	return count, e2e
}

// Feature negotiation: both sides trace-capable → negotiated; either
// side opting out (the pre-trace-peer stand-in) → not negotiated, and
// requests still complete with zero spans.
func TestTraceHandshakeFallback(t *testing.T) {
	cases := []struct {
		name             string
		srvOff, cliOff   bool
		wantTraceFeature bool
	}{
		{"both-trace", false, false, true},
		{"old-server", true, false, false},
		{"old-client", false, true, false},
		{"both-old", true, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, addr := startServer(t, ServerConfig{NoTrace: tc.srvOff}, 1<<20)
			ccfg := DefaultClientConfig()
			ccfg.NoTrace = tc.cliOff
			ccfg.Metrics = obs.New() // sample stage traces regardless
			c, err := Dial(addr, ccfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if got := c.TraceSupported(); got != tc.wantTraceFeature {
				t.Fatalf("TraceSupported = %v, want %v", got, tc.wantTraceFeature)
			}
			buf := make([]byte, 4096)
			var tracedSpan, sampled int
			for i := 0; i < 32; i++ {
				h, err := c.ReadAsync(1, 0, buf)
				if err != nil {
					t.Fatal(err)
				}
				if err := h.Wait(); err != nil {
					t.Fatal(err)
				}
				if h.Traced() {
					sampled++
					if h.ServerSpan().SrvServiceNS != 0 {
						tracedSpan++
					}
				}
			}
			if sampled == 0 {
				t.Fatal("no client-sampled requests in 32")
			}
			if tc.wantTraceFeature && tracedSpan == 0 {
				t.Fatal("trace negotiated but every server span is zero")
			}
			if !tc.wantTraceFeature && tracedSpan != 0 {
				t.Fatalf("trace not negotiated but %d responses carried spans", tracedSpan)
			}
		})
	}
}

// The merged cross-tier table must tile: per-stage means column-sum to
// the caller-measured end-to-end mean over the same traced population.
// Run against the inline path and the sched+diskq path, the two server
// dispatch shapes with the most different span plumbing.
func TestMergedBreakdownTiles(t *testing.T) {
	shapes := []struct {
		name string
		cfg  ServerConfig
	}{
		{"inline", ServerConfig{CacheBlocks: 256}},
		{"sched-diskq", ServerConfig{SchedWorkers: 4, DiskQ: true, CacheBlocks: 256}},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			_, addr := startServer(t, sh.cfg, 1<<20)
			reg := obs.New()
			ccfg := DefaultClientConfig()
			ccfg.Metrics = reg
			c, err := Dial(addr, ccfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			count, e2e := driveTracedLoad(t, c, 4000, 8192, 16)
			if count == 0 {
				t.Fatal("no traced requests")
			}
			rows := obs.Breakdown(reg, MergedStageDefs())
			var sum float64
			for _, r := range rows {
				sum += r.MeanNS
			}
			measured := float64(e2e.Nanoseconds()) / float64(count)
			dev := (sum - measured) / measured
			t.Logf("stage sum %.0fns vs measured %.0fns (%.2f%%)", sum, measured, 100*dev)
			if dev < -0.10 || dev > 0.10 {
				t.Fatalf("merged stage sum %.0fns deviates %.1f%% from measured e2e %.0fns (want within 10%%)",
					sum, 100*dev, measured)
			}
		})
	}
}

// Satellite 3's cross-check: the scheduler's per-lane/per-tenant gauges
// and the span-derived srv-sched histogram must describe the same run —
// spans sample a subset of what the lane counters see in full.
func TestSchedGaugesCrossCheckSpans(t *testing.T) {
	reg := obs.New()
	// No cache: a cache hit is served inline and never meets the
	// scheduler, so the lane counters would undercount the traced
	// population. Cacheless, every read is a scheduled task.
	srv := NewServer(ServerConfig{SchedWorkers: 2, Metrics: reg})
	srv.AddVolume(1, NewMemStore(1<<20))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })

	creg := obs.New()
	ccfg := DefaultClientConfig()
	ccfg.Metrics = creg
	c, err := Dial(addr.String(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	count, _ := driveTracedLoad(t, c, 2000, 4096, 8)

	st := srv.SchedStats()
	if st.FGDone == 0 {
		t.Fatal("scheduler reports zero foreground completions after load")
	}
	if int64(count) > st.FGDone {
		t.Fatalf("span-traced population %d exceeds scheduler's fg completions %d", count, st.FGDone)
	}
	// The span-derived sched-wait histogram covers exactly the traced
	// subset the client folded in.
	snap := creg.Snapshot()
	h, ok := snap.Hists["netv3_client_stage_srv_sched_ns"]
	if !ok || h.Count != int64(count) {
		t.Fatalf("srv sched span hist count = %+v, want %d observations", h, count)
	}
	// The per-tenant gauge set reflects live backlog only — tenants
	// retire the moment their queues drain — so it must be scraped
	// concurrently with load, from a poller racing the drive loop.
	var found atomic.Bool
	pollStop := make(chan struct{})
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for !found.Load() {
			for k := range reg.Snapshot().Gauges {
				if strings.HasPrefix(k, "netv3_srv_sched_tenant_queued{") {
					found.Store(true)
					return
				}
			}
			select {
			case <-pollStop:
				return
			default:
			}
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !found.Load() && time.Now().Before(deadline) {
		driveTracedLoad(t, c, 512, 4096, 64)
	}
	close(pollStop)
	<-pollDone
	if !found.Load() {
		t.Fatal("per-tenant sched gauge never appeared in server snapshot during in-flight load")
	}
	ssnap := reg.Snapshot()
	if got, want := ssnap.Gauges["netv3_srv_sched_fg_done_total"], srv.SchedStats().FGDone; got != want {
		t.Fatalf("gauge fg_done %d != SchedStats.FGDone %d", got, want)
	}
}

// An admission-control shed must auto-capture a flight-recorder
// incident with the shed event in the ring.
func TestShedCapturesFlightIncident(t *testing.T) {
	fl := obs.NewFlight(1024, 2)
	srv := NewServer(ServerConfig{SchedWorkers: 1, AdmitLimit: 1, Flight: fl})
	srv.AddVolume(1, NewMemStore(1<<20))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })

	c, err := Dial(addr.String(), DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 4096)
	var shed bool
	deadline := time.Now().Add(5 * time.Second)
	for !shed && time.Now().Before(deadline) {
		handles := make([]*Pending, 0, 64)
		for i := 0; i < 64; i++ {
			h, err := c.ReadAsync(1, 0, buf)
			if err != nil {
				break
			}
			handles = append(handles, h)
		}
		for _, h := range handles {
			if err := h.Wait(); err != nil {
				shed = true
			}
		}
	}
	if !shed {
		t.Skip("could not provoke a shed on this machine")
	}
	if fl.Incidents() == 0 {
		t.Fatal("shed observed but no flight incident captured")
	}
	d := fl.LastIncident()
	if d == nil {
		t.Fatal("no incident dump")
	}
	var sawShed bool
	for _, e := range d.Events {
		if e.Name == "sched-shed" {
			sawShed = true
			break
		}
	}
	if !sawShed {
		t.Fatalf("incident dump has no sched-shed event (%d events)", len(d.Events))
	}
}
