package reliable

import (
	"fmt"
	"time"
)

// ConnState is the connection lifecycle state.
type ConnState int

// Connection states.
const (
	StateConnected ConnState = iota
	StateReconnecting
	StateFailed
)

// String returns the state name.
func (s ConnState) String() string {
	switch s {
	case StateConnected:
		return "connected"
	case StateReconnecting:
		return "reconnecting"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("ConnState(%d)", int(s))
}

// Default reconnection policy.
const (
	DefaultReconnectBackoff = 100 * time.Millisecond
	DefaultMaxAttempts      = 8
)

// Reconnector drives reconnection after a connection break: bounded
// attempts with exponential backoff, then permanent failure. Like
// Tracker it is pure; the caller performs the actual connect and reports
// the outcome.
type Reconnector struct {
	backoff     time.Duration
	maxAttempts int
	state       ConnState
	attempts    int
	nextTry     time.Duration
	reconnects  int64 // successful reconnections over the lifetime
}

// NewReconnector returns a reconnector in the Connected state. Zero
// arguments select the defaults.
func NewReconnector(backoff time.Duration, maxAttempts int) *Reconnector {
	if backoff <= 0 {
		backoff = DefaultReconnectBackoff
	}
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	return &Reconnector{backoff: backoff, maxAttempts: maxAttempts, state: StateConnected}
}

// State returns the current state.
func (r *Reconnector) State() ConnState { return r.state }

// Reconnections returns how many times the connection has been
// re-established.
func (r *Reconnector) Reconnections() int64 { return r.reconnects }

// ConnectionBroken transitions Connected -> Reconnecting at time now.
// The first attempt may run immediately. Breaking an already-broken or
// failed connection is a no-op.
func (r *Reconnector) ConnectionBroken(now time.Duration) {
	if r.state != StateConnected {
		return
	}
	r.state = StateReconnecting
	r.attempts = 0
	r.nextTry = now
}

// ShouldAttempt reports whether a reconnect attempt should run at now,
// i.e. the state is Reconnecting and the backoff has elapsed.
func (r *Reconnector) ShouldAttempt(now time.Duration) bool {
	return r.state == StateReconnecting && now >= r.nextTry
}

// NextAttemptAt returns the time of the next allowed attempt while
// reconnecting.
func (r *Reconnector) NextAttemptAt() (time.Duration, bool) {
	if r.state != StateReconnecting {
		return 0, false
	}
	return r.nextTry, true
}

// AttemptFailed records a failed attempt at now; after maxAttempts the
// state becomes Failed, otherwise the next attempt is scheduled with
// exponential backoff.
func (r *Reconnector) AttemptFailed(now time.Duration) {
	if r.state != StateReconnecting {
		return
	}
	r.attempts++
	if r.attempts >= r.maxAttempts {
		r.state = StateFailed
		return
	}
	delay := r.backoff
	for i := 1; i < r.attempts; i++ {
		delay *= 2
	}
	r.nextTry = now + delay
}

// AttemptSucceeded transitions back to Connected. The caller then replays
// Tracker.Unacked() and calls Tracker.Reset.
func (r *Reconnector) AttemptSucceeded() {
	if r.state != StateReconnecting {
		return
	}
	r.state = StateConnected
	r.attempts = 0
	r.reconnects++
}
