package reliable

import (
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestTrackerAck(t *testing.T) {
	tr := NewTracker(ms(10), 3)
	tr.Track(1, 0)
	tr.Track(2, 0)
	if tr.Pending() != 2 {
		t.Fatalf("pending=%d", tr.Pending())
	}
	tr.Ack(1)
	if tr.Pending() != 1 {
		t.Fatalf("pending=%d", tr.Pending())
	}
	tr.Ack(1) // duplicate ack ignored
	tr.Ack(99)
	if tr.Pending() != 1 {
		t.Fatalf("pending=%d", tr.Pending())
	}
}

func TestTrackerAckThrough(t *testing.T) {
	tr := NewTracker(ms(10), 3)
	for s := uint64(1); s <= 5; s++ {
		tr.Track(s, 0)
	}
	tr.AckThrough(3)
	if tr.Pending() != 2 {
		t.Fatalf("pending=%d, want 2", tr.Pending())
	}
	got := tr.Unacked()
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("unacked=%v", got)
	}
}

func TestTrackerExpireRetriesWithBackoff(t *testing.T) {
	tr := NewTracker(ms(10), 4)
	tr.Track(7, 0)
	retry, failed := tr.Expire(ms(5))
	if len(retry) != 0 || len(failed) != 0 {
		t.Fatal("premature expiry")
	}
	retry, failed = tr.Expire(ms(10))
	if len(retry) != 1 || retry[0] != 7 || len(failed) != 0 {
		t.Fatalf("retry=%v failed=%v", retry, failed)
	}
	// Backoff doubled: deadline now 10+20=30ms.
	if r, _ := tr.Expire(ms(29)); len(r) != 0 {
		t.Fatal("backoff not applied")
	}
	if r, _ := tr.Expire(ms(30)); len(r) != 1 {
		t.Fatal("second retry missing")
	}
	if tr.Retransmits() != 2 {
		t.Fatalf("retransmits=%d", tr.Retransmits())
	}
}

func TestTrackerExhaustsRetries(t *testing.T) {
	tr := NewTracker(ms(10), 2)
	tr.Track(1, 0)
	retry, failed := tr.Expire(ms(10)) // retry 1
	if len(retry) != 1 || len(failed) != 0 {
		t.Fatalf("retry=%v failed=%v", retry, failed)
	}
	retry, failed = tr.Expire(ms(1000)) // retries exhausted
	if len(retry) != 0 || len(failed) != 1 || failed[0] != 1 {
		t.Fatalf("retry=%v failed=%v", retry, failed)
	}
	if tr.Pending() != 0 {
		t.Fatal("failed message still pending")
	}
	if tr.Failures() != 1 {
		t.Fatalf("failures=%d", tr.Failures())
	}
}

func TestTrackerNextDeadline(t *testing.T) {
	tr := NewTracker(ms(10), 3)
	if _, ok := tr.NextDeadline(); ok {
		t.Fatal("deadline on empty tracker")
	}
	tr.Track(1, ms(0))
	tr.Track(2, ms(5))
	d, ok := tr.NextDeadline()
	if !ok || d != ms(10) {
		t.Fatalf("deadline=%v ok=%v", d, ok)
	}
}

func TestTrackerResetRearms(t *testing.T) {
	tr := NewTracker(ms(10), 2)
	tr.Track(1, 0)
	tr.Expire(ms(10))
	tr.Reset(ms(100))
	// Retry budget restored: two expiries allowed again before failure.
	retry, failed := tr.Expire(ms(110))
	if len(retry) != 1 || len(failed) != 0 {
		t.Fatalf("after reset: retry=%v failed=%v", retry, failed)
	}
}

func TestUnackedSorted(t *testing.T) {
	tr := NewTracker(ms(10), 3)
	for _, s := range []uint64{9, 3, 7, 1} {
		tr.Track(s, 0)
	}
	got := tr.Unacked()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("not sorted: %v", got)
		}
	}
}

func TestTrackerDefaults(t *testing.T) {
	tr := NewTracker(0, 0)
	tr.Track(1, 0)
	if r, _ := tr.Expire(DefaultTimeout - 1); len(r) != 0 {
		t.Fatal("default timeout not applied")
	}
	if r, _ := tr.Expire(DefaultTimeout); len(r) != 1 {
		t.Fatal("default timeout not applied")
	}
}

func TestReconnectorLifecycle(t *testing.T) {
	r := NewReconnector(ms(100), 3)
	if r.State() != StateConnected {
		t.Fatal("should start connected")
	}
	r.ConnectionBroken(ms(0))
	if r.State() != StateReconnecting {
		t.Fatal("not reconnecting")
	}
	if !r.ShouldAttempt(ms(0)) {
		t.Fatal("first attempt should be immediate")
	}
	r.AttemptFailed(ms(0))
	if r.ShouldAttempt(ms(50)) {
		t.Fatal("backoff ignored")
	}
	if !r.ShouldAttempt(ms(100)) {
		t.Fatal("attempt after backoff refused")
	}
	r.AttemptSucceeded()
	if r.State() != StateConnected || r.Reconnections() != 1 {
		t.Fatalf("state=%v reconnects=%d", r.State(), r.Reconnections())
	}
}

func TestReconnectorExponentialBackoff(t *testing.T) {
	r := NewReconnector(ms(100), 5)
	r.ConnectionBroken(0)
	r.AttemptFailed(ms(0)) // next at 100
	at, ok := r.NextAttemptAt()
	if !ok || at != ms(100) {
		t.Fatalf("next=%v", at)
	}
	r.AttemptFailed(ms(100)) // next at 100+200
	if at, _ := r.NextAttemptAt(); at != ms(300) {
		t.Fatalf("next=%v, want 300ms", at)
	}
	r.AttemptFailed(ms(300)) // next at 300+400
	if at, _ := r.NextAttemptAt(); at != ms(700) {
		t.Fatalf("next=%v, want 700ms", at)
	}
}

func TestReconnectorPermanentFailure(t *testing.T) {
	r := NewReconnector(ms(10), 2)
	r.ConnectionBroken(0)
	r.AttemptFailed(0)
	r.AttemptFailed(ms(10))
	if r.State() != StateFailed {
		t.Fatalf("state=%v, want failed", r.State())
	}
	// Further events are no-ops.
	r.AttemptSucceeded()
	if r.State() != StateFailed {
		t.Fatal("failed state should be terminal")
	}
	if _, ok := r.NextAttemptAt(); ok {
		t.Fatal("failed state should have no next attempt")
	}
}

func TestReconnectorBreakWhileBrokenIgnored(t *testing.T) {
	r := NewReconnector(ms(10), 3)
	r.ConnectionBroken(0)
	r.AttemptFailed(0)
	r.ConnectionBroken(ms(5)) // must not reset attempts/backoff
	if r.ShouldAttempt(ms(5)) {
		t.Fatal("break-while-broken reset the backoff")
	}
}

func TestConnStateStrings(t *testing.T) {
	if StateConnected.String() != "connected" ||
		StateReconnecting.String() != "reconnecting" ||
		StateFailed.String() != "failed" {
		t.Fatal("state strings wrong")
	}
	if ConnState(9).String() == "" {
		t.Fatal("unknown state should stringify")
	}
}

// Property: no message is ever lost silently — every tracked seq is
// eventually acked, retried, or reported failed; pending never goes
// negative and equals tracked - acked - failed.
func TestTrackerAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		tr := NewTracker(ms(10), 3)
		now := time.Duration(0)
		tracked := map[uint64]bool{}
		acked := 0
		failedN := 0
		var next uint64
		for _, op := range ops {
			now += ms(int(op % 7))
			switch op % 3 {
			case 0:
				next++
				tr.Track(next, now)
				tracked[next] = true
			case 1:
				if len(tracked) > 0 {
					for s := range tracked {
						if tr.Pending() > 0 {
							tr.Ack(s)
							delete(tracked, s)
							acked++
						}
						break
					}
				}
			case 2:
				_, failed := tr.Expire(now)
				for _, s := range failed {
					delete(tracked, s)
					failedN++
				}
			}
			if tr.Pending() != int(next)-acked-failedN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
