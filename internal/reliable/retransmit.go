// Package reliable provides the retransmission and reconnection logic
// DSA adds on top of VI (Section 2.2: "retransmission and reconnection
// ... are critical for industrial-strength systems"). Most VI
// implementations offer at best "reliable delivery" with connection
// teardown on any error, so DSA tracks every outstanding request, retries
// after a timeout, and transparently reconnects and replays when the
// connection breaks.
//
// The package is pure: callers pass the current time explicitly, so the
// same code runs under the simulation's virtual clock and the TCP
// transport's wall clock.
package reliable

import (
	"sort"
	"time"
)

// Default retransmission policy.
const (
	DefaultTimeout     = 50 * time.Millisecond
	DefaultMaxRetries  = 5
	DefaultBackoffBase = 2 // timeout doubles per retry
)

// Tracker tracks unacknowledged sequence numbers and decides what to
// retransmit when. One Tracker per connection.
type Tracker struct {
	timeout    time.Duration
	maxRetries int
	pending    map[uint64]*entry
	acked      uint64 // cumulative: all seq <= acked are done
	retransmit int64
	failures   int64
}

type entry struct {
	seq      uint64
	deadline time.Duration // absolute virtual/wall time
	retries  int
}

// NewTracker returns a tracker with the given per-try timeout and retry
// budget. Zero values select the defaults.
func NewTracker(timeout time.Duration, maxRetries int) *Tracker {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if maxRetries <= 0 {
		maxRetries = DefaultMaxRetries
	}
	return &Tracker{timeout: timeout, maxRetries: maxRetries, pending: make(map[uint64]*entry)}
}

// Track records that seq was sent at time now.
func (t *Tracker) Track(seq uint64, now time.Duration) {
	t.pending[seq] = &entry{seq: seq, deadline: now + t.timeout}
}

// Ack removes seq from the pending set. Duplicate or unknown acks are
// ignored (they arise naturally from retransmissions).
func (t *Tracker) Ack(seq uint64) { delete(t.pending, seq) }

// AckThrough removes every pending seq <= cum (cumulative ack).
func (t *Tracker) AckThrough(cum uint64) {
	for s := range t.pending {
		if s <= cum {
			delete(t.pending, s)
		}
	}
	if cum > t.acked {
		t.acked = cum
	}
}

// Pending returns the number of unacknowledged messages.
func (t *Tracker) Pending() int { return len(t.pending) }

// Retransmits returns the total retransmissions decided so far.
func (t *Tracker) Retransmits() int64 { return t.retransmit }

// Failures returns the number of messages that exhausted their retries.
func (t *Tracker) Failures() int64 { return t.failures }

// NextDeadline returns the earliest pending deadline and true, or false
// when nothing is pending. Callers arm their timer with it.
func (t *Tracker) NextDeadline() (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, e := range t.pending {
		if !found || e.deadline < best {
			best = e.deadline
			found = true
		}
	}
	return best, found
}

// Expire returns, in ascending seq order, the sequence numbers whose
// deadline has passed at now and which still have retries left; each is
// rescheduled with exponential backoff. Sequence numbers that exhausted
// their budget are returned in failed and dropped from the tracker — the
// connection must be declared broken and go through reconnection.
func (t *Tracker) Expire(now time.Duration) (retry, failed []uint64) {
	for _, e := range t.pending {
		if e.deadline > now {
			continue
		}
		e.retries++
		if e.retries >= t.maxRetries {
			failed = append(failed, e.seq)
			continue
		}
		t.retransmit++
		backoff := t.timeout
		for i := 0; i < e.retries; i++ {
			backoff *= DefaultBackoffBase
		}
		e.deadline = now + backoff
		retry = append(retry, e.seq)
	}
	for _, s := range failed {
		t.failures++
		delete(t.pending, s)
	}
	sortU64(retry)
	sortU64(failed)
	return retry, failed
}

// Unacked returns all pending sequence numbers in ascending order; used
// to replay after a reconnect.
func (t *Tracker) Unacked() []uint64 {
	out := make([]uint64, 0, len(t.pending))
	for s := range t.pending {
		out = append(out, s)
	}
	sortU64(out)
	return out
}

// Reset rearms every pending message as if freshly sent at now with a
// clean retry budget (used after a successful reconnection replay).
func (t *Tracker) Reset(now time.Duration) {
	for _, e := range t.pending {
		e.retries = 0
		e.deadline = now + t.timeout
	}
}

func sortU64(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
