package oskrnl

import (
	"testing"
	"time"

	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/sim"
)

func kern(ncpu int) (*sim.Engine, *hw.CPUPool, *Kernel) {
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, ncpu)
	return e, cpus, New(e, cpus, DefaultParams())
}

func TestSyscallChargesKernelTime(t *testing.T) {
	e, cpus, k := kern(1)
	e.Go("w", func(p *sim.Proc) {
		k.Syscall(p, 2*time.Microsecond)
	})
	e.Run()
	want := DefaultParams().SyscallCost + 2*time.Microsecond
	if got := cpus.Busy(hw.CatOSKernel); got != want {
		t.Fatalf("kernel busy = %v, want %v", got, want)
	}
	if k.Syscalls() != 1 {
		t.Fatalf("syscalls = %d", k.Syscalls())
	}
}

func TestIOManagerChargesKernelAndLock(t *testing.T) {
	e, cpus, k := kern(2)
	e.Go("w", func(p *sim.Proc) {
		k.IOManagerSubmit(p)
		k.IOManagerComplete(p)
	})
	e.Run()
	if cpus.Busy(hw.CatOSKernel) <= 2*DefaultParams().IOManagerCost {
		t.Fatal("I/O manager hold time missing from kernel busy")
	}
	wantLock := time.Duration(2*DefaultParams().IOMgrPairsPerOp) * hw.DefaultPairCost
	if got := cpus.Busy(hw.CatLock); got != wantLock {
		t.Fatalf("lock busy = %v, want %v", got, wantLock)
	}
}

func TestIOManagerLocksContendAcrossThreads(t *testing.T) {
	e, cpus, k := kern(16)
	for i := 0; i < 16; i++ {
		e.Go("w", func(p *sim.Proc) {
			for j := 0; j < 50; j++ {
				k.IOManagerSubmit(p)
			}
		})
	}
	e.Run()
	base := time.Duration(16*50*DefaultParams().IOMgrPairsPerOp) * hw.DefaultPairCost
	if got := cpus.Busy(hw.CatLock); got <= base {
		t.Fatalf("16 CPUs on %d global locks should spin: lock busy %v <= base %v",
			DefaultParams().IOMgrLocks, got, base)
	}
}

func TestWakeThread(t *testing.T) {
	e, cpus, k := kern(1)
	e.Go("w", func(p *sim.Proc) { k.WakeThread(p) })
	e.Run()
	want := DefaultParams().EventCost + DefaultParams().ContextSwitchCost
	if got := cpus.Busy(hw.CatOSKernel); got != want {
		t.Fatalf("busy = %v, want %v", got, want)
	}
	if k.ContextSwitches() != 1 {
		t.Fatal("ctxsw not counted")
	}
}

func TestISRQueueChargesInterruptCostAndRunsFn(t *testing.T) {
	e, cpus, k := kern(1)
	isr := k.NewISRQueue("nic0")
	ran := false
	isr.Raise(func(p *sim.Proc) { ran = true })
	e.RunFor(time.Millisecond)
	if !ran {
		t.Fatal("ISR did not run")
	}
	if got := cpus.Busy(hw.CatOSKernel); got != DefaultParams().InterruptCost {
		t.Fatalf("busy = %v, want interrupt cost", got)
	}
	if k.Interrupts() != 1 {
		t.Fatalf("interrupts = %d", k.Interrupts())
	}
}

func TestISRQueueSerializesInterrupts(t *testing.T) {
	e, _, k := kern(4)
	isr := k.NewISRQueue("nic0")
	var done int
	var last sim.Time
	for i := 0; i < 5; i++ {
		isr.Raise(func(p *sim.Proc) { done++; last = p.Now() })
	}
	e.RunFor(time.Millisecond)
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
	if last < 5*DefaultParams().InterruptCost {
		t.Fatalf("interrupts overlapped: last at %v", last)
	}
}

func TestAWEAllocationOneTimeCost(t *testing.T) {
	e, cpus, k := kern(1)
	var region *AWERegion
	e.Go("w", func(p *sim.Proc) {
		region = k.AllocateAWE(p, 1<<20) // 256 pages
	})
	e.Run()
	if region == nil || region.Bytes != 1<<20 {
		t.Fatal("region wrong")
	}
	if cpus.Busy(hw.CatOSKernel) <= DefaultParams().SyscallCost {
		t.Fatal("AWE mapping cost missing")
	}
}

func TestZeroLocksClamped(t *testing.T) {
	e := sim.NewEngine()
	cpus := hw.NewCPUPool(e, 1)
	p := DefaultParams()
	p.IOMgrLocks = 0
	k := New(e, cpus, p)
	if k.Params().IOMgrLocks != 1 {
		t.Fatal("zero lock count should clamp to 1")
	}
}
