// Package oskrnl models the operating-system costs on the database host
// that differentiate the three DSA implementations: syscall transitions,
// interrupt dispatch, context switches, the I/O manager's per-request
// work and its global lock pairs, kernel event objects, and AWE pinned
// memory (Sections 2.2 and 3 of the paper).
//
// All costs are processor time charged to hw.CatOSKernel (lock pairs to
// hw.CatLock via the lock model), so they surface in the CPU-utilization
// breakdowns of Figures 11 and 14.
package oskrnl

import (
	"time"

	"github.com/v3storage/v3/internal/hw"
	"github.com/v3storage/v3/internal/sim"
)

// Params are the kernel cost constants. Defaults reflect the paper's
// platforms: interrupt cost "in the order of 5-10 µs", syscalls a couple
// of µs on 700-800 MHz Xeons.
type Params struct {
	SyscallCost       time.Duration // user->kernel->user transition
	InterruptCost     time.Duration // ISR dispatch + EOI
	ContextSwitchCost time.Duration // thread switch after a wakeup
	IOManagerCost     time.Duration // IRP build/complete per visit
	EventCost         time.Duration // kernel event signal/wait syscall body
	IOMgrLocks        int           // global I/O-manager locks (shared by all I/Os)
	IOMgrPairsPerOp   int           // lock pairs per submit and per completion
	IOMgrHold         time.Duration // critical-section length under each pair
}

// DefaultParams returns the Windows 2000/XP cost model used throughout
// the experiments.
func DefaultParams() Params {
	return Params{
		SyscallCost:       6 * time.Microsecond,
		InterruptCost:     9 * time.Microsecond,
		ContextSwitchCost: 5 * time.Microsecond,
		IOManagerCost:     9 * time.Microsecond,
		EventCost:         1200 * time.Nanosecond,
		IOMgrLocks:        3,
		IOMgrPairsPerOp:   2,
		IOMgrHold:         2 * time.Microsecond,
	}
}

// Kernel is the host OS instance: it owns the global I/O-manager locks
// and the interrupt dispatch machinery.
type Kernel struct {
	e      *sim.Engine
	cpus   *hw.CPUPool
	params Params
	iomgr  *hw.PairSet

	interrupts sim.Counter
	syscalls   sim.Counter
	ctxsw      sim.Counter
}

// New creates a kernel on the given engine and CPU pool.
func New(e *sim.Engine, cpus *hw.CPUPool, params Params) *Kernel {
	if params.IOMgrLocks <= 0 {
		params.IOMgrLocks = 1
	}
	return &Kernel{
		e: e, cpus: cpus, params: params,
		iomgr: hw.NewPairSet(e, cpus, params.IOMgrLocks),
	}
}

// Params returns the cost constants.
func (k *Kernel) Params() Params { return k.params }

// Syscall charges one user/kernel transition plus body of kernel work.
func (k *Kernel) Syscall(p *sim.Proc, body time.Duration) {
	k.syscalls.Inc()
	k.cpus.Use(p, hw.CatOSKernel, k.params.SyscallCost+body)
}

// IOManagerSubmit models the I/O manager's send-path work for one
// request: IRP setup plus its global lock pairs (Section 3.3: "the
// Windows I/O Manager uses at least two more synchronization pairs in
// both the send and receive paths").
func (k *Kernel) IOManagerSubmit(p *sim.Proc) {
	k.cpus.Use(p, hw.CatOSKernel, k.params.IOManagerCost)
	k.iomgr.CrossPairsHold(p, k.params.IOMgrPairsPerOp, k.params.IOMgrHold, hw.CatOSKernel)
}

// IOManagerComplete models the receive-path work for one completion.
func (k *Kernel) IOManagerComplete(p *sim.Proc) {
	k.cpus.Use(p, hw.CatOSKernel, k.params.IOManagerCost)
	k.iomgr.CrossPairsHold(p, k.params.IOMgrPairsPerOp, k.params.IOMgrHold, hw.CatOSKernel)
}

// WakeThread charges the cost of signalling a kernel event and context
// switching the woken thread in (the completion path of kDSA/wDSA).
func (k *Kernel) WakeThread(p *sim.Proc) {
	k.ctxsw.Inc()
	k.cpus.Use(p, hw.CatOSKernel, k.params.EventCost+k.params.ContextSwitchCost)
}

// Interrupts returns the number of interrupts dispatched.
func (k *Kernel) Interrupts() int64 { return k.interrupts.Value() }

// Syscalls returns the number of syscalls charged.
func (k *Kernel) Syscalls() int64 { return k.syscalls.Value() }

// ContextSwitches returns the number of WakeThread calls.
func (k *Kernel) ContextSwitches() int64 { return k.ctxsw.Value() }

// ISRQueue is one interrupt line's dispatch queue: raising an interrupt
// enqueues a service routine; a kernel dispatcher process charges the
// interrupt cost and runs it. One ISRQueue per NIC models per-device
// interrupt serialization.
type ISRQueue struct {
	k *Kernel
	q *sim.Queue[func(p *sim.Proc)]
}

// NewISRQueue creates an interrupt line and starts its dispatcher.
func (k *Kernel) NewISRQueue(name string) *ISRQueue {
	isr := &ISRQueue{k: k, q: sim.NewQueue[func(p *sim.Proc)]()}
	k.e.Go("isr:"+name, func(p *sim.Proc) {
		for {
			fn := isr.q.Get(p)
			k.interrupts.Inc()
			k.cpus.Use(p, hw.CatOSKernel, k.params.InterruptCost)
			fn(p)
		}
	})
	return isr
}

// Raise queues fn to run in interrupt context (after the modeled
// interrupt dispatch cost). Callable from event or process context.
func (i *ISRQueue) Raise(fn func(p *sim.Proc)) { i.q.Put(i.k.e, fn) }

// AWERegion models an Address Windowing Extensions allocation: memory
// that is physically resident and pinned for its lifetime, so NIC
// registration of buffers inside it skips the pin/unpin work
// (Section 3.1: cDSA allocates the database cache with AWE).
type AWERegion struct {
	Bytes int64
}

// AllocateAWE charges the one-time mapping cost and returns the pinned
// region. The paper's point is precisely that this cost is paid once at
// startup instead of per I/O.
func (k *Kernel) AllocateAWE(p *sim.Proc, bytes int64) *AWERegion {
	pages := (bytes + 4095) / 4096
	// ~0.2 µs per page of low-overhead mapping calls, charged once.
	k.Syscall(p, time.Duration(pages)*200*time.Nanosecond)
	return &AWERegion{Bytes: bytes}
}
